package homunculus

// Durability: the wiring between the Service and internal/store. A
// service opened with a StateDir journals every job transition
// write-ahead, writes each compiled pipeline through to the on-disk
// content-addressed artifact store, and persists the endpoint table; on
// the next Open the three are replayed — interrupted jobs re-run under
// their original IDs, completed results serve as warm cache hits with
// zero search events, and named endpoints resume routing their restored
// revision history.
//
// The durability layer is strictly best-effort around the compilation
// path: a journal append or artifact write that fails (disk full, torn
// rename) is logged and counted (StoreErrors) but never fails the job —
// a degraded store costs recoverability, not availability. The inverse
// holds on reads: an artifact that fails its digest check is quarantined
// and recompiled, never served.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/alchemy"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/serve"
	"repro/internal/store"
)

// RecoveryReport describes what a durable Open found and restored.
type RecoveryReport struct {
	// JournalRecords and JournalSkipped count the replayed journal's
	// parseable records and its tolerated corrupt lines (a torn final
	// record is the expected debris of a crash mid-append).
	JournalRecords int
	JournalSkipped int
	// JobsRecovered lists completed jobs whose results survive in the
	// artifact store — identical resubmissions are warm cache hits.
	JobsRecovered []string
	// JobsRequeued lists jobs that were queued or running at crash time
	// and were re-enqueued for compilation under their original IDs.
	JobsRequeued []string
	// JobsSkipped lists interrupted jobs that could not be re-enqueued:
	// their spec had no wire form (anonymous data loaders), failed to
	// parse, or the admission queue rejected them.
	JobsSkipped []string
	// EndpointsRestored and EndpointsSkipped partition the manifest's
	// endpoints by whether their revision history could be rebuilt.
	EndpointsRestored []string
	EndpointsSkipped  []string
}

// Recovery returns the boot recovery report of a durable service (zero
// on an in-memory service). The returned slices are read-only.
func (s *Service) Recovery() RecoveryReport { return s.recovery }

// StoreErrors counts durability-layer failures absorbed since Open —
// journal appends, artifact writes, or manifest rewrites that failed
// without failing the operation they shadowed. A growing count means
// results are being served correctly but will not survive a restart.
func (s *Service) StoreErrors() uint64 { return s.storeErrs.Load() }

// storeErr records one absorbed durability failure.
func (s *Service) storeErr(err error) {
	s.storeErrs.Add(1)
	log.Printf("homunculus: store: %v", err)
}

// journal appends one record to the write-ahead journal (no-op on an
// in-memory service; failures are absorbed).
func (s *Service) journal(rec store.Record, sync bool) {
	if s.store == nil {
		return
	}
	if err := s.store.Journal.Append(rec, sync); err != nil {
		s.storeErr(fmt.Errorf("journal %s %s: %w", rec.Op, rec.Job, err))
	}
}

// recordSubmission writes a job's admission record ahead of any work
// and, when the cluster fabric enabled work sharing, stashes the wire
// form on the job so a peer can steal it while queued. The journal
// record carries the full spec when it has a wire form (catalog data
// loaders); submissions with anonymous loaders journal spec-less and are
// reported, not recompiled, after a crash. Written without fsync: the OS
// page cache survives process death (SIGKILL, panic), and syncing every
// admission would put a disk flush on the sub-millisecond Submit path —
// only an OS crash can lose the tail, and the journal's replay tolerates
// exactly that debris.
func (s *Service) recordSubmission(j *Job, p *alchemy.Platform, o *options) {
	sharing := s.workSharing.Load()
	if s.store == nil && !sharing {
		return
	}
	var spec, search []byte
	if sp, err := alchemy.MarshalPlatform(p); err == nil {
		if se, serr := marshalSearchConfig(o.search, o.validate); serr == nil {
			spec, search = sp, se
		} else if s.store != nil {
			s.storeErr(fmt.Errorf("journal job %s search config: %w", j.id, serr))
		}
	}
	if sharing && spec != nil {
		j.setWire(spec, search)
	}
	if s.store != nil {
		s.journal(store.Record{Op: store.OpSubmitted, Job: j.id, Platform: j.platform, Spec: spec, Search: search}, false)
	}
}

// journalFinish is the Job.onFinish hook: it records the terminal
// transition, fsynced — a job a client observed as done must still be
// done after a crash.
func (s *Service) journalFinish(j *Job) {
	st := j.Status()
	rec := store.Record{Job: st.ID, SpecHash: st.SpecHash}
	switch st.State {
	case JobDone:
		rec.Op = store.OpDone
	case JobCancelled:
		rec.Op = store.OpCancelled
	default:
		rec.Op = store.OpFailed
	}
	if st.Err != nil {
		rec.Error = st.Err.Error()
	}
	s.journal(rec, true)
}

// loadArtifact reads a compiled pipeline back from the artifact store.
// Corrupt artifacts were already quarantined by the store layer; either
// way a false return means "compile it again".
func (s *Service) loadArtifact(key string) (*Pipeline, bool) {
	if s.store == nil {
		return nil, false
	}
	raw, err := s.store.Artifacts.Get(key)
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			s.storeErr(fmt.Errorf("artifact %s: %w", key, err))
		}
		return nil, false
	}
	pipe, err := UnmarshalPipeline(raw)
	if err != nil {
		s.storeErr(fmt.Errorf("artifact %s: %w", key, err))
		return nil, false
	}
	return pipe, true
}

// storeArtifact writes a compiled pipeline through to the artifact
// store (best effort) and offers it to cluster peers (broadcast
// consistency mode installs it everywhere; other modes ignore offers).
func (s *Service) storeArtifact(key string, pipe *Pipeline) {
	box := s.remote.Load()
	if s.store == nil && box == nil {
		return
	}
	raw, err := MarshalPipeline(pipe)
	if err != nil {
		s.storeErr(fmt.Errorf("serialize artifact %s: %w", key, err))
		return
	}
	if s.store != nil {
		if perr := s.store.Artifacts.Put(key, raw); perr != nil {
			s.storeErr(fmt.Errorf("artifact %s: %w", key, perr))
		}
	}
	if box != nil {
		box.ra.Offer(key, raw)
	}
}

// endpointArtifact ensures an endpoint revision's pipeline is in the
// artifact store and returns its key: the compilation's content address
// when the pipeline came from a job, otherwise the hash of the canonical
// pipeline document (out-of-band pipelines have no spec to hash). An
// empty return means the revision will not survive a restart.
func (s *Service) endpointArtifact(pipe *Pipeline, jobID string) string {
	if s.store == nil {
		return ""
	}
	key := ""
	if jobID != "" {
		if j, ok := s.Job(jobID); ok {
			key = j.Status().SpecHash
		}
	}
	raw, err := MarshalPipeline(pipe)
	if err != nil {
		s.storeErr(fmt.Errorf("serialize endpoint pipeline: %w", err))
		return ""
	}
	if key == "" {
		sum := sha256.Sum256(raw)
		key = hex.EncodeToString(sum[:])
	}
	if !s.store.Artifacts.Has(key) {
		if err := s.store.Artifacts.Put(key, raw); err != nil {
			s.storeErr(fmt.Errorf("endpoint artifact %s: %w", key, err))
			return ""
		}
	}
	return key
}

// serveOptions converts persisted runtime bounds back to serve.Options.
func serveOptions(r store.OptionsRecord) serve.Options {
	return serve.Options{
		Shards:        r.Shards,
		BatchSize:     r.BatchSize,
		MaxDelay:      time.Duration(r.MaxDelayNS),
		MaxDelaySet:   r.MaxDelaySet,
		AdaptiveFlush: r.AdaptiveFlush,
		QueueDepth:    r.QueueDepth,
		RetainRetired: r.RetainRetired,
	}
}

// persistEndpoints rewrites the endpoint manifest from the live table.
// Called after every endpoint lifecycle operation; skipped during Close
// (draining is not deletion — the manifest is what the next Open
// restores).
func (s *Service) persistEndpoints() {
	if s.store == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	eps := make([]*Endpoint, 0, len(s.epOrder))
	for _, name := range s.epOrder {
		eps = append(eps, s.endpoints[name])
	}
	s.mu.Unlock()
	m := store.Manifest{Endpoints: make([]store.EndpointRecord, 0, len(eps))}
	for _, e := range eps {
		m.Endpoints = append(m.Endpoints, e.record())
	}
	if err := s.store.SaveManifest(m); err != nil {
		s.storeErr(fmt.Errorf("endpoint manifest: %w", err))
	}
}

// record renders the endpoint's persisted form.
func (e *Endpoint) record() store.EndpointRecord {
	rec := store.EndpointRecord{
		Name:            e.name,
		Platform:        e.platform,
		CreatedUnixNano: e.created.UnixNano(),
		Options:         e.reqOpts,
	}
	rec.Stable, rec.Canary, rec.CanaryPercent, rec.Shadow = e.ep.View()
	rows := e.ep.RevisionInfos()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range rows {
		m := e.meta[r.ID]
		rec.Revisions = append(rec.Revisions, store.RevisionRecord{
			ID: r.ID, JobID: m.jobID, App: m.app, SpecHash: m.specHash,
			State: string(r.State), CanaryPercent: r.CanaryPercent,
			CreatedUnixNano: r.Created.UnixNano(), Options: m.opts,
		})
	}
	return rec
}

// recover opens the state directory and replays it into the freshly
// constructed service: endpoints first (synchronous, read-only), then
// the journal is compacted down to the still-live submissions, then
// interrupted jobs re-enter the admission queue.
func (s *Service) recover(dir string, fs store.FS) error {
	st, records, skipped, err := store.Open(dir, fs)
	if err != nil {
		return err
	}
	s.store = st
	s.recovery.JournalRecords = len(records)
	s.recovery.JournalSkipped = skipped

	// Reduce the journal to one trace per job: its admission record and
	// its latest operation.
	type jobTrace struct {
		submitted *store.Record
		lastOp    string
		specHash  string
	}
	traces := map[string]*jobTrace{}
	var order []string
	maxID := 0
	for i := range records {
		r := &records[i]
		t := traces[r.Job]
		if t == nil {
			t = &jobTrace{}
			traces[r.Job] = t
			order = append(order, r.Job)
		}
		if r.Op == store.OpSubmitted && t.submitted == nil {
			t.submitted = r
		}
		t.lastOp = r.Op
		if r.SpecHash != "" {
			t.specHash = r.SpecHash
		}
		var n int
		if _, err := fmt.Sscanf(r.Job, "job-%d", &n); err == nil && n > maxID {
			maxID = n
		}
	}
	// New submissions number past every journaled job, so recovered and
	// fresh IDs never collide.
	s.nextID = maxID

	type pendingJob struct {
		id       string
		p        *alchemy.Platform
		cfg      core.SearchConfig
		validate bool
	}
	var requeue []pendingJob
	var keep []store.Record
	for _, id := range order {
		t := traces[id]
		switch t.lastOp {
		case store.OpDone:
			if t.specHash != "" && st.Artifacts.Has(t.specHash) {
				s.recovery.JobsRecovered = append(s.recovery.JobsRecovered, id)
			}
		case store.OpFailed, store.OpCancelled:
			// Terminal without a result: nothing to recover, and the
			// compaction below drops the trace.
		default:
			// Queued or running when the process died.
			if t.submitted == nil || len(t.submitted.Spec) == 0 || len(t.submitted.Search) == 0 {
				s.storeErr(fmt.Errorf("job %s was interrupted but has no recoverable spec (anonymous data loader?)", id))
				s.recovery.JobsSkipped = append(s.recovery.JobsSkipped, id)
				continue
			}
			p, perr := alchemy.UnmarshalPlatform(t.submitted.Spec)
			if perr != nil {
				s.storeErr(fmt.Errorf("job %s spec: %w", id, perr))
				s.recovery.JobsSkipped = append(s.recovery.JobsSkipped, id)
				continue
			}
			cfg, validate, cerr := unmarshalSearchConfig(t.submitted.Search)
			if cerr != nil {
				s.storeErr(fmt.Errorf("job %s search config: %w", id, cerr))
				s.recovery.JobsSkipped = append(s.recovery.JobsSkipped, id)
				continue
			}
			requeue = append(requeue, pendingJob{id: id, p: p, cfg: cfg, validate: validate})
			keep = append(keep, *t.submitted)
		}
	}

	if m, merr := st.LoadManifest(); merr != nil {
		s.storeErr(fmt.Errorf("endpoint manifest: %w", merr))
	} else {
		for _, rec := range m.Endpoints {
			if rerr := s.restoreEndpoint(rec); rerr != nil {
				s.storeErr(fmt.Errorf("restore endpoint %q: %w", rec.Name, rerr))
				s.recovery.EndpointsSkipped = append(s.recovery.EndpointsSkipped, rec.Name)
				continue
			}
			s.recovery.EndpointsRestored = append(s.recovery.EndpointsRestored, rec.Name)
		}
	}

	// Compact before the requeued jobs can append: the journal shrinks to
	// the live admissions, and every terminal record that follows lands
	// after the compacted base.
	if cerr := st.Journal.Compact(keep); cerr != nil {
		s.storeErr(fmt.Errorf("compact journal: %w", cerr))
	}

	for _, pj := range requeue {
		if qerr := s.resubmitRecovered(pj.id, pj.p, pj.cfg, pj.validate); qerr != nil {
			s.storeErr(fmt.Errorf("requeue job %s: %w", pj.id, qerr))
			s.recovery.JobsSkipped = append(s.recovery.JobsSkipped, pj.id)
			continue
		}
		s.recovery.JobsRequeued = append(s.recovery.JobsRequeued, pj.id)
	}
	return nil
}

// resubmitRecovered re-enqueues one interrupted job under its original
// ID — Submit's admission path minus ID assignment and re-journaling
// (the compacted journal already carries the admission record).
func (s *Service) resubmitRecovered(id string, p *alchemy.Platform, cfg core.SearchConfig, validate bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	o := options{search: cfg, validate: validate}
	jctx, cancel := context.WithCancel(context.Background())
	j := newJob(id, p.Kind.String(), cancel)
	j.ctx = jctx
	j.onFinish = s.journalFinish
	ticket, err := s.queue.Submit(
		func() { s.run(jctx, j, p, &o) },
		func(error) {
			j.finish(nil, fmt.Errorf("homunculus: job %s dropped before dispatch: %w", id, ErrServiceClosed))
		},
	)
	if err != nil {
		cancel()
		return err
	}
	j.mu.Lock()
	j.ticket = ticket
	j.mu.Unlock()
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	return nil
}

// restoreEndpoint rebuilds one named endpoint from its manifest record,
// loading each revision's model out of the artifact store.
func (s *Service) restoreEndpoint(rec store.EndpointRecord) error {
	revs := make([]serve.RestoreRevision, 0, len(rec.Revisions))
	meta := make(map[int]revisionMeta, len(rec.Revisions))
	for _, rr := range rec.Revisions {
		state := serve.RevisionState(rr.State)
		model := s.revisionModel(rr)
		if model == nil && (state == serve.RevCanary || state == serve.RevShadow) {
			// A live rollout whose artifact did not survive restores as a
			// retired, cold revision — the endpoint keeps serving its
			// stable traffic rather than disappearing.
			s.storeErr(fmt.Errorf("endpoint %q revision %d: rollout artifact %q unavailable, restoring it retired", rec.Name, rr.ID, rr.SpecHash))
			state = serve.RevRetired
		}
		revs = append(revs, serve.RestoreRevision{
			ID: rr.ID, Model: model, Opts: serveOptions(rr.Options),
			State: state, CanaryPercent: rr.CanaryPercent,
			Created: time.Unix(0, rr.CreatedUnixNano),
		})
		meta[rr.ID] = revisionMeta{jobID: rr.JobID, app: rr.App, specHash: rr.SpecHash, opts: rr.Options}
	}
	sep, err := serve.RestoreEndpoint(rec.Name, serveOptions(rec.Options), revs)
	if err != nil {
		return err
	}
	e := &Endpoint{
		name:     rec.Name,
		platform: rec.Platform,
		created:  time.Unix(0, rec.CreatedUnixNano),
		svc:      s,
		ep:       sep,
		validate: rec.Options.ValidateRollouts,
		reqOpts:  rec.Options,
		meta:     meta,
	}
	s.mu.Lock()
	if _, dup := s.endpoints[rec.Name]; dup {
		s.mu.Unlock()
		_ = sep.Close()
		return fmt.Errorf("duplicate endpoint name in manifest")
	}
	s.endpoints[rec.Name] = e
	s.epOrder = append(s.epOrder, rec.Name)
	s.mu.Unlock()
	return nil
}

// revisionModel loads one restored revision's model from the artifact
// store; nil (cold revision) when the artifact is gone, corrupt, or no
// longer carries the app.
func (s *Service) revisionModel(rr store.RevisionRecord) *ir.Model {
	if rr.SpecHash == "" {
		return nil
	}
	raw, err := s.store.Artifacts.Get(rr.SpecHash)
	if err != nil {
		if !errors.Is(err, store.ErrNotFound) {
			s.storeErr(fmt.Errorf("revision artifact %s: %w", rr.SpecHash, err))
		}
		return nil
	}
	pipe, err := UnmarshalPipeline(raw)
	if err != nil {
		s.storeErr(fmt.Errorf("revision artifact %s: %w", rr.SpecHash, err))
		return nil
	}
	app, err := selectApp(pipe, rr.App)
	if err != nil {
		s.storeErr(fmt.Errorf("revision artifact %s app %q: %w", rr.SpecHash, rr.App, err))
		return nil
	}
	return app.Model
}
