package homunculus

// Tests for the job-based service API: immediate Submit, the
// content-addressed cache with single-flight coalescing (N identical
// concurrent submissions run exactly one search), cache keying (seeds
// and constraints miss), admission + cancellation (a queued job
// cancelled before dispatch never runs), and Close semantics (drain
// running, fail queued with ErrServiceClosed).

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/alchemy"
)

// blockingLoader signals started on its first Load and blocks every
// Load until release closes (dispatch touches the loader exactly once —
// the fingerprint's materialized data feeds the load stage — but the
// once-guard keeps the helper honest either way).
func blockingLoader(dataSeed int64, started, release chan struct{}) alchemy.DataLoader {
	var once sync.Once
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		once.Do(func() { close(started) })
		<-release
		return sampleLoader(dataSeed).Load()
	})
}

// servicePlatform declares a fresh single-model platform over the
// deterministic sample data; identical calls are identical submissions
// (the anonymous loaders fingerprint by content).
func servicePlatform(dataSeed int64, algorithms ...string) *alchemy.Platform {
	if len(algorithms) == 0 {
		algorithms = []string{"dtree"}
	}
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "svc_app", Algorithms: algorithms, DataLoader: sampleLoader(dataSeed)})
	p := alchemy.Taurus()
	p.Schedule(model)
	return p
}

func TestSubmitReturnsImmediately(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1, QueueDepth: 8})
	defer svc.Close()
	// A "large spec": loading the data blocks until released. Submit
	// must not touch the loader — admission is enqueue-only.
	release := make(chan struct{})
	loader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		<-release
		return sampleLoader(31).Load()
	})
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "slow_spec", Algorithms: []string{"dtree"}, DataLoader: loader})
	p := alchemy.Taurus()
	p.Schedule(model)

	start := time.Now()
	job, err := svc.Submit(context.Background(), p, WithSearchConfig(fastConfig()))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// The budget is <1ms; allow generous CI slack while still catching
	// any synchronous load/hash/search sneaking into Submit (the loader
	// blocks forever until released, so that would hang, not just slow).
	if elapsed > 100*time.Millisecond {
		t.Fatalf("Submit took %v", elapsed)
	}
	if st := job.Status().State; st != JobQueued && st != JobRunning {
		t.Fatalf("fresh job state %q", st)
	}
	close(release)
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if job.Status().State != JobDone {
		t.Fatalf("state %q, want done", job.Status().State)
	}
}

func TestServiceCacheSingleFlight(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 4, QueueDepth: -1, CacheEntries: 16})
	defer svc.Close()
	cfg := fastConfig()

	// Count app-level search completions across ALL submissions: the
	// single-flight guarantee is that N identical concurrent submits
	// perform exactly one search.
	var searches atomic.Int32
	progress := func(ev Event) {
		if ev.Stage == StageSearch && ev.Candidate == "" && ev.Done {
			searches.Add(1)
		}
	}

	const n = 6
	jobs := make([]*Job, n)
	for i := range jobs {
		job, err := svc.Submit(context.Background(), servicePlatform(32),
			WithSearchConfig(cfg), WithProgress(progress))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	pipes := make([]*Pipeline, n)
	hits := 0
	for i, job := range jobs {
		pipe, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		pipes[i] = pipe
		st := job.Status()
		if st.CacheHit {
			hits++
		}
		if st.SpecHash == "" || st.SpecHash != jobs[0].Status().SpecHash {
			t.Fatalf("job %d spec hash %q diverges from %q", i, st.SpecHash, jobs[0].Status().SpecHash)
		}
	}
	if got := searches.Load(); got != 1 {
		t.Fatalf("%d searches ran for %d identical submissions, want exactly 1", got, n)
	}
	if hits != n-1 {
		t.Fatalf("%d cache hits, want %d (all but the leader)", hits, n-1)
	}
	for i := 1; i < n; i++ {
		if pipes[i] != pipes[0] {
			t.Fatalf("job %d resolved to a different pipeline instance", i)
		}
	}

	// A cache hit must be byte-identical to a cold fixed-seed compile.
	cold, err := Generate(context.Background(), servicePlatform(32), WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pipelineFingerprint(t, pipes[0]), pipelineFingerprint(t, cold)) {
		t.Fatal("cached service result differs from direct Generate output")
	}
}

func TestServiceCacheKeying(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 2, QueueDepth: -1, CacheEntries: 16})
	defer svc.Close()
	cfg := fastConfig()
	wait := func(p *alchemy.Platform, opts ...Option) *Job {
		t.Helper()
		job, err := svc.Submit(context.Background(), p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return job
	}

	warm := wait(servicePlatform(33), WithSearchConfig(cfg))
	if warm.Status().CacheHit {
		t.Fatal("first submission cannot hit the cache")
	}
	if !wait(servicePlatform(33), WithSearchConfig(cfg)).Status().CacheHit {
		t.Fatal("identical resubmission must hit the cache")
	}
	if wait(servicePlatform(33), WithSearchConfig(cfg), WithSeed(99)).Status().CacheHit {
		t.Fatal("a different seed must miss the cache")
	}
	tight := servicePlatform(33)
	tight.Constrain(alchemy.Constraints{Resources: alchemy.Resources{Rows: 8, Cols: 8}})
	if wait(tight, WithSearchConfig(cfg)).Status().CacheHit {
		t.Fatal("different constraints must miss the cache")
	}
	if wait(servicePlatform(34), WithSearchConfig(cfg)).Status().CacheHit {
		t.Fatal("different dataset content must miss the cache")
	}
}

func TestColdCacheMissLoadsDatasetOnce(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1, QueueDepth: 8, CacheEntries: 16})
	defer svc.Close()
	var loads atomic.Int32
	counting := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		loads.Add(1)
		return sampleLoader(47).Load()
	})
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "count", Algorithms: []string{"dtree"}, DataLoader: counting})
	submit := func() *Job {
		t.Helper()
		p := alchemy.Taurus()
		p.Schedule(model)
		job, err := svc.Submit(context.Background(), p, WithSearchConfig(fastConfig()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return job
	}
	submit()
	// The fingerprint pass materializes the data and the load stage
	// reuses it: one Load per cold compile, not two.
	if got := loads.Load(); got != 1 {
		t.Fatalf("cold cache miss loaded the dataset %d times, want 1", got)
	}
	// Resubmitting the same model: memoized fingerprint + cache hit —
	// zero further loads.
	if !submit().Status().CacheHit {
		t.Fatal("resubmission must hit the cache")
	}
	if got := loads.Load(); got != 1 {
		t.Fatalf("cache hit loaded the dataset (total %d loads)", got)
	}
}

func TestQueuedJobCancelledBeforeDispatchNeverRuns(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1, QueueDepth: 8})
	release := make(chan struct{})
	started := make(chan struct{})
	m1 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "blocker", Algorithms: []string{"dtree"}, DataLoader: blockingLoader(35, started, release)})
	p1 := alchemy.Taurus()
	p1.Schedule(m1)
	job1, err := svc.Submit(context.Background(), p1, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	<-started // job1 occupies the single dispatch slot

	var ran atomic.Bool
	spy := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		ran.Store(true)
		return sampleLoader(36).Load()
	})
	m2 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "queued", Algorithms: []string{"dtree"}, DataLoader: spy})
	p2 := alchemy.Taurus()
	p2.Schedule(m2)
	job2, err := svc.Submit(context.Background(), p2, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if st := job2.Status().State; st != JobQueued {
		t.Fatalf("job2 state %q, want queued", st)
	}
	job2.Cancel()
	if st := job2.Status().State; st != JobCancelled {
		t.Fatalf("job2 state after cancel %q, want cancelled", st)
	}
	if _, err := job2.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("job2 terminal error %v must wrap context.Canceled", err)
	}

	close(release)
	if _, err := job1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Fatal("cancelled queued job's loader ran")
	}
}

func TestServiceCloseDrainsRunningAndFailsQueued(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1, QueueDepth: 8})
	release := make(chan struct{})
	started := make(chan struct{})
	m1 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "running", Algorithms: []string{"dtree"}, DataLoader: blockingLoader(37, started, release)})
	p1 := alchemy.Taurus()
	p1.Schedule(m1)
	job1, err := svc.Submit(context.Background(), p1, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var ran atomic.Bool
	spy := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		ran.Store(true)
		return sampleLoader(38).Load()
	})
	m2 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "doomed", Algorithms: []string{"dtree"}, DataLoader: spy})
	p2 := alchemy.Taurus()
	p2.Schedule(m2)
	job2, err := svc.Submit(context.Background(), p2, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() {
		_ = svc.Close()
		close(closed)
	}()

	// The queued job fails promptly with a wrapped ErrServiceClosed even
	// while the running job drains.
	if _, err := job2.Wait(context.Background()); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("queued job error %v must wrap ErrServiceClosed", err)
	}
	if st := job2.Status().State; st != JobFailed {
		t.Fatalf("queued job state %q, want failed", st)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a compilation was still running")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	<-closed
	pipe, err := job1.Wait(context.Background())
	if err != nil {
		t.Fatalf("running job must drain to completion: %v", err)
	}
	if pipe == nil || job1.Status().State != JobDone {
		t.Fatal("drained job must finish with its pipeline")
	}
	if ran.Load() {
		t.Fatal("queued job's loader ran after Close")
	}
	if _, err := svc.Submit(context.Background(), servicePlatform(39), WithSearchConfig(fastConfig())); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("submit after Close = %v, want ErrServiceClosed", err)
	}
}

func TestSubmitQueueFull(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	m := alchemy.NewModel(alchemy.ModelSpec{
		Name: "hold", Algorithms: []string{"dtree"}, DataLoader: blockingLoader(40, started, release)})
	p := alchemy.Taurus()
	p.Schedule(m)
	if _, err := svc.Submit(context.Background(), p, WithSearchConfig(fastConfig())); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := svc.Submit(context.Background(), servicePlatform(41), WithSearchConfig(fastConfig())); err != nil {
		t.Fatalf("backlog submission must be admitted: %v", err)
	}
	if _, err := svc.Submit(context.Background(), servicePlatform(42), WithSearchConfig(fastConfig())); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submission = %v, want ErrQueueFull", err)
	}
	close(release)
	svc.Close()
}

func TestJobEventsReplayAndPlatformStamp(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 2, QueueDepth: 8})
	defer svc.Close()
	job, err := svc.Submit(context.Background(), servicePlatform(43), WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Subscribing after completion replays the full log, then closes.
	var events []Event
	for ev := range job.Events() {
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("completed job must replay its events")
	}
	doneByStage := map[Stage]int{}
	for _, ev := range events {
		if ev.Platform != "taurus" {
			t.Fatalf("event %+v missing its platform stamp", ev)
		}
		if ev.Done && ev.Candidate == "" {
			doneByStage[ev.Stage]++
		}
	}
	for _, stage := range []Stage{StageLoad, StageSearch, StageCodegen} {
		if doneByStage[stage] != 1 {
			t.Fatalf("stage %s completions = %d, want 1 (%v)", stage, doneByStage[stage], doneByStage)
		}
	}
	st := job.Status()
	if st.Stages[StageSearch].Done < 1 || st.Stages[StageLoad].Done != 1 {
		t.Fatalf("status stage snapshot wrong: %+v", st.Stages)
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	cfg := fastConfig()
	h := func(p *alchemy.Platform, seed int64) string {
		t.Helper()
		c := cfg
		c.Seed = seed
		hash, err := SpecHash(p, c)
		if err != nil {
			t.Fatal(err)
		}
		return hash
	}
	a := h(servicePlatform(44), 1)
	if b := h(servicePlatform(44), 1); b != a {
		t.Fatal("identical declarations must hash identically")
	}
	if b := h(servicePlatform(44), 2); b == a {
		t.Fatal("seed must change the hash")
	}
	if b := h(servicePlatform(45), 1); b == a {
		t.Fatal("dataset content must change the hash")
	}
	tight := servicePlatform(44)
	tight.Constrain(alchemy.Constraints{Resources: alchemy.Resources{Rows: 4}})
	if b := h(tight, 1); b == a {
		t.Fatal("constraints must change the hash")
	}
	svm := servicePlatform(44, "svm")
	if b := h(svm, 1); b == a {
		t.Fatal("algorithm list must change the hash")
	}
}

func TestGenerateAcrossEventsCarryPlatform(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "sweep_ev", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(46)})
	p := alchemy.Taurus()
	p.Schedule(model)
	var mu sync.Mutex
	seen := map[string]bool{}
	_, err := GenerateAcross(context.Background(), p, []string{"taurus", "tofino"},
		WithSearchConfig(fastConfig()), WithProgress(func(ev Event) {
			mu.Lock()
			seen[ev.Platform] = true
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !seen["taurus"] || !seen["tofino"] {
		t.Fatalf("sweep events must carry each platform, saw %v", seen)
	}
	if seen[""] {
		t.Fatal("sweep emitted unstamped events")
	}
}
