# Developer entry points. `make check` is the tier-1 gate; `make
# bench-smoke` executes every benchmark once so the bench harness cannot
# silently rot; `make bench-json` snapshots the full benchmark pass into
# BENCH_pr10.json (the artifact CI's bench-compare job uploads and
# checks); `make staticcheck` runs the pinned lint gate.

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: check vet build test validate fuzz bench-smoke bench bench-json staticcheck

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Translation validation (docs/validation.md): the differential harness
# across every model family, the interpreter + divergence-corpus
# regression suite, and the product-surface validation tests (validate
# stage, rollout gate, CLI -validate, HTTP wire).
validate:
	$(GO) test -count=1 ./internal/validate/
	$(GO) test -count=1 -run 'Valid|RolloutGate' . ./cmd/homunculus/ ./internal/httpapi/

# Budgeted EMI fuzz sweep (the nightly CI job). FUZZ_BUDGET caps the
# wall clock; FUZZ_SEED varies the model stream; divergence repros land
# in fuzz-repros/ (override with FUZZ_REPRO_DIR), one JSON per finding,
# replayable with `homunculus -validate -repro <file>`.
FUZZ_BUDGET ?= 300s
FUZZ_SEED ?=
fuzz:
	FUZZ_BUDGET=$(FUZZ_BUDGET) FUZZ_SEED=$(FUZZ_SEED) FUZZ_REPRO_DIR=$(CURDIR)/fuzz-repros \
	    $(GO) test -count=1 -run TestFuzzNightly -v ./internal/validate/

# One iteration of every benchmark, no unit tests: catches bit-rotted
# benchmark code and asserts the allocation budgets in bench_test.go.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/cluster/

# Full benchmark pass with allocation reporting (slow).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' . ./internal/cluster/

# Snapshot the benchmark pass as BENCH_pr10.json (one iteration per
# benchmark, with allocation reporting so the budget comparison in CI
# has allocs_per_op for every entry). The serve-path benchmarks are then
# re-run at 2000 iterations — their ns/op carries a CI regression budget,
# and a single-iteration sample is too noisy to gate on — and the
# cluster fetch benchmark at 200 iterations (it seeds a real compile, so
# its fixture dominates a 1x run); the later passes overwrite the 1x
# entries in the snapshot. The bench output goes through a temp file,
# not a pipe, so a failing benchmark run fails the target instead of
# feeding a truncated snapshot to the parser.
bench-json:
	$(GO) version > BENCH_pr10.out
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' . >> BENCH_pr10.out
	$(GO) test -bench='^(BenchmarkServeClassify|BenchmarkServeClassifyConcurrent|BenchmarkEndpointClassifyCanary)$$' \
	    -benchtime=2000x -benchmem -run='^$$' . >> BENCH_pr10.out
	$(GO) test -bench='^BenchmarkClusterCacheFetch$$' \
	    -benchtime=200x -benchmem -run='^$$' ./internal/cluster/ >> BENCH_pr10.out
	python3 scripts/bench2json.py --pr 10 \
	    --description "Cluster-fabric snapshot (go test -bench . -benchmem; serve benchmarks at -benchtime=2000x, cluster fetch at -benchtime=200x). All prior allocation budgets hold and the serve path keeps its 0 allocs/op steady state (steady_allocs). BenchmarkClusterCacheFetch measures one peer artifact fetch — HTTP round trip plus envelope digest verification over loopback — i.e. the latency a remote cache hit pays instead of recompiling; CI's bench-compare budgets it at 2ms/op (~15x headroom over the committed ~135us sample) so a regression in the fetch path or envelope verification cannot land silently. The PR9 autopilot gate (within_pct <= 10) still applies." \
	    < BENCH_pr10.out > BENCH_pr10.json
	rm -f BENCH_pr10.out

# Pinned staticcheck (the CI lint gate); requires network on first run
# to install the tool.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
