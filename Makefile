# Developer entry points. `make check` is the tier-1 gate; `make
# bench-smoke` executes every benchmark once so the bench harness cannot
# silently rot.

GO ?= go

.PHONY: check vet build test bench-smoke bench

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of every benchmark, no unit tests: catches bit-rotted
# benchmark code and asserts the allocation budgets in bench_test.go.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Full benchmark pass with allocation reporting (slow).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
