# Developer entry points. `make check` is the tier-1 gate; `make
# bench-smoke` executes every benchmark once so the bench harness cannot
# silently rot; `make bench-json` snapshots the full benchmark pass into
# BENCH_pr4.json (the artifact CI's bench-compare job uploads and
# checks); `make staticcheck` runs the pinned lint gate.

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: check vet build test bench-smoke bench bench-json staticcheck

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of every benchmark, no unit tests: catches bit-rotted
# benchmark code and asserts the allocation budgets in bench_test.go.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Full benchmark pass with allocation reporting (slow).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Snapshot the benchmark pass as BENCH_pr4.json (one iteration per
# benchmark, with allocation reporting so the budget comparison in CI
# has allocs_per_op for every entry). The bench output goes through a
# temp file, not a pipe, so a failing benchmark run fails the target
# instead of feeding a truncated snapshot to the parser.
bench-json:
	$(GO) version > BENCH_pr4.out
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' . >> BENCH_pr4.out
	python3 scripts/bench2json.py --pr 4 \
	    --description "Deployment-runtime snapshot (go test -bench . -benchmem -benchtime=1x). PR1-PR3 budgets hold; BenchmarkServeClassify asserts the serve path's 0 allocs/op steady state (steady_allocs metric) through deploy -> micro-batcher -> shard -> prepared quantized predictor." \
	    < BENCH_pr4.out > BENCH_pr4.json
	rm -f BENCH_pr4.out

# Pinned staticcheck (the CI lint gate); requires network on first run
# to install the tool.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
