package homunculus

// Rollout-gate tests: an endpoint that opted into ValidateRollouts must
// refuse to serve an artifact that diverges from its model's reference
// semantics — the acceptance scenario is a deliberately corrupted
// emitted artifact (an injected codegen bug) caught at serve time.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/p4gen"
	"repro/internal/spatialgen"
)

// gateTreeModel is a tiny dtree whose spatial artifact carries the
// literal threshold 0.375 — an exact Q8.8 value we can corrupt.
func gateTreeModel() *ir.Model {
	return &ir.Model{Kind: ir.DTree, Name: "gate_tree", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{Feature: 0, Threshold: 0.375,
			Left:  &ir.TreeNode{Feature: -1, Class: 0},
			Right: &ir.TreeNode{Feature: -1, Class: 1}}}
}

func gateSVMModel() *ir.Model {
	return &ir.Model{Kind: ir.SVM, Name: "gate_svm", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		SVM: &ir.SVMParams{
			W: [][]float64{{0.75, -1.5}, {-0.5, 1.125}},
			B: []float64{0.25, -0.125},
		}}
}

// gatePipeline builds an out-of-band pipeline shipping the platform's
// real emitted artifact for m, exactly as codegen would.
func gatePipeline(t *testing.T, platform string, m *ir.Model) *Pipeline {
	t.Helper()
	var src string
	switch platform {
	case "tofino":
		prog, err := p4gen.Generate(m)
		if err != nil {
			t.Fatalf("p4gen: %v", err)
		}
		src = prog.Source
	default:
		prog, err := spatialgen.Generate(m)
		if err != nil {
			t.Fatalf("spatialgen: %v", err)
		}
		src = prog.Source
	}
	return &Pipeline{Platform: platform, Apps: []AppResult{{Name: m.Name, Model: m, Code: src}}}
}

// corruptCode returns a copy of pipe whose shipped artifact text has old
// replaced by new — the injected codegen bug.
func corruptCode(t *testing.T, pipe *Pipeline, oldS, newS string) *Pipeline {
	t.Helper()
	mutated := strings.Replace(pipe.Apps[0].Code, oldS, newS, 1)
	if mutated == pipe.Apps[0].Code {
		t.Fatalf("corruption target %q not found in artifact:\n%s", oldS, pipe.Apps[0].Code)
	}
	out := *pipe
	out.Apps = append([]AppResult(nil), pipe.Apps...)
	out.Apps[0].Code = mutated
	return &out
}

// TestRolloutGateRefusesCorruptedSpatialArtifact injects a codegen bug —
// a silently shifted decision threshold in the emitted Spatial text —
// and requires the gate to refuse both endpoint creation and rollout,
// while clean artifacts and ungated endpoints keep working.
func TestRolloutGateRefusesCorruptedSpatialArtifact(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1})
	t.Cleanup(func() { _ = svc.Close() })

	clean := gatePipeline(t, "taurus", gateTreeModel())
	// The artifact still parses — the tree just tests a different
	// threshold than the model, which is exactly what a rounding bug in
	// the emitter would ship.
	corrupt := corruptCode(t, clean, "0.375", "0.25")

	if _, err := svc.CreateEndpointPipeline("gated", corrupt, EndpointOptions{ValidateRollouts: true}); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("corrupted create = %v, want ErrValidationFailed", err)
	}
	// The gate is opt-in: without the flag the same pipeline serves
	// (Classify runs the model, not the artifact — the flag is what
	// promises they agree).
	unguarded, err := svc.CreateEndpointPipeline("unguarded", corrupt, EndpointOptions{})
	if err != nil {
		t.Fatalf("ungated create: %v", err)
	}
	_ = unguarded.Close()

	ep, err := svc.CreateEndpointPipeline("gated", clean, EndpointOptions{ValidateRollouts: true})
	if err != nil {
		t.Fatalf("clean create: %v", err)
	}
	if !ep.Config().ValidateRollouts {
		t.Fatal("Config must report ValidateRollouts")
	}

	// Rollouts inherit the endpoint's gate.
	if _, err := ep.RolloutPipeline(corrupt, RolloutOptions{CanaryPercent: 25}); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("corrupted rollout = %v, want ErrValidationFailed", err)
	}
	// A refused rollout holds no slot: a clean one proceeds immediately.
	if _, err := ep.RolloutPipeline(clean, RolloutOptions{CanaryPercent: 25}); err != nil {
		t.Fatalf("clean rollout after refusal: %v", err)
	}
}

// TestRolloutGateRefusesCorruptedP4Artifact covers the tofino path: a
// negated weight in an emitted match-action entry.
func TestRolloutGateRefusesCorruptedP4Artifact(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1})
	t.Cleanup(func() { _ = svc.Close() })

	clean := gatePipeline(t, "tofino", gateSVMModel())
	corrupt := corruptCode(t, clean, "(_) : mac_0(", "(_) : mac_0(-")

	if _, err := svc.CreateEndpointPipeline("p4gated", corrupt, EndpointOptions{ValidateRollouts: true}); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("corrupted create = %v, want ErrValidationFailed", err)
	}
	if _, err := svc.CreateEndpointPipeline("p4gated", clean, EndpointOptions{ValidateRollouts: true}); err != nil {
		t.Fatalf("clean create: %v", err)
	}
}

// TestRolloutGateRefusesUnparseableArtifact: truncation (a partial
// write, a bad merge) is as refused as a semantic divergence.
func TestRolloutGateRefusesUnparseableArtifact(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1})
	t.Cleanup(func() { _ = svc.Close() })

	pipe := gatePipeline(t, "taurus", gateTreeModel())
	pipe.Apps[0].Code = pipe.Apps[0].Code[:len(pipe.Apps[0].Code)/3]
	if _, err := svc.CreateEndpointPipeline("trunc", pipe, EndpointOptions{ValidateRollouts: true}); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("truncated create = %v, want ErrValidationFailed", err)
	}
}

// TestRolloutGateHonorsRecordedVerdict: a pipeline whose compile-time
// validation verdict already failed is refused without re-checking.
func TestRolloutGateHonorsRecordedVerdict(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1})
	t.Cleanup(func() { _ = svc.Close() })

	pipe := gatePipeline(t, "taurus", gateTreeModel())
	pipe.Apps[0].Validation = &ValidationReport{Evaluators: []string{"ir", "spatial"}, Inputs: 10, Divergences: 3}
	if _, err := svc.CreateEndpointPipeline("verdict", pipe, EndpointOptions{ValidateRollouts: true}); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("recorded-diverging create = %v, want ErrValidationFailed", err)
	}
}

// TestRolloutGateSurvivesRestart: the flag persists in the endpoint
// manifest, so a restored endpoint still refuses a diverging rollout.
func TestRolloutGateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)

	clean := gatePipeline(t, "taurus", gateTreeModel())
	if _, err := svc.CreateEndpointPipeline("gated", clean, EndpointOptions{ValidateRollouts: true}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := mustOpen(t, dir, nil)
	t.Cleanup(func() { _ = svc2.Close() })
	ep, ok := svc2.Endpoint("gated")
	if !ok {
		t.Fatalf("endpoint not restored: %+v", svc2.Recovery())
	}
	if !ep.Config().ValidateRollouts {
		t.Fatal("ValidateRollouts lost across restart")
	}
	corrupt := corruptCode(t, clean, "0.375", "0.25")
	if _, err := ep.RolloutPipeline(corrupt, RolloutOptions{CanaryPercent: 25}); !errors.Is(err, ErrValidationFailed) {
		t.Fatalf("post-restart corrupted rollout = %v, want ErrValidationFailed", err)
	}
}
