package homunculus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fixed"
	"repro/internal/ir"
)

// persistTestPipeline is a handcrafted two-app pipeline exercising every
// persisted field: models of two kinds, verdict metrics, generated code,
// a composition verdict, and one model-less (infeasible) app.
func persistTestPipeline() *Pipeline {
	tree := &ir.Model{
		Kind: ir.DTree, Name: "ad", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		FeatureNames: []string{"f0", "f1"},
		Tree: &ir.TreeNode{
			Feature: 0, Threshold: 0.5,
			Left:  &ir.TreeNode{Feature: -1, Class: 0},
			Right: &ir.TreeNode{Feature: -1, Class: 1},
		},
	}
	net := &ir.Model{
		Kind: ir.DNN, Name: "tc", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Mean: []float64{0.1, 0.2}, Std: []float64{1, 2},
		Layers: []ir.Layer{
			{In: 2, Out: 2, Activation: "relu", W: [][]float64{{0.5, -0.5}, {0.25, 0.75}}, B: []float64{0, 0.1}},
		},
	}
	return &Pipeline{
		Platform: "taurus",
		Apps: []AppResult{
			{
				Name: "ad", Algorithm: "dtree", Metric: 0.93, Model: tree,
				Verdict: core.Verdict{Feasible: true, Metrics: map[string]float64{"cus": 12, "lut_pct": 3.5}},
				Code:    "// spatial source\n",
			},
			{
				Name: "tc", Algorithm: "dnn", Metric: 0.88, Model: net,
				Verdict: core.Verdict{Feasible: true, Metrics: map[string]float64{"cus": 40}},
				Code:    "// more source\n",
			},
			{
				Name:    "infeasible",
				Verdict: core.Verdict{Feasible: false, Reason: "no candidate fit"},
			},
		},
		Composition: &core.Verdict{Feasible: true, Metrics: map[string]float64{"cus": 52}},
	}
}

func TestPipelineRoundTrip(t *testing.T) {
	pipe := persistTestPipeline()
	raw, err := MarshalPipeline(pipe)
	if err != nil {
		t.Fatalf("MarshalPipeline: %v", err)
	}
	got, err := UnmarshalPipeline(raw)
	if err != nil {
		t.Fatalf("UnmarshalPipeline: %v", err)
	}
	if got.Platform != "taurus" || len(got.Apps) != 3 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	if got.Apps[0].Algorithm != "dtree" || got.Apps[0].Metric != 0.93 || got.Apps[0].Code != "// spatial source\n" {
		t.Fatalf("app fields lost: %+v", got.Apps[0])
	}
	if got.Apps[0].Model == nil || got.Apps[0].Model.Kind != ir.DTree || got.Apps[0].Model.Tree == nil {
		t.Fatalf("tree model lost: %+v", got.Apps[0].Model)
	}
	if got.Apps[1].Model == nil || got.Apps[1].Model.Kind != ir.DNN || len(got.Apps[1].Model.Layers) != 1 {
		t.Fatalf("dnn model lost: %+v", got.Apps[1].Model)
	}
	if got.Apps[2].Model != nil || got.Apps[2].Verdict.Feasible || got.Apps[2].Verdict.Reason != "no candidate fit" {
		t.Fatalf("infeasible app changed: %+v", got.Apps[2])
	}
	if got.Composition == nil || got.Composition.Metrics["cus"] != 52 {
		t.Fatalf("composition lost: %+v", got.Composition)
	}
	if got.Apps[0].Verdict.Metrics["lut_pct"] != 3.5 {
		t.Fatalf("verdict metrics lost: %+v", got.Apps[0].Verdict)
	}

	// Recovered models must classify identically to the originals.
	for _, x := range [][]float64{{0, 0}, {1, 1}, {0.4, 2}, {0.6, -1}} {
		want, err := pipe.Apps[0].Model.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		c, err := got.Apps[0].Model.Infer(x)
		if err != nil || c != want {
			t.Fatalf("recovered tree diverges on %v: %d vs %d (%v)", x, c, want, err)
		}
	}
}

// TestPipelineMarshalDeterministic is what makes the artifact store
// content-addressed in practice: equal pipelines serialize to equal
// bytes, including after a round trip through the store format.
func TestPipelineMarshalDeterministic(t *testing.T) {
	a, err := MarshalPipeline(persistTestPipeline())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalPipeline(persistTestPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two marshals of equal pipelines differ")
	}
	back, err := UnmarshalPipeline(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MarshalPipeline(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("marshal→unmarshal→marshal is not byte-stable:\n%s\nvs\n%s", a, c)
	}
}

func TestPipelineCandidatesNotPersisted(t *testing.T) {
	pipe := persistTestPipeline()
	pipe.Apps[0].Candidates = []core.CandidateResult{{Algorithm: ir.DTree, Metric: 0.9}}
	raw, err := MarshalPipeline(pipe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPipeline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Apps[0].Candidates != nil {
		t.Fatal("candidate telemetry must not round-trip through the store")
	}
}

func TestPipelineUnmarshalRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalPipeline([]byte("{broken")); err == nil {
		t.Fatal("garbage must not parse")
	}
	if _, err := UnmarshalPipeline([]byte(`{"version":99,"platform":"taurus"}`)); err == nil {
		t.Fatal("unknown version must be rejected")
	}
	// An invalid embedded model must fail validation, not load.
	if _, err := UnmarshalPipeline([]byte(`{"version":1,"platform":"taurus","apps":[{"name":"x","metric":0,"verdict":{"feasible":true},"model":{"version":1,"kind":"dnn","name":"x","inputs":1,"outputs":1}}]}`)); err == nil {
		t.Fatal("invalid embedded model must be rejected")
	}
}

func TestSearchConfigRoundTripPreservesSpecHash(t *testing.T) {
	cfg := core.DefaultSearchConfig()
	cfg.Seed = 7
	cfg.TrainEpochs = 42
	cfg.Algorithms = []ir.Kind{ir.DNN, ir.DTree}
	raw, err := marshalSearchConfig(cfg, true)
	if err != nil {
		t.Fatalf("marshalSearchConfig: %v", err)
	}
	back, validated, err := unmarshalSearchConfig(raw)
	if err != nil {
		t.Fatalf("unmarshalSearchConfig: %v", err)
	}
	if !validated {
		t.Fatal("validate flag lost in search-config round trip")
	}

	// The recovered config must produce the same content address as the
	// original — that is what makes a recompiled job land on the same
	// artifact key.
	p := servicePlatform(3)
	h1, err := SpecHash(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SpecHash(p, back)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("spec hash changed across search-config round trip: %s vs %s", h1, h2)
	}
}
