// Package homunculus is the public entry point of the Homunculus
// framework (Swamy et al., ASPLOS 2023 — "Homunculus: Auto-Generating
// Efficient Data-Plane ML Pipelines for Datacenter Networks"): declare
// datasets, objectives, and a target with the alchemy DSL, then call
// Generate to run design-space exploration, training, feasibility testing,
// and backend code generation in one step.
//
//	platform := alchemy.Taurus()
//	platform.Constrain(alchemy.Constraints{ ... })
//	platform.Schedule(model)
//	pipeline, err := homunculus.Generate(ctx, platform)
//
// Compilation runs as an explicit staged pipeline — load → search →
// compose → codegen (docs/architecture.md) — with per-app fan-out on the
// shared worker pool, cooperative cancellation through ctx, and optional
// progress reporting via WithProgress. Backends resolve through the
// internal/backend registry, so GenerateAcross can compile one
// declaration against every registered platform and report the verdict
// per target.
//
// The returned Pipeline carries, per scheduled model, the selected
// algorithm and architecture, the achieved objective metric (measured with
// bit-accurate fixed-point inference), the backend resource verdict, and
// the generated Spatial or P4 source.
package homunculus

import (
	"context"
	"fmt"
	"sync"

	"repro/alchemy"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/parallel"
)

// Stage names one phase of the compilation pipeline, in execution order:
// load (datasets materialize), search (per-app design-space exploration),
// compose (whole-pipeline feasibility), codegen (backend source),
// validate (optional translation validation of the emitted artifacts).
type Stage string

// Pipeline stages.
const (
	StageLoad     Stage = "load"
	StageSearch   Stage = "search"
	StageCompose  Stage = "compose"
	StageCodegen  Stage = "codegen"
	StageValidate Stage = "validate"
)

// Event is one progress notification. Every unit of work emits a start
// event (Done false) and a completion event (Done true); candidate-level
// search events additionally carry the algorithm family.
type Event struct {
	Stage Stage
	// Platform is the backend kind being compiled for ("taurus",
	// "tofino", ...). It disambiguates events when one observer watches
	// concurrent per-target compilations — a GenerateAcross sweep or a
	// multi-tenant Service.
	Platform string
	// App is the application (model) name; empty for pipeline-level
	// events (the compose stage).
	App string
	// Candidate is the algorithm family of a per-candidate search event;
	// empty for app-level events.
	Candidate string
	// Done marks completion of the (stage, app, candidate) unit.
	Done bool
}

// ProgressFunc observes pipeline progress. Calls are serialized within
// one compilation (no internal locking needed for per-job observers) but
// may come from worker goroutines — and an observer shared across
// concurrent compilations (a GenerateAcross sweep) sees interleaved
// streams, distinguishable by Event.Platform, and must synchronize its
// own state. Keep it fast or hand off to a channel. Observability only —
// it cannot change compilation results.
type ProgressFunc func(Event)

// Option customizes Generate.
type Option func(*options)

type options struct {
	search   core.SearchConfig
	progress ProgressFunc
	// validate runs translation validation after codegen and attaches
	// the verdict to each AppResult. It is part of the spec hash: a
	// validated pipeline is a different artifact than an unvalidated one.
	validate bool
	// preloaded carries per-model data already materialized by the
	// service's spec-hashing pass, so a cache miss does not load twice.
	preloaded map[*alchemy.Model]*alchemy.Data
}

// WithSearchConfig replaces the default search configuration (BO budget,
// design-space bounds, seed) — the knob the experiment harness uses.
func WithSearchConfig(cfg core.SearchConfig) Option {
	return func(o *options) {
		o.search = cfg
	}
}

// WithSeed sets the global search seed, keeping other defaults.
func WithSeed(seed int64) Option {
	return func(o *options) { o.search.Seed = seed }
}

// WithProgress installs a progress observer on the pipeline.
func WithProgress(fn ProgressFunc) Option {
	return func(o *options) { o.progress = fn }
}

// WithValidation enables the validate stage: after codegen, each
// compiled model's emitted artifacts are executed by the
// internal/validate interpreters against bit-accurate IR inference on
// fixed-seed traffic, and the verdict lands on AppResult.Validation
// (docs/validation.md). Divergence does not fail compilation; it is
// surfaced for the CLI, the jobs API, and the endpoint rollout gate to
// act on.
func WithValidation() Option {
	return func(o *options) { o.validate = true }
}

// AppResult is the outcome for one scheduled model.
type AppResult struct {
	Name string
	// Algorithm is the selected family ("dnn", "svm", ...).
	Algorithm string
	// Metric is the achieved objective (F1 / accuracy / V-measure) under
	// quantized inference.
	Metric float64
	// Model is the deployable IR.
	Model *ir.Model
	// Verdict is the backend resource/performance report.
	Verdict core.Verdict
	// Code is the generated backend source (Spatial or P4).
	Code string
	// Validation is the translation-validation verdict; nil unless the
	// job was submitted with WithValidation.
	Validation *ValidationReport
	// Candidates summarizes every algorithm family tried.
	Candidates []core.CandidateResult
}

// Pipeline is the compiled data-plane ML pipeline.
type Pipeline struct {
	Platform string
	Apps     []AppResult
	// Composition is the whole-pipeline resource verdict when more than
	// one model is scheduled on a composition-capable target.
	Composition *core.Verdict
}

// Generate compiles the platform's scheduled models through the staged
// pipeline: load materializes each unique model's datasets; search runs
// the optimization core per app, fanned out on the shared worker pool
// (§3.2.1's parallel runs, lifted to whole applications); compose checks
// whole-pipeline resources for multi-model schedules (§3.2.1 consistency
// rules); codegen emits the backend source for every deployable model.
//
// Cancellation is cooperative: when ctx is done, running searches abort
// at their next evaluation and Generate returns an error wrapping
// ctx.Err(). With an undone ctx, fixed-seed output is byte-identical at
// any GOMAXPROCS.
//
// Generate is a thin wrapper over the process-wide DefaultService: it
// submits the declaration as a job and blocks on its completion. For
// asynchronous handles, bounded admission, and content-addressed result
// caching, construct a Service and call Submit directly (docs/api.md).
func Generate(ctx context.Context, p *alchemy.Platform, opts ...Option) (*Pipeline, error) {
	job, err := DefaultService().Submit(ctx, p, opts...)
	if err != nil {
		return nil, err
	}
	return job.Wait(ctx)
}

// appJob is one unique scheduled model flowing through the stages.
type appJob struct {
	model *alchemy.Model
	app   core.App
	cfg   core.SearchConfig
	res   *core.SearchResult
	out   AppResult
}

func compile(ctx context.Context, p *alchemy.Platform, target core.Target, o *options) (*Pipeline, error) {
	// Progress calls are serialized across the concurrently searching
	// apps so the observer needs no locking of its own. Every event is
	// stamped with the platform kind so observers of concurrent
	// compilations (sweeps, the Service) can tell the streams apart.
	var progressMu sync.Mutex
	kind := p.Kind.String()
	emit := func(ev Event) {
		if o.progress == nil {
			return
		}
		ev.Platform = kind
		progressMu.Lock()
		defer progressMu.Unlock()
		o.progress(ev)
	}

	// Stage 1: load. Each *alchemy.Model is loaded and searched once even
	// if scheduled several times (e.g. the Table-3 chaining experiment);
	// loads run serially because DataLoaders are arbitrary user code.
	models := p.Sched.Models()
	index := map[*alchemy.Model]int{}
	var jobs []*appJob
	for _, m := range models {
		if _, seen := index[m]; seen {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("homunculus: compilation cancelled: %w", err)
		}
		emit(Event{Stage: StageLoad, App: m.Spec.Name})
		job, err := loadApp(m, target, o.search, o.preloaded[m])
		if err != nil {
			return nil, err
		}
		emit(Event{Stage: StageLoad, App: m.Spec.Name, Done: true})
		index[m] = len(jobs)
		jobs = append(jobs, job)
	}

	// Stage 2: search. Apps fan out as tasks on the shared pool — the
	// same pool their family searches and kernels draw helpers from, so
	// multi-app schedules parallelize without oversubscribing. Each task
	// writes only its own job, keeping fixed-seed results independent of
	// scheduling.
	errs := make([]error, len(jobs))
	tasks := make([]func(), 0, len(jobs))
	for i, job := range jobs {
		i, job := i, job
		tasks = append(tasks, func() {
			emit(Event{Stage: StageSearch, App: job.app.Name})
			cfg := job.cfg
			cfg.OnCandidate = func(ev core.CandidateEvent) {
				emit(Event{Stage: StageSearch, App: ev.App, Candidate: ev.Algorithm.String(), Done: ev.Done})
			}
			res, err := core.Search(ctx, job.app, target, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			job.res = res
			emit(Event{Stage: StageSearch, App: job.app.Name, Done: true})
		})
	}
	runErr := parallel.RunCtx(ctx, tasks...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if runErr != nil {
		return nil, fmt.Errorf("homunculus: compilation cancelled: %w", runErr)
	}
	for _, job := range jobs {
		job.out = AppResult{Name: job.app.Name, Candidates: job.res.Candidates}
		if best := job.res.Best; best != nil {
			// A nil Best is not an error: the app surfaces with an empty
			// model so multi-app schedules can report partial success.
			job.out.Algorithm = best.Algorithm.String()
			job.out.Metric = best.Metric
			job.out.Model = best.Model
			job.out.Verdict = best.Verdict
		}
	}

	// Stage 3: compose. Whole-pipeline feasibility for multi-model
	// schedules on composition-capable targets (Taurus).
	pipe := &Pipeline{Platform: p.Kind.String()}
	leaves := 0
	for _, m := range models {
		out := jobs[index[m]].out
		pipe.Apps = append(pipe.Apps, out)
		if out.Model != nil {
			leaves++
		}
	}
	if _, ok := target.(core.Composer); ok && leaves > 1 {
		emit(Event{Stage: StageCompose})
		if comp := buildComposition(p.Sched, pipe.Apps); comp != nil {
			v, err := core.EstimateComposition(target, comp)
			if err != nil {
				return nil, err
			}
			pipe.Composition = &v
		}
		emit(Event{Stage: StageCompose, Done: true})
	}

	// Stage 4: codegen. Emit backend source once per unique model, then
	// share it across that model's schedule instances.
	for _, job := range jobs {
		if job.out.Model == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("homunculus: compilation cancelled: %w", err)
		}
		emit(Event{Stage: StageCodegen, App: job.out.Name})
		code, err := target.Generate(job.out.Model)
		if err != nil {
			return nil, err
		}
		job.out.Code = code
		emit(Event{Stage: StageCodegen, App: job.out.Name, Done: true})
	}
	for i, m := range models {
		pipe.Apps[i].Code = jobs[index[m]].out.Code
	}

	// Stage 5 (opt-in): validate. Translation-validate each unique
	// model's emitted artifacts against the IR reference and attach the
	// verdict. Runs after codegen so a verdict always describes the same
	// artifacts the pipeline carries.
	if o.validate {
		for _, job := range jobs {
			if job.out.Model == nil {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("homunculus: compilation cancelled: %w", err)
			}
			emit(Event{Stage: StageValidate, App: job.out.Name})
			job.out.Validation = validateModel(job.out.Model)
			emit(Event{Stage: StageValidate, App: job.out.Name, Done: true})
		}
		for i, m := range models {
			pipe.Apps[i].Validation = jobs[index[m]].out.Validation
		}
	}
	return pipe, nil
}

// loadApp materializes one model's datasets and search configuration.
// A non-nil data skips the loader call (the service passes data it
// already materialized while fingerprinting the spec).
func loadApp(m *alchemy.Model, target core.Target, search core.SearchConfig, data *alchemy.Data) (*appJob, error) {
	if data == nil {
		var err error
		data, err = m.Spec.DataLoader.Load()
		if err != nil {
			return nil, fmt.Errorf("homunculus: load data for %q: %w", m.Spec.Name, err)
		}
	}
	train, test, err := data.Datasets()
	if err != nil {
		return nil, fmt.Errorf("homunculus: model %q: %w", m.Spec.Name, err)
	}
	job := &appJob{
		model: m,
		app: core.App{
			Name:      m.Spec.Name,
			Train:     train,
			Test:      test,
			Normalize: m.Spec.Normalize == nil || *m.Spec.Normalize,
		},
	}
	cfg := search
	cfg.Metric = core.Metric(m.Spec.OptimizationMetric)
	cfg.Algorithms = nil
	for _, a := range m.Spec.Algorithms {
		kind, err := ir.ParseKind(a)
		if err != nil {
			return nil, fmt.Errorf("homunculus: model %q: %w", m.Spec.Name, err)
		}
		cfg.Algorithms = append(cfg.Algorithms, kind)
	}
	job.cfg = cfg
	return job, nil
}

// TargetReport is one backend's outcome in a cross-platform sweep.
type TargetReport struct {
	// Platform is the registry kind ("taurus", "tofino", "fpga", ...).
	Platform string
	// Pipeline is the compiled result; nil when compilation failed
	// outright (Err set).
	Pipeline *Pipeline
	// Err records a hard per-target failure (bad constraints for that
	// backend, load errors). "No feasible model" is NOT an error — it
	// shows as a Pipeline whose apps carry no model.
	Err error
}

// GenerateAcross compiles one declaration against several backends — by
// default every registered one — and reports per-target outcomes: the
// scenario-diversity sweep the backend registry enables. The platform's
// declared kind is ignored; its constraints and schedule apply to every
// target (zero-valued constraint fields take each backend's defaults).
//
// Per-target compilations are submitted concurrently through the
// DefaultService — its admission bound (GOMAXPROCS in flight) paces the
// sweep — and each runs the full staged pipeline, so per-target results
// match a direct Generate call with that kind (every Event carries its
// Platform so one observer can tell the interleaved streams apart).
// Reports come back in the order of kinds. Hard failures on one target
// do not stop the sweep; cancellation does.
func GenerateAcross(ctx context.Context, p *alchemy.Platform, kinds []string, opts ...Option) ([]TargetReport, error) {
	if len(kinds) == 0 {
		kinds = backend.Names()
	}
	svc := DefaultService()
	jobs := make([]*Job, len(kinds))
	submitErrs := make([]error, len(kinds))
	for i, kind := range kinds {
		if err := ctx.Err(); err != nil {
			cancelJobs(jobs)
			return nil, fmt.Errorf("homunculus: sweep cancelled: %w", err)
		}
		clone := *p
		clone.Kind = alchemy.PlatformKind(kind)
		jobs[i], submitErrs[i] = svc.Submit(ctx, &clone, opts...)
	}
	reports := make([]TargetReport, 0, len(kinds))
	for i, kind := range kinds {
		if submitErrs[i] != nil {
			reports = append(reports, TargetReport{Platform: kind, Err: submitErrs[i]})
			continue
		}
		pipe, err := jobs[i].Wait(ctx)
		if err != nil {
			if ctx.Err() != nil {
				cancelJobs(jobs[i:])
				return reports, err
			}
			reports = append(reports, TargetReport{Platform: kind, Err: err})
			continue
		}
		reports = append(reports, TargetReport{Platform: kind, Pipeline: pipe})
	}
	return reports, nil
}

// cancelJobs cancels the still-pending tail of an abandoned sweep.
func cancelJobs(jobs []*Job) {
	for _, j := range jobs {
		if j != nil {
			j.Cancel()
		}
	}
}

// buildComposition mirrors the alchemy schedule tree over the searched
// models (dropping models the search could not satisfy).
func buildComposition(s *alchemy.Schedule, apps []AppResult) *core.Composition {
	byName := map[string]*ir.Model{}
	for _, a := range apps {
		if a.Model != nil {
			byName[a.Name] = a.Model
		}
	}
	var build func(s *alchemy.Schedule) *core.Composition
	build = func(s *alchemy.Schedule) *core.Composition {
		if s == nil {
			return nil
		}
		if s.Model != nil {
			if m := byName[s.Model.Spec.Name]; m != nil {
				return core.Leaf(m)
			}
			return nil
		}
		var children []*core.Composition
		for _, ch := range s.Children {
			if c := build(ch); c != nil {
				children = append(children, c)
			}
		}
		if len(children) == 0 {
			return nil
		}
		if len(children) == 1 {
			return children[0]
		}
		op := core.Seq
		if s.Op == alchemy.OpPar {
			op = core.Par
		}
		return &core.Composition{Op: op, Children: children}
	}
	return build(s)
}
