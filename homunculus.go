// Package homunculus is the public entry point of the Homunculus
// framework (Swamy et al., ASPLOS 2023 — "Homunculus: Auto-Generating
// Efficient Data-Plane ML Pipelines for Datacenter Networks"): declare
// datasets, objectives, and a target with the alchemy DSL, then call
// Generate to run design-space exploration, training, feasibility testing,
// and backend code generation in one step.
//
//	platform := alchemy.Taurus()
//	platform.Constrain(alchemy.Constraints{ ... })
//	platform.Schedule(model)
//	pipeline, err := homunculus.Generate(platform)
//
// The returned Pipeline carries, per scheduled model, the selected
// algorithm and architecture, the achieved objective metric (measured with
// bit-accurate fixed-point inference), the backend resource verdict, and
// the generated Spatial or P4 source.
package homunculus

import (
	"fmt"

	"repro/alchemy"
	"repro/internal/core"
	"repro/internal/ir"
)

// Option customizes Generate.
type Option func(*options)

type options struct {
	search   core.SearchConfig
	override bool
}

// WithSearchConfig replaces the default search configuration (BO budget,
// design-space bounds, seed) — the knob the experiment harness uses.
func WithSearchConfig(cfg core.SearchConfig) Option {
	return func(o *options) {
		o.search = cfg
		o.override = true
	}
}

// WithSeed sets the global search seed, keeping other defaults.
func WithSeed(seed int64) Option {
	return func(o *options) { o.search.Seed = seed }
}

// AppResult is the outcome for one scheduled model.
type AppResult struct {
	Name string
	// Algorithm is the selected family ("dnn", "svm", ...).
	Algorithm string
	// Metric is the achieved objective (F1 / accuracy / V-measure) under
	// quantized inference.
	Metric float64
	// Model is the deployable IR.
	Model *ir.Model
	// Verdict is the backend resource/performance report.
	Verdict core.Verdict
	// Code is the generated backend source (Spatial or P4).
	Code string
	// Candidates summarizes every algorithm family tried.
	Candidates []core.CandidateResult
}

// Pipeline is the compiled data-plane ML pipeline.
type Pipeline struct {
	Platform string
	Apps     []AppResult
	// Composition is the whole-pipeline resource verdict when more than
	// one model is scheduled on a Taurus target.
	Composition *core.Verdict
}

// Generate compiles the platform's scheduled models: for each model it
// runs the optimization core (design-space creation, BO-guided DSE,
// training, feasibility testing) and code generation; for compositions it
// additionally checks whole-pipeline resources (§3.2.1 consistency rules).
func Generate(p *alchemy.Platform, opts ...Option) (*Pipeline, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := options{search: core.DefaultSearchConfig()}
	for _, opt := range opts {
		opt(&o)
	}

	target, err := buildTarget(p)
	if err != nil {
		return nil, err
	}

	pipe := &Pipeline{Platform: p.Kind.String()}
	models := p.Sched.Models()
	// Memoize by *alchemy.Model so a model scheduled several times (e.g.
	// the Table-3 chaining experiment) is searched once.
	cache := map[*alchemy.Model]AppResult{}
	var leaves []*core.Composition
	for _, m := range models {
		res, ok := cache[m]
		if !ok {
			var err error
			res, err = generateOne(m, target, o.search)
			if err != nil {
				return nil, err
			}
			cache[m] = res
		}
		pipe.Apps = append(pipe.Apps, res)
		if res.Model != nil {
			leaves = append(leaves, core.Leaf(res.Model))
		}
	}

	// Whole-pipeline feasibility for multi-model Taurus schedules.
	if tt, ok := target.(*core.TaurusTarget); ok && len(leaves) > 1 {
		comp := buildComposition(p.Sched, pipe.Apps)
		if comp != nil {
			v, err := core.EstimateComposition(tt, comp)
			if err != nil {
				return nil, err
			}
			pipe.Composition = &v
		}
	}
	return pipe, nil
}

func generateOne(m *alchemy.Model, target core.Target, search core.SearchConfig) (AppResult, error) {
	data, err := m.Spec.DataLoader.Load()
	if err != nil {
		return AppResult{}, fmt.Errorf("homunculus: load data for %q: %w", m.Spec.Name, err)
	}
	train, test, err := data.Datasets()
	if err != nil {
		return AppResult{}, fmt.Errorf("homunculus: model %q: %w", m.Spec.Name, err)
	}
	app := core.App{
		Name:      m.Spec.Name,
		Train:     train,
		Test:      test,
		Normalize: m.Spec.Normalize == nil || *m.Spec.Normalize,
	}
	cfg := search
	cfg.Metric = core.Metric(m.Spec.OptimizationMetric)
	cfg.Algorithms = nil
	for _, a := range m.Spec.Algorithms {
		kind, err := ir.ParseKind(a)
		if err != nil {
			return AppResult{}, fmt.Errorf("homunculus: model %q: %w", m.Spec.Name, err)
		}
		cfg.Algorithms = append(cfg.Algorithms, kind)
	}
	res, err := core.Search(app, target, cfg)
	if err != nil {
		return AppResult{}, err
	}
	out := AppResult{Name: m.Spec.Name, Candidates: res.Candidates}
	if res.Best == nil {
		// No feasible model exists under the constraints: surface it as a
		// result with empty model rather than an error, so multi-app
		// schedules can report partial success.
		return out, nil
	}
	out.Algorithm = res.Best.Algorithm.String()
	out.Metric = res.Best.Metric
	out.Model = res.Best.Model
	out.Verdict = res.Best.Verdict
	out.Code = res.Code
	return out, nil
}

// buildTarget translates the Alchemy platform declaration into a core
// backend target.
func buildTarget(p *alchemy.Platform) (core.Target, error) {
	switch p.Kind {
	case alchemy.PlatformTaurus:
		t := core.NewTaurusTarget()
		if p.Constraints.Resources.Rows > 0 {
			t.Grid.Rows = p.Constraints.Resources.Rows
		}
		if p.Constraints.Resources.Cols > 0 {
			t.Grid.Cols = p.Constraints.Resources.Cols
		}
		if p.Constraints.Performance.ThroughputGPkts > 0 {
			t.Constraints.ThroughputGPkts = p.Constraints.Performance.ThroughputGPkts
		}
		if p.Constraints.Performance.LatencyNS > 0 {
			t.Constraints.LatencyNS = p.Constraints.Performance.LatencyNS
		}
		return t, nil
	case alchemy.PlatformTofino:
		return core.NewMATTarget(p.Constraints.Resources.Tables), nil
	case alchemy.PlatformFPGA:
		t := core.NewFPGATarget()
		if p.Constraints.Resources.MaxLUTPct > 0 {
			t.MaxLUTPct = p.Constraints.Resources.MaxLUTPct
		}
		if p.Constraints.Resources.MaxPowerW > 0 {
			t.MaxPowerW = p.Constraints.Resources.MaxPowerW
		}
		return t, nil
	default:
		return nil, fmt.Errorf("homunculus: unsupported platform %v", p.Kind)
	}
}

// buildComposition mirrors the alchemy schedule tree over the searched
// models (dropping models the search could not satisfy).
func buildComposition(s *alchemy.Schedule, apps []AppResult) *core.Composition {
	byName := map[string]*ir.Model{}
	for _, a := range apps {
		if a.Model != nil {
			byName[a.Name] = a.Model
		}
	}
	var build func(s *alchemy.Schedule) *core.Composition
	build = func(s *alchemy.Schedule) *core.Composition {
		if s == nil {
			return nil
		}
		if s.Model != nil {
			if m := byName[s.Model.Spec.Name]; m != nil {
				return core.Leaf(m)
			}
			return nil
		}
		var children []*core.Composition
		for _, ch := range s.Children {
			if c := build(ch); c != nil {
				children = append(children, c)
			}
		}
		if len(children) == 0 {
			return nil
		}
		if len(children) == 1 {
			return children[0]
		}
		op := core.Seq
		if s.Op == alchemy.OpPar {
			op = core.Par
		}
		return &core.Composition{Op: op, Children: children}
	}
	return build(s)
}
