package homunculus

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/alchemy"
)

// endpointService compiles two distinct dtree pipelines (different data
// seeds, so almost surely different trees) through one service.
func endpointService(t *testing.T) (*Service, *Job, *Job) {
	t.Helper()
	svc := New(ServiceOptions{MaxInFlight: 2})
	t.Cleanup(func() { _ = svc.Close() })
	submit := func(seed int64) *Job {
		p := alchemy.Taurus()
		p.Schedule(alchemy.NewModel(alchemy.ModelSpec{
			Name: "ad", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(seed)}))
		job, err := svc.Submit(context.Background(), p, WithSearchConfig(fastConfig()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		return job
	}
	return svc, submit(21), submit(33)
}

// TestEndpointLifecycleService walks the whole Go-API lifecycle: create
// a named endpoint from a finished job, serve, roll out a second job as
// a canary, watch both revisions serve, promote, roll back, delete.
func TestEndpointLifecycleService(t *testing.T) {
	svc, job1, job2 := endpointService(t)

	ep, err := svc.CreateEndpoint("anomaly-detection", job1.ID(), EndpointOptions{
		BatchSize: 16, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Name() != "anomaly-detection" || ep.Platform() != "taurus" {
		t.Fatalf("identity: %q %q", ep.Name(), ep.Platform())
	}
	if got, ok := svc.Endpoint("anomaly-detection"); !ok || got != ep {
		t.Fatal("Endpoint lookup must return the handle")
	}
	if all := svc.Endpoints(); len(all) != 1 || all[0] != ep {
		t.Fatalf("Endpoints listing: %v", all)
	}

	data, err := sampleLoader(21).Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data.TestX[:32] {
		if _, err := ep.Classify(x); err != nil {
			t.Fatal(err)
		}
	}

	// Canary rollout of the second compiled pipeline.
	rev, err := ep.Rollout(job2.ID(), RolloutOptions{CanaryPercent: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rev.ID != 2 || rev.JobID != job2.ID() || rev.State != "canary" || rev.CanaryPercent != 50 {
		t.Fatalf("rollout info: %+v", rev)
	}
	if _, err := ep.Rollout(job1.ID(), RolloutOptions{}); !errors.Is(err, ErrRolloutActive) {
		t.Fatalf("overlapping rollout: %v", err)
	}
	for _, x := range data.TestX {
		if _, err := ep.Classify(x); err != nil {
			t.Fatal(err)
		}
	}
	st := ep.Stats()
	if len(st.Revisions) != 2 {
		t.Fatalf("revisions: %+v", st.Revisions)
	}
	if st.Revisions[0].Stats.Completed == 0 || st.Revisions[1].Stats.Completed == 0 {
		t.Fatalf("a 50%% canary must serve on both revisions: %+v", st.Revisions)
	}
	if st.Merged.Completed != st.Revisions[0].Stats.Completed+st.Revisions[1].Stats.Completed {
		t.Fatalf("merged must sum revisions: %+v", st)
	}
	if st.Revisions[0].JobID != job1.ID() || st.Revisions[1].JobID != job2.ID() {
		t.Fatalf("revision job provenance: %+v", st.Revisions)
	}

	// Promote, then roll back to revision 1, which stayed warm.
	if err := ep.Promote(); err != nil {
		t.Fatal(err)
	}
	if stable, canary, _, _ := ep.View(); stable != 2 || canary != 0 {
		t.Fatalf("post-promote view: %d %d", stable, canary)
	}
	if err := ep.Rollback(); err != nil {
		t.Fatal(err)
	}
	if stable, _, _, _ := ep.View(); stable != 1 {
		t.Fatalf("post-rollback stable: %d", stable)
	}
	if _, err := ep.Classify(data.TestX[0]); err != nil {
		t.Fatal(err)
	}

	final, err := svc.DeleteEndpoint("anomaly-detection")
	if err != nil {
		t.Fatal(err)
	}
	if final.Merged.Accepted != final.Merged.Completed {
		t.Fatalf("drain lost traffic: %+v", final.Merged)
	}
	if _, ok := svc.Endpoint("anomaly-detection"); ok {
		t.Fatal("deleted endpoint must be gone")
	}
	if _, err := ep.Classify(data.TestX[0]); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("classify after delete: %v", err)
	}
	if _, err := svc.DeleteEndpoint("anomaly-detection"); err == nil {
		t.Fatal("double delete must error")
	}
}

// TestEndpointShadowRollout drives a shadow rollout end to end: callers
// see only stable answers while the divergence report fills in.
func TestEndpointShadowRollout(t *testing.T) {
	svc, job1, job2 := endpointService(t)
	ep, err := svc.CreateEndpoint("shadowed", job1.ID(), EndpointOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := sampleLoader(21).Load()
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers from the flat single-revision path.
	dep, err := svc.Deploy(job1.ID(), DeployOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Rollout(job2.ID(), RolloutOptions{Shadow: true}); err != nil {
		t.Fatal(err)
	}
	for _, x := range data.TestX {
		want, err := dep.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ep.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("shadowed classify diverged from stable: %d vs %d", got, want)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		d := ep.Stats().Shadow
		if d != nil && d.Mirrored+d.Shed == uint64(len(data.TestX)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirrors never drained: %+v", d)
		}
		time.Sleep(time.Millisecond)
	}
	d := ep.Stats().Shadow
	if d.Revision != 2 || d.Agreed+d.Disagreed+d.Errors != d.Mirrored {
		t.Fatalf("divergence accounting: %+v", d)
	}
}

// TestEndpointConcurrentHotSwap is the service-level race test: clients
// hammer a live endpoint while rollouts, promotes, and rollbacks cycle
// between two compiled pipelines. Zero requests may drop, and the
// endpoint must be quiescent-consistent afterwards.
func TestEndpointConcurrentHotSwap(t *testing.T) {
	svc, job1, job2 := endpointService(t)
	ep, err := svc.CreateEndpoint("swap", job1.ID(), EndpointOptions{
		MaxDelay: -1, QueueDepth: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	data, err := sampleLoader(21).Load()
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var failures atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := ep.Classify(data.TestX[(i+w)%len(data.TestX)]); err != nil {
					failures.Add(1)
					return
				}
			}
		}(w)
	}
	jobs := []string{job2.ID(), job1.ID()}
	for i := 0; i < 6; i++ {
		if _, err := ep.Rollout(jobs[i%2], RolloutOptions{CanaryPercent: 50}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := ep.Rollback(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := ep.Promote(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d classify calls failed during hot swaps", f)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ep.Stats().Merged
		if st.Accepted == st.Completed {
			if st.Dropped != 0 || st.Errors != 0 {
				t.Fatalf("hot swap dropped traffic: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint never quiesced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEndpointCanaryZeroMatchesFlat: a 0% canary rollout must leave the
// served classifications bit-identical to the flat deployment path.
func TestEndpointCanaryZeroMatchesFlat(t *testing.T) {
	svc, job1, job2 := endpointService(t)
	dep, err := svc.Deploy(job1.ID(), DeployOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := svc.CreateEndpoint("frozen", job1.ID(), EndpointOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Rollout(job2.ID(), RolloutOptions{CanaryPercent: 0}); err != nil {
		t.Fatal(err)
	}
	data, err := sampleLoader(21).Load()
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range data.TestX {
		want, err := dep.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ep.Classify(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: endpoint(0%% canary)=%d, flat deployment=%d", i, got, want)
		}
	}
	st := ep.Stats()
	if st.Revisions[1].Stats.Accepted != 0 {
		t.Fatalf("0%% canary revision served traffic: %+v", st.Revisions[1])
	}
}

func TestEndpointValidation(t *testing.T) {
	svc, job1, _ := endpointService(t)

	for _, bad := range []string{"", "/x", "a b", "-lead", strings.Repeat("n", 200)} {
		if _, err := svc.CreateEndpoint(bad, job1.ID(), EndpointOptions{}); err == nil {
			t.Fatalf("name %q must be rejected", bad)
		}
	}
	if _, err := svc.CreateEndpoint("dup", job1.ID(), EndpointOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateEndpoint("dup", job1.ID(), EndpointOptions{}); err == nil {
		t.Fatal("duplicate endpoint name must be rejected")
	}
	if _, err := svc.CreateEndpoint("nojob", "job-999999", EndpointOptions{}); err == nil {
		t.Fatal("unknown job must be rejected")
	}
	if _, err := svc.CreateEndpointPipeline("nopipe", nil, EndpointOptions{}); !errors.Is(err, ErrNotDeployable) {
		t.Fatalf("nil pipeline: %v", err)
	}
	ep, _ := svc.Endpoint("dup")
	if _, err := ep.Rollout("job-999999", RolloutOptions{}); err == nil {
		t.Fatal("rollout from unknown job must be rejected")
	}
	if err := ep.Promote(); !errors.Is(err, ErrNoRollout) {
		t.Fatalf("promote without rollout: %v", err)
	}
	if err := ep.Rollback(); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("rollback without history: %v", err)
	}

	// A deleted endpoint's name becomes reusable.
	if _, err := svc.DeleteEndpoint("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.CreateEndpoint("dup", job1.ID(), EndpointOptions{}); err != nil {
		t.Fatalf("name must be reusable after delete: %v", err)
	}
}

// TestServiceCloseDrainsEndpoints: Close must drain endpoints alongside
// deployments so accepted traffic is never lost at shutdown.
func TestServiceCloseDrainsEndpoints(t *testing.T) {
	svc, job1, _ := endpointService(t)
	ep, err := svc.CreateEndpoint("closing", job1.ID(), EndpointOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Classify([]float64{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Classify([]float64{1, 1, 0}); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("post-close classify: %v", err)
	}
	if _, err := svc.CreateEndpoint("late", job1.ID(), EndpointOptions{}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("create on closed service: %v", err)
	}
}
