#!/usr/bin/env python3
"""Convert `go test -bench . -benchmem` output into the BENCH_prN.json
snapshot schema (the format of BENCH_pr2.json / BENCH_pr3.json): one
object per benchmark with iterations, ns_per_op, B_per_op,
allocs_per_op, and any custom b.ReportMetric metrics.

Usage: go test -bench=. -benchmem -run '^$' . | python3 scripts/bench2json.py \
           --pr 7 --description "..." > BENCH_pr7.json

When the same benchmark appears more than once on stdin (e.g. the
Makefile's second, higher-iteration pass over the serve benchmarks), the
later lines overwrite the earlier entry — last measurement wins.
"""

import argparse
import json
import re
import sys

LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([-+0-9.eE]+)\s+(\S+)")

UNIT_KEYS = {
    "ns/op": "ns_per_op",
    "B/op": "B_per_op",
    "allocs/op": "allocs_per_op",
}


def parse(lines):
    benches = {}
    go_version = ""
    for line in lines:
        line = line.strip()
        if line.startswith("go version"):
            # e.g. "go version go1.24.0 linux/amd64"
            parts = line.split()
            if len(parts) >= 3:
                go_version = parts[2].removeprefix("go")
        m = LINE.match(line)
        if not m:
            continue
        name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
        entry = benches.setdefault(name, {})
        entry["iterations"] = iters
        for val, unit in METRIC.findall(rest):
            key = UNIT_KEYS.get(unit, unit)
            try:
                entry[key] = float(val)
            except ValueError:
                continue
    return benches, go_version


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--pr", type=int, default=0)
    ap.add_argument("--description", default="")
    ap.add_argument("--go", default="")
    args = ap.parse_args()

    benches, go_version = parse(sys.stdin)
    if not benches:
        sys.exit("bench2json: no benchmark lines found on stdin")
    out = {"benchmarks": {k: benches[k] for k in sorted(benches)}}
    if args.description:
        out["description"] = args.description
    if args.go or go_version:
        out["go"] = args.go or go_version
    if args.pr:
        out["pr"] = args.pr
    json.dump(out, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
