package homunculus

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/alchemy"
	"repro/internal/serve"
)

// deployService compiles a fast dtree pipeline through a fresh service
// and returns both, with cleanup registered.
func deployService(t *testing.T) (*Service, *Job) {
	t.Helper()
	svc := New(ServiceOptions{MaxInFlight: 2})
	t.Cleanup(func() { _ = svc.Close() })
	p := alchemy.Taurus()
	p.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "ad", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(21)}))
	job, err := svc.Submit(context.Background(), p, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	return svc, job
}

// TestDeployServeUndeploy is the Go-API acceptance path: compile,
// deploy, classify a replayed synthetic trace end-to-end, check the
// deployment's stats account for every request with a nonzero p99, then
// drain through Undeploy.
func TestDeployServeUndeploy(t *testing.T) {
	svc, job := deployService(t)
	dep, err := svc.Deploy(job.ID(), DeployOptions{BatchSize: 16, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dep.ID(), "dep-") || dep.JobID() != job.ID() || dep.App() != "ad" || dep.Platform() != "taurus" {
		t.Fatalf("deployment identity: %q %q %q %q", dep.ID(), dep.JobID(), dep.App(), dep.Platform())
	}
	if got, ok := svc.Deployment(dep.ID()); !ok || got != dep {
		t.Fatal("Deployment lookup must return the handle")
	}
	if all := svc.Deployments(); len(all) != 1 || all[0] != dep {
		t.Fatalf("Deployments listing: %v", all)
	}

	// Replay the model's own synthetic test split as live traffic.
	data, err := sampleLoader(21).Load()
	if err != nil {
		t.Fatal(err)
	}
	res, err := serve.Replay(dep, data.TestX, data.TestY, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(data.TestX) || res.Dropped != 0 {
		t.Fatalf("replay must deliver the whole trace: %+v", res)
	}
	if res.Accuracy < 0.8 {
		t.Fatalf("served accuracy %v implausibly low vs labels", res.Accuracy)
	}

	st := dep.Stats()
	if st.Completed < uint64(len(data.TestX)) {
		t.Fatalf("stats completed %d < replayed %d", st.Completed, len(data.TestX))
	}
	if st.P99 == 0 {
		t.Fatalf("p99 must be nonzero after traffic: %+v", st)
	}
	if st.PerClass[0]+st.PerClass[1] != st.Completed-st.Errors {
		t.Fatalf("per-class counts must partition completions: %+v", st)
	}

	final, err := svc.Undeploy(dep.ID())
	if err != nil {
		t.Fatal(err)
	}
	if final.Completed != st.Completed {
		t.Fatalf("final stats lost traffic: %+v vs %+v", final, st)
	}
	if _, ok := svc.Deployment(dep.ID()); ok {
		t.Fatal("undeployed deployment must be gone")
	}
	if _, err := dep.Classify(data.TestX[0]); !errors.Is(err, ErrDeploymentClosed) {
		t.Fatalf("classify after undeploy: %v, want ErrDeploymentClosed", err)
	}
	if _, err := svc.Undeploy(dep.ID()); err == nil {
		t.Fatal("double undeploy must error")
	}
}

func TestDeployErrors(t *testing.T) {
	svc, job := deployService(t)

	if _, err := svc.Deploy("job-999999", DeployOptions{}); err == nil {
		t.Fatal("unknown job must not deploy")
	}
	if _, err := svc.Deploy(job.ID(), DeployOptions{App: "nope"}); err == nil {
		t.Fatal("unknown app must not deploy")
	}
	if _, err := svc.DeployPipeline(nil, DeployOptions{}); !errors.Is(err, ErrNotDeployable) {
		t.Fatalf("nil pipeline: %v", err)
	}
	if _, err := svc.DeployPipeline(&Pipeline{Platform: "taurus", Apps: []AppResult{{Name: "empty"}}}, DeployOptions{}); !errors.Is(err, ErrNotDeployable) {
		t.Fatalf("modelless pipeline: %v", err)
	}

	// A still-running job cannot deploy.
	started, release := make(chan struct{}), make(chan struct{})
	blocked := alchemy.Taurus()
	blocked.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "slow", Algorithms: []string{"dtree"},
		DataLoader: blockingLoader(5, started, release)}))
	slow, err := svc.Submit(context.Background(), blocked, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := svc.Deploy(slow.ID(), DeployOptions{}); !errors.Is(err, ErrJobNotFinished) {
		t.Fatalf("running job deploy: %v, want ErrJobNotFinished", err)
	}
	close(release)
	if _, err := slow.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDeployPipelineDirect serves a pipeline compiled via Generate (no
// job handle), the CLI -deploy path.
func TestDeployPipelineDirect(t *testing.T) {
	p := alchemy.Taurus()
	p.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "direct", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(22)}))
	pipe, err := Generate(context.Background(), p, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	svc := New(ServiceOptions{})
	defer svc.Close()
	dep, err := svc.DeployPipeline(pipe, DeployOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if dep.JobID() != "" {
		t.Fatalf("direct deployment must have no job: %q", dep.JobID())
	}
	if _, err := dep.Classify([]float64{0.5, -0.5, 0}); err != nil {
		t.Fatal(err)
	}
	cfg := dep.Config()
	if cfg.Shards < 1 || cfg.BatchSize != 64 || cfg.QueueDepth != 1024 {
		t.Fatalf("defaulted config: %+v", cfg)
	}
}

// TestDeploymentCloseDeregisters is the regression test for the
// leak where a Deployment closed directly (not via Service.Undeploy)
// stayed registered in the service map and listed by Deployments()
// forever: Close must deregister.
func TestDeploymentCloseDeregisters(t *testing.T) {
	svc, job := deployService(t)
	dep, err := svc.Deploy(job.ID(), DeployOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	keep, err := svc.Deploy(job.ID(), DeployOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := svc.Deployment(dep.ID()); ok {
		t.Fatal("directly closed deployment must be deregistered")
	}
	if all := svc.Deployments(); len(all) != 1 || all[0] != keep {
		t.Fatalf("listing after direct close: %v", all)
	}
	// Closing is idempotent and Undeploy of the closed ID now misses.
	if err := dep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Undeploy(dep.ID()); err == nil {
		t.Fatal("undeploy of a closed-and-deregistered deployment must error")
	}
	// The survivor is untouched.
	if _, err := keep.Classify([]float64{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
}

// TestServiceCloseDrainsDeployments: Close must drain registered
// deployments so accepted traffic is never lost at shutdown.
func TestServiceCloseDrainsDeployments(t *testing.T) {
	svc, job := deployService(t)
	dep, err := svc.Deploy(job.ID(), DeployOptions{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Classify([]float64{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Classify([]float64{1, 1, 0}); !errors.Is(err, ErrDeploymentClosed) {
		t.Fatalf("post-close classify: %v", err)
	}
	if _, err := svc.Deploy(job.ID(), DeployOptions{}); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("deploy on closed service: %v, want ErrServiceClosed", err)
	}
}
