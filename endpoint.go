package homunculus

// Endpoint is the lifecycle-aware serving handle: a stable named route
// (e.g. "anomaly-detection") owning an ordered history of revisions,
// each a compiled pipeline's prepared inference runtime. Where a
// Deployment serves exactly one compiled model for its whole life, an
// Endpoint is what the paper's continuous-recompilation story needs in
// production: ship a re-compiled pipeline behind the same name with a
// deterministic canary slice or an off-the-record shadow mirror, watch
// the per-revision stats and divergence report, then Promote — one
// atomic routing-table swap, in-flight requests finish on the revision
// that admitted them, nothing is dropped — or Rollback to the previous
// revision, which stays warm. The flat Deploy/Deployment API remains as
// a thin single-revision wrapper (see docs/serving.md for the
// deprecation plan).

import (
	"errors"
	"fmt"
	"regexp"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/serve"
	"repro/internal/store"
)

var (
	// ErrEndpointExists rejects creating an endpoint under a name a live
	// endpoint already holds.
	ErrEndpointExists = errors.New("homunculus: endpoint already exists")
	// ErrRolloutActive rejects starting a rollout while another is in
	// progress on the same endpoint.
	ErrRolloutActive = serve.ErrRolloutActive
	// ErrNoRollout rejects Promote when no rollout is in progress.
	ErrNoRollout = serve.ErrNoRollout
	// ErrNoRollback rejects Rollback when there is neither a rollout to
	// abort nor a previous stable revision to return to.
	ErrNoRollback = serve.ErrNoRollback
	// ErrEndpointClosed rejects requests to an endpoint that is draining
	// or deleted (the same sentinel as ErrDeploymentClosed).
	ErrEndpointClosed = serve.ErrClosed
	// ErrValidationFailed (validation.go) refuses creating or rolling out
	// a revision whose shipped artifact fails translation validation on a
	// ValidateRollouts endpoint.
)

// RevisionState mirrors a revision's place in the endpoint lifecycle:
// "stable", "canary", "shadow", or "retired".
type RevisionState = serve.RevisionState

// ShadowDivergence is the shadow-vs-primary comparison report of a
// rollout: mirrored/shed/error counters, agree/disagree totals, and the
// per-class-pair confusion matrix.
type ShadowDivergence = serve.DivergenceStats

// EndpointOptions tunes an endpoint's default serving runtime — the same
// knobs as a flat deployment; rollouts may override them per revision.
type EndpointOptions = DeployOptions

// RolloutOptions shapes how a new revision receives traffic.
type RolloutOptions struct {
	// App selects which compiled application of a multi-model pipeline
	// becomes the new revision. Empty prefers the app the endpoint
	// already serves, falling back to the first with a deployable model.
	App string
	// CanaryPercent routes this deterministic share of requests (0-100)
	// to the new revision; 0 deploys it warm but routes nothing until
	// Promote — useful for verifying a swap without exposing traffic.
	CanaryPercent int
	// Shadow mirrors every classified request to the new revision off
	// the record: callers keep receiving the stable answer while the
	// divergence counters compare the two. Mutually exclusive with a
	// nonzero CanaryPercent.
	Shadow bool
	// Shards/BatchSize/MaxDelay/QueueDepth override the new revision's
	// runtime bounds; zero values inherit the endpoint's defaults.
	Shards     int
	BatchSize  int
	MaxDelay   time.Duration
	QueueDepth int
	// Serving, when non-nil, is the canonical config for the new
	// revision; it wins wholesale over the flat knobs above. Its
	// presence-aware MaxDelayNS lets a rollout pin an explicit greedy
	// flush (delay 0) instead of inheriting the endpoint default.
	Serving *ServingConfig
}

// RevisionInfo describes one revision of an endpoint.
type RevisionInfo struct {
	// ID is the endpoint-local revision number, starting at 1.
	ID int
	// JobID is the compilation job the revision serves ("" when its
	// pipeline was supplied directly).
	JobID string
	// App is the served application (model) name.
	App string
	// State is the revision's place in the lifecycle.
	State RevisionState
	// CanaryPercent is the traffic share of a canary revision.
	CanaryPercent int
	// Created is when the revision was rolled out.
	Created time.Time
	// Warm reports whether the revision holds a live runtime. Retired
	// revisions beyond the endpoint's RetainRetired cap run cold: listed,
	// rollback-able (their runtime is re-created on demand), but not
	// consuming serving resources.
	Warm bool
	// Stats snapshots the revision's own serving metrics.
	Stats DeploymentStats
}

// EndpointStats is a point-in-time snapshot of an endpoint: the merged
// serving metrics, the per-revision breakdown, and the most recent
// shadow divergence report (nil if there never was a shadow rollout).
type EndpointStats struct {
	Name      string
	Platform  string
	Revisions []RevisionInfo
	Merged    DeploymentStats
	Shadow    *ShadowDivergence
}

// Endpoint is a stable named serving route over versioned revisions.
// All methods are safe for concurrent use.
type Endpoint struct {
	name     string
	platform string
	created  time.Time
	svc      *Service
	ep       *serve.Endpoint

	// validate gates every revision behind translation validation of its
	// shipped artifact (DeployOptions.ValidateRollouts).
	validate bool

	// reqOpts are the creation-time options as requested (zero fields =
	// inherit defaults) — what the manifest persists, so a restored
	// endpoint re-derives machine defaults instead of pinning them.
	reqOpts store.OptionsRecord

	mu   sync.Mutex
	meta map[int]revisionMeta // revision ID -> origin

	forget sync.Once
}

type revisionMeta struct {
	jobID string
	app   string
	// specHash keys the artifact store entry holding the revision's
	// pipeline ("" on an in-memory service, or when persisting failed —
	// the revision then does not survive a restart).
	specHash string
	// opts are the revision's requested runtime overrides, persisted for
	// restore.
	opts store.OptionsRecord
}

// optionsRecord renders requested deploy options in their persisted
// form (zero fields stay zero — defaults are re-derived on restore).
func optionsRecord(o DeployOptions) store.OptionsRecord {
	return store.OptionsRecord{
		Shards:           o.Shards,
		BatchSize:        o.BatchSize,
		MaxDelayNS:       int64(o.MaxDelay),
		QueueDepth:       o.QueueDepth,
		RetainRetired:    o.RetainRetired,
		ValidateRollouts: o.ValidateRollouts,
	}
}

// endpointNameRE bounds endpoint names to URL-path-safe route segments.
var endpointNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// CreateEndpoint promotes a finished job's compiled pipeline into a
// named serving endpoint whose first revision starts with all traffic.
// The name must be a URL-safe segment (letters, digits, ".", "_", "-")
// and unused by any live endpoint on this service.
func (s *Service) CreateEndpoint(name, jobID string, opts EndpointOptions) (*Endpoint, error) {
	pipe, err := s.jobPipeline(jobID)
	if err != nil {
		return nil, err
	}
	return s.createEndpoint(name, pipe, jobID, opts)
}

// CreateEndpointPipeline creates a named endpoint over a pipeline
// compiled out of band (for example by a direct Generate call).
func (s *Service) CreateEndpointPipeline(name string, pipe *Pipeline, opts EndpointOptions) (*Endpoint, error) {
	return s.createEndpoint(name, pipe, "", opts)
}

func (s *Service) createEndpoint(name string, pipe *Pipeline, jobID string, opts EndpointOptions) (*Endpoint, error) {
	if !endpointNameRE.MatchString(name) {
		return nil, fmt.Errorf("homunculus: endpoint name %q is not a URL-safe segment ([A-Za-z0-9._-], must start alphanumeric)", name)
	}
	app, err := selectApp(pipe, opts.App)
	if err != nil {
		return nil, err
	}
	validate := validateRollouts(opts)
	if validate {
		if err := gateRollout(pipe.Platform, app); err != nil {
			return nil, err
		}
	}
	sopts, err := servingOptions(opts)
	if err != nil {
		return nil, fmt.Errorf("homunculus: endpoint %s: %w", name, err)
	}
	sep, err := serve.NewEndpoint(name, app.Model, sopts)
	if err != nil {
		return nil, fmt.Errorf("homunculus: endpoint %s: %w", name, err)
	}
	e := &Endpoint{
		name:     name,
		platform: pipe.Platform,
		created:  time.Now(),
		svc:      s,
		ep:       sep,
		validate: validate,
		reqOpts:  servingRecord(opts),
		meta: map[int]revisionMeta{1: {
			jobID:    jobID,
			app:      app.Name,
			specHash: s.endpointArtifact(pipe, jobID),
			opts:     servingRecord(opts),
		}},
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = sep.Close()
		return nil, ErrServiceClosed
	}
	if _, dup := s.endpoints[name]; dup {
		s.mu.Unlock()
		_ = sep.Close()
		return nil, fmt.Errorf("%w: %q", ErrEndpointExists, name)
	}
	s.endpoints[name] = e
	s.epOrder = append(s.epOrder, name)
	s.mu.Unlock()
	s.persistEndpoints()
	return e, nil
}

// Endpoint looks up a live endpoint by name.
func (s *Service) Endpoint(name string) (*Endpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.endpoints[name]
	return e, ok
}

// Endpoints returns every live endpoint in creation order.
func (s *Service) Endpoints() []*Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Endpoint, 0, len(s.epOrder))
	for _, name := range s.epOrder {
		out = append(out, s.endpoints[name])
	}
	return out
}

// DeleteEndpoint drains an endpoint (every accepted request across every
// revision is delivered) and removes it, returning its final stats.
func (s *Service) DeleteEndpoint(name string) (EndpointStats, error) {
	s.mu.Lock()
	e, ok := s.endpoints[name]
	s.mu.Unlock()
	if !ok {
		return EndpointStats{}, fmt.Errorf("homunculus: delete endpoint: no such endpoint %q", name)
	}
	if err := e.Close(); err != nil {
		return EndpointStats{}, err
	}
	// Snapshot after the drain so the final report covers every request
	// delivered on the way down.
	return e.Stats(), nil
}

// forgetEndpoint removes a closed endpoint from the service table and
// the persisted manifest. During service Close the manifest is left
// untouched: a draining daemon's endpoints must come back on restart.
func (s *Service) forgetEndpoint(name string, e *Endpoint) {
	s.mu.Lock()
	if s.endpoints[name] != e {
		s.mu.Unlock()
		return
	}
	delete(s.endpoints, name)
	s.epOrder = removeFromOrder(s.epOrder, name)
	s.mu.Unlock()
	s.persistEndpoints()
}

// jobPipeline resolves a finished job's compiled pipeline.
func (s *Service) jobPipeline(jobID string) (*Pipeline, error) {
	j, ok := s.Job(jobID)
	if !ok {
		return nil, fmt.Errorf("homunculus: no such job %q", jobID)
	}
	pipe, err := j.Result()
	if err != nil {
		return nil, fmt.Errorf("homunculus: job %s: %w", jobID, err)
	}
	return pipe, nil
}

// selectApp picks the application to serve from a pipeline: the named
// one when want is nonempty, otherwise the first carrying a model.
func selectApp(pipe *Pipeline, want string) (*AppResult, error) {
	if pipe == nil {
		return nil, ErrNotDeployable
	}
	var app *AppResult
	for i := range pipe.Apps {
		a := &pipe.Apps[i]
		if want != "" {
			if a.Name == want {
				app = a
				break
			}
			continue
		}
		if a.Model != nil {
			app = a
			break
		}
	}
	if want != "" && app == nil {
		return nil, fmt.Errorf("homunculus: pipeline has no app %q", want)
	}
	if app == nil || app.Model == nil {
		return nil, fmt.Errorf("%w (app %q)", ErrNotDeployable, want)
	}
	return app, nil
}

// Name returns the endpoint's stable route name.
func (e *Endpoint) Name() string { return e.name }

// Platform returns the backend kind of the pipeline that created the
// endpoint.
func (e *Endpoint) Platform() string { return e.platform }

// Created returns when the endpoint started serving.
func (e *Endpoint) Created() time.Time { return e.created }

// Model returns the current stable revision's compiled model (nil once
// the endpoint is closed).
func (e *Endpoint) Model() *ir.Model { return e.ep.Model() }

// Config returns the endpoint's default (defaulted) serving options.
func (e *Endpoint) Config() EndpointOptions {
	o := e.ep.Options()
	return EndpointOptions{
		Shards:           o.Shards,
		BatchSize:        o.BatchSize,
		MaxDelay:         o.MaxDelay,
		QueueDepth:       o.QueueDepth,
		RetainRetired:    o.RetainRetired,
		ValidateRollouts: e.validate,
	}
}

// Rollout starts serving a finished job's compiled pipeline as a new
// revision behind the configured canary split or shadow mirror. Only
// one rollout may be in progress per endpoint.
func (e *Endpoint) Rollout(jobID string, opts RolloutOptions) (RevisionInfo, error) {
	pipe, err := e.svc.jobPipeline(jobID)
	if err != nil {
		return RevisionInfo{}, err
	}
	return e.rollout(pipe, jobID, opts)
}

// RolloutPipeline rolls out a pipeline compiled out of band.
func (e *Endpoint) RolloutPipeline(pipe *Pipeline, opts RolloutOptions) (RevisionInfo, error) {
	return e.rollout(pipe, "", opts)
}

func (e *Endpoint) rollout(pipe *Pipeline, jobID string, opts RolloutOptions) (RevisionInfo, error) {
	want := opts.App
	if want == "" {
		// Pin to the app the latest revision serves whenever the new
		// pipeline declares it, so a re-compiled multi-model pipeline
		// rolls out the matching application — and fails loudly (via
		// selectApp) if that app came back undeployable, rather than
		// silently serving a different one.
		e.mu.Lock()
		var cur revisionMeta
		maxID := 0
		for id, m := range e.meta {
			if id > maxID {
				maxID, cur = id, m
			}
		}
		e.mu.Unlock()
		if pipe != nil {
			for i := range pipe.Apps {
				if pipe.Apps[i].Name == cur.app {
					want = cur.app
					break
				}
			}
		}
	}
	app, err := selectApp(pipe, want)
	if err != nil {
		return RevisionInfo{}, err
	}
	if e.validate {
		if err := gateRollout(e.platform, app); err != nil {
			return RevisionInfo{}, fmt.Errorf("homunculus: rollout on %s refused: %w", e.name, err)
		}
	}
	rovr := serve.Options{
		Shards:     opts.Shards,
		BatchSize:  opts.BatchSize,
		MaxDelay:   opts.MaxDelay,
		QueueDepth: opts.QueueDepth,
	}
	rrec := optionsRecord(DeployOptions{
		Shards: opts.Shards, BatchSize: opts.BatchSize,
		MaxDelay: opts.MaxDelay, QueueDepth: opts.QueueDepth,
	})
	if opts.Serving != nil {
		if err := opts.Serving.Validate(); err != nil {
			return RevisionInfo{}, fmt.Errorf("homunculus: rollout on %s: %w", e.name, err)
		}
		rovr = opts.Serving.Options()
		rrec = configRecord(*opts.Serving)
	}
	rev, err := e.ep.Rollout(app.Model, serve.RolloutConfig{
		CanaryPercent: opts.CanaryPercent,
		Shadow:        opts.Shadow,
		Opts:          rovr,
	})
	if err != nil {
		return RevisionInfo{}, fmt.Errorf("homunculus: rollout on %s: %w", e.name, err)
	}
	e.mu.Lock()
	e.meta[rev.ID] = revisionMeta{
		jobID:    jobID,
		app:      app.Name,
		specHash: e.svc.endpointArtifact(pipe, jobID),
		opts:     rrec,
	}
	e.mu.Unlock()
	e.svc.persistEndpoints()
	state := RevisionState(serve.RevCanary)
	if opts.Shadow {
		state = serve.RevShadow
	}
	return RevisionInfo{
		ID: rev.ID, JobID: jobID, App: app.Name,
		State: state, CanaryPercent: opts.CanaryPercent, Created: rev.Created,
	}, nil
}

// Promote makes the in-progress rollout the stable revision: requests
// admitted after Promote returns are served by the promoted revision,
// requests in flight complete where they were admitted, and nothing is
// dropped. The demoted revision stays warm for Rollback (up to the
// endpoint's RetainRetired cap).
func (e *Endpoint) Promote() error {
	if err := e.ep.Promote(); err != nil {
		return err
	}
	e.svc.persistEndpoints()
	return nil
}

// Rollback aborts an in-progress rollout, or — when none is active —
// returns all traffic to the previous stable revision (re-creating its
// runtime if the retention cap had evicted it).
func (e *Endpoint) Rollback() error {
	if err := e.ep.Rollback(); err != nil {
		return err
	}
	e.svc.persistEndpoints()
	return nil
}

// Classify routes one feature vector through the endpoint's current
// revision table and blocks until its class is computed. Sheds with
// ErrOverloaded under backpressure; fails with ErrEndpointClosed once
// draining began.
func (e *Endpoint) Classify(x []float64) (int, error) { return e.ep.Classify(x) }

// ClassifyBatch classifies every vector of xs (each request routed
// independently, exactly as Classify would); classes[i] is -1 for shed
// or failed requests.
func (e *Endpoint) ClassifyBatch(xs [][]float64) (classes []int, dropped int, err error) {
	return e.ep.ClassifyBatch(xs)
}

// View reports the current routing: the stable revision ID, the canary
// (0 if none) with its traffic share, and the shadow (0 if none).
func (e *Endpoint) View() (stable, canary, canaryPercent, shadow int) { return e.ep.View() }

// Revisions lists every revision's lifecycle metadata in rollout order
// without snapshotting the serving runtimes (the Stats field is zero —
// use Stats() when counters are needed).
func (e *Endpoint) Revisions() []RevisionInfo {
	rows := e.ep.RevisionInfos()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RevisionInfo, 0, len(rows))
	for _, r := range rows {
		m := e.meta[r.ID]
		out = append(out, RevisionInfo{
			ID: r.ID, JobID: m.jobID, App: m.app,
			State: r.State, CanaryPercent: r.CanaryPercent,
			Created: r.Created, Warm: r.Warm,
		})
	}
	return out
}

// Stats snapshots the endpoint: merged metrics (counters and latency
// histograms summed across revisions), the per-revision breakdown, and
// the shadow divergence report.
func (e *Endpoint) Stats() EndpointStats {
	st := e.ep.Stats()
	out := EndpointStats{
		Name:     e.name,
		Platform: e.platform,
		Merged:   st.Merged,
		Shadow:   st.Shadow,
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range st.Revisions {
		m := e.meta[r.ID]
		out.Revisions = append(out.Revisions, RevisionInfo{
			ID: r.ID, JobID: m.jobID, App: m.app,
			State: r.State, CanaryPercent: r.CanaryPercent,
			Created: r.Created, Warm: r.Warm, Stats: r.Stats,
		})
	}
	return out
}

// RawServingStats is the wire (mergeable) form of serving metrics:
// plain counters plus the log2 latency histogram. Counters from
// different nodes sum exactly; quantiles are derived only after the
// histograms merge (serve.RawStats).
type RawServingStats = serve.RawStats

// RawStats returns the endpoint's merged metrics in wire form — what a
// node ships so `?scope=cluster` stats can be summed across the
// cluster (docs/cluster.md).
func (e *Endpoint) RawStats() RawServingStats { return e.ep.RawStats() }

// Close drains the endpoint (every accepted request across every
// revision is delivered) and removes it from the service's table.
// Idempotent; blocks until the drain completes.
func (e *Endpoint) Close() error {
	e.forget.Do(func() { e.svc.forgetEndpoint(e.name, e) })
	return e.ep.Close()
}
