package homunculus

// Tests for the canonical ServingConfig surface of the Go API: deploy
// and endpoint creation through DeployOptions.Serving, the
// GET-edit-PUT-equivalent ApplyConfig path, validation failure shapes,
// durable persistence of presence-aware fields (explicit greedy flush,
// adaptive flush) across restart, and the Service-level tuner.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestServingConfigEndpointLifecycle drives the config document through
// an endpoint's life: created with an explicit greedy flush, read back
// losslessly, reconfigured via ApplyConfig (a promoted revision), and
// reported per revision.
func TestServingConfigEndpointLifecycle(t *testing.T) {
	svc, job1, _ := endpointService(t)

	zero := int64(0)
	ep, err := svc.CreateEndpoint("cfg", job1.ID(), EndpointOptions{
		Serving: &ServingConfig{BatchSize: 8, MaxDelayNS: &zero},
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := ep.ServingConfig()
	if cfg.Version != 1 || cfg.BatchSize != 8 {
		t.Fatalf("effective config: %+v", cfg)
	}
	if cfg.MaxDelayNS == nil || *cfg.MaxDelayNS != 0 {
		t.Fatalf("explicit greedy flush must read back as a present zero: %+v", cfg)
	}

	// ApplyConfig is complete-document: the new config rides the atomic
	// rollout path and fully replaces the old knobs.
	delay := int64(250 * time.Microsecond)
	rev, err := ep.ApplyConfig(ServingConfig{BatchSize: 16, MaxDelayNS: &delay, AdaptiveFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	if rev.ID != 2 || rev.JobID != job1.ID() || !rev.Warm {
		t.Fatalf("apply revision: %+v", rev)
	}
	if stable, _, _, _ := ep.View(); stable != 2 {
		t.Fatalf("applied config must be promoted, stable=%d", stable)
	}
	got := ep.ServingConfig()
	if got.BatchSize != 16 || !got.AdaptiveFlush || got.MaxDelayNS == nil || *got.MaxDelayNS != delay {
		t.Fatalf("post-apply config: %+v", got)
	}

	// Both revisions' configs are reportable, and the endpoint still
	// serves after the swap.
	revCfgs := ep.RevisionConfigs()
	if len(revCfgs) != 2 || revCfgs[1].BatchSize != 8 || revCfgs[2].BatchSize != 16 {
		t.Fatalf("revision configs: %+v", revCfgs)
	}
	data, err := sampleLoader(21).Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Classify(data.TestX[0]); err != nil {
		t.Fatal(err)
	}

	// An invalid document is rejected with every violation listed, and
	// the endpoint keeps its previous config.
	_, err = ep.ApplyConfig(ServingConfig{BatchSize: -1, Shards: 100000})
	var ce *ServingConfigError
	if !errors.As(err, &ce) || len(ce.Violations) != 2 {
		t.Fatalf("invalid apply: %v", err)
	}
	if ep.ServingConfig().BatchSize != 16 {
		t.Fatal("rejected apply must not change the effective config")
	}
}

// TestServingConfigValidationOnCreate: invalid Serving documents are
// rejected up front on both the deploy and endpoint-create paths.
func TestServingConfigValidationOnCreate(t *testing.T) {
	svc, job1, _ := endpointService(t)
	bad := &ServingConfig{Version: 7, QueueDepth: -3}

	_, err := svc.CreateEndpoint("bad-cfg", job1.ID(), EndpointOptions{Serving: bad})
	var ce *ServingConfigError
	if !errors.As(err, &ce) || len(ce.Violations) != 2 {
		t.Fatalf("create with bad config: %v", err)
	}
	if !strings.Contains(err.Error(), "version") || !strings.Contains(err.Error(), "queue_depth") {
		t.Fatalf("violations must name fields: %v", err)
	}

	pipe, err := svc.jobPipeline(job1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DeployPipeline(pipe, DeployOptions{Serving: bad}); !errors.As(err, &ce) {
		t.Fatalf("deploy with bad config: %v", err)
	}
}

// TestServingConfigDurableRestart: the presence-aware fields (explicit
// greedy flush, adaptive flush) survive the manifest round-trip — a
// restored endpoint runs the exact config that was applied, not a
// default-resolved approximation.
func TestServingConfigDurableRestart(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)
	job, _ := runJob(t, svc)

	zero := int64(0)
	if _, err := svc.CreateEndpoint("greedy-ep", job.ID(), EndpointOptions{
		Serving: &ServingConfig{BatchSize: 8, MaxDelayNS: &zero},
	}); err != nil {
		t.Fatal(err)
	}
	delay := int64(300 * time.Microsecond)
	ep, err := svc.CreateEndpoint("adaptive-ep", job.ID(), EndpointOptions{
		Serving: &ServingConfig{BatchSize: 16, MaxDelayNS: &delay, AdaptiveFlush: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ep.ServingConfig()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := mustOpen(t, dir, nil)
	defer svc2.Close()
	greedy, ok := svc2.Endpoint("greedy-ep")
	if !ok {
		t.Fatal("greedy-ep not restored")
	}
	gcfg := greedy.ServingConfig()
	if gcfg.MaxDelayNS == nil || *gcfg.MaxDelayNS != 0 {
		t.Fatalf("explicit greedy flush lost across restart: %+v", gcfg)
	}
	adaptive, ok := svc2.Endpoint("adaptive-ep")
	if !ok {
		t.Fatal("adaptive-ep not restored")
	}
	acfg := adaptive.ServingConfig()
	if !acfg.AdaptiveFlush || acfg.MaxDelayNS == nil || *acfg.MaxDelayNS != delay || acfg.BatchSize != want.BatchSize {
		t.Fatalf("adaptive config lost across restart:\n  want %+v\n  got  %+v", want, acfg)
	}
	aw, _ := acfg.Canonical()
	ag, _ := want.Canonical()
	if string(aw) != string(ag) {
		t.Fatalf("restored config not canonical-identical:\n  want %s\n  got  %s", ag, aw)
	}
}

// TestServiceTune smokes the Go-API tuner on a compiled job and a live
// endpoint: deterministic reports, typed infeasibility, and Apply
// installing the winner.
func TestServiceTune(t *testing.T) {
	if testing.Short() {
		t.Skip("replay tuning is wall-clock bound")
	}
	svc, job1, _ := endpointService(t)
	opts := TuneOptions{
		SLO: "p99<=500ms", Seed: 5, Budget: 4, Clients: 2, MaxShards: 2, TraceSamples: 64,
	}
	rep, err := svc.Tune(context.Background(), job1.ID(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Front) == 0 || !rep.Chosen.Feasible {
		t.Fatalf("tune report: %+v", rep)
	}
	// Same seed + same synthetic trace ⇒ the same chosen config.
	rep2, err := svc.Tune(context.Background(), job1.ID(), opts)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := rep.Chosen.Config.Canonical()
	c2, _ := rep2.Chosen.Config.Canonical()
	if string(c1) != string(c2) {
		t.Fatalf("tuner not deterministic:\n  %s\n  %s", c1, c2)
	}

	// Infeasible SLO: typed error, closest miss attached.
	_, err = svc.Tune(context.Background(), job1.ID(), TuneOptions{
		SLO: "p99<=1ns", Seed: 5, Budget: 4, Clients: 2, MaxShards: 2, TraceSamples: 64,
	})
	if !errors.Is(err, ErrTuneInfeasible) {
		t.Fatalf("want ErrTuneInfeasible, got %v", err)
	}
	var inf *TuneInfeasibleError
	if !errors.As(err, &inf) || len(inf.Violations) == 0 {
		t.Fatalf("closest miss missing: %v", err)
	}

	// TuneEndpoint with Apply installs the chosen config in place.
	ep, err := svc.CreateEndpoint("tuned", job1.ID(), EndpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Apply = true
	erep, err := svc.TuneEndpoint(context.Background(), "tuned", opts)
	if err != nil {
		t.Fatal(err)
	}
	live, _ := ep.ServingConfig().Canonical()
	chosen, _ := erep.Chosen.Config.Resolved().Canonical()
	if got := ep.ServingConfig(); got.BatchSize != erep.Chosen.Config.BatchSize {
		t.Fatalf("apply mismatch:\n  live   %s\n  chosen %s", live, chosen)
	}
	if stable, _, _, _ := ep.View(); stable != 2 {
		t.Fatalf("applied config must be a promoted revision, stable=%d", stable)
	}
}
