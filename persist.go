package homunculus

// Pipeline serialization: the canonical JSON document the durable
// artifact store keeps per SpecHash (internal/store, docs/operations.md).
// The document is deterministic — fixed field order, compacted model
// JSON, map keys sorted by the encoder — so equal pipelines produce
// equal bytes and a recovered cache entry re-serializes bit-identically.
//
// Candidate telemetry (AppResult.Candidates: per-family BO histories) is
// deliberately NOT persisted: it is observability, not a compilation
// result, and it dominates the pipeline's size. A pipeline read back
// from the store has Candidates == nil; everything a deployment or
// endpoint needs — models, verdicts, generated code — survives.

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/fixed"
	"repro/internal/ir"
)

// pipelineFormatVersion is bumped on incompatible artifact changes.
const pipelineFormatVersion = 1

type pipelineDoc struct {
	Version     int         `json:"version"`
	Platform    string      `json:"platform"`
	Apps        []appDoc    `json:"apps"`
	Composition *verdictDoc `json:"composition,omitempty"`
}

type appDoc struct {
	Name       string          `json:"name"`
	Algorithm  string          `json:"algorithm,omitempty"`
	Metric     float64         `json:"metric"`
	Model      json.RawMessage `json:"model,omitempty"`
	Verdict    verdictDoc      `json:"verdict"`
	Code       string          `json:"code,omitempty"`
	Validation *validationDoc  `json:"validation,omitempty"`
}

type validationDoc struct {
	Evaluators  []string        `json:"evaluators,omitempty"`
	Inputs      int             `json:"inputs"`
	Divergences int             `json:"divergences"`
	Repro       json.RawMessage `json:"repro,omitempty"`
	Err         string          `json:"error,omitempty"`
}

func toValidationDoc(v *ValidationReport) *validationDoc {
	if v == nil {
		return nil
	}
	return &validationDoc{
		Evaluators:  v.Evaluators,
		Inputs:      v.Inputs,
		Divergences: v.Divergences,
		Repro:       v.Repro,
		Err:         v.Err,
	}
}

func (d *validationDoc) report() *ValidationReport {
	if d == nil {
		return nil
	}
	return &ValidationReport{
		Evaluators:  d.Evaluators,
		Inputs:      d.Inputs,
		Divergences: d.Divergences,
		Repro:       d.Repro,
		Err:         d.Err,
	}
}

type verdictDoc struct {
	Feasible bool               `json:"feasible"`
	Reason   string             `json:"reason,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

func toVerdictDoc(v core.Verdict) verdictDoc {
	return verdictDoc{Feasible: v.Feasible, Reason: v.Reason, Metrics: v.Metrics}
}

func (d verdictDoc) verdict() core.Verdict {
	return core.Verdict{Feasible: d.Feasible, Reason: d.Reason, Metrics: d.Metrics}
}

// MarshalPipeline renders a compiled pipeline as the canonical artifact
// document. Candidate telemetry is dropped (see the package comment
// above); everything else round-trips through UnmarshalPipeline.
func MarshalPipeline(pipe *Pipeline) ([]byte, error) {
	if pipe == nil {
		return nil, fmt.Errorf("homunculus: nil pipeline")
	}
	doc := pipelineDoc{Version: pipelineFormatVersion, Platform: pipe.Platform}
	for i := range pipe.Apps {
		app := &pipe.Apps[i]
		ad := appDoc{
			Name:       app.Name,
			Algorithm:  app.Algorithm,
			Metric:     app.Metric,
			Verdict:    toVerdictDoc(app.Verdict),
			Code:       app.Code,
			Validation: toValidationDoc(app.Validation),
		}
		if app.Model != nil {
			var buf bytes.Buffer
			if err := app.Model.WriteJSON(&buf); err != nil {
				return nil, fmt.Errorf("homunculus: serialize pipeline app %q: %w", app.Name, err)
			}
			ad.Model = buf.Bytes()
		}
		doc.Apps = append(doc.Apps, ad)
	}
	if pipe.Composition != nil {
		vd := toVerdictDoc(*pipe.Composition)
		doc.Composition = &vd
	}
	return json.Marshal(doc)
}

// UnmarshalPipeline rebuilds a pipeline from its artifact document,
// validating every embedded model. Candidates are nil by design.
func UnmarshalPipeline(raw []byte) (*Pipeline, error) {
	var doc pipelineDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("homunculus: parse pipeline: %w", err)
	}
	if doc.Version != pipelineFormatVersion {
		return nil, fmt.Errorf("homunculus: unsupported pipeline format version %d (want %d)", doc.Version, pipelineFormatVersion)
	}
	pipe := &Pipeline{Platform: doc.Platform}
	for _, ad := range doc.Apps {
		app := AppResult{
			Name:       ad.Name,
			Algorithm:  ad.Algorithm,
			Metric:     ad.Metric,
			Verdict:    ad.Verdict.verdict(),
			Code:       ad.Code,
			Validation: ad.Validation.report(),
		}
		if len(ad.Model) > 0 {
			m, err := ir.ReadJSON(bytes.NewReader(ad.Model))
			if err != nil {
				return nil, fmt.Errorf("homunculus: pipeline app %q: %w", ad.Name, err)
			}
			app.Model = m
		}
		pipe.Apps = append(pipe.Apps, app)
	}
	if doc.Composition != nil {
		v := doc.Composition.verdict()
		pipe.Composition = &v
	}
	return pipe, nil
}

// journalConfigDoc is the journaled effective configuration: the cache
// key's canonical search document plus the result-affecting option flags,
// so a recovered job hashes to the same SpecHash as the original
// submission (old journals without the flags decode them false).
type journalConfigDoc struct {
	searchKeyDoc
	Validate bool `json:"validate,omitempty"`
}

// marshalSearchConfig renders the effective configuration for a journal
// record.
func marshalSearchConfig(cfg core.SearchConfig, validate bool) ([]byte, error) {
	algos := make([]string, 0, len(cfg.Algorithms))
	for _, k := range cfg.Algorithms {
		algos = append(algos, k.String())
	}
	return json.Marshal(journalConfigDoc{
		searchKeyDoc: searchKeyDoc{
			Algorithms:      algos,
			Metric:          string(cfg.Metric),
			BO:              cfg.BO,
			MaxHiddenLayers: cfg.MaxHiddenLayers,
			MaxNeurons:      cfg.MaxNeurons,
			MaxClusters:     cfg.MaxClusters,
			TrainEpochs:     cfg.TrainEpochs,
			FormatIntBits:   cfg.Format.IntBits,
			FormatFracBits:  cfg.Format.FracBits,
			Seed:            cfg.Seed,
		},
		Validate: validate,
	})
}

// unmarshalSearchConfig is the journal-replay inverse. OnCandidate is
// observability-only and does not round-trip.
func unmarshalSearchConfig(raw []byte) (core.SearchConfig, bool, error) {
	var doc journalConfigDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return core.SearchConfig{}, false, fmt.Errorf("homunculus: parse search config: %w", err)
	}
	cfg := core.SearchConfig{
		Metric:          core.Metric(doc.Metric),
		BO:              doc.BO,
		MaxHiddenLayers: doc.MaxHiddenLayers,
		MaxNeurons:      doc.MaxNeurons,
		MaxClusters:     doc.MaxClusters,
		TrainEpochs:     doc.TrainEpochs,
		Format:          fixed.Format{IntBits: doc.FormatIntBits, FracBits: doc.FormatFracBits},
		Seed:            doc.Seed,
	}
	for _, a := range doc.Algorithms {
		kind, err := ir.ParseKind(a)
		if err != nil {
			return core.SearchConfig{}, false, fmt.Errorf("homunculus: search config: %w", err)
		}
		cfg.Algorithms = append(cfg.Algorithms, kind)
	}
	return cfg, doc.Validate, nil
}
