package homunculus

// Deployment is the serving-side handle a Service.Deploy returns,
// mirroring the Job API: compile → Job, serve → Deployment. Since the
// endpoint lifecycle API landed (endpoint.go), a Deployment is a thin
// wrapper over a single-revision serve.Endpoint — same zero-alloc
// micro-batched runtime underneath, but no named route, no rollouts, no
// revision history. Prefer CreateEndpoint for new code: endpoints add
// versioned revisions, canary/shadow rollouts, and rollback behind a
// stable name (docs/serving.md covers the deprecation plan for the flat
// Deploy surface).

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/serve"
)

var (
	// ErrOverloaded sheds a classify request because the deployment's
	// bounded intake queue is full — back off and retry (HTTP 429).
	ErrOverloaded = serve.ErrOverloaded
	// ErrDeploymentClosed rejects requests to a deployment that is
	// draining or drained.
	ErrDeploymentClosed = serve.ErrClosed
	// ErrNotDeployable rejects deploying a pipeline (or app) that
	// carries no compiled model.
	ErrNotDeployable = errors.New("homunculus: pipeline has no deployable model")
)

// DeployOptions tunes a deployment's serving runtime. Zero values select
// defaults (see internal/serve and docs/serving.md).
type DeployOptions struct {
	// App selects which compiled application of a multi-model pipeline
	// to serve. Empty selects the first app with a deployable model.
	App string
	// Shards is the number of inference workers (default: the shared
	// worker pool's size, i.e. GOMAXPROCS).
	Shards int
	// BatchSize is the micro-batcher's flush threshold (default 64).
	BatchSize int
	// MaxDelay bounds how long a request may wait for its batch to fill
	// (default 500µs; negative = greedy flush).
	MaxDelay time.Duration
	// QueueDepth bounds the intake queue; requests beyond it shed with
	// ErrOverloaded (default 1024).
	QueueDepth int
	// RetainRetired caps how many retired revisions an endpoint keeps
	// warm for instant rollback (default 2; negative keeps all). Only
	// meaningful for endpoints; flat deployments ignore it.
	RetainRetired int
	// ValidateRollouts gates every revision of an endpoint behind
	// translation validation: the shipped artifact text is interpreted
	// and differentially checked against the model's IR reference before
	// it may serve, and a diverging (or unparseable) artifact is refused
	// with ErrValidationFailed (docs/validation.md). Only meaningful for
	// endpoints; flat deployments ignore it.
	ValidateRollouts bool
	// Serving, when non-nil, is the canonical versioned serving
	// configuration — the same document the tuner emits and
	// PUT /v1/endpoints/{name}/config applies. It wins wholesale over
	// the flat Shards/BatchSize/MaxDelay/QueueDepth/RetainRetired knobs
	// above (which remain for compatibility) and is validated up front,
	// so an out-of-range value fails the deploy with every violation
	// listed instead of being silently clamped.
	Serving *ServingConfig
}

// DeploymentStats is a point-in-time snapshot of a deployment's serving
// metrics (throughput, latency quantiles, per-class counts, drops).
type DeploymentStats = serve.Stats

// Deployment is a live inference server over one compiled model — a
// single-revision endpoint without a named route. All methods are safe
// for concurrent use.
//
// Deprecated-in-spirit: new code should use Service.CreateEndpoint,
// which adds versioned revisions, canary/shadow rollouts, and rollback;
// Deploy remains supported as the single-revision convenience.
type Deployment struct {
	id       string
	jobID    string
	app      string
	platform string
	model    *ir.Model
	created  time.Time
	ep       *serve.Endpoint
	svc      *Service

	forget sync.Once
}

// ID returns the service-assigned deployment identifier.
func (d *Deployment) ID() string { return d.id }

// JobID returns the compilation job this deployment serves ("" when the
// pipeline was deployed directly).
func (d *Deployment) JobID() string { return d.jobID }

// App returns the served application (model) name.
func (d *Deployment) App() string { return d.app }

// Platform returns the pipeline's backend kind.
func (d *Deployment) Platform() string { return d.platform }

// Model returns the served IR model.
func (d *Deployment) Model() *ir.Model { return d.model }

// Created returns when the deployment started serving.
func (d *Deployment) Created() time.Time { return d.created }

// Config returns the effective (defaulted) serving options.
func (d *Deployment) Config() DeployOptions {
	o := d.ep.Options()
	return DeployOptions{
		App:        d.app,
		Shards:     o.Shards,
		BatchSize:  o.BatchSize,
		MaxDelay:   o.MaxDelay,
		QueueDepth: o.QueueDepth,
	}
}

// Classify submits one feature vector to the serving runtime and blocks
// until its class is computed (micro-batched under concurrent load).
// Sheds with ErrOverloaded when the intake queue is full.
func (d *Deployment) Classify(x []float64) (int, error) { return d.ep.Classify(x) }

// ClassifyBatch classifies every vector of xs; classes[i] is -1 for shed
// (counted in dropped) or failed requests. Accepted requests always
// complete.
func (d *Deployment) ClassifyBatch(xs [][]float64) (classes []int, dropped int, err error) {
	return d.ep.ClassifyBatch(xs)
}

// Stats snapshots the deployment's serving metrics.
func (d *Deployment) Stats() DeploymentStats { return d.ep.Stats().Merged }

// Close drains the deployment: intake stops, every accepted request is
// still classified and delivered, then the runtime's workers exit.
// Blocks until the drain completes; idempotent. Closing deregisters the
// deployment from the service (Service.Deployment stops finding it), so
// a directly closed deployment is never listed as live.
func (d *Deployment) Close() error {
	d.forget.Do(func() { d.svc.forgetDeployment(d.id, d) })
	return d.ep.Close()
}

// Deploy turns a finished job's compiled pipeline into a live
// deployment. The job must be done (ErrJobNotFinished otherwise) and its
// pipeline must carry a deployable model for the selected app.
//
// Deprecated: use CreateEndpoint. Endpoints serve the same runtime
// behind a stable name and add versioned revisions, canary/shadow
// rollouts, rollback, and manifest persistence across restarts; flat
// deployments have none of those and are not restored by a durable
// Open. The /v1/deployments wire surface no longer calls Deploy — it
// aliases onto endpoints with auto-generated names — so Deploy remains
// only as a Go-API convenience (docs/serving.md).
func (s *Service) Deploy(jobID string, opts DeployOptions) (*Deployment, error) {
	j, ok := s.Job(jobID)
	if !ok {
		return nil, fmt.Errorf("homunculus: deploy: no such job %q", jobID)
	}
	pipe, err := j.Result()
	if err != nil {
		return nil, fmt.Errorf("homunculus: deploy job %s: %w", jobID, err)
	}
	return s.deploy(pipe, jobID, opts)
}

// DeployPipeline serves a pipeline compiled out of band (for example by
// a direct Generate call), registering it with the service's deployment
// table like any Deploy result.
//
// Deprecated: use CreateEndpointPipeline, which serves the same runtime
// behind a named endpoint with revision history and durable restore.
func (s *Service) DeployPipeline(pipe *Pipeline, opts DeployOptions) (*Deployment, error) {
	return s.deploy(pipe, "", opts)
}

func (s *Service) deploy(pipe *Pipeline, jobID string, opts DeployOptions) (*Deployment, error) {
	app, err := selectApp(pipe, opts.App)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	s.nextDepID++
	id := fmt.Sprintf("dep-%06d", s.nextDepID)
	s.mu.Unlock()

	sopts, err := servingOptions(opts)
	if err != nil {
		return nil, fmt.Errorf("homunculus: deploy %s: %w", app.Name, err)
	}
	sopts.RetainRetired = 0 // flat deployments have no revision history
	ep, err := serve.NewEndpoint(id, app.Model, sopts)
	if err != nil {
		return nil, fmt.Errorf("homunculus: deploy %s: %w", app.Name, err)
	}
	d := &Deployment{
		id:       id,
		jobID:    jobID,
		app:      app.Name,
		platform: pipe.Platform,
		model:    app.Model,
		created:  time.Now(),
		ep:       ep,
		svc:      s,
	}
	s.mu.Lock()
	if s.closed {
		// Raced with Close: do not leak a live runtime past shutdown.
		s.mu.Unlock()
		_ = ep.Close()
		return nil, ErrServiceClosed
	}
	s.deployments[id] = d
	s.depOrder = append(s.depOrder, id)
	s.mu.Unlock()
	return d, nil
}

// Deployment looks up a live deployment by ID.
func (s *Service) Deployment(id string) (*Deployment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.deployments[id]
	return d, ok
}

// Deployments returns every live deployment in creation order.
func (s *Service) Deployments() []*Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Deployment, 0, len(s.depOrder))
	for _, id := range s.depOrder {
		out = append(out, s.deployments[id])
	}
	return out
}

// forgetDeployment removes a closed deployment from the service table.
func (s *Service) forgetDeployment(id string, d *Deployment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deployments[id] != d {
		return
	}
	delete(s.deployments, id)
	s.depOrder = removeFromOrder(s.depOrder, id)
}

// Undeploy drains a deployment (delivering every accepted request) and
// removes it from the service's table, returning its final stats.
func (s *Service) Undeploy(id string) (DeploymentStats, error) {
	s.mu.Lock()
	d, ok := s.deployments[id]
	s.mu.Unlock()
	if !ok {
		return DeploymentStats{}, fmt.Errorf("homunculus: undeploy: no such deployment %q", id)
	}
	_ = d.Close()
	return d.Stats(), nil
}
