package homunculus

// Cluster hooks: the seams internal/cluster drives to make N services
// behave as one logical compiler. The fabric attaches a RemoteArtifacts
// source (consulted by the run loop between the local artifact store and
// a cold compile), enables work sharing (queued submissions keep their
// wire form so peers can steal them), and drives delegated executions
// through RemoteJob handles. The invariant every hook preserves: a job's
// identity and terminal durability belong to the node that admitted it —
// delegation moves the compute, never the journal record.

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/alchemy"
	"repro/internal/core"
)

// RemoteArtifacts is the cluster fabric's artifact exchange. Fetch is
// consulted on the compile path after a local store miss; Offer
// announces a fresh local compile for broadcast installs. Fetch
// implementations must verify payload digests before returning — the
// service installs what Fetch hands back. Offer must not block.
type RemoteArtifacts interface {
	Fetch(ctx context.Context, hash string) ([]byte, bool)
	Offer(hash string, payload []byte)
}

// remoteArtifactsBox wraps the interface so it can sit in an
// atomic.Pointer (set once at boot, read on every compile).
type remoteArtifactsBox struct{ ra RemoteArtifacts }

// SetRemoteArtifacts attaches a peer artifact source. Call before the
// service takes traffic; pass nil to detach.
func (s *Service) SetRemoteArtifacts(ra RemoteArtifacts) {
	if ra == nil {
		s.remote.Store(nil)
		return
	}
	s.remote.Store(&remoteArtifactsBox{ra: ra})
}

// EnableWorkSharing makes queued submissions stealable: Submit retains
// each job's wire form so Backlog can offer it to peers and
// ClaimForSteal can hand it over. Off by default — the retention costs
// one platform marshal per submission.
func (s *Service) EnableWorkSharing() { s.workSharing.Store(true) }

// lookupStored resolves key from the durable artifact store, then from
// cluster peers. A remote hit is installed into the local store (best
// effort) so the cluster converges toward one content-addressed cache.
func (s *Service) lookupStored(ctx context.Context, key string) (*Pipeline, bool) {
	if pipe, ok := s.loadArtifact(key); ok {
		return pipe, true
	}
	box := s.remote.Load()
	if box == nil {
		return nil, false
	}
	payload, ok := box.ra.Fetch(ctx, key)
	if !ok {
		return nil, false
	}
	pipe, err := UnmarshalPipeline(payload)
	if err != nil {
		s.storeErr(fmt.Errorf("remote artifact %s: %w", key, err))
		return nil, false
	}
	if s.store != nil {
		if perr := s.store.Artifacts.Put(key, payload); perr != nil {
			s.storeErr(fmt.Errorf("install remote artifact %s: %w", key, perr))
		}
	}
	return pipe, true
}

// InstallArtifact installs an already-verified artifact payload (the
// receiving end of a broadcast): parsed, written through to the store,
// and planted in the in-memory cache so an identical submission is a
// warm hit without touching disk.
func (s *Service) InstallArtifact(key string, payload []byte) error {
	pipe, err := UnmarshalPipeline(payload)
	if err != nil {
		return fmt.Errorf("homunculus: install artifact %s: %w", key, err)
	}
	if s.store != nil {
		if perr := s.store.Artifacts.Put(key, payload); perr != nil {
			s.storeErr(fmt.Errorf("install artifact %s: %w", key, perr))
		}
	}
	if s.cache != nil {
		s.cache.insert(key, pipe)
	}
	return nil
}

// ExportArtifact returns the canonical pipeline document stored under
// key, from the artifact store or — on an in-memory service — the
// completed flight cache. The bytes are the peer-fetch payload.
func (s *Service) ExportArtifact(key string) ([]byte, bool) {
	if s.store != nil {
		if raw, err := s.store.Artifacts.Get(key); err == nil {
			return raw, true
		}
	}
	if s.cache != nil {
		if pipe, ok := s.cache.peek(key); ok {
			if raw, err := MarshalPipeline(pipe); err == nil {
				return raw, true
			}
		}
	}
	return nil, false
}

// WireJob is a submission in wire form: the canonical platform document
// plus the journal's search-config encoding. It is what crosses nodes
// when work is delegated or stolen.
type WireJob struct {
	Platform json.RawMessage
	Search   json.RawMessage
}

// SubmitWire decodes a wire-form submission and admits it through the
// normal Submit path (bounded queue, cache, journal). The thief side of
// work stealing: execute a peer's spec as a first-class local job.
func (s *Service) SubmitWire(ctx context.Context, wj WireJob, opts ...Option) (*Job, error) {
	p, err := alchemy.UnmarshalPlatform(wj.Platform)
	if err != nil {
		return nil, fmt.Errorf("homunculus: wire spec: %w", err)
	}
	cfg, validate, err := unmarshalSearchConfig(wj.Search)
	if err != nil {
		return nil, fmt.Errorf("homunculus: wire search config: %w", err)
	}
	all := make([]Option, 0, len(opts)+2)
	all = append(all, WithSearchConfig(cfg))
	if validate {
		all = append(all, WithValidation())
	}
	all = append(all, opts...)
	return s.Submit(ctx, p, all...)
}

// BacklogJob describes one queued submission a peer may steal.
type BacklogJob struct {
	ID       string          `json:"id"`
	Platform string          `json:"platform"`
	Spec     json.RawMessage `json:"spec"`
	Search   json.RawMessage `json:"search"`
}

// Backlog lists queued jobs with a wire form, oldest first — the
// stealable work. Empty unless EnableWorkSharing was called.
func (s *Service) Backlog() []BacklogJob {
	if !s.workSharing.Load() {
		return nil
	}
	jobs := s.Jobs()
	var out []BacklogJob
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == JobQueued && j.wireSpec != nil && j.ticket != nil {
			out = append(out, BacklogJob{ID: j.id, Platform: j.platform, Spec: j.wireSpec, Search: j.wireSearch})
		}
		j.mu.Unlock()
	}
	return out
}

// RemoteJob drives a local job whose compute happens out-of-band — on a
// peer (delegation, stealing) or inline via RunLocal. The job is fully
// registered and journaled on this node: whatever the peer does, the
// terminal transition lands here, under the origin ID, fsynced by the
// usual onFinish hook. Exactly one of Complete/Fail/RunLocal should
// decide the job; later calls lose to finish's exactly-once guard.
type RemoteJob struct {
	svc *Service
	job *Job
	p   *alchemy.Platform
	o   options
}

// Job returns the underlying local job handle.
func (r *RemoteJob) Job() *Job { return r.job }

// Context returns the job's run context — cancelled when the client
// cancels the job, so a delegation in flight stops polling a peer for a
// result nobody wants.
func (r *RemoteJob) Context() context.Context {
	if r.job.ctx != nil {
		return r.job.ctx
	}
	return context.Background()
}

// ID returns the origin-node job ID.
func (r *RemoteJob) ID() string { return r.job.id }

// Hash computes (and memoizes on the job) the submission's content
// address — the key a peer's result is fetched under.
func (r *RemoteJob) Hash() (string, error) {
	if h := r.job.Status().SpecHash; h != "" {
		return h, nil
	}
	key, err := specHash(r.p, r.o.search, r.o.validate, func(m *alchemy.Model) (string, error) {
		return r.svc.fingerprint(m, nil)
	})
	if err != nil {
		return "", err
	}
	r.job.setSpecHash(key)
	return key, nil
}

// Complete finishes the job with a peer-produced artifact payload (the
// canonical pipeline document, already envelope-verified). The payload
// is also installed locally so the result survives restarts and serves
// identical submissions warm.
func (r *RemoteJob) Complete(payload []byte) error {
	pipe, err := UnmarshalPipeline(payload)
	if err != nil {
		return fmt.Errorf("homunculus: delegated result for %s: %w", r.job.id, err)
	}
	if key, herr := r.Hash(); herr == nil {
		if ierr := r.svc.InstallArtifact(key, payload); ierr != nil {
			r.svc.storeErr(fmt.Errorf("delegated result for %s: %w", r.job.id, ierr))
		}
	}
	r.job.setRunning()
	r.job.finish(pipe, nil)
	return nil
}

// Fail finishes the job with the peer's terminal error.
func (r *RemoteJob) Fail(err error) {
	r.job.setRunning()
	r.job.finish(nil, err)
}

// RunLocal executes the job on this node, inline on the calling
// goroutine — the fallback when no peer can (or did) finish it. It
// bypasses the admission queue deliberately: the job was already
// admitted once, and the guarantee that it reaches a terminal state
// outranks the concurrency bound for this one run.
func (r *RemoteJob) RunLocal() {
	ctx := r.job.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	r.svc.run(ctx, r.job, r.p, &r.o)
}

// SubmitRemote admits a job for out-of-band execution: registered and
// journaled under a fresh local ID, but never enqueued — the returned
// RemoteJob's owner decides where it runs. This is the origin half of
// queue-full delegation: the local queue is saturated, so the job must
// not consume a slot, yet the client needs a first-class job handle.
func (s *Service) SubmitRemote(ctx context.Context, p *alchemy.Platform, opts ...Option) (*RemoteJob, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := options{search: core.DefaultSearchConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	clone := *p

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.mu.Unlock()

	jctx, cancel := context.WithCancel(ctx)
	j := newJob(id, clone.Kind.String(), cancel)
	j.ctx = jctx
	if s.store != nil {
		j.onFinish = s.journalFinish
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()
	s.recordSubmission(j, &clone, &o)
	return &RemoteJob{svc: s, job: j, p: &clone, o: o}, nil
}

// ClaimForSteal hands a queued job to a thief: the job is withdrawn from
// the local dispatch queue (losing the race against dispatch returns
// false — a job that started running locally is not stealable) and
// wrapped in a RemoteJob the fabric drives to a terminal state. The
// returned BacklogJob carries the wire form the thief executes.
func (s *Service) ClaimForSteal(id string) (*RemoteJob, BacklogJob, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, BacklogJob{}, false
	}
	j.mu.Lock()
	spec, search := j.wireSpec, j.wireSearch
	ticket := j.ticket
	queued := j.state == JobQueued
	j.mu.Unlock()
	if !queued || spec == nil || ticket == nil || !ticket.Cancel() {
		return nil, BacklogJob{}, false
	}
	// From here the local run closure will never fire: this claim owns
	// the job's terminal transition.
	p, err := alchemy.UnmarshalPlatform(spec)
	if err != nil {
		j.finish(nil, fmt.Errorf("homunculus: job %s wire spec: %w", id, err))
		return nil, BacklogJob{}, false
	}
	cfg, validate, err := unmarshalSearchConfig(search)
	if err != nil {
		j.finish(nil, fmt.Errorf("homunculus: job %s wire search config: %w", id, err))
		return nil, BacklogJob{}, false
	}
	j.setRunning()
	rj := &RemoteJob{svc: s, job: j, p: p, o: options{search: cfg, validate: validate}}
	return rj, BacklogJob{ID: id, Platform: j.platform, Spec: spec, Search: search}, true
}
