package homunculus

// Translation validation as a pipeline stage (docs/validation.md). When a
// submission opts in with WithValidation, every compiled model's emitted
// artifacts are executed by internal/validate's interpreters against the
// IR's quantized reference inference over fixed-seed traffic, and the
// verdict rides on the job result. Divergence does not fail the
// compilation — the pipeline (with its report) is still useful for
// debugging — but the serving layer refuses to roll out a diverging
// revision when the endpoint opted in (endpoint.go), and the CLI's
// -validate mode exits nonzero.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/validate"
)

// ErrValidationFailed refuses serving an artifact that diverges from its
// model's reference semantics — or that carries a recorded failed
// validation verdict — on an endpoint that opted into ValidateRollouts.
var ErrValidationFailed = errors.New("homunculus: translation validation failed")

// Validation traffic is fixed so verdicts are deterministic and cacheable
// under the spec hash: same spec, same traffic, same verdict.
const (
	validationSeed    = 0x484f4d554e43 // "HOMUNC"
	validationTraffic = 256
)

// ValidationReport is the per-app translation-validation verdict.
type ValidationReport struct {
	// Evaluators lists what executed the traffic ("ir", "p4", "spatial",
	// "sim" — coverage depends on the model family).
	Evaluators []string
	// Inputs is the traffic size (random vectors + boundary probes).
	Inputs int
	// Divergences counts inputs on which any evaluator disagreed with
	// the IR reference.
	Divergences int
	// Repro is the minimized divergence artifact (validate.Repro JSON)
	// when Divergences > 0; replay it with `homunculus -validate -repro`.
	Repro json.RawMessage
	// Err records a validation run that could not execute (artifact
	// unparseable, generator error). A non-empty Err is a failed verdict.
	Err string
}

// OK reports whether the artifacts were checked and found equivalent.
func (r *ValidationReport) OK() bool {
	return r != nil && r.Err == "" && r.Divergences == 0
}

// String summarizes the verdict for logs and the CLI.
func (r *ValidationReport) String() string {
	switch {
	case r == nil:
		return "not validated"
	case r.Err != "":
		return fmt.Sprintf("validation error: %s", r.Err)
	case r.Divergences > 0:
		return fmt.Sprintf("DIVERGED on %d/%d inputs across %v", r.Divergences, r.Inputs, r.Evaluators)
	default:
		return fmt.Sprintf("equivalent across %v on %d inputs", r.Evaluators, r.Inputs)
	}
}

// validateModel runs the differential harness over one compiled model's
// regenerated artifacts. An unparseable or ungeneratable artifact is
// reported in Err rather than returned: the stage's contract is to attach
// a verdict, not to abort compilation.
func validateModel(m *ir.Model) *ValidationReport {
	evals, err := validate.Evaluators(m)
	if err != nil {
		return &ValidationReport{Err: err.Error()}
	}
	inputs := validate.Traffic(m, validationSeed, validationTraffic)
	rep := validate.Check(evals, inputs)
	vr := &ValidationReport{
		Evaluators:  rep.Evaluators,
		Inputs:      rep.Inputs,
		Divergences: len(rep.Divergences),
	}
	if len(rep.Divergences) > 0 {
		if r, rerr := validate.NewRepro(m, evals, rep.Divergences[0], ""); rerr == nil {
			var buf bytes.Buffer
			if werr := r.Write(&buf); werr == nil {
				vr.Repro = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
			}
		}
	}
	return vr
}

// gateRollout is the serving-side translation-validation gate: before a
// revision of a ValidateRollouts endpoint may serve, the artifact text it
// actually ships (AppResult.Code) is interpreted with the platform's
// interpreter and differentially checked against the model's IR reference
// over the fixed validation traffic. This re-checks the shipped bytes —
// not the compile-time verdict — so an artifact corrupted or swapped
// after codegen is refused even when the pipeline's recorded verdict was
// clean. A recorded failed verdict is refused outright; a platform
// without an interpreter (no registered artifact grammar) passes on the
// recorded verdict alone.
func gateRollout(platform string, app *AppResult) error {
	if app.Validation != nil && !app.Validation.OK() {
		return fmt.Errorf("%w: app %q compile-time verdict: %s", ErrValidationFailed, app.Name, app.Validation.String())
	}
	if app.Model == nil {
		return nil
	}
	evals := []validate.Evaluator{{Name: "ir", Classify: app.Model.InferQ}}
	switch platform {
	case "tofino":
		interp, err := validate.NewP4Interp(app.Code)
		if err != nil {
			return fmt.Errorf("%w: app %q p4 artifact: %v", ErrValidationFailed, app.Name, err)
		}
		evals = append(evals, validate.Evaluator{Name: "p4", Classify: interp.Classify})
	case "taurus", "fpga":
		interp, err := validate.NewSpatialInterp(app.Code)
		if err != nil {
			return fmt.Errorf("%w: app %q spatial artifact: %v", ErrValidationFailed, app.Name, err)
		}
		evals = append(evals, validate.Evaluator{Name: "spatial", Classify: interp.Classify})
	default:
		return nil
	}
	rep := validate.Check(evals, validate.Traffic(app.Model, validationSeed, validationTraffic))
	if len(rep.Divergences) > 0 {
		d := rep.Divergences[0]
		return fmt.Errorf("%w: app %q shipped artifact diverges from reference on %d/%d inputs (first: %s)",
			ErrValidationFailed, app.Name, len(rep.Divergences), rep.Inputs, d.String())
	}
	return nil
}
