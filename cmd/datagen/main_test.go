package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestRunAllGenerators(t *testing.T) {
	for _, name := range []string{"nslkdd", "iottc", "botnet"} {
		out := t.TempDir()
		if err := run(name, 200, 5, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		trainPath := filepath.Join(out, "train_"+name+".csv")
		f, err := os.Open(trainPath)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := dataset.ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: reread: %v", name, err)
		}
		if d.Len() == 0 || d.Features() == 0 {
			t.Fatalf("%s: empty dataset written", name)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("zzz", 0, 0, t.TempDir()); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}
