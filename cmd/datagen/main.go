// Command datagen materializes the synthetic datasets as CSV files so they
// can be inspected, plotted, or fed back through cmd/homunculus via
// train_csv/test_csv specs.
//
//	go run ./cmd/datagen -dataset nslkdd -out data/
//	go run ./cmd/datagen -dataset botnet -samples 500 -out data/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/packet"
	"repro/internal/synth/botnet"
	"repro/internal/synth/iottc"
	"repro/internal/synth/nslkdd"
)

func main() {
	log.SetFlags(0)
	name := flag.String("dataset", "nslkdd", "dataset: nslkdd | iottc | botnet")
	samples := flag.Int("samples", 0, "sample count (flows for botnet); 0 = generator default")
	seed := flag.Int64("seed", 0, "generator seed; 0 = generator default")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	if err := run(*name, *samples, *seed, *out); err != nil {
		log.Fatalf("datagen: %v", err)
	}
}

func run(name string, samples int, seed int64, out string) error {
	var train, test *dataset.Dataset
	var err error
	switch name {
	case "nslkdd":
		cfg := nslkdd.DefaultConfig()
		if samples > 0 {
			cfg.Samples = samples
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		train, test, err = nslkdd.TrainTest(cfg)
	case "iottc":
		cfg := iottc.DefaultConfig()
		if samples > 0 {
			cfg.Samples = samples
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		train, test, err = iottc.TrainTest(cfg)
	case "botnet":
		cfg := botnet.DefaultConfig()
		if samples > 0 {
			cfg.Flows = samples
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		var flows []botnet.Flow
		flows, err = botnet.Generate(cfg)
		if err != nil {
			break
		}
		cut := len(flows) * 3 / 4
		train, err = botnet.FlowmarkerDataset(flows[:cut], packet.PaperBD)
		if err != nil {
			break
		}
		test, err = botnet.PartialDataset(flows[cut:], packet.PaperBD, 8)
	default:
		return fmt.Errorf("unknown dataset %q (have nslkdd, iottc, botnet)", name)
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	trainPath := filepath.Join(out, fmt.Sprintf("train_%s.csv", name))
	testPath := filepath.Join(out, fmt.Sprintf("test_%s.csv", name))
	if err := writeCSV(trainPath, train); err != nil {
		return err
	}
	if err := writeCSV(testPath, test); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d samples) and %s (%d samples), %d features\n",
		trainPath, train.Len(), testPath, test.Len(), train.Features())
	return nil
}

func writeCSV(path string, d *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
