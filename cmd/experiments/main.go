// Command experiments regenerates every table and figure of the
// Homunculus evaluation (§5) and prints paper-style rows. Use -run to
// select one experiment and -quick for the reduced bench budget.
//
//	go run ./cmd/experiments            # everything, full budget
//	go run ./cmd/experiments -run table2
//	go run ./cmd/experiments -quick -run fig7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/experiments/sweep"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "experiment: table2|table3|table4|table5|fig4|fig6|fig7|reaction|service|all")
	quick := flag.Bool("quick", false, "use the reduced budget (faster, noisier)")
	seed := flag.Int64("seed", 1, "global experiment seed")
	flag.Parse()

	budget := experiments.Full()
	if *quick {
		budget = experiments.Quick()
	}
	budget.Seed = *seed

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	if want("table2") {
		ran = true
		rows, err := experiments.Table2(budget)
		if err != nil {
			log.Fatalf("table2: %v", err)
		}
		section("Table 2: hand-tuned baselines vs Homunculus-generated models")
		fmt.Print(experiments.FormatTable2(rows))
	}
	if want("table3") {
		ran = true
		rows, err := experiments.Table3(budget)
		if err != nil {
			log.Fatalf("table3: %v", err)
		}
		section("Table 3: resource scaling for application chaining strategies")
		fmt.Print(experiments.FormatTable3(rows))
	}
	if want("table4") {
		ran = true
		rows, err := experiments.Table4(budget)
		if err != nil {
			log.Fatalf("table4: %v", err)
		}
		section("Table 4: fused resource usage")
		fmt.Print(experiments.FormatTable4(rows))
	}
	if want("table5") {
		ran = true
		rows, err := experiments.Table5(budget)
		if err != nil {
			log.Fatalf("table5: %v", err)
		}
		section("Table 5: FPGA testbed resource consumption")
		fmt.Print(experiments.FormatTable5(rows))
	}
	if want("fig4") {
		ran = true
		data, err := experiments.Figure4(budget)
		if err != nil {
			log.Fatalf("fig4: %v", err)
		}
		section("Figure 4: BO regret (F1 per iteration, anomaly-detection DNN)")
		fmt.Print(experiments.FormatFigure4(data))
	}
	if want("fig6") {
		ran = true
		data, err := experiments.Figure6(budget)
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		section("Figure 6: botnet vs benign flow-level histograms")
		fmt.Print(experiments.FormatFigure6(data))
	}
	if want("fig7") {
		ran = true
		series, err := experiments.Figure7(budget)
		if err != nil {
			log.Fatalf("fig7: %v", err)
		}
		section("Figure 7: KMeans V-measure under MAT budgets")
		fmt.Print(experiments.FormatFigure7(series))
	}
	if want("reaction") {
		ran = true
		res, err := experiments.ReactionTime(budget)
		if err != nil {
			log.Fatalf("reaction: %v", err)
		}
		section("§5.1.1: reaction time — per-packet vs flow-level botnet detection")
		fmt.Print(experiments.FormatReaction(res))
	}
	if want("service") {
		ran = true
		rows, err := sweep.Run(budget)
		if err != nil {
			log.Fatalf("service: %v", err)
		}
		section("Service sweep: bounded admission + content-addressed cache under load")
		fmt.Print(sweep.Format(rows))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}
