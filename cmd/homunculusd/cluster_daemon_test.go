// Three-node cluster acceptance: real daemons, real sockets. A compile
// on one node is a byte-identical zero-stage cache hit on its peers,
// cluster-scope endpoint stats equal the sum of per-node stats, and a
// stolen job still reaches a terminal state under its origin ID after
// the thief is SIGKILLed mid-steal (lease expiry → local reclaim).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"

	homunculus "repro"
)

// startClusterDaemon boots one fabric member. peers is the seed list;
// extra appends raw flags (e.g. "-max-inflight", "1").
func startClusterDaemon(t *testing.T, addr string, peers []string, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", addr, "-node-addr", "http://" + addr,
		"-peers", strings.Join(peers, ","),
		"-heartbeat", "100ms",
		"-steal-interval", "-1s", // stealing is opt-in per test
	}
	args = append(args, extra...)
	cmd := exec.Command(daemonBin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := httpapi.NewClient("http://" + addr)
	c.BaseDelay = 50 * time.Millisecond
	c.MaxAttempts = 40
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Get(ctx, "/v1/healthz", nil); err != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		t.Fatalf("cluster daemon on %s never answered: %v", addr, err)
	}
	return &daemon{cmd: cmd, client: c}
}

// waitPeersAlive polls a node's cluster document until n peers report
// alive.
func waitPeersAlive(t *testing.T, ctx context.Context, d *daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := d.client.ClusterStatus(ctx)
		if err == nil {
			alive := 0
			for _, p := range st.Peers {
				if p.State == "alive" {
					alive++
				}
			}
			if alive >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("peers never became alive (want %d): %v", n, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fetchEnvelope pulls the verified artifact envelope for hash from a
// node, as raw bytes.
func fetchEnvelope(t *testing.T, ctx context.Context, d *daemon, hash string) []byte {
	t.Helper()
	var raw json.RawMessage
	if err := d.client.Get(ctx, "/v1/cluster/artifacts/"+hash, &raw); err != nil {
		t.Fatalf("fetch envelope %s: %v", hash, err)
	}
	return raw
}

// TestClusterThreeNodeDifferential: compile once on A, and the same
// spec submitted on B is a remote cache hit — no search stages, same
// spec hash, byte-identical envelope from every node that stores it.
// Then cluster-scope stats from any node equal the per-node sum.
func TestClusterThreeNodeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a three-daemon cluster")
	}
	addrA, addrB, addrC := freeAddr(t), freeAddr(t), freeAddr(t)
	all := []string{"http://" + addrA, "http://" + addrB, "http://" + addrC}
	a := startClusterDaemon(t, addrA, []string{all[1], all[2]})
	defer a.kill(t)
	b := startClusterDaemon(t, addrB, []string{all[0], all[2]})
	defer b.kill(t)
	c := startClusterDaemon(t, addrC, []string{all[0], all[1]})
	defer c.kill(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	waitPeersAlive(t, ctx, a, 2)
	waitPeersAlive(t, ctx, b, 2)

	// Cold compile on A.
	jobA, err := a.client.SubmitJob(ctx, crashSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	finalA, err := a.client.WaitJob(ctx, jobA.ID, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if finalA.State != homunculus.JobDone || finalA.CacheHit {
		t.Fatalf("cold compile on A: %+v", finalA)
	}
	fullA, err := a.client.Job(ctx, jobA.ID, true)
	if err != nil {
		t.Fatal(err)
	}

	// The identical spec on B resolves from A's cache: a hit with zero
	// search stages and the same content address.
	jobB, err := b.client.SubmitJob(ctx, crashSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	finalB, err := b.client.WaitJob(ctx, jobB.ID, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if finalB.State != homunculus.JobDone {
		t.Fatalf("B job ended %s: %s", finalB.State, finalB.Error)
	}
	if !finalB.CacheHit || len(finalB.Stages) != 0 {
		t.Fatalf("B must be a remote cache hit with zero stages: hit=%v stages=%v",
			finalB.CacheHit, finalB.Stages)
	}
	fullB, err := b.client.Job(ctx, jobB.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if fullB.SpecHash != fullA.SpecHash {
		t.Fatalf("spec hash drifted across nodes: %s vs %s", fullB.SpecHash, fullA.SpecHash)
	}
	if !reflect.DeepEqual(fullB.Result, fullA.Result) {
		t.Fatal("remote cache hit result diverged from the origin compile")
	}
	envA := fetchEnvelope(t, ctx, a, fullA.SpecHash)
	envB := fetchEnvelope(t, ctx, b, fullA.SpecHash)
	if !bytes.Equal(envA, envB) {
		t.Fatal("artifact envelopes differ across nodes")
	}
	stA, err := a.client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := b.client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Cache.RemoteHits == 0 || stA.Cache.Served == 0 {
		t.Fatalf("cache counters: B hits=%d A served=%d", stB.Cache.RemoteHits, stA.Cache.Served)
	}

	// Cluster-scope stats: the same endpoint name on A and B, different
	// traffic, merged from any node equals the per-node sum.
	var ep httpapi.EndpointJSON
	if err := a.client.Post(ctx, "/v1/endpoints", httpapi.EndpointRequest{
		Name: "clf", JobID: jobA.ID, BatchSize: 8, MaxDelayUS: 1000,
	}, &ep); err != nil {
		t.Fatal(err)
	}
	if err := b.client.Post(ctx, "/v1/endpoints", httpapi.EndpointRequest{
		Name: "clf", JobID: jobB.ID, BatchSize: 8, MaxDelayUS: 1000,
	}, &ep); err != nil {
		t.Fatal(err)
	}
	sample := [][]float64{{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}, {5, 4, 3, 2, 1, 0.5, 0.25}}
	for i := 0; i < 6; i++ { // 12 requests on A
		if _, err := a.client.ClassifyEndpoint(ctx, "clf", sample); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // 8 requests on B
		if _, err := b.client.ClassifyEndpoint(ctx, "clf", sample); err != nil {
			t.Fatal(err)
		}
	}
	rawA, err := a.client.EndpointRawStats(ctx, "clf")
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := b.client.EndpointRawStats(ctx, "clf")
	if err != nil {
		t.Fatal(err)
	}
	// Ask C — a node that serves no such endpoint itself would 404, so
	// query from A and B and require both views to agree.
	for _, d := range []*daemon{a, b} {
		merged, err := d.client.EndpointClusterStats(ctx, "clf")
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Nodes) != 2 {
			t.Fatalf("cluster stats nodes = %d, want 2", len(merged.Nodes))
		}
		if want := rawA.Accepted + rawB.Accepted; merged.Merged.Accepted != want {
			t.Fatalf("merged accepted %d != per-node sum %d", merged.Merged.Accepted, want)
		}
		if want := rawA.Completed + rawB.Completed; merged.Merged.Completed != want {
			t.Fatalf("merged completed %d != per-node sum %d", merged.Merged.Completed, want)
		}
	}
}

// TestClusterStealSurvivesThiefCrash: the origin's queued job is stolen
// by an idle peer, the peer is SIGKILLed mid-execution, and the lease
// expiry reclaims the job into a local run — terminal state under the
// original ID, no operator involvement.
func TestClusterStealSurvivesThiefCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("boots daemons and kills one mid-steal")
	}
	addrA, addrC := freeAddr(t), freeAddr(t)
	// Origin: one compile slot, fast heartbeat, a short lease so the
	// reclaim happens inside the test budget. Thief: aggressive stealing.
	a := startClusterDaemon(t, addrA, []string{"http://" + addrC},
		"-max-inflight", "1", "-steal-lease", "2s")
	defer a.kill(t)
	c := startClusterDaemon(t, addrC, []string{"http://" + addrA},
		"-steal-interval", "50ms")
	defer c.kill(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	waitPeersAlive(t, ctx, a, 1)
	waitPeersAlive(t, ctx, c, 1)

	// Fill A's only slot, then queue the victim behind it.
	blocker, err := a.client.SubmitJob(ctx, heavySpec(21))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := a.client.SubmitJob(ctx, heavySpec(22))
	if err != nil {
		t.Fatal(err)
	}

	// Kill the thief the moment the origin grants it the lease.
	grantDeadline := time.Now().Add(30 * time.Second)
	for {
		st, err := a.client.ClusterStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Steal.StolenGranted > 0 {
			break
		}
		if time.Now().After(grantDeadline) {
			t.Fatal("thief never stole the queued job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.kill(t)

	// Lease expiry reclaims the job on the origin; both jobs finish
	// under their original IDs.
	for _, id := range []string{blocker.ID, victim.ID} {
		final, err := a.client.WaitJob(ctx, id, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if final.State != homunculus.JobDone {
			t.Fatalf("job %s ended %s: %s", id, final.State, final.Error)
		}
	}
	st, err := a.client.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steal.Reclaimed == 0 {
		t.Fatalf("origin never reclaimed the orphaned lease: %+v", st.Steal)
	}
}

// heavySpec is a compile big enough to hold a slot (and a thief) busy
// for seconds — the window the steal test needs.
func heavySpec(seed int64) httpapi.SubmitRequest {
	req := crashSpec(seed)
	req.Search = &httpapi.SearchJSON{
		Init: 4, Iterations: 8, Epochs: 12, MaxLayers: 3, MaxNeurons: 24, Seed: seed,
	}
	return req
}
