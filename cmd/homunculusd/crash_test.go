// Crash-point tests: build the real daemon binary, SIGKILL it mid-job
// and mid-rollout, restart it on the same -state-dir, and prove full
// recovery over the wire — interrupted compilations rerun under their
// original IDs, identical resubmissions are warm cache hits with
// byte-identical results, and restored endpoints classify bit-identically
// to their pre-crash selves. The retrying httpapi.Client is the test's
// transport, so the restart windows themselves exercise its backoff.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/httpapi"

	homunculus "repro"
)

// daemonBin is the compiled homunculusd under test (built by TestMain,
// skipped entirely under -short).
var daemonBin string

func TestMain(m *testing.M) {
	code := func() int {
		dir, err := os.MkdirTemp("", "homunculusd-bin-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.RemoveAll(dir)
		daemonBin = filepath.Join(dir, "homunculusd")
		build := exec.Command("go", "build", "-o", daemonBin, ".")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "build daemon: %v\n", err)
			return 1
		}
		return m.Run()
	}()
	os.Exit(code)
}

// crashSpec is the CI-sized compilation the crash tests submit; seed
// varies per revision.
func crashSpec(seed int64) httpapi.SubmitRequest {
	raw := `{
		"kind": "taurus",
		"constraints": {"throughput_gpkts": 1, "latency_ns": 500, "rows": 16, "cols": 16},
		"schedule": {"model": {"name": "anomaly_detection", "metric": "f1",
		                       "algorithms": ["dnn"], "dataset": "nslkdd"}}
	}`
	req := httpapi.SubmitRequest{Search: &httpapi.SearchJSON{
		Init: 3, Iterations: 4, Epochs: 6, MaxLayers: 2, MaxNeurons: 12, Seed: seed,
	}}
	if err := json.Unmarshal([]byte(raw), &req.Platform); err != nil {
		panic(err)
	}
	return req
}

// daemon wraps one homunculusd process plus a retrying client on it.
type daemon struct {
	cmd    *exec.Cmd
	client *httpapi.Client
	killed bool
}

// startDaemon boots homunculusd on addr with the given state dir and
// waits for it to answer.
func startDaemon(t *testing.T, addr, stateDir string) *daemon {
	t.Helper()
	cmd := exec.Command(daemonBin, "-addr", addr, "-state-dir", stateDir, "-max-inflight", "2")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := httpapi.NewClient("http://" + addr)
	c.BaseDelay = 50 * time.Millisecond
	c.MaxAttempts = 40 // the boot window is exactly what retries are for
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Get(ctx, "/v1/backends", nil); err != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		t.Fatalf("daemon on %s never answered: %v", addr, err)
	}
	return &daemon{cmd: cmd, client: c}
}

// kill SIGKILLs the daemon — no drain, no shutdown hook: the crash.
// Idempotent, so tests can both kill mid-run and defer a cleanup kill.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if d.killed {
		return
	}
	d.killed = true
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d.cmd.Process.Wait()
}

// freeAddr reserves a loopback port for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestCrashMidCompilationRecovers kills the daemon while a job is
// compiling (with a second job queued behind it), restarts it on the
// same state dir, and requires both interrupted jobs to rerun to
// completion under their original IDs — after which an identical
// resubmission is a warm cache hit with a byte-identical result.
func TestCrashMidCompilationRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	stateDir := t.TempDir()
	addr := freeAddr(t)
	d := startDaemon(t, addr, stateDir)
	defer d.kill(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	job1, err := d.client.SubmitJob(ctx, crashSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	job2, err := d.client.SubmitJob(ctx, crashSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	// Kill as soon as the first job is observed compiling: job1 dies
	// mid-search, job2 dies queued.
	for {
		j, err := d.client.Job(ctx, job1.ID, false)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == homunculus.JobRunning {
			break
		}
		if j.State != homunculus.JobQueued {
			t.Fatalf("job1 reached %s before the crash", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.kill(t)

	d2 := startDaemon(t, addr, stateDir)
	defer d2.kill(t)
	// Both interrupted jobs must be re-enqueued under their original IDs
	// and rerun to completion.
	for _, id := range []string{job1.ID, job2.ID} {
		final, err := d2.client.WaitJob(ctx, id, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("recovered job %s: %v", id, err)
		}
		if final.State != homunculus.JobDone {
			t.Fatalf("recovered job %s ended %s: %s", id, final.State, final.Error)
		}
	}
	recovered, err := d2.client.Job(ctx, job1.ID, true)
	if err != nil {
		t.Fatal(err)
	}

	// An identical resubmission after recovery must be a warm hit — no
	// search stages — serving a byte-identical result.
	again, err := d2.client.SubmitJob(ctx, crashSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	final, err := d2.client.WaitJob(ctx, again.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != homunculus.JobDone || !final.CacheHit {
		t.Fatalf("identical resubmit must be a cache hit: %+v", final)
	}
	if len(final.Stages) != 0 {
		t.Fatalf("cache hit ran search stages: %v", final.Stages)
	}
	full, err := d2.client.Job(ctx, again.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if full.SpecHash != recovered.SpecHash {
		t.Fatalf("spec hash drifted: %s vs %s", full.SpecHash, recovered.SpecHash)
	}
	if !reflect.DeepEqual(full.Result, recovered.Result) {
		t.Fatalf("resubmitted result diverged from the recovered one:\n%+v\n%+v", full.Result, recovered.Result)
	}
}

// TestCrashMidRolloutRecovers kills the daemon while an endpoint has a
// live 50% canary rollout in its table, restarts it, and requires the
// endpoint to come back with the rollout intact and classify the same
// batch bit-identically (the deterministic canary split restarts from
// the same sequence); the rollout then completes with a promote.
func TestCrashMidRolloutRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon")
	}
	stateDir := t.TempDir()
	addr := freeAddr(t)
	d := startDaemon(t, addr, stateDir)
	defer d.kill(t)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	ids := make([]string, 2)
	for i, seed := range []int64{1, 2} {
		job, err := d.client.SubmitJob(ctx, crashSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		final, err := d.client.WaitJob(ctx, job.ID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != homunculus.JobDone {
			t.Fatalf("job %s ended %s: %s", job.ID, final.State, final.Error)
		}
		ids[i] = job.ID
	}

	var ep httpapi.EndpointJSON
	if err := d.client.Post(ctx, "/v1/endpoints", httpapi.EndpointRequest{
		Name: "ad", JobID: ids[0], BatchSize: 8, MaxDelayUS: 1000,
	}, &ep); err != nil {
		t.Fatal(err)
	}
	if err := d.client.Post(ctx, "/v1/endpoints/ad/rollout", httpapi.RolloutRequest{
		JobID: ids[1], CanaryPercent: 50, BatchSize: 8, MaxDelayUS: 1000,
	}, &ep); err != nil {
		t.Fatal(err)
	}

	// One batch through the live canary split: requests 0..7 of the
	// endpoint's routing sequence.
	batch := [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7},
		{5, 4, 3, 2, 1, 0.5, 0.25},
		{-1, 0, 1, -1, 0, 1, -1},
		{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3},
		{2, 2, 2, 2, 2, 2, 2},
		{0, 0, 0, 0, 0, 0, 0},
		{1.5, -0.5, 0.5, -1.5, 2.5, -2.5, 0.1},
		{0.3, 0.1, 0.4, 0.1, 0.5, 0.9, 0.2},
	}
	before, err := d.client.ClassifyEndpoint(ctx, "ad", batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Classes) != len(batch) || before.Dropped != 0 {
		t.Fatalf("pre-crash classify %+v", before)
	}
	// Crash with the rollout mid-flight (canary serving, nothing
	// promoted).
	d.kill(t)

	d2 := startDaemon(t, addr, stateDir)
	defer d2.kill(t)
	var restored httpapi.EndpointJSON
	if err := d2.client.Get(ctx, "/v1/endpoints/ad", &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Stable != 1 || restored.Canary != 2 || restored.CanaryPercent != 50 {
		t.Fatalf("restored rollout state: %+v", restored)
	}
	if len(restored.Revisions) != 2 {
		t.Fatalf("restored revisions: %+v", restored.Revisions)
	}

	// The restored endpoint restarts its routing sequence, so the same
	// first batch must take the same canary split and answer
	// bit-identically.
	after, err := d2.client.ClassifyEndpoint(ctx, "ad", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Classes, before.Classes) {
		t.Fatalf("restored endpoint diverged:\n  before: %v\n  after:  %v", before.Classes, after.Classes)
	}

	// The interrupted rollout completes: promote lands revision 2.
	var promoted httpapi.EndpointJSON
	if err := d2.client.Post(ctx, "/v1/endpoints/ad/promote", nil, &promoted); err != nil {
		t.Fatal(err)
	}
	if promoted.Stable != 2 || promoted.Canary != 0 {
		t.Fatalf("post-promote state: %+v", promoted)
	}
	if _, err := d2.client.ClassifyEndpoint(ctx, "ad", batch); err != nil {
		t.Fatal(err)
	}
}
