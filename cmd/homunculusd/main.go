// Command homunculusd runs the Homunculus compilation service as a
// long-lived HTTP/JSON daemon: many clients submit declarative pipeline
// specs, the service admits them under bounded concurrency,
// deduplicates identical submissions through the content-addressed
// cache, and streams per-stage progress. See docs/api.md for the wire
// format and curl examples.
//
//	homunculusd -addr :8077
//	homunculusd -addr :8077 -max-inflight 4 -queue-depth 128 -cache 256
//	homunculusd -addr :8077 -state-dir /var/lib/homunculus
//
// -state-dir makes the daemon crash-safe (docs/operations.md): compiled
// pipelines persist in a content-addressed artifact store, every job
// transition is journaled write-ahead, and the endpoint table survives
// in a manifest. Restarting on the same directory replays the journal —
// finished work becomes warm cache hits, jobs that were queued or
// running at crash time recompile under their original IDs, and named
// endpoints resume serving their restored revisions. Without it the
// daemon is in-memory only and a restart forfeits everything.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (SSE), DELETE /v1/jobs/{id},
// GET /v1/backends. Finished jobs can be promoted to live inference
// servers through POST /v1/deployments, classified in batches via
// POST /v1/deployments/{id}/classify, observed at
// GET /v1/deployments/{id}/stats, and drained with DELETE
// (docs/serving.md). The versioned serving surface lives under
// /v1/endpoints: named routes whose revisions roll out gradually
// (POST {name}/rollout with a canary percent or shadow mirror), get
// promoted or rolled back atomically (POST {name}/promote|rollback),
// and report per-revision stats plus shadow divergence
// (GET {name}/stats). The bundled synthetic dataset generators
// ("nslkdd", "iottc", "botnet") are pre-registered in the dataset
// catalog; embed the daemon to register custom loaders with
// alchemy.RegisterLoader.
//
// SIGINT/SIGTERM shut down gracefully: HTTP drains, running
// compilations finish, queued jobs fail with ErrServiceClosed
// (httpapi.ListenAndServe — the same loop behind `homunculus -serve`).
package main

import (
	"flag"
	"log"

	"repro/internal/httpapi"

	homunculus "repro"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8077", "listen address")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent compilations (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max queued submissions (0 = default 64, negative = unbounded)")
	cacheEntries := flag.Int("cache", 0, "cached pipelines (0 = default 128, negative = disable caching)")
	stateDir := flag.String("state-dir", "", "durable state directory (artifact store + job journal + endpoint manifest); empty = in-memory only")
	flag.Parse()

	httpapi.RegisterBuiltinLoaders()
	svc, err := homunculus.Open(homunculus.ServiceOptions{
		MaxInFlight:  *maxInFlight,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		StateDir:     *stateDir,
	})
	if err != nil {
		log.Fatalf("homunculusd: open state dir %s: %v", *stateDir, err)
	}
	if *stateDir != "" {
		rep := svc.Recovery()
		log.Printf("homunculusd: recovered %s: %d journal records (%d corrupt skipped), %d results warm, %d jobs requeued (%d unrecoverable), %d endpoints restored (%d skipped)",
			*stateDir, rep.JournalRecords, rep.JournalSkipped,
			len(rep.JobsRecovered), len(rep.JobsRequeued), len(rep.JobsSkipped),
			len(rep.EndpointsRestored), len(rep.EndpointsSkipped))
	}
	opts := svc.Options()
	log.Printf("homunculusd: listening on %s (max in-flight %d, queue depth %d, cache %d)",
		*addr, opts.MaxInFlight, opts.QueueDepth, opts.CacheEntries)
	if err := httpapi.ListenAndServe(*addr, svc); err != nil {
		log.Fatalf("homunculusd: %v", err)
	}
}
