// Command homunculusd runs the Homunculus compilation service as a
// long-lived HTTP/JSON daemon: many clients submit declarative pipeline
// specs, the service admits them under bounded concurrency,
// deduplicates identical submissions through the content-addressed
// cache, and streams per-stage progress. See docs/api.md for the wire
// format and curl examples.
//
//	homunculusd -addr :8077
//	homunculusd -addr :8077 -max-inflight 4 -queue-depth 128 -cache 256
//	homunculusd -addr :8077 -state-dir /var/lib/homunculus
//	homunculusd -addr :8077 -peers http://b:8077,http://c:8077 -node-addr http://a:8077
//
// -state-dir makes the daemon crash-safe (docs/operations.md): compiled
// pipelines persist in a content-addressed artifact store, every job
// transition is journaled write-ahead, and the endpoint table survives
// in a manifest. Restarting on the same directory replays the journal —
// finished work becomes warm cache hits, jobs that were queued or
// running at crash time recompile under their original IDs, and named
// endpoints resume serving their restored revisions. Without it the
// daemon is in-memory only and a restart forfeits everything.
//
// -peers joins a cluster fabric (docs/cluster.md): nodes gossip
// membership and health, resolve artifacts from each other's caches by
// content address before compiling (-cache-mode local|fetch|broadcast),
// delegate queue-full submissions to the least-loaded live peer, and
// steal queued work when idle. -node-addr is the base URL peers dial
// back; it defaults from -addr only when -addr carries a concrete host.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/events (SSE), DELETE /v1/jobs/{id},
// GET /v1/backends, GET /v1/healthz. Finished jobs can be promoted to
// live inference servers through POST /v1/deployments, classified in
// batches via POST /v1/deployments/{id}/classify, observed at
// GET /v1/deployments/{id}/stats, and drained with DELETE
// (docs/serving.md). The versioned serving surface lives under
// /v1/endpoints: named routes whose revisions roll out gradually
// (POST {name}/rollout with a canary percent or shadow mirror), get
// promoted or rolled back atomically (POST {name}/promote|rollback),
// and report per-revision stats plus shadow divergence
// (GET {name}/stats, ?scope=cluster for the cross-node merge). The
// bundled synthetic dataset generators ("nslkdd", "iottc", "botnet")
// are pre-registered in the dataset catalog; embed the daemon to
// register custom loaders with alchemy.RegisterLoader.
//
// SIGINT/SIGTERM shut down gracefully: HTTP drains, running
// compilations finish, queued jobs fail with ErrServiceClosed
// (httpapi.ListenAndServe — the same loop behind `homunculus -serve`).
package main

import (
	"flag"
	"log"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpapi"

	homunculus "repro"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8077", "listen address")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent compilations (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max queued submissions (0 = default 64, negative = unbounded)")
	cacheEntries := flag.Int("cache", 0, "cached pipelines (0 = default 128, negative = disable caching)")
	stateDir := flag.String("state-dir", "", "durable state directory (artifact store + job journal + endpoint manifest); empty = in-memory only")
	peers := flag.String("peers", "", "comma-separated peer base URLs; non-empty joins a cluster fabric")
	nodeAddr := flag.String("node-addr", "", "advertised base URL peers dial back (default http://<addr> when -addr has a host)")
	cacheMode := flag.String("cache-mode", "fetch", "cluster cache mode: local, fetch, or broadcast")
	heartbeat := flag.Duration("heartbeat", time.Second, "cluster gossip interval")
	stealInterval := flag.Duration("steal-interval", time.Second, "idle work-steal poll interval (negative = disable stealing)")
	stealLease := flag.Duration("steal-lease", 30*time.Second, "how long a thief holds a stolen job before the origin reclaims it")
	flag.Parse()

	httpapi.RegisterBuiltinLoaders()
	svc, err := homunculus.Open(homunculus.ServiceOptions{
		MaxInFlight:  *maxInFlight,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		StateDir:     *stateDir,
	})
	if err != nil {
		log.Fatalf("homunculusd: open state dir %s: %v", *stateDir, err)
	}
	if *stateDir != "" {
		rep := svc.Recovery()
		log.Printf("homunculusd: recovered %s: %d journal records (%d corrupt skipped), %d results warm, %d jobs requeued (%d unrecoverable), %d endpoints restored (%d skipped)",
			*stateDir, rep.JournalRecords, rep.JournalSkipped,
			len(rep.JobsRecovered), len(rep.JobsRequeued), len(rep.JobsSkipped),
			len(rep.EndpointsRestored), len(rep.EndpointsSkipped))
	}

	serverOpts := httpapi.ServerOptions{}
	if *peers != "" {
		mode, err := cluster.ParseMode(*cacheMode)
		if err != nil {
			log.Fatalf("homunculusd: %v", err)
		}
		self := *nodeAddr
		if self == "" {
			host := *addr
			if strings.HasPrefix(host, ":") {
				log.Fatalf("homunculusd: -peers needs -node-addr (cannot derive an advertised URL from %q)", *addr)
			}
			self = "http://" + host
		}
		fab, err := cluster.New(svc, cluster.Config{
			SelfAddr:      self,
			Peers:         splitPeers(*peers),
			Mode:          mode,
			Heartbeat:     *heartbeat,
			StealInterval: *stealInterval,
			StealLease:    *stealLease,
		})
		if err != nil {
			log.Fatalf("homunculusd: %v", err)
		}
		fab.Start()
		defer fab.Close()
		serverOpts = fab.Options()
		log.Printf("homunculusd: cluster fabric %s at %s (%d seed peers, cache mode %s)",
			fab.ID(), self, len(splitPeers(*peers)), mode)
	}

	opts := svc.Options()
	log.Printf("homunculusd: listening on %s (max in-flight %d, queue depth %d, cache %d)",
		*addr, opts.MaxInFlight, opts.QueueDepth, opts.CacheEntries)
	if err := httpapi.ListenAndServeHandler(*addr, svc, httpapi.NewServerWith(svc, serverOpts)); err != nil {
		log.Fatalf("homunculusd: %v", err)
	}
}

// splitPeers parses the -peers flag, tolerating spaces and empty
// entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}
