package main

// Translation-validation CLI (docs/validation.md). Three entry points:
//
//	homunculus -validate -spec pipeline.json          compile + validate
//	homunculus -validate -model m.json -code x.p4     check a shipped artifact
//	homunculus -repro divergence.repro.json           replay a saved repro
//
// All three exit nonzero on divergence, after writing (or replaying) a
// minimized repro JSON — the artifact a codegen bug report starts from.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ir"
	"repro/internal/validate"

	homunculus "repro"
)

// validateMode mirrors the -validate flag: single-target compilations run
// the validate stage and the run fails on a diverging verdict.
var validateMode bool

// The CLI uses the same fixed traffic as the service's validate stage, so
// a verdict printed here is bit-comparable with a daemon's.
const (
	cliValidationSeed    = 0x484f4d554e43 // "HOMUNC"
	cliValidationTraffic = 256
)

// artifactLang picks the interpreter for an emitted artifact: the
// -platform override when given, else the file extension the backends
// write (.p4 / .spatial).
func artifactLang(platformOverride, codePath string) (string, error) {
	switch platformOverride {
	case "tofino":
		return "p4", nil
	case "taurus", "fpga":
		return "spatial", nil
	case "":
	default:
		return "", fmt.Errorf("no artifact interpreter for platform %q (have tofino, taurus, fpga)", platformOverride)
	}
	switch ext := filepath.Ext(codePath); ext {
	case ".p4":
		return "p4", nil
	case ".spatial":
		return "spatial", nil
	default:
		return "", fmt.Errorf("cannot infer artifact language from %q; pass -platform", codePath)
	}
}

// runValidateArtifact differentially checks an emitted artifact file
// against its serialized model: the artifact text is interpreted and
// driven with the fixed validation traffic next to the IR reference. On
// divergence a minimized repro lands in outDir and the run errors.
func runValidateArtifact(modelPath, codePath, platformOverride, outDir string) error {
	if modelPath == "" || codePath == "" {
		return fmt.Errorf("artifact validation needs both -model and -code")
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return fmt.Errorf("open model: %w", err)
	}
	defer mf.Close()
	m, err := ir.ReadJSON(mf)
	if err != nil {
		return fmt.Errorf("read model %s: %w", modelPath, err)
	}
	raw, err := os.ReadFile(codePath)
	if err != nil {
		return fmt.Errorf("read artifact: %w", err)
	}
	lang, err := artifactLang(platformOverride, codePath)
	if err != nil {
		return err
	}

	evals := []validate.Evaluator{{Name: "ir", Classify: m.InferQ}}
	switch lang {
	case "p4":
		interp, err := validate.NewP4Interp(string(raw))
		if err != nil {
			return fmt.Errorf("validate: %s: %w", codePath, err)
		}
		evals = append(evals, validate.Evaluator{Name: "p4", Classify: interp.Classify})
	case "spatial":
		interp, err := validate.NewSpatialInterp(string(raw))
		if err != nil {
			return fmt.Errorf("validate: %s: %w", codePath, err)
		}
		evals = append(evals, validate.Evaluator{Name: "spatial", Classify: interp.Classify})
	}

	rep := validate.Check(evals, validate.Traffic(m, cliValidationSeed, cliValidationTraffic))
	if len(rep.Divergences) == 0 {
		fmt.Printf("validate: %s is equivalent to %s across %v on %d inputs\n",
			codePath, modelPath, rep.Evaluators, rep.Inputs)
		return nil
	}
	reproPath, werr := writeRepro(m, evals, rep.Divergences[0], outDir,
		strings.TrimSuffix(filepath.Base(codePath), filepath.Ext(codePath)))
	if werr != nil {
		return fmt.Errorf("divergence found but repro not writable: %w", werr)
	}
	return fmt.Errorf("validate: %s diverges from %s on %d/%d inputs\n  first: %s\n  repro: %s",
		codePath, modelPath, len(rep.Divergences), rep.Inputs, rep.Divergences[0].String(), reproPath)
}

// writeRepro minimizes the first divergence and writes the repro JSON to
// outDir/<name>.repro.json, echoing it to stdout for bug reports.
func writeRepro(m *ir.Model, evals []validate.Evaluator, d validate.Divergence, outDir, name string) (string, error) {
	r, err := validate.NewRepro(m, evals, d, "")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(outDir, name+".repro.json")
	if err := r.WriteFile(path); err != nil {
		return "", err
	}
	if err := r.Write(os.Stdout); err != nil {
		return "", err
	}
	return path, nil
}

// runReproReplay re-executes a saved divergence repro against the current
// code generators: still-diverging repros exit nonzero (the bug lives),
// fixed ones report success — the CLI face of the regression corpus.
func runReproReplay(path string) error {
	r, err := validate.ReadReproFile(path)
	if err != nil {
		return err
	}
	d, reproduced, err := r.Replay()
	if err != nil {
		return fmt.Errorf("replay %s: %w", path, err)
	}
	if reproduced {
		return fmt.Errorf("repro %s still diverges: %s", path, d.String())
	}
	fmt.Printf("repro %s no longer diverges (fixed)\n", path)
	return nil
}

// reportValidation renders a compiled app's validation verdict; a failed
// verdict writes the embedded repro next to the other artifacts and
// errors so the CLI exits nonzero.
func reportValidation(app homunculus.AppResult, outDir, name string) error {
	v := app.Validation
	fmt.Printf("  validation: %s\n", v.String())
	if v.OK() {
		return nil
	}
	if len(v.Repro) > 0 {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, name+".repro.json")
		if err := os.WriteFile(path, append(append([]byte(nil), v.Repro...), '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  repro:      %s\n", path)
	}
	return fmt.Errorf("translation validation failed: %s", v.String())
}
