package main

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/tune"
)

func resetTune() {
	tuneCfg = tuneSettings{}
	replayCfg = replaySettings{}
	lastTuneReport = nil
	lastTuneVerify = nil
	lastReplayReport = nil
}

// TestRunTuneSpec drives `-tune` end to end on the tiny ad spec: the
// run compiles, replays candidates, leaves a report with a non-empty
// frontier and a feasible chosen config in the test seam, and the
// verification replay meets the (generous) SLO.
func TestRunTuneSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("replay tuning is wall-clock bound")
	}
	defer resetTune()
	tuneCfg = tuneSettings{enabled: true, slo: "p99<=500ms", budget: 4, seed: 7}
	replayCfg = replaySettings{samples: 200, clients: 2, shards: 2}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	rep := lastTuneReport
	if rep == nil || len(rep.Front) == 0 || !rep.Chosen.Feasible {
		t.Fatalf("tune report: %+v", rep)
	}
	if _, err := rep.Chosen.Config.Canonical(); err != nil {
		t.Fatalf("chosen config must be canonical: %v", err)
	}
	if lastTuneVerify == nil {
		t.Fatal("verification replay left no metrics")
	}
	if lastTuneVerify.P99 > 500*time.Millisecond {
		t.Fatalf("verification replay missed the SLO: %+v", lastTuneVerify)
	}
}

// TestRunTuneInfeasibleSLO: an SLO no configuration can meet surfaces
// the typed infeasibility error, not a junk config.
func TestRunTuneInfeasibleSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("replay tuning is wall-clock bound")
	}
	defer resetTune()
	tuneCfg = tuneSettings{enabled: true, slo: "p99<=1ns", budget: 4, seed: 7}
	replayCfg = replaySettings{samples: 120, clients: 2, shards: 1}
	err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0)
	if !errors.Is(err, tune.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if lastTuneReport != nil {
		t.Fatal("infeasible run must not leave a report")
	}
}

// TestRunTuneBadSLO: a malformed -slo fails before any replay.
func TestRunTuneBadSLO(t *testing.T) {
	defer resetTune()
	tuneCfg = tuneSettings{enabled: true, slo: "p99>=2ms"}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err == nil {
		t.Fatal("reversed latency bound must fail")
	}
}

// TestRunReplayAdaptiveByteIdentical: -adaptive only changes flush
// timing — a fixed-seed replay must digest byte-identically to the
// default greedy path.
func TestRunReplayAdaptiveByteIdentical(t *testing.T) {
	defer resetTune()
	replayCfg = replaySettings{deploy: true, samples: 400, clients: 4, batch: 16, delay: time.Millisecond}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	base := lastReplayReport
	if base == nil || base.digest == "" {
		t.Fatalf("baseline replay report: %+v", base)
	}

	replayCfg.adaptive = true
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	adaptive := lastReplayReport
	if adaptive == nil || adaptive.digest != base.digest {
		t.Fatalf("adaptive flush diverged:\n  greedy:   %s\n  adaptive: %s", base.digest, adaptive.digest)
	}
	if adaptive.result.Dropped != 0 || adaptive.final.Accepted != adaptive.final.Completed {
		t.Fatalf("adaptive replay dropped traffic: %+v", adaptive.final)
	}
}

// TestReplaySettingsValidateAdaptive: -adaptive with a negative (greedy)
// -batch-delay is contradictory.
func TestReplaySettingsValidateAdaptive(t *testing.T) {
	r := replaySettings{adaptive: true, delay: -time.Millisecond}
	if err := r.validate(); err == nil {
		t.Fatal("adaptive + negative delay must be rejected")
	}
	r.delay = time.Millisecond
	if err := r.validate(); err != nil {
		t.Fatal(err)
	}
}
