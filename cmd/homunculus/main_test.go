package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/ir"
	"repro/internal/synth/nslkdd"

	homunculus "repro"
)

func TestRunTaurusSpec(t *testing.T) {
	out := t.TempDir()
	if err := run(context.Background(), "testdata/ad.json", out, "", 0); err != nil {
		t.Fatal(err)
	}
	code, err := os.ReadFile(filepath.Join(out, "anomaly_detection.spatial"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "@spatial") {
		t.Fatal("generated code must be Spatial")
	}
	f, err := os.Open(filepath.Join(out, "anomaly_detection.model.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := ir.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != ir.DNN || m.Inputs != 7 {
		t.Fatalf("persisted model wrong: %v %d", m.Kind, m.Inputs)
	}
}

func TestRunTofinoSpec(t *testing.T) {
	out := t.TempDir()
	if err := run(context.Background(), "testdata/tc_tofino.json", out, "", 0); err != nil {
		t.Fatal(err)
	}
	code, err := os.ReadFile(filepath.Join(out, "traffic_class.p4"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "v1model") {
		t.Fatal("generated code must be P4")
	}
}

func TestRunCSVSpec(t *testing.T) {
	dir := t.TempDir()
	// Write a small CSV dataset pair.
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 800
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainF, err := os.Create(filepath.Join(dir, "train.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := train.WriteCSV(trainF); err != nil {
		t.Fatal(err)
	}
	trainF.Close()
	testF, err := os.Create(filepath.Join(dir, "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := test.WriteCSV(testF); err != nil {
		t.Fatal(err)
	}
	testF.Close()

	spec := `{
	  "name": "csv_pipeline",
	  "algorithms": ["dtree"],
	  "data": {"train_csv": "train.csv", "test_csv": "test.csv"},
	  "platform": {"kind": "taurus"},
	  "search": {"init": 3, "iterations": 3, "seed": 4}
	}`
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := run(context.Background(), specPath, out, "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "csv_pipeline.spatial")); err != nil {
		t.Fatal("code artifact missing")
	}
}

func TestRunSpecErrors(t *testing.T) {
	out := t.TempDir()
	if err := run(context.Background(), "testdata/does_not_exist.json", out, "", 0); err == nil {
		t.Fatal("missing spec must fail")
	}
	dir := t.TempDir()
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte("not json"), 0o644)
	if err := run(context.Background(), badPath, out, "", 0); err == nil {
		t.Fatal("garbage spec must fail")
	}
	noName := filepath.Join(dir, "noname.json")
	os.WriteFile(noName, []byte(`{"data": {"generator": "nslkdd"}}`), 0o644)
	if err := run(context.Background(), noName, out, "", 0); err == nil {
		t.Fatal("nameless spec must fail")
	}
	badGen := filepath.Join(dir, "badgen.json")
	os.WriteFile(badGen, []byte(`{"name": "x", "data": {"generator": "zzz"}}`), 0o644)
	if err := run(context.Background(), badGen, out, "", 0); err == nil {
		t.Fatal("unknown generator must fail")
	}
	badPlat := filepath.Join(dir, "badplat.json")
	os.WriteFile(badPlat, []byte(`{"name": "x", "data": {"generator": "nslkdd"}, "platform": {"kind": "abacus"}}`), 0o644)
	if err := run(context.Background(), badPlat, out, "", 0); err == nil {
		t.Fatal("unknown platform must fail")
	}
}

// TestRunPlatformAllSweep drives the acceptance scenario: -platform all
// compiles one spec against every registered backend and writes an
// artifact per deployable target (taurus and fpga here; tofino prunes
// the DNN and stays undeployable).
func TestRunPlatformAllSweep(t *testing.T) {
	out := t.TempDir()
	if err := run(context.Background(), "testdata/ad.json", out, "all", 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"anomaly_detection.taurus.spatial", "anomaly_detection.fpga.spatial"} {
		if _, err := os.Stat(filepath.Join(out, want)); err != nil {
			t.Fatalf("sweep artifact %s missing: %v", want, err)
		}
	}
	if _, err := os.Stat(filepath.Join(out, "anomaly_detection.tofino.p4")); err == nil {
		t.Fatal("tofino cannot host a DNN; no artifact expected")
	}
}

// TestRunPlatformOverride: -platform swaps the spec's declared kind.
func TestRunPlatformOverride(t *testing.T) {
	out := t.TempDir()
	if err := run(context.Background(), "testdata/tc_tofino.json", out, "taurus", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "traffic_class.spatial")); err != nil {
		t.Fatal("override to taurus must emit Spatial")
	}
}

// TestRunTimeout: a hopeless deadline must abort with a context error
// instead of compiling.
func TestRunTimeout(t *testing.T) {
	err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", time.Nanosecond)
	if err == nil {
		t.Fatal("1ns budget must time out")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error must wrap DeadlineExceeded, got: %v", err)
	}
}

// TestUnknownPlatformListsBackends: the error for a bogus kind must name
// every registered backend.
func TestUnknownPlatformListsBackends(t *testing.T) {
	dir := t.TempDir()
	badPlat := filepath.Join(dir, "badplat.json")
	os.WriteFile(badPlat, []byte(`{"name": "x", "data": {"generator": "nslkdd"}, "platform": {"kind": "abacus"}}`), 0o644)
	err := run(context.Background(), badPlat, t.TempDir(), "", 0)
	if err == nil {
		t.Fatal("unknown platform must fail")
	}
	for _, name := range []string{"taurus", "tofino", "fpga"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error must list %q, got: %v", name, err)
		}
	}
}

func TestBuildLoaderValidation(t *testing.T) {
	if _, err := buildLoader(DataSpec{TrainCSV: "a.csv"}, "."); err == nil {
		t.Fatal("half a CSV pair must fail")
	}
	if _, err := buildLoader(DataSpec{}, "."); err == nil {
		t.Fatal("empty data spec must fail")
	}
}

// TestRunDeployReplay drives the -deploy/-replay leg: compile the AD
// spec, deploy it in-process, and replay a cycled test-split trace.
func TestRunDeployReplay(t *testing.T) {
	replayCfg = replaySettings{deploy: true, samples: 500, clients: 4, batch: 16, delay: time.Millisecond}
	defer func() { replayCfg = replaySettings{} }()
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunDeployBurstReplay drives the -burst open-loop leg: the pacer
// calibrates a mean rate, offers the trace with 100× spikes against a
// deliberately tiny ring, and the report accounts for every offered
// request (delivered + shed + errors) with the offered rate populated.
func TestRunDeployBurstReplay(t *testing.T) {
	replayCfg = replaySettings{
		deploy: true, samples: 500, clients: 8, batch: 16,
		delay: time.Millisecond, queue: 2, burst: true,
	}
	defer func() { replayCfg = replaySettings{}; lastReplayReport = nil }()
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	rep := lastReplayReport
	if rep == nil {
		t.Fatal("burst replay left no report")
	}
	res := rep.result
	if res.Issued != 500 || res.Delivered+res.Dropped+res.Errors != res.Issued {
		t.Fatalf("burst accounting: %+v", res)
	}
	if res.OfferedRate <= 0 {
		t.Fatalf("burst replay must report the offered rate: %+v", res)
	}
	if rep.final.Accepted != rep.final.Completed {
		t.Fatalf("accepted traffic must drain: %+v", rep.final)
	}
}

// TestRunEndpointCanaryZeroByteIdentical is the acceptance criterion: a
// fixed-seed replay served through a named endpoint — even with a live
// 0%-canary rollout sitting in the table — must produce byte-identical
// classifications to the PR4 flat deployment path, with nothing dropped.
func TestRunEndpointCanaryZeroByteIdentical(t *testing.T) {
	defer func() { replayCfg = replaySettings{}; lastReplayReport = nil }()

	// Flat deployment replay (the PR4 path).
	replayCfg = replaySettings{deploy: true, samples: 400, clients: 4, batch: 16, delay: time.Millisecond}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	flat := lastReplayReport
	if flat == nil || flat.digest == "" || flat.endpoint != nil {
		t.Fatalf("flat replay report: %+v", flat)
	}
	if flat.result.Dropped != 0 || flat.final.Accepted != flat.final.Completed {
		t.Fatalf("flat replay dropped traffic: %+v", flat.final)
	}

	// The same spec through an endpoint with a mid-replay 0% canary
	// rollout (recompiled at seed+1, routed no traffic).
	replayCfg = replaySettings{
		deploy: true, samples: 400, clients: 4, batch: 16, delay: time.Millisecond,
		endpoint: "ad", rollout: true, canary: 0,
	}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	ep := lastReplayReport
	if ep == nil || ep.endpoint == nil {
		t.Fatalf("endpoint replay report: %+v", ep)
	}
	if ep.digest != flat.digest {
		t.Fatalf("0%%-canary endpoint replay diverged from the flat path:\n  flat:     %s\n  endpoint: %s", flat.digest, ep.digest)
	}
	if ep.result.Dropped != 0 || ep.final.Accepted != ep.final.Completed {
		t.Fatalf("endpoint replay dropped traffic: %+v", ep.final)
	}
	if len(ep.endpoint.Revisions) != 2 {
		t.Fatalf("rollout revision missing: %+v", ep.endpoint.Revisions)
	}
	if ep.endpoint.Revisions[1].Stats.Accepted != 0 {
		t.Fatalf("0%% canary revision served traffic: %+v", ep.endpoint.Revisions[1])
	}
}

// TestRunEndpointPromoteMidReplay is the second acceptance leg: a
// mid-replay Promote completes with dropped == 0 and accepted ==
// completed in the final stats.
func TestRunEndpointPromoteMidReplay(t *testing.T) {
	defer func() { replayCfg = replaySettings{}; lastReplayReport = nil }()
	replayCfg = replaySettings{
		deploy: true, samples: 400, clients: 4, batch: 16, delay: time.Millisecond,
		endpoint: "ad", rollout: true, canary: 25, promote: true,
	}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	rep := lastReplayReport
	if rep == nil || rep.endpoint == nil {
		t.Fatalf("replay report: %+v", rep)
	}
	if rep.result.Dropped != 0 {
		t.Fatalf("mid-replay promote dropped %d requests", rep.result.Dropped)
	}
	if rep.final.Dropped != 0 || rep.final.Accepted != rep.final.Completed {
		t.Fatalf("final stats after promote: %+v", rep.final)
	}
	// After promote, revision 2 is stable and revision 1 retired.
	revs := rep.endpoint.Revisions
	if len(revs) != 2 || revs[1].State != "stable" || revs[0].State != "retired" {
		t.Fatalf("post-promote revision states: %+v", revs)
	}
	if revs[1].Stats.Completed == 0 {
		t.Fatalf("promoted revision never served: %+v", revs[1])
	}
}

// TestRunEndpointShadowReplay: a mid-replay shadow rollout mirrors
// traffic and fills the divergence report without touching the answers.
func TestRunEndpointShadowReplay(t *testing.T) {
	defer func() { replayCfg = replaySettings{}; lastReplayReport = nil }()
	replayCfg = replaySettings{
		deploy: true, samples: 400, clients: 4, batch: 16, delay: time.Millisecond,
		endpoint: "ad", rollout: true, shadow: true,
	}
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "", 0); err != nil {
		t.Fatal(err)
	}
	rep := lastReplayReport
	if rep == nil || rep.endpoint == nil || rep.endpoint.Shadow == nil {
		t.Fatalf("shadow replay report: %+v", rep)
	}
	d := rep.endpoint.Shadow
	if d.Mirrored == 0 {
		t.Fatalf("shadow never scored: %+v", d)
	}
	if d.Agreed+d.Disagreed+d.Errors != d.Mirrored {
		t.Fatalf("divergence accounting: %+v", d)
	}
	if rep.result.Dropped != 0 {
		t.Fatalf("shadow rollout dropped primary traffic: %+v", rep.result)
	}
}

// TestReplaySettingsValidate pins the lifecycle flag contract.
func TestReplaySettingsValidate(t *testing.T) {
	for _, bad := range []replaySettings{
		{rollout: true},
		{canary: 10},
		{promote: true},
		{endpoint: "x", canary: 101},
		{endpoint: "x", rollout: true, shadow: true, canary: 10},
		{endpoint: "x", rollout: true, promote: true, rollback: true},
		{endpoint: "x", promote: true},
		{endpoint: "x", canary: 25},
		{endpoint: "x", shadow: true},
	} {
		if err := bad.validate(); err == nil {
			t.Fatalf("settings %+v must be rejected", bad)
		}
	}
	for _, ok := range []replaySettings{
		{},
		{deploy: true},
		{endpoint: "x"},
		{endpoint: "x", rollout: true, canary: 50, promote: true},
		{endpoint: "x", rollout: true, shadow: true, rollback: true},
	} {
		if err := ok.validate(); err != nil {
			t.Fatalf("settings %+v must be accepted: %v", ok, err)
		}
	}
}

// TestRunDeployRejectsSweep: -deploy only makes sense for one target.
func TestRunDeployRejectsSweep(t *testing.T) {
	replayCfg = replaySettings{deploy: true}
	defer func() { replayCfg = replaySettings{} }()
	if err := run(context.Background(), "testdata/ad.json", t.TempDir(), "all", 0); err == nil {
		t.Fatal("-deploy with -platform all must fail")
	}
}

// TestRunRemote drives the -remote client path against an in-process
// daemon: submit over the retrying client, poll to done, write the code
// artifact; an identical resubmission is a warm cache hit.
func TestRunRemote(t *testing.T) {
	httpapi.RegisterBuiltinLoaders()
	svc := homunculus.New(homunculus.ServiceOptions{MaxInFlight: 2})
	defer svc.Close()
	srv := httptest.NewServer(httpapi.NewServer(svc))
	defer srv.Close()

	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{
	  "name": "remote_ad",
	  "metric": "f1",
	  "algorithms": ["dnn"],
	  "data": {"generator": "nslkdd"},
	  "platform": {"kind": "taurus", "throughput_gpkts": 1,
	               "latency_ns": 500, "rows": 16, "cols": 16},
	  "search": {"init": 3, "iterations": 3, "epochs": 5,
	             "max_layers": 2, "max_neurons": 12, "seed": 1}
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	for pass := 1; pass <= 2; pass++ {
		if err := runRemote(context.Background(), specPath, out, "", srv.URL, 0); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
	code, err := os.ReadFile(filepath.Join(out, "remote_ad.spatial"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "@spatial") {
		t.Fatal("remote artifact must be Spatial source")
	}
	// The second identical submission must have coalesced server-side.
	jobs := svc.Jobs()
	if len(jobs) != 2 || !jobs[1].Status().CacheHit {
		t.Fatalf("second identical remote submission must be a cache hit (%d jobs)", len(jobs))
	}
}

// TestRunRemoteRejectsLocalOnlySpecs pins the -remote restrictions: CSV
// data, samples/seed overrides, sweeps, and dataset-less specs cannot be
// shipped to a daemon.
func TestRunRemoteRejectsLocalOnlySpecs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct{ name, body, override string }{
		{"csv.json", `{"name":"x","data":{"train_csv":"a.csv","test_csv":"b.csv"},"platform":{"kind":"taurus"}}`, ""},
		{"samples.json", `{"name":"x","data":{"generator":"nslkdd","samples":500},"platform":{"kind":"taurus"}}`, ""},
		{"seed.json", `{"name":"x","data":{"generator":"nslkdd","seed":3},"platform":{"kind":"taurus"}}`, ""},
		{"nogen.json", `{"name":"x","data":{},"platform":{"kind":"taurus"}}`, ""},
		{"sweep.json", `{"name":"x","data":{"generator":"nslkdd"},"platform":{"kind":"taurus"}}`, "all"},
	} {
		p := write(tc.name, tc.body)
		if err := runRemote(context.Background(), p, t.TempDir(), tc.override, "http://127.0.0.1:1", 0); err == nil {
			t.Fatalf("%s must be rejected before any network traffic", tc.name)
		}
	}
}

// TestBuildTraceBotnet: the botnet trace is the per-packet stream, and
// -replay cycles it to the requested length.
func TestBuildTraceBotnet(t *testing.T) {
	xs, labels, err := buildTrace(Spec{Data: DataSpec{Generator: "botnet", Samples: 40, Seed: 2}}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) == 0 || len(xs) != len(labels) {
		t.Fatalf("trace %d/%d", len(xs), len(labels))
	}
	if got := len(xs[0]); got != 30 {
		t.Fatalf("flowmarker width %d, want 30", got)
	}
	cycled, cl, err := buildTrace(Spec{Data: DataSpec{Generator: "botnet", Samples: 40, Seed: 2}}, nil, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycled) != 17 || len(cl) != 17 {
		t.Fatalf("cycled trace %d/%d, want 17", len(cycled), len(cl))
	}
}
