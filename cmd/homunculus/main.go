// Command homunculus compiles a declarative pipeline specification — the
// JSON equivalent of an Alchemy program — into data-plane code: it runs
// design-space exploration, training, and feasibility testing, then writes
// the generated Spatial/P4 source and the serialized model next to a
// printed report.
//
//	homunculus -spec pipeline.json -out build/
//	homunculus -spec pipeline.json -platform all   # sweep every backend
//	homunculus -spec pipeline.json -timeout 30s    # bound the search
//	homunculus -spec pipeline.json -progress       # stage events on stderr
//	homunculus -spec pipeline.json -validate       # translation-validate artifacts
//	homunculus -validate -model build/x.model.json -code build/x.spatial
//	homunculus -repro build/x.repro.json           # replay a divergence repro
//	homunculus -spec pipeline.json -deploy         # serve + replay a trace
//	homunculus -spec pipeline.json -replay 5000    # replay 5000 samples
//	homunculus -spec pipeline.json -tune -slo "p99<=2ms,drops=0"
//	                                               # autotune the serving config
//	homunculus -serve :8077                        # run as a daemon
//	homunculus -spec pipeline.json -remote http://127.0.0.1:8077
//	                                               # compile on a daemon
//
//	# serve behind a named endpoint and drive a live canary rollout
//	# (recompiled with seed+1) halfway through the replay, promoting at
//	# the three-quarter mark:
//	homunculus -spec pipeline.json -replay 5000 -endpoint ad \
//	           -rollout -canary 25 -promote
//
// -platform overrides the spec's platform.kind; the special value "all"
// compiles the spec against every registered backend and prints the
// per-target feasibility table (sweep progress is always platform-tagged
// on stderr, since per-target compilations interleave). -timeout cancels
// compilation through the pipeline's context plumbing. -serve skips spec
// compilation entirely and exposes the compilation service over HTTP —
// the same daemon as cmd/homunculusd (see docs/api.md). -remote is the
// client side of that daemon: the spec is submitted over the retrying
// HTTP client (backoff + jitter, Retry-After honored), polled to
// completion, and the generated code lands in -out as usual; the
// dataset must be a catalog name the daemon can resolve.
//
// -deploy promotes the freshly compiled pipeline into an in-process
// deployment runtime (micro-batched, sharded quantized inference — see
// docs/serving.md) and drives it with a replayed synthetic trace,
// printing the achieved rate, latency quantiles, accuracy against the
// trace's ground-truth labels, and a sha256 digest of the delivered
// classifications (fixed-seed replays are byte-comparable across
// serving paths). For the botnet generator the trace is the per-packet
// partial-flowmarker stream (internal/stream.Trace); for the other
// generators and CSV data it is the test split. -replay N sets the
// replayed sample count (cycling the trace as needed) and implies
// -deploy; -clients, -batch, -batch-delay, -shards, and -queue tune the
// replay concurrency and the runtime's batching and ring-depth knobs.
//
// -burst replaces the closed-loop replayer (issue as fast as the runtime
// admits) with an open-loop pacer: offered load arrives at a mean rate
// calibrated from a sequential warmup (half the measured service rate)
// with periodic spikes at 100× that mean, so the run exercises and
// reports the ring scheduler's shed-at-the-door backpressure. Sheds
// appear when clients run in true parallel (multi-core) against a small
// -queue — on one core the caller-harvesting fast path drains each
// spike inline before producers pile up. Burst digests are
// timing-dependent and not byte-comparable.
//
// -endpoint NAME serves the pipeline behind a named endpoint instead of
// a flat deployment and unlocks the lifecycle flags: -rollout recompiles
// the spec mid-replay (search seed+1) and rolls the result out as
// revision 2 — a -canary N percent traffic slice (deterministic
// splitmix split; 0 deploys it warm without traffic) or a -shadow
// mirror (scored off the record, divergence report printed) — and
// -promote / -rollback complete or revert the rollout at the
// three-quarter mark. The final report breaks stats down per revision.
//
// -replay and -serve trap SIGINT/SIGTERM and drain gracefully: the
// replayer stops issuing, every accepted request is still classified and
// delivered, and the final stats are printed before exit.
//
// Spec format (see cmd/homunculus/testdata/ad.json for a full example):
//
//	{
//	  "name": "anomaly_detection",
//	  "metric": "f1",
//	  "algorithms": ["dnn"],
//	  "data": {"generator": "nslkdd", "samples": 6000, "seed": 1},
//	  "platform": {"kind": "taurus", "throughput_gpkts": 1,
//	               "latency_ns": 500, "rows": 16, "cols": 16},
//	  "search": {"init": 5, "iterations": 15, "epochs": 14,
//	             "max_layers": 4, "max_neurons": 24, "seed": 1}
//	}
//
// Data can come from the bundled generators ("nslkdd", "iottc", "botnet")
// or from CSV files written by the dataset package ("train_csv"/"test_csv").
package main

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/alchemy"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/httpapi"
	"repro/internal/ir"
	"repro/internal/loaders"
	"repro/internal/packet"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/synth/botnet"

	homunculus "repro"
)

// Spec is the on-disk pipeline specification.
type Spec struct {
	Name       string       `json:"name"`
	Metric     string       `json:"metric"`
	Algorithms []string     `json:"algorithms"`
	Data       DataSpec     `json:"data"`
	Platform   PlatformSpec `json:"platform"`
	Search     SearchSpec   `json:"search"`
}

// DataSpec selects a bundled generator or CSV pair.
type DataSpec struct {
	Generator string `json:"generator,omitempty"`
	Samples   int    `json:"samples,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	TrainCSV  string `json:"train_csv,omitempty"`
	TestCSV   string `json:"test_csv,omitempty"`
}

// PlatformSpec mirrors alchemy.Platform constraints.
type PlatformSpec struct {
	Kind            string  `json:"kind"`
	ThroughputGPkts float64 `json:"throughput_gpkts,omitempty"`
	LatencyNS       float64 `json:"latency_ns,omitempty"`
	Rows            int     `json:"rows,omitempty"`
	Cols            int     `json:"cols,omitempty"`
	Tables          int     `json:"tables,omitempty"`
	MaxLUTPct       float64 `json:"max_lut_pct,omitempty"`
	MaxPowerW       float64 `json:"max_power_w,omitempty"`
}

// SearchSpec mirrors core.SearchConfig knobs.
type SearchSpec struct {
	Init       int   `json:"init,omitempty"`
	Iterations int   `json:"iterations,omitempty"`
	Epochs     int   `json:"epochs,omitempty"`
	MaxLayers  int   `json:"max_layers,omitempty"`
	MaxNeurons int   `json:"max_neurons,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
}

// showProgress mirrors the -progress flag: print single-target stage
// events to stderr (sweeps always print, platform-tagged).
var showProgress bool

// replaySettings mirrors the -deploy/-replay/-endpoint flag group: when
// enabled, the compiled pipeline is served in-process (flat deployment
// or named endpoint) and driven with a replayed synthetic trace.
type replaySettings struct {
	deploy  bool
	samples int
	clients int
	batch   int
	delay   time.Duration
	shards  int
	queue   int

	// adaptive enables the per-shard arrival-rate predictor on the
	// replay deployment (ServingConfig.AdaptiveFlush): quiet traffic
	// flushes greedily, predicted bursts hold for full batches.
	adaptive bool

	// burst switches the replayer from the closed loop (issue as fast as
	// the deployment admits) to the open-loop burst pacer: offered load
	// arrives at a calibrated mean rate with periodic 100× spikes, so the
	// run reports how the ring scheduler sheds under volumetric bursts.
	burst bool

	// Endpoint lifecycle: serve behind a named endpoint; optionally roll
	// out a recompiled revision mid-replay as a canary or shadow, then
	// promote or roll back before the final replay leg.
	endpoint string
	rollout  bool
	canary   int
	shadow   bool
	promote  bool
	rollback bool
}

// validate rejects contradictory lifecycle flag combinations.
func (r replaySettings) validate() error {
	if r.adaptive && r.delay < 0 {
		return fmt.Errorf("-adaptive needs a positive -batch-delay bound; a negative delay is greedy flush with nothing to adapt")
	}
	if r.endpoint == "" {
		if r.rollout || r.shadow || r.promote || r.rollback || r.canary != 0 {
			return fmt.Errorf("-rollout/-canary/-shadow/-promote/-rollback require -endpoint")
		}
		return nil
	}
	if r.canary < 0 || r.canary > 100 {
		return fmt.Errorf("-canary %d out of [0,100]", r.canary)
	}
	if r.shadow && r.canary != 0 {
		return fmt.Errorf("-shadow and -canary are mutually exclusive")
	}
	if r.promote && r.rollback {
		return fmt.Errorf("-promote and -rollback are mutually exclusive")
	}
	if (r.promote || r.rollback || r.shadow || r.canary != 0) && !r.rollout {
		return fmt.Errorf("-canary/-shadow/-promote/-rollback shape the mid-replay rollout; add -rollout")
	}
	return nil
}

var replayCfg replaySettings

func main() {
	log.SetFlags(0)
	specPath := flag.String("spec", "", "path to the pipeline spec JSON (required unless -serve)")
	outDir := flag.String("out", "build", "output directory for generated artifacts")
	platform := flag.String("platform", "", "override the spec's platform.kind; \"all\" sweeps every registered backend")
	timeout := flag.Duration("timeout", 0, "abort compilation after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "print pipeline stage events to stderr")
	serveAddr := flag.String("serve", "", "run as a compilation daemon on this address (e.g. :8077) instead of compiling a spec")
	remote := flag.String("remote", "", "submit the spec to a running daemon at this base URL (e.g. http://127.0.0.1:8077) instead of compiling locally")
	deploy := flag.Bool("deploy", false, "deploy the compiled pipeline in-process and replay a synthetic trace through it")
	replay := flag.Int("replay", 0, "replay this many trace samples through the deployment (implies -deploy; 0 = one pass over the natural trace)")
	clients := flag.Int("clients", 0, "concurrent replay clients (default GOMAXPROCS)")
	batch := flag.Int("batch", 0, "deployment micro-batch flush threshold (default 64)")
	batchDelay := flag.Duration("batch-delay", 0, "deployment micro-batch flush deadline (default 500µs; negative = greedy)")
	shards := flag.Int("shards", 0, "deployment inference shards (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "deployment ring depth; requests beyond it shed (default 1024)")
	adaptive := flag.Bool("adaptive", false, "enable the adaptive arrival-rate flush predictor on the replay deployment (requires a positive -batch-delay bound; default 500µs)")
	burst := flag.Bool("burst", false, "pace the replay as open-loop offered load with 100× mean-rate spikes (implies -deploy; digests are not reproducible)")
	tuneFlag := flag.Bool("tune", false, "after compiling, tune the serving config by replaying the trace against sandboxed candidates (docs/tuning.md)")
	sloFlag := flag.String("slo", "", "serving SLO for -tune, e.g. \"p99<=2ms,drops=0\" (default \""+defaultSLO+"\")")
	tuneBudget := flag.Int("tune-budget", 0, "candidate evaluation budget for -tune (default 24)")
	tuneSeed := flag.Int64("tune-seed", 0, "optimizer seed for -tune (default: the spec's search.seed)")
	endpoint := flag.String("endpoint", "", "serve the compiled pipeline behind a named endpoint (implies -deploy)")
	rollout := flag.Bool("rollout", false, "mid-replay, recompile the spec (seed+1) and roll it out as a new revision (requires -endpoint)")
	canary := flag.Int("canary", 0, "canary traffic percent for the -rollout revision (0 = deploy warm, no traffic)")
	shadow := flag.Bool("shadow", false, "mirror traffic to the -rollout revision off the record instead of splitting it")
	promote := flag.Bool("promote", false, "promote the mid-replay rollout at the three-quarter mark")
	rollback := flag.Bool("rollback", false, "roll the mid-replay rollout back at the three-quarter mark")
	validateFlag := flag.Bool("validate", false, "translation-validate emitted artifacts against the model's reference semantics; exit nonzero on divergence (docs/validation.md)")
	modelPath := flag.String("model", "", "serialized model JSON to validate -code against (artifact mode; requires -validate)")
	codeFile := flag.String("code", "", "emitted artifact file (.p4/.spatial) to validate against -model")
	reproPath := flag.String("repro", "", "replay a saved divergence repro JSON; exit nonzero if it still reproduces")
	clusterURL := flag.String("cluster", "", "print the cluster status of the daemon at this base URL (peer table, cache and steal counters) and exit")
	flag.Parse()
	showProgress = *progress
	replayCfg = replaySettings{
		deploy:   *deploy || *replay > 0 || *endpoint != "" || *burst,
		samples:  *replay,
		clients:  *clients,
		batch:    *batch,
		delay:    *batchDelay,
		shards:   *shards,
		queue:    *queue,
		adaptive: *adaptive,
		burst:    *burst,
		endpoint: *endpoint,
		rollout:  *rollout,
		canary:   *canary,
		shadow:   *shadow,
		promote:  *promote,
		rollback: *rollback,
	}
	if err := replayCfg.validate(); err != nil {
		log.Fatalf("homunculus: %v", err)
	}
	tuneCfg = tuneSettings{
		enabled: *tuneFlag || *sloFlag != "",
		slo:     *sloFlag,
		budget:  *tuneBudget,
		seed:    *tuneSeed,
	}
	validateMode = *validateFlag
	if *reproPath != "" {
		if err := runReproReplay(*reproPath); err != nil {
			log.Fatalf("homunculus: %v", err)
		}
		return
	}
	if *modelPath != "" || *codeFile != "" {
		if !validateMode {
			log.Fatalf("homunculus: -model/-code are artifact validation inputs; add -validate")
		}
		if err := runValidateArtifact(*modelPath, *codeFile, *platform, *outDir); err != nil {
			log.Fatalf("homunculus: %v", err)
		}
		return
	}
	if *serveAddr != "" {
		if err := runServe(*serveAddr); err != nil {
			log.Fatalf("homunculus: %v", err)
		}
		return
	}
	if *clusterURL != "" {
		if err := runClusterStatus(*clusterURL, *timeout); err != nil {
			log.Fatalf("homunculus: %v", err)
		}
		return
	}
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the run context: the replayer stops issuing
	// and drains (accepted requests deliver, final stats print) instead
	// of dying mid-batch; a compilation in progress aborts cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *remote != "" {
		if replayCfg.deploy {
			log.Fatalf("homunculus: -deploy/-replay/-endpoint serve in-process; they are not available with -remote")
		}
		if tuneCfg.enabled {
			log.Fatalf("homunculus: -tune replays in-process; tune a daemon endpoint via POST /v1/endpoints/{name}/tune instead")
		}
		if err := runRemote(ctx, *specPath, *outDir, *platform, *remote, *timeout); err != nil {
			log.Fatalf("homunculus: %v", err)
		}
		return
	}
	if err := run(ctx, *specPath, *outDir, *platform, *timeout); err != nil {
		log.Fatalf("homunculus: %v", err)
	}
}

// runServe exposes the compilation service over HTTP — the cmd/homunculusd
// daemon with default bounds, reachable from the main CLI binary (one
// shared serve loop: graceful drain on SIGINT/SIGTERM).
func runServe(addr string) error {
	httpapi.RegisterBuiltinLoaders()
	svc := homunculus.New(homunculus.ServiceOptions{})
	opts := svc.Options()
	log.Printf("homunculus: serving on %s (max in-flight %d, queue depth %d, cache %d)",
		addr, opts.MaxInFlight, opts.QueueDepth, opts.CacheEntries)
	return httpapi.ListenAndServe(addr, svc)
}

// runClusterStatus renders a cluster-mode daemon's view of the fabric:
// `homunculus -cluster http://node-a:8077`.
func runClusterStatus(baseURL string, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	st, err := httpapi.NewClient(baseURL).ClusterStatus(ctx)
	if err != nil {
		return fmt.Errorf("cluster status from %s: %w", baseURL, err)
	}
	fmt.Printf("node %s at %s (cache mode %s)\n", st.Self.ID, st.Self.Addr, st.CacheMode)
	fmt.Printf("  load: %d queued, %d running (max in-flight %d, queue depth %d)\n",
		st.Self.Queued, st.Self.Running, st.Self.MaxInFlight, st.Self.QueueDepth)
	if len(st.Peers) == 0 {
		fmt.Println("peers: none known")
	} else {
		fmt.Printf("peers (%d):\n", len(st.Peers))
		for _, p := range st.Peers {
			extra := ""
			if p.Quarantined {
				extra = " QUARANTINED"
			}
			id := p.ID
			if id == "" {
				id = "?"
			}
			fmt.Printf("  %-10s %s  %s  queued=%d running=%d last_seen=%dms%s\n",
				p.State, id, p.Addr, p.Queued, p.Running, p.LastSeenMS, extra)
		}
	}
	fmt.Printf("cache [%s]: %d remote hits, %d misses, %d poisoned, %d served, %d broadcast, %d installed (fetch p50 %s, p99 %s)\n",
		st.Cache.Mode, st.Cache.RemoteHits, st.Cache.RemoteMisses, st.Cache.Poisoned,
		st.Cache.Served, st.Cache.BroadcastsSent, st.Cache.Installs,
		time.Duration(st.Cache.FetchP50NS), time.Duration(st.Cache.FetchP99NS))
	fmt.Printf("steal: %d delegated (%d ran local), %d granted, %d completed remotely, %d reclaimed; as thief: %d attempts, %d executed\n",
		st.Steal.Delegated, st.Steal.DelegatedLocal, st.Steal.StolenGranted,
		st.Steal.StolenCompleted, st.Steal.Reclaimed,
		st.Steal.StealsAttempted, st.Steal.StealsExecuted)
	return nil
}

// runRemote ships the spec to a running daemon over the retrying HTTP
// client (capped backoff + jitter, Retry-After honored — the submission
// rides through admission sheds and daemon restarts), polls the job to
// a terminal state, and writes the generated code artifact locally.
// Remote submission carries the spec's dataset as a catalog name the
// daemon resolves ("nslkdd", "iottc", "botnet"); CSV files and per-spec
// samples/seed overrides only exist on this machine and are rejected.
func runRemote(ctx context.Context, specPath, outDir, platformOverride, baseURL string, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return fmt.Errorf("read spec: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parse spec: %w", err)
	}
	if spec.Name == "" {
		return fmt.Errorf("spec needs a name")
	}
	if platformOverride != "" {
		spec.Platform.Kind = platformOverride
	}
	switch {
	case spec.Platform.Kind == "all":
		return fmt.Errorf("-remote submits a single-target compilation, not -platform all")
	case spec.Data.TrainCSV != "" || spec.Data.TestCSV != "":
		return fmt.Errorf("-remote cannot ship CSV files; use a catalog dataset (nslkdd, iottc, botnet)")
	case spec.Data.Generator == "":
		return fmt.Errorf("-remote needs data.generator (a dataset name the daemon resolves)")
	case spec.Data.Samples != 0 || spec.Data.Seed != 0:
		return fmt.Errorf("-remote submits dataset %q at the daemon's registered configuration; drop data.samples/data.seed", spec.Data.Generator)
	}

	// Build the same declaration a local run would, then ship its wire
	// form — the daemon re-resolves the dataset name through its own
	// catalog.
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:               spec.Name,
		OptimizationMetric: orDefault(spec.Metric, "f1"),
		Algorithms:         spec.Algorithms,
		DataLoader:         alchemy.NamedLoader(spec.Data.Generator),
	})
	platform, err := buildPlatform(spec.Platform)
	if err != nil {
		return err
	}
	platform.Schedule(model)
	doc, err := alchemy.MarshalPlatform(platform)
	if err != nil {
		return err
	}
	req := httpapi.SubmitRequest{Validate: validateMode, Search: &httpapi.SearchJSON{
		Init:       spec.Search.Init,
		Iterations: spec.Search.Iterations,
		Epochs:     spec.Search.Epochs,
		MaxLayers:  spec.Search.MaxLayers,
		MaxNeurons: spec.Search.MaxNeurons,
		Seed:       spec.Search.Seed,
	}}
	if err := json.Unmarshal(doc, &req.Platform); err != nil {
		return err
	}

	client := httpapi.NewClient(baseURL)
	job, err := client.SubmitJob(ctx, req)
	if err != nil {
		return fmt.Errorf("submit to %s: %w", baseURL, err)
	}
	fmt.Printf("submitted %s to %s (state %s)\n", job.ID, baseURL, job.State)
	final, err := client.WaitJob(ctx, job.ID, 500*time.Millisecond)
	if err != nil {
		return fmt.Errorf("wait for %s: %w", job.ID, err)
	}
	if final.State != homunculus.JobDone {
		return fmt.Errorf("job %s ended %s: %s", job.ID, final.State, final.Error)
	}
	full, err := client.Job(ctx, job.ID, true)
	if err != nil {
		return err
	}
	if full.Result == nil || len(full.Result.Apps) == 0 {
		return fmt.Errorf("job %s finished without a result", job.ID)
	}
	app := full.Result.Apps[0]
	if app.Code == "" {
		return fmt.Errorf("remote compilation produced no deployable pipeline (algorithm %q, feasible=%v)", app.Algorithm, app.Feasible)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	codePath := filepath.Join(outDir, spec.Name+backend.CodeExt(full.Result.Platform))
	if err := os.WriteFile(codePath, []byte(app.Code), 0o644); err != nil {
		return fmt.Errorf("write code: %w", err)
	}
	fmt.Printf("pipeline %q compiled remotely for %s\n", spec.Name, full.Result.Platform)
	fmt.Printf("  algorithm:  %s\n", app.Algorithm)
	fmt.Printf("  metric:     %.4f (%s, quantized)\n", app.Metric, orDefault(spec.Metric, "f1"))
	fmt.Printf("  cache hit:  %v\n", full.CacheHit)
	fmt.Printf("  feasible:   %v\n", app.Feasible)
	fmt.Printf("  code:       %s\n", codePath)
	if validateMode {
		v := app.Validation
		switch {
		case v == nil:
			return fmt.Errorf("daemon returned no validation verdict")
		case v.OK:
			fmt.Printf("  validation: equivalent across %v on %d inputs\n", v.Evaluators, v.Inputs)
		case v.Error != "":
			return fmt.Errorf("translation validation failed: %s", v.Error)
		default:
			return fmt.Errorf("translation validation failed: diverged on %d/%d inputs across %v", v.Divergences, v.Inputs, v.Evaluators)
		}
	}
	return nil
}

// printEvent renders one platform-tagged progress line.
func printEvent(ev homunculus.Event) {
	mark := "start"
	if ev.Done {
		mark = "done"
	}
	line := fmt.Sprintf("[%s] %-8s %s", ev.Platform, ev.Stage, ev.App)
	if ev.Candidate != "" {
		line += "/" + ev.Candidate
	}
	fmt.Fprintf(os.Stderr, "%s %s\n", line, mark)
}

func run(ctx context.Context, specPath, outDir, platformOverride string, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return fmt.Errorf("read spec: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parse spec: %w", err)
	}
	if spec.Name == "" {
		return fmt.Errorf("spec needs a name")
	}
	if platformOverride != "" {
		spec.Platform.Kind = platformOverride
	}

	loader, err := buildLoader(spec.Data, filepath.Dir(specPath))
	if err != nil {
		return err
	}

	search := core.DefaultSearchConfig()
	if spec.Search.Init > 0 {
		search.BO.InitSamples = spec.Search.Init
	}
	if spec.Search.Iterations > 0 {
		search.BO.Iterations = spec.Search.Iterations
	}
	if spec.Search.Epochs > 0 {
		search.TrainEpochs = spec.Search.Epochs
	}
	if spec.Search.MaxLayers > 0 {
		search.MaxHiddenLayers = spec.Search.MaxLayers
	}
	if spec.Search.MaxNeurons > 0 {
		search.MaxNeurons = spec.Search.MaxNeurons
	}
	if spec.Search.Seed != 0 {
		search.Seed = spec.Search.Seed
	}

	if spec.Platform.Kind == "all" {
		if replayCfg.deploy {
			return fmt.Errorf("-deploy/-replay apply to a single-target compilation, not -platform all")
		}
		if tuneCfg.enabled {
			return fmt.Errorf("-tune applies to a single-target compilation, not -platform all")
		}
		model := alchemy.NewModel(alchemy.ModelSpec{
			Name:               spec.Name,
			OptimizationMetric: orDefault(spec.Metric, "f1"),
			Algorithms:         spec.Algorithms,
			DataLoader:         loader,
		})
		return runSweep(ctx, spec, model, outDir, search)
	}

	pipe, err := compilePipeline(ctx, spec, loader, search)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("compilation timed out after %v: %w", timeout, err)
		}
		return err
	}
	app := pipe.Apps[0]
	if app.Model == nil {
		fmt.Println("no feasible model found under the given constraints; candidates:")
		for _, c := range app.Candidates {
			if c.Skipped != "" {
				fmt.Printf("  %-8s skipped: %s\n", c.Algorithm, c.Skipped)
			} else {
				fmt.Printf("  %-8s explored %d configurations, none feasible\n", c.Algorithm, len(c.BO.History))
			}
		}
		return fmt.Errorf("compilation produced no deployable pipeline")
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	codePath := filepath.Join(outDir, spec.Name+backend.CodeExt(pipe.Platform))
	if err := os.WriteFile(codePath, []byte(app.Code), 0o644); err != nil {
		return fmt.Errorf("write code: %w", err)
	}
	// Emit the design-space description the optimizer searched — the
	// HyperMapper-style JSON interface of §4.
	if len(spec.Algorithms) > 0 {
		if kind, err := ir.ParseKind(spec.Algorithms[0]); err == nil {
			train, test, derr := loaderDatasets(loader)
			if derr == nil {
				space := core.DesignSpace(core.App{Name: spec.Name, Train: train, Test: test}, search, kind)
				spacePath := filepath.Join(outDir, spec.Name+".space.json")
				if sf, err := os.Create(spacePath); err == nil {
					if err := space.WriteJSON(sf, spec.Name); err != nil {
						sf.Close()
						return err
					}
					sf.Close()
					fmt.Printf("space artifact: %s\n", spacePath)
				}
			}
		}
	}

	modelPath := filepath.Join(outDir, spec.Name+".model.json")
	f, err := os.Create(modelPath)
	if err != nil {
		return fmt.Errorf("create model file: %w", err)
	}
	defer f.Close()
	if err := app.Model.WriteJSON(f); err != nil {
		return err
	}

	fmt.Printf("pipeline %q compiled for %s\n", spec.Name, pipe.Platform)
	fmt.Printf("  algorithm:  %s\n", app.Algorithm)
	fmt.Printf("  metric:     %.4f (%s, quantized)\n", app.Metric, orDefault(spec.Metric, "f1"))
	fmt.Printf("  params:     %d\n", app.Model.ParamCount())
	fmt.Printf("  verdict:    feasible=%v", app.Verdict.Feasible)
	for _, k := range []string{"cus", "mus", "tables", "latency_ns", "throughput_gpkts", "lut_pct", "power_w"} {
		if v, ok := app.Verdict.Metrics[k]; ok {
			fmt.Printf(" %s=%.2f", k, v)
		}
	}
	fmt.Println()
	fmt.Printf("  code:       %s\n", codePath)
	fmt.Printf("  model:      %s\n", modelPath)
	if validateMode {
		if err := reportValidation(app, outDir, spec.Name); err != nil {
			return err
		}
	}
	if tuneCfg.enabled {
		if err := runTune(ctx, spec, loader, pipe); err != nil {
			return err
		}
	}
	if replayCfg.deploy {
		return runReplay(ctx, spec, loader, pipe, search)
	}
	return nil
}

// compilePipeline builds the spec's model/platform pair and runs one
// single-target compilation — shared by run and the mid-replay rollout
// (which recompiles the same spec under a bumped seed).
func compilePipeline(ctx context.Context, spec Spec, loader alchemy.DataLoader, search core.SearchConfig) (*homunculus.Pipeline, error) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:               spec.Name,
		OptimizationMetric: orDefault(spec.Metric, "f1"),
		Algorithms:         spec.Algorithms,
		DataLoader:         loader,
	})
	platform, err := buildPlatform(spec.Platform)
	if err != nil {
		return nil, err
	}
	platform.Schedule(model)
	genOpts := []homunculus.Option{homunculus.WithSearchConfig(search)}
	if showProgress {
		genOpts = append(genOpts, homunculus.WithProgress(printEvent))
	}
	if validateMode {
		genOpts = append(genOpts, homunculus.WithValidation())
	}
	return homunculus.Generate(ctx, platform, genOpts...)
}

// replayReport captures the outcome of the most recent replay so tests
// can assert on it (the same pattern as the replayCfg global).
type replayReport struct {
	digest      string
	result      serve.ReplayResult
	final       homunculus.DeploymentStats // merged, post-drain
	endpoint    *homunculus.EndpointStats  // nil for the flat path
	interrupted bool
}

var lastReplayReport *replayReport

// classesDigest hashes a recorded classification sequence so fixed-seed
// replays can be compared byte-for-byte across serving paths.
func classesDigest(record []int) string {
	h := sha256.New()
	var buf [4]byte
	for _, c := range record {
		binary.LittleEndian.PutUint32(buf[:], uint32(int32(c)))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// addResult folds one replay segment into an aggregate.
func addResult(agg *serve.ReplayResult, res serve.ReplayResult) {
	agg.Requests += res.Requests
	agg.Issued += res.Issued
	agg.Delivered += res.Delivered
	agg.Dropped += res.Dropped
	agg.Errors += res.Errors
	agg.Correct += res.Correct
	agg.Elapsed += res.Elapsed
	if agg.Elapsed > 0 {
		agg.Rate = float64(agg.Delivered) / agg.Elapsed.Seconds()
	}
	if agg.Delivered > 0 {
		agg.Accuracy = float64(agg.Correct) / float64(agg.Delivered)
	}
}

// burstRate caches the calibrated mean offered rate for the current
// -burst run (req/s), so a multi-segment endpoint replay paces every
// segment identically. Reset by runReplay.
var burstRate float64

// replaySegment issues one replay leg: the closed-loop ReplayRun by
// default, or — under -burst — the open-loop ReplayBurst, paced at a mean
// rate calibrated once per run.
func replaySegment(ctx context.Context, c serve.Classifier, xs [][]float64, labels []int, clients int, record []int) (serve.ReplayResult, error) {
	if !replayCfg.burst {
		return serve.ReplayRun(ctx, c, xs, labels, clients, record)
	}
	if burstRate == 0 {
		burstRate = calibrateBurstRate(c, xs)
		fmt.Printf("burst: calibrated mean offered load %.0f req/s (spikes at 100×)\n", burstRate)
	}
	return serve.ReplayBurst(ctx, c, xs, labels, clients, record, serve.BurstOptions{MeanRate: burstRate})
}

// calibrateBurstRate measures sequential service throughput over a short
// warmup prefix and targets half of it as the mean offered rate: the
// quiet phase then stays comfortably under capacity, so any sheds in the
// report are driven by the 100× burst windows alone. The warmup requests
// do count in the deployment's lifetime stats (burst mode measures load
// behaviour, not byte-identity).
func calibrateBurstRate(c serve.Classifier, xs [][]float64) float64 {
	warm := len(xs)
	if warm > 256 {
		warm = 256
	}
	start := time.Now()
	served := 0
	for i := 0; i < warm; i++ {
		if _, err := c.Classify(xs[i]); err == nil {
			served++
		}
	}
	elapsed := time.Since(start)
	if served == 0 || elapsed <= 0 {
		return 1000 // inert fallback; the deployment is erroring anyway
	}
	rate := float64(served) / elapsed.Seconds() / 2
	if rate < 1 {
		rate = 1
	}
	return rate
}

// replayEndpointOptions renders the replay flag knobs as endpoint
// options — through the canonical ServingConfig when -adaptive asks
// for the arrival predictor, through the legacy flat spellings
// otherwise (preserving the default greedy flush the byte-identity
// digests are pinned to).
func replayEndpointOptions() homunculus.EndpointOptions {
	if !replayCfg.adaptive {
		return homunculus.EndpointOptions{
			Shards:     replayCfg.shards,
			BatchSize:  replayCfg.batch,
			MaxDelay:   replayCfg.delay,
			QueueDepth: replayCfg.queue,
		}
	}
	delay := int64(replayCfg.delay)
	if delay <= 0 {
		delay = int64(500 * time.Microsecond)
	}
	return homunculus.EndpointOptions{Serving: &homunculus.ServingConfig{
		Shards:        replayCfg.shards,
		BatchSize:     replayCfg.batch,
		MaxDelayNS:    &delay,
		QueueDepth:    replayCfg.queue,
		AdaptiveFlush: true,
	}}
}

// runReplay serves the compiled pipeline in-process — behind a named
// endpoint when -endpoint is set, a flat deployment otherwise — and
// drives it with the replayed trace (docs/serving.md).
func runReplay(ctx context.Context, spec Spec, loader alchemy.DataLoader, pipe *homunculus.Pipeline, search core.SearchConfig) error {
	burstRate = 0
	xs, labels, err := buildTrace(spec, loader, replayCfg.samples)
	if err != nil {
		return err
	}
	clients := replayCfg.clients
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
	}
	svc := homunculus.New(homunculus.ServiceOptions{})
	defer svc.Close()
	if replayCfg.endpoint != "" {
		return runEndpointReplay(ctx, svc, spec, loader, pipe, search, xs, labels, clients)
	}
	return runFlatReplay(ctx, svc, pipe, xs, labels, clients)
}

// runFlatReplay is the single-revision path. It used to go through the
// deprecated Service.Deploy; it now serves the same runtime behind an
// anonymous single-revision endpoint (named after the replay itself),
// keeping the flat report shape — lastReplayReport.endpoint stays nil —
// so the byte-identity tests keep comparing the two serving paths.
func runFlatReplay(ctx context.Context, svc *homunculus.Service, pipe *homunculus.Pipeline, xs [][]float64, labels []int, clients int) error {
	ep, err := svc.CreateEndpointPipeline("replay", pipe, replayEndpointOptions())
	if err != nil {
		return err
	}
	cfg := ep.Config()
	fmt.Printf("deployment %q: platform=%s algorithm=%s shards=%d batch=%d delay=%v queue=%d clients=%d\n",
		ep.Name(), ep.Platform(), ep.Model().Kind, cfg.Shards, cfg.BatchSize, cfg.MaxDelay, cfg.QueueDepth, clients)
	record := newRecord(len(xs))
	res, err := replaySegment(ctx, ep, xs, labels, clients, record)
	if err != nil {
		return err
	}
	interrupted := ctx.Err() != nil
	if interrupted {
		fmt.Printf("interrupted after %d/%d samples; draining accepted requests\n", res.Issued, res.Requests)
	}
	printReplaySummary(res, ep.Stats().Merged)
	digest := classesDigest(record)
	fmt.Printf("classes digest: sha256:%s\n", digest)
	final, err := svc.DeleteEndpoint(ep.Name())
	if err != nil {
		return err
	}
	fmt.Printf("final: accepted=%d completed=%d dropped=%d errors=%d\n",
		final.Merged.Accepted, final.Merged.Completed, final.Merged.Dropped, final.Merged.Errors)
	lastReplayReport = &replayReport{
		digest: digest, result: res, final: final.Merged, interrupted: interrupted,
	}
	return nil
}

// runEndpointReplay serves behind a named endpoint and optionally drives
// a live rollout mid-replay: first half on revision 1, then -rollout
// recompiles the spec (seed+1) and rolls it out as a canary or shadow,
// the third quarter runs the split, -promote/-rollback fire at the
// three-quarter mark, and the final quarter runs the settled route.
func runEndpointReplay(ctx context.Context, svc *homunculus.Service, spec Spec, loader alchemy.DataLoader, pipe *homunculus.Pipeline, search core.SearchConfig, xs [][]float64, labels []int, clients int) error {
	ep, err := svc.CreateEndpointPipeline(replayCfg.endpoint, pipe, replayEndpointOptions())
	if err != nil {
		return err
	}
	cfg := ep.Config()
	fmt.Printf("endpoint %q rev 1: platform=%s algorithm=%s shards=%d batch=%d delay=%v queue=%d clients=%d\n",
		ep.Name(), ep.Platform(), ep.Model().Kind, cfg.Shards, cfg.BatchSize, cfg.MaxDelay, cfg.QueueDepth, clients)

	record := newRecord(len(xs))
	var agg serve.ReplayResult
	segment := func(lo, hi int) error {
		if lo >= hi || ctx.Err() != nil {
			return nil
		}
		res, err := replaySegment(ctx, ep, xs[lo:hi], labels[lo:hi], clients, record[lo:hi])
		if err != nil {
			return err
		}
		addResult(&agg, res)
		return nil
	}

	n := len(xs)
	if !replayCfg.rollout {
		if err := segment(0, n); err != nil {
			return err
		}
	} else {
		if err := segment(0, n/2); err != nil {
			return err
		}
		if ctx.Err() == nil {
			s2 := search
			s2.Seed = search.Seed + 1
			fmt.Printf("recompiling for rollout (seed %d)...\n", s2.Seed)
			pipe2, err := compilePipeline(ctx, spec, loader, s2)
			if err != nil {
				return fmt.Errorf("rollout compilation: %w", err)
			}
			rev, err := ep.RolloutPipeline(pipe2, homunculus.RolloutOptions{
				CanaryPercent: replayCfg.canary,
				Shadow:        replayCfg.shadow,
			})
			if err != nil {
				return err
			}
			switch {
			case replayCfg.shadow:
				fmt.Printf("rollout: revision %d shadowing all traffic (scored off the record)\n", rev.ID)
			default:
				fmt.Printf("rollout: revision %d serving %d%% canary traffic\n", rev.ID, replayCfg.canary)
			}
		}
		if err := segment(n/2, 3*n/4); err != nil {
			return err
		}
		if ctx.Err() == nil {
			switch {
			case replayCfg.promote:
				if err := ep.Promote(); err != nil {
					return err
				}
				stable, _, _, _ := ep.View()
				fmt.Printf("promoted: revision %d is now stable\n", stable)
			case replayCfg.rollback:
				if err := ep.Rollback(); err != nil {
					return err
				}
				stable, _, _, _ := ep.View()
				fmt.Printf("rolled back: revision %d keeps all traffic\n", stable)
			}
		}
		if err := segment(3*n/4, n); err != nil {
			return err
		}
	}
	if ctx.Err() != nil {
		fmt.Printf("interrupted after %d/%d samples; draining accepted requests\n", agg.Issued, n)
	}
	printReplaySummary(agg, ep.Stats().Merged)
	digest := classesDigest(record)
	fmt.Printf("classes digest: sha256:%s\n", digest)

	// Delete drains every revision (and flushes pending shadow mirrors),
	// so the final report is the endpoint's complete lifetime.
	final, err := svc.DeleteEndpoint(ep.Name())
	if err != nil {
		return err
	}
	fmt.Printf("final: accepted=%d completed=%d dropped=%d errors=%d\n",
		final.Merged.Accepted, final.Merged.Completed, final.Merged.Dropped, final.Merged.Errors)
	fmt.Println("revisions:")
	for _, r := range final.Revisions {
		fmt.Printf("  rev %d [%s] job=%s completed=%d dropped=%d p50=%v p99=%v\n",
			r.ID, r.State, orDefault(r.JobID, "-"), r.Stats.Completed, r.Stats.Dropped, r.Stats.P50, r.Stats.P99)
	}
	if d := final.Shadow; d != nil {
		fmt.Printf("shadow divergence (rev %d): mirrored=%d agree=%d disagree=%d errors=%d shed=%d\n",
			d.Revision, d.Mirrored, d.Agreed, d.Disagreed, d.Errors, d.Shed)
		for p, row := range d.Pairs {
			for s, count := range row {
				if p != s && count > 0 {
					fmt.Printf("  primary=%d shadow=%d: %d\n", p, s, count)
				}
			}
		}
	}
	lastReplayReport = &replayReport{
		digest: digest, result: agg, final: final.Merged,
		endpoint: &final, interrupted: ctx.Err() != nil,
	}
	return nil
}

// newRecord pre-fills a classification record with -2 ("never issued")
// so interrupted replays digest distinctly from shed requests (-1).
func newRecord(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = -2
	}
	return r
}

// printReplaySummary renders the replay aggregate and serving metrics.
func printReplaySummary(res serve.ReplayResult, st homunculus.DeploymentStats) {
	fmt.Printf("replayed %d samples in %v: %.0f req/s, accuracy %.4f (delivered %d, dropped %d, errors %d)\n",
		res.Requests, res.Elapsed.Round(time.Microsecond), res.Rate, res.Accuracy,
		res.Delivered, res.Dropped, res.Errors)
	if res.OfferedRate > 0 {
		shed := 0.0
		if res.Issued > 0 {
			shed = 100 * float64(res.Dropped) / float64(res.Issued)
		}
		fmt.Printf("burst: offered %.0f req/s, shed %.1f%% of offered load\n", res.OfferedRate, shed)
	}
	fmt.Printf("latency: p50=%v p99=%v; batches=%d (mean %.1f, %d full, %d deadline)\n",
		st.P50, st.P99, st.Batches, st.MeanBatch, st.FullFlushes, st.DeadlineFlushes)
	fmt.Printf("per-class:")
	for c, n := range st.PerClass {
		fmt.Printf(" %d=%d", c, n)
	}
	fmt.Println()
}

// buildTrace assembles the replay trace. The botnet generator replays
// the per-packet partial-flowmarker stream a data plane would actually
// classify (internal/stream.Trace over the regenerated packet corpus);
// every other source replays its test split. n > 0 cycles or truncates
// the trace to exactly n samples.
func buildTrace(spec Spec, loader alchemy.DataLoader, n int) ([][]float64, []int, error) {
	var xs [][]float64
	var labels []int
	if spec.Data.Generator == "botnet" {
		cfg := botnet.DefaultConfig()
		if spec.Data.Samples > 0 {
			cfg.Flows = spec.Data.Samples
		}
		if spec.Data.Seed != 0 {
			cfg.Seed = spec.Data.Seed
		}
		flows, err := botnet.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		xs, labels, err = stream.Trace(packet.PaperBD, botnet.MergePackets(flows))
		if err != nil {
			return nil, nil, err
		}
	} else {
		_, test, err := loaderDatasets(loader)
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < test.Len(); i++ {
			xs = append(xs, append([]float64{}, test.X.Row(i)...))
		}
		labels = append(labels, test.Y...)
	}
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("replay trace is empty")
	}
	if n > 0 {
		cx := make([][]float64, n)
		cl := make([]int, n)
		for i := 0; i < n; i++ {
			cx[i] = xs[i%len(xs)]
			cl[i] = labels[i%len(labels)]
		}
		xs, labels = cx, cl
	}
	return xs, labels, nil
}

// loaderDatasets materializes a loader's output as internal datasets.
func loaderDatasets(l alchemy.DataLoader) (*dataset.Dataset, *dataset.Dataset, error) {
	data, err := l.Load()
	if err != nil {
		return nil, nil, err
	}
	return data.Datasets()
}

func buildLoader(d DataSpec, baseDir string) (alchemy.DataLoader, error) {
	if d.TrainCSV != "" || d.TestCSV != "" {
		if d.TrainCSV == "" || d.TestCSV == "" {
			return nil, fmt.Errorf("both train_csv and test_csv are required")
		}
		trainPath := resolve(baseDir, d.TrainCSV)
		testPath := resolve(baseDir, d.TestCSV)
		return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
			train, err := readCSV(trainPath)
			if err != nil {
				return nil, err
			}
			test, err := readCSV(testPath)
			if err != nil {
				return nil, err
			}
			return alchemy.FromDatasets(train, test), nil
		}), nil
	}
	switch d.Generator {
	case "nslkdd":
		return loaders.NSLKDD(d.Samples, d.Seed), nil
	case "iottc":
		return loaders.IoTTC(d.Samples, d.Seed), nil
	case "botnet":
		return loaders.Botnet(d.Samples, d.Seed), nil
	case "":
		return nil, fmt.Errorf("spec needs data.generator or data.train_csv/test_csv")
	default:
		return nil, fmt.Errorf("unknown generator %q (have nslkdd, iottc, botnet)", d.Generator)
	}
}

// buildPlatform resolves the declared kind through the backend registry;
// an unknown kind's error lists every registered backend.
func buildPlatform(p PlatformSpec) (*alchemy.Platform, error) {
	plat, err := alchemy.PlatformFor(orDefault(p.Kind, "taurus"))
	if err != nil {
		return nil, err
	}
	plat.Constrain(p.constraints())
	return plat, nil
}

// constraints renders the spec's platform section as DSL constraints.
func (p PlatformSpec) constraints() alchemy.Constraints {
	return alchemy.Constraints{
		Performance: alchemy.Performance{
			ThroughputGPkts: p.ThroughputGPkts,
			LatencyNS:       p.LatencyNS,
		},
		Resources: alchemy.Resources{
			Rows: p.Rows, Cols: p.Cols, Tables: p.Tables,
			MaxLUTPct: p.MaxLUTPct, MaxPowerW: p.MaxPowerW,
		},
	}
}

// runSweep compiles the spec against every registered backend and prints
// the per-target feasibility table, writing code artifacts for each
// deployable target.
func runSweep(ctx context.Context, spec Spec, model *alchemy.Model, outDir string, search core.SearchConfig) error {
	// The declared kind is irrelevant for a sweep (GenerateAcross swaps
	// it per target), and the base starts with ZERO constraints so that
	// only the spec's explicit fields carry across backends — every
	// unset field takes each backend's own registered defaults, exactly
	// as a direct single-target run would.
	base := &alchemy.Platform{}
	base.Constrain(spec.Platform.constraints())
	base.Schedule(model)

	// Per-target compilations interleave on the service, so sweep
	// progress is always printed platform-tagged: Event.Platform is what
	// lets one observer tell the concurrent streams apart.
	sweepOpts := []homunculus.Option{homunculus.WithSearchConfig(search), homunculus.WithProgress(printEvent)}
	if validateMode {
		sweepOpts = append(sweepOpts, homunculus.WithValidation())
	}
	reports, err := homunculus.GenerateAcross(ctx, base, nil, sweepOpts...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}

	fmt.Printf("cross-platform sweep of %q over %d backends\n", spec.Name, len(reports))
	fmt.Printf("%-10s %-9s %-8s %-9s %s\n", "platform", "algo", "metric", "feasible", "detail")
	deployable := 0
	var diverged []string
	for _, r := range reports {
		if r.Err != nil {
			fmt.Printf("%-10s %-9s %-8s %-9s %v\n", r.Platform, "-", "-", "error", r.Err)
			continue
		}
		app := r.Pipeline.Apps[0]
		if app.Model == nil {
			fmt.Printf("%-10s %-9s %-8s %-9v %s\n", r.Platform, "-", "-", false, sweepDetail(app))
			continue
		}
		deployable++
		detail := verdictDetail(app.Verdict)
		if validateMode {
			detail += " | " + app.Validation.String()
			if !app.Validation.OK() {
				diverged = append(diverged, r.Platform)
			}
		}
		fmt.Printf("%-10s %-9s %-8.4f %-9v %s\n",
			r.Platform, app.Algorithm, app.Metric, app.Verdict.Feasible, detail)
		codePath := filepath.Join(outDir, spec.Name+"."+r.Platform+backend.CodeExt(r.Platform))
		if err := os.WriteFile(codePath, []byte(app.Code), 0o644); err != nil {
			return fmt.Errorf("write code for %s: %w", r.Platform, err)
		}
	}
	if deployable == 0 {
		return fmt.Errorf("no registered backend produced a deployable pipeline")
	}
	fmt.Printf("%d/%d backends deployable; artifacts in %s\n", deployable, len(reports), outDir)
	if len(diverged) > 0 {
		return fmt.Errorf("translation validation failed on %s", strings.Join(diverged, ", "))
	}
	return nil
}

// sweepDetail explains an undeployable app row.
func sweepDetail(app homunculus.AppResult) string {
	for _, c := range app.Candidates {
		if c.Skipped != "" {
			return fmt.Sprintf("%s skipped: %s", c.Algorithm, c.Skipped)
		}
	}
	return "no feasible model under the given constraints"
}

// verdictDetail renders the interesting verdict metrics compactly.
func verdictDetail(v core.Verdict) string {
	var parts []string
	for _, k := range []string{"cus", "mus", "tables", "latency_ns", "throughput_gpkts", "lut_pct", "power_w"} {
		if val, ok := v.Metrics[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%.2f", k, val))
		}
	}
	return strings.Join(parts, " ")
}

func readCSV(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

func resolve(baseDir, p string) string {
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(baseDir, p)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
