// The -tune flag group: replay-driven serving autotuning from the CLI
// (docs/tuning.md). After compilation, the trace that -replay would
// drive through a deployment is instead replayed against sandboxed
// candidate runtimes by the internal/tune optimizer, which prints the
// Pareto frontier over {p99, throughput, drop rate}, the chosen
// canonical ServingConfig, and a verification replay of that config
// re-checked against the SLO.
//
//	homunculus -spec pipeline.json -tune -slo "p99<=2ms,drops=0"
//	homunculus -spec pipeline.json -tune -tune-budget 12 -replay 2000

package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/alchemy"
	"repro/internal/serve"
	"repro/internal/tune"

	homunculus "repro"
)

// defaultSLO is what -tune enforces when -slo is left empty.
const defaultSLO = "p99<=2ms,drops=0"

// tuneSettings mirrors the -tune flag group.
type tuneSettings struct {
	enabled bool
	slo     string
	budget  int
	seed    int64
}

var tuneCfg tuneSettings

// lastTuneReport captures the most recent CLI tuning outcome so tests
// can assert on it (the lastReplayReport pattern).
var lastTuneReport *tune.Report

// lastTuneVerify is the verification replay's measurement of the
// chosen config.
var lastTuneVerify *tune.Metrics

// runTune tunes the compiled pipeline's serving configuration against
// the replay trace and verifies the chosen config in a fresh replay.
func runTune(ctx context.Context, spec Spec, loader alchemy.DataLoader, pipe *homunculus.Pipeline) error {
	lastTuneReport, lastTuneVerify = nil, nil
	app := pipe.Apps[0]
	xs, _, err := buildTrace(spec, loader, replayCfg.samples)
	if err != nil {
		return err
	}
	sloStr := orDefault(tuneCfg.slo, defaultSLO)
	slo, err := tune.ParseSLO(sloStr)
	if err != nil {
		return err
	}
	seed := tuneCfg.seed
	if seed == 0 {
		seed = spec.Search.Seed
	}
	fmt.Printf("tuning %q serving config: SLO %q, seed %d, %d trace samples\n",
		spec.Name, sloStr, seed, len(xs))

	rep, err := tune.Run(ctx, app.Model, xs, tune.Options{
		Seed:      seed,
		Budget:    tuneCfg.budget,
		SLO:       slo,
		Clients:   replayCfg.clients,
		MaxShards: replayCfg.shards,
	})
	if err != nil {
		var inf *tune.InfeasibleError
		if errors.As(err, &inf) {
			fmt.Printf("no candidate met the SLO; closest miss %s violated: %v\n",
				describeConfig(inf.Best.Config), inf.Violations)
		}
		return err
	}
	lastTuneReport = rep

	chosenKey, err := rep.Chosen.Config.Canonical()
	if err != nil {
		return err
	}
	fmt.Printf("evaluated %d candidates; Pareto frontier (%d points, * = chosen):\n",
		len(rep.Evaluations), len(rep.Front))
	for _, c := range rep.Front {
		key, err := c.Config.Canonical()
		if err != nil {
			return err
		}
		mark := " "
		if bytes.Equal(key, chosenKey) {
			mark = "*"
		}
		fmt.Printf("  %s %-44s %s\n", mark, describeConfig(c.Config), describeMetrics(c.Metrics))
	}
	fmt.Printf("chosen config (canonical):\n  %s\n", chosenKey)

	// Verification replay: a fresh sandboxed runtime at the chosen
	// config, paced exactly as the tuner's evaluations were.
	rate, err := tune.Calibrate(app.Model, xs)
	if err != nil {
		return err
	}
	// Mirror the tuner's client default (tune.Options), not GOMAXPROCS:
	// the verification must measure the same offered concurrency the
	// candidates were scored under, or its quantiles aren't comparable.
	clients := replayCfg.clients
	if clients <= 0 {
		clients = 8
	}
	eval := tune.ReplayEvaluator(app.Model, xs, clients, serve.BurstOptions{MeanRate: rate})
	m, err := eval(ctx, rep.Chosen.Config)
	if err != nil {
		return fmt.Errorf("verification replay: %w", err)
	}
	lastTuneVerify = &m
	fmt.Printf("verification replay: %s\n", describeMetrics(m))
	if viol := slo.Check(m); len(viol) > 0 {
		return fmt.Errorf("chosen config missed SLO %q in the verification replay: %v", sloStr, viol)
	}
	fmt.Printf("SLO %q met in verification replay\n", sloStr)
	return nil
}

// describeConfig renders a candidate config as a compact knob tuple.
func describeConfig(cfg serve.ServingConfig) string {
	r := cfg.Resolved()
	delay := time.Duration(0)
	if r.MaxDelayNS != nil {
		delay = time.Duration(*r.MaxDelayNS)
	}
	flush := "fixed"
	if r.AdaptiveFlush {
		flush = "adaptive"
	}
	if delay <= 0 {
		flush = "greedy"
	}
	return fmt.Sprintf("batch=%d shards=%d delay=%v flush=%s queue=%d",
		r.BatchSize, r.Shards, delay, flush, r.QueueDepth)
}

// describeMetrics renders one candidate's measurements.
func describeMetrics(m tune.Metrics) string {
	return fmt.Sprintf("p50=%v p99=%v tput=%.0f req/s drop=%.2f%%",
		m.P50.Round(time.Microsecond), m.P99.Round(time.Microsecond),
		m.Throughput, 100*m.DropRate)
}
