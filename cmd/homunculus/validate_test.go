package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/p4gen"
	"repro/internal/spatialgen"
	"repro/internal/validate"
)

// cliTreeModel mirrors the gate-test fixture: the literal 0.375 in the
// emitted artifact is the corruption target.
func cliTreeModel() *ir.Model {
	return &ir.Model{Kind: ir.DTree, Name: "cli_tree", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{Feature: 0, Threshold: 0.375,
			Left:  &ir.TreeNode{Feature: -1, Class: 0},
			Right: &ir.TreeNode{Feature: -1, Class: 1}}}
}

// writeModelAndArtifact emits m's artifact for lang ("p4"/"spatial") into
// dir and returns (modelPath, codePath).
func writeModelAndArtifact(t *testing.T, dir, lang string, m *ir.Model) (string, string) {
	t.Helper()
	modelPath := filepath.Join(dir, m.Name+".model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	var src, ext string
	switch lang {
	case "p4":
		prog, err := p4gen.Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		src, ext = prog.Source, ".p4"
	default:
		prog, err := spatialgen.Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		src, ext = prog.Source, ".spatial"
	}
	codePath := filepath.Join(dir, m.Name+ext)
	if err := os.WriteFile(codePath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return modelPath, codePath
}

// corruptFile replaces old with new inside path, failing if absent.
func corruptFile(t *testing.T, path, oldS, newS string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(raw), oldS, newS, 1)
	if mutated == string(raw) {
		t.Fatalf("corruption target %q not found in %s", oldS, path)
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestValidateArtifactMode is the CLI acceptance path: a clean emitted
// artifact validates, a deliberately corrupted one exits nonzero with a
// minimized repro JSON, and replaying that repro against the (correct)
// generators reports the bug as absent there.
func TestValidateArtifactMode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out")
	modelPath, codePath := writeModelAndArtifact(t, dir, "spatial", cliTreeModel())

	if err := runValidateArtifact(modelPath, codePath, "", out); err != nil {
		t.Fatalf("clean artifact: %v", err)
	}

	// Inject the codegen bug: a silently shifted threshold.
	corruptFile(t, codePath, "0.375", "0.25")
	err := runValidateArtifact(modelPath, codePath, "", out)
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("corrupted artifact must diverge, got: %v", err)
	}

	reproPath := filepath.Join(out, "cli_tree.repro.json")
	r, rerr := validate.ReadReproFile(reproPath)
	if rerr != nil {
		t.Fatalf("repro must be written and parseable: %v", rerr)
	}
	if len(r.Input) == 0 || len(r.Results) < 2 {
		t.Fatalf("repro not populated: %+v", r)
	}
	// The repro replays against regenerated (correct) artifacts, so the
	// injected corruption does not reproduce there — exit zero.
	if err := runReproReplay(reproPath); err != nil {
		t.Fatalf("replay against correct codegen: %v", err)
	}
}

// TestValidateArtifactModeP4 covers the tofino interpreter path with a
// negated match-action weight.
func TestValidateArtifactModeP4(t *testing.T) {
	dir := t.TempDir()
	m := &ir.Model{Kind: ir.SVM, Name: "cli_svm", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		SVM: &ir.SVMParams{W: [][]float64{{0.75, -1.5}, {-0.5, 1.125}}, B: []float64{0.25, -0.125}}}
	modelPath, codePath := writeModelAndArtifact(t, dir, "p4", m)

	if err := runValidateArtifact(modelPath, codePath, "", filepath.Join(dir, "out")); err != nil {
		t.Fatalf("clean artifact: %v", err)
	}
	corruptFile(t, codePath, "(_) : mac_0(", "(_) : mac_0(-")
	err := runValidateArtifact(modelPath, codePath, "", filepath.Join(dir, "out"))
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("corrupted p4 artifact must diverge, got: %v", err)
	}
}

// TestValidateArtifactModeErrors: unparseable artifacts and unknown
// languages fail loudly instead of passing vacuously.
func TestValidateArtifactModeErrors(t *testing.T) {
	dir := t.TempDir()
	modelPath, codePath := writeModelAndArtifact(t, dir, "spatial", cliTreeModel())

	// Truncation is refused as unparseable.
	raw, _ := os.ReadFile(codePath)
	if err := os.WriteFile(codePath, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runValidateArtifact(modelPath, codePath, "", dir); err == nil {
		t.Fatal("truncated artifact must fail")
	}

	// Unknown extension without -platform cannot pick an interpreter.
	other := filepath.Join(dir, "artifact.bin")
	if err := os.WriteFile(other, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runValidateArtifact(modelPath, other, "", dir); err == nil || !strings.Contains(err.Error(), "infer") {
		t.Fatalf("unknown extension: %v", err)
	}
	// ...but the -platform override resolves it.
	if err := runValidateArtifact(modelPath, other, "taurus", dir); err != nil {
		t.Fatalf("platform override: %v", err)
	}
	if _, err := artifactLang("mat", "x.p4"); err == nil {
		t.Fatal("unknown platform must be rejected")
	}
	if err := runValidateArtifact(modelPath, "", "", dir); err == nil {
		t.Fatal("missing -code must be rejected")
	}
}

// TestValidateSpecMode compiles a spec with -validate: the verdict rides
// the run and a clean compilation exits zero.
func TestValidateSpecMode(t *testing.T) {
	validateMode = true
	defer func() { validateMode = false }()
	out := t.TempDir()
	if err := run(context.Background(), "testdata/tc_tofino.json", out, "", 0); err != nil {
		t.Fatalf("validated compile: %v", err)
	}
}
