package homunculus

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5) at the Quick budget and reports the headline quantities
// as custom benchmark metrics, so `go test -bench=. -benchmem` doubles as
// the reproduction driver. One benchmark per table/figure, plus ablations
// for the design choices DESIGN.md calls out (BO vs random search,
// feasibility pruning, fixed-point width) and micro-benchmarks of the hot
// substrates.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/alchemy"
	"repro/internal/backend"
	"repro/internal/bo"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/packet"
	"repro/internal/rf"
	"repro/internal/synth/botnet"
	"repro/internal/synth/nslkdd"
	"repro/internal/taurus"
	"repro/internal/tune"
)

// ---- Tables ----

func BenchmarkTable2BaselinesVsHomunculus(b *testing.B) {
	budget := experiments.Quick()
	budget.Epochs = 10
	budget.BOIters = 6
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Application {
		case "Base-AD":
			b.ReportMetric(r.F1, "baseAD_F1")
		case "Hom-AD":
			b.ReportMetric(r.F1, "homAD_F1")
		case "Base-BD":
			b.ReportMetric(r.F1, "baseBD_F1")
		case "Hom-BD":
			b.ReportMetric(r.F1, "homBD_F1")
		}
	}
}

func BenchmarkTable3AppChaining(b *testing.B) {
	budget := experiments.Quick()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].CUs), "chain_CUs")
	b.ReportMetric(float64(rows[0].MUs), "chain_MUs")
	spread := float64(rows[0].CUs - rows[1].CUs) // 0 when strategy-independent
	b.ReportMetric(math.Abs(spread), "strategy_CU_spread")
}

func BenchmarkTable4ModelFusion(b *testing.B) {
	budget := experiments.Quick()
	budget.Epochs = 8
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].PCUs+rows[1].PCUs), "parts_CUs")
	b.ReportMetric(float64(rows[2].PCUs), "fused_CUs")
}

func BenchmarkTable5FPGAUtilization(b *testing.B) {
	budget := experiments.Quick()
	budget.Epochs = 8
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table5(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PowerW, "loopback_W")
	var maxLUT float64
	for _, r := range rows[1:] {
		if r.LUTPct > maxLUT {
			maxLUT = r.LUTPct
		}
	}
	b.ReportMetric(maxLUT, "max_LUT_pct")
}

// ---- Figures ----

func BenchmarkFigure4BORegret(b *testing.B) {
	budget := experiments.Quick()
	budget.BOIters = 6
	var data experiments.Figure4Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.Figure4(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(data.Best[len(data.Best)-1], "final_F1")
	b.ReportMetric(data.Best[0], "first_F1")
}

func BenchmarkFigure6Histograms(b *testing.B) {
	budget := experiments.Quick()
	var data experiments.Figure6Data
	for i := 0; i < b.N; i++ {
		var err error
		data, err = experiments.Figure6(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	var benignLarge, botnetLarge float64
	for i := 16; i < 23; i++ {
		benignLarge += data.BenignPL[i]
		botnetLarge += data.BotnetPL[i]
	}
	b.ReportMetric(benignLarge, "benign_largePL")
	b.ReportMetric(botnetLarge, "botnet_largePL")
}

func BenchmarkFigure7KMeansBudgets(b *testing.B) {
	budget := experiments.Quick()
	budget.BOIters = 5
	var series []experiments.Figure7Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure7(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		if len(s.VScore) > 0 && (s.Tables == 1 || s.Tables == 5) {
			name := "V_1table"
			if s.Tables == 5 {
				name = "V_5tables"
			}
			b.ReportMetric(s.VScore[len(s.VScore)-1], name)
		}
	}
}

func BenchmarkReactionTime(b *testing.B) {
	budget := experiments.Quick()
	budget.Epochs = 10
	var res experiments.ReactionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.ReactionTime(budget)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanDetectionPackets, "detect_pkts")
	b.ReportMetric(res.InferenceLatencyNS, "decision_ns")
	b.ReportMetric(res.FlowLevelReaction.Seconds(), "flowlevel_s")
}

// ---- Ablations ----

// BenchmarkAblationRandomVsBO compares the searched best F1 under the same
// evaluation budget with the RF-surrogate BO against pure random sampling
// (averaged across seeds).
func BenchmarkAblationRandomVsBO(b *testing.B) {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 1500
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	app := core.App{Name: "ad", Train: train, Test: test, Normalize: true}
	target := backend.NewTaurusTarget()

	var boBest, randBest float64
	seeds := []int64{1, 2, 3}
	for i := 0; i < b.N; i++ {
		boBest, randBest = 0, 0
		for _, seed := range seeds {
			sc := core.DefaultSearchConfig()
			sc.Algorithms = []ir.Kind{ir.DNN}
			sc.BO.InitSamples = 3
			sc.BO.Iterations = 6
			sc.TrainEpochs = 6
			sc.MaxHiddenLayers = 3
			sc.MaxNeurons = 16
			sc.Seed = seed
			res, err := core.Search(context.Background(), app, target, sc)
			if err != nil {
				b.Fatal(err)
			}
			if res.Best != nil {
				boBest += res.Best.Metric
			}
			// Random search: same budget, init-only (no BO iterations).
			rc := sc
			rc.BO.InitSamples = 9
			rc.BO.Iterations = 0
			res2, err := core.Search(context.Background(), app, target, rc)
			if err != nil {
				b.Fatal(err)
			}
			if res2.Best != nil {
				randBest += res2.Best.Metric
			}
		}
	}
	b.ReportMetric(100*boBest/float64(len(seeds)), "bo_F1")
	b.ReportMetric(100*randBest/float64(len(seeds)), "random_F1")
}

// BenchmarkAblationFeasibility measures how much feasibility-aware pruning
// matters: the same search against a tight 6×6 grid with and without the
// resource constraints surfaced to the optimizer (without them, infeasible
// high-F1 models win the search and are rejected at deployment).
func BenchmarkAblationFeasibility(b *testing.B) {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 1500
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	app := core.App{Name: "ad", Train: train, Test: test, Normalize: true}
	tight := backend.NewTaurusTarget()
	tight.Grid.Rows, tight.Grid.Cols = 6, 6

	var withFeas, deployable float64
	for i := 0; i < b.N; i++ {
		sc := core.DefaultSearchConfig()
		sc.Algorithms = []ir.Kind{ir.DNN}
		sc.BO.InitSamples = 4
		sc.BO.Iterations = 8
		sc.TrainEpochs = 6
		res, err := core.Search(context.Background(), app, tight, sc)
		if err != nil {
			b.Fatal(err)
		}
		withFeas, deployable = 0, 0
		if res.Best != nil {
			withFeas = res.Best.Metric
			deployable = 1
		}
	}
	b.ReportMetric(100*withFeas, "feasible_F1")
	b.ReportMetric(deployable, "deployable")
}

// BenchmarkAblationQuant quantifies the accuracy cost of fixed-point
// inference across formats (Q8.8 vs Q4.12 vs float reference).
func BenchmarkAblationQuant(b *testing.B) {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 2000
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	norm := dataset.FitNormalizer(train)
	trn, tst := train.Clone(), test.Clone()
	norm.Apply(trn)
	norm.Apply(tst)
	nc := nn.Config{
		Inputs: 7, Hidden: []int{16, 12}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.Adam,
		LearnRate: 0.01, BatchSize: 32, Epochs: 12, Seed: 1,
	}
	net, err := nn.New(nc)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Train(trn); err != nil {
		b.Fatal(err)
	}

	score := func(m *ir.Model, quantized bool) float64 {
		pred := make([]int, tst.Len())
		for i := 0; i < tst.Len(); i++ {
			var y int
			var err error
			if quantized {
				y, err = m.InferQ(tst.X.Row(i))
			} else {
				y, err = m.Infer(tst.X.Row(i))
			}
			if err != nil {
				b.Fatal(err)
			}
			pred[i] = y
		}
		return 100 * metrics.FromLabels(tst.Y, pred, 2).F1(1)
	}

	var floatF1, q88F1, q412F1 float64
	for i := 0; i < b.N; i++ {
		m88 := ir.FromNN("ad", net, fixed.Q8_8)
		m412 := ir.FromNN("ad", net, fixed.Q4_12)
		floatF1 = score(m88, false)
		q88F1 = score(m88, true)
		q412F1 = score(m412, true)
	}
	b.ReportMetric(floatF1, "float_F1")
	b.ReportMetric(q88F1, "q8.8_F1")
	b.ReportMetric(q412F1, "q4.12_F1")
}

// ---- Substrate micro-benchmarks ----

// BenchmarkNNTrainEpoch tracks the training hot loop. Seed numbers on the
// reference machine (pre-arena): 930110 ns/op, 383096 B/op, 816 allocs/op
// — every batch allocated fresh gradient/delta/staging matrices. With the
// per-Train arena the steady state is ~86 allocs/op (~50 KB), all of it
// one-time Train setup; the per-batch loop is allocation-free.
func BenchmarkNNTrainEpoch(b *testing.B) {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 1000
	train, _, err := nslkdd.TrainTest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	if !testing.Short() {
		// Allocation budget regression check: a full Train call must stay
		// far under the seed's single-epoch 816 allocs/op, and adding
		// epochs (i.e. more batches) must not add allocations — the
		// arena makes per-batch cost O(1) with constant 0.
		nc := nn.Config{
			Inputs: 7, Hidden: []int{12, 6}, Outputs: 2,
			Activation: nn.ReLU, Optimizer: nn.Adam,
			LearnRate: 0.01, BatchSize: 32, Epochs: 1, Seed: 1,
		}
		net1, _ := nn.New(nc)
		oneEpoch := testing.AllocsPerRun(3, func() {
			if _, err := net1.Train(train); err != nil {
				b.Fatal(err)
			}
		})
		if oneEpoch > 150 {
			b.Fatalf("Train(1 epoch) allocated %.0f times, budget 150 (seed was 816)", oneEpoch)
		}
		nc.Epochs = 3
		net3, _ := nn.New(nc)
		threeEpochs := testing.AllocsPerRun(3, func() {
			if _, err := net3.Train(train); err != nil {
				b.Fatal(err)
			}
		})
		if threeEpochs > oneEpoch+8 {
			b.Fatalf("steady-state batches allocate: 1 epoch %.0f vs 3 epochs %.0f allocs", oneEpoch, threeEpochs)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc := nn.Config{
			Inputs: 7, Hidden: []int{12, 6}, Outputs: 2,
			Activation: nn.ReLU, Optimizer: nn.Adam,
			LearnRate: 0.01, BatchSize: 32, Epochs: 1, Seed: int64(i),
		}
		net, _ := nn.New(nc)
		if _, err := net.Train(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantizedInference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(256, 7)
	for i := range d.X.Data {
		d.X.Data[i] = rng.NormFloat64()
	}
	nc := nn.Config{
		Inputs: 7, Hidden: []int{12, 6, 3}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.SGD,
		LearnRate: 0.1, BatchSize: 32, Epochs: 1, Seed: 1,
	}
	net, _ := nn.New(nc)
	m := ir.FromNN("ad", net, fixed.Q8_8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.InferQ(d.X.Row(i % 256)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTaurusEstimate(b *testing.B) {
	nc := nn.Config{
		Inputs: 30, Hidden: []int{10, 10, 10, 10}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.SGD,
		LearnRate: 0.1, BatchSize: 32, Epochs: 1, Seed: 1,
	}
	net, _ := nn.New(nc)
	m := ir.FromNN("bd", net, fixed.Q8_8)
	g, c := taurus.DefaultGrid(), taurus.DefaultConstraints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taurus.Estimate(g, c, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRFSurrogate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 50
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ys[i] = xs[i][0]*2 - xs[i][1]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := rf.Train(rf.DefaultConfig(), xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		f.PredictVar([]float64{0.5, 0.5, 0.5})
	}
}

// BenchmarkBOIteration tracks the optimizer inner loop. Seed numbers on
// the reference machine: 2251879 ns/op, 796021 B/op, 2524 allocs/op —
// dominated by per-tree math/rand seeding, per-node forest allocations,
// and the rebuilt candidate pool. With flat-arena trees, splitmix per-tree
// RNGs, incremental history, and the reused candidate/EI buffers it runs
// ~10× faster at ~855 allocs/op.
func BenchmarkBOIteration(b *testing.B) {
	space := bo.Space{Params: []bo.Param{
		{Name: "x", Kind: bo.Real, Min: -5, Max: 5},
		{Name: "y", Kind: bo.Real, Min: -5, Max: 5},
	}}
	b.ReportAllocs()
	if !testing.Short() {
		// Allocation budget regression check vs the 2524 allocs/op seed.
		cfg := bo.DefaultConfig()
		cfg.InitSamples = 5
		cfg.Iterations = 5
		cfg.Candidates = 200
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := bo.Maximize(context.Background(), space, cfg, func(x []float64) (float64, bool, map[string]float64, error) {
				return -(x[0]*x[0] + x[1]*x[1]), true, nil, nil
			}); err != nil {
				b.Fatal(err)
			}
		})
		if allocs > 1300 {
			b.Fatalf("Maximize allocated %.0f times, budget 1300 (seed was 2524)", allocs)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := bo.DefaultConfig()
		cfg.InitSamples = 5
		cfg.Iterations = 5
		cfg.Candidates = 200
		cfg.Seed = int64(i)
		_, err := bo.Maximize(context.Background(), space, cfg, func(x []float64) (float64, bool, map[string]float64, error) {
			return -(x[0]*x[0] + x[1]*x[1]), true, nil, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowTableStreaming(b *testing.B) {
	flows, err := botnet.Generate(botnet.Config{Flows: 100, BotnetP: 0.4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	stream := botnet.MergePackets(flows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := packet.NewFlowTable(packet.PaperBD)
		for _, p := range stream {
			table.Observe(p)
		}
	}
	b.ReportMetric(float64(len(stream)), "packets")
}

func BenchmarkParetoSearch(b *testing.B) {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 1200
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		b.Fatal(err)
	}
	app := core.App{Name: "ad", Train: train, Test: test, Normalize: true}
	var res *core.ParetoSearchResult
	for i := 0; i < b.N; i++ {
		sc := core.DefaultSearchConfig()
		sc.BO.InitSamples = 4
		sc.BO.Iterations = 6
		sc.TrainEpochs = 6
		sc.MaxHiddenLayers = 3
		sc.MaxNeurons = 16
		res, err = core.SearchPareto(context.Background(), app, backend.NewTaurusTarget(), sc, ir.DNN)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Front)), "front_size")
	if len(res.Front) > 0 {
		b.ReportMetric(100*res.Front[len(res.Front)-1].Metric, "best_F1")
		b.ReportMetric(res.Front[0].Resource, "cheapest_CUs")
	}
}

func BenchmarkSimPipeline(b *testing.B) {
	nc := nn.Config{
		Inputs: 7, Hidden: []int{12, 6, 3}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.SGD,
		LearnRate: 0.1, BatchSize: 32, Epochs: 1, Seed: 1,
	}
	net, _ := nn.New(nc)
	m := ir.FromNN("ad", net, fixed.Q8_8)
	sim, err := taurus.NewSim(taurus.DefaultGrid(), m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Process(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sim.Stages()), "stages")
}

// BenchmarkServeClassify measures the deployment runtime's serving hot
// path: a single-client classify through the micro-batcher (greedy
// flush), one shard, and the prepared quantized predictor. The
// steady-state path must be allocation-free — request structs, feature
// buffers, batch slices, and completion channels are all pooled — which
// is asserted here (and enforced by CI's bench-compare job) on top of
// being reported as the steady_allocs metric.
func BenchmarkServeClassify(b *testing.B) {
	nc := nn.Config{
		Inputs: 7, Hidden: []int{12, 6}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.SGD,
		LearnRate: 0.1, BatchSize: 32, Epochs: 1, Seed: 1,
	}
	net, err := nn.New(nc)
	if err != nil {
		b.Fatal(err)
	}
	m := ir.FromNN("ad", net, fixed.Q8_8)
	svc := New(ServiceOptions{})
	defer svc.Close()
	dep, err := svc.DeployPipeline(
		&Pipeline{Platform: "taurus", Apps: []AppResult{{Name: "ad", Algorithm: "dnn", Model: m}}},
		DeployOptions{Shards: 1, BatchSize: 32, MaxDelay: -1},
	)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = make([]float64, 7)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	for i := 0; i < 256; i++ { // warm the pools
		if _, err := dep.Classify(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	steady := 0.0
	if !testing.Short() {
		// The serve-path allocation budget: 0 allocs/op steady state.
		steady = testing.AllocsPerRun(200, func() {
			if _, err := dep.Classify(rows[0]); err != nil {
				b.Fatal(err)
			}
		})
		if steady > 0 {
			b.Fatalf("steady-state Classify allocated %.1f times per op, budget 0", steady)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Classify(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Metrics must be reported after ResetTimer (which clears them) —
	// CI's bench-compare job reads steady_allocs from the snapshot.
	b.ReportMetric(steady, "steady_allocs")
	st := dep.Stats()
	b.ReportMetric(st.MeanBatch, "mean_batch")
}

// BenchmarkEndpointClassifyCanary measures the endpoint routing tax on
// the serving hot path with a live 50% canary: the atomic table load,
// the splitmix split, and both revisions' pooled runtimes must keep the
// steady-state classify at 0 allocs/op — hot-swap capability may not
// cost the zero-alloc serving budget.
func BenchmarkEndpointClassifyCanary(b *testing.B) {
	nc := nn.Config{
		Inputs: 7, Hidden: []int{12, 6}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.SGD,
		LearnRate: 0.1, BatchSize: 32, Epochs: 1, Seed: 1,
	}
	net, err := nn.New(nc)
	if err != nil {
		b.Fatal(err)
	}
	m := ir.FromNN("ad", net, fixed.Q8_8)
	svc := New(ServiceOptions{})
	defer svc.Close()
	pipe := &Pipeline{Platform: "taurus", Apps: []AppResult{{Name: "ad", Algorithm: "dnn", Model: m}}}
	ep, err := svc.CreateEndpointPipeline("bench", pipe, EndpointOptions{Shards: 1, BatchSize: 32, MaxDelay: -1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ep.RolloutPipeline(pipe, RolloutOptions{CanaryPercent: 50}); err != nil {
		b.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7}
	for i := 0; i < 256; i++ { // warm both revisions' pools
		if _, err := ep.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	steady := 0.0
	if !testing.Short() {
		// The canary routing path shares the serve budget: 0 allocs/op.
		steady = testing.AllocsPerRun(200, func() {
			if _, err := ep.Classify(x); err != nil {
				b.Fatal(err)
			}
		})
		if steady > 0 {
			b.Fatalf("steady-state canary Classify allocated %.1f times per op, budget 0", steady)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ep.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(steady, "steady_allocs")
}

// BenchmarkServeClassifyConcurrent measures batched serving throughput
// under parallel load: GOMAXPROCS clients hammer one deployment, so the
// micro-batcher actually forms multi-request batches and the shards
// split them.
func BenchmarkServeClassifyConcurrent(b *testing.B) {
	nc := nn.Config{
		Inputs: 7, Hidden: []int{12, 6}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.SGD,
		LearnRate: 0.1, BatchSize: 32, Epochs: 1, Seed: 1,
	}
	net, err := nn.New(nc)
	if err != nil {
		b.Fatal(err)
	}
	m := ir.FromNN("ad", net, fixed.Q8_8)
	svc := New(ServiceOptions{})
	defer svc.Close()
	dep, err := svc.DeployPipeline(
		&Pipeline{Platform: "taurus", Apps: []AppResult{{Name: "ad", Algorithm: "dnn", Model: m}}},
		DeployOptions{BatchSize: 32, MaxDelay: -1},
	)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	// Worker goroutines must not call b.Fatal (FailNow is only legal on
	// the benchmark goroutine); collect the first error and fail after.
	var (
		errOnce     sync.Once
		classifyErr error
	)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := dep.Classify(x); err != nil {
				errOnce.Do(func() { classifyErr = err })
				return
			}
		}
	})
	b.StopTimer()
	if classifyErr != nil {
		b.Fatal(classifyErr)
	}
	st := dep.Stats()
	b.ReportMetric(st.MeanBatch, "mean_batch")
	b.ReportMetric(float64(st.Dropped), "dropped")
}

// BenchmarkServiceSubmit measures the admission hot path of the job
// service: Submit must be enqueue-only (validate + clone + ticket), with
// no loading, hashing, or searching — the <1ms budget of the job-based
// API. The single dispatch slot is pinned by a never-dispatched blocker,
// so every measured submission is admitted, queued, and then withdrawn.
func BenchmarkServiceSubmit(b *testing.B) {
	svc := New(ServiceOptions{MaxInFlight: 1, QueueDepth: -1, RetainJobs: 256})
	defer svc.Close()
	release := make(chan struct{})
	// Deferred (LIFO, before svc.Close) so a b.Fatal anywhere below
	// unblocks the pinned worker instead of deadlocking Close's drain.
	defer close(release)
	blockLoader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		<-release
		return nil, fmt.Errorf("bench blocker")
	})
	blocker := alchemy.Taurus()
	blocker.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "pin", Algorithms: []string{"dtree"}, DataLoader: blockLoader}))
	pin, err := svc.Submit(context.Background(), blocker, WithSearchConfig(fastConfig()))
	if err != nil {
		b.Fatal(err)
	}

	p := alchemy.Taurus()
	p.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "bench", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(50)}))
	cfg := fastConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := svc.Submit(context.Background(), p, WithSearchConfig(cfg))
		if err != nil {
			b.Fatal(err)
		}
		job.Cancel()
	}
	b.StopTimer()
	if mean := b.Elapsed() / time.Duration(b.N); mean > time.Millisecond {
		b.Fatalf("Submit mean latency %v exceeds the 1ms budget", mean)
	}
	pin.Cancel()
}

// BenchmarkServiceSubmitDurable proves the journal does not break the
// admission budget: with a StateDir set, Submit additionally writes one
// unsynced journal record (the fsync is reserved for terminal
// transitions), and its mean latency must stay under the same 1ms
// budget as the in-memory path. Only the Submit calls are timed; the
// per-iteration Cancel (which fsyncs the terminal record) runs off the
// clock.
func BenchmarkServiceSubmitDurable(b *testing.B) {
	if !alchemy.LoaderRegistered("bench_durable_ds") {
		alchemy.RegisterLoader("bench_durable_ds", sampleLoader(50))
	}
	svc, err := Open(ServiceOptions{MaxInFlight: 1, QueueDepth: -1, RetainJobs: 256, StateDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	release := make(chan struct{})
	defer close(release)
	blockLoader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		<-release
		return nil, fmt.Errorf("bench blocker")
	})
	blocker := alchemy.Taurus()
	blocker.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "pin", Algorithms: []string{"dtree"}, DataLoader: blockLoader}))
	pin, err := svc.Submit(context.Background(), blocker, WithSearchConfig(fastConfig()))
	if err != nil {
		b.Fatal(err)
	}

	p := alchemy.Taurus()
	p.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "bench", Algorithms: []string{"dtree"},
		DataLoader: alchemy.NamedLoader("bench_durable_ds")}))
	cfg := fastConfig()
	b.ReportAllocs()
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		b.StartTimer()
		job, err := svc.Submit(context.Background(), p, WithSearchConfig(cfg))
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		job.Cancel()
	}
	if mean := b.Elapsed() / time.Duration(b.N); mean > time.Millisecond {
		b.Fatalf("durable Submit mean latency %v exceeds the 1ms budget", mean)
	}
	pin.Cancel()
}

// BenchmarkTuneAutopilot runs the serving autotuner against the
// deterministic analytic landscape and sweeps the published coarse knob
// grid (the AutoTM-style yardstick), reporting how far the tuner's
// chosen config falls short of the best grid point — within_pct is the
// worst relative gap across {throughput, p99}, clamped at 0 when the
// tuner wins. CI's bench-compare job asserts within_pct <= 10. The sim
// evaluator (not wall-clock replay) keeps the metric noise-free.
func BenchmarkTuneAutopilot(b *testing.B) {
	eval := tune.SimEvaluator()
	slo, err := tune.ParseSLO("p99<=2ms,drops=0")
	if err != nil {
		b.Fatal(err)
	}
	opts := tune.Options{Seed: 9, Budget: 24, MaxShards: 8, SLO: slo, Evaluate: eval}
	var rep *tune.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep, err = tune.Run(context.Background(), nil, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	grid, err := tune.Grid(context.Background(), eval, slo, tune.CoarseGrid(8))
	if err != nil {
		b.Fatal(err)
	}
	bestTput, bestP99 := 0.0, math.MaxFloat64
	for _, c := range grid {
		if !c.Feasible {
			continue
		}
		bestTput = math.Max(bestTput, c.Metrics.Throughput)
		bestP99 = math.Min(bestP99, float64(c.Metrics.P99))
	}
	if bestTput == 0 {
		b.Fatal("no feasible grid point — the landscape or SLO regressed")
	}
	chosen := rep.Chosen.Metrics
	gapTput := 100 * (bestTput - chosen.Throughput) / bestTput
	gapP99 := 100 * (float64(chosen.P99) - bestP99) / bestP99
	within := math.Max(0, math.Max(gapTput, gapP99))
	b.ReportMetric(within, "within_pct")
	b.ReportMetric(chosen.Throughput, "tuner_tput")
	b.ReportMetric(bestTput, "grid_tput")
	b.ReportMetric(float64(chosen.P99)/1e3, "tuner_p99_us")
	b.ReportMetric(bestP99/1e3, "grid_p99_us")
	b.ReportMetric(float64(len(rep.Front)), "front_size")
}
