package homunculus

// Autopilot serving: the Service-level face of internal/tune. Tune
// replays a trace against sandboxed serving runtimes of a compiled
// model under Bayesian-optimized candidate configs, and returns the
// Pareto frontier over {p99, throughput, drop rate} plus the chosen
// canonical ServingConfig meeting the SLO. TuneEndpoint tunes a live
// endpoint's stable model and can apply the winner in place over the
// atomic rollout path. See docs/tuning.md.

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/tune"
)

// ErrTuneInfeasible reports that no evaluated configuration met the
// SLO; errors.As against *TuneInfeasibleError for the closest miss.
var ErrTuneInfeasible = tune.ErrInfeasible

// TuneInfeasibleError carries the SLO, its violations at the closest
// miss, and that closest-miss candidate.
type TuneInfeasibleError = tune.InfeasibleError

// TuneReport is the tuner's result: the evaluated candidates, the
// Pareto frontier, and the chosen feasible config.
type TuneReport = tune.Report

// TuneOptions shapes a tuning run. Zero values select defaults.
type TuneOptions struct {
	// SLO is the comma-separated objective bound list, e.g.
	// "p99<=2ms,drops=0" (see docs/tuning.md for the full syntax).
	// Required.
	SLO string
	// Seed fixes the optimizer's randomness: same seed + same trace =
	// same frontier and chosen config.
	Seed int64
	// Budget caps total candidate evaluations (default 24, min 4).
	Budget int
	// Clients is the replay concurrency (default 8).
	Clients int
	// MaxShards bounds the shard-count axis (default GOMAXPROCS).
	MaxShards int
	// App selects the application to tune in a multi-model pipeline
	// (Service.Tune only; empty = first deployable).
	App string
	// Trace is the feature-vector workload to replay. Nil generates a
	// deterministic synthetic trace of TraceSamples uniform vectors.
	Trace [][]float64
	// TraceSamples sizes the synthetic trace (default 512).
	TraceSamples int
	// Apply, on TuneEndpoint, applies the chosen config to the endpoint
	// through the atomic rollout path once tuning succeeds.
	Apply bool
}

// syntheticTrace builds a deterministic workload: n uniform vectors in
// [-1,1)^inputs from the given seed.
func syntheticTrace(inputs, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, inputs)
		for d := range x {
			x[d] = rng.Float64()*2 - 1
		}
		xs[i] = x
	}
	return xs
}

// tuneModel runs the offline tuner over one model.
func tuneModel(ctx context.Context, model *ir.Model, opts TuneOptions) (*TuneReport, error) {
	slo, err := tune.ParseSLO(opts.SLO)
	if err != nil {
		return nil, fmt.Errorf("homunculus: tune: %w", err)
	}
	xs := opts.Trace
	if xs == nil {
		n := opts.TraceSamples
		if n <= 0 {
			n = 512
		}
		xs = syntheticTrace(model.Inputs, n, opts.Seed)
	}
	return tune.Run(ctx, model, xs, tune.Options{
		Seed:      opts.Seed,
		Budget:    opts.Budget,
		SLO:       slo,
		Clients:   opts.Clients,
		MaxShards: opts.MaxShards,
	})
}

// Tune runs the offline serving tuner against a finished job's
// compiled model without touching any live endpoint: candidate
// configs serve the trace in sandboxed runtimes, and the report's
// Chosen.Config is ready to pass as DeployOptions.Serving or PUT to
// an endpoint's config route. Fails with ErrTuneInfeasible (wrapping
// a *TuneInfeasibleError) when nothing meets the SLO.
func (s *Service) Tune(ctx context.Context, jobID string, opts TuneOptions) (*TuneReport, error) {
	pipe, err := s.jobPipeline(jobID)
	if err != nil {
		return nil, err
	}
	app, err := selectApp(pipe, opts.App)
	if err != nil {
		return nil, err
	}
	return tuneModel(ctx, app.Model, opts)
}

// TuneEndpoint tunes a live endpoint's stable model. The endpoint
// keeps serving untouched while candidates replay in sandboxed
// runtimes; with opts.Apply the chosen config is then applied through
// the endpoint's atomic rollout path (ApplyConfig), so the previous
// configuration stays one Rollback away.
func (s *Service) TuneEndpoint(ctx context.Context, name string, opts TuneOptions) (*TuneReport, error) {
	e, ok := s.Endpoint(name)
	if !ok {
		return nil, fmt.Errorf("homunculus: tune: no such endpoint %q", name)
	}
	model := e.Model()
	if model == nil {
		return nil, ErrEndpointClosed
	}
	rep, err := tuneModel(ctx, model, opts)
	if err != nil {
		return rep, err
	}
	if opts.Apply {
		if _, err := e.ApplyConfig(rep.Chosen.Config); err != nil {
			return rep, fmt.Errorf("homunculus: tune: apply chosen config: %w", err)
		}
	}
	return rep, nil
}
