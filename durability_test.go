package homunculus

// In-process tests for the durable service: artifact read/write-through,
// journal recovery of interrupted jobs, endpoint restoration from the
// manifest, and graceful degradation under injected store faults. The
// cross-process crash tests (SIGKILL against a real daemon) live in
// crash_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/alchemy"
	"repro/internal/store"
)

// durableLoaderName is the catalog name the durability tests submit
// under — journal recovery needs a spec with a wire form, which means
// catalog (named) data loaders.
const durableLoaderName = "durable_test_ds"

func durablePlatform(t *testing.T) *alchemy.Platform {
	t.Helper()
	if !alchemy.LoaderRegistered(durableLoaderName) {
		alchemy.RegisterLoader(durableLoaderName, sampleLoader(11))
	}
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "durable_app", Algorithms: []string{"dtree"},
		DataLoader: alchemy.NamedLoader(durableLoaderName)})
	p := alchemy.Taurus()
	p.Schedule(model)
	return p
}

// mustOpen opens a durable service over dir and fails the test on error.
func mustOpen(t *testing.T, dir string, fs store.FS) *Service {
	t.Helper()
	svc, err := Open(ServiceOptions{MaxInFlight: 2, StateDir: dir, StateFS: fs})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return svc
}

// runJob submits the durable platform and waits for its pipeline.
func runJob(t *testing.T, svc *Service) (*Job, *Pipeline) {
	t.Helper()
	job, err := svc.Submit(context.Background(), durablePlatform(t), WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	pipe, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return job, pipe
}

func TestDurableResubmitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)
	job1, pipe1 := runJob(t, svc)
	raw1, err := MarshalPipeline(pipe1)
	if err != nil {
		t.Fatal(err)
	}
	hash1 := job1.Status().SpecHash
	if hash1 == "" {
		t.Fatal("durable job has no spec hash")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Same state dir, new process-equivalent: the identical submission
	// must resolve from the artifact store — warm hit, zero search
	// events, byte-identical pipeline document.
	svc2 := mustOpen(t, dir, nil)
	defer svc2.Close()
	rep := svc2.Recovery()
	if len(rep.JobsRecovered) != 1 || rep.JobsRecovered[0] != job1.ID() {
		t.Fatalf("recovery report: %+v", rep)
	}
	if len(rep.JobsRequeued) != 0 {
		t.Fatalf("a completed job must not re-run: %+v", rep)
	}
	job2, err := svc2.Submit(context.Background(), durablePlatform(t), WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	pipe2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := job2.Status()
	if !st.CacheHit {
		t.Fatal("resubmission after restart must be a cache hit")
	}
	if st.SpecHash != hash1 {
		t.Fatalf("spec hash changed across restart: %s vs %s", st.SpecHash, hash1)
	}
	if len(st.Stages) != 0 {
		t.Fatalf("warm hit must emit no pipeline events, got %v", st.Stages)
	}
	raw2, err := MarshalPipeline(pipe2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("recovered pipeline is not byte-identical to the original")
	}
	// New jobs must number past the journaled history.
	if job2.ID() == job1.ID() {
		t.Fatalf("job ID collision across restart: %s", job2.ID())
	}
	if svc2.StoreErrors() != 0 {
		t.Fatalf("clean restart absorbed %d store errors", svc2.StoreErrors())
	}
}

func TestDurableInterruptedJobReruns(t *testing.T) {
	dir := t.TempDir()

	// Simulate a crash mid-job: journal an admission with no terminal
	// record, exactly what a SIGKILL between dispatch and completion
	// leaves behind.
	st, _, _, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := alchemy.MarshalPlatform(durablePlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	search, err := marshalSearchConfig(fastConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{Op: store.OpSubmitted, Job: "job-000007", Platform: "taurus", Spec: spec, Search: search}
	if err := st.Journal.Append(rec, true); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Append(store.Record{Op: store.OpRunning, Job: "job-000007"}, false); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	svc := mustOpen(t, dir, nil)
	defer svc.Close()
	rep := svc.Recovery()
	if len(rep.JobsRequeued) != 1 || rep.JobsRequeued[0] != "job-000007" {
		t.Fatalf("interrupted job not requeued: %+v", rep)
	}
	job, ok := svc.Job("job-000007")
	if !ok {
		t.Fatal("recovered job not reachable under its original ID")
	}
	pipe, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("recovered job failed: %v", err)
	}
	if pipe == nil || len(pipe.Apps) == 0 || pipe.Apps[0].Model == nil {
		t.Fatalf("recovered job produced no model: %+v", pipe)
	}
	// Fresh submissions number past the recovered ID.
	job2, err := svc.Submit(context.Background(), durablePlatform(t), WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if job2.ID() <= "job-000007" {
		t.Fatalf("fresh job ID %s does not advance past recovered job-000007", job2.ID())
	}
	if _, err := job2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDurableJournalCompactsOnRecovery(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)
	runJob(t, svc)
	runJob(t, svc) // warm-cache duplicate: two more records
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc2 := mustOpen(t, dir, nil)
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
	// Both jobs completed, so recovery compacts the journal to empty.
	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(raw)) != 0 {
		t.Fatalf("journal not compacted after clean recovery:\n%s", raw)
	}
}

func TestDurableEndpointSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)
	job, _ := runJob(t, svc)
	ep, err := svc.CreateEndpoint("detector", job.ID(), EndpointOptions{BatchSize: 8, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{1.4, -0.9, 0.1}, {0.1, 0.2, -1.2}, {2.0, -1.5, 0.4}}
	want := make([]int, len(probe))
	for i, x := range probe {
		if want[i], err = ep.Classify(x); err != nil {
			t.Fatal(err)
		}
	}
	// A live 25% canary at crash time must come back as one.
	if _, err := ep.Rollout(job.ID(), RolloutOptions{CanaryPercent: 25}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := mustOpen(t, dir, nil)
	defer svc2.Close()
	rep := svc2.Recovery()
	if len(rep.EndpointsRestored) != 1 || rep.EndpointsRestored[0] != "detector" {
		t.Fatalf("endpoint not restored: %+v", rep)
	}
	ep2, ok := svc2.Endpoint("detector")
	if !ok {
		t.Fatal("restored endpoint not reachable by name")
	}
	if stable, canary, pct, _ := ep2.View(); stable != 1 || canary != 2 || pct != 25 {
		t.Fatalf("restored routing: stable %d canary %d pct %d", stable, canary, pct)
	}
	// The canary serves the same model, so every class must match the
	// pre-crash answers bit-for-bit regardless of routing.
	for i, x := range probe {
		got, err := ep2.Classify(x)
		if err != nil || got != want[i] {
			t.Fatalf("restored endpoint diverges on %v: %d vs %d (%v)", x, got, want[i], err)
		}
	}
	// Revision metadata survives: job ID, app, lifecycle state.
	revs := ep2.Revisions()
	if len(revs) != 2 || revs[0].JobID != job.ID() || revs[0].App != "durable_app" {
		t.Fatalf("restored revisions: %+v", revs)
	}
	// The lifecycle keeps working after restore.
	if err := ep2.Promote(); err != nil {
		t.Fatal(err)
	}
	if stable, _, _, _ := ep2.View(); stable != 2 {
		t.Fatalf("promote after restore: stable %d", stable)
	}
}

func TestDurableEndpointDeletionPersists(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)
	job, _ := runJob(t, svc)
	if _, err := svc.CreateEndpoint("ephemeral", job.ID(), EndpointOptions{BatchSize: 8, MaxDelay: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.DeleteEndpoint("ephemeral"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc2 := mustOpen(t, dir, nil)
	defer svc2.Close()
	if _, ok := svc2.Endpoint("ephemeral"); ok {
		t.Fatal("deleted endpoint came back after restart")
	}
}

func TestDurableStoreFaultsDegradeGracefully(t *testing.T) {
	dir := t.TempDir()
	ffs := store.NewFaultFS(nil)
	svc := mustOpen(t, dir, ffs)
	defer svc.Close()

	// Every write fails from here on (ENOSPC): journaling and artifact
	// writes break, compilation must not.
	ffs.FailWrites(0)
	_, pipe := runJob(t, svc)
	if pipe == nil || len(pipe.Apps) == 0 || pipe.Apps[0].Model == nil {
		t.Fatalf("compilation failed under store faults: %+v", pipe)
	}
	if svc.StoreErrors() == 0 {
		t.Fatal("absorbed store failures must be counted")
	}
	// Endpoints still work; persistence failures are absorbed too.
	jobs := svc.Jobs()
	ep, err := svc.CreateEndpoint("faulty", jobs[0].ID(), EndpointOptions{BatchSize: 8, MaxDelay: -1})
	if err != nil {
		t.Fatalf("CreateEndpoint under store faults: %v", err)
	}
	if _, err := ep.Classify([]float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}

	// Heal the filesystem: subsequent work persists cleanly.
	ffs.Disarm()
	errsBefore := svc.StoreErrors()
	runJob(t, svc)
	if svc.StoreErrors() != errsBefore {
		t.Fatalf("healed store still absorbing errors: %d -> %d", errsBefore, svc.StoreErrors())
	}
}

func TestDurableCorruptArtifactRecompiles(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)
	job1, pipe1 := runJob(t, svc)
	hash := job1.Status().SpecHash
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip bytes in the stored artifact. The digest check must catch it:
	// the entry is quarantined and the resubmission recompiles.
	path := filepath.Join(dir, "artifacts", hash+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := mustOpen(t, dir, nil)
	defer svc2.Close()
	job2, err := svc2.Submit(context.Background(), durablePlatform(t), WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	pipe2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatalf("recompile after corruption failed: %v", err)
	}
	if job2.Status().CacheHit {
		t.Fatal("a corrupt artifact must never be served as a cache hit")
	}
	// Deterministic pipeline: the recompile matches the original.
	raw1, _ := MarshalPipeline(pipe1)
	raw2, _ := MarshalPipeline(pipe2)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("recompiled pipeline differs from the pre-corruption original")
	}
	// The poisoned entry was quarantined, and the fresh compile rewrote
	// a clean artifact the next restart can serve.
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("corrupt artifact not quarantined: %v %v", ents, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if clean, readErr := os.ReadFile(path); readErr == nil {
			var doc map[string]any
			if json.Unmarshal(clean, &doc) == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("clean artifact was not rewritten after recompilation")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
