package homunculus

// The canonical serving-config surface: ServingConfig is the one
// artifact that names every serving knob — replacing the flat fields
// scattered across DeployOptions, the wire JSON and the CLI flags —
// and the unit the tuner emits, the manifest persists, and
// `PUT /v1/endpoints/{name}/config` applies. See docs/tuning.md.

import (
	"fmt"

	"repro/internal/serve"
	"repro/internal/store"
)

// ServingConfig is the canonical, versioned serving configuration
// (see serve.ServingConfig for field semantics and accepted ranges).
// The zero value means current defaults; MaxDelayNS is presence-aware,
// so an explicit zero (greedy flush) survives rollouts.
type ServingConfig = serve.ServingConfig

// ServingConfigError lists every validation violation in a
// ServingConfig (errors.As target).
type ServingConfigError = serve.ConfigError

// ParseServingConfig decodes and validates a canonical config
// document, rejecting unknown fields.
func ParseServingConfig(data []byte) (ServingConfig, error) {
	return serve.ParseConfig(data)
}

// servingOptions resolves a deploy/create request's runtime bounds:
// the canonical Serving config wins wholesale when present (the flat
// legacy knobs are ignored); otherwise the flat knobs apply with their
// historical zero-means-default semantics.
func servingOptions(o DeployOptions) (serve.Options, error) {
	if o.Serving != nil {
		if err := o.Serving.Validate(); err != nil {
			return serve.Options{}, err
		}
		return o.Serving.Options(), nil
	}
	return serve.Options{
		Shards:        o.Shards,
		BatchSize:     o.BatchSize,
		MaxDelay:      o.MaxDelay,
		QueueDepth:    o.QueueDepth,
		RetainRetired: o.RetainRetired,
	}, nil
}

// validateRollouts resolves the rollout-validation gate of a request.
func validateRollouts(o DeployOptions) bool {
	return o.ValidateRollouts || (o.Serving != nil && o.Serving.ValidateRollouts)
}

// servingRecord persists the requested bounds (zero fields stay zero —
// defaults are re-derived on restore).
func servingRecord(o DeployOptions) store.OptionsRecord {
	if o.Serving == nil {
		r := optionsRecord(o)
		return r
	}
	return configRecord(*o.Serving)
}

// configRecord renders a canonical config in its persisted form.
func configRecord(c ServingConfig) store.OptionsRecord {
	r := store.OptionsRecord{
		Shards:           c.Shards,
		BatchSize:        c.BatchSize,
		QueueDepth:       c.QueueDepth,
		RetainRetired:    c.RetainRetired,
		AdaptiveFlush:    c.AdaptiveFlush,
		ValidateRollouts: c.ValidateRollouts,
	}
	if c.MaxDelayNS != nil {
		r.MaxDelayNS = *c.MaxDelayNS
		r.MaxDelaySet = true
	}
	return r
}

// recordConfig is the inverse of configRecord, for per-revision
// config readback.
func recordConfig(r store.OptionsRecord) ServingConfig {
	c := ServingConfig{
		Version:          serve.ConfigVersion,
		Shards:           r.Shards,
		BatchSize:        r.BatchSize,
		QueueDepth:       r.QueueDepth,
		RetainRetired:    r.RetainRetired,
		AdaptiveFlush:    r.AdaptiveFlush,
		ValidateRollouts: r.ValidateRollouts,
	}
	if r.MaxDelaySet || r.MaxDelayNS != 0 {
		ns := r.MaxDelayNS
		c.MaxDelayNS = &ns
	}
	return c
}

// ServingConfig returns the endpoint's live effective configuration —
// every field resolved, suitable for GET /v1/endpoints/{name}/config
// and as the base document to edit and re-apply.
func (e *Endpoint) ServingConfig() ServingConfig {
	c := serve.ConfigFromOptions(e.ep.Options())
	c.Version = serve.ConfigVersion
	e.mu.Lock()
	c.ValidateRollouts = e.validate
	e.mu.Unlock()
	return c
}

// RevisionConfigs returns each revision's requested runtime overrides
// (zero fields inherited the endpoint defaults at rollout time).
func (e *Endpoint) RevisionConfigs() map[int]ServingConfig {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]ServingConfig, len(e.meta))
	for id, m := range e.meta {
		out[id] = recordConfig(m.opts)
	}
	return out
}

// ApplyConfig replaces the endpoint's serving configuration with cfg —
// complete-document semantics: the posted config IS the new config,
// zero fields meaning defaults, not "keep the old value" (GET, edit,
// PUT round-trips losslessly). The change rides the atomic rollout
// path: the stable model is re-served as a fresh revision with the new
// bounds and promoted in one routing-table swap, so the previous
// configuration stays one Rollback away. Fails with a
// *ServingConfigError listing violations, or ErrRolloutActive while a
// canary/shadow rollout is in flight.
func (e *Endpoint) ApplyConfig(cfg ServingConfig) (RevisionInfo, error) {
	if err := cfg.Validate(); err != nil {
		return RevisionInfo{}, err
	}
	stable, _, _, _ := e.ep.View()
	e.mu.Lock()
	prev := e.meta[stable]
	e.mu.Unlock()
	rev, err := e.ep.Reconfigure(cfg.Options())
	if err != nil {
		return RevisionInfo{}, fmt.Errorf("homunculus: apply config on %s: %w", e.name, err)
	}
	rec := configRecord(cfg)
	e.mu.Lock()
	e.meta[rev.ID] = revisionMeta{jobID: prev.jobID, app: prev.app, specHash: prev.specHash, opts: rec}
	e.reqOpts = rec
	e.validate = cfg.ValidateRollouts
	e.mu.Unlock()
	e.svc.persistEndpoints()
	return RevisionInfo{
		ID: rev.ID, JobID: prev.jobID, App: prev.app,
		State: RevisionState(serve.RevStable), Created: rev.Created, Warm: true,
	}, nil
}
