package homunculus

// Validate-stage tests: WithValidation flows end to end through Submit —
// the verdict rides the job result, participates in the cache key (a
// validated submission is never served an unvalidated cached pipeline),
// and survives a daemon restart with the rest of the job.

import (
	"context"
	"testing"

	"repro/alchemy"
)

// submitValidated compiles one dtree pipeline on svc, with or without
// the validate stage, and returns the finished pipeline.
func submitValidated(t *testing.T, svc *Service, seed int64, validated bool) (*Job, *Pipeline) {
	t.Helper()
	p := alchemy.Taurus()
	p.Schedule(alchemy.NewModel(alchemy.ModelSpec{
		Name: "vs", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(seed)}))
	opts := []Option{WithSearchConfig(fastConfig())}
	if validated {
		opts = append(opts, WithValidation())
	}
	job, err := svc.Submit(context.Background(), p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return job, pipe
}

// TestValidateStageAttachesVerdict: a validated submission's result
// carries a clean differential verdict covering every evaluator the
// model family has (dtree on taurus: ir, p4, spatial).
func TestValidateStageAttachesVerdict(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 1})
	t.Cleanup(func() { _ = svc.Close() })

	_, pipe := submitValidated(t, svc, 11, true)
	v := pipe.Apps[0].Validation
	if !v.OK() {
		t.Fatalf("verdict: %s", v.String())
	}
	if v.Inputs < validationTraffic {
		t.Fatalf("traffic %d, want >= %d (fixed traffic + boundary probes)", v.Inputs, validationTraffic)
	}
	want := map[string]bool{"ir": true, "p4": true, "spatial": true}
	for _, e := range v.Evaluators {
		delete(want, e)
	}
	if len(want) != 0 {
		t.Fatalf("evaluators %v missing %v", v.Evaluators, want)
	}
}

// TestValidateStageCacheKeySeparation: WithValidation participates in
// the spec hash, so the same spec submitted with and without validation
// resolves to different cache entries — and two validated submissions
// share one.
func TestValidateStageCacheKeySeparation(t *testing.T) {
	svc := New(ServiceOptions{MaxInFlight: 2})
	t.Cleanup(func() { _ = svc.Close() })

	_, plain := submitValidated(t, svc, 11, false)
	if plain.Apps[0].Validation != nil {
		t.Fatalf("unvalidated submission got a verdict: %s", plain.Apps[0].Validation.String())
	}
	_, checked := submitValidated(t, svc, 11, true)
	if !checked.Apps[0].Validation.OK() {
		t.Fatalf("validated submission verdict: %s", checked.Apps[0].Validation.String())
	}
	// A second validated submission is a cache hit that keeps its verdict.
	_, again := submitValidated(t, svc, 11, true)
	if !again.Apps[0].Validation.OK() {
		t.Fatalf("cached validated submission lost its verdict: %s", again.Apps[0].Validation.String())
	}
}

// TestValidateVerdictSurvivesRestart: the verdict is persisted with the
// job's pipeline document, so after a restart the identical validated
// submission warm-hits the artifact store and still carries it.
func TestValidateVerdictSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	svc := mustOpen(t, dir, nil)

	job, pipe := submitValidated(t, svc, 11, true)
	wantInputs := pipe.Apps[0].Validation.Inputs
	id := job.ID()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := mustOpen(t, dir, nil)
	t.Cleanup(func() { _ = svc2.Close() })
	if rep := svc2.Recovery(); len(rep.JobsRecovered) != 1 || rep.JobsRecovered[0] != id {
		t.Fatalf("recovery report: %+v", rep)
	}
	again, rpipe := submitValidated(t, svc2, 11, true)
	if !again.Status().CacheHit {
		t.Fatal("validated resubmission after restart must warm-hit the store")
	}
	v := rpipe.Apps[0].Validation
	if !v.OK() || v.Inputs != wantInputs {
		t.Fatalf("restored verdict: %s (inputs %d, want %d)", v.String(), v.Inputs, wantInputs)
	}
}
