package homunculus

// End-to-end integration tests: the full declarative path (Alchemy →
// optimization core → backend codegen) on every platform, plus
// cross-stage consistency checks that tie the public API's outputs to the
// underlying substrates.

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/alchemy"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/synth/iottc"
	"repro/internal/synth/nslkdd"
	"repro/internal/taurus"
)

func nslkddLoader(samples int, seed int64) alchemy.DataLoader {
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := nslkdd.DefaultConfig()
		cfg.Samples = samples
		cfg.Seed = seed
		train, test, err := nslkdd.TrainTest(cfg)
		if err != nil {
			return nil, err
		}
		d := &alchemy.Data{FeatureNames: train.FeatureNames}
		for i := 0; i < train.Len(); i++ {
			d.TrainX = append(d.TrainX, append([]float64{}, train.X.Row(i)...))
			d.TrainY = append(d.TrainY, train.Y[i])
		}
		for i := 0; i < test.Len(); i++ {
			d.TestX = append(d.TestX, append([]float64{}, test.X.Row(i)...))
			d.TestY = append(d.TestY, test.Y[i])
		}
		return d, nil
	})
}

func iottcLoader(samples int, seed int64) alchemy.DataLoader {
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := iottc.DefaultConfig()
		cfg.Samples = samples
		cfg.Seed = seed
		train, test, err := iottc.TrainTest(cfg)
		if err != nil {
			return nil, err
		}
		d := &alchemy.Data{FeatureNames: train.FeatureNames}
		for i := 0; i < train.Len(); i++ {
			d.TrainX = append(d.TrainX, append([]float64{}, train.X.Row(i)...))
			d.TrainY = append(d.TrainY, train.Y[i])
		}
		for i := 0; i < test.Len(); i++ {
			d.TestX = append(d.TestX, append([]float64{}, test.X.Row(i)...))
			d.TestY = append(d.TestY, test.Y[i])
		}
		return d, nil
	})
}

func integrationSearch() core.SearchConfig {
	cfg := core.DefaultSearchConfig()
	cfg.BO.InitSamples = 3
	cfg.BO.Iterations = 4
	cfg.BO.Candidates = 100
	cfg.MaxHiddenLayers = 2
	cfg.MaxNeurons = 10
	cfg.TrainEpochs = 8
	return cfg
}

// TestEndToEndADOnTaurus is the Figure-3 scenario through the public API,
// with every cross-stage invariant checked: the reported metric must be
// achievable by the shipped model, the resource verdict must match a
// fresh backend estimate, and the pipeline simulator must agree with the
// quantized executor.
func TestEndToEndADOnTaurus(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:               "anomaly_detection",
		OptimizationMetric: "f1",
		Algorithms:         []string{"dnn"},
		DataLoader:         nslkddLoader(2000, 1),
	})
	platform := alchemy.Taurus()
	platform.Constrain(alchemy.Constraints{
		Performance: alchemy.Performance{ThroughputGPkts: 1, LatencyNS: 500},
		Resources:   alchemy.Resources{Rows: 16, Cols: 16},
	})
	platform.Schedule(model)
	pipe, err := Generate(context.Background(), platform, WithSearchConfig(integrationSearch()))
	if err != nil {
		t.Fatal(err)
	}
	app := pipe.Apps[0]
	if app.Model == nil {
		t.Fatal("AD pipeline must compile")
	}
	if app.Metric < 0.6 {
		t.Fatalf("AD F1 %v implausibly low", app.Metric)
	}

	// Verdict must be reproducible from the model alone.
	target := backend.NewTaurusTarget()
	fresh, err := target.Estimate(stripNormIntegration(app.Model))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Metrics["cus"] != app.Verdict.Metrics["cus"] || fresh.Metrics["mus"] != app.Verdict.Metrics["mus"] {
		t.Fatalf("verdict not reproducible: %+v vs %+v", fresh.Metrics, app.Verdict.Metrics)
	}

	// The pipeline simulator must agree with the quantized executor on
	// fresh traffic and with the analytic stage count.
	sim, err := taurus.NewSim(taurus.DefaultGrid(), app.Model)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sim.Stages()) != app.Verdict.Metrics["stages"] {
		t.Fatalf("sim %d stages, verdict says %v", sim.Stages(), app.Verdict.Metrics["stages"])
	}
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 200
	cfg.Seed = 99
	probe, err := nslkdd.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < probe.Len(); i++ {
		want, _ := app.Model.InferQ(probe.X.Row(i))
		got, _, err := sim.Process(probe.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("simulator and executor disagree at %d", i)
		}
	}

	// Generated code must reference the model's architecture.
	if !strings.Contains(app.Code, "@spatial") || !strings.Contains(app.Code, "anomaly_detection") {
		t.Fatal("generated code malformed")
	}

	// Serve the compiled pipeline on live traffic: deploy through the
	// service, replay fresh synthetic samples, and require the served
	// answers to match the bit-accurate quantized executor with stats
	// accounting for every request.
	svc := New(ServiceOptions{})
	defer svc.Close()
	dep, err := svc.DeployPipeline(pipe, DeployOptions{BatchSize: 16, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, probe.Len())
	for i := range rows {
		rows[i] = probe.X.Row(i)
	}
	classes, dropped, err := dep.ClassifyBatch(rows)
	if err != nil || dropped != 0 {
		t.Fatalf("serve replay: err=%v dropped=%d", err, dropped)
	}
	for i, c := range classes {
		want, _ := app.Model.InferQ(probe.X.Row(i))
		if c != want {
			t.Fatalf("served class %d diverges from InferQ at %d", c, i)
		}
	}
	if st := dep.Stats(); st.Completed < uint64(probe.Len()) || st.P99 == 0 {
		t.Fatalf("serving stats must cover the replay with nonzero p99: %+v", st)
	}
}

func stripNormIntegration(m *ir.Model) *ir.Model {
	c := *m
	c.Mean, c.Std = nil, nil
	return &c
}

// TestEndToEndAllPlatforms compiles the same declaration against each
// backend family.
func TestEndToEndAllPlatforms(t *testing.T) {
	cases := []struct {
		name     string
		platform *alchemy.Platform
		algs     []string
		metric   string
		codeSig  string
	}{
		{"taurus", alchemy.Taurus(), []string{"dtree"}, "f1", "@spatial"},
		{"tofino", alchemy.Tofino(), []string{"dtree"}, "f1", "v1model"},
		{"fpga", alchemy.FPGA(), []string{"dnn"}, "f1", "@spatial"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model := alchemy.NewModel(alchemy.ModelSpec{
				Name:               "ad_" + tc.name,
				OptimizationMetric: tc.metric,
				Algorithms:         tc.algs,
				DataLoader:         nslkddLoader(1200, 2),
			})
			tc.platform.Schedule(model)
			pipe, err := Generate(context.Background(), tc.platform, WithSearchConfig(integrationSearch()))
			if err != nil {
				t.Fatal(err)
			}
			app := pipe.Apps[0]
			if app.Model == nil {
				t.Fatalf("%s: no model", tc.name)
			}
			if !strings.Contains(app.Code, tc.codeSig) {
				t.Fatalf("%s: code missing %q", tc.name, tc.codeSig)
			}
			if !app.Verdict.Feasible {
				t.Fatalf("%s: infeasible verdict", tc.name)
			}
		})
	}
}

// TestEndToEndClusteringBudgets runs the Figure-7 path through the public
// API: tighter MAT budgets must never improve the clustering quality.
func TestEndToEndClusteringBudgets(t *testing.T) {
	scores := map[int]float64{}
	for _, tables := range []int{2, 5} {
		model := alchemy.NewModel(alchemy.ModelSpec{
			Name:               "tc",
			OptimizationMetric: "vmeasure",
			Algorithms:         []string{"kmeans"},
			DataLoader:         iottcLoader(1500, 3),
		})
		platform := alchemy.Tofino()
		platform.Constrain(alchemy.Constraints{Resources: alchemy.Resources{Tables: tables}})
		platform.Schedule(model)
		cfg := integrationSearch()
		cfg.BO.Iterations = 8
		pipe, err := Generate(context.Background(), platform, WithSearchConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if pipe.Apps[0].Model == nil {
			t.Fatalf("%d tables: no model", tables)
		}
		if got := pipe.Apps[0].Verdict.Metrics["tables"]; got > float64(tables) {
			t.Fatalf("%d-table budget violated: used %v", tables, got)
		}
		scores[tables] = pipe.Apps[0].Metric
	}
	// Allow a little search noise (the feasible region of 2 tables is a
	// subset of 5 tables, but the BO trajectories differ once feasibility
	// flags diverge).
	if scores[5] < scores[2]-0.02 {
		t.Fatalf("more tables must not hurt: %v", scores)
	}
}

// TestEndToEndCompositionFeasibility: a composition whose members fit
// individually can still blow the grid collectively; the pipeline-level
// verdict must catch it.
func TestEndToEndCompositionFeasibility(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:       "ad",
		Algorithms: []string{"dnn"},
		DataLoader: nslkddLoader(1200, 4),
	})
	platform := alchemy.Taurus()
	// Tiny grid: one copy fits, six copies cannot.
	platform.Constrain(alchemy.Constraints{Resources: alchemy.Resources{Rows: 6, Cols: 6}})
	platform.Schedule(alchemy.Par(model, model, model, model, model, model))
	cfg := integrationSearch()
	pipe, err := Generate(context.Background(), platform, WithSearchConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Apps[0].Model == nil {
		t.Fatal("single model must fit the small grid")
	}
	if pipe.Composition == nil {
		t.Fatal("composition verdict missing")
	}
	if pipe.Composition.Feasible {
		t.Fatal("six copies must not fit a 6x6 grid")
	}
	if pipe.Composition.Reason == "" {
		t.Fatal("infeasible composition must explain itself")
	}
}
