package homunculus

// Job is the asynchronous handle a Service.Submit returns: identity,
// a state machine (queued → running → done/failed/cancelled), a
// per-stage progress snapshot built from the pipeline's Event stream,
// an event subscription feed, and the terminal result.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/jobqueue"
)

// JobState is one point of the job lifecycle.
type JobState string

// Job lifecycle states.
const (
	// JobQueued: admitted, waiting for a dispatch slot.
	JobQueued JobState = "queued"
	// JobRunning: compiling (or resolving from the cache).
	JobRunning JobState = "running"
	// JobDone: finished with a Pipeline.
	JobDone JobState = "done"
	// JobFailed: finished with a non-cancellation error.
	JobFailed JobState = "failed"
	// JobCancelled: cancelled (or deadline-expired) before completing.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// StageProgress counts the start and completion events one pipeline
// stage has emitted (per app, plus candidate-level events for search).
type StageProgress struct {
	Started int `json:"started"`
	Done    int `json:"done"`
}

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	ID       string
	Platform string
	State    JobState
	// CacheHit is true when the result came from the content-addressed
	// cache (including single-flight coalescing onto a concurrent
	// identical submission) — such jobs emit no pipeline events.
	CacheHit bool
	// SpecHash is the submission's content address (empty until the job
	// dispatches, or always empty on a cache-disabled service).
	SpecHash string
	// Stages maps each pipeline stage to its progress so far.
	Stages map[Stage]StageProgress
	// Err is the terminal error of a failed or cancelled job.
	Err error
}

// ErrJobNotFinished is returned by Job.Result while the job is still
// queued or running.
var ErrJobNotFinished = errors.New("homunculus: job not finished")

// Job is an asynchronous compilation handle. All methods are safe for
// concurrent use.
type Job struct {
	id        string
	platform  string
	cancelCtx context.CancelFunc
	// ctx is the job's run context (derived from the Submit ctx); the
	// cluster fabric's RunLocal fallback executes under it so a client
	// Cancel still lands after a job has been claimed by a peer.
	ctx context.Context

	// onFinish, when set by a durable service before the job can reach a
	// terminal state, runs exactly once after the terminal transition
	// (outside the job's mutex) — it is the write-ahead journal's hook.
	onFinish func(*Job)

	mu       sync.Mutex
	cond     *sync.Cond
	state    JobState
	cacheHit bool
	specHash string
	// wireSpec/wireSearch retain the submission's wire form while the
	// job is queued on a work-sharing service, so peers can steal it
	// (cluster.go). Nil everywhere else.
	wireSpec   []byte
	wireSearch []byte
	stages     map[Stage]*StageProgress
	events     []Event
	cancelled  bool
	ticket     *jobqueue.Ticket
	pipe       *Pipeline
	err        error
	done       chan struct{}
}

func newJob(id, platform string, cancel context.CancelFunc) *Job {
	j := &Job{
		id:        id,
		platform:  platform,
		cancelCtx: cancel,
		state:     JobQueued,
		stages:    map[Stage]*StageProgress{},
		done:      make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// ID returns the service-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Platform returns the declared platform kind.
func (j *Job) Platform() string { return j.platform }

// Status returns a snapshot of the job's state and per-stage progress.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Platform: j.platform,
		State:    j.state,
		CacheHit: j.cacheHit,
		SpecHash: j.specHash,
		Stages:   make(map[Stage]StageProgress, len(j.stages)),
		Err:      j.err,
	}
	for stage, p := range j.stages {
		st.Stages[stage] = *p
	}
	return st
}

// Events returns a subscription to the job's progress events. The
// channel first replays every event emitted so far, then follows the
// live stream, and closes once the job is terminal and the log is
// drained. Consumers must drain the channel (its feeding goroutine
// blocks on an abandoned subscriber until the job ends).
func (j *Job) Events() <-chan Event {
	ch := make(chan Event, 16)
	go func() {
		defer close(ch)
		i := 0
		j.mu.Lock()
		for {
			for i >= len(j.events) && !j.state.Terminal() {
				j.cond.Wait()
			}
			if i >= len(j.events) {
				j.mu.Unlock()
				return
			}
			ev := j.events[i]
			i++
			j.mu.Unlock()
			ch <- ev
			j.mu.Lock()
		}
	}()
	return ch
}

// Wait blocks until the job is terminal or ctx is done, returning the
// compiled pipeline or the job's terminal error. A ctx expiry only stops
// the wait — it does not cancel the job (the job's own context, derived
// from the Submit ctx, and Cancel do that).
func (j *Job) Wait(ctx context.Context) (*Pipeline, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		// Prefer the terminal result when both are ready.
		select {
		case <-j.done:
		default:
			return nil, fmt.Errorf("homunculus: wait for job %s: %w", j.id, ctx.Err())
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pipe, j.err
}

// Result returns the terminal outcome without blocking;
// ErrJobNotFinished while the job is still queued or running.
func (j *Job) Result() (*Pipeline, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, ErrJobNotFinished
	}
	return j.pipe, j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel stops the job: a still-queued job is withdrawn and never runs;
// a running one is cancelled through its context and aborts at the next
// cancellation point. Safe to call repeatedly and after completion.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelled = true
	ticket := j.ticket
	j.mu.Unlock()
	if ticket != nil && ticket.Cancel() {
		// Withdrawn before dispatch: the run function will never fire,
		// so the terminal transition happens here.
		j.finish(nil, fmt.Errorf("homunculus: job %s cancelled before dispatch: %w", j.id, context.Canceled))
	}
	j.cancelCtx()
}

// observe records one pipeline event: append to the log, bump the
// stage's counters, wake subscribers. Calls are serialized by the
// pipeline's own progress mutex.
func (j *Job) observe(ev Event) {
	j.mu.Lock()
	p := j.stages[ev.Stage]
	if p == nil {
		p = &StageProgress{}
		j.stages[ev.Stage] = p
	}
	if ev.Done {
		p.Done++
	} else {
		p.Started++
	}
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setRunning transitions queued → running (no-op once terminal).
func (j *Job) setRunning() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
	j.mu.Unlock()
}

// setWire retains the submission's wire form for work stealing.
func (j *Job) setWire(spec, search []byte) {
	j.mu.Lock()
	j.wireSpec, j.wireSearch = spec, search
	j.mu.Unlock()
}

// setSpecHash records the content address once computed.
func (j *Job) setSpecHash(h string) {
	j.mu.Lock()
	j.specHash = h
	j.mu.Unlock()
}

// markCacheHit flags the job as resolved from the cache.
func (j *Job) markCacheHit() {
	j.mu.Lock()
	j.cacheHit = true
	j.mu.Unlock()
}

// finish moves the job to its terminal state exactly once.
func (j *Job) finish(pipe *Pipeline, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.pipe, j.err = pipe, err
	switch {
	case err == nil:
		j.state = JobDone
	case j.cancelled || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = JobCancelled
	default:
		j.state = JobFailed
	}
	j.cond.Broadcast()
	close(j.done)
	j.mu.Unlock()
	// Release the job's context registration in the Submit ctx's tree —
	// without this, every completed job of a long-lived cancellable
	// parent context would stay reachable until the parent dies.
	j.cancelCtx()
	if j.onFinish != nil {
		j.onFinish(j)
	}
}
