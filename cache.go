package homunculus

// Content-addressed result cache with single-flight coalescing.
//
// A compilation is a pure function of its spec — platform kind +
// constraints + schedule + per-model declarations + dataset contents +
// search configuration + seed (fixed-seed output is byte-identical at
// any pool size; see pipeline_test.go) — so a service can answer an
// identical submission with the prior *Pipeline instead of re-searching.
// SpecHash canonicalizes that tuple; the flightCache maps hashes to
// completed pipelines and, crucially, to *in-flight* compilations: N
// concurrent identical submissions elect one leader that compiles while
// the rest park on its completion (single-flight), so the expensive
// search runs exactly once.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/alchemy"
	"repro/internal/bo"
	"repro/internal/core"
)

// specKeyDoc is the canonical form of everything a compilation's result
// depends on. json.Marshal of a struct emits fields in declaration
// order, so the bytes — and the hash — are deterministic.
type specKeyDoc struct {
	Kind        string                  `json:"kind"`
	Constraints alchemy.ConstraintsJSON `json:"constraints"`
	Schedule    *schedKeyNode           `json:"schedule"`
	Search      searchKeyDoc            `json:"search"`
	// Validate distinguishes validated pipelines: the validate stage
	// attaches verdicts to the artifact, so an unvalidated cache entry
	// must not answer a validated submission (omitted when false, so
	// pre-existing hashes are unchanged).
	Validate bool `json:"validate,omitempty"`
}

type schedKeyNode struct {
	Op       string          `json:"op,omitempty"`
	IOMap    string          `json:"iomap,omitempty"`
	Model    *modelKeyDoc    `json:"model,omitempty"`
	Children []*schedKeyNode `json:"children,omitempty"`
}

type modelKeyDoc struct {
	Name       string   `json:"name"`
	Metric     string   `json:"metric"`
	Algorithms []string `json:"algorithms,omitempty"`
	Normalize  bool     `json:"normalize"`
	// Dataset is the loader fingerprint (alchemy.DatasetFingerprint):
	// catalog name when the loader is a named reference, content hash
	// otherwise.
	Dataset string `json:"dataset"`
}

// searchKeyDoc mirrors core.SearchConfig minus its observability-only
// callback (OnCandidate cannot change results, so it must not change the
// key).
type searchKeyDoc struct {
	Algorithms      []string  `json:"algorithms,omitempty"`
	Metric          string    `json:"metric"`
	BO              bo.Config `json:"bo"`
	MaxHiddenLayers int       `json:"max_hidden_layers"`
	MaxNeurons      int       `json:"max_neurons"`
	MaxClusters     int       `json:"max_clusters"`
	TrainEpochs     int       `json:"train_epochs"`
	FormatIntBits   int       `json:"format_int_bits"`
	FormatFracBits  int       `json:"format_frac_bits"`
	Seed            int64     `json:"seed"`
}

// SpecHash returns the content address of a submission: a sha256 over
// the canonical form of the declaration and the effective search
// configuration. Equal hashes mean Generate would produce byte-identical
// pipelines. Anonymous data loaders are fingerprinted by content, which
// costs one Load; catalog references (alchemy.NamedLoader) hash by name.
// Result-affecting options (currently WithValidation) participate in the
// hash; observability options do not.
func SpecHash(p *alchemy.Platform, search core.SearchConfig, opts ...Option) (string, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return specHash(p, search, o.validate, nil)
}

// specHash is SpecHash with an optional per-model fingerprint source
// (the Service memoizes fingerprints across submissions through it).
func specHash(p *alchemy.Platform, search core.SearchConfig, validate bool, fingerprint func(*alchemy.Model) (string, error)) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if fingerprint == nil {
		fingerprint = func(m *alchemy.Model) (string, error) {
			return alchemy.DatasetFingerprint(m.Spec.DataLoader)
		}
	}
	doc := specKeyDoc{Kind: p.Kind.String(), Validate: validate}
	doc.Constraints = alchemy.ConstraintsJSON{
		ThroughputGPkts: p.Constraints.Performance.ThroughputGPkts,
		LatencyNS:       p.Constraints.Performance.LatencyNS,
		Rows:            p.Constraints.Resources.Rows,
		Cols:            p.Constraints.Resources.Cols,
		Tables:          p.Constraints.Resources.Tables,
		MaxLUTPct:       p.Constraints.Resources.MaxLUTPct,
		MaxPowerW:       p.Constraints.Resources.MaxPowerW,
	}

	// Fingerprint each unique model once even when scheduled repeatedly
	// (anonymous loaders pay one Load per unique model, not per leaf).
	prints := map[*alchemy.Model]string{}
	var walk func(s *alchemy.Schedule) (*schedKeyNode, error)
	walk = func(s *alchemy.Schedule) (*schedKeyNode, error) {
		if s == nil {
			return nil, nil
		}
		node := &schedKeyNode{}
		if s.Mapper != nil {
			node.IOMap = s.Mapper.Name
		}
		if s.Model != nil {
			m := s.Model
			fp, ok := prints[m]
			if !ok {
				var err error
				fp, err = fingerprint(m)
				if err != nil {
					return nil, fmt.Errorf("homunculus: model %q: %w", m.Spec.Name, err)
				}
				prints[m] = fp
			}
			node.Model = &modelKeyDoc{
				Name:       m.Spec.Name,
				Metric:     m.Spec.OptimizationMetric,
				Algorithms: m.Spec.Algorithms,
				Normalize:  m.Spec.Normalize == nil || *m.Spec.Normalize,
				Dataset:    fp,
			}
			return node, nil
		}
		switch s.Op {
		case alchemy.OpSeq:
			node.Op = "seq"
		case alchemy.OpPar:
			node.Op = "par"
		}
		for _, ch := range s.Children {
			c, err := walk(ch)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, c)
		}
		return node, nil
	}
	sched, err := walk(p.Sched)
	if err != nil {
		return "", err
	}
	doc.Schedule = sched

	algos := make([]string, 0, len(search.Algorithms))
	for _, k := range search.Algorithms {
		algos = append(algos, k.String())
	}
	doc.Search = searchKeyDoc{
		Algorithms:      algos,
		Metric:          string(search.Metric),
		BO:              search.BO,
		MaxHiddenLayers: search.MaxHiddenLayers,
		MaxNeurons:      search.MaxNeurons,
		MaxClusters:     search.MaxClusters,
		TrainEpochs:     search.TrainEpochs,
		FormatIntBits:   search.Format.IntBits,
		FormatFracBits:  search.Format.FracBits,
		Seed:            search.Seed,
	}

	raw, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("homunculus: canonicalize spec: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// flight is one cache slot: an in-flight or completed compilation.
type flight struct {
	// done closes when pipe/err are final.
	done chan struct{}
	pipe *Pipeline
	err  error
}

// flightCache maps spec hashes to flights. Completed successes stay (up
// to cap, oldest evicted first); failures are removed on completion so a
// later identical submission retries instead of replaying the error.
type flightCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*flight
	order   []string // completed successes, oldest first
}

func newFlightCache(cap int) *flightCache {
	return &flightCache{cap: cap, entries: map[string]*flight{}}
}

// acquire returns the flight for key and whether the caller is its
// leader (the one that must compile and complete it). Non-leaders wait
// on flight.done.
func (c *flightCache) acquire(key string) (f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.entries[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.entries[key] = f
	return f, true
}

// complete finalizes a leader's flight and wakes every waiter.
func (c *flightCache) complete(key string, f *flight, pipe *Pipeline, err error) {
	c.mu.Lock()
	f.pipe, f.err = pipe, err
	if err != nil {
		// Never cache failures: cancellation and transient errors must
		// not poison the key. Waiters observe err and re-acquire.
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		for c.cap > 0 && len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// insert plants an externally produced pipeline as a completed success
// (a broadcast install from a peer). A key with any existing entry — in
// flight or completed — is left alone: the local flight owns it.
func (c *flightCache) insert(key string, pipe *Pipeline) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	f := &flight{done: make(chan struct{}), pipe: pipe}
	close(f.done)
	c.entries[key] = f
	c.order = append(c.order, key)
	for c.cap > 0 && len(c.order) > c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, evict)
	}
}

// peek returns the completed success cached under key without waiting on
// in-flight compilations (a peer asking for an artifact must not block
// behind a leader).
func (c *flightCache) peek(key string) (*Pipeline, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	select {
	case <-f.done:
	default:
		return nil, false
	}
	if f.err != nil || f.pipe == nil {
		return nil, false
	}
	return f.pipe, true
}

// len reports cached + in-flight entries (for tests).
func (c *flightCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
