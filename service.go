package homunculus

// Service is the long-lived compilation front end: bounded admission
// over the staged pipeline, asynchronous Job handles, and a
// content-addressed result cache with single-flight coalescing. It is
// the shape the ROADMAP's "serve heavy traffic from many concurrent
// users" north star needs — Generate/GenerateAcross are now thin
// wrappers over a process-wide default service, and cmd/homunculusd
// exposes the same service over HTTP (docs/api.md).

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/alchemy"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/jobqueue"
	"repro/internal/store"
)

var (
	// ErrServiceClosed rejects submissions to a closed service and is
	// the terminal error of jobs still queued when Close ran.
	ErrServiceClosed = errors.New("homunculus: service closed")
	// ErrQueueFull rejects a submission when the admission backlog is at
	// capacity: shed load at the door instead of queueing unboundedly.
	ErrQueueFull = errors.New("homunculus: admission queue full")
)

// ServiceOptions bounds a service. Zero values select defaults.
type ServiceOptions struct {
	// MaxInFlight caps concurrent compilations (dispatch slots). The
	// searches inside each compilation still share the process-wide
	// worker pool, so this bounds admission, not CPU oversubscription.
	// Default: GOMAXPROCS.
	MaxInFlight int
	// QueueDepth caps jobs admitted but not yet dispatched. Submit
	// returns ErrQueueFull beyond it. Default 64; negative = unbounded.
	QueueDepth int
	// CacheEntries caps completed pipelines kept for content-addressed
	// reuse (oldest evicted first). Default 128; negative disables
	// caching entirely — every submission compiles.
	CacheEntries int
	// RetainJobs caps how many job handles the service keeps reachable
	// by ID: when exceeded, the oldest *terminal* jobs are forgotten
	// (live jobs are never evicted, and handles already held by callers
	// keep working). This bounds a long-lived daemon's memory. Default
	// 4096; negative = retain forever.
	RetainJobs int

	// StateDir makes the service durable: compiled pipelines land in an
	// on-disk content-addressed artifact store, every job transition is
	// journaled write-ahead, and the endpoint table is persisted — Open
	// on the same directory recovers all three (interrupted jobs re-run,
	// completed results serve warm, endpoints resume routing). Empty
	// keeps the service fully in-memory. See docs/operations.md.
	StateDir string
	// StateFS overrides the state directory's filesystem — the fault
	// injection seam (store.FaultFS). Nil uses the OS filesystem.
	StateFS store.FS
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.MaxInFlight < 1 {
		o.MaxInFlight = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 128
	}
	if o.RetainJobs == 0 {
		o.RetainJobs = 4096
	}
	return o
}

// Service admits, deduplicates, schedules, and observes compilations.
// Create one with New; a Service must not be copied.
type Service struct {
	opts  ServiceOptions
	queue *jobqueue.Queue
	cache *flightCache // nil when caching is disabled

	mu     sync.Mutex
	closed bool
	nextID int
	jobs   map[string]*Job
	order  []string // job IDs in admission order

	// Deployments: live serving runtimes over compiled pipelines
	// (deployment.go). Deployments are registered in creation order and
	// drained on Close.
	nextDepID   int
	deployments map[string]*Deployment
	depOrder    []string

	// Endpoints: named serving routes with versioned revisions
	// (endpoint.go). Registered in creation order, drained on Close.
	endpoints map[string]*Endpoint
	epOrder   []string

	// fingerprints memoizes per-model dataset fingerprints so repeated
	// submissions of the same *Model (sweeps, resubmitted specs) do not
	// re-Load anonymous datasets just to hash them.
	fpMu         sync.Mutex
	fingerprints map[*alchemy.Model]string

	// Durability (nil/zero on an in-memory service): the opened state
	// directory, the count of store-layer failures absorbed so far
	// (degraded durability never fails a compilation), and the boot
	// recovery report.
	store     *store.Store
	storeErrs atomic.Uint64
	recovery  RecoveryReport

	// Cluster hooks (cluster.go): the peer fabric's artifact exchange
	// and the work-sharing switch that keeps queued submissions'
	// wire form around for stealing.
	remote      atomic.Pointer[remoteArtifactsBox]
	workSharing atomic.Bool
}

// New constructs a service with the given bounds. It panics when a
// StateDir cannot be opened — durable services should prefer Open, which
// returns the error (and the boot recovery report) instead.
func New(opts ServiceOptions) *Service {
	s, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("homunculus: New with StateDir %q: %v (use Open to handle this error)", opts.StateDir, err))
	}
	return s
}

// Open constructs a service and, when opts.StateDir is set, opens the
// state directory and recovers: jobs interrupted by the previous
// process's death are re-enqueued under their original IDs, completed
// results become warm cache hits straight from the artifact store, and
// named endpoints resume serving their persisted revision history. The
// recovery outcome is reported by Recovery.
func Open(opts ServiceOptions) (*Service, error) {
	o := opts.withDefaults()
	s := &Service{
		opts:         o,
		queue:        jobqueue.New(o.MaxInFlight, o.QueueDepth),
		jobs:         map[string]*Job{},
		deployments:  map[string]*Deployment{},
		endpoints:    map[string]*Endpoint{},
		fingerprints: map[*alchemy.Model]string{},
	}
	if o.CacheEntries > 0 {
		s.cache = newFlightCache(o.CacheEntries)
	}
	if o.StateDir == "" {
		return s, nil
	}
	if err := s.recover(o.StateDir, o.StateFS); err != nil {
		return nil, err
	}
	return s, nil
}

// Options returns the effective (defaulted) service bounds.
func (s *Service) Options() ServiceOptions { return s.opts }

// Submit admits a compilation and returns immediately with its Job
// handle — it validates the declaration and enqueues, but never loads
// data, hashes, or searches, so it returns in well under a millisecond
// regardless of spec size. The job inherits cancellation and deadline
// from ctx (pass context.Background to decouple the job's lifetime from
// the caller's, as the HTTP daemon does); Job.Cancel works either way.
//
// Submission errors: validation errors from the declaration,
// ErrQueueFull when the backlog is at capacity, ErrServiceClosed after
// Close.
func (s *Service) Submit(ctx context.Context, p *alchemy.Platform, opts ...Option) (*Job, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := options{search: core.DefaultSearchConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	// Snapshot the declaration's top level so a caller mutating Kind or
	// Constraints after Submit cannot race the compilation. (The
	// schedule tree and loaders are shared by design — they are the
	// declaration's identity.)
	clone := *p

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.mu.Unlock()

	jctx, cancel := context.WithCancel(ctx)
	j := newJob(id, clone.Kind.String(), cancel)
	j.ctx = jctx
	if s.store != nil {
		// The hook is installed before the job can reach any terminal
		// transition, including the queue's drop callback below.
		j.onFinish = s.journalFinish
	}
	ticket, err := s.queue.Submit(
		func() { s.run(jctx, j, &clone, &o) },
		func(error) {
			j.finish(nil, fmt.Errorf("homunculus: job %s dropped before dispatch: %w", id, ErrServiceClosed))
		},
	)
	if err != nil {
		cancel()
		switch {
		case errors.Is(err, jobqueue.ErrClosed):
			return nil, ErrServiceClosed
		case errors.Is(err, jobqueue.ErrFull):
			return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.opts.QueueDepth)
		}
		return nil, err
	}
	j.mu.Lock()
	j.ticket = ticket
	j.mu.Unlock()

	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pruneLocked()
	s.mu.Unlock()
	s.recordSubmission(j, &clone, &o)
	return j, nil
}

// removeFromOrder compacts a registration-order slice in place, keeping
// every entry except id — the shared removal step of the deployment and
// endpoint registries. Caller holds s.mu.
func removeFromOrder(order []string, id string) []string {
	kept := order[:0]
	for _, v := range order {
		if v != id {
			kept = append(kept, v)
		}
	}
	return kept
}

// pruneLocked forgets the oldest terminal jobs once the retention cap is
// exceeded. Caller holds s.mu.
func (s *Service) pruneLocked() {
	if s.opts.RetainJobs < 0 || len(s.order) <= s.opts.RetainJobs {
		return
	}
	excess := len(s.order) - s.opts.RetainJobs
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks up a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every submitted job in admission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Stats reports the admission backlog and in-flight compilation counts.
func (s *Service) Stats() (queued, running int) {
	return s.queue.Stats()
}

// Close stops admission, fails every still-queued job with an error
// wrapping ErrServiceClosed, and drains: it blocks until running
// compilations finish (they are not cancelled — cancel jobs explicitly
// for a hard stop) and until every deployment and endpoint delivers its
// accepted requests. Idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	deps := make([]*Deployment, 0, len(s.depOrder))
	for _, id := range s.depOrder {
		deps = append(deps, s.deployments[id])
	}
	eps := make([]*Endpoint, 0, len(s.epOrder))
	for _, name := range s.epOrder {
		eps = append(eps, s.endpoints[name])
	}
	s.mu.Unlock()
	s.queue.Close()
	for _, d := range deps {
		_ = d.Close()
	}
	for _, e := range eps {
		_ = e.Close()
	}
	// The endpoint manifest is NOT rewritten on shutdown — draining is
	// not deletion, and the persisted table is what the next Open
	// restores. Only the journal's append handle needs closing.
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			s.storeErr(fmt.Errorf("close state dir: %w", err))
		}
	}
	return nil
}

// run executes one admitted job on a dispatch slot.
func (s *Service) run(ctx context.Context, j *Job, p *alchemy.Platform, o *options) {
	if err := ctx.Err(); err != nil {
		j.finish(nil, fmt.Errorf("homunculus: compilation cancelled: %w", err))
		return
	}
	j.setRunning()
	s.journal(store.Record{Op: store.OpRunning, Job: j.id}, false)
	if s.cache == nil && s.store == nil && s.remote.Load() == nil {
		pipe, err := s.compileJob(ctx, j, p, o)
		j.finish(pipe, err)
		return
	}
	// Data materialized while fingerprinting anonymous loaders is kept
	// for the load stage, so a cache miss costs one Load, not two.
	preload := map[*alchemy.Model]*alchemy.Data{}
	key, err := specHash(p, o.search, o.validate, func(m *alchemy.Model) (string, error) {
		return s.fingerprint(m, preload)
	})
	if err != nil {
		j.finish(nil, err)
		return
	}
	j.setSpecHash(key)
	if s.cache == nil {
		// Durable but memory-cache-disabled: the artifact store still
		// deduplicates identical specs across restarts.
		if pipe, ok := s.lookupStored(ctx, key); ok {
			j.markCacheHit()
			j.finish(pipe, nil)
			return
		}
		pipe, err := s.compileLeader(ctx, j, p, o, preload, key)
		j.finish(pipe, err)
		return
	}
	for {
		f, leader := s.cache.acquire(key)
		if leader {
			// Read through to the artifact store first, then to cluster
			// peers: a result compiled before the last restart, by another
			// process on the same state dir, or by any peer node is a warm
			// hit with zero search events.
			if pipe, ok := s.lookupStored(ctx, key); ok {
				s.cache.complete(key, f, pipe, nil)
				j.markCacheHit()
				j.finish(pipe, nil)
				return
			}
			pipe, err := s.compileLeader(ctx, j, p, o, preload, key)
			s.cache.complete(key, f, pipe, err)
			j.finish(pipe, err)
			return
		}
		// Single-flight follower: park until the leader completes. A
		// cached success returns immediately (done already closed) with
		// zero additional pipeline events.
		select {
		case <-f.done:
		case <-ctx.Done():
			j.finish(nil, fmt.Errorf("homunculus: compilation cancelled: %w", ctx.Err()))
			return
		}
		if f.err == nil {
			j.markCacheHit()
			j.finish(f.pipe, nil)
			return
		}
		// The leader failed; failures are not cached, so re-acquire —
		// this submission may become the new leader and retry.
	}
}

// compileLeader compiles a cache-missing spec and writes the result
// through to the artifact store (best effort — a store failure degrades
// durability, never the compilation).
func (s *Service) compileLeader(ctx context.Context, j *Job, p *alchemy.Platform, o *options, preload map[*alchemy.Model]*alchemy.Data, key string) (*Pipeline, error) {
	lo := *o
	lo.preloaded = preload
	pipe, err := s.compileJob(ctx, j, p, &lo)
	if err == nil {
		s.storeArtifact(key, pipe)
	}
	return pipe, err
}

// fingerprint memoizes per-model dataset fingerprints. Anonymous
// loaders must materialize their data to hash it; that data lands in
// preload so the compile's load stage reuses it instead of loading
// again. A *Model is treated as an immutable declaration: its
// fingerprint is computed once, so a loader whose underlying data
// changes between submissions must be wrapped in a NEW Model (the same
// contract catalog references have, whose fingerprint is just the
// name). The Load runs outside the lock; a racing duplicate computes
// the same value. The map is bounded crudely — fingerprints are small,
// models few.
func (s *Service) fingerprint(m *alchemy.Model, preload map[*alchemy.Model]*alchemy.Data) (string, error) {
	s.fpMu.Lock()
	fp, ok := s.fingerprints[m]
	s.fpMu.Unlock()
	if ok {
		return fp, nil
	}
	var err error
	loader := m.Spec.DataLoader
	_, cheapFP := loader.(alchemy.Fingerprinter)
	_, named := loader.(alchemy.NamedDataLoader)
	if cheapFP || named {
		fp, err = alchemy.DatasetFingerprint(loader)
	} else {
		var data *alchemy.Data
		data, err = loader.Load()
		if err != nil {
			return "", fmt.Errorf("homunculus: fingerprint load: %w", err)
		}
		fp, err = alchemy.DataFingerprint(data)
		if err == nil && preload != nil {
			preload[m] = data
		}
	}
	if err != nil {
		return "", err
	}
	s.fpMu.Lock()
	if len(s.fingerprints) >= 4096 {
		s.fingerprints = map[*alchemy.Model]string{}
	}
	s.fingerprints[m] = fp
	s.fpMu.Unlock()
	return fp, nil
}

// compileJob runs the staged pipeline, teeing progress events into the
// job's feed and the submitter's WithProgress callback.
func (s *Service) compileJob(ctx context.Context, j *Job, p *alchemy.Platform, o *options) (*Pipeline, error) {
	target, err := backend.Build(p.BackendSpec())
	if err != nil {
		return nil, fmt.Errorf("homunculus: %w", err)
	}
	inner := *o
	user := o.progress
	inner.progress = func(ev Event) {
		j.observe(ev)
		if user != nil {
			user(ev)
		}
	}
	return compile(ctx, p, target, &inner)
}

// defaultService backs Generate/GenerateAcross: admission bounded at
// GOMAXPROCS with an unbounded backlog (a blocking Generate call must
// queue, not fail), caching disabled (direct calls keep their
// compile-every-time semantics; construct a Service to opt into reuse),
// and near-zero job retention — Generate discards its handle after
// Wait, so parking finished pipelines here would only pin memory.
var (
	defaultServiceOnce sync.Once
	defaultSvc         *Service
)

// DefaultService returns the process-wide service behind Generate and
// GenerateAcross. It is never closed.
func DefaultService() *Service {
	defaultServiceOnce.Do(func() {
		defaultSvc = New(ServiceOptions{QueueDepth: -1, CacheEntries: -1, RetainJobs: 8})
	})
	return defaultSvc
}
