package homunculus

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/alchemy"
	"repro/internal/core"
	"repro/internal/ir"
)

func sampleLoader(seed int64) alchemy.DataLoader {
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) ([][]float64, []int) {
			x := make([][]float64, n)
			y := make([]int, n)
			for i := 0; i < n; i++ {
				c := i % 2
				x[i] = []float64{
					float64(c)*1.5 + rng.NormFloat64()*0.5,
					float64(c)*-1.0 + rng.NormFloat64()*0.5,
					rng.NormFloat64(),
				}
				y[i] = c
			}
			return x, y
		}
		d := &alchemy.Data{FeatureNames: []string{"fa", "fb", "fc"}}
		d.TrainX, d.TrainY = mk(400)
		d.TestX, d.TestY = mk(150)
		return d, nil
	})
}

func fastConfig() core.SearchConfig {
	cfg := core.DefaultSearchConfig()
	cfg.BO.InitSamples = 3
	cfg.BO.Iterations = 3
	cfg.BO.Candidates = 80
	cfg.MaxHiddenLayers = 2
	cfg.MaxNeurons = 10
	cfg.TrainEpochs = 5
	return cfg
}

func TestGenerateSingleModelTaurus(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:               "anomaly_detection",
		OptimizationMetric: "f1",
		Algorithms:         []string{"dnn"},
		DataLoader:         sampleLoader(1),
	})
	platform := alchemy.Taurus()
	platform.Constrain(alchemy.Constraints{
		Performance: alchemy.Performance{ThroughputGPkts: 1, LatencyNS: 500},
		Resources:   alchemy.Resources{Rows: 16, Cols: 16},
	})
	platform.Schedule(model)

	pipe, err := Generate(context.Background(), platform, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Platform != "taurus" {
		t.Fatalf("platform %q", pipe.Platform)
	}
	if len(pipe.Apps) != 1 {
		t.Fatalf("apps = %d", len(pipe.Apps))
	}
	app := pipe.Apps[0]
	if app.Model == nil {
		t.Fatal("must produce a model")
	}
	if app.Algorithm != "dnn" {
		t.Fatalf("algorithm %q", app.Algorithm)
	}
	if app.Metric < 0.8 {
		t.Fatalf("metric %v too low", app.Metric)
	}
	if !strings.Contains(app.Code, "@spatial") {
		t.Fatal("generated code must be Spatial")
	}
	if !app.Verdict.Feasible {
		t.Fatal("model must be feasible")
	}
}

func TestGenerateTofinoKMeans(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:               "traffic_class",
		OptimizationMetric: "vmeasure",
		Algorithms:         []string{"kmeans"},
		DataLoader:         sampleLoader(2),
	})
	platform := alchemy.Tofino()
	platform.Constrain(alchemy.Constraints{Resources: alchemy.Resources{Tables: 4}})
	platform.Schedule(model)

	pipe, err := Generate(context.Background(), platform, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	app := pipe.Apps[0]
	if app.Model == nil {
		t.Fatal("must produce a clustering")
	}
	if app.Verdict.Metrics["tables"] > 4 {
		t.Fatalf("table budget violated: %v", app.Verdict.Metrics["tables"])
	}
	if !strings.Contains(app.Code, "v1model") {
		t.Fatal("generated code must be P4")
	}
}

func TestGenerateComposition(t *testing.T) {
	m1 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "m1", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(3)})
	m2 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "m2", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(4)})
	platform := alchemy.Taurus()
	platform.Schedule(alchemy.Seq(m1, m2))

	pipe, err := Generate(context.Background(), platform, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.Apps) != 2 {
		t.Fatalf("apps = %d", len(pipe.Apps))
	}
	if pipe.Composition == nil {
		t.Fatal("composition verdict missing")
	}
	if pipe.Composition.Metrics["models"] != 2 || pipe.Composition.Metrics["chain_depth"] != 2 {
		t.Fatalf("composition metrics: %+v", pipe.Composition.Metrics)
	}
}

func TestGenerateMemoizesRepeatedModel(t *testing.T) {
	loads := 0
	loader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		loads++
		return sampleLoader(5).Load()
	})
	m := alchemy.NewModel(alchemy.ModelSpec{
		Name: "ad", Algorithms: []string{"dtree"}, DataLoader: loader})
	platform := alchemy.Taurus()
	platform.Schedule(alchemy.Seq(m, m, m, m)) // Table-3 style: 4 copies

	pipe, err := Generate(context.Background(), platform, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1 (memoized)", loads)
	}
	if len(pipe.Apps) != 4 {
		t.Fatalf("apps = %d", len(pipe.Apps))
	}
	if pipe.Composition == nil || pipe.Composition.Metrics["models"] != 4 {
		t.Fatal("composition must cover 4 instances")
	}
}

func TestGenerateValidationErrors(t *testing.T) {
	if _, err := Generate(context.Background(), alchemy.Taurus()); err == nil {
		t.Fatal("unscheduled platform must fail")
	}
	bad := alchemy.NewModel(alchemy.ModelSpec{
		Name: "x", Algorithms: []string{"not_an_algo"}, DataLoader: sampleLoader(6)})
	p := alchemy.Taurus()
	p.Schedule(bad)
	if _, err := Generate(context.Background(), p, WithSearchConfig(fastConfig())); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

func TestGenerateInfeasibleReturnsEmptyApp(t *testing.T) {
	// A 1-table Tofino cannot host a 2-cluster KMeans (needs 2 tables) —
	// but K=1 fits; constrain to vmeasure where K=1 scores 0. The search
	// still returns its best feasible (trivial) model. Use a 0-table-like
	// minimal budget by demanding dtree with depth tables > budget:
	// simplest robust check: DNN on Tofino is pruned and yields no model.
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "d", Algorithms: []string{"dnn"}, DataLoader: sampleLoader(7)})
	p := alchemy.Tofino()
	p.Schedule(model)
	pipe, err := Generate(context.Background(), p, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Apps[0].Model != nil {
		t.Fatal("DNN on MAT must yield no model")
	}
	if len(pipe.Apps[0].Candidates) != 1 || pipe.Apps[0].Candidates[0].Skipped == "" {
		t.Fatal("candidate must be recorded as skipped")
	}
}

func TestWithSeed(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "s", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(8)})
	p := alchemy.Taurus()
	p.Schedule(model)
	cfg := fastConfig()
	a, err := Generate(context.Background(), p, WithSearchConfig(cfg), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), p, WithSearchConfig(cfg), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Apps[0].Metric != b.Apps[0].Metric {
		t.Fatal("same seed must reproduce")
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []ir.Kind{ir.DNN, ir.SVM, ir.KMeans, ir.DTree} {
		back, err := ir.ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("kind %v round trip", k)
		}
	}
}
