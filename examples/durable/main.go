// Durable service: crash-safe compilation and serving. A Service opened
// with a StateDir journals every job transition write-ahead, stores each
// compiled pipeline in an on-disk content-addressed artifact store, and
// persists the endpoint table in a manifest. This example lives two
// service lifetimes over one state directory: the first compiles a
// pipeline and serves it behind an endpoint, the second — standing in
// for the process that comes back after a crash or redeploy — replays
// the journal, answers the identical submission from the artifact store
// with zero search work, and resumes serving the restored endpoint.
// See docs/operations.md for the on-disk layout and recovery semantics.
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/alchemy"
	"repro/internal/synth/nslkdd"

	homunculus "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "homunculus-state-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Durable recovery needs wire-transportable specs: register the
	// dataset by name so the journal can record — and the next lifetime
	// can replay — the exact declaration.
	alchemy.RegisterLoader("durable_flows", alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := nslkdd.DefaultConfig()
		cfg.Samples = 1500
		train, test, err := nslkdd.TrainTest(cfg)
		if err != nil {
			return nil, err
		}
		return alchemy.FromDatasets(train, test), nil
	}))
	declare := func() *alchemy.Platform {
		model := alchemy.NewModel(alchemy.ModelSpec{
			Name:               "anomaly_detection",
			OptimizationMetric: "f1",
			Algorithms:         []string{"dnn"},
			DataLoader:         alchemy.NamedLoader("durable_flows"),
		})
		platform := alchemy.Taurus()
		platform.Schedule(model)
		return platform
	}
	ctx := context.Background()

	// --- Lifetime one: compile and serve. ---
	svc, err := homunculus.Open(homunculus.ServiceOptions{MaxInFlight: 2, StateDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	job, err := svc.Submit(ctx, declare(), homunculus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := job.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifetime 1: compiled %s (spec %.12s...)\n", job.ID(), job.Status().SpecHash)
	if _, err := svc.CreateEndpoint("ad", job.ID(), homunculus.EndpointOptions{BatchSize: 8}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("lifetime 1: endpoint \"ad\" serving; shutting down")
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Lifetime two: the same directory, a fresh process. ---
	svc2, err := homunculus.Open(homunculus.ServiceOptions{MaxInFlight: 2, StateDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	rep := svc2.Recovery()
	fmt.Printf("lifetime 2: recovered %d journal records, %d results warm, endpoints restored: %v\n",
		rep.JournalRecords, len(rep.JobsRecovered), rep.EndpointsRestored)

	// The identical declaration costs nothing: the artifact store
	// answers it without a single search iteration.
	again, err := svc2.Submit(ctx, declare(), homunculus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := again.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifetime 2: identical resubmit %s: cache hit: %v\n", again.ID(), again.Status().CacheHit)

	// The endpoint survived the restart and answers immediately.
	ep, ok := svc2.Endpoint("ad")
	if !ok {
		log.Fatal("endpoint \"ad\" was not restored")
	}
	class, err := ep.Classify([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifetime 2: restored endpoint classified a flow as class %d\n", class)
}
