// FPGA deployment: the §5.2 end-to-end scenario. Models are compiled
// through the Spatial flow onto the Alveo U250 bump-in-the-wire testbed
// model, and the example prints a Table-5-style utilization report for a
// hand-tuned baseline and a Homunculus-searched model side by side,
// including the loopback shell cost.
//
//	go run ./examples/fpgadeploy
package main

import (
	"context"
	"fmt"
	"log"

	"repro/alchemy"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/synth/nslkdd"

	homunculus "repro"
)

func main() {
	// Shared dataset.
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 3000
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Homunculus deployment through the public API on the FPGA platform.
	loader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		d := &alchemy.Data{FeatureNames: train.FeatureNames}
		for i := 0; i < train.Len(); i++ {
			d.TrainX = append(d.TrainX, append([]float64{}, train.X.Row(i)...))
			d.TrainY = append(d.TrainY, train.Y[i])
		}
		for i := 0; i < test.Len(); i++ {
			d.TestX = append(d.TestX, append([]float64{}, test.X.Row(i)...))
			d.TestY = append(d.TestY, test.Y[i])
		}
		return d, nil
	})
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:       "anomaly_detection",
		Algorithms: []string{"dnn"},
		DataLoader: loader,
	})
	platform := alchemy.FPGA()
	// Cap power at the testbed's budget; Homunculus rejects models that
	// would blow it.
	platform.Constrain(alchemy.Constraints{Resources: alchemy.Resources{MaxPowerW: 25}})
	platform.Schedule(model)

	search := core.DefaultSearchConfig()
	search.BO.InitSamples = 4
	search.BO.Iterations = 8
	pipe, err := homunculus.Generate(context.Background(), platform, homunculus.WithSearchConfig(search))
	if err != nil {
		log.Fatal(err)
	}
	hom := pipe.Apps[0]
	if hom.Model == nil {
		log.Fatal("no feasible model under the power cap")
	}

	shell := fpga.U250Shell()
	loop, err := fpga.Estimate(shell, nil)
	if err != nil {
		log.Fatal(err)
	}
	homRep, err := fpga.Estimate(shell, hom.Model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Alveo U250 testbed utilization (bump-in-the-wire)")
	fmt.Printf("%-22s %8s %8s %8s %10s\n", "configuration", "LUT%", "FF%", "BRAM%", "Power(W)")
	fmt.Printf("%-22s %8.2f %8.2f %8.2f %10.3f\n", "loopback shell", loop.LUTPct, loop.FFPct, loop.BRAMPct, loop.PowerW)
	fmt.Printf("%-22s %8.2f %8.2f %8.2f %10.3f\n",
		fmt.Sprintf("homunculus (%dp)", hom.Model.ParamCount()),
		homRep.LUTPct, homRep.FFPct, homRep.BRAMPct, homRep.PowerW)
	delta := fpga.Compare(loop, homRep)
	fmt.Printf("%-22s %8.2f %8.2f %8.2f %10.3f\n", "model cost (delta)", delta.LUTPct, delta.FFPct, delta.BRAMPct, delta.PowerW)
	fmt.Printf("\nsearched architecture %v, F1 %.1f%%, verdict feasible=%v (power %.2f W <= 25 W cap)\n",
		hom.Model.HiddenWidths(), hom.Metric*100, hom.Verdict.Feasible, hom.Verdict.Metrics["power_w"])
}
