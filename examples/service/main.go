// Service: the job-based compilation API. A long-lived
// homunculus.Service admits compilations under bounded concurrency and
// answers identical submissions from its content-addressed cache. Two
// identical jobs are submitted concurrently here — single-flight
// coalescing runs ONE search and both handles resolve to the same
// pipeline; a third submission with a different seed misses the cache.
// The winning pipeline then serves live traffic behind a named endpoint
// (the versioned serving surface — Service.Deploy is deprecated).
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"

	"repro/alchemy"
	"repro/internal/synth/nslkdd"

	homunculus "repro"
)

func main() {
	// Register the dataset in the catalog: named references make specs
	// wire-transportable and give the cache a cheap fingerprint.
	alchemy.RegisterLoader("ad_flows", alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := nslkdd.DefaultConfig()
		cfg.Samples = 1500
		train, test, err := nslkdd.TrainTest(cfg)
		if err != nil {
			return nil, err
		}
		return alchemy.FromDatasets(train, test), nil
	}))

	declare := func() *alchemy.Platform {
		model := alchemy.NewModel(alchemy.ModelSpec{
			Name:               "anomaly_detection",
			OptimizationMetric: "f1",
			Algorithms:         []string{"dnn"},
			DataLoader:         alchemy.NamedLoader("ad_flows"),
		})
		platform := alchemy.Taurus()
		platform.Schedule(model)
		return platform
	}

	svc := homunculus.New(homunculus.ServiceOptions{MaxInFlight: 2, QueueDepth: 16, CacheEntries: 32})
	defer svc.Close()
	ctx := context.Background()

	// Two identical submissions, back to back: Submit returns
	// immediately with handles; the service elects one leader to compile
	// while the other coalesces onto its result.
	jobA, err := svc.Submit(ctx, declare(), homunculus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	jobB, err := svc.Submit(ctx, declare(), homunculus.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s and %s (states: %s, %s)\n",
		jobA.ID(), jobB.ID(), jobA.Status().State, jobB.Status().State)

	// Follow job A's progress through its event subscription.
	go func() {
		for ev := range jobA.Events() {
			if !ev.Done {
				continue
			}
			fmt.Printf("  [%s] %s %s done\n", ev.Platform, ev.Stage, ev.App)
		}
	}()

	pipeA, err := jobA.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	pipeB, err := jobB.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job A: metric %.4f, cache hit: %v\n", pipeA.Apps[0].Metric, jobA.Status().CacheHit)
	fmt.Printf("job B: metric %.4f, cache hit: %v (same pipeline: %v)\n",
		pipeB.Apps[0].Metric, jobB.Status().CacheHit, pipeA == pipeB)

	// A different seed is a different content address: cache miss.
	jobC, err := svc.Submit(ctx, declare(), homunculus.WithSeed(8))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := jobC.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job C (seed 8): cache hit: %v\n", jobC.Status().CacheHit)

	// Serve job A behind a named endpoint — the serving surface (the
	// flat Deploy API is deprecated): a stable route with versioned
	// revisions, canary/shadow rollouts, and rollback (docs/serving.md).
	ep, err := svc.CreateEndpoint("ad", jobA.ID(), homunculus.EndpointOptions{BatchSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	class, err := ep.Classify([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("endpoint %q (stable rev 1) classified a live flow as class %d\n", ep.Name(), class)
	if _, err := svc.DeleteEndpoint(ep.Name()); err != nil {
		log.Fatal(err)
	}
}
