// Traffic classification on a MAT switch through the IIsy backend: the
// §5.2.2 scenario. The operator asks for IoT device clustering with a
// V-measure objective; Homunculus conforms a KMeans model to the switch's
// match-action-table budget, emitting P4 plus table entries, and the
// example sweeps the budget from 5 tables down to 1 to show the fidelity
// trade-off (Figure 7).
//
//	go run ./examples/trafficclass
package main

import (
	"context"
	"fmt"
	"log"

	"repro/alchemy"
	"repro/internal/core"
	"repro/internal/synth/iottc"

	homunculus "repro"
)

func tcLoader() (*alchemy.Data, error) {
	cfg := iottc.DefaultConfig()
	cfg.Samples = 4000
	train, test, err := iottc.TrainTest(cfg)
	if err != nil {
		return nil, err
	}
	data := &alchemy.Data{FeatureNames: train.FeatureNames}
	for i := 0; i < train.Len(); i++ {
		data.TrainX = append(data.TrainX, append([]float64{}, train.X.Row(i)...))
		data.TrainY = append(data.TrainY, train.Y[i])
	}
	for i := 0; i < test.Len(); i++ {
		data.TestX = append(data.TestX, append([]float64{}, test.X.Row(i)...))
		data.TestY = append(data.TestY, test.Y[i])
	}
	return data, nil
}

func main() {
	search := core.DefaultSearchConfig()
	search.BO.InitSamples = 5
	search.BO.Iterations = 12

	fmt.Println("IoT traffic clustering on a MAT switch (IIsy backend)")
	fmt.Println("tables  clusters  V-measure  verdict")
	var lastCode string
	for tables := 5; tables >= 1; tables-- {
		model := alchemy.NewModel(alchemy.ModelSpec{
			Name:               fmt.Sprintf("traffic_class_k%d", tables),
			OptimizationMetric: "vmeasure",
			Algorithms:         []string{"kmeans"},
			DataLoader:         alchemy.DataLoaderFunc(tcLoader),
		})
		platform := alchemy.Tofino()
		platform.Constrain(alchemy.Constraints{
			Resources: alchemy.Resources{Tables: tables},
		})
		platform.Schedule(model)

		pipeline, err := homunculus.Generate(context.Background(), platform, homunculus.WithSearchConfig(search))
		if err != nil {
			log.Fatalf("homunculus: %v", err)
		}
		app := pipeline.Apps[0]
		if app.Model == nil {
			fmt.Printf("%6d  %8s  %9s  no feasible model\n", tables, "-", "-")
			continue
		}
		fmt.Printf("%6d  %8d  %8.1f%%  %d tables used, line rate %.1f GPkt/s\n",
			tables, app.Model.Outputs, app.Metric*100,
			int(app.Verdict.Metrics["tables"]), app.Verdict.Metrics["throughput_gpkts"])
		lastCode = app.Code
	}

	fmt.Println("\n--- generated P4 for the 1-table deployment (head) ---")
	count := 0
	for _, line := range splitLines(lastCode) {
		fmt.Println(line)
		count++
		if count > 14 {
			fmt.Println("...")
			break
		}
	}
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i, r := range s {
		if r == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
