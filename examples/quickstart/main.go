// Quickstart: the paper's Figure-3 program, in Go. An operator declares
// the anomaly-detection dataset, an F1 objective, and a Taurus switch
// constrained to 1 GPkt/s and 500 ns on a 16×16 grid — and Homunculus
// searches, trains, and generates the data-plane pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/alchemy"
	"repro/internal/synth/nslkdd"

	homunculus "repro"
)

// adLoader plays the role of Figure 3's ad_loader module: it loads and
// preprocesses the train/test CSVs. Here the "files" come from the
// bundled NSL-KDD-like generator; swap in dataset.ReadCSV for real CSVs.
func adLoader() (*alchemy.Data, error) {
	train, test, err := nslkdd.TrainTest(nslkdd.DefaultConfig())
	if err != nil {
		return nil, err
	}
	data := &alchemy.Data{FeatureNames: train.FeatureNames}
	for i := 0; i < train.Len(); i++ {
		data.TrainX = append(data.TrainX, append([]float64{}, train.X.Row(i)...))
		data.TrainY = append(data.TrainY, train.Y[i])
	}
	for i := 0; i < test.Len(); i++ {
		data.TestX = append(data.TestX, append([]float64{}, test.X.Row(i)...))
		data.TestY = append(data.TestY, test.Y[i])
	}
	return data, nil
}

func main() {
	// Specify the model of choice (Figure 3, lines 17–21).
	modelSpec := alchemy.NewModel(alchemy.ModelSpec{
		OptimizationMetric: "f1",
		Algorithms:         []string{"dnn"},
		Name:               "anomaly_detection",
		DataLoader:         alchemy.DataLoaderFunc(adLoader),
	})

	// Load platform (lines 24–29).
	platform := alchemy.Taurus()
	platform.Constrain(alchemy.Constraints{
		Performance: alchemy.Performance{
			ThroughputGPkts: 1,   // GPkt/s
			LatencyNS:       500, // ns
		},
		Resources: alchemy.Resources{Rows: 16, Cols: 16},
	})

	// Schedule model and generate code (lines 32–33).
	platform.Schedule(modelSpec)
	pipeline, err := homunculus.Generate(context.Background(), platform)
	if err != nil {
		log.Fatalf("homunculus: %v", err)
	}

	app := pipeline.Apps[0]
	if app.Model == nil {
		log.Fatalf("no feasible model found under the given constraints")
	}
	fmt.Printf("selected algorithm:  %s\n", app.Algorithm)
	fmt.Printf("architecture:        %d -> %v -> %d\n",
		app.Model.Inputs, app.Model.HiddenWidths(), app.Model.Outputs)
	fmt.Printf("parameters:          %d\n", app.Model.ParamCount())
	fmt.Printf("F1 (quantized):      %.2f%%\n", app.Metric*100)
	fmt.Printf("resources:           %.0f CUs, %.0f MUs\n",
		app.Verdict.Metrics["cus"], app.Verdict.Metrics["mus"])
	fmt.Printf("latency:             %.0f ns at %.1f GPkt/s\n",
		app.Verdict.Metrics["latency_ns"], app.Verdict.Metrics["throughput_gpkts"])
	fmt.Printf("\n--- generated Spatial (first lines) ---\n")
	printed := 0
	for _, line := range splitLines(app.Code) {
		fmt.Println(line)
		printed++
		if printed >= 12 {
			fmt.Println("...")
			break
		}
	}
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i, r := range s {
		if r == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
