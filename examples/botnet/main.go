// Per-packet botnet detection: the §5.1.1 reaction-time story. A model
// trained on full-flow flowmarkers is deployed for per-packet inference on
// partial histograms, and the example streams a P2P packet trace through
// it, reporting how many packets into a conversation the botnet is caught
// versus waiting out FlowLens's 3,600-second aggregation window.
//
//	go run ./examples/botnet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ir"
	"repro/internal/packet"
	"repro/internal/stream"
	"repro/internal/synth/botnet"
)

func main() {
	// Generate the P2P corpus: benign uTorrent/Vuze/eMule/Frostwire
	// conversations mixed with Storm/Waledac C&C.
	flows, err := botnet.Generate(botnet.Config{Flows: 800, BotnetP: 0.4, LabelNoise: 0.03, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	cut := len(flows) * 3 / 4

	// Train on full flowmarkers (the FlowLens protocol), normalized to
	// frequencies so partial histograms share the representation.
	train, err := botnet.FlowmarkerDataset(flows[:cut], packet.PaperBD)
	if err != nil {
		log.Fatal(err)
	}
	test, err := botnet.PartialDataset(flows[cut:], packet.PaperBD, 8)
	if err != nil {
		log.Fatal(err)
	}
	toFreq(train)
	toFreq(test)

	app := core.App{Name: "botnet_detection", Train: train, Test: test, Normalize: true}
	cfg := core.DefaultSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DNN}
	cfg.MaxHiddenLayers = 8
	cfg.MaxNeurons = 12
	cfg.BO.InitSamples = 4
	cfg.BO.Iterations = 8

	res, err := core.Search(context.Background(), app, backend.NewTaurusTarget(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no feasible model found")
	}
	model := res.Best.Model
	fmt.Printf("searched model: %d -> %v -> 2 (%d params), per-packet F1 %.1f%%\n",
		model.Inputs, model.HiddenWidths(), model.ParamCount(), res.Best.Metric*100)
	fmt.Printf("fabric: %.0f CUs / %.0f MUs, %.0f ns per decision\n\n",
		res.Best.Verdict.Metrics["cus"], res.Best.Verdict.Metrics["mus"],
		res.Best.Verdict.Metrics["latency_ns"])

	// Stream the held-out trace through the deployed pipeline.
	classify := stream.ModelFunc(func(f []float64) (int, error) {
		return model.InferQ(freqVec(f))
	})
	trace := botnet.MergePackets(flows[cut:])
	pp, err := stream.Run(packet.PaperBD, classify, trace, 4)
	if err != nil {
		log.Fatal(err)
	}
	fl, err := stream.RunFlowLevel(packet.PaperBD, classify, trace, 3600*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streamed %d packets over %d conversations (%d botnet)\n",
		pp.PacketsProcessed, pp.Flows, pp.BotnetFlows)
	fmt.Printf("per-packet detection: %.0f%% of botnets flagged, on average %.1f packets in\n",
		100*float64(pp.DetectedFlows)/float64(pp.BotnetFlows), pp.MeanDetectionPackets)
	fmt.Printf("reaction time:        %v into the conversation (per-packet)\n", pp.MeanDetectionTime.Round(time.Second))
	fmt.Printf("                      %v (flow-level with 3600 s window)\n", fl.MeanReactionTime.Round(time.Second))
	fmt.Printf("per-packet F1 %.3f vs flow-level F1 %.3f\n", pp.F1(), fl.F1())
}

// toFreq converts each flowmarker's PL and IPT segments to frequencies.
func toFreq(d *dataset.Dataset) {
	for i := 0; i < d.Len(); i++ {
		freqInPlace(d.X.Row(i))
	}
}

func freqVec(x []float64) []float64 {
	c := append([]float64{}, x...)
	freqInPlace(c)
	return c
}

func freqInPlace(x []float64) {
	pl := packet.PaperBD.PLBins
	for _, seg := range [][2]int{{0, pl}, {pl, len(x)}} {
		var sum float64
		for _, v := range x[seg[0]:seg[1]] {
			sum += v
		}
		if sum <= 0 {
			continue
		}
		for j := seg[0]; j < seg[1]; j++ {
			x[j] /= sum
		}
	}
}
