// Multi-application deployment: Alchemy's composition operators (§3.1.1)
// and model fusion (§3.2.5) on one Taurus switch. The example (a) chains
// four copies of an anomaly detector with the > and | operators and shows
// the Table-3 property — total resources are identical across strategies —
// and (b) splits the AD dataset into two feature-overlapping applications
// and fuses them into one model at roughly half the combined cost
// (Table 4).
//
//	go run ./examples/multiapp
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/synth/nslkdd"
)

func main() {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 3000
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app := core.App{Name: "anomaly_detection", Train: train, Test: test, Normalize: true}

	search := core.DefaultSearchConfig()
	search.Algorithms = []ir.Kind{ir.DNN}
	search.BO.InitSamples = 4
	search.BO.Iterations = 6
	// Keep the per-app models small enough that four instances share one
	// 16x16 grid (the Table-3 scenario chains modest-size detectors).
	search.MaxHiddenLayers = 3
	search.MaxNeurons = 8
	target := backend.NewTaurusTarget()

	res, err := core.Search(context.Background(), app, target, search)
	if err != nil {
		log.Fatal(err)
	}
	if res.Best == nil {
		log.Fatal("no feasible model")
	}
	m := res.Best.Model
	fmt.Printf("anomaly detector: %v hidden, F1 %.1f%%\n\n", m.HiddenWidths(), res.Best.Metric*100)

	// --- App chaining (Table 3) ---
	fmt.Println("app chaining on one switch (4 instances):")
	l := func() *core.Composition { return core.Leaf(m) }
	for _, c := range []struct {
		name string
		comp *core.Composition
	}{
		{"DNN > DNN > DNN > DNN", core.Chain(l(), l(), l(), l())},
		{"DNN | DNN | DNN | DNN", core.Parallel(l(), l(), l(), l())},
		{"DNN > (DNN | DNN) > DNN", core.Chain(l(), core.Parallel(l(), l()), l())},
	} {
		v, err := core.EstimateComposition(target, c.comp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %3.0f CUs %3.0f MUs  latency %3.0f ns  feasible=%v\n",
			c.name, v.Metrics["cus"], v.Metrics["mus"], v.Metrics["latency_ns"], v.Feasible)
	}

	// --- Model fusion (Table 4) ---
	fmt.Println("\nmodel fusion (two overlapping apps -> one model):")
	t1, t2, err := nslkdd.SplitFeaturewise(train, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}
	s1, s2, err := nslkdd.SplitFeaturewise(test, rand.New(rand.NewSource(6)))
	if err != nil {
		log.Fatal(err)
	}
	app1 := core.App{Name: "ad_part1", Train: t1, Test: s1, Normalize: true}
	app2 := core.App{Name: "ad_part2", Train: t2, Test: s2, Normalize: true}

	ok, overlap := core.FusionCandidate(app1, app2)
	fmt.Printf("  feature overlap %.0f%% -> fusion candidate: %v\n", overlap*100, ok)

	r1, err := core.Search(context.Background(), app1, target, search)
	if err != nil {
		log.Fatal(err)
	}
	search2 := search
	search2.Seed = search.Seed + 7
	r2, err := core.Search(context.Background(), app2, target, search2)
	if err != nil {
		log.Fatal(err)
	}
	fused, err := core.Fuse(app1, app2)
	if err != nil {
		log.Fatal(err)
	}
	searchF := search
	searchF.Seed = search.Seed + 13
	rf, err := core.Search(context.Background(), fused, target, searchF)
	if err != nil {
		log.Fatal(err)
	}
	if r1.Best == nil || r2.Best == nil || rf.Best == nil {
		log.Fatal("searches did not all succeed")
	}
	fmt.Printf("  part1: %3.0f CUs %3.0f MUs (F1 %.1f%%)\n",
		r1.Best.Verdict.Metrics["cus"], r1.Best.Verdict.Metrics["mus"], r1.Best.Metric*100)
	fmt.Printf("  part2: %3.0f CUs %3.0f MUs (F1 %.1f%%)\n",
		r2.Best.Verdict.Metrics["cus"], r2.Best.Verdict.Metrics["mus"], r2.Best.Metric*100)
	fmt.Printf("  fused: %3.0f CUs %3.0f MUs (F1 %.1f%%) — one model serves both\n",
		rf.Best.Verdict.Metrics["cus"], rf.Best.Verdict.Metrics["mus"], rf.Best.Metric*100)
}
