package homunculus

// Tests for the staged compilation pipeline: cancellation, progress
// events, buildComposition edge cases, Generate-level determinism across
// pool sizes, and the cross-platform sweep.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/alchemy"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/parallel"
)

// --- cancellation ---

// TestGenerateCancellationMidSearch: cancelling the context while the
// search stage runs must abort promptly with an error wrapping
// context.Canceled.
func TestGenerateCancellationMidSearch(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "slow", Algorithms: []string{"dnn"}, DataLoader: sampleLoader(11)})
	p := alchemy.Taurus()
	p.Schedule(model)

	// A budget big enough to run for a while uncancelled.
	cfg := fastConfig()
	cfg.BO.InitSamples = 10
	cfg.BO.Iterations = 40
	cfg.TrainEpochs = 20
	cfg.MaxHiddenLayers = 4
	cfg.MaxNeurons = 24

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the search stage reports its first candidate.
	var once sync.Once
	progress := func(ev Event) {
		if ev.Stage == StageSearch {
			once.Do(cancel)
		}
	}
	start := time.Now()
	_, err := Generate(ctx, p, WithSearchConfig(cfg), WithProgress(progress))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled Generate must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must wrap context.Canceled, got: %v", err)
	}
	// "Promptly": one BO evaluation at this scale is milliseconds; give
	// slow CI boxes plenty of slack while still catching a
	// run-to-completion regression (the full budget takes far longer).
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestGenerateDeadlineExceeded: an already-expired deadline must surface
// as a wrapped DeadlineExceeded before any real work happens.
func TestGenerateDeadlineExceeded(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "d", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(12)})
	p := alchemy.Taurus()
	p.Schedule(model)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := Generate(ctx, p, WithSearchConfig(fastConfig()))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error must wrap DeadlineExceeded, got: %v", err)
	}
}

// --- progress events ---

// TestGenerateProgressStages: a two-app composition must report every
// stage in order, with app- and candidate-level search events.
func TestGenerateProgressStages(t *testing.T) {
	m1 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "m1", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(13)})
	m2 := alchemy.NewModel(alchemy.ModelSpec{
		Name: "m2", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(14)})
	p := alchemy.Taurus()
	p.Schedule(alchemy.Seq(m1, m2))

	var mu sync.Mutex
	var events []Event
	pipe, err := Generate(context.Background(), p, WithSearchConfig(fastConfig()),
		WithProgress(func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Composition == nil {
		t.Fatal("two-app Taurus schedule must compose")
	}

	seen := map[string]int{}
	firstIdx := map[Stage]int{}
	lastIdx := map[Stage]int{}
	for i, ev := range events {
		if ev.Candidate != "" {
			if ev.Done {
				seen["candidate"]++
			}
		} else if ev.Done {
			seen[string(ev.Stage)+"/done"]++
		} else {
			seen[string(ev.Stage)+"/start"]++
		}
		if _, ok := firstIdx[ev.Stage]; !ok {
			firstIdx[ev.Stage] = i
		}
		lastIdx[ev.Stage] = i
	}
	if seen["load/done"] != 2 || seen["search/done"] != 2 || seen["codegen/done"] != 2 {
		t.Fatalf("per-app events wrong: %v", seen)
	}
	if seen["compose/done"] != 1 {
		t.Fatalf("compose events wrong: %v", seen)
	}
	if seen["candidate"] != 2 { // one dtree candidate per app
		t.Fatalf("candidate events wrong: %v", seen)
	}
	// Stage ordering: loads all precede searches; composition precedes
	// codegen.
	if lastIdx[StageLoad] > firstIdx[StageSearch] {
		t.Fatal("load events must precede search events")
	}
	if lastIdx[StageCompose] > firstIdx[StageCodegen] {
		t.Fatal("compose must precede codegen")
	}
}

// --- buildComposition edge cases ---

func leafApp(name string, withModel bool) AppResult {
	out := AppResult{Name: name}
	if withModel {
		out.Model = &ir.Model{Name: name, Kind: ir.DTree}
	}
	return out
}

func schedModel(name string) *alchemy.Model {
	return alchemy.NewModel(alchemy.ModelSpec{
		Name: name, DataLoader: alchemy.DataLoaderFunc(func() (*alchemy.Data, error) { return nil, nil })})
}

func TestBuildCompositionAllInfeasible(t *testing.T) {
	s := alchemy.Seq(schedModel("a"), schedModel("b"))
	comp := buildComposition(s, []AppResult{leafApp("a", false), leafApp("b", false)})
	if comp != nil {
		t.Fatal("schedule with no searched models must produce no composition")
	}
}

func TestBuildCompositionSingleChildCollapse(t *testing.T) {
	// Only one of the two scheduled models was satisfiable: the operator
	// node must collapse to the surviving leaf, not wrap it.
	s := alchemy.Seq(schedModel("a"), schedModel("b"))
	comp := buildComposition(s, []AppResult{leafApp("a", true), leafApp("b", false)})
	if comp == nil || comp.Model == nil || comp.Model.Name != "a" {
		t.Fatalf("single survivor must collapse to a leaf, got %v", comp)
	}
}

func TestBuildCompositionOpMapping(t *testing.T) {
	apps := []AppResult{leafApp("a", true), leafApp("b", true)}
	seq := buildComposition(alchemy.Seq(schedModel("a"), schedModel("b")), apps)
	if seq == nil || seq.Op != core.Seq || len(seq.Children) != 2 {
		t.Fatalf("Seq schedule must map to core.Seq, got %v", seq)
	}
	par := buildComposition(alchemy.Par(schedModel("a"), schedModel("b")), apps)
	if par == nil || par.Op != core.Par || len(par.Children) != 2 {
		t.Fatalf("Par schedule must map to core.Par, got %v", par)
	}
	// Nested: a > (b | c) with all satisfiable keeps its shape.
	apps = append(apps, leafApp("c", true))
	nested := buildComposition(
		alchemy.Seq(schedModel("a"), alchemy.Par(schedModel("b"), schedModel("c"))), apps)
	if nested == nil || nested.Op != core.Seq || len(nested.Children) != 2 {
		t.Fatalf("nested shape lost: %v", nested)
	}
	if inner := nested.Children[1]; inner.Op != core.Par || len(inner.Children) != 2 {
		t.Fatalf("inner Par lost: %v", nested)
	}
}

// --- Generate-level determinism across pool sizes ---

// pipelineFingerprint serializes everything Generate promises to be
// deterministic about.
func pipelineFingerprint(t *testing.T, pipe *Pipeline) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "platform=%s apps=%d\n", pipe.Platform, len(pipe.Apps))
	for _, app := range pipe.Apps {
		fmt.Fprintf(&buf, "app=%s alg=%s metric=%x code=%d\n", app.Name, app.Algorithm, app.Metric, len(app.Code))
		buf.WriteString(app.Code)
		if app.Model != nil {
			if err := app.Model.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if pipe.Composition != nil {
		fmt.Fprintf(&buf, "comp=%v %x\n", pipe.Composition.Feasible, pipe.Composition.Metrics["cus"])
	}
	return buf.Bytes()
}

// TestGenerateDeterministicAcrossPoolSizes extends the core-level
// regression to the whole staged pipeline: a fixed-seed multi-app
// Generate — per-app fan-out, family fan-out, kernels — must be
// byte-identical with the pool disabled and fully populated.
func TestGenerateDeterministicAcrossPoolSizes(t *testing.T) {
	build := func() *alchemy.Platform {
		m1 := alchemy.NewModel(alchemy.ModelSpec{
			Name: "ad1", Algorithms: []string{"dnn"}, DataLoader: sampleLoader(15)})
		m2 := alchemy.NewModel(alchemy.ModelSpec{
			Name: "ad2", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(16)})
		p := alchemy.Taurus()
		p.Schedule(alchemy.Par(m1, m2))
		return p
	}
	cfg := fastConfig()

	oldWorkers := parallel.Workers()
	defer parallel.SetWorkers(oldWorkers)

	var reference []byte
	for _, workers := range []int{1, runtime.NumCPU(), 3} {
		parallel.SetWorkers(workers)
		for rep := 0; rep < 2; rep++ {
			pipe, err := Generate(context.Background(), build(), WithSearchConfig(cfg), WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			got := pipelineFingerprint(t, pipe)
			if reference == nil {
				reference = got
				continue
			}
			if !bytes.Equal(got, reference) {
				t.Fatalf("workers=%d rep=%d: pipeline diverged from reference", workers, rep)
			}
		}
	}
}

// --- cross-platform sweep ---

func TestGenerateAcrossAllBackends(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "sweep", Algorithms: []string{"dtree"}, DataLoader: sampleLoader(17)})
	p := alchemy.Taurus()
	p.Schedule(model)

	reports, err := GenerateAcross(context.Background(), p, nil, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 3 {
		t.Fatalf("sweep must cover every registered backend, got %d", len(reports))
	}
	byKind := map[string]TargetReport{}
	for _, r := range reports {
		byKind[r.Platform] = r
	}
	for kind, codeSig := range map[string]string{"taurus": "@spatial", "tofino": "v1model", "fpga": "@spatial"} {
		r, ok := byKind[kind]
		if !ok {
			t.Fatalf("missing backend %s in sweep", kind)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", kind, r.Err)
		}
		app := r.Pipeline.Apps[0]
		if app.Model == nil {
			t.Fatalf("%s: dtree must deploy", kind)
		}
		if !strings.Contains(app.Code, codeSig) {
			t.Fatalf("%s: code missing %q", kind, codeSig)
		}
	}
}

func TestGenerateAcrossSelectedKinds(t *testing.T) {
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name: "dnn_sweep", Algorithms: []string{"dnn"}, DataLoader: sampleLoader(18)})
	p := alchemy.FPGA()
	p.Schedule(model)
	reports, err := GenerateAcross(context.Background(), p, []string{"tofino", "taurus"}, WithSearchConfig(fastConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Platform != "tofino" || reports[1].Platform != "taurus" {
		t.Fatalf("kind selection lost: %+v", reports)
	}
	// DNN on tofino: pruned — report present, no model, no error.
	if reports[0].Err != nil || reports[0].Pipeline.Apps[0].Model != nil {
		t.Fatalf("tofino DNN must be an empty (pruned) result: %+v", reports[0])
	}
	if reports[1].Pipeline.Apps[0].Model == nil {
		t.Fatal("taurus DNN must deploy")
	}
}
