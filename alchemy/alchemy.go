// Package alchemy is the Homunculus frontend DSL (§3.1): a declarative
// interface where a network operator specifies *what* they want — the
// training data, the objective metric, the deployment target, and its
// performance/resource constraints — and never writes model definitions
// or training loops. It is the Go rendering of the paper's
// Python-embedded DSL (Figure 3):
//
//	loader := alchemy.DataLoaderFunc(loadAD)                    // @DataLoader
//	model := alchemy.NewModel(alchemy.ModelSpec{                // Model({...})
//	    Name:               "anomaly_detection",
//	    OptimizationMetric: "f1",
//	    Algorithms:         []string{"dnn"},
//	    DataLoader:         loader,
//	})
//	platform := alchemy.Taurus()                                // Platforms.Taurus()
//	platform.Constrain(alchemy.Constraints{                     // platform.constrain(...)
//	    Performance: alchemy.Performance{ThroughputGPkts: 1, LatencyNS: 500},
//	    Resources:   alchemy.Resources{Rows: 16, Cols: 16},
//	})
//	platform.Schedule(model)                                    // platform.schedule(...)
//	pipeline, err := homunculus.Generate(ctx, platform)         // homunculus.generate(...)
//
// Composition uses Seq (the > operator) and Par (the | operator):
// platform.Schedule(alchemy.Seq(m1, alchemy.Par(m2, m3), m4)).
package alchemy

import (
	"fmt"
	"slices"

	"repro/internal/dataset"
)

// Data is what a DataLoader produces: train/test features and labels,
// optionally with feature names (required for model fusion).
type Data struct {
	TrainX [][]float64
	TrainY []int
	TestX  [][]float64
	TestY  []int
	// FeatureNames labels the columns; generated code uses them for
	// header-field extraction.
	FeatureNames []string
}

// Validate reports data shape errors.
func (d *Data) Validate() error {
	if d == nil {
		return fmt.Errorf("alchemy: nil data")
	}
	if len(d.TrainX) == 0 || len(d.TestX) == 0 {
		return fmt.Errorf("alchemy: empty train or test split")
	}
	if len(d.TrainX) != len(d.TrainY) {
		return fmt.Errorf("alchemy: %d train rows but %d labels", len(d.TrainX), len(d.TrainY))
	}
	if len(d.TestX) != len(d.TestY) {
		return fmt.Errorf("alchemy: %d test rows but %d labels", len(d.TestX), len(d.TestY))
	}
	width := len(d.TrainX[0])
	for i, r := range d.TrainX {
		if len(r) != width {
			return fmt.Errorf("alchemy: ragged train row %d", i)
		}
	}
	for i, r := range d.TestX {
		if len(r) != width {
			return fmt.Errorf("alchemy: ragged test row %d", i)
		}
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != width {
		return fmt.Errorf("alchemy: %d feature names for %d features", len(d.FeatureNames), width)
	}
	return nil
}

// Datasets converts the loader output into internal datasets.
func (d *Data) Datasets() (train, test *dataset.Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	mk := func(x [][]float64, y []int) *dataset.Dataset {
		ds := dataset.New(len(x), len(x[0]))
		for i, row := range x {
			copy(ds.X.Row(i), row)
			ds.Y[i] = y[i]
		}
		if d.FeatureNames != nil {
			ds.FeatureNames = append([]string{}, d.FeatureNames...)
		}
		return ds
	}
	train, test = mk(d.TrainX, d.TrainY), mk(d.TestX, d.TestY)
	if err := train.Validate(); err != nil {
		return nil, nil, fmt.Errorf("alchemy: train data: %w", err)
	}
	if err := test.Validate(); err != nil {
		return nil, nil, fmt.Errorf("alchemy: test data: %w", err)
	}
	return train, test, nil
}

// FromDatasets renders internal train/test datasets as loader output —
// the converter every bundled-generator DataLoader (CLI, daemon,
// experiment sweeps) funnels through.
func FromDatasets(train, test *dataset.Dataset) *Data {
	data := &Data{FeatureNames: train.FeatureNames}
	for i := 0; i < train.Len(); i++ {
		data.TrainX = append(data.TrainX, append([]float64{}, train.X.Row(i)...))
		data.TrainY = append(data.TrainY, train.Y[i])
	}
	for i := 0; i < test.Len(); i++ {
		data.TestX = append(data.TestX, append([]float64{}, test.X.Row(i)...))
		data.TestY = append(data.TestY, test.Y[i])
	}
	return data
}

// DataLoader supplies and preprocesses the labeled dataset (the
// @DataLoader decorator).
type DataLoader interface {
	Load() (*Data, error)
}

// DataLoaderFunc adapts a function to DataLoader.
type DataLoaderFunc func() (*Data, error)

// Load implements DataLoader.
func (f DataLoaderFunc) Load() (*Data, error) { return f() }

// MetricNames lists the accepted optimization metrics.
func MetricNames() []string { return []string{"f1", "accuracy", "vmeasure"} }

// ModelSpec mirrors the arguments of Alchemy's Model class.
type ModelSpec struct {
	Name string
	// OptimizationMetric is the objective ("f1", "accuracy", "vmeasure").
	OptimizationMetric string
	// Algorithms restricts the search ("dnn", "svm", "kmeans", "dtree");
	// empty means every algorithm the platform supports.
	Algorithms []string
	DataLoader DataLoader
	// Normalize standardizes features (fit on train, folded into the
	// generated pipeline). Defaults to true via NewModel.
	Normalize *bool
}

// Model is a declared application model (not yet trained — Homunculus
// searches, trains, and maps it during Generate).
type Model struct {
	Spec ModelSpec
}

// NewModel declares a model from its spec, applying defaults
// (metric "f1", normalization on).
func NewModel(spec ModelSpec) *Model {
	if spec.OptimizationMetric == "" {
		spec.OptimizationMetric = "f1"
	}
	if spec.Normalize == nil {
		t := true
		spec.Normalize = &t
	}
	return &Model{Spec: spec}
}

// Validate reports specification errors.
func (m *Model) Validate() error {
	if m == nil {
		return fmt.Errorf("alchemy: nil model")
	}
	if m.Spec.Name == "" {
		return fmt.Errorf("alchemy: model with empty name")
	}
	if m.Spec.DataLoader == nil {
		return fmt.Errorf("alchemy: model %q has no data loader", m.Spec.Name)
	}
	if !slices.Contains(MetricNames(), m.Spec.OptimizationMetric) {
		return fmt.Errorf("alchemy: model %q has unknown metric %q (accepted: %v)",
			m.Spec.Name, m.Spec.OptimizationMetric, MetricNames())
	}
	return nil
}

// schedulable is satisfied by *Model and *Schedule.
type schedulable interface{ node() *Schedule }

// Op is a composition operator.
type Op int

// Composition operators: Seq is Alchemy's >, Par is |.
const (
	OpSeq Op = iota
	OpPar
	opLeaf
)

// Schedule is a composition DAG over models.
type Schedule struct {
	Op       Op
	Children []*Schedule
	Model    *Model
	// Mapper optionally transforms the upstream outputs into this node's
	// inputs (the IOMap construct). Recorded for codegen; identity if nil.
	Mapper *IOMap
}

func (s *Schedule) node() *Schedule { return s }

// node for Model: wrap as a leaf.
func (m *Model) node() *Schedule { return &Schedule{Op: opLeaf, Model: m} }

// Seq composes models/schedules sequentially (the > operator).
func Seq(items ...schedulable) *Schedule { return compose(OpSeq, items) }

// Par composes models/schedules in parallel (the | operator).
func Par(items ...schedulable) *Schedule { return compose(OpPar, items) }

func compose(op Op, items []schedulable) *Schedule {
	s := &Schedule{Op: op}
	for _, it := range items {
		if it == nil {
			s.Children = append(s.Children, nil)
			continue
		}
		s.Children = append(s.Children, it.node())
	}
	return s
}

// Validate reports scheduling errors.
func (s *Schedule) Validate() error {
	if s == nil {
		return fmt.Errorf("alchemy: nil schedule")
	}
	if s.Op == opLeaf {
		return s.Model.Validate()
	}
	if len(s.Children) == 0 {
		return fmt.Errorf("alchemy: empty composition")
	}
	for _, ch := range s.Children {
		if ch == nil {
			return fmt.Errorf("alchemy: nil child in composition")
		}
		if err := ch.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Models returns the scheduled models in order.
func (s *Schedule) Models() []*Model {
	if s == nil {
		return nil
	}
	if s.Op == opLeaf {
		return []*Model{s.Model}
	}
	var out []*Model
	for _, ch := range s.Children {
		out = append(out, ch.Models()...)
	}
	return out
}

// IOMap connects models' inputs and outputs (§3.1.1). The mapper function
// receives the upstream model's output vector and produces the downstream
// input vector; WithIOMap attaches it to a schedule node.
type IOMap struct {
	Name   string
	Mapper func(outputs []float64) []float64
}

// WithIOMap attaches an IO mapping to the schedule node and returns it
// (builder style).
func (s *Schedule) WithIOMap(m *IOMap) *Schedule {
	s.Mapper = m
	return s
}
