package alchemy_test

import (
	"fmt"

	"repro/alchemy"
)

// ExampleNewModel shows the Figure-3 model declaration.
func ExampleNewModel() {
	loader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		return &alchemy.Data{
			TrainX: [][]float64{{0, 0}, {1, 1}},
			TrainY: []int{0, 1},
			TestX:  [][]float64{{0.1, 0.1}},
			TestY:  []int{0},
		}, nil
	})
	model := alchemy.NewModel(alchemy.ModelSpec{
		Name:               "anomaly_detection",
		OptimizationMetric: "f1",
		Algorithms:         []string{"dnn"},
		DataLoader:         loader,
	})
	fmt.Println(model.Spec.Name, model.Spec.OptimizationMetric, *model.Spec.Normalize)
	// Output: anomaly_detection f1 true
}

// ExampleSeq demonstrates the > and | composition operators.
func ExampleSeq() {
	loader := alchemy.DataLoaderFunc(func() (*alchemy.Data, error) { return nil, nil })
	mk := func(name string) *alchemy.Model {
		return alchemy.NewModel(alchemy.ModelSpec{Name: name, DataLoader: loader})
	}
	prefilter, deep1, deep2 := mk("prefilter"), mk("deep1"), mk("deep2")
	// prefilter > (deep1 | deep2): a cascade feeding an ensemble.
	schedule := alchemy.Seq(prefilter, alchemy.Par(deep1, deep2))
	for _, m := range schedule.Models() {
		fmt.Println(m.Spec.Name)
	}
	// Output:
	// prefilter
	// deep1
	// deep2
}

// ExamplePlatform_Constrain mirrors Figure 3's platform block.
func ExamplePlatform_Constrain() {
	platform := alchemy.Taurus()
	platform.Constrain(alchemy.Constraints{
		Performance: alchemy.Performance{
			ThroughputGPkts: 1,   // GPkt/s
			LatencyNS:       500, // ns
		},
		Resources: alchemy.Resources{Rows: 16, Cols: 16},
	})
	fmt.Println(platform.Kind, platform.Constraints.Performance.LatencyNS)
	// Output: taurus 500
}
