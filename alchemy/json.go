package alchemy

// Canonical JSON serialization for Platform / Model / Schedule, plus the
// DataLoader catalog that makes model declarations wire-transportable.
//
// A DataLoader is arbitrary user code, so a declaration that should cross
// a process boundary (the homunculusd HTTP API) or act as a cache key
// must name its dataset instead of embedding it: RegisterLoader installs
// a loader in the process-wide catalog, and NamedLoader(name) is the
// reference the wire format carries. MarshalPlatform renders a declared
// platform — kind, constraints, schedule tree, model specs, dataset
// names — as canonical JSON (stable field order, deterministic bytes);
// UnmarshalPlatform rebuilds it, resolving dataset names through the
// catalog and preserving repeated-model identity (two schedule leaves
// naming the same model become the same *Model, so the compiler's
// load/search memoization still applies).
//
// DatasetFingerprint supplies the cache-keying half: a stable string
// identifying a loader's data — its catalog name when it has one, a
// sha256 over the materialized samples otherwise.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
)

// --- DataLoader catalog ---

var (
	catMu   sync.RWMutex
	catalog = map[string]DataLoader{}
)

// RegisterLoader installs a loader in the process-wide catalog under
// name. Registering the same name twice panics: loaders self-register at
// startup and a collision is a programming error (mirrors
// backend.Register).
func RegisterLoader(name string, l DataLoader) {
	if name == "" || l == nil {
		panic("alchemy: RegisterLoader needs a name and a loader")
	}
	catMu.Lock()
	defer catMu.Unlock()
	if _, dup := catalog[name]; dup {
		panic(fmt.Sprintf("alchemy: duplicate loader registration for %q", name))
	}
	catalog[name] = l
}

// LoaderRegistered reports whether name is in the catalog.
func LoaderRegistered(name string) bool {
	catMu.RLock()
	defer catMu.RUnlock()
	_, ok := catalog[name]
	return ok
}

// LoaderNames returns the registered dataset names, sorted.
func LoaderNames() []string {
	catMu.RLock()
	defer catMu.RUnlock()
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoaderFor resolves a catalog name; an unknown name's error lists every
// registered dataset so a typo in a request is a one-glance fix.
func LoaderFor(name string) (DataLoader, error) {
	catMu.RLock()
	l, ok := catalog[name]
	catMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("alchemy: unknown dataset %q (registered: %v)", name, LoaderNames())
	}
	return l, nil
}

// NamedDataLoader is the optional capability a loader exposes when it is
// a catalog reference: its name is what serialization writes in place of
// the loader itself.
type NamedDataLoader interface {
	DataLoader
	LoaderName() string
}

// Fingerprinter is the optional capability of loaders that can identify
// their data without materializing it; DatasetFingerprint uses it to
// avoid loading, and content-addressed caches key on the result.
type Fingerprinter interface {
	DataFingerprint() (string, error)
}

// namedLoader resolves through the catalog at Load time, so a reference
// can be declared (and serialized) before its dataset is registered.
type namedLoader struct{ name string }

// NamedLoader returns a catalog reference: a DataLoader that resolves
// name through the registered catalog at Load time. It implements
// NamedDataLoader and Fingerprinter.
func NamedLoader(name string) DataLoader { return namedLoader{name: name} }

func (n namedLoader) Load() (*Data, error) {
	l, err := LoaderFor(n.name)
	if err != nil {
		return nil, err
	}
	return l.Load()
}

func (n namedLoader) LoaderName() string { return n.name }

func (n namedLoader) DataFingerprint() (string, error) { return "catalog:" + n.name, nil }

// DatasetFingerprint returns a stable identifier for the loader's data:
// the loader's own fingerprint when it implements Fingerprinter, its
// catalog name when it is a NamedDataLoader, and otherwise a sha256 over
// the materialized samples (which costs one Load — callers that need the
// data anyway should Load once and call DataFingerprint themselves).
func DatasetFingerprint(l DataLoader) (string, error) {
	if l == nil {
		return "", fmt.Errorf("alchemy: nil data loader")
	}
	if f, ok := l.(Fingerprinter); ok {
		return f.DataFingerprint()
	}
	if n, ok := l.(NamedDataLoader); ok {
		return "catalog:" + n.LoaderName(), nil
	}
	data, err := l.Load()
	if err != nil {
		return "", fmt.Errorf("alchemy: fingerprint load: %w", err)
	}
	return DataFingerprint(data)
}

// DataFingerprint hashes already-materialized loader output: a sha256
// over feature names, sample matrices, and labels.
func DataFingerprint(data *Data) (string, error) {
	if err := data.Validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	var buf [8]byte
	writeF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeI := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	for _, name := range data.FeatureNames {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	for _, split := range [][][]float64{data.TrainX, data.TestX} {
		writeI(len(split))
		for _, row := range split {
			for _, v := range row {
				writeF(v)
			}
		}
	}
	for _, labels := range [][]int{data.TrainY, data.TestY} {
		for _, y := range labels {
			writeI(y)
		}
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// --- wire format ---

// PlatformJSON is the wire rendering of a declared platform. Field order
// is fixed, so json.Marshal of this tree is canonical: equal
// declarations produce equal bytes.
type PlatformJSON struct {
	Kind        string          `json:"kind"`
	Constraints ConstraintsJSON `json:"constraints"`
	Schedule    *ScheduleJSON   `json:"schedule,omitempty"`
}

// ConstraintsJSON flattens Constraints the way the CLI spec format does.
type ConstraintsJSON struct {
	ThroughputGPkts float64 `json:"throughput_gpkts,omitempty"`
	LatencyNS       float64 `json:"latency_ns,omitempty"`
	Rows            int     `json:"rows,omitempty"`
	Cols            int     `json:"cols,omitempty"`
	Tables          int     `json:"tables,omitempty"`
	MaxLUTPct       float64 `json:"max_lut_pct,omitempty"`
	MaxPowerW       float64 `json:"max_power_w,omitempty"`
}

// Constraints converts the wire form back to the DSL type.
func (c ConstraintsJSON) Constraints() Constraints {
	return Constraints{
		Performance: Performance{ThroughputGPkts: c.ThroughputGPkts, LatencyNS: c.LatencyNS},
		Resources: Resources{
			Rows: c.Rows, Cols: c.Cols, Tables: c.Tables,
			MaxLUTPct: c.MaxLUTPct, MaxPowerW: c.MaxPowerW,
		},
	}
}

func constraintsJSON(c Constraints) ConstraintsJSON {
	return ConstraintsJSON{
		ThroughputGPkts: c.Performance.ThroughputGPkts,
		LatencyNS:       c.Performance.LatencyNS,
		Rows:            c.Resources.Rows,
		Cols:            c.Resources.Cols,
		Tables:          c.Resources.Tables,
		MaxLUTPct:       c.Resources.MaxLUTPct,
		MaxPowerW:       c.Resources.MaxPowerW,
	}
}

// ScheduleJSON is one schedule-tree node: either a leaf (Model set) or a
// composition ("seq" / "par" over Children).
type ScheduleJSON struct {
	Op       string          `json:"op,omitempty"`
	Model    *ModelJSON      `json:"model,omitempty"`
	Children []*ScheduleJSON `json:"children,omitempty"`
	// IOMap carries the mapping's name only; mapper functions do not
	// serialize, and deserialized nodes get an identity mapping.
	IOMap string `json:"iomap,omitempty"`
}

// ModelJSON is the wire rendering of a ModelSpec: the dataset appears as
// its catalog name.
type ModelJSON struct {
	Name       string   `json:"name"`
	Metric     string   `json:"metric,omitempty"`
	Algorithms []string `json:"algorithms,omitempty"`
	Dataset    string   `json:"dataset"`
	Normalize  *bool    `json:"normalize,omitempty"`
}

// MarshalPlatform renders the declaration as canonical JSON. Every
// scheduled model's loader must be a catalog reference (NamedDataLoader —
// use NamedLoader or register loaders with RegisterLoader); arbitrary
// in-process loaders cannot cross the wire. Two distinct models sharing
// one name is an error, since names are the wire's only identity.
func MarshalPlatform(p *Platform) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("alchemy: nil platform")
	}
	doc := PlatformJSON{Kind: string(p.Kind), Constraints: constraintsJSON(p.Constraints)}
	byName := map[string]*Model{}
	var walk func(s *Schedule) (*ScheduleJSON, error)
	walk = func(s *Schedule) (*ScheduleJSON, error) {
		if s == nil {
			return nil, nil
		}
		node := &ScheduleJSON{}
		if s.Mapper != nil {
			node.IOMap = s.Mapper.Name
		}
		if s.Op == opLeaf {
			m := s.Model
			if m == nil {
				return nil, fmt.Errorf("alchemy: schedule leaf without a model")
			}
			if prev, seen := byName[m.Spec.Name]; seen && prev != m {
				return nil, fmt.Errorf("alchemy: two distinct models named %q cannot serialize", m.Spec.Name)
			}
			byName[m.Spec.Name] = m
			named, ok := m.Spec.DataLoader.(NamedDataLoader)
			if !ok {
				return nil, fmt.Errorf("alchemy: model %q: data loader is not a catalog reference (use NamedLoader / RegisterLoader)", m.Spec.Name)
			}
			node.Model = &ModelJSON{
				Name:       m.Spec.Name,
				Metric:     m.Spec.OptimizationMetric,
				Algorithms: m.Spec.Algorithms,
				Dataset:    named.LoaderName(),
				Normalize:  m.Spec.Normalize,
			}
			return node, nil
		}
		switch s.Op {
		case OpSeq:
			node.Op = "seq"
		case OpPar:
			node.Op = "par"
		default:
			return nil, fmt.Errorf("alchemy: unknown schedule op %d", s.Op)
		}
		for _, ch := range s.Children {
			c, err := walk(ch)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, c)
		}
		return node, nil
	}
	sched, err := walk(p.Sched)
	if err != nil {
		return nil, err
	}
	doc.Schedule = sched
	return json.Marshal(doc)
}

// UnmarshalPlatform rebuilds a declaration from its wire form. Dataset
// names become catalog references resolved at Load time (so they need
// not be registered yet); repeated model names map to one shared *Model.
func UnmarshalPlatform(data []byte) (*Platform, error) {
	var doc PlatformJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("alchemy: parse platform: %w", err)
	}
	return PlatformFromJSON(&doc)
}

// PlatformFromJSON converts an already-parsed wire document (e.g. one
// embedded in a larger request) into a Platform.
func PlatformFromJSON(doc *PlatformJSON) (*Platform, error) {
	if doc == nil {
		return nil, fmt.Errorf("alchemy: nil platform document")
	}
	if doc.Kind == "" {
		return nil, fmt.Errorf("alchemy: platform document needs a kind")
	}
	p := &Platform{Kind: PlatformKind(doc.Kind), Constraints: doc.Constraints.Constraints()}
	models := map[string]*Model{}
	seen := map[string]*ModelJSON{}
	var walk func(n *ScheduleJSON) (*Schedule, error)
	walk = func(n *ScheduleJSON) (*Schedule, error) {
		if n == nil {
			return nil, nil
		}
		var s *Schedule
		switch {
		case n.Model != nil:
			mj := n.Model
			if mj.Name == "" {
				return nil, fmt.Errorf("alchemy: model without a name")
			}
			if mj.Dataset == "" {
				return nil, fmt.Errorf("alchemy: model %q needs a dataset name", mj.Name)
			}
			m, ok := models[mj.Name]
			if !ok {
				m = NewModel(ModelSpec{
					Name:               mj.Name,
					OptimizationMetric: mj.Metric,
					Algorithms:         mj.Algorithms,
					DataLoader:         NamedLoader(mj.Dataset),
					Normalize:          mj.Normalize,
				})
				models[mj.Name] = m
				seen[mj.Name] = mj
			} else if !reflect.DeepEqual(seen[mj.Name], mj) {
				// Names are the wire's only model identity: a repeated
				// name with a conflicting spec would silently compile
				// against the first leaf's declaration.
				return nil, fmt.Errorf("alchemy: model %q declared twice with different specs", mj.Name)
			}
			s = m.node()
		case n.Op == "seq" || n.Op == "par":
			op := OpSeq
			if n.Op == "par" {
				op = OpPar
			}
			s = &Schedule{Op: op}
			for _, ch := range n.Children {
				c, err := walk(ch)
				if err != nil {
					return nil, err
				}
				if c == nil {
					return nil, fmt.Errorf("alchemy: nil child in %q composition", n.Op)
				}
				s.Children = append(s.Children, c)
			}
		default:
			return nil, fmt.Errorf("alchemy: schedule node needs a model or op \"seq\"/\"par\", got op %q", n.Op)
		}
		if n.IOMap != "" {
			s.Mapper = &IOMap{Name: n.IOMap}
		}
		return s, nil
	}
	sched, err := walk(doc.Schedule)
	if err != nil {
		return nil, err
	}
	p.Sched = sched
	return p, nil
}
