package alchemy

import (
	"math/rand"
	"testing"
)

func sampleData(seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % 2
			x[i] = []float64{float64(c) + rng.NormFloat64()*0.3, rng.NormFloat64()}
			y[i] = c
		}
		return x, y
	}
	d := &Data{FeatureNames: []string{"a", "b"}}
	d.TrainX, d.TrainY = mk(100)
	d.TestX, d.TestY = mk(40)
	return d
}

func TestDataValidate(t *testing.T) {
	if err := sampleData(1).Validate(); err != nil {
		t.Fatal(err)
	}
	var nilData *Data
	if nilData.Validate() == nil {
		t.Fatal("nil data must fail")
	}
	d := sampleData(1)
	d.TrainY = d.TrainY[:10]
	if d.Validate() == nil {
		t.Fatal("label mismatch must fail")
	}
	d2 := sampleData(1)
	d2.TrainX[5] = []float64{1}
	if d2.Validate() == nil {
		t.Fatal("ragged rows must fail")
	}
	d3 := sampleData(1)
	d3.FeatureNames = []string{"only_one"}
	if d3.Validate() == nil {
		t.Fatal("wrong name count must fail")
	}
	d4 := sampleData(1)
	d4.TestX, d4.TestY = nil, nil
	if d4.Validate() == nil {
		t.Fatal("empty test must fail")
	}
}

func TestDatasets(t *testing.T) {
	train, test, err := sampleData(2).Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 100 || test.Len() != 40 || train.Features() != 2 {
		t.Fatal("dataset conversion wrong")
	}
	if train.FeatureNames[1] != "b" {
		t.Fatal("feature names must carry over")
	}
}

func TestNewModelDefaults(t *testing.T) {
	m := NewModel(ModelSpec{Name: "x", DataLoader: DataLoaderFunc(func() (*Data, error) { return sampleData(3), nil })})
	if m.Spec.OptimizationMetric != "f1" {
		t.Fatal("default metric must be f1")
	}
	if m.Spec.Normalize == nil || !*m.Spec.Normalize {
		t.Fatal("normalization must default on")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidate(t *testing.T) {
	var nilModel *Model
	if nilModel.Validate() == nil {
		t.Fatal("nil model must fail")
	}
	if NewModel(ModelSpec{Name: "", DataLoader: DataLoaderFunc(nil)}).Validate() == nil {
		t.Fatal("empty name must fail")
	}
	if NewModel(ModelSpec{Name: "x"}).Validate() == nil {
		t.Fatal("missing loader must fail")
	}
	m := NewModel(ModelSpec{Name: "x", OptimizationMetric: "zzz",
		DataLoader: DataLoaderFunc(func() (*Data, error) { return nil, nil })})
	if m.Validate() == nil {
		t.Fatal("unknown metric must fail")
	}
}

func mkModel(name string) *Model {
	return NewModel(ModelSpec{Name: name,
		DataLoader: DataLoaderFunc(func() (*Data, error) { return sampleData(4), nil })})
}

func TestSeqParComposition(t *testing.T) {
	a, b, c := mkModel("a"), mkModel("b"), mkModel("c")
	s := Seq(a, Par(b, c))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	models := s.Models()
	if len(models) != 3 || models[0].Spec.Name != "a" || models[2].Spec.Name != "c" {
		t.Fatalf("Models order wrong: %d", len(models))
	}
}

func TestScheduleValidateErrors(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Validate() == nil {
		t.Fatal("nil schedule must fail")
	}
	if Seq().Validate() == nil {
		t.Fatal("empty composition must fail")
	}
	if Seq(nil).Validate() == nil {
		t.Fatal("nil child must fail")
	}
}

func TestIOMapAttaches(t *testing.T) {
	a, b := mkModel("a"), mkModel("b")
	m := &IOMap{Name: "route", Mapper: func(o []float64) []float64 { return o }}
	s := Seq(a, b).WithIOMap(m)
	if s.Mapper == nil || s.Mapper.Name != "route" {
		t.Fatal("IOMap must attach")
	}
}

func TestPlatformDefaults(t *testing.T) {
	p := Taurus()
	if p.Constraints.Resources.Rows != 16 || p.Constraints.Performance.LatencyNS != 500 {
		t.Fatalf("taurus defaults: %+v", p.Constraints)
	}
	if Tofino().Constraints.Resources.Tables != 32 {
		t.Fatal("tofino defaults")
	}
	if FPGA().Constraints.Resources.MaxLUTPct != 100 {
		t.Fatal("fpga defaults")
	}
	if PlatformTaurus.String() != "taurus" || PlatformKind("abacus").String() != "abacus" {
		t.Fatal("platform stringer")
	}
	if _, err := PlatformFor("abacus"); err == nil {
		t.Fatal("unregistered kind must fail")
	}
	if p, err := PlatformFor("fpga"); err != nil || p.Constraints.Resources.MaxPowerW != 0 {
		t.Fatalf("fpga power cap must default to unbounded (0): %+v, %v", p, err)
	}
}

func TestConstrainOverrides(t *testing.T) {
	p := Taurus()
	p.Constrain(Constraints{
		Performance: Performance{ThroughputGPkts: 0.5},
		Resources:   Resources{Rows: 8},
	})
	if p.Constraints.Performance.ThroughputGPkts != 0.5 {
		t.Fatal("throughput override lost")
	}
	if p.Constraints.Resources.Rows != 8 {
		t.Fatal("rows override lost")
	}
	// untouched fields keep defaults
	if p.Constraints.Performance.LatencyNS != 500 || p.Constraints.Resources.Cols != 16 {
		t.Fatal("defaults must persist")
	}
}

func TestPlatformValidate(t *testing.T) {
	p := Taurus()
	if p.Validate() == nil {
		t.Fatal("platform without schedule must fail")
	}
	p.Schedule(mkModel("a"))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilPlat *Platform
	if nilPlat.Validate() == nil {
		t.Fatal("nil platform must fail")
	}
}

func TestScheduleComposite(t *testing.T) {
	p := Taurus()
	p.Schedule(Seq(mkModel("a"), mkModel("b")))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Sched.Models()) != 2 {
		t.Fatal("composite schedule lost models")
	}
}
