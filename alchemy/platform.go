package alchemy

import (
	"fmt"

	"repro/internal/backend"
)

// PlatformKind identifies a backend family by its registry name. The set
// of legal kinds is whatever internal/backend has registered — the DSL
// carries no platform list of its own.
type PlatformKind string

// Bundled platforms (the Platforms class: Taurus, Tofino, FPGA). Any
// registered backend kind is legal; these constants just name the three
// the paper evaluates.
const (
	PlatformTaurus PlatformKind = "taurus"
	PlatformTofino PlatformKind = "tofino"
	PlatformFPGA   PlatformKind = "fpga"
)

// String names the platform.
func (k PlatformKind) String() string { return string(k) }

// Performance holds the network constraints the operator declares
// ("performance": {"throughput": 1, "latency": 500}). It aliases the
// backend-neutral constraint type: what the DSL declares is exactly what
// backend factories consume.
type Performance = backend.Performance

// Resources holds the platform resource declaration. Fields apply per
// platform: Rows/Cols for Taurus grids, Tables for MAT switches,
// MaxLUTPct/MaxPowerW for FPGAs. Zero values select platform defaults.
type Resources = backend.Resources

// Constraints pairs performance and resource declarations (the < operator
// of Table 1: Platforms < (performance, resources)).
type Constraints = backend.Constraints

// Platform is a declared deployment target plus its constraints and
// scheduled models.
type Platform struct {
	Kind        PlatformKind
	Constraints Constraints
	Sched       *Schedule
}

// PlatformFor declares a target of the given registered backend kind,
// pre-filled with that backend's default constraints (the evaluation
// setups: 16×16 Taurus grid at 1 GPkt/s / 500 ns, 32-table Tofino,
// Alveo U250 at 100% LUT / unbounded power).
func PlatformFor(kind string) (*Platform, error) {
	defaults, err := backend.Defaults(kind)
	if err != nil {
		return nil, fmt.Errorf("alchemy: %w", err)
	}
	return &Platform{Kind: PlatformKind(kind), Constraints: defaults}, nil
}

// mustPlatform backs the bundled constructors, whose kinds are always
// registered.
func mustPlatform(kind PlatformKind) *Platform {
	p, err := PlatformFor(string(kind))
	if err != nil {
		panic(err)
	}
	return p
}

// Taurus declares a Taurus switch target with the evaluation defaults.
func Taurus() *Platform { return mustPlatform(PlatformTaurus) }

// Tofino declares a MAT-pipeline switch target.
func Tofino() *Platform { return mustPlatform(PlatformTofino) }

// FPGA declares an FPGA NIC/accelerator target (Alveo U250 testbed).
func FPGA() *Platform { return mustPlatform(PlatformFPGA) }

// Constrain overrides the platform constraints (platform.constrain(...)).
// Zero-valued fields keep the current setting.
func (p *Platform) Constrain(c Constraints) *Platform {
	if c.Performance.ThroughputGPkts > 0 {
		p.Constraints.Performance.ThroughputGPkts = c.Performance.ThroughputGPkts
	}
	if c.Performance.LatencyNS > 0 {
		p.Constraints.Performance.LatencyNS = c.Performance.LatencyNS
	}
	if c.Resources.Rows > 0 {
		p.Constraints.Resources.Rows = c.Resources.Rows
	}
	if c.Resources.Cols > 0 {
		p.Constraints.Resources.Cols = c.Resources.Cols
	}
	if c.Resources.Tables > 0 {
		p.Constraints.Resources.Tables = c.Resources.Tables
	}
	if c.Resources.MaxLUTPct > 0 {
		p.Constraints.Resources.MaxLUTPct = c.Resources.MaxLUTPct
	}
	if c.Resources.MaxPowerW > 0 {
		p.Constraints.Resources.MaxPowerW = c.Resources.MaxPowerW
	}
	return p
}

// Schedule installs a model or composition on the platform
// (platform.schedule(model) / platform.schedule(m1 > m2)).
func (p *Platform) Schedule(item interface {
	node() *Schedule
}) *Platform {
	if item == nil {
		p.Sched = nil
		return p
	}
	p.Sched = item.node()
	return p
}

// BackendSpec renders the declaration as the backend-neutral build
// request the registry consumes.
func (p *Platform) BackendSpec() backend.Spec {
	return backend.Spec{Kind: string(p.Kind), Constraints: p.Constraints}
}

// Validate reports declaration errors. Platform kinds are checked against
// the backend registry, so a new registered backend is immediately legal
// in the DSL.
func (p *Platform) Validate() error {
	if p == nil {
		return fmt.Errorf("alchemy: nil platform")
	}
	if !backend.Registered(string(p.Kind)) {
		return fmt.Errorf("alchemy: unknown platform kind %q (registered: %v)", p.Kind, backend.Names())
	}
	if p.Sched == nil {
		return fmt.Errorf("alchemy: platform %s has no scheduled models", p.Kind)
	}
	return p.Sched.Validate()
}
