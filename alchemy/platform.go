package alchemy

import (
	"fmt"
)

// PlatformKind identifies a backend family.
type PlatformKind int

// Supported platforms (the Platforms class: Taurus, Tofino, FPGA).
const (
	PlatformTaurus PlatformKind = iota
	PlatformTofino
	PlatformFPGA
)

// String names the platform.
func (k PlatformKind) String() string {
	switch k {
	case PlatformTaurus:
		return "taurus"
	case PlatformTofino:
		return "tofino"
	case PlatformFPGA:
		return "fpga"
	default:
		return fmt.Sprintf("PlatformKind(%d)", int(k))
	}
}

// Performance holds the network constraints the operator declares
// ("performance": {"throughput": 1, "latency": 500}).
type Performance struct {
	ThroughputGPkts float64 // minimum, GPkt/s
	LatencyNS       float64 // maximum, nanoseconds
}

// Resources holds the platform resource declaration. Fields apply per
// platform: Rows/Cols for Taurus grids, Tables for MAT switches,
// MaxLUTPct/MaxPowerW for FPGAs. Zero values select platform defaults.
type Resources struct {
	Rows, Cols int     // Taurus CGRA grid
	Tables     int     // MAT table budget
	MaxLUTPct  float64 // FPGA utilization cap
	MaxPowerW  float64 // FPGA power cap
}

// Constraints pairs performance and resource declarations (the < operator
// of Table 1: Platforms < (performance, resources)).
type Constraints struct {
	Performance Performance
	Resources   Resources
}

// Platform is a declared deployment target plus its constraints and
// scheduled models.
type Platform struct {
	Kind        PlatformKind
	Constraints Constraints
	Sched       *Schedule
}

// Taurus declares a Taurus switch target with the evaluation defaults
// (1 GPkt/s, 500 ns, 16×16 grid).
func Taurus() *Platform {
	return &Platform{
		Kind: PlatformTaurus,
		Constraints: Constraints{
			Performance: Performance{ThroughputGPkts: 1, LatencyNS: 500},
			Resources:   Resources{Rows: 16, Cols: 16},
		},
	}
}

// Tofino declares a MAT-pipeline switch target.
func Tofino() *Platform {
	return &Platform{
		Kind: PlatformTofino,
		Constraints: Constraints{
			Performance: Performance{ThroughputGPkts: 1, LatencyNS: 1000},
			Resources:   Resources{Tables: 32},
		},
	}
}

// FPGA declares an FPGA NIC/accelerator target (Alveo U250 testbed).
func FPGA() *Platform {
	return &Platform{
		Kind: PlatformFPGA,
		Constraints: Constraints{
			Performance: Performance{ThroughputGPkts: 0.1, LatencyNS: 2000},
			Resources:   Resources{MaxLUTPct: 100, MaxPowerW: 1e9},
		},
	}
}

// Constrain overrides the platform constraints (platform.constrain(...)).
// Zero-valued fields keep the current setting.
func (p *Platform) Constrain(c Constraints) *Platform {
	if c.Performance.ThroughputGPkts > 0 {
		p.Constraints.Performance.ThroughputGPkts = c.Performance.ThroughputGPkts
	}
	if c.Performance.LatencyNS > 0 {
		p.Constraints.Performance.LatencyNS = c.Performance.LatencyNS
	}
	if c.Resources.Rows > 0 {
		p.Constraints.Resources.Rows = c.Resources.Rows
	}
	if c.Resources.Cols > 0 {
		p.Constraints.Resources.Cols = c.Resources.Cols
	}
	if c.Resources.Tables > 0 {
		p.Constraints.Resources.Tables = c.Resources.Tables
	}
	if c.Resources.MaxLUTPct > 0 {
		p.Constraints.Resources.MaxLUTPct = c.Resources.MaxLUTPct
	}
	if c.Resources.MaxPowerW > 0 {
		p.Constraints.Resources.MaxPowerW = c.Resources.MaxPowerW
	}
	return p
}

// Schedule installs a model or composition on the platform
// (platform.schedule(model) / platform.schedule(m1 > m2)).
func (p *Platform) Schedule(item interface {
	node() *Schedule
}) *Platform {
	if item == nil {
		p.Sched = nil
		return p
	}
	p.Sched = item.node()
	return p
}

// Validate reports declaration errors.
func (p *Platform) Validate() error {
	if p == nil {
		return fmt.Errorf("alchemy: nil platform")
	}
	switch p.Kind {
	case PlatformTaurus, PlatformTofino, PlatformFPGA:
	default:
		return fmt.Errorf("alchemy: unknown platform kind %d", int(p.Kind))
	}
	if p.Sched == nil {
		return fmt.Errorf("alchemy: platform %s has no scheduled models", p.Kind)
	}
	return p.Sched.Validate()
}
