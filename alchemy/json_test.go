package alchemy

import (
	"bytes"
	"strings"
	"testing"
)

func jsonTestData(scale float64) *Data {
	d := &Data{FeatureNames: []string{"a", "b"}}
	for i := 0; i < 8; i++ {
		d.TrainX = append(d.TrainX, []float64{float64(i) * scale, 1 - float64(i%2)})
		d.TrainY = append(d.TrainY, i%2)
		d.TestX = append(d.TestX, []float64{float64(i)*scale + 0.5, float64(i % 2)})
		d.TestY = append(d.TestY, i%2)
	}
	return d
}

func TestLoaderCatalog(t *testing.T) {
	RegisterLoader("json_test_ds", DataLoaderFunc(func() (*Data, error) { return jsonTestData(1), nil }))
	if !LoaderRegistered("json_test_ds") {
		t.Fatal("registered loader not found")
	}
	l, err := LoaderFor("json_test_ds")
	if err != nil {
		t.Fatal(err)
	}
	if data, err := l.Load(); err != nil || len(data.TrainX) != 8 {
		t.Fatalf("catalog loader broken: %v", err)
	}
	_, err = LoaderFor("json_test_nope")
	if err == nil || !strings.Contains(err.Error(), "registered:") || !strings.Contains(err.Error(), "json_test_ds") {
		t.Fatalf("unknown-dataset error must list the catalog, got: %v", err)
	}
	// NamedLoader resolves lazily through the catalog and fingerprints
	// by name.
	named := NamedLoader("json_test_ds")
	if data, err := named.Load(); err != nil || len(data.TestX) != 8 {
		t.Fatalf("named loader broken: %v", err)
	}
	fp, err := DatasetFingerprint(named)
	if err != nil || fp != "catalog:json_test_ds" {
		t.Fatalf("named fingerprint = %q, %v", fp, err)
	}
}

func TestDatasetFingerprintByContent(t *testing.T) {
	mk := func(scale float64) DataLoader {
		return DataLoaderFunc(func() (*Data, error) { return jsonTestData(scale), nil })
	}
	a1, err := DatasetFingerprint(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := DatasetFingerprint(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("identical content must fingerprint identically")
	}
	if !strings.HasPrefix(a1, "sha256:") {
		t.Fatalf("anonymous loaders fingerprint by content, got %q", a1)
	}
	b, err := DatasetFingerprint(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	if b == a1 {
		t.Fatal("different content must fingerprint differently")
	}
}

func TestPlatformRoundTrip(t *testing.T) {
	if !LoaderRegistered("json_test_rt") {
		RegisterLoader("json_test_rt", DataLoaderFunc(func() (*Data, error) { return jsonTestData(3), nil }))
	}
	m1 := NewModel(ModelSpec{
		Name: "m1", OptimizationMetric: "accuracy", Algorithms: []string{"dtree", "svm"},
		DataLoader: NamedLoader("json_test_rt")})
	m2 := NewModel(ModelSpec{Name: "m2", DataLoader: NamedLoader("json_test_rt")})
	p := Taurus()
	p.Constrain(Constraints{
		Performance: Performance{ThroughputGPkts: 2, LatencyNS: 400},
		Resources:   Resources{Rows: 12, Cols: 10},
	})
	// m1 scheduled twice: the wire format must preserve that both leaves
	// are the SAME model (load/search memoization depends on identity).
	p.Schedule(Seq(m1, Par(m2, m1)))

	raw, err := MarshalPlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := MarshalPlatform(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("canonical marshal must be deterministic")
	}

	back, err := UnmarshalPlatform(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != PlatformTaurus {
		t.Fatalf("kind %q", back.Kind)
	}
	if back.Constraints.Performance.ThroughputGPkts != 2 || back.Constraints.Resources.Rows != 12 {
		t.Fatalf("constraints lost: %+v", back.Constraints)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	models := back.Sched.Models()
	if len(models) != 3 {
		t.Fatalf("models = %d, want 3 leaves", len(models))
	}
	if models[0] != models[2] {
		t.Fatal("repeated model leaves must share one *Model instance")
	}
	if models[0].Spec.OptimizationMetric != "accuracy" || len(models[0].Spec.Algorithms) != 2 {
		t.Fatalf("m1 spec lost: %+v", models[0].Spec)
	}
	if data, err := models[1].Spec.DataLoader.Load(); err != nil || len(data.TrainX) != 8 {
		t.Fatalf("deserialized loader must resolve through the catalog: %v", err)
	}
	// The round trip is canonical: marshalling the rebuilt platform
	// reproduces the bytes.
	raw3, err := MarshalPlatform(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw3) {
		t.Fatalf("round trip not canonical:\n%s\n%s", raw, raw3)
	}
}

func TestMarshalRejectsAnonymousLoader(t *testing.T) {
	m := NewModel(ModelSpec{Name: "anon",
		DataLoader: DataLoaderFunc(func() (*Data, error) { return jsonTestData(1), nil })})
	p := Taurus()
	p.Schedule(m)
	_, err := MarshalPlatform(p)
	if err == nil || !strings.Contains(err.Error(), "catalog") {
		t.Fatalf("anonymous loaders must not serialize, got: %v", err)
	}
}

func TestMarshalRejectsDuplicateModelNames(t *testing.T) {
	if !LoaderRegistered("json_test_dup") {
		RegisterLoader("json_test_dup", DataLoaderFunc(func() (*Data, error) { return jsonTestData(1), nil }))
	}
	a := NewModel(ModelSpec{Name: "same", DataLoader: NamedLoader("json_test_dup")})
	b := NewModel(ModelSpec{Name: "same", DataLoader: NamedLoader("json_test_dup")})
	p := Taurus()
	p.Schedule(Seq(a, b))
	if _, err := MarshalPlatform(p); err == nil {
		t.Fatal("two distinct models with one name must not serialize")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"no kind":     `{"constraints":{}}`,
		"bad op":      `{"kind":"taurus","schedule":{"op":"loop","children":[]}}`,
		"no dataset":  `{"kind":"taurus","schedule":{"model":{"name":"x"}}}`,
		"no name":     `{"kind":"taurus","schedule":{"model":{"dataset":"d"}}}`,
		"not json":    `{`,
		"nil seq kid": `{"kind":"taurus","schedule":{"op":"seq","children":[null]}}`,
	}
	for label, raw := range cases {
		if _, err := UnmarshalPlatform([]byte(raw)); err == nil {
			t.Fatalf("%s: must fail", label)
		}
	}
}

func TestMetricValidatorListsAccepted(t *testing.T) {
	m := NewModel(ModelSpec{Name: "m", OptimizationMetric: "auc",
		DataLoader: DataLoaderFunc(func() (*Data, error) { return jsonTestData(1), nil })})
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "f1") || !strings.Contains(err.Error(), "vmeasure") {
		t.Fatalf("metric error must list accepted values, got: %v", err)
	}
}

func TestUnmarshalRejectsConflictingRepeatedModels(t *testing.T) {
	raw := `{"kind":"taurus","schedule":{"op":"seq","children":[
		{"model":{"name":"x","dataset":"a"}},
		{"model":{"name":"x","dataset":"b","metric":"accuracy"}}]}}`
	if _, err := UnmarshalPlatform([]byte(raw)); err == nil || !strings.Contains(err.Error(), "different specs") {
		t.Fatalf("conflicting repeated model must fail, got: %v", err)
	}
	// Identical repeats are fine and share one instance.
	ok := `{"kind":"taurus","schedule":{"op":"seq","children":[
		{"model":{"name":"x","dataset":"a"}},
		{"model":{"name":"x","dataset":"a"}}]}}`
	p, err := UnmarshalPlatform([]byte(ok))
	if err != nil {
		t.Fatal(err)
	}
	if ms := p.Sched.Models(); len(ms) != 2 || ms[0] != ms[1] {
		t.Fatal("identical repeats must share one *Model")
	}
}
