// Package metrics implements the classification and clustering quality
// metrics reported in the Homunculus evaluation: F1 score (binary and
// macro-averaged), precision, recall, accuracy, confusion matrices, and
// the V-measure used for KMeans traffic clustering (Figure 7).
package metrics

import (
	"fmt"
	"math"
)

// Confusion is a square confusion matrix: Count[actual][predicted].
type Confusion struct {
	Classes int
	Count   [][]int
}

// NewConfusion returns an empty confusion matrix over n classes.
func NewConfusion(n int) *Confusion {
	c := &Confusion{Classes: n, Count: make([][]int, n)}
	for i := range c.Count {
		c.Count[i] = make([]int, n)
	}
	return c
}

// Observe records one (actual, predicted) pair. Labels outside [0, Classes)
// are ignored so streaming callers need not pre-validate.
func (c *Confusion) Observe(actual, predicted int) {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return
	}
	c.Count[actual][predicted]++
}

// Total returns the number of observed pairs.
func (c *Confusion) Total() int {
	t := 0
	for _, row := range c.Count {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the fraction of correct predictions, or 0 when empty.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.Classes; i++ {
		correct += c.Count[i][i]
	}
	return float64(correct) / float64(total)
}

// PrecisionRecall returns the precision and recall of class k
// (one-vs-rest). Undefined ratios (zero denominators) yield 0.
func (c *Confusion) PrecisionRecall(k int) (precision, recall float64) {
	if k < 0 || k >= c.Classes {
		return 0, 0
	}
	tp := c.Count[k][k]
	fp, fn := 0, 0
	for i := 0; i < c.Classes; i++ {
		if i == k {
			continue
		}
		fp += c.Count[i][k]
		fn += c.Count[k][i]
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// F1 returns the F1 score of class k (one-vs-rest).
func (c *Confusion) F1(k int) float64 {
	p, r := c.PrecisionRecall(k)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 returns the unweighted mean of per-class F1 scores.
func (c *Confusion) MacroF1() float64 {
	if c.Classes == 0 {
		return 0
	}
	var s float64
	for k := 0; k < c.Classes; k++ {
		s += c.F1(k)
	}
	return s / float64(c.Classes)
}

// String renders the matrix for logs and reports.
func (c *Confusion) String() string {
	s := "actual\\pred"
	for j := 0; j < c.Classes; j++ {
		s += fmt.Sprintf("\t%d", j)
	}
	for i := 0; i < c.Classes; i++ {
		s += fmt.Sprintf("\n%d", i)
		for j := 0; j < c.Classes; j++ {
			s += fmt.Sprintf("\t%d", c.Count[i][j])
		}
	}
	return s
}

// F1Binary computes the F1 score of the positive class (label 1) for
// binary classification given parallel actual/predicted label slices.
func F1Binary(actual, predicted []int) float64 {
	c := FromLabels(actual, predicted, 2)
	return c.F1(1)
}

// FromLabels builds a confusion matrix over n classes from parallel label
// slices. Slices must be the same length.
func FromLabels(actual, predicted []int, n int) *Confusion {
	if len(actual) != len(predicted) {
		panic(fmt.Sprintf("metrics: label length mismatch %d vs %d", len(actual), len(predicted)))
	}
	c := NewConfusion(n)
	for i := range actual {
		c.Observe(actual[i], predicted[i])
	}
	return c
}

// NumClasses returns 1 + the maximum label seen in the slices (minimum 1),
// a convenience for building confusion matrices from raw labels.
func NumClasses(labelSets ...[]int) int {
	max := 0
	for _, set := range labelSets {
		for _, v := range set {
			if v > max {
				max = v
			}
		}
	}
	return max + 1
}

// VMeasure computes the clustering V-measure (harmonic mean of homogeneity
// and completeness, Rosenberg & Hirschberg 2007) between ground-truth class
// labels and predicted cluster assignments. This is the metric Figure 7
// tracks for IIsy-backed KMeans models.
func VMeasure(classes, clusters []int) float64 {
	h := Homogeneity(classes, clusters)
	c := Completeness(classes, clusters)
	if h+c == 0 {
		return 0
	}
	return 2 * h * c / (h + c)
}

// Homogeneity is 1 when each cluster contains only members of one class.
func Homogeneity(classes, clusters []int) float64 {
	hck, hc := conditionalEntropy(classes, clusters), entropy(classes)
	if hc == 0 {
		return 1
	}
	return 1 - hck/hc
}

// Completeness is 1 when all members of a class land in the same cluster.
func Completeness(classes, clusters []int) float64 {
	hkc, hk := conditionalEntropy(clusters, classes), entropy(clusters)
	if hk == 0 {
		return 1
	}
	return 1 - hkc/hk
}

func entropy(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, v := range labels {
		counts[v]++
	}
	n := float64(len(labels))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h
}

// conditionalEntropy returns H(target | given).
func conditionalEntropy(target, given []int) float64 {
	if len(target) != len(given) {
		panic(fmt.Sprintf("metrics: conditionalEntropy length mismatch %d vs %d", len(target), len(given)))
	}
	if len(target) == 0 {
		return 0
	}
	joint := map[[2]int]int{}
	margin := map[int]int{}
	for i := range target {
		joint[[2]int{given[i], target[i]}]++
		margin[given[i]]++
	}
	n := float64(len(target))
	var h float64
	for key, c := range joint {
		pxy := float64(c) / n
		py := float64(margin[key[0]]) / n
		h -= pxy * math.Log(pxy/py)
	}
	return h
}
