package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion(2)
	// 3 TP, 1 FP, 1 FN, 5 TN for class 1
	for i := 0; i < 3; i++ {
		c.Observe(1, 1)
	}
	c.Observe(0, 1)
	c.Observe(1, 0)
	for i := 0; i < 5; i++ {
		c.Observe(0, 0)
	}
	if c.Total() != 10 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
	p, r := c.PrecisionRecall(1)
	if math.Abs(p-0.75) > 1e-12 || math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("P/R = %v/%v", p, r)
	}
	if got := c.F1(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("F1 = %v", got)
	}
}

func TestObserveOutOfRangeIgnored(t *testing.T) {
	c := NewConfusion(2)
	c.Observe(-1, 0)
	c.Observe(0, 5)
	if c.Total() != 0 {
		t.Fatal("out-of-range labels must be ignored")
	}
}

func TestEmptyConfusionSafe(t *testing.T) {
	c := NewConfusion(3)
	if c.Accuracy() != 0 || c.MacroF1() != 0 || c.F1(0) != 0 {
		t.Fatal("empty confusion must yield zeros, not NaN")
	}
	p, r := c.PrecisionRecall(5)
	if p != 0 || r != 0 {
		t.Fatal("out-of-range class must yield zeros")
	}
}

func TestF1Binary(t *testing.T) {
	actual := []int{1, 1, 1, 0, 0, 0}
	pred := []int{1, 1, 0, 1, 0, 0}
	// tp=2 fp=1 fn=1 -> p=2/3 r=2/3 f1=2/3
	if got := F1Binary(actual, pred); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F1Binary = %v", got)
	}
}

func TestMacroF1PerfectPrediction(t *testing.T) {
	actual := []int{0, 1, 2, 0, 1, 2}
	c := FromLabels(actual, actual, 3)
	if got := c.MacroF1(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MacroF1 perfect = %v", got)
	}
}

func TestNumClasses(t *testing.T) {
	if NumClasses([]int{0, 3}, []int{1}) != 4 {
		t.Fatal("NumClasses wrong")
	}
	if NumClasses(nil) != 1 {
		t.Fatal("NumClasses empty should be 1")
	}
}

func TestVMeasurePerfectClustering(t *testing.T) {
	classes := []int{0, 0, 1, 1, 2, 2}
	clusters := []int{5, 5, 7, 7, 9, 9} // relabeled but identical partition
	if got := VMeasure(classes, clusters); math.Abs(got-1) > 1e-12 {
		t.Fatalf("VMeasure perfect = %v", got)
	}
}

func TestVMeasureSingleCluster(t *testing.T) {
	classes := []int{0, 0, 1, 1}
	clusters := []int{0, 0, 0, 0}
	// Single cluster: completeness 1, homogeneity 0 -> V = 0.
	if got := VMeasure(classes, clusters); got != 0 {
		t.Fatalf("VMeasure single cluster = %v", got)
	}
	if Completeness(classes, clusters) != 1 {
		t.Fatal("completeness must be 1 for one cluster")
	}
	if Homogeneity(classes, clusters) != 0 {
		t.Fatal("homogeneity must be 0 for one mixed cluster")
	}
}

func TestVMeasureDegradesWithMerging(t *testing.T) {
	// Ground truth: 4 classes. Clusters that merge classes should score
	// lower than the perfect clustering.
	n := 400
	rng := rand.New(rand.NewSource(42))
	classes := make([]int, n)
	for i := range classes {
		classes[i] = rng.Intn(4)
	}
	perfect := append([]int{}, classes...)
	merged := make([]int, n)
	for i, c := range classes {
		merged[i] = c / 2 // merge 0&1, 2&3
	}
	vp, vm := VMeasure(classes, perfect), VMeasure(classes, merged)
	if vp <= vm {
		t.Fatalf("perfect (%v) must beat merged (%v)", vp, vm)
	}
}

// Property: V-measure is symmetric under cluster relabeling and bounded
// in [0, 1].
func TestVMeasureQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		classes := make([]int, n)
		clusters := make([]int, n)
		for i := 0; i < n; i++ {
			classes[i] = rng.Intn(4)
			clusters[i] = rng.Intn(5)
		}
		v := VMeasure(classes, clusters)
		if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
			return false
		}
		// relabel clusters by +10: must not change the score
		relabeled := make([]int, n)
		for i, c := range clusters {
			relabeled[i] = c + 10
		}
		return math.Abs(VMeasure(classes, relabeled)-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: accuracy and macro-F1 are 1 when predictions equal labels.
func TestPerfectPredictionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		c := FromLabels(labels, labels, 3)
		return math.Abs(c.Accuracy()-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionString(t *testing.T) {
	c := NewConfusion(2)
	c.Observe(0, 1)
	s := c.String()
	if len(s) == 0 {
		t.Fatal("String must render something")
	}
}
