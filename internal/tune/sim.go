package tune

import (
	"context"
	"math"
	"time"

	"repro/internal/serve"
)

// SimEvaluator is a deterministic analytic stand-in for the replay
// evaluator: a closed-form queueing sketch of the ring scheduler under
// the standard quiet/burst duty cycle. It exists for two jobs where
// real timing is the wrong tool:
//
//   - determinism tests: same seed + same trace must yield the same
//     frontier, which real wall-clock measurement cannot promise;
//   - the CI tuner-vs-grid gate: asserting "tuner within 10% of the
//     best grid point" needs a noise-free landscape.
//
// The landscape encodes the real trade-offs the adaptive-flush design
// targets. Sweep dispatch costs a fixed overhead, so capacity rises
// with batch size; greedy flushing half-fills batches during bursts
// (the sweep races the arrivals), costing capacity; a fixed deadline
// fills burst batches but taxes every quiet request with the hold; the
// adaptive policy fills burst batches while keeping quiet latency
// greedy. Burst overflow beyond the queue becomes drops.
type simParams struct {
	perItemNS  float64 // marginal service cost per request
	overheadNS float64 // fixed cost per harvest sweep
	meanRate   float64 // offered mean load, requests/second
	factor     float64 // burst multiplier
	duty       float64 // burst duty cycle (burst / period)
	periodS    float64
}

func defaultSim() simParams {
	return simParams{
		perItemNS:  4000,
		overheadNS: 20000,
		meanRate:   40000,
		factor:     100,
		duty:       0.04,
		periodS:    0.05,
	}
}

// SimEvaluator returns the deterministic analytic evaluator.
func SimEvaluator() Evaluator {
	p := defaultSim()
	return func(_ context.Context, cfg serve.ServingConfig) (Metrics, error) {
		if err := cfg.Validate(); err != nil {
			return Metrics{}, err
		}
		return p.measure(cfg.Resolved()), nil
	}
}

func (p simParams) measure(cfg serve.ServingConfig) Metrics {
	b := float64(cfg.BatchSize)
	s := float64(cfg.Shards)
	q := float64(cfg.QueueDepth)
	var delayNS float64
	if cfg.MaxDelayNS != nil && *cfg.MaxDelayNS > 0 {
		delayNS = float64(*cfg.MaxDelayNS)
	}
	fixedHold := delayNS > 0 && !cfg.AdaptiveFlush
	adaptive := delayNS > 0 && cfg.AdaptiveFlush

	// Rates: quiet-phase base rate such that the duty-cycled mean is
	// meanRate (mirrors serve.BurstOptions.baseRate).
	base := p.meanRate / (1 + p.duty*(p.factor-1))
	burstRate := base * p.factor
	burstDurS := p.duty * p.periodS

	// Effective burst-phase batch: hold policies fill batches; greedy
	// sweeps race the arrivals and harvest half-filled rings.
	burstBatch := b
	if !fixedHold && !adaptive {
		burstBatch = math.Max(1, b/2)
	}
	capPerShard := func(batch float64) float64 {
		return 1e9 * batch / (p.overheadNS + p.perItemNS*batch)
	}
	burstCap := s * capPerShard(burstBatch)

	// Burst backlog: arrivals beyond capacity pile into the queue;
	// beyond the queue they are shed.
	excess := math.Max(0, (burstRate-burstCap)*burstDurS)
	backlog := math.Min(excess, q)
	dropsPerPeriod := math.Max(0, excess-q)
	offeredPerPeriod := base*(p.periodS-burstDurS) + burstRate*burstDurS
	dropRate := dropsPerPeriod / offeredPerPeriod

	// Quiet-phase latency: service plus whatever the policy holds.
	// Quiet arrivals are sparse, so greedy and adaptive sweeps carry
	// one request; a fixed deadline holds each until min(delay, time
	// for the batch to fill at the quiet rate).
	quietLat := p.overheadNS + p.perItemNS
	if fixedHold {
		quietLat += math.Min(delayNS, (b-1)*1e9/base)
	}
	// Burst-phase latency: service for a full sweep plus queueing
	// behind the backlog.
	burstLat := p.overheadNS + p.perItemNS*burstBatch + backlog/burstCap*1e9

	// Most requests arrive inside bursts (factor≫1): the burst phase
	// carries the median, the backlog peak carries the tail.
	burstFrac := burstRate * burstDurS / offeredPerPeriod
	p50 := burstLat
	if burstFrac < 0.5 {
		p50 = quietLat
	}
	p99 := math.Max(quietLat, burstLat*1.25)

	delivered := offeredPerPeriod - dropsPerPeriod
	return Metrics{
		P50:         time.Duration(p50) * time.Nanosecond,
		P99:         time.Duration(p99) * time.Nanosecond,
		Throughput:  delivered / p.periodS,
		OfferedRate: p.meanRate,
		Delivered:   int(delivered),
		Dropped:     int(dropsPerPeriod),
		DropRate:    dropRate,
	}
}
