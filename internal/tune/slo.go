// Package tune is the serving autopilot: it replays a recorded (or
// synthesized) traffic trace against candidate serving configurations
// in sandboxed runtimes, scores each run on {p99 latency, throughput,
// drop rate}, and drives the multi-objective BO engine (internal/bo)
// to a Pareto frontier under an SLO constraint — emitting the winner
// as a canonical serve.ServingConfig, a first-class artifact rather
// than a flag recipe. See docs/tuning.md.
package tune

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SLO is a parsed serving objective: every set bound must hold for a
// measured configuration to count as feasible. The zero value accepts
// everything.
type SLO struct {
	// P99 / P50 are latency upper bounds (0 = unconstrained).
	P99 time.Duration
	P50 time.Duration
	// MaxDropRate bounds Dropped/Issued when HasDropRate is set;
	// "drops=0" parses to {0, true}.
	MaxDropRate float64
	HasDropRate bool
	// MinThroughput is a delivered-requests/second lower bound
	// (0 = unconstrained).
	MinThroughput float64

	src string
}

// ParseSLO parses the CLI/wire SLO syntax: comma-separated terms of
//
//	p99<=DUR   p50<=DUR    (Go duration syntax: 2ms, 500us)
//	drops=0    drops<=FRAC (fraction of issued requests, e.g. 0.01)
//	throughput>=N          (delivered requests per second)
//
// e.g. "p99<=2ms,drops=0". Terms may repeat; the tightest bound wins.
func ParseSLO(s string) (SLO, error) {
	slo := SLO{src: s}
	if strings.TrimSpace(s) == "" {
		return slo, nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		var key, op, val string
		for _, o := range []string{"<=", ">=", "="} {
			if i := strings.Index(term, o); i >= 0 {
				key, op, val = strings.TrimSpace(term[:i]), o, strings.TrimSpace(term[i+len(o):])
				break
			}
		}
		if op == "" {
			return SLO{}, fmt.Errorf("tune: SLO term %q: want key<=value, key>=value or key=value", term)
		}
		switch key {
		case "p99", "p50":
			if op == ">=" {
				return SLO{}, fmt.Errorf("tune: SLO term %q: latency bounds are upper bounds (use <=)", term)
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return SLO{}, fmt.Errorf("tune: SLO term %q: want a positive Go duration (e.g. 2ms): %v", term, err)
			}
			if key == "p99" && (slo.P99 == 0 || d < slo.P99) {
				slo.P99 = d
			}
			if key == "p50" && (slo.P50 == 0 || d < slo.P50) {
				slo.P50 = d
			}
		case "drops":
			if op == ">=" {
				return SLO{}, fmt.Errorf("tune: SLO term %q: drops is an upper bound (use = or <=)", term)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f >= 1 {
				return SLO{}, fmt.Errorf("tune: SLO term %q: want a drop fraction in [0,1): %v", term, err)
			}
			if !slo.HasDropRate || f < slo.MaxDropRate {
				slo.MaxDropRate, slo.HasDropRate = f, true
			}
		case "throughput":
			if op == "<=" {
				return SLO{}, fmt.Errorf("tune: SLO term %q: throughput is a lower bound (use >=)", term)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return SLO{}, fmt.Errorf("tune: SLO term %q: want a positive requests/second: %v", term, err)
			}
			if f > slo.MinThroughput {
				slo.MinThroughput = f
			}
		default:
			return SLO{}, fmt.Errorf("tune: SLO term %q: unknown key %q (accepted: p99, p50, drops, throughput)", term, key)
		}
	}
	return slo, nil
}

// String returns the canonical spelling of the parsed SLO.
func (s SLO) String() string {
	var terms []string
	if s.P99 > 0 {
		terms = append(terms, fmt.Sprintf("p99<=%v", s.P99))
	}
	if s.P50 > 0 {
		terms = append(terms, fmt.Sprintf("p50<=%v", s.P50))
	}
	if s.HasDropRate {
		terms = append(terms, fmt.Sprintf("drops<=%v", s.MaxDropRate))
	}
	if s.MinThroughput > 0 {
		terms = append(terms, fmt.Sprintf("throughput>=%v", s.MinThroughput))
	}
	sort.Strings(terms)
	return strings.Join(terms, ",")
}

// Check evaluates the SLO against measured metrics, returning the
// violated terms (empty = feasible).
func (s SLO) Check(m Metrics) []string {
	var v []string
	if s.P99 > 0 && m.P99 > s.P99 {
		v = append(v, fmt.Sprintf("p99 %v > %v", m.P99, s.P99))
	}
	if s.P50 > 0 && m.P50 > s.P50 {
		v = append(v, fmt.Sprintf("p50 %v > %v", m.P50, s.P50))
	}
	if s.HasDropRate && m.DropRate > s.MaxDropRate {
		v = append(v, fmt.Sprintf("drop rate %.4f > %v", m.DropRate, s.MaxDropRate))
	}
	if s.MinThroughput > 0 && m.Throughput < s.MinThroughput {
		v = append(v, fmt.Sprintf("throughput %.0f/s < %v/s", m.Throughput, s.MinThroughput))
	}
	return v
}
