package tune

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/serve"
)

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("p99<=2ms,drops=0")
	if err != nil {
		t.Fatal(err)
	}
	if slo.P99 != 2*time.Millisecond || !slo.HasDropRate || slo.MaxDropRate != 0 {
		t.Fatalf("parsed %+v", slo)
	}
	if slo.String() != "drops<=0,p99<=2ms" {
		t.Fatalf("canonical spelling: %q", slo.String())
	}
	slo, err = ParseSLO(" p50<=500us , throughput>=1000 , drops<=0.01 ")
	if err != nil {
		t.Fatal(err)
	}
	if slo.P50 != 500*time.Microsecond || slo.MinThroughput != 1000 || slo.MaxDropRate != 0.01 {
		t.Fatalf("parsed %+v", slo)
	}
	for _, bad := range []string{"p99", "p99>=2ms", "latency<=2ms", "drops=2", "p99<=x", "throughput<=5"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Fatalf("%q must be rejected", bad)
		}
	}
	if v := slo.Check(Metrics{P50: time.Millisecond, Throughput: 10, DropRate: 0.5}); len(v) != 3 {
		t.Fatalf("want 3 violations, got %v", v)
	}
}

// TestRunDeterminism is the reproducibility gate: fixed seed + same
// trace (here: same deterministic evaluator) ⇒ identical frontier and
// chosen config, byte-for-byte through JSON.
func TestRunDeterminism(t *testing.T) {
	slo, _ := ParseSLO("p99<=2ms,drops=0")
	opts := Options{Seed: 7, Budget: 12, SLO: slo, MaxShards: 4, Evaluate: SimEvaluator()}
	a, err := Run(context.Background(), nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("fixed-seed runs diverged:\n%s\n%s", aj, bj)
	}
	if len(a.Front) == 0 || len(a.Evaluations) != 12 {
		t.Fatalf("want a frontier from exactly 12 evaluations, got front=%d evals=%d", len(a.Front), len(a.Evaluations))
	}
	if !a.Chosen.Feasible {
		t.Fatal("chosen config must be feasible")
	}
	if v := slo.Check(a.Chosen.Metrics); len(v) != 0 {
		t.Fatalf("chosen config violates the SLO: %v", v)
	}
	// A different seed explores differently (evaluation order/points),
	// proving the seed is actually load-bearing.
	c, err := Run(context.Background(), nil, nil, Options{Seed: 8, Budget: 12, SLO: slo, MaxShards: 4, Evaluate: SimEvaluator()})
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c.Evaluations)
	ajE, _ := json.Marshal(a.Evaluations)
	if string(cj) == string(ajE) {
		t.Fatal("different seeds produced identical evaluation histories")
	}
}

// TestRunInfeasibleSLO: an SLO nothing can meet must fail with the
// typed error carrying the closest miss — never a junk config.
func TestRunInfeasibleSLO(t *testing.T) {
	slo, _ := ParseSLO("p99<=1us")
	rep, err := Run(context.Background(), nil, nil, Options{Seed: 3, Budget: 8, SLO: slo, MaxShards: 4, Evaluate: SimEvaluator()})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InfeasibleError, got %T", err)
	}
	if len(ie.Violations) == 0 || ie.Best.Metrics.P99 == 0 {
		t.Fatalf("infeasible error must carry the closest miss: %+v", ie)
	}
	if rep == nil || len(rep.Evaluations) != 8 || len(rep.Front) != 0 {
		t.Fatalf("partial report must keep the history and an empty frontier: %+v", rep)
	}
}

// TestTunerLandsOnGrid is the AutoTM-style gate: on the deterministic
// landscape, the tuner's chosen config must be within 10% of the best
// coarse-grid point on every objective.
func TestTunerLandsOnGrid(t *testing.T) {
	slo, _ := ParseSLO("p99<=2ms,drops=0")
	eval := SimEvaluator()
	rep, err := Run(context.Background(), nil, nil, Options{Seed: 1, Budget: 24, SLO: slo, MaxShards: 8, Evaluate: eval})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Grid(context.Background(), eval, slo, CoarseGrid(8))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := choose(paretoFront(grid))
	if !ok {
		t.Fatal("grid has no feasible point")
	}
	if got, want := rep.Chosen.Metrics.Throughput, best.Metrics.Throughput; got < want*0.9 {
		t.Fatalf("tuner throughput %.0f more than 10%% below grid best %.0f", got, want)
	}
	if got, want := rep.Chosen.Metrics.P99, best.Metrics.P99; float64(got) > float64(want)*1.1 {
		t.Fatalf("tuner p99 %v more than 10%% above grid best %v", got, want)
	}
	if rep.Chosen.Metrics.DropRate > best.Metrics.DropRate+0.001 {
		t.Fatalf("tuner drop rate %v above grid best %v", rep.Chosen.Metrics.DropRate, best.Metrics.DropRate)
	}
}

func tuneModel(t *testing.T) *ir.Model {
	t.Helper()
	// A decision stump the serve runtime accepts: class 1 iff x[0] > 0.
	return &ir.Model{
		Kind: ir.DTree, Name: "tune-test", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{
			Feature: 0, Threshold: 0,
			Left:  &ir.TreeNode{Feature: -1, Class: 0},
			Right: &ir.TreeNode{Feature: -1, Class: 1},
		},
	}
}

// TestRunRealReplay exercises the default replay evaluator end to end
// on a tiny budget: sandboxed runtimes come up, measure, and tear
// down, and the report is structurally sound.
func TestRunRealReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay tuning is wall-clock bound")
	}
	rng := rand.New(rand.NewSource(5))
	xs := make([][]float64, 300)
	for i := range xs {
		xs[i] = []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
	}
	slo, _ := ParseSLO("p99<=50ms")
	rep, err := Run(context.Background(), tuneModel(t), xs, Options{
		Seed: 2, Budget: 4, SLO: slo, Clients: 4, MaxShards: 2,
		Burst: serve.BurstOptions{Period: 10 * time.Millisecond, Burst: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 300 || len(rep.Evaluations) != 4 {
		t.Fatalf("report: %+v", rep)
	}
	for _, c := range rep.Evaluations {
		if c.Metrics.Delivered == 0 || c.Metrics.P99 == 0 {
			t.Fatalf("replay evaluation carried no measurements: %+v", c)
		}
	}
	if _, err := rep.Chosen.Config.Canonical(); err != nil {
		t.Fatalf("chosen config must be canonical: %v", err)
	}
}
