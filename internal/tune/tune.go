package tune

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bo"
	"repro/internal/ir"
	"repro/internal/serve"
)

// Metrics is one candidate configuration's measured serving behavior
// over the replayed trace.
type Metrics struct {
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Throughput is delivered classifications per second; OfferedRate
	// the paced issue rate the replay targeted.
	Throughput  float64 `json:"throughput"`
	OfferedRate float64 `json:"offered_rate,omitempty"`
	Delivered   int     `json:"delivered"`
	Dropped     int     `json:"dropped"`
	Errors      int     `json:"errors,omitempty"`
	// DropRate is Dropped / issued.
	DropRate float64 `json:"drop_rate"`
	// MeanBatch is the runtime's average harvest-sweep size.
	MeanBatch float64 `json:"mean_batch,omitempty"`
}

// Candidate is one evaluated configuration: the canonical config, its
// measurements, and whether it met the SLO.
type Candidate struct {
	Config   serve.ServingConfig `json:"config"`
	Metrics  Metrics             `json:"metrics"`
	Feasible bool                `json:"feasible"`

	values []float64 // maximization objectives, for dominance tests
}

// Report is a completed tuning run: every evaluation, the Pareto
// frontier over {p99, throughput, drop rate}, and the chosen config
// (the feasible frontier point with the highest throughput,
// tie-broken by lower p99 then smaller batch).
type Report struct {
	SLO         string      `json:"slo"`
	Seed        int64       `json:"seed"`
	Samples     int         `json:"samples"`
	Evaluations []Candidate `json:"evaluations"`
	Front       []Candidate `json:"front"`
	Chosen      Candidate   `json:"chosen"`
}

// ErrInfeasible matches (errors.Is) the typed *InfeasibleError a
// tuning run returns when no evaluated configuration satisfies the
// SLO — the caller gets the diagnosis, never a junk config.
var ErrInfeasible = errors.New("tune: no configuration satisfies the SLO")

// InfeasibleError reports an SLO no candidate met, with the closest
// miss and its violated terms.
type InfeasibleError struct {
	SLO        string
	Violations []string
	Best       Candidate
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("tune: no configuration satisfies SLO %q (closest miss: %v)", e.SLO, e.Violations)
}

func (e *InfeasibleError) Is(target error) bool { return target == ErrInfeasible }

// Evaluator measures one candidate config against the trace. Run's
// default is ReplayEvaluator (sandboxed runtime + burst replay); tests
// and benchmarks inject SimEvaluator for deterministic landscapes.
type Evaluator func(ctx context.Context, cfg serve.ServingConfig) (Metrics, error)

// Options shapes a tuning run. The zero value is usable: 24-evaluation
// budget, synthetic burst pacing, auto-calibrated rate.
type Options struct {
	// Seed fixes every stochastic choice (BO sampling and
	// scalarization). Same seed + same trace + same evaluator ⇒
	// identical frontier and chosen config.
	Seed int64
	// Budget caps total candidate evaluations (default 24; minimum 4).
	Budget int
	// SLO constrains the frontier; infeasible runs fail with
	// *InfeasibleError.
	SLO SLO
	// Clients is the replay concurrency (default 8).
	Clients int
	// Rate is the mean offered load in requests/second for the burst
	// replay; 0 auto-calibrates to half the sequential service rate.
	Rate float64
	// Burst paces the replay (zero fields = serve.BurstOptions
	// defaults: 100× bursts of 2ms every 50ms).
	Burst serve.BurstOptions
	// MaxShards caps the shard-count axis (default GOMAXPROCS).
	MaxShards int
	// Evaluate overrides the measurement function (tests, benchmarks,
	// dry runs). Default: ReplayEvaluator over the given model+trace.
	Evaluate Evaluator
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 24
	}
	if o.Budget < 4 {
		o.Budget = 4
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.MaxShards <= 0 {
		o.MaxShards = runtime.GOMAXPROCS(0)
	}
	return o
}

// The knob space. Ordinal axes keep the search on meaningful
// power-of-two-ish values; the BO engine interpolates between them.
var (
	batchAxis = []float64{8, 16, 32, 64, 128, 256}
	delayAxis = []float64{0, 100, 250, 500, 1000, 2000} // µs
	queueAxis = []float64{256, 512, 1024, 2048, 4096}
)

func searchSpace(maxShards int) bo.Space {
	return bo.Space{Params: []bo.Param{
		{Name: "batch", Kind: bo.Ordinal, Values: batchAxis},
		{Name: "shards", Kind: bo.Integer, Min: 1, Max: float64(maxShards)},
		{Name: "delay_us", Kind: bo.Ordinal, Values: delayAxis},
		{Name: "queue", Kind: bo.Ordinal, Values: queueAxis},
		{Name: "adaptive", Kind: bo.Categorical, Values: []float64{0, 1}},
	}}
}

// configAt decodes a search-space point into a canonical config.
func configAt(x []float64) serve.ServingConfig {
	delay := int64(x[2]) * int64(time.Microsecond)
	return serve.ServingConfig{
		Version:       serve.ConfigVersion,
		BatchSize:     int(x[0]),
		Shards:        int(x[1]),
		MaxDelayNS:    &delay,
		QueueDepth:    int(x[3]),
		AdaptiveFlush: x[4] != 0,
	}
}

// objectives maps measurements to the three maximization axes:
// {-p99 µs, throughput, -drop%}.
func objectives(m Metrics) []float64 {
	return []float64{
		-float64(m.P99) / float64(time.Microsecond),
		m.Throughput,
		-m.DropRate * 100,
	}
}

// metricsMap flattens Metrics for the BO history.
func metricsMap(m Metrics) map[string]float64 {
	return map[string]float64{
		"p50_us":     float64(m.P50) / float64(time.Microsecond),
		"p99_us":     float64(m.P99) / float64(time.Microsecond),
		"throughput": m.Throughput,
		"drop_rate":  m.DropRate,
	}
}

// Run tunes model's serving configuration over the trace xs. It
// returns the full evaluation history, the Pareto frontier, and the
// chosen config — or *InfeasibleError when the SLO cannot be met
// within the budget.
func Run(ctx context.Context, model *ir.Model, xs [][]float64, opts Options) (*Report, error) {
	o := opts.withDefaults()
	eval := o.Evaluate
	if eval == nil {
		if model == nil {
			return nil, fmt.Errorf("tune: nil model")
		}
		if len(xs) == 0 {
			return nil, fmt.Errorf("tune: empty trace")
		}
		rate := o.Rate
		if rate <= 0 {
			r, err := calibrateRate(model, xs)
			if err != nil {
				return nil, err
			}
			rate = r
		}
		burst := o.Burst
		burst.MeanRate = rate
		eval = ReplayEvaluator(model, xs, o.Clients, burst)
	}

	var evals []Candidate
	raw := func(x []float64) ([]float64, bool, map[string]float64, error) {
		cfg := configAt(x)
		m, err := eval(ctx, cfg)
		if err != nil {
			return nil, false, nil, fmt.Errorf("tune: evaluating %+v: %w", cfg, err)
		}
		c := Candidate{Config: cfg, Metrics: m, Feasible: len(o.SLO.Check(m)) == 0, values: objectives(m)}
		evals = append(evals, c)
		return c.values, true, metricsMap(m), nil
	}
	obj := bo.Constrained(bo.WithBudget(raw, o.Budget), func(values []float64, metrics map[string]float64) bool {
		return evals[len(evals)-1].Feasible
	})

	init := o.Budget / 3
	if init < 2 {
		init = 2
	}
	cfg := bo.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.InitSamples = init
	cfg.Iterations = o.Budget - init
	_, err := bo.MaximizeMulti(ctx, searchSpace(o.MaxShards), cfg, 3, obj)
	if err != nil && !errors.Is(err, bo.ErrBudgetExhausted) {
		return nil, err
	}

	rep := &Report{SLO: o.SLO.String(), Seed: o.Seed, Samples: len(xs), Evaluations: evals}
	rep.Front = paretoFront(evals)
	chosen, ok := choose(rep.Front)
	if !ok {
		best, violations := closestMiss(evals, o.SLO)
		return rep, &InfeasibleError{SLO: o.SLO.String(), Violations: violations, Best: best}
	}
	rep.Chosen = chosen
	return rep, nil
}

// paretoFront filters the feasible, non-dominated candidates.
func paretoFront(evals []Candidate) []Candidate {
	var front []Candidate
	for i, c := range evals {
		if !c.Feasible {
			continue
		}
		dominated := false
		for j, d := range evals {
			if i != j && d.Feasible && bo.Dominates(d.values, c.values) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// choose picks the frontier point with the highest throughput,
// tie-broken by lower p99, then smaller batch, shards and queue — all
// deterministic, so a fixed-seed run always names the same winner.
func choose(front []Candidate) (Candidate, bool) {
	if len(front) == 0 {
		return Candidate{}, false
	}
	best := front[0]
	for _, c := range front[1:] {
		if better(c, best) {
			best = c
		}
	}
	return best, true
}

func better(a, b Candidate) bool {
	const eps = 1e-9
	if d := a.Metrics.Throughput - b.Metrics.Throughput; d > eps || d < -eps {
		return d > 0
	}
	if a.Metrics.P99 != b.Metrics.P99 {
		return a.Metrics.P99 < b.Metrics.P99
	}
	if a.Config.BatchSize != b.Config.BatchSize {
		return a.Config.BatchSize < b.Config.BatchSize
	}
	if a.Config.Shards != b.Config.Shards {
		return a.Config.Shards < b.Config.Shards
	}
	return a.Config.QueueDepth < b.Config.QueueDepth
}

// closestMiss picks the infeasible candidate with the fewest violated
// SLO terms (then highest throughput) for the InfeasibleError.
func closestMiss(evals []Candidate, slo SLO) (Candidate, []string) {
	var best Candidate
	var bestV []string
	for _, c := range evals {
		v := slo.Check(c.Metrics)
		if bestV == nil || len(v) < len(bestV) ||
			(len(v) == len(bestV) && c.Metrics.Throughput > best.Metrics.Throughput) {
			best, bestV = c, v
		}
	}
	return best, bestV
}

// ReplayEvaluator measures a config by building a sandboxed runtime
// for the model and replaying the trace through the burst pacer —
// p50/p99 from the runtime's latency histogram, throughput and drops
// from the replay.
func ReplayEvaluator(model *ir.Model, xs [][]float64, clients int, burst serve.BurstOptions) Evaluator {
	return func(ctx context.Context, cfg serve.ServingConfig) (Metrics, error) {
		rt, err := serve.New(model, cfg.Options())
		if err != nil {
			return Metrics{}, err
		}
		defer rt.Close()
		res, err := serve.ReplayBurst(ctx, rt, xs, nil, clients, nil, burst)
		if err != nil {
			return Metrics{}, err
		}
		st := rt.Stats()
		m := Metrics{
			P50:         st.P50,
			P99:         st.P99,
			Throughput:  res.Rate,
			OfferedRate: res.OfferedRate,
			Delivered:   res.Delivered,
			Dropped:     res.Dropped,
			Errors:      res.Errors,
			MeanBatch:   st.MeanBatch,
		}
		if res.Issued > 0 {
			m.DropRate = float64(res.Dropped) / float64(res.Issued)
		}
		return m, nil
	}
}

// Calibrate measures the model's sequential service rate over a prefix
// of the trace and returns the mean offered load a tuning run would
// target (half the measured rate) — exposed so a caller can replay a
// chosen config for verification at the same pacing the tuner used.
func Calibrate(model *ir.Model, xs [][]float64) (float64, error) {
	return calibrateRate(model, xs)
}

// calibrateRate measures the model's sequential service rate over a
// prefix of the trace and targets half of it as the mean offered load
// — loaded enough that batching matters, unsaturated enough that a
// good config can meet a latency SLO.
func calibrateRate(model *ir.Model, xs [][]float64) (float64, error) {
	rt, err := serve.New(model, serve.Options{Shards: 1})
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	n := len(xs)
	if n > 256 {
		n = 256
	}
	start := time.Now()
	for _, x := range xs[:n] {
		if _, err := rt.Classify(x); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds() / 2, nil
}

// Grid measures every config of a coarse knob grid — the AutoTM-style
// sweep the benchmark snapshot publishes, and the yardstick the tuner
// is asserted against (chosen config within 10% of the best grid point
// per objective).
func Grid(ctx context.Context, eval Evaluator, slo SLO, configs []serve.ServingConfig) ([]Candidate, error) {
	out := make([]Candidate, 0, len(configs))
	for _, cfg := range configs {
		m, err := eval(ctx, cfg)
		if err != nil {
			return out, fmt.Errorf("tune: grid point %+v: %w", cfg, err)
		}
		out = append(out, Candidate{Config: cfg, Metrics: m, Feasible: len(slo.Check(m)) == 0, values: objectives(m)})
	}
	return out, nil
}

// CoarseGrid is the published sweep: batch × flush-policy corners at
// the default shard count and queue depth.
func CoarseGrid(maxShards int) []serve.ServingConfig {
	if maxShards <= 0 {
		maxShards = runtime.GOMAXPROCS(0)
	}
	var out []serve.ServingConfig
	for _, batch := range []int{16, 64, 256} {
		for _, mode := range []struct {
			delayUS  int64
			adaptive bool
		}{{0, false}, {500, false}, {500, true}} {
			delay := mode.delayUS * int64(time.Microsecond)
			out = append(out, serve.ServingConfig{
				Version:       serve.ConfigVersion,
				BatchSize:     batch,
				Shards:        maxShards,
				MaxDelayNS:    &delay,
				QueueDepth:    1024,
				AdaptiveFlush: mode.adaptive,
			})
		}
	}
	return out
}
