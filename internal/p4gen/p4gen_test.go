package p4gen

import (
	"strings"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

func svmModel() *ir.Model {
	return &ir.Model{Kind: ir.SVM, Name: "tc", Inputs: 3, Outputs: 2, Format: fixed.Q8_8,
		FeatureNames: []string{"pkt_len", "ip proto", "ttl"},
		SVM:          &ir.SVMParams{W: [][]float64{{1, 2, 3}, {4, 5, 6}}, B: []float64{0, 0}}}
}

func TestGenerateSVM(t *testing.T) {
	p, err := Generate(svmModel())
	if err != nil {
		t.Fatal(err)
	}
	// One table per feature + decision.
	if len(p.Tables) != 4 {
		t.Fatalf("tables = %v", p.Tables)
	}
	for _, want := range []string{
		"#include <v1model.p4>",
		"table svm_feature_pkt_len",
		"table svm_feature_ip_proto", // sanitized space
		"key = { hdr.features.pkt_len: range; }",
		"svm_decide.apply();",
	} {
		if !strings.Contains(p.Source, want) {
			t.Fatalf("source missing %q", want)
		}
	}
	// quantSteps entries per feature table.
	if len(p.Entries) != 3*quantSteps {
		t.Fatalf("entries = %d, want %d", len(p.Entries), 3*quantSteps)
	}
	// Entries must tile the 16-bit space without gaps.
	perTable := map[string][]Entry{}
	for _, e := range p.Entries {
		perTable[e.Table] = append(perTable[e.Table], e)
	}
	for table, entries := range perTable {
		lo := int32(-32768)
		for _, e := range entries {
			if e.Lo != lo {
				t.Fatalf("table %s: gap at %d (entry starts %d)", table, lo, e.Lo)
			}
			lo = e.Hi + 1
		}
		if lo != 32768 {
			t.Fatalf("table %s: range ends at %d", table, lo)
		}
	}
}

func TestGenerateKMeans(t *testing.T) {
	m := &ir.Model{Kind: ir.KMeans, Name: "clu", Inputs: 2, Outputs: 3, Format: fixed.Q8_8,
		Centroids: [][]float64{{0, 0}, {1, 1}, {2, 2}}}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 3 { // one per cluster
		t.Fatalf("tables = %v", p.Tables)
	}
	if !strings.Contains(p.Source, "cluster_2.apply();") {
		t.Fatal("cluster apply missing")
	}
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
}

func TestGenerateTree(t *testing.T) {
	tree := &ir.TreeNode{Feature: 0, Threshold: 0.5,
		Left: &ir.TreeNode{Feature: -1, Class: 0},
		Right: &ir.TreeNode{Feature: 1, Threshold: 0.25,
			Left:  &ir.TreeNode{Feature: -1, Class: 1},
			Right: &ir.TreeNode{Feature: -1, Class: 0}}}
	m := &ir.Model{Kind: ir.DTree, Name: "dt", Inputs: 2, Outputs: 2, Format: fixed.Q8_8, Tree: tree}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// depth 2 -> levels 0..2 = 3 tables
	if len(p.Tables) != 3 {
		t.Fatalf("tables = %v", p.Tables)
	}
	// 2 internal nodes × 2 entries each
	if len(p.Entries) != 4 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	// Each internal node's two entries must partition the 16-bit space.
	if p.Entries[0].Hi+1 != p.Entries[1].Lo {
		t.Fatal("tree entries must partition at the threshold")
	}
}

func TestDNNRejected(t *testing.T) {
	m := &ir.Model{Kind: ir.DNN, Name: "d", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Layers: []ir.Layer{{In: 2, Out: 2, W: [][]float64{{0, 0}, {0, 0}}, B: []float64{0, 0}, Activation: "softmax"}}}
	if _, err := Generate(m); err == nil {
		t.Fatal("DNN must be rejected by the MAT code generator")
	}
}

func TestInvalidModelRejected(t *testing.T) {
	bad := &ir.Model{Kind: ir.SVM, Name: "bad", Inputs: 2, Outputs: 2}
	if _, err := Generate(bad); err == nil {
		t.Fatal("invalid model must be rejected")
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("ip proto") != "ip_proto" || sanitize("") != "f" || sanitize("a.b-c") != "a_b_c" {
		t.Fatal("sanitize")
	}
}
