package p4gen

import (
	"strings"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

func svmModel() *ir.Model {
	return &ir.Model{Kind: ir.SVM, Name: "tc", Inputs: 3, Outputs: 2, Format: fixed.Q8_8,
		FeatureNames: []string{"pkt_len", "ip proto", "ttl"},
		SVM:          &ir.SVMParams{W: [][]float64{{1, 2, 3}, {4, 5, 6}}, B: []float64{0.5, -0.25}}}
}

func TestGenerateSVM(t *testing.T) {
	m := svmModel()
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// One MAC table per feature + bias + decision.
	if len(p.Tables) != 5 {
		t.Fatalf("tables = %v", p.Tables)
	}
	for _, want := range []string{
		"#include <v1model.p4>",
		"table svm_mac_pkt_len",
		"table svm_mac_ip_proto", // sanitized space
		"key = { hdr.features.pkt_len: ternary; }",
		"table svm_bias",
		"svm_decide.apply();",
	} {
		if !strings.Contains(p.Source, want) {
			t.Fatalf("source missing %q", want)
		}
	}
	// One entry per MAC table carrying the exact quantized per-class
	// weight words, plus the bias entry.
	if len(p.Entries) != m.Inputs+1 {
		t.Fatalf("entries = %d, want %d", len(p.Entries), m.Inputs+1)
	}
	f := m.Format
	for fi := 0; fi < m.Inputs; fi++ {
		e := p.Entries[fi]
		if len(e.Params) != m.Outputs {
			t.Fatalf("entry %d params = %v", fi, e.Params)
		}
		for c := 0; c < m.Outputs; c++ {
			if e.Params[c] != f.Quantize(m.SVM.W[c][fi]) {
				t.Fatalf("entry %d class %d word %d, want %d", fi, c, e.Params[c], f.Quantize(m.SVM.W[c][fi]))
			}
		}
	}
	bias := p.Entries[m.Inputs]
	if bias.Table != "svm_bias" || bias.Params[0] != f.Quantize(0.5) || bias.Params[1] != f.Quantize(-0.25) {
		t.Fatalf("bias entry = %+v", bias)
	}
	// The same words must appear verbatim in the const entries blocks.
	if !strings.Contains(p.Source, "(_) : bias(128, -64);") {
		t.Fatalf("bias const entry missing:\n%s", p.Source)
	}
}

func TestGenerateSVMNormalizerHeader(t *testing.T) {
	m := svmModel()
	m.Mean = []float64{1.5, 0.125, -3}
	m.Std = []float64{2, 0.5, 1}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// The normalization affine is part of the computed function, so the
	// artifact must carry it with round-trip precision.
	for _, want := range []string{
		"// normalize pkt_len mean=1.5 std=2",
		"// normalize ip_proto mean=0.125 std=0.5",
		"// normalize ttl mean=-3 std=1",
	} {
		if !strings.Contains(p.Source, want) {
			t.Fatalf("source missing %q:\n%s", want, p.Source)
		}
	}
}

func TestGenerateKMeans(t *testing.T) {
	m := &ir.Model{Kind: ir.KMeans, Name: "clu", Inputs: 2, Outputs: 3, Format: fixed.Q8_8,
		Centroids: [][]float64{{0, 0.5}, {1, 1}, {2, 2}}}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 4 { // one per cluster + decide
		t.Fatalf("tables = %v", p.Tables)
	}
	if !strings.Contains(p.Source, "cluster_2.apply();") || !strings.Contains(p.Source, "kmeans_decide.apply();") {
		t.Fatal("cluster/decide apply missing")
	}
	// Every cluster entry carries the full quantized centroid.
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	f := m.Format
	for k, e := range p.Entries {
		if len(e.Params) != m.Inputs {
			t.Fatalf("cluster %d params = %v", k, e.Params)
		}
		for i := range e.Params {
			if e.Params[i] != f.Quantize(m.Centroids[k][i]) {
				t.Fatalf("cluster %d coord %d = %d, want %d", k, i, e.Params[i], f.Quantize(m.Centroids[k][i]))
			}
		}
	}
	if !strings.Contains(p.Source, "(_) : dist_0(0, 128);") {
		t.Fatalf("centroid const entry missing:\n%s", p.Source)
	}
}

func TestGenerateTree(t *testing.T) {
	tree := &ir.TreeNode{Feature: 0, Threshold: 0.5,
		Left: &ir.TreeNode{Feature: -1, Class: 0},
		Right: &ir.TreeNode{Feature: 1, Threshold: 0.25,
			Left:  &ir.TreeNode{Feature: -1, Class: 1},
			Right: &ir.TreeNode{Feature: -1, Class: 0}}}
	m := &ir.Model{Kind: ir.DTree, Name: "dt", Inputs: 2, Outputs: 2, Format: fixed.Q8_8, Tree: tree}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// depth 2 -> levels 0..2 = 3 tables
	if len(p.Tables) != 3 {
		t.Fatalf("tables = %v", p.Tables)
	}
	// 2 internal nodes × 2 goto entries + 3 leaves × 1 set_leaf entry.
	var gotos, leaves []Entry
	for _, e := range p.Entries {
		switch e.Action {
		case "goto_node":
			gotos = append(gotos, e)
		case "set_leaf":
			leaves = append(leaves, e)
		}
	}
	if len(gotos) != 4 || len(leaves) != 3 {
		t.Fatalf("gotos = %d leaves = %d (%+v)", len(gotos), len(leaves), p.Entries)
	}
	// Each internal node's two entries partition the format's raw range
	// at the quantized threshold (left range inclusive, matching
	// InferQ's `v <= Quantize(threshold)`).
	f := m.Format
	if gotos[0].Lo != f.MinRaw() || gotos[0].Hi != f.Quantize(0.5) || gotos[1].Lo != gotos[0].Hi+1 || gotos[1].Hi != f.MaxRaw() {
		t.Fatalf("root entries must split at the quantized threshold: %+v", gotos[:2])
	}
	// Leaf classes reach the artifact.
	if !strings.Contains(p.Source, ": set_leaf(1);") {
		t.Fatalf("leaf class entry missing:\n%s", p.Source)
	}
}

// A single-node tree (root is a leaf) must still emit an executable
// artifact: one level-0 table whose only entry sets the class — the
// degenerate case translation validation originally caught (the old
// emitter skipped leaves entirely, leaving the class undefined).
func TestGenerateTreeSingleLeaf(t *testing.T) {
	m := &ir.Model{Kind: ir.DTree, Name: "leaf", Inputs: 1, Outputs: 2, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{Feature: -1, Class: 1}}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 1 || len(p.Entries) != 1 {
		t.Fatalf("tables = %v entries = %+v", p.Tables, p.Entries)
	}
	e := p.Entries[0]
	if e.Action != "set_leaf" || e.Param != 1 || e.Node != 0 {
		t.Fatalf("leaf entry = %+v", e)
	}
}

// A threshold that quantizes to the format maximum has an empty right
// range; the emitter must omit it rather than emit Lo > Hi.
func TestGenerateTreeSaturatedThreshold(t *testing.T) {
	m := &ir.Model{Kind: ir.DTree, Name: "sat", Inputs: 1, Outputs: 2, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{Feature: 0, Threshold: 1e6,
			Left:  &ir.TreeNode{Feature: -1, Class: 0},
			Right: &ir.TreeNode{Feature: -1, Class: 1}}}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Entries {
		if e.Lo > e.Hi {
			t.Fatalf("empty range emitted: %+v", e)
		}
	}
}

// Wide formats must widen both the feature header and the match ranges —
// Q16.16 words do not fit the 16-bit ranges the emitter once hardcoded.
func TestGenerateWideFormat(t *testing.T) {
	m := &ir.Model{Kind: ir.DTree, Name: "wide", Inputs: 1, Outputs: 2, Format: fixed.Q16_16,
		Tree: &ir.TreeNode{Feature: 0, Threshold: 200,
			Left:  &ir.TreeNode{Feature: -1, Class: 0},
			Right: &ir.TreeNode{Feature: -1, Class: 1}}}
	p, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Source, "bit<32> f0;") {
		t.Fatal("feature header must use the format word width")
	}
	f := m.Format
	if p.Entries[0].Hi != f.Quantize(200) || p.Entries[1].Hi != f.MaxRaw() {
		t.Fatalf("wide-format ranges wrong: %+v", p.Entries[:2])
	}
}

func TestDNNRejected(t *testing.T) {
	m := &ir.Model{Kind: ir.DNN, Name: "d", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Layers: []ir.Layer{{In: 2, Out: 2, W: [][]float64{{0, 0}, {0, 0}}, B: []float64{0, 0}, Activation: "softmax"}}}
	if _, err := Generate(m); err == nil {
		t.Fatal("DNN must be rejected by the MAT code generator")
	}
}

func TestInvalidModelRejected(t *testing.T) {
	bad := &ir.Model{Kind: ir.SVM, Name: "bad", Inputs: 2, Outputs: 2}
	if _, err := Generate(bad); err == nil {
		t.Fatal("invalid model must be rejected")
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("ip proto") != "ip_proto" || sanitize("") != "f" || sanitize("a.b-c") != "a_b_c" {
		t.Fatal("sanitize")
	}
}
