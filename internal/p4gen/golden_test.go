package p4gen

// Golden-artifact tests over degenerate models: a tree that is a single
// leaf, a depth-1 stump, and single-class (one-output) models — the
// shapes the EMI fuzzer mutates toward and the easiest ones for an
// emitter to get silently wrong. The full artifact text is pinned in
// testdata so an emission change shows up as a reviewable diff, not
// only as a validator failure. Refresh after an intentional change with
//
//	go test ./internal/p4gen -run Golden -update
//
// and review the diff like any other source change.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifacts in testdata")

// degenerateModels is the shared edge-case set (mirrored in
// spatialgen's golden test so both emitters pin the same shapes).
func degenerateModels() []*ir.Model {
	return []*ir.Model{
		// A tree with no splits at all: the root is a leaf, every input
		// classifies identically.
		{Kind: ir.DTree, Name: "single_leaf", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
			Tree: &ir.TreeNode{Feature: -1, Class: 1}},
		// A depth-1 stump: one split, two leaves.
		{Kind: ir.DTree, Name: "depth1", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
			Tree: &ir.TreeNode{Feature: 1, Threshold: 0.5,
				Left:  &ir.TreeNode{Feature: -1, Class: 0},
				Right: &ir.TreeNode{Feature: -1, Class: 1}}},
		// A single-class dataset's SVM: one hyperplane, argmax over one
		// score.
		{Kind: ir.SVM, Name: "single_class_svm", Inputs: 2, Outputs: 1, Format: fixed.Q8_8,
			SVM: &ir.SVMParams{W: [][]float64{{0.5, -0.25}}, B: []float64{0.125}}},
		// A single-cluster KMeans: nearest-of-one.
		{Kind: ir.KMeans, Name: "single_class_kmeans", Inputs: 2, Outputs: 1, Format: fixed.Q8_8,
			Centroids: [][]float64{{0.75, -0.5}}},
	}
}

func TestGoldenDegenerateArtifacts(t *testing.T) {
	for _, m := range degenerateModels() {
		t.Run(m.Name, func(t *testing.T) {
			p, err := Generate(m)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", m.Name+".p4.golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(p.Source), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden artifact (refresh with -update): %v", err)
			}
			if string(want) != p.Source {
				t.Errorf("emitted artifact drifted from %s (refresh with -update after review)\n--- emitted ---\n%s", path, p.Source)
			}
		})
	}
}
