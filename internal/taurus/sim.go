package taurus

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/ir"
)

// Sim is a functional pipeline simulator for a DNN mapped onto the
// MapReduce fabric — the repository's stand-in for the Tungsten
// cycle-accurate simulator the paper uses for feasibility verdicts
// (§3.3). The model is compiled into a chain of single-cycle stages
// (vector-MAC map stages, adder-tree reduce stages, activation stages,
// buffer stages) whose arithmetic is the same Q-format fixed point as
// ir.Model.InferQ, so the simulator validates both the timing model (its
// stage count matches Estimate's pipeline depth) and the numerics (its
// classifications match quantized inference bit-for-bit).
type Sim struct {
	grid   Grid
	format fixed.Format
	stages []stage
	// mean/std, when set, are the normalization affine applied in the
	// parser's feature-extraction stage — in the float domain, before
	// quantization, exactly as InferQ applies it.
	mean, std []float64
	// Inputs is the expected feature vector width.
	Inputs int
}

// stage transforms the packet's in-flight value vector in one cycle. The
// vector is carried in wide (int64) words: map-stage partial sums stay at
// full precision through the reduce tree and are rescaled to the Q format
// by a single writeback in the activation stage, matching fixed.DotQ —
// an early Sim saturated each lane's partial separately, which diverged
// from InferQ whenever a lane's partial overflowed but the full sum did
// not (caught by translation validation).
type stage struct {
	name string
	run  func(v []int64) []int64
}

// NewSim compiles a DNN model for the grid. Only DNNs have a multi-stage
// fabric pipeline; classical models map to single-kernel stages and are
// already covered by InferQ.
func NewSim(g Grid, m *ir.Model) (*Sim, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Kind != ir.DNN {
		return nil, fmt.Errorf("taurus: simulator supports DNN models, got %v", m.Kind)
	}
	s := &Sim{grid: g, format: m.Format, Inputs: m.Inputs}
	f := m.Format
	v := g.VectorWidth

	// Optional normalization folds into the parser stage (no fabric
	// cycle), mirroring Estimate which charges it nothing. The affine is
	// applied by Process in the float domain before quantization —
	// quantize-then-renormalize loses the input's sub-LSB precision and
	// diverges from InferQ — so the fabric-side stage is a pass-through.
	if len(m.Mean) == m.Inputs {
		s.mean = append([]float64{}, m.Mean...)
		s.std = append([]float64{}, m.Std...)
	}
	s.stages = append(s.stages, stage{name: "parse+extract", run: func(x []int64) []int64 { return x }})

	for li, l := range m.Layers {
		layer := l // capture
		lanes := ceilDiv(layer.In, v)

		// Quantize weights once at compile time (they live in MUs).
		wq := make([][]int32, layer.Out)
		for o := range layer.W {
			wq[o] = f.QuantizeVec(layer.W[o])
		}
		bq := f.QuantizeVec(layer.B)

		// Map stage: each (neuron, lane) computes an 8-wide partial dot
		// product in one cycle (the intra-lane tree is charged
		// intLog2(min(in, v)) extra cycles below, as pipeline fill). The
		// partials are raw 2n-fraction-bit sums — no per-lane rescale.
		s.stages = append(s.stages, stage{
			name: fmt.Sprintf("layer%d.map", li),
			run: func(x []int64) []int64 {
				partials := make([]int64, layer.Out*lanes)
				for o := 0; o < layer.Out; o++ {
					for lane := 0; lane < lanes; lane++ {
						lo := lane * v
						hi := lo + v
						if hi > layer.In {
							hi = layer.In
						}
						var acc int64
						for j := lo; j < hi; j++ {
							acc += int64(wq[o][j]) * x[j]
						}
						partials[o*lanes+lane] = acc
					}
				}
				return partials
			},
		})
		for d := 0; d < intLog2(min(layer.In, v)); d++ {
			s.stages = append(s.stages, stage{
				name: fmt.Sprintf("layer%d.lane_reduce%d", li, d),
				run:  func(x []int64) []int64 { return x }, // fill cycles of the intra-lane tree
			})
		}

		// Cross-lane reduce tree: halve the partials per neuron each
		// cycle, keeping the wide accumulator (int64 addition is exact
		// and associative here, so the tree order matches DotQ's sum).
		reduceLanes := lanes
		for d := 0; reduceLanes > 1; d++ {
			halved := (reduceLanes + 1) / 2
			from := reduceLanes
			s.stages = append(s.stages, stage{
				name: fmt.Sprintf("layer%d.reduce%d", li, d),
				run: func(x []int64) []int64 {
					out := make([]int64, layer.Out*halved)
					for o := 0; o < layer.Out; o++ {
						for i := 0; i < halved; i++ {
							a := x[o*from+2*i]
							var b int64
							if 2*i+1 < from {
								b = x[o*from+2*i+1]
							}
							out[o*halved+i] = a + b
						}
					}
					return out
				},
			})
			reduceLanes = halved
		}

		// Activation stage: one writeback of the wide accumulator (the
		// DotQ semantics), then saturating bias add and PWL nonlinearity.
		act := layer.Activation
		s.stages = append(s.stages, stage{
			name: fmt.Sprintf("layer%d.act", li),
			run: func(x []int64) []int64 {
				out := make([]int64, layer.Out)
				for o := 0; o < layer.Out; o++ {
					acc := f.Add(f.Writeback(x[o]), bq[o])
					switch act {
					case "relu":
						acc = fixed.ReLUQ(acc)
					case "sigmoid":
						acc = f.SigmoidQ(acc)
					case "tanh":
						one := f.Quantize(1)
						if acc > one {
							acc = one
						}
						if acc < -one {
							acc = -one
						}
					}
					out[o] = int64(acc)
				}
				return out
			},
		})
		// Double-buffer stage between layers.
		s.stages = append(s.stages, stage{
			name: fmt.Sprintf("layer%d.buffer", li),
			run:  func(x []int64) []int64 { return x },
		})
	}
	return s, nil
}

// Stages returns the pipeline depth in fabric cycles.
func (s *Sim) Stages() int {
	return len(s.stages) - 1 // the parse stage is outside the fabric
}

// Process pushes one feature vector through the pipeline, returning the
// arg-max class and the cycle count consumed (the fill latency).
func (s *Sim) Process(x []float64) (class int, cycles int, err error) {
	if len(x) != s.Inputs {
		return 0, 0, fmt.Errorf("taurus: input has %d features, pipeline wants %d", len(x), s.Inputs)
	}
	xn := x
	if len(s.mean) == s.Inputs {
		xn = make([]float64, len(x))
		for i := range x {
			xn[i] = (x[i] - s.mean[i]) / s.std[i]
		}
	}
	vq := s.format.QuantizeVec(xn)
	v := make([]int64, len(vq))
	for i, w := range vq {
		v[i] = int64(w)
	}
	for _, st := range s.stages {
		v = st.run(v)
	}
	best, bi := v[0], 0
	for i, val := range v {
		if val > best {
			best, bi = val, i
		}
	}
	return bi, s.Stages(), nil
}

// StreamStats summarizes a pipelined streaming run.
type StreamStats struct {
	Packets     int
	FillCycles  int // latency of the first packet
	TotalCycles int // fill + (packets-1) at II=1
	// ThroughputPktsPerCycle is packets/TotalCycles — approaches 1.0 (one
	// packet per cycle, i.e. line rate at the fabric clock) as the stream
	// grows.
	ThroughputPktsPerCycle float64
}

// ProcessStream pushes a batch through the pipeline with initiation
// interval 1, returning per-packet classes and the cycle accounting.
func (s *Sim) ProcessStream(xs [][]float64) ([]int, StreamStats, error) {
	classes := make([]int, len(xs))
	for i, x := range xs {
		c, _, err := s.Process(x)
		if err != nil {
			return nil, StreamStats{}, err
		}
		classes[i] = c
	}
	stats := StreamStats{Packets: len(xs), FillCycles: s.Stages()}
	if len(xs) > 0 {
		stats.TotalCycles = stats.FillCycles + len(xs) - 1
		stats.ThroughputPktsPerCycle = float64(len(xs)) / float64(stats.TotalCycles)
	}
	return classes, stats, nil
}

// StageNames lists the compiled pipeline stages for reports.
func (s *Sim) StageNames() []string {
	names := make([]string, len(s.stages))
	for i, st := range s.stages {
		names[i] = st.name
	}
	return names
}
