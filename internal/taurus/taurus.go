// Package taurus models the Taurus per-packet ML switch (Swamy et al.,
// ASPLOS 2022): a Plasticine-style coarse-grained reconfigurable array of
// Compute Units (CUs) and Memory Units (MUs) inserted as a MapReduce block
// into a PISA pipeline. Homunculus uses this model the way the paper uses
// the SARA/Tungsten cycle-accurate simulators (§3.3): to answer, for a
// candidate model, (1) how many CUs and MUs does the mapped pipeline
// consume, (2) what latency and throughput does it achieve, and (3) does
// it fit the grid and meet the performance constraints.
//
// Substitution note (DESIGN.md): we replace the authors' cycle-accurate
// simulator with an analytic pipeline model. The optimization core only
// consumes the verdict tuple (CUs, MUs, latency, throughput, feasible), so
// any model that is monotone in layer width/depth preserves the BO search
// landscape. Absolute resource numbers are calibrated to land in the same
// range as Table 2 but are not bit-identical to the proprietary toolchain.
package taurus

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Grid describes the CGRA fabric configuration of a Taurus switch
// (the "resources": {"rows": R, "cols": C} constraint in Alchemy).
type Grid struct {
	Rows, Cols int
	// ClockGHz is the fabric clock; the paper's testbed targets 1 GHz so
	// one pipeline stage per nanosecond.
	ClockGHz float64
	// VectorWidth is the SIMD lane width of one CU's map stage.
	VectorWidth int
}

// DefaultGrid is the 16×16 configuration used throughout the evaluation.
func DefaultGrid() Grid {
	return Grid{Rows: 16, Cols: 16, ClockGHz: 1.0, VectorWidth: 8}
}

// Validate reports configuration errors.
func (g Grid) Validate() error {
	if g.Rows <= 0 || g.Cols <= 0 {
		return fmt.Errorf("taurus: grid %dx%d invalid", g.Rows, g.Cols)
	}
	if g.ClockGHz <= 0 {
		return fmt.Errorf("taurus: clock %v GHz invalid", g.ClockGHz)
	}
	if g.VectorWidth <= 0 {
		return fmt.Errorf("taurus: vector width %d invalid", g.VectorWidth)
	}
	return nil
}

// CUs returns the total compute units on the fabric. Half the grid
// columns carry CUs and half MUs in Plasticine's checkerboard layout, but
// the paper counts the full R×C of each type; we follow the paper.
func (g Grid) CUs() int { return g.Rows * g.Cols }

// MUs returns the total memory units on the fabric.
func (g Grid) MUs() int { return g.Rows * g.Cols }

// Constraints are the performance requirements from the Alchemy program
// ("performance": {"throughput": GPkt/s, "latency": ns}).
type Constraints struct {
	ThroughputGPkts float64 // minimum packets/ns (1.0 = 1 GPkt/s)
	LatencyNS       float64 // maximum end-to-end latency
}

// DefaultConstraints is the evaluation setting: 1 GPkt/s line rate within
// 500 ns.
func DefaultConstraints() Constraints {
	return Constraints{ThroughputGPkts: 1.0, LatencyNS: 500}
}

// Report is the verdict the backend returns to the optimization core.
type Report struct {
	CUs             int
	MUs             int
	Stages          int     // pipeline depth in fabric cycles
	LatencyNS       float64 // parser + fabric + deparser
	ThroughputGPkts float64
	Fits            bool   // resources within grid
	MeetsPerf       bool   // latency and throughput constraints satisfied
	Reason          string // human-readable infeasibility cause ("" if feasible)
}

// Feasible reports whether the model can be deployed under the grid and
// constraints.
func (r Report) Feasible() bool { return r.Fits && r.MeetsPerf }

// parserOverheadNS is the fixed PISA parse/deparse latency budget around
// the MapReduce block.
const parserOverheadNS = 20.0

// Estimate maps a model onto the grid and computes the Report.
func Estimate(g Grid, c Constraints, m *ir.Model) (Report, error) {
	if err := g.Validate(); err != nil {
		return Report{}, err
	}
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	var rep Report
	switch m.Kind {
	case ir.DNN:
		rep = estimateDNN(g, m)
	case ir.SVM:
		rep = estimateLinear(g, m.Outputs, m.Inputs)
	case ir.KMeans:
		// A distance computation per centroid: same dataflow as a linear
		// layer with squared-difference map instead of multiply.
		rep = estimateLinear(g, m.Outputs, m.Inputs)
	case ir.DTree:
		rep = estimateTree(g, m)
	default:
		return Report{}, fmt.Errorf("taurus: unsupported model kind %v", m.Kind)
	}

	rep.Fits = rep.CUs <= g.CUs() && rep.MUs <= g.MUs()
	if !rep.Fits {
		rep.Reason = fmt.Sprintf("needs %d CUs / %d MUs, grid has %d/%d", rep.CUs, rep.MUs, g.CUs(), g.MUs())
	}

	// Timing: one stage per clock; the fabric is fully pipelined (II = 1)
	// when it fits, so throughput equals the clock. If the model does not
	// fit spatially, the compiler would have to time-multiplex layers,
	// dividing throughput by the over-subscription factor.
	cycleNS := 1.0 / g.ClockGHz
	rep.LatencyNS = parserOverheadNS + float64(rep.Stages)*cycleNS
	ii := 1.0
	if rep.CUs > g.CUs() {
		ii = math.Ceil(float64(rep.CUs) / float64(g.CUs()))
	}
	rep.ThroughputGPkts = g.ClockGHz / ii

	rep.MeetsPerf = rep.LatencyNS <= c.LatencyNS && rep.ThroughputGPkts >= c.ThroughputGPkts
	if rep.Fits && !rep.MeetsPerf {
		rep.Reason = fmt.Sprintf("latency %.0f ns (max %.0f) / throughput %.2f GPkt/s (min %.2f)",
			rep.LatencyNS, c.LatencyNS, rep.ThroughputGPkts, c.ThroughputGPkts)
	}
	return rep, nil
}

// estimateDNN maps each dense layer to a map-reduce pattern:
//   - map: out × ceil(in/V) vector-MAC CUs running in parallel (line rate
//     requires full spatial unrolling of every layer),
//   - reduce: a ceil(log2(ceil(in/V)))-deep adder tree folded into
//     ceil(out/2) CUs,
//   - activation: ceil(out/4) CUs,
//   - memory: weight banks (VectorWidth*4 words per MU) plus a
//     double-buffered activation SRAM pair per layer boundary and a
//     per-layer configuration MU.
func estimateDNN(g Grid, m *ir.Model) Report {
	var rep Report
	v := g.VectorWidth
	for _, l := range m.Layers {
		lanes := ceilDiv(l.In, v)
		mapCUs := l.Out * lanes
		reduceCUs := ceilDiv(l.Out, 2) * intLog2(lanes)
		actCUs := ceilDiv(l.Out, 4)
		rep.CUs += mapCUs + reduceCUs + actCUs

		params := l.In*l.Out + l.Out
		weightMUs := ceilDiv(params, v*4)
		bufferMUs := 2 * ceilDiv(l.Out, 4)
		rep.MUs += weightMUs + bufferMUs + 1

		// Stage depth: 1 map + reduce tree + 1 activation + 1 buffer.
		rep.Stages += 1 + intLog2(lanes) + intLog2(min(l.In, v)) + 2
	}
	return rep
}

// estimateLinear covers SVM hyperplanes and KMeans distance computations:
// `units` parallel dot products of length `in`.
func estimateLinear(g Grid, units, in int) Report {
	var rep Report
	v := g.VectorWidth
	lanes := ceilDiv(in, v)
	rep.CUs = units*lanes + ceilDiv(units, 2)*intLog2(lanes) + 1 // +1 argmax
	params := units * (in + 1)
	rep.MUs = ceilDiv(params, v*4) + 2
	rep.Stages = 1 + intLog2(lanes) + intLog2(min(in, v)) + 2
	return rep
}

// estimateTree maps a decision tree: one comparator CU per internal node
// level (levels execute as pipeline stages), with the node parameters in
// one MU per two levels.
func estimateTree(g Grid, m *ir.Model) Report {
	depth := treeDepth(m.Tree)
	nodes := countInternal(m.Tree)
	return Report{
		CUs:    nodes + 1,
		MUs:    ceilDiv(nodes, 8) + 1,
		Stages: depth + 2,
	}
}

func treeDepth(n *ir.TreeNode) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	l, r := treeDepth(n.Left), treeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func countInternal(n *ir.TreeNode) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	return 1 + countInternal(n.Left) + countInternal(n.Right)
}

// EstimateComposition computes the resources of a set of models deployed
// simultaneously on one grid (the app-chaining experiment, Table 3). The
// fabric executes models spatially side by side; sequential (>) versus
// parallel (|) composition changes only the inter-model routing, which
// fits in already-allocated CUs, so resource totals are strategy-
// independent — the property Table 3 demonstrates. Latency, however, adds
// along the longest sequential chain.
//
// chainDepth is the depth of the longest sequential path in the
// composition DAG (1 for a fully parallel schedule, n for a linear chain).
func EstimateComposition(g Grid, c Constraints, models []*ir.Model, chainDepth int) (Report, error) {
	if len(models) == 0 {
		return Report{}, fmt.Errorf("taurus: empty composition")
	}
	if chainDepth < 1 || chainDepth > len(models) {
		return Report{}, fmt.Errorf("taurus: chain depth %d out of range [1,%d]", chainDepth, len(models))
	}
	var total Report
	maxStages := 0
	sumStages := 0
	for _, m := range models {
		r, err := Estimate(g, c, m)
		if err != nil {
			return Report{}, err
		}
		total.CUs += r.CUs
		total.MUs += r.MUs
		if r.Stages > maxStages {
			maxStages = r.Stages
		}
		sumStages += r.Stages
	}
	// Longest path: interpolate between parallel (max) and chained (sum).
	if chainDepth == 1 {
		total.Stages = maxStages
	} else {
		avg := float64(sumStages) / float64(len(models))
		total.Stages = int(math.Ceil(avg * float64(chainDepth)))
		if total.Stages > sumStages {
			total.Stages = sumStages
		}
		if total.Stages < maxStages {
			total.Stages = maxStages
		}
	}
	cycleNS := 1.0 / g.ClockGHz
	total.LatencyNS = parserOverheadNS + float64(total.Stages)*cycleNS
	total.Fits = total.CUs <= g.CUs() && total.MUs <= g.MUs()
	ii := 1.0
	if total.CUs > g.CUs() {
		ii = math.Ceil(float64(total.CUs) / float64(g.CUs()))
	}
	total.ThroughputGPkts = g.ClockGHz / ii
	total.MeetsPerf = total.LatencyNS <= c.LatencyNS && total.ThroughputGPkts >= c.ThroughputGPkts
	if !total.Fits {
		total.Reason = fmt.Sprintf("composition needs %d CUs / %d MUs, grid has %d/%d",
			total.CUs, total.MUs, g.CUs(), g.MUs())
	} else if !total.MeetsPerf {
		total.Reason = fmt.Sprintf("composition latency %.0f ns / throughput %.2f GPkt/s violates constraints",
			total.LatencyNS, total.ThroughputGPkts)
	}
	return total, nil
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// intLog2 returns ceil(log2(n)) for n >= 1 (0 for n <= 1).
func intLog2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
