package taurus

import (
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

// dnnModel builds an untrained DNN IR with the given layer dims.
func dnnModel(t *testing.T, dims ...int) *ir.Model {
	t.Helper()
	m := &ir.Model{Kind: ir.DNN, Name: "m", Inputs: dims[0], Outputs: dims[len(dims)-1], Format: fixed.Q8_8}
	for i := 0; i < len(dims)-1; i++ {
		l := ir.Layer{In: dims[i], Out: dims[i+1], Activation: "relu"}
		l.W = make([][]float64, l.Out)
		for o := range l.W {
			l.W[o] = make([]float64, l.In)
		}
		l.B = make([]float64, l.Out)
		m.Layers = append(m.Layers, l)
	}
	m.Layers[len(m.Layers)-1].Activation = "softmax"
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGridValidate(t *testing.T) {
	if err := DefaultGrid().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Grid{
		{Rows: 0, Cols: 16, ClockGHz: 1, VectorWidth: 8},
		{Rows: 16, Cols: 16, ClockGHz: 0, VectorWidth: 8},
		{Rows: 16, Cols: 16, ClockGHz: 1, VectorWidth: 0},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Fatalf("grid %d must fail", i)
		}
	}
	if DefaultGrid().CUs() != 256 || DefaultGrid().MUs() != 256 {
		t.Fatal("16x16 grid must expose 256 CUs and 256 MUs")
	}
}

func TestEstimateSmallDNNFeasible(t *testing.T) {
	// The paper's baseline AD architecture (hidden 12, 6, 3) must fit the
	// 16×16 grid and meet 1 GPkt/s within 500 ns.
	m := dnnModel(t, 7, 12, 6, 3, 2)
	rep, err := Estimate(DefaultGrid(), DefaultConstraints(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("baseline AD must be feasible: %+v", rep)
	}
	if rep.CUs <= 0 || rep.MUs <= 0 || rep.Stages <= 0 {
		t.Fatalf("degenerate estimate: %+v", rep)
	}
	if rep.ThroughputGPkts != 1.0 {
		t.Fatalf("fitting model must run at line rate, got %v", rep.ThroughputGPkts)
	}
	if rep.LatencyNS >= 500 {
		t.Fatalf("latency %v too high", rep.LatencyNS)
	}
}

func TestBiggerModelsUseMoreResources(t *testing.T) {
	small := dnnModel(t, 7, 8, 2)
	big := dnnModel(t, 7, 16, 16, 2)
	g, c := DefaultGrid(), DefaultConstraints()
	rs, _ := Estimate(g, c, small)
	rb, _ := Estimate(g, c, big)
	if rb.CUs <= rs.CUs || rb.MUs <= rs.MUs {
		t.Fatalf("bigger model must use more resources: %+v vs %+v", rb, rs)
	}
}

func TestDeepNarrowTradesCUsForMUs(t *testing.T) {
	// The Table-2 BD shape: at comparable parameter count, a deep narrow
	// net should use fewer CUs and more MUs than a shallow wide one.
	wide := dnnModel(t, 30, 16, 16, 2)           // 30*16+16*16+16*2 ≈ 768 weights, 2 hidden
	deep := dnnModel(t, 30, 8, 8, 8, 8, 8, 8, 2) // ≈ 240+5*64+16 ≈ 576 weights, 6 hidden
	g, c := DefaultGrid(), DefaultConstraints()
	rw, _ := Estimate(g, c, wide)
	rd, _ := Estimate(g, c, deep)
	if rd.CUs >= rw.CUs {
		t.Fatalf("deep narrow CUs (%d) must be below wide (%d)", rd.CUs, rw.CUs)
	}
	perLayerMUwide := float64(rw.MUs) / 3
	perLayerMUdeep := float64(rd.MUs) / 7
	_ = perLayerMUwide
	_ = perLayerMUdeep
	if rd.Stages <= rw.Stages {
		t.Fatalf("deep net must have more pipeline stages (%d vs %d)", rd.Stages, rw.Stages)
	}
}

func TestOversizedModelInfeasible(t *testing.T) {
	huge := dnnModel(t, 64, 128, 128, 2)
	rep, err := Estimate(DefaultGrid(), DefaultConstraints(), huge)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible() {
		t.Fatal("huge model must not fit 16x16 grid")
	}
	if rep.Reason == "" {
		t.Fatal("infeasible report must carry a reason")
	}
	if rep.ThroughputGPkts >= 1.0 {
		t.Fatal("over-subscribed model must lose throughput")
	}
}

func TestLatencyConstraintBinds(t *testing.T) {
	m := dnnModel(t, 7, 12, 6, 2)
	tight := Constraints{ThroughputGPkts: 1.0, LatencyNS: 5}
	rep, _ := Estimate(DefaultGrid(), tight, m)
	if rep.MeetsPerf {
		t.Fatal("5 ns budget must be violated")
	}
	if rep.Reason == "" {
		t.Fatal("must carry reason")
	}
}

func TestSVMAndKMeansEstimates(t *testing.T) {
	svmModel := &ir.Model{Kind: ir.SVM, Name: "s", Inputs: 7, Outputs: 5, Format: fixed.Q8_8,
		SVM: &ir.SVMParams{W: make([][]float64, 5), B: make([]float64, 5)}}
	for i := range svmModel.SVM.W {
		svmModel.SVM.W[i] = make([]float64, 7)
	}
	rep, err := Estimate(DefaultGrid(), DefaultConstraints(), svmModel)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("small SVM must be feasible: %+v", rep)
	}
	km := &ir.Model{Kind: ir.KMeans, Name: "k", Inputs: 7, Outputs: 5, Format: fixed.Q8_8,
		Centroids: make([][]float64, 5)}
	for i := range km.Centroids {
		km.Centroids[i] = make([]float64, 7)
	}
	rep2, err := Estimate(DefaultGrid(), DefaultConstraints(), km)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Feasible() {
		t.Fatalf("small KMeans must be feasible: %+v", rep2)
	}
}

func TestTreeEstimate(t *testing.T) {
	tree := &ir.TreeNode{Feature: 0, Threshold: 0.5,
		Left: &ir.TreeNode{Feature: -1, Class: 0},
		Right: &ir.TreeNode{Feature: 1, Threshold: 0.2,
			Left:  &ir.TreeNode{Feature: -1, Class: 1},
			Right: &ir.TreeNode{Feature: -1, Class: 0}},
	}
	m := &ir.Model{Kind: ir.DTree, Name: "t", Inputs: 2, Outputs: 2, Format: fixed.Q8_8, Tree: tree}
	rep, err := Estimate(DefaultGrid(), DefaultConstraints(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CUs != 3 { // 2 internal nodes + 1
		t.Fatalf("tree CUs = %d", rep.CUs)
	}
	if !rep.Feasible() {
		t.Fatal("tiny tree must be feasible")
	}
}

func TestCompositionResourcesStrategyIndependent(t *testing.T) {
	// Table 3: total CU/MU identical across chaining strategies.
	m := dnnModel(t, 7, 12, 6, 3, 2)
	models := []*ir.Model{m, m, m, m}
	g, c := DefaultGrid(), DefaultConstraints()
	seq, err := EstimateComposition(g, c, models, 4) // m>m>m>m
	if err != nil {
		t.Fatal(err)
	}
	par, err := EstimateComposition(g, c, models, 1) // m|m|m|m
	if err != nil {
		t.Fatal(err)
	}
	mix, err := EstimateComposition(g, c, models, 3) // m>(m|m)>m
	if err != nil {
		t.Fatal(err)
	}
	if seq.CUs != par.CUs || seq.CUs != mix.CUs {
		t.Fatalf("CU totals differ: %d/%d/%d", seq.CUs, par.CUs, mix.CUs)
	}
	if seq.MUs != par.MUs || seq.MUs != mix.MUs {
		t.Fatalf("MU totals differ: %d/%d/%d", seq.MUs, par.MUs, mix.MUs)
	}
	// Latency: parallel < mixed < sequential.
	if !(par.LatencyNS < mix.LatencyNS && mix.LatencyNS < seq.LatencyNS) {
		t.Fatalf("latency ordering wrong: par %v mix %v seq %v", par.LatencyNS, mix.LatencyNS, seq.LatencyNS)
	}
}

func TestCompositionErrors(t *testing.T) {
	g, c := DefaultGrid(), DefaultConstraints()
	if _, err := EstimateComposition(g, c, nil, 1); err == nil {
		t.Fatal("empty composition must fail")
	}
	m := dnnModel(t, 7, 4, 2)
	if _, err := EstimateComposition(g, c, []*ir.Model{m}, 2); err == nil {
		t.Fatal("chain depth > models must fail")
	}
}

func TestHelpers(t *testing.T) {
	if ceilDiv(7, 8) != 1 || ceilDiv(8, 8) != 1 || ceilDiv(9, 8) != 2 || ceilDiv(1, 0) != 0 {
		t.Fatal("ceilDiv")
	}
	if intLog2(1) != 0 || intLog2(2) != 1 || intLog2(3) != 2 || intLog2(8) != 3 {
		t.Fatal("intLog2")
	}
}
