package taurus

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/nn"
)

// trainedModel builds a small trained DNN IR for simulation tests.
func trainedModel(t *testing.T, hidden []int, seed int64) (*ir.Model, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(300, 4)
	for i := 0; i < 300; i++ {
		c := i % 2
		for j := 0; j < 4; j++ {
			d.X.Set(i, j, float64(c)*1.5+rng.NormFloat64()*0.4)
		}
		d.Y[i] = c
	}
	cfg := nn.Config{
		Inputs: 4, Hidden: hidden, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.Adam,
		LearnRate: 0.01, BatchSize: 32, Epochs: 15, Seed: seed,
	}
	net, err := nn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(d); err != nil {
		t.Fatal(err)
	}
	return ir.FromNN("sim", net, fixed.Q8_8), d
}

func TestSimMatchesInferQ(t *testing.T) {
	m, d := trainedModel(t, []int{12, 6}, 1)
	sim, err := NewSim(DefaultGrid(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		want, err := m.InferQ(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sim.Process(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: sim %d vs InferQ %d", i, got, want)
		}
	}
}

func TestSimStageCountMatchesEstimate(t *testing.T) {
	// The analytic Estimate and the compiled pipeline must agree on depth
	// — the property that makes the analytic model a valid substitute.
	for _, hidden := range [][]int{{8}, {12, 6}, {16, 12, 8}, {10, 10, 10, 10}} {
		m, _ := trainedModel(t, hidden, 7)
		sim, err := NewSim(DefaultGrid(), m)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Estimate(DefaultGrid(), DefaultConstraints(), m)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Stages() != rep.Stages {
			t.Fatalf("hidden %v: sim %d stages, estimate %d", hidden, sim.Stages(), rep.Stages)
		}
	}
}

func TestSimWithNormalizer(t *testing.T) {
	m, d := trainedModel(t, []int{8}, 3)
	norm := dataset.FitNormalizer(d)
	m.Mean = append([]float64{}, norm.Mean...)
	m.Std = append([]float64{}, norm.Std...)
	sim, err := NewSim(DefaultGrid(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		want, _ := m.InferQ(d.X.Row(i))
		got, _, err := sim.Process(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("normalized sample %d: sim %d vs InferQ %d", i, got, want)
		}
	}
}

func TestSimStreamThroughput(t *testing.T) {
	m, d := trainedModel(t, []int{12, 6}, 4)
	sim, err := NewSim(DefaultGrid(), m)
	if err != nil {
		t.Fatal(err)
	}
	var xs [][]float64
	for i := 0; i < 200; i++ {
		xs = append(xs, d.X.Row(i))
	}
	classes, stats, err := sim.ProcessStream(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 200 {
		t.Fatal("class per packet")
	}
	if stats.FillCycles != sim.Stages() {
		t.Fatal("fill latency must equal pipeline depth")
	}
	if stats.TotalCycles != stats.FillCycles+199 {
		t.Fatalf("II=1 accounting wrong: %+v", stats)
	}
	// Long streams approach one packet per cycle.
	if stats.ThroughputPktsPerCycle < 0.85 {
		t.Fatalf("throughput %v too low for 200-packet stream", stats.ThroughputPktsPerCycle)
	}
}

func TestSimRejectsNonDNN(t *testing.T) {
	m := &ir.Model{Kind: ir.SVM, Name: "s", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		SVM: &ir.SVMParams{W: [][]float64{{1, 2}, {3, 4}}, B: []float64{0, 0}}}
	if _, err := NewSim(DefaultGrid(), m); err == nil {
		t.Fatal("non-DNN must be rejected")
	}
}

func TestSimProcessErrors(t *testing.T) {
	m, _ := trainedModel(t, []int{8}, 5)
	sim, _ := NewSim(DefaultGrid(), m)
	if _, _, err := sim.Process([]float64{1}); err == nil {
		t.Fatal("wrong width must error")
	}
	if len(sim.StageNames()) != sim.Stages()+1 {
		t.Fatal("stage names must cover parse + fabric stages")
	}
}

func TestSimEmptyStream(t *testing.T) {
	m, _ := trainedModel(t, []int{8}, 6)
	sim, _ := NewSim(DefaultGrid(), m)
	classes, stats, err := sim.ProcessStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 0 || stats.TotalCycles != 0 {
		t.Fatal("empty stream must be a no-op")
	}
}

// Regression (validator-found): a lane whose partial dot product
// overflows the Q format must not saturate independently — the fabric
// reduce tree keeps full precision until one writeback. Lane 0 sums to
// +7.5e9 raw and lane 1 to -7.5e9; per-lane saturation collapsed them to
// +32767/-32768 (score -1) while the true sum is 0, flipping the argmax.
func TestSimLaneSaturationRegression(t *testing.T) {
	m := &ir.Model{Kind: ir.DNN, Name: "lanesat", Inputs: 16, Outputs: 2, Format: fixed.Q8_8}
	l := ir.Layer{In: 16, Out: 2, B: []float64{0, 0}, Activation: "softmax"}
	l.W = [][]float64{make([]float64, 16), make([]float64, 16)}
	for j := 0; j < 8; j++ {
		l.W[0][j] = 120
		l.W[0][8+j] = -120
	}
	m.Layers = []ir.Layer{l}
	x := make([]float64, 16)
	for j := range x {
		x[j] = 120
	}
	sim, err := NewSim(DefaultGrid(), m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferQ(x)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sim.Process(x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("lane-saturated input: sim %d vs InferQ %d", got, want)
	}
	if want != 0 {
		t.Fatalf("test vector lost its discriminating power: InferQ = %d", want)
	}
}

// Regression (validator-found): normalization must happen in the float
// domain before quantization. Quantizing first destroys sub-LSB inputs
// (0.001 quantizes to 0 in Q8.8), so renormalizing the dequantized word
// computes 0/std instead of x/std.
func TestSimNormalizerPrecisionRegression(t *testing.T) {
	m := &ir.Model{Kind: ir.DNN, Name: "normprec", Inputs: 1, Outputs: 2, Format: fixed.Q8_8,
		Mean: []float64{0}, Std: []float64{0.001},
		Layers: []ir.Layer{{In: 1, Out: 2, W: [][]float64{{1}, {0}}, B: []float64{0, 0.5}, Activation: "softmax"}}}
	sim, err := NewSim(DefaultGrid(), m)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.001} // below one LSB; normalizes to exactly 1.0
	want, err := m.InferQ(x)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sim.Process(x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sub-LSB input: sim %d vs InferQ %d", got, want)
	}
	if want != 0 {
		t.Fatalf("test vector lost its discriminating power: InferQ = %d", want)
	}
}
