package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// Naive reference kernels: the textbook triple loops the blocked/parallel
// implementations must reproduce to within 1e-12.

func refMatMul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func refMatMulT(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func refTMatMul(a, b *Matrix) *Matrix {
	dst := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 { // exercise the zero-skip fast path
			m.Data[i] = 0
		}
	}
	return m
}

func assertClose(t *testing.T, name string, got, want *Matrix, m, k, n int) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s %dx%dx%d: shape %dx%d, want %dx%d", name, m, k, n, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		scale := math.Max(1, math.Abs(want.Data[i]))
		if diff/scale > 1e-12 {
			t.Fatalf("%s %dx%dx%d: elem %d = %v, want %v (|Δ|=%g)", name, m, k, n, i, got.Data[i], want.Data[i], diff)
		}
	}
}

// kernelShapes mixes randomized shapes with the degenerate edges (1×N,
// N×1, single-element) and shapes straddling the blockK boundary.
func kernelShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{1, 1, 1},
		{1, 7, 1},
		{1, 13, 9}, // 1×N row vector
		{9, 13, 1}, // N×1 column output
		{5, 1, 5},  // inner dim 1
		{3, blockK - 1, 4},
		{3, blockK, 4},
		{3, blockK + 1, 4},
		{2, 3*blockK + 17, 5},
	}
	for i := 0; i < 12; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(40), 1 + rng.Intn(40)})
	}
	// A couple of shapes big enough to cross the parallel-dispatch
	// threshold even without forcing extra workers.
	shapes = append(shapes, [3]int{96, 64, 48}, [3]int{200, 33, 40})
	return shapes
}

func TestBlockedKernelsMatchReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		rng := rand.New(rand.NewSource(42))
		for _, s := range kernelShapes(rng) {
			m, k, n := s[0], s[1], s[2]

			a, b := randMat(rng, m, k), randMat(rng, k, n)
			assertClose(t, "MatMul", MatMul(New(m, n), a, b), refMatMul(a, b), m, k, n)

			bt := randMat(rng, n, k) // b for a·bᵀ shares the inner dim
			assertClose(t, "MatMulT", MatMulT(New(m, n), a, bt), refMatMulT(a, bt), m, k, n)

			at := randMat(rng, k, m)
			assertClose(t, "TMatMul", TMatMul(New(m, n), at, b), refTMatMul(at, b), m, k, n)
		}
		parallel.SetWorkers(old)
	}
}

// TestKernelsPoolSizeInvariant pins the stronger property the BO
// determinism guarantee rests on: the kernels are not merely within
// tolerance of the reference but bit-identical across pool sizes.
func TestKernelsPoolSizeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randMat(rng, 120, 70), randMat(rng, 70, 50)
	c := randMat(rng, 120, 50)

	old := parallel.Workers()
	defer parallel.SetWorkers(old)

	parallel.SetWorkers(1)
	serial := MatMul(New(120, 50), a, b)
	serialT := MatMulT(New(120, 70), serial, b)
	serialG := TMatMul(New(70, 50), a, c)

	for _, workers := range []int{2, 5, 16} {
		parallel.SetWorkers(workers)
		par := MatMul(New(120, 50), a, b)
		parT := MatMulT(New(120, 70), serial, b)
		parG := TMatMul(New(70, 50), a, c)
		for i := range serial.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: MatMul elem %d differs bitwise", workers, i)
			}
		}
		for i := range serialT.Data {
			if parT.Data[i] != serialT.Data[i] {
				t.Fatalf("workers=%d: MatMulT elem %d differs bitwise", workers, i)
			}
		}
		for i := range serialG.Data {
			if parG.Data[i] != serialG.Data[i] {
				t.Fatalf("workers=%d: TMatMul elem %d differs bitwise", workers, i)
			}
		}
	}
}
