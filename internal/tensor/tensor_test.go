package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero storage")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At = %v, want 7.5", m.At(1, 2))
	}
	r := m.Row(1)
	r[0] = 9 // views alias storage
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
	if c.At(1, 1) != 4 {
		t.Fatal("Clone must copy values")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(dst.At(i, j), want[i][j]) {
				t.Fatalf("MatMul[%d][%d] = %v, want %v", i, j, dst.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(3, 5)
	b := New(4, 5)
	a.RandInit(rng, 1)
	b.RandInit(rng, 1)
	got := New(3, 4)
	MatMulT(got, a, b)
	// explicit transpose
	bt := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := New(3, 4)
	MatMul(want, a, bt)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("MatMulT mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(6, 3)
	b := New(6, 4)
	a.RandInit(rng, 1)
	b.RandInit(rng, 1)
	got := New(3, 4)
	TMatMul(got, a, b)
	at := New(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := New(3, 4)
	MatMul(want, at, b)
	for i := range got.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatalf("TMatMul mismatch at %d", i)
		}
	}
}

func TestDotAxpyScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if !almostEq(Dot(a, b), 32) {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	dst := []float64{1, 1, 1}
	Axpy(dst, 2, a)
	if dst[2] != 7 {
		t.Fatalf("Axpy = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[2] != 3.5 {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestAddBiasColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	AddBias(m, []float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddBias got %v", m.Data)
	}
	sums := make([]float64, 2)
	ColSums(sums, m)
	if sums[0] != 24 || sums[1] != 46 {
		t.Fatalf("ColSums got %v", sums)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) should be -1")
	}
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax ties must pick first")
	}
}

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty stats must be 0")
	}
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(x), 5) {
		t.Fatalf("Mean = %v", Mean(x))
	}
	if !almostEq(Variance(x), 4) {
		t.Fatalf("Variance = %v", Variance(x))
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx := Range(100)
	Shuffle(rng, idx)
	seen := make([]bool, 100)
	for _, v := range idx {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", idx)
		}
		seen[v] = true
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotPropertiesQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true // skip degenerate inputs
			}
		}
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-6*(1+math.Abs(Dot(a, b))) {
			return false
		}
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = 2 * a[i]
		}
		return math.Abs(Dot(a2, b)-2*Dot(a, b)) <= 1e-6*(1+math.Abs(2*Dot(a, b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SqDist(a,b) >= 0 and SqDist(a,a) == 0.
func TestSqDistQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		if SqDist(raw, raw) != 0 {
			return false
		}
		b := make([]float64, len(raw))
		copy(b, raw)
		b[0]++
		return SqDist(raw, b) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(10, 20)
	m.GlorotInit(rng, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
}
