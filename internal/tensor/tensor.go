// Package tensor provides the dense matrix and vector kernels used by the
// model trainers and data-plane executors. It is intentionally small: all
// shapes are 2-D (Matrix) or 1-D ([]float64), storage is row-major, and
// every routine is allocation-explicit so hot training loops can reuse
// buffers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a Rows×Cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d needs %d elems, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d (len %d, want %d)", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// RandInit fills m with uniform values in [-scale, scale] drawn from rng.
func (m *Matrix) RandInit(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// GlorotInit fills m with the Glorot/Xavier uniform distribution for a
// layer with fanIn inputs and fanOut outputs.
func (m *Matrix) GlorotInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.RandInit(rng, limit)
}

// Kernel tuning. parMinFlops is the multiply-add count below which the
// matmul kernels stay serial: the data-plane models Homunculus trains are
// often tiny (a handful of neurons), and goroutine dispatch would dwarf the
// arithmetic. blockK is the depth-blocking factor — a blockK×Cols panel of
// the right operand is streamed through cache while a block of output rows
// accumulates, which is what bounds memory traffic on the wide layers.
const (
	parMinFlops = 1 << 14
	blockK      = 128
)

// matMulGrain returns the minimum number of output rows per parallel chunk
// given flopsPerRow multiply-adds each.
func matMulGrain(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		return parMinFlops
	}
	g := parMinFlops / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes dst = a·b. dst must be a.Rows×b.Cols and distinct from
// a and b. It returns dst for chaining. Large products are cache-blocked
// over the inner dimension and split row-wise across the shared worker
// pool; every dst element is accumulated in ascending-k order regardless
// of the split, so results are bit-identical at any pool size.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	// Serial fast path without closure construction: tiny products (the
	// common data-plane model case) must not pay any dispatch overhead.
	if a.Rows*a.Cols*b.Cols < 2*parMinFlops || parallel.Workers() == 1 {
		matMulRows(dst, a, b, 0, a.Rows)
		return dst
	}
	parallel.For(a.Rows, matMulGrain(a.Cols*b.Cols), func(lo, hi int) {
		matMulRows(dst, a, b, lo, hi)
	})
	return dst
}

// matMulRows computes dst rows [lo, hi) of a·b with depth blocking. The
// depth loop is unrolled 4-wide so each pass over the output row retires
// four inputs — the same pattern at every pool size, keeping results
// bit-identical however the rows are chunked.
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
	}
	for kb := 0; kb < k; kb += blockK {
		kend := kb + blockK
		if kend > k {
			kend = k
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*n : (i+1)*n]
			kk := kb
			for ; kk+3 < kend; kk += 4 {
				a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.Data[kk*n : (kk+1)*n]
				b1 := b.Data[(kk+1)*n : (kk+2)*n]
				b2 := b.Data[(kk+2)*n : (kk+3)*n]
				b3 := b.Data[(kk+3)*n : (kk+4)*n]
				for j := range drow {
					drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; kk < kend; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MatMulT computes dst = a·bᵀ, i.e. dst[i][j] = dot(a.Row(i), b.Row(j)).
// Rows of dst are computed independently across the shared worker pool;
// each dot product runs in fixed ascending order, so results are
// bit-identical at any pool size.
func MatMulT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if a.Rows*a.Cols*b.Rows < 2*parMinFlops || parallel.Workers() == 1 {
		matMulTRows(dst, a, b, 0, a.Rows)
		return dst
	}
	parallel.For(a.Rows, matMulGrain(a.Cols*b.Rows), func(lo, hi int) {
		matMulTRows(dst, a, b, lo, hi)
	})
	return dst
}

// matMulTRows computes dst rows [lo, hi) of a·bᵀ.
func matMulTRows(dst, a, b *Matrix, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// TMatMul computes dst = aᵀ·b. The output is split row-wise (columns of a)
// across the shared worker pool; each dst element accumulates over samples
// in ascending order within its one chunk, so results are bit-identical at
// any pool size.
func TMatMul(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if a.Rows*a.Cols*b.Cols < 2*parMinFlops || parallel.Workers() == 1 {
		tMatMulCols(dst, a, b, 0, a.Cols)
		return dst
	}
	parallel.For(a.Cols, matMulGrain(a.Rows*b.Cols), func(lo, hi int) {
		tMatMulCols(dst, a, b, lo, hi)
	})
	return dst
}

// tMatMulCols accumulates dst rows [lo, hi) of aᵀ·b (i.e. columns [lo, hi)
// of a), streaming sample rows of a and b across the whole chunk four at a
// time so each pass over an output row retires four samples. The unroll
// pattern is the same at every pool size, keeping results bit-identical
// however the columns are chunked.
func tMatMulCols(dst, a, b *Matrix, lo, hi int) {
	m, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
	}
	r := 0
	for ; r+3 < a.Rows; r += 4 {
		a0 := a.Data[r*m : (r+1)*m]
		a1 := a.Data[(r+1)*m : (r+2)*m]
		a2 := a.Data[(r+2)*m : (r+3)*m]
		a3 := a.Data[(r+3)*m : (r+4)*m]
		b0 := b.Data[r*n : (r+1)*n]
		b1 := b.Data[(r+1)*n : (r+2)*n]
		b2 := b.Data[(r+2)*n : (r+3)*n]
		b3 := b.Data[(r+3)*n : (r+4)*n]
		for i := lo; i < hi; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			for j := range drow {
				drow[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
			}
		}
	}
	for ; r < a.Rows; r++ {
		arow := a.Data[r*m : (r+1)*m]
		brow := b.Data[r*n : (r+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha*x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(dst), len(x)))
	}
	for i, xv := range x {
		dst[i] += alpha * xv
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float64, alpha float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddBias adds the bias vector b to every row of m in place.
func AddBias(m *Matrix, b []float64) {
	if len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBias len %d, want %d", len(b), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, bv := range b {
			row[j] += bv
		}
	}
}

// ColSums accumulates the per-column sums of m into dst (len m.Cols).
func ColSums(dst []float64, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSums len %d, want %d", len(dst), m.Cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// ArgMax returns the index of the largest element of x (first on ties).
// It returns -1 for an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 for len(x) < 2.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Shuffle permutes idx in place using rng (Fisher–Yates).
func Shuffle(rng *rand.Rand, idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// Range returns [0, 1, ..., n-1].
func Range(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
