package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// trainLeaf builds a small trained DNN over `features` inputs.
func trainLeaf(t *testing.T, d *dataset.Dataset, seed int64) *ir.Model {
	t.Helper()
	cfg := nn.Config{
		Inputs: d.Features(), Hidden: []int{10}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.Adam,
		LearnRate: 0.01, BatchSize: 16, Epochs: 20, Seed: seed,
	}
	net, err := nn.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(d); err != nil {
		t.Fatal(err)
	}
	return ir.FromNN("leaf", net, fixed.Q8_8)
}

func execData(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(400, 3)
	for i := 0; i < 400; i++ {
		c := i % 2
		for j := 0; j < 3; j++ {
			d.X.Set(i, j, float64(c)*1.5+rng.NormFloat64()*0.4)
		}
		d.Y[i] = c
	}
	return d
}

func TestExecLeafMatchesInferQ(t *testing.T) {
	d := execData(t, 1)
	m := trainLeaf(t, d, 1)
	exec, err := NewExec(Leaf(m), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		want, _ := m.InferQ(d.X.Row(i))
		got, err := exec.Classify(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("leaf exec diverges at %d", i)
		}
	}
}

func TestExecCascadeDefaultsToPacket(t *testing.T) {
	// Seq without mappers: each stage re-reads the packet; final verdict
	// comes from the last stage.
	d := execData(t, 2)
	m1 := trainLeaf(t, d, 2)
	m2 := trainLeaf(t, d, 3)
	exec, err := NewExec(Chain(Leaf(m1), Leaf(m2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < d.Len(); i++ {
		got, err := exec.Classify(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := m2.InferQ(d.X.Row(i))
		if got == want {
			agree++
		}
	}
	if agree != d.Len() {
		t.Fatalf("cascade verdict must be last stage's: %d/%d", agree, d.Len())
	}
}

func TestExecIOMapFeedsScoresForward(t *testing.T) {
	// An IOMap that hands the upstream scores to a 2-input downstream
	// model (score-stacking).
	d := execData(t, 4)
	m1 := trainLeaf(t, d, 4)

	// Downstream model consumes m1's 2 scores.
	scored := dataset.New(d.Len(), 2)
	for i := 0; i < d.Len(); i++ {
		s, err := m1.ScoresQ(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		copy(scored.X.Row(i), s)
		scored.Y[i] = d.Y[i]
	}
	m2 := trainLeaf(t, scored, 5)

	comp := Chain(Leaf(m1), Leaf(m2))
	mappers := map[*Composition][]IOMapper{
		comp: {func(packet, scores []float64) []float64 { return scores }},
	}
	exec, err := NewExec(comp, mappers)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]int, d.Len())
	for i := 0; i < d.Len(); i++ {
		c, err := exec.Classify(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		pred[i] = c
	}
	acc := metrics.FromLabels(d.Y, pred, 2).Accuracy()
	if acc < 0.9 {
		t.Fatalf("stacked cascade accuracy %v", acc)
	}
}

func TestExecParallelConcatenates(t *testing.T) {
	d := execData(t, 6)
	m1 := trainLeaf(t, d, 6)
	m2 := trainLeaf(t, d, 7)
	exec, err := NewExec(Parallel(Leaf(m1), Leaf(m2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := exec.Run(d.X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 { // 2 classes × 2 models
		t.Fatalf("parallel scores = %d, want 4", len(scores))
	}
}

func TestExecDimensionMismatchWithoutMapper(t *testing.T) {
	d := execData(t, 8)
	m1 := trainLeaf(t, d, 8)
	small := dataset.New(50, 2)
	for i := 0; i < 50; i++ {
		small.X.Set(i, 0, float64(i%2))
		small.Y[i] = i % 2
	}
	m2 := trainLeaf(t, small, 9)
	// Mapper feeding 2 scores into the 2-input m2 works; removing it and
	// letting m2 re-read the 3-feature packet must fail loudly.
	exec, err := NewExec(Chain(Leaf(m1), Leaf(m2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Classify(d.X.Row(0)); err == nil {
		t.Fatal("dimension mismatch must surface as an error")
	}
}

func TestNewExecValidation(t *testing.T) {
	if _, err := NewExec(&Composition{}, nil); err == nil {
		t.Fatal("invalid composition must fail")
	}
	d := execData(t, 10)
	m := trainLeaf(t, d, 10)
	leaf := Leaf(m)
	if _, err := NewExec(leaf, map[*Composition][]IOMapper{leaf: {nil}}); err == nil {
		t.Fatal("mapper on a leaf must fail")
	}
	chain := Chain(Leaf(m), Leaf(m))
	tooMany := map[*Composition][]IOMapper{chain: {nil, nil, nil}}
	if _, err := NewExec(chain, tooMany); err == nil {
		t.Fatal("too many mappers must fail")
	}
}
