package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bo"
	"repro/internal/dataset"
	"repro/internal/ir"
)

// Accuracy-vs-resources Pareto exploration. The design challenge §3 opens
// with is exactly this trade-off: "Certain models may provide better
// performance with additional resources; the most efficient model will
// use as many resources as needed without over-provisioning." Single-
// objective Search picks the best-metric feasible model; SearchPareto
// instead exposes the whole frontier so an operator (or a multi-app
// scheduler trying to pack several models onto one switch) can choose the
// accuracy/footprint point they need.

// ParetoPoint is one non-dominated (metric, resource) trade-off.
type ParetoPoint struct {
	Model    *ir.Model
	Metric   float64
	Resource float64 // primary resource consumption (lower is better)
	Verdict  Verdict
}

// ParetoSearchResult carries the frontier, sorted by ascending resource.
type ParetoSearchResult struct {
	Algorithm   ir.Kind
	ResourceKey string
	Front       []ParetoPoint
	Evaluations int
}

// SearchPareto runs a two-objective BO (maximize metric, minimize the
// target's binding resource, per target.ResourceKey) over one algorithm
// family and returns the feasible Pareto front. Cancellation follows the
// Search contract.
func SearchPareto(ctx context.Context, app App, target Target, cfg SearchConfig, kind ir.Kind) (*ParetoSearchResult, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	if !target.Supports(kind) {
		return nil, fmt.Errorf("core: target %s does not support %s", target.Name(), kind)
	}
	space, build := familySpace(app, cfg, kind)
	key := target.ResourceKey()

	var norm *dataset.Normalizer
	train, test := app.Train, app.Test
	if app.Normalize {
		norm = dataset.FitNormalizer(app.Train)
		train = app.Train.Clone()
		test = app.Test.Clone()
		norm.Apply(train)
		norm.Apply(test)
	}

	// Keep the trained model of each evaluation so front entries can be
	// resolved back to deployable models. Keyed by evaluation index.
	var mu sync.Mutex
	evalCount := 0
	models := map[int]*ir.Model{}
	verdicts := map[int]Verdict{}

	boCfg := cfg.BO
	boCfg.Seed = cfg.Seed + int64(kind)*211

	objective := func(x []float64) ([]float64, bool, map[string]float64, error) {
		mu.Lock()
		evalCount++
		id := evalCount
		seed := cfg.Seed + int64(kind)*2000 + int64(id)
		mu.Unlock()

		model, err := build(x, train, seed)
		if err != nil {
			return []float64{0, 0}, false, map[string]float64{"eval_id": float64(id)}, nil
		}
		if norm != nil {
			model.Mean = append([]float64{}, norm.Mean...)
			model.Std = append([]float64{}, norm.Std...)
		}
		model.FeatureNames = app.Train.FeatureNames

		verdict, err := target.Estimate(stripNormalizer(model))
		if err != nil {
			return nil, false, nil, err
		}
		metric, err := scoreModel(stripNormalizer(model), test, cfg.Metric)
		if err != nil {
			return nil, false, nil, err
		}
		resource := verdict.Metrics[key]
		mu.Lock()
		models[id] = model
		verdicts[id] = verdict
		mu.Unlock()
		metrics := map[string]float64{"eval_id": float64(id)}
		for k, v := range verdict.Metrics {
			metrics[k] = v
		}
		return []float64{metric, -resource}, verdict.Feasible, metrics, nil
	}

	multiRes, err := bo.MaximizeMulti(ctx, space, boCfg, 2, objective)
	if err != nil {
		return nil, fmt.Errorf("core: pareto search: %w", err)
	}

	out := &ParetoSearchResult{Algorithm: kind, ResourceKey: key, Evaluations: len(multiRes.History)}
	for _, ev := range multiRes.Front {
		id := int(ev.Metrics["eval_id"])
		m := models[id]
		if m == nil {
			continue
		}
		out.Front = append(out.Front, ParetoPoint{
			Model:    m,
			Metric:   ev.Values[0],
			Resource: -ev.Values[1],
			Verdict:  verdicts[id],
		})
	}
	// Sort ascending by resource (insertion sort: fronts are small).
	for i := 1; i < len(out.Front); i++ {
		for j := i; j > 0 && out.Front[j].Resource < out.Front[j-1].Resource; j-- {
			out.Front[j], out.Front[j-1] = out.Front[j-1], out.Front[j]
		}
	}
	return out, nil
}
