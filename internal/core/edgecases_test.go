package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/dataset"
	"repro/internal/ir"
)

// Edge-case hardening: degenerate datasets and adversarial configurations
// must produce graceful results (empty Best, infeasible verdicts), never
// panics or hangs.

func TestSearchSingleClassDataset(t *testing.T) {
	// All samples share one label: every classifier collapses to the
	// majority class. F1 for the absent class is 0 but nothing crashes.
	rng := rand.New(rand.NewSource(1))
	d := dataset.New(200, 3)
	for i := 0; i < 200; i++ {
		for j := 0; j < 3; j++ {
			d.X.Set(i, j, rng.NormFloat64())
		}
	}
	train, test := d.Split(rng, 0.75)
	app := App{Name: "degenerate", Train: train, Test: test, Normalize: true}
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DTree}
	res, err := Search(context.Background(), app, backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("a trivial model still deploys")
	}
	// With one observed class the macro-F1 degenerates to 1 (every
	// prediction correct); the point of the test is graceful handling.
	if res.Best.Metric != 1 {
		t.Fatalf("single-class macro-F1 should be 1, got %v", res.Best.Metric)
	}
}

func TestSearchConstantFeatures(t *testing.T) {
	// Zero-variance features: normalization must not divide by zero and
	// training must proceed.
	d := dataset.New(200, 2)
	for i := 0; i < 200; i++ {
		d.X.Set(i, 0, 5) // constant
		d.X.Set(i, 1, float64(i%2))
		d.Y[i] = i % 2
	}
	rng := rand.New(rand.NewSource(2))
	train, test := d.StratifiedSplit(rng, 0.75)
	app := App{Name: "constfeat", Train: train, Test: test, Normalize: true}
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.SVM}
	res, err := Search(context.Background(), app, backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Metric < 0.95 {
		t.Fatalf("separable-by-f1 task must be solved: %+v", res.Best)
	}
}

func TestSearchTinyDataset(t *testing.T) {
	// Fewer samples than the batch size and than MaxClusters.
	rng := rand.New(rand.NewSource(3))
	d := dataset.New(12, 2)
	for i := 0; i < 12; i++ {
		c := i % 2
		d.X.Set(i, 0, float64(c)*2+rng.NormFloat64()*0.1)
		d.X.Set(i, 1, rng.NormFloat64())
		d.Y[i] = c
	}
	train, test := d.StratifiedSplit(rng, 0.75)
	app := App{Name: "tiny", Train: train, Test: test, Normalize: true}
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.KMeans} // K may exceed sample count: those evals are infeasible, not fatal
	cfg.Metric = MetricVMeasure
	res, err := Search(context.Background(), app, backend.NewMATTarget(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At least K=1..len(train) candidates are trainable.
	if res.Best == nil {
		t.Fatal("some clustering must be feasible")
	}
}

func TestSearchImpossibleGrid(t *testing.T) {
	// A 1×1 grid fits nothing; the search must return no model, not error.
	app := smallApp(t, 30)
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DNN}
	target := backend.NewTaurusTarget()
	target.Grid.Rows, target.Grid.Cols = 1, 1
	res, err := Search(context.Background(), app, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Fatal("nothing fits a 1x1 grid")
	}
	for _, c := range res.Candidates {
		if c.Skipped == "" && len(c.BO.History) == 0 {
			t.Fatal("non-skipped candidate must still record its exploration")
		}
	}
}

func TestFuseDisjointLabelsStillValid(t *testing.T) {
	// Fusing apps whose samples emphasize different classes must yield a
	// structurally valid app.
	a, b := twoOverlappingApps(t, 31)
	for i := range a.Train.Y {
		a.Train.Y[i] = 0
	}
	fused, err := Fuse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
}
