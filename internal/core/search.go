package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bo"
	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/svm"
)

// App is one application to deploy: its datasets (from the Alchemy
// DataLoader) and identity.
type App struct {
	Name  string
	Train *dataset.Dataset
	Test  *dataset.Dataset
	// Normalize standardizes features with statistics fit on Train; the
	// affine is folded into the generated pipeline.
	Normalize bool
}

// Validate reports application errors.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("core: app with empty name")
	}
	if a.Train == nil || a.Test == nil {
		return fmt.Errorf("core: app %q missing datasets", a.Name)
	}
	if err := a.Train.Validate(); err != nil {
		return fmt.Errorf("core: app %q train set: %w", a.Name, err)
	}
	if err := a.Test.Validate(); err != nil {
		return fmt.Errorf("core: app %q test set: %w", a.Name, err)
	}
	if a.Train.Features() != a.Test.Features() {
		return fmt.Errorf("core: app %q train/test feature mismatch %d vs %d",
			a.Name, a.Train.Features(), a.Test.Features())
	}
	if a.Train.Len() == 0 || a.Test.Len() == 0 {
		return fmt.Errorf("core: app %q has empty split", a.Name)
	}
	return nil
}

// Metric identifies the optimization objective (the Alchemy
// "optimization_metric").
type Metric string

// Supported objectives.
const (
	MetricF1       Metric = "f1"       // binary F1 (class 1) or macro-F1 for multiclass
	MetricAccuracy Metric = "accuracy" //
	MetricVMeasure Metric = "vmeasure" // clustering quality (KMeans)
)

// SearchConfig bounds the design space (§3.2.2) and the optimization
// budget.
type SearchConfig struct {
	// Algorithms to consider; empty means every family the target
	// supports ("If no algorithm is listed, Homunculus selects the best
	// performing algorithm from among the entire list", §3.1.1).
	Algorithms []ir.Kind
	Metric     Metric
	BO         bo.Config
	// Design-space bounds for DNN architecture search.
	MaxHiddenLayers int
	MaxNeurons      int
	// MaxClusters bounds KMeans K (clipped further by target budgets).
	MaxClusters int
	// TrainEpochs bounds the per-candidate training budget.
	TrainEpochs int
	// Format is the data-plane fixed-point format.
	Format fixed.Format
	Seed   int64
	// OnCandidate, when non-nil, observes family-level search progress:
	// one start event and one done event (carrying the result) per
	// algorithm family, including pruned families. The core serializes
	// calls, so the callback need not be thread-safe; it is observability
	// only and cannot influence the (deterministic) search.
	OnCandidate func(CandidateEvent)
}

// CandidateEvent is one family-level progress notification.
type CandidateEvent struct {
	App       string
	Algorithm ir.Kind
	// Done is false when the family's search starts, true when it
	// finishes (Result set) or is pruned upfront (Result.Skipped set).
	Done   bool
	Result *CandidateResult
}

// DefaultSearchConfig mirrors the evaluation's setup at laptop scale.
func DefaultSearchConfig() SearchConfig {
	cfg := SearchConfig{
		Metric:          MetricF1,
		BO:              bo.DefaultConfig(),
		MaxHiddenLayers: 4,
		MaxNeurons:      24,
		MaxClusters:     8,
		TrainEpochs:     14,
		Format:          fixed.Q8_8,
		Seed:            1,
	}
	cfg.BO.InitSamples = 5
	cfg.BO.Iterations = 15
	return cfg
}

// Validate reports configuration errors.
func (c SearchConfig) Validate() error {
	switch c.Metric {
	case MetricF1, MetricAccuracy, MetricVMeasure:
	default:
		return fmt.Errorf("core: unknown metric %q (accepted: %q, %q, %q)",
			c.Metric, MetricF1, MetricAccuracy, MetricVMeasure)
	}
	if c.MaxHiddenLayers < 1 || c.MaxNeurons < 2 {
		return fmt.Errorf("core: DNN bounds too small (%d layers, %d neurons)", c.MaxHiddenLayers, c.MaxNeurons)
	}
	if c.MaxClusters < 1 {
		return fmt.Errorf("core: MaxClusters must be >= 1, got %d", c.MaxClusters)
	}
	if c.TrainEpochs < 1 {
		return fmt.Errorf("core: TrainEpochs must be >= 1, got %d", c.TrainEpochs)
	}
	return c.BO.Validate()
}

// CandidateResult is the outcome of one algorithm family's search run.
type CandidateResult struct {
	Algorithm ir.Kind
	Model     *ir.Model // best feasible model (nil if none)
	Metric    float64
	Verdict   Verdict
	BO        bo.Result
	// Skipped is set when the family was pruned before search (§3.2.1).
	Skipped string
}

// SearchResult is the final model selection. Code generation is a
// separate pipeline stage: call target.Generate(res.Best.Model) on the
// selection (what homunculus.Generate's codegen stage does).
type SearchResult struct {
	App        string
	TargetName string
	Best       *CandidateResult
	Candidates []CandidateResult
}

// Search runs the full optimization core for one application on one
// target: candidate selection, parallel per-algorithm BO runs, and final
// model selection (Figure 2's middle box). Cancellation is cooperative:
// when ctx is done, in-flight family searches abort at their next BO
// evaluation and Search returns an error wrapping ctx.Err(); an undone
// ctx leaves fixed-seed results byte-identical at any pool size.
func Search(ctx context.Context, app App, target Target, cfg SearchConfig) (*SearchResult, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	algorithms := cfg.Algorithms
	if len(algorithms) == 0 {
		algorithms = []ir.Kind{ir.DNN, ir.SVM, ir.KMeans, ir.DTree}
	}

	// Serialize OnCandidate notifications across concurrently finishing
	// families.
	var notifyMu sync.Mutex
	notify := func(ev CandidateEvent) {
		if cfg.OnCandidate == nil {
			return
		}
		notifyMu.Lock()
		defer notifyMu.Unlock()
		cfg.OnCandidate(ev)
	}

	// Phase 1: candidate selection — prune unsupported families (§3.2.1).
	type job struct {
		kind    ir.Kind
		skipped string
	}
	jobs := make([]job, 0, len(algorithms))
	for _, k := range algorithms {
		j := job{kind: k}
		if !target.Supports(k) {
			j.skipped = fmt.Sprintf("target %s cannot execute %s at line rate", target.Name(), k)
		}
		if cfg.Metric == MetricVMeasure && k != ir.KMeans {
			j.skipped = "vmeasure objective applies to clustering algorithms"
		}
		jobs = append(jobs, j)
	}

	// Phase 2: parallel candidate runs (§3.2.1 "the core initiates
	// multiple parallel runs"). Families run as tasks on the shared
	// worker pool rather than free goroutines: while family tasks hold
	// the pool's tokens, the tensor/forest kernels they call degrade to
	// their serial paths, so family-level and kernel-level parallelism
	// never oversubscribe the machine. Each family writes only its own
	// slot and is internally deterministic, so results are independent of
	// how the tasks get scheduled.
	results := make([]CandidateResult, len(jobs))
	errs := make([]error, len(jobs))
	tasks := make([]func(), 0, len(jobs))
	for i, j := range jobs {
		results[i].Algorithm = j.kind
		if j.skipped != "" {
			results[i].Skipped = j.skipped
			notify(CandidateEvent{App: app.Name, Algorithm: j.kind})
			notify(CandidateEvent{App: app.Name, Algorithm: j.kind, Done: true, Result: &results[i]})
			continue
		}
		i, kind := i, j.kind
		tasks = append(tasks, func() {
			notify(CandidateEvent{App: app.Name, Algorithm: kind})
			res, err := searchFamily(ctx, app, target, cfg, kind)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res
			notify(CandidateEvent{App: app.Name, Algorithm: kind, Done: true, Result: &results[i]})
		})
	}
	runErr := parallel.RunCtx(ctx, tasks...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if runErr != nil {
		// Cancelled between families: no family reported the ctx error
		// itself, but some never ran.
		return nil, fmt.Errorf("core: search cancelled: %w", runErr)
	}

	// Phase 3: final model selection.
	out := &SearchResult{App: app.Name, TargetName: target.Name(), Candidates: results}
	for i := range results {
		r := &results[i]
		if r.Model == nil {
			continue
		}
		if out.Best == nil || r.Metric > out.Best.Metric {
			out.Best = r
		}
	}
	return out, nil
}

// searchFamily runs BO over one algorithm family's design space.
func searchFamily(ctx context.Context, app App, target Target, cfg SearchConfig, kind ir.Kind) (CandidateResult, error) {
	space, build := familySpace(app, cfg, kind)
	res := CandidateResult{Algorithm: kind}

	// Normalization is fit once on the training set.
	var norm *dataset.Normalizer
	train, test := app.Train, app.Test
	if app.Normalize {
		norm = dataset.FitNormalizer(app.Train)
		train = app.Train.Clone()
		test = app.Test.Clone()
		norm.Apply(train)
		norm.Apply(test)
	}

	evalCount := 0
	var mu sync.Mutex // protects evalCount and bests
	var bestModel *ir.Model
	var bestVerdict Verdict
	bestMetric := -1.0

	boCfg := cfg.BO
	boCfg.Seed = cfg.Seed + int64(kind)*101

	objective := func(x []float64) (float64, bool, map[string]float64, error) {
		mu.Lock()
		evalCount++
		seed := cfg.Seed + int64(kind)*1000 + int64(evalCount)
		mu.Unlock()

		model, err := build(x, train, seed)
		if err != nil {
			// Training failures are infeasible points, not fatal errors.
			return 0, false, map[string]float64{"train_error": 1}, nil
		}
		if norm != nil {
			// The pipeline receives raw features; fold the normalizer in.
			model.Mean = append([]float64{}, norm.Mean...)
			model.Std = append([]float64{}, norm.Std...)
		}
		model.FeatureNames = app.Train.FeatureNames

		verdict, err := target.Estimate(stripNormalizer(model))
		if err != nil {
			return 0, false, nil, err
		}
		metric, err := scoreModel(stripNormalizer(model), test, cfg.Metric)
		if err != nil {
			return 0, false, nil, err
		}
		if verdict.Feasible {
			mu.Lock()
			if metric > bestMetric {
				bestMetric = metric
				bestModel = model
				bestVerdict = verdict
			}
			mu.Unlock()
		}
		return metric, verdict.Feasible, verdict.Metrics, nil
	}

	boRes, err := bo.Maximize(ctx, space, boCfg, objective)
	if err != nil {
		return res, fmt.Errorf("core: %s search: %w", kind, err)
	}
	res.BO = boRes
	if bestModel != nil {
		res.Model = bestModel
		res.Metric = bestMetric
		res.Verdict = bestVerdict
	}
	return res, nil
}

// stripNormalizer returns a shallow copy without the normalization affine
// so that scoring/estimation operate on the already-normalized datasets.
func stripNormalizer(m *ir.Model) *ir.Model {
	c := *m
	c.Mean, c.Std = nil, nil
	return &c
}

// DesignSpace returns the BO design space the core would search for an
// algorithm family — the artifact §4 describes being "formed into a JSON
// configuration file describing searchable parameters" (serialize it with
// bo.Space.WriteJSON).
func DesignSpace(app App, cfg SearchConfig, kind ir.Kind) bo.Space {
	space, _ := familySpace(app, cfg, kind)
	return space
}

// builder turns a BO design point into a trained model IR.
type builder func(x []float64, train *dataset.Dataset, seed int64) (*ir.Model, error)

// familySpace constructs the design space (§3.2.2) and trainer for one
// algorithm family.
func familySpace(app App, cfg SearchConfig, kind ir.Kind) (bo.Space, builder) {
	classes := app.Train.Classes()
	if classes < 2 {
		classes = 2
	}
	switch kind {
	case ir.DNN:
		params := []bo.Param{
			{Name: "layers", Kind: bo.Integer, Min: 1, Max: float64(cfg.MaxHiddenLayers)},
			{Name: "lr", Kind: bo.Ordinal, Values: []float64{0.001, 0.003, 0.01, 0.03}},
			{Name: "batch", Kind: bo.Ordinal, Values: []float64{16, 32, 64}},
			{Name: "activation", Kind: bo.Categorical, Values: []float64{0, 1, 2}},
			{Name: "dropout", Kind: bo.Ordinal, Values: []float64{0, 0.1, 0.2}},
		}
		for i := 0; i < cfg.MaxHiddenLayers; i++ {
			params = append(params, bo.Param{
				Name: fmt.Sprintf("width%d", i), Kind: bo.Integer, Min: 2, Max: float64(cfg.MaxNeurons),
			})
		}
		space := bo.Space{Params: params}
		return space, func(x []float64, train *dataset.Dataset, seed int64) (*ir.Model, error) {
			layers := int(x[0])
			hidden := make([]int, layers)
			for i := 0; i < layers; i++ {
				hidden[i] = int(x[5+i])
			}
			nc := nn.Config{
				Inputs:     train.Features(),
				Hidden:     hidden,
				Outputs:    classes,
				Activation: nn.Activation(int(x[3])),
				Optimizer:  nn.Adam,
				LearnRate:  x[1],
				BatchSize:  int(x[2]),
				Epochs:     cfg.TrainEpochs,
				Dropout:    x[4],
				Seed:       seed,
			}
			net, err := nn.New(nc)
			if err != nil {
				return nil, err
			}
			if _, err := net.Train(train); err != nil {
				return nil, err
			}
			return ir.FromNN(app.Name, net, cfg.Format), nil
		}
	case ir.SVM:
		space := bo.Space{Params: []bo.Param{
			{Name: "lr", Kind: bo.Ordinal, Values: []float64{0.01, 0.03, 0.1, 0.3}},
			{Name: "lambda", Kind: bo.Ordinal, Values: []float64{0.0001, 0.001, 0.01}},
			{Name: "epochs", Kind: bo.Integer, Min: 3, Max: float64(cfg.TrainEpochs)},
		}}
		return space, func(x []float64, train *dataset.Dataset, seed int64) (*ir.Model, error) {
			sc := svm.Config{
				Features:  train.Features(),
				Classes:   classes,
				LearnRate: x[0],
				Lambda:    x[1],
				Epochs:    int(x[2]),
				Seed:      seed,
			}
			m, err := svm.Train(sc, train)
			if err != nil {
				return nil, err
			}
			return ir.FromSVM(app.Name, m, cfg.Format), nil
		}
	case ir.KMeans:
		maxK := cfg.MaxClusters
		space := bo.Space{Params: []bo.Param{
			{Name: "k", Kind: bo.Integer, Min: 1, Max: float64(maxK)},
			{Name: "iters", Kind: bo.Ordinal, Values: []float64{10, 25, 50}},
		}}
		return space, func(x []float64, train *dataset.Dataset, seed int64) (*ir.Model, error) {
			kc := kmeans.Config{K: int(x[0]), MaxIters: int(x[1]), Seed: seed}
			m, err := kmeans.Train(kc, train)
			if err != nil {
				return nil, err
			}
			return ir.FromKMeans(app.Name, m, cfg.Format), nil
		}
	default: // ir.DTree
		space := bo.Space{Params: []bo.Param{
			{Name: "depth", Kind: bo.Integer, Min: 1, Max: 8},
			{Name: "minleaf", Kind: bo.Integer, Min: 1, Max: 16},
		}}
		return space, func(x []float64, train *dataset.Dataset, seed int64) (*ir.Model, error) {
			dc := dtree.Config{MaxDepth: int(x[0]), MinLeaf: int(x[1]), Classes: classes}
			m, err := dtree.Train(dc, train)
			if err != nil {
				return nil, err
			}
			return ir.FromDTree(app.Name, m, train.Features(), cfg.Format), nil
		}
	}
}

// scoreModel evaluates a model on the test set with bit-accurate quantized
// inference — the metric the deployed pipeline would achieve.
func scoreModel(m *ir.Model, test *dataset.Dataset, metric Metric) (float64, error) {
	pred, err := m.PredictQ(test)
	if err != nil {
		return 0, err
	}
	switch metric {
	case MetricVMeasure:
		return metrics.VMeasure(test.Y, pred), nil
	case MetricAccuracy:
		n := metrics.NumClasses(test.Y, pred)
		return metrics.FromLabels(test.Y, pred, n).Accuracy(), nil
	default: // F1
		n := metrics.NumClasses(test.Y, pred)
		conf := metrics.FromLabels(test.Y, pred, n)
		if n == 2 {
			return conf.F1(1), nil
		}
		return conf.MacroF1(), nil
	}
}

// RankFeatures orders feature indices by importance for IIsy feature
// pruning (§4: "Homunculus will try to remove less impactful features
// until the SVM model fits"). Importance is the class-separation F-score
// of each feature (between-class variance over within-class variance).
func RankFeatures(d *dataset.Dataset) []int {
	nf := d.Features()
	scores := make([]float64, nf)
	byClass := map[int][]int{}
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	for j := 0; j < nf; j++ {
		var grandSum float64
		for i := 0; i < d.Len(); i++ {
			grandSum += d.X.At(i, j)
		}
		grand := grandSum / float64(d.Len())
		var between, within float64
		for _, idx := range byClass {
			var sum float64
			for _, i := range idx {
				sum += d.X.At(i, j)
			}
			mean := sum / float64(len(idx))
			between += float64(len(idx)) * (mean - grand) * (mean - grand)
			for _, i := range idx {
				dv := d.X.At(i, j) - mean
				within += dv * dv
			}
		}
		if within < 1e-12 {
			within = 1e-12
		}
		scores[j] = between / within
	}
	order := make([]int, nf)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	return order
}
