package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/dataset"
	"repro/internal/ir"
)

// smallApp builds a quick binary task: two Gaussian blobs with a little
// overlap, named features.
func smallApp(t *testing.T, seed int64) App {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(600, 3)
	d.FeatureNames = []string{"fa", "fb", "fc"}
	for i := 0; i < 600; i++ {
		c := i % 2
		d.X.Set(i, 0, float64(c)*1.5+rng.NormFloat64()*0.6)
		d.X.Set(i, 1, float64(c)*-1.2+rng.NormFloat64()*0.6)
		d.X.Set(i, 2, rng.NormFloat64())
		d.Y[i] = c
	}
	train, test := d.StratifiedSplit(rng, 0.75)
	return App{Name: "small", Train: train, Test: test, Normalize: true}
}

// fastSearchConfig keeps test runtime low.
func fastSearchConfig() SearchConfig {
	cfg := DefaultSearchConfig()
	cfg.BO.InitSamples = 3
	cfg.BO.Iterations = 4
	cfg.BO.Candidates = 100
	cfg.MaxHiddenLayers = 2
	cfg.MaxNeurons = 12
	cfg.TrainEpochs = 6
	return cfg
}

func TestAppValidate(t *testing.T) {
	app := smallApp(t, 1)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := app
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name must fail")
	}
	bad2 := app
	bad2.Test = nil
	if bad2.Validate() == nil {
		t.Fatal("missing test set must fail")
	}
	bad3 := app
	bad3.Test = dataset.New(5, 9)
	if bad3.Validate() == nil {
		t.Fatal("feature mismatch must fail")
	}
}

func TestSearchConfigValidate(t *testing.T) {
	cfg := DefaultSearchConfig()
	cfg.Metric = "nope"
	if cfg.Validate() == nil {
		t.Fatal("unknown metric must fail")
	}
	cfg = DefaultSearchConfig()
	cfg.MaxHiddenLayers = 0
	if cfg.Validate() == nil {
		t.Fatal("zero layers must fail")
	}
	cfg = DefaultSearchConfig()
	cfg.TrainEpochs = 0
	if cfg.Validate() == nil {
		t.Fatal("zero epochs must fail")
	}
	cfg = DefaultSearchConfig()
	cfg.MaxClusters = 0
	if cfg.Validate() == nil {
		t.Fatal("zero clusters must fail")
	}
}

func TestSearchDNNOnTaurus(t *testing.T) {
	app := smallApp(t, 2)
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DNN}
	res, err := Search(context.Background(), app, backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("search must find a feasible DNN")
	}
	if res.Best.Metric < 0.8 {
		t.Fatalf("best F1 %v too low for separable blobs", res.Best.Metric)
	}
	if res.Best.Model.Kind != ir.DNN {
		t.Fatal("wrong algorithm")
	}
	if !res.Best.Verdict.Feasible {
		t.Fatal("best must be feasible")
	}
	if res.Best.Verdict.Metrics["cus"] <= 0 {
		t.Fatal("verdict must carry CU count")
	}
	code, err := backend.NewTaurusTarget().Generate(res.Best.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "@spatial") {
		t.Fatal("Taurus code must be Spatial")
	}
	// history recorded for regret plots
	if len(res.Best.BO.History) != cfg.BO.InitSamples+cfg.BO.Iterations {
		t.Fatalf("BO history %d", len(res.Best.BO.History))
	}
}

func TestSearchSelectsAcrossFamilies(t *testing.T) {
	app := smallApp(t, 3)
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.SVM, ir.DTree}
	res, err := Search(context.Background(), app, backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("must find a model")
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %d", len(res.Candidates))
	}
	// best must be max metric among candidates with models
	for _, c := range res.Candidates {
		if c.Model != nil && c.Metric > res.Best.Metric {
			t.Fatal("best selection wrong")
		}
	}
}

func TestSearchPrunesDNNOnMAT(t *testing.T) {
	app := smallApp(t, 4)
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DNN, ir.DTree}
	res, err := Search(context.Background(), app, backend.NewMATTarget(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dnnCand *CandidateResult
	for i := range res.Candidates {
		if res.Candidates[i].Algorithm == ir.DNN {
			dnnCand = &res.Candidates[i]
		}
	}
	if dnnCand == nil || dnnCand.Skipped == "" {
		t.Fatal("DNN must be pruned on MAT target (§3.2.1)")
	}
	if res.Best == nil || res.Best.Algorithm != ir.DTree {
		t.Fatal("DTree must win on MAT target")
	}
	code, err := backend.NewMATTarget(8).Generate(res.Best.Model)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "v1model") {
		t.Fatal("MAT code must be P4")
	}
}

func TestSearchKMeansVMeasure(t *testing.T) {
	app := smallApp(t, 5)
	cfg := fastSearchConfig()
	cfg.Metric = MetricVMeasure
	cfg.Algorithms = []ir.Kind{ir.KMeans, ir.SVM}
	res, err := Search(context.Background(), app, backend.NewMATTarget(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// SVM must be pruned for a clustering objective.
	for _, c := range res.Candidates {
		if c.Algorithm == ir.SVM && c.Skipped == "" {
			t.Fatal("SVM must be pruned for vmeasure")
		}
	}
	if res.Best == nil || res.Best.Algorithm != ir.KMeans {
		t.Fatal("KMeans must win")
	}
	if res.Best.Metric <= 0 {
		t.Fatal("vmeasure must be positive")
	}
	// Table budget respected.
	if res.Best.Verdict.Metrics["tables"] > 6 {
		t.Fatal("table budget violated")
	}
}

func TestSearchRespectsTightResourceBudget(t *testing.T) {
	app := smallApp(t, 6)
	cfg := fastSearchConfig()
	cfg.Metric = MetricVMeasure
	cfg.Algorithms = []ir.Kind{ir.KMeans}
	cfg.MaxClusters = 8
	loose, err := Search(context.Background(), app, backend.NewMATTarget(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Search(context.Background(), app, backend.NewMATTarget(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Best == nil || loose.Best == nil {
		t.Fatal("both budgets must produce models")
	}
	if tight.Best.Verdict.Metrics["tables"] > 2 {
		t.Fatalf("tight budget violated: %v tables", tight.Best.Verdict.Metrics["tables"])
	}
	if loose.Best.Metric < tight.Best.Metric-1e-9 {
		t.Fatalf("more tables must not hurt quality: %v vs %v", loose.Best.Metric, tight.Best.Metric)
	}
}

func TestSearchDeterministic(t *testing.T) {
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DTree}
	a1, err := Search(context.Background(), smallApp(t, 7), backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Search(context.Background(), smallApp(t, 7), backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Best.Metric != a2.Best.Metric {
		t.Fatal("same seed must reproduce the search")
	}
}

func TestSearchErrors(t *testing.T) {
	app := smallApp(t, 8)
	if _, err := Search(context.Background(), app, nil, fastSearchConfig()); err == nil {
		t.Fatal("nil target must error")
	}
	bad := app
	bad.Name = ""
	if _, err := Search(context.Background(), bad, backend.NewTaurusTarget(), fastSearchConfig()); err == nil {
		t.Fatal("invalid app must error")
	}
	cfg := fastSearchConfig()
	cfg.Metric = "zzz"
	if _, err := Search(context.Background(), app, backend.NewTaurusTarget(), cfg); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestRankFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := dataset.New(400, 3)
	for i := 0; i < 400; i++ {
		c := i % 2
		d.X.Set(i, 0, rng.NormFloat64())              // noise
		d.X.Set(i, 1, float64(c)*3+rng.NormFloat64()) // strong signal
		d.X.Set(i, 2, float64(c)+rng.NormFloat64())   // weak signal
		d.Y[i] = c
	}
	order := RankFeatures(d)
	if order[0] != 1 {
		t.Fatalf("strongest feature should rank first: %v", order)
	}
	if order[2] != 0 {
		t.Fatalf("noise should rank last: %v", order)
	}
}

func TestScoreModelMetrics(t *testing.T) {
	app := smallApp(t, 10)
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DTree}
	cfg.Metric = MetricAccuracy
	res, err := Search(context.Background(), app, backend.NewTaurusTarget(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Metric < 0.8 {
		t.Fatal("accuracy objective must work")
	}
}
