package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/tensor"
)

// Composition execution: besides resource estimation, a composed pipeline
// can be *run* — the semantics the IOMap construct wires up (§3.1.1:
// "IOMap describes how different components connect with each other...
// connects the inputs and outputs of these components and to the outside
// world").
//
// Execution rules:
//   - A leaf scores the incoming vector with quantized inference.
//   - Sequential (>): stages run in order. Each edge may carry an IOMapper
//     that transforms (packet features, upstream scores) into the next
//     stage's input; without a mapper the next stage re-reads the packet
//     features (the common cascade pattern, where each model inspects the
//     packet and the last stage's verdict wins).
//   - Parallel (|): children all read the same input; their score vectors
//     concatenate (downstream mappers or the final arg-max combine them).

// IOMapper transforms the data flowing across one composition edge.
// packet is the original feature vector entering the composition; scores
// is the upstream stage's output.
type IOMapper func(packet, scores []float64) []float64

// Exec is a compiled, runnable composition.
type Exec struct {
	root *Composition
	// mappers[node] is the mapper applied after each sequential child
	// (edge i connects child i's output to child i+1's input).
	mappers map[*Composition][]IOMapper
}

// NewExec compiles a composition for execution. mappers may be nil.
func NewExec(c *Composition, mappers map[*Composition][]IOMapper) (*Exec, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if mappers == nil {
		mappers = map[*Composition][]IOMapper{}
	}
	for node, ms := range mappers {
		if node.Model != nil {
			return nil, fmt.Errorf("core: IOMappers attach to operators, not leaves")
		}
		if node.Op == Seq && len(ms) > len(node.Children)-1 {
			return nil, fmt.Errorf("core: %d mappers for %d sequential edges", len(ms), len(node.Children)-1)
		}
	}
	return &Exec{root: c, mappers: mappers}, nil
}

// Run pushes one packet's feature vector through the composition and
// returns the final score vector.
func (e *Exec) Run(x []float64) ([]float64, error) {
	return e.run(e.root, x, x)
}

// Classify runs the composition and returns the arg-max class of the
// final stage.
func (e *Exec) Classify(x []float64) (int, error) {
	scores, err := e.Run(x)
	if err != nil {
		return 0, err
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("core: composition produced no scores")
	}
	return tensor.ArgMax(scores), nil
}

func (e *Exec) run(c *Composition, packet, input []float64) ([]float64, error) {
	if c.Model != nil {
		return scoreLeaf(c.Model, input)
	}
	switch c.Op {
	case Seq:
		mappers := e.mappers[c]
		cur := input
		var scores []float64
		for i, ch := range c.Children {
			var err error
			scores, err = e.run(ch, packet, cur)
			if err != nil {
				return nil, err
			}
			if i == len(c.Children)-1 {
				break
			}
			if i < len(mappers) && mappers[i] != nil {
				cur = mappers[i](packet, scores)
			} else {
				cur = packet // default: next stage re-reads the packet
			}
		}
		return scores, nil
	default: // Par
		var out []float64
		for _, ch := range c.Children {
			s, err := e.run(ch, packet, input)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	}
}

func scoreLeaf(m *ir.Model, input []float64) ([]float64, error) {
	if len(input) != m.Inputs {
		return nil, fmt.Errorf("core: stage %q expects %d inputs, got %d (add an IOMap on the edge)",
			m.Name, m.Inputs, len(input))
	}
	return m.ScoresQ(input)
}
