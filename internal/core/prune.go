package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ir"
	"repro/internal/svm"
)

// PruneResult reports the outcome of the feature-pruning loop.
type PruneResult struct {
	// Kept lists the surviving feature indices of the original dataset,
	// in importance order.
	Kept []int
	// Dropped lists the pruned features, least important first.
	Dropped []int
	// Model is the final (fitting) model, nil if even one feature does
	// not fit.
	Model *ir.Model
	// Metric is the model's quantized test score.
	Metric float64
	// Verdict is the backend report for the final model.
	Verdict Verdict
}

// PruneSVMToFit implements the §4 loop: "IIsy shows that an implementation
// of an SVM may use a MAT per feature. If the number of MATs is
// insufficient, Homunculus will try to remove less impactful features
// until the SVM model fits." Features are ranked by class-separation
// F-score on the training set (RankFeatures); the least impactful feature
// is dropped and the SVM retrained until the target accepts the mapping or
// no features remain.
func PruneSVMToFit(app App, target Target, cfg SearchConfig, svmCfg svm.Config) (*PruneResult, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("core: nil target")
	}
	if !target.Supports(ir.SVM) {
		return nil, fmt.Errorf("core: target %s does not support SVMs", target.Name())
	}

	var norm *dataset.Normalizer
	train, test := app.Train, app.Test
	if app.Normalize {
		norm = dataset.FitNormalizer(app.Train)
		train = app.Train.Clone()
		test = app.Test.Clone()
		norm.Apply(train)
		norm.Apply(test)
	}

	ranked := RankFeatures(train) // most important first
	res := &PruneResult{}
	for keep := len(ranked); keep >= 1; keep-- {
		cols := append([]int{}, ranked[:keep]...)
		subTrain, err := train.SelectFeatures(cols)
		if err != nil {
			return nil, err
		}
		subTest, err := test.SelectFeatures(cols)
		if err != nil {
			return nil, err
		}
		sc := svmCfg
		sc.Features = keep
		model, err := svm.Train(sc, subTrain)
		if err != nil {
			return nil, fmt.Errorf("core: pruning retrain with %d features: %w", keep, err)
		}
		m := ir.FromSVM(app.Name, model, cfg.Format)
		m.FeatureNames = subTrain.FeatureNames
		verdict, err := target.Estimate(m)
		if err != nil {
			return nil, err
		}
		if !verdict.Feasible {
			res.Dropped = append(res.Dropped, ranked[keep-1])
			continue
		}
		metric, err := scoreModel(m, subTest, cfg.Metric)
		if err != nil {
			return nil, err
		}
		res.Kept = cols
		res.Model = m
		res.Metric = metric
		res.Verdict = verdict
		return res, nil
	}
	return res, nil // Model == nil: nothing fits
}
