package core

import (
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/dataset"
	"repro/internal/svm"
)

// wideApp builds a task with many features of decaying usefulness.
func wideApp(t *testing.T, features int, seed int64) App {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(600, features)
	names := make([]string, features)
	for j := range names {
		names[j] = string(rune('a' + j))
	}
	d.FeatureNames = names
	for i := 0; i < 600; i++ {
		c := i % 2
		for j := 0; j < features; j++ {
			// Feature j carries signal scaled by 1/(j+1): early features
			// matter, late ones are mostly noise.
			signal := float64(c) * 2.0 / float64(j+1)
			d.X.Set(i, j, signal+rng.NormFloat64()*0.5)
		}
		d.Y[i] = c
	}
	train, test := d.StratifiedSplit(rng, 0.75)
	return App{Name: "wide", Train: train, Test: test, Normalize: true}
}

func svmCfgFor(app App) svm.Config {
	return svm.Config{
		Features:  app.Train.Features(),
		Classes:   2,
		LearnRate: 0.1,
		Lambda:    0.001,
		Epochs:    8,
		Seed:      1,
	}
}

func TestPruneFitsLooseBudget(t *testing.T) {
	app := wideApp(t, 6, 1)
	// 8 tables: 6 features + decision fits without pruning.
	res, err := PruneSVMToFit(app, backend.NewMATTarget(8), fastSearchConfig(), svmCfgFor(app))
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("must fit")
	}
	if len(res.Kept) != 6 || len(res.Dropped) != 0 {
		t.Fatalf("no pruning expected: kept %v dropped %v", res.Kept, res.Dropped)
	}
	if res.Metric < 0.8 {
		t.Fatalf("metric %v too low", res.Metric)
	}
}

func TestPruneDropsLeastImpactfulFirst(t *testing.T) {
	app := wideApp(t, 6, 2)
	// 4 tables: only 3 features + decision fit; must drop 3.
	res, err := PruneSVMToFit(app, backend.NewMATTarget(4), fastSearchConfig(), svmCfgFor(app))
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("pruned model must fit")
	}
	if len(res.Kept) != 3 {
		t.Fatalf("kept %d features, want 3", len(res.Kept))
	}
	if res.Verdict.Metrics["tables"] > 4 {
		t.Fatalf("budget violated: %v tables", res.Verdict.Metrics["tables"])
	}
	// Feature 0 carries the strongest signal and must survive.
	found := false
	for _, k := range res.Kept {
		if k == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("strongest feature pruned: kept %v", res.Kept)
	}
	// Dropped features must be the weak tail.
	for _, dropped := range res.Dropped {
		if dropped == 0 || dropped == 1 {
			t.Fatalf("strong feature %d dropped before weak ones", dropped)
		}
	}
	// The pruned model should still classify usefully.
	if res.Metric < 0.7 {
		t.Fatalf("pruned metric %v too low", res.Metric)
	}
}

func TestPruneImpossibleBudget(t *testing.T) {
	app := wideApp(t, 4, 3)
	// 1 table cannot host even a single-feature SVM (needs feature +
	// decision tables).
	res, err := PruneSVMToFit(app, backend.NewMATTarget(1), fastSearchConfig(), svmCfgFor(app))
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != nil {
		t.Fatal("nothing should fit one table")
	}
	if len(res.Dropped) != 4 {
		t.Fatalf("all features should be recorded dropped: %v", res.Dropped)
	}
}

func TestPruneErrors(t *testing.T) {
	app := wideApp(t, 4, 4)
	if _, err := PruneSVMToFit(app, nil, fastSearchConfig(), svmCfgFor(app)); err == nil {
		t.Fatal("nil target must error")
	}
	bad := app
	bad.Name = ""
	if _, err := PruneSVMToFit(bad, backend.NewMATTarget(8), fastSearchConfig(), svmCfgFor(app)); err == nil {
		t.Fatal("invalid app must error")
	}
}
