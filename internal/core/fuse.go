package core

import (
	"fmt"

	"repro/internal/dataset"
)

// FusionOverlapThreshold is the minimum feature-name Jaccard similarity at
// which two applications become fusion candidates (§3.2.5: "Homunculus
// will assess the feature sets for similarities and if there are a certain
// number of features in common, it will attempt to build a single model to
// serve both datasets").
const FusionOverlapThreshold = 0.5

// FusionCandidate reports whether two apps' datasets overlap enough to
// attempt fusion, and the overlap score.
func FusionCandidate(a, b App) (bool, float64) {
	overlap := dataset.FeatureOverlap(a.Train, b.Train)
	return overlap >= FusionOverlapThreshold, overlap
}

// Fuse merges two applications into a single one over the union of their
// feature sets: samples from each app are projected into the union space
// (absent features zero-filled), and the label spaces must agree (both
// apps predict the same classes — the Table-4 experiment splits one AD
// dataset in two, so labels align by construction).
func Fuse(a, b App) (App, error) {
	if err := a.Validate(); err != nil {
		return App{}, err
	}
	if err := b.Validate(); err != nil {
		return App{}, err
	}
	if a.Train.FeatureNames == nil || b.Train.FeatureNames == nil {
		return App{}, fmt.Errorf("core: fusion requires named features")
	}
	union := unionFeatures(a.Train.FeatureNames, b.Train.FeatureNames)
	trainA, err := project(a.Train, union)
	if err != nil {
		return App{}, err
	}
	trainB, err := project(b.Train, union)
	if err != nil {
		return App{}, err
	}
	testA, err := project(a.Test, union)
	if err != nil {
		return App{}, err
	}
	testB, err := project(b.Test, union)
	if err != nil {
		return App{}, err
	}
	train, err := dataset.Concat(trainA, trainB)
	if err != nil {
		return App{}, err
	}
	test, err := dataset.Concat(testA, testB)
	if err != nil {
		return App{}, err
	}
	return App{
		Name:      a.Name + "+" + b.Name,
		Train:     train,
		Test:      test,
		Normalize: a.Normalize || b.Normalize,
	}, nil
}

func unionFeatures(a, b []string) []string {
	seen := map[string]bool{}
	var union []string
	for _, n := range a {
		if !seen[n] {
			seen[n] = true
			union = append(union, n)
		}
	}
	for _, n := range b {
		if !seen[n] {
			seen[n] = true
			union = append(union, n)
		}
	}
	return union
}

// project maps d into the union feature space by name, zero-filling
// features d does not carry.
func project(d *dataset.Dataset, union []string) (*dataset.Dataset, error) {
	pos := map[string]int{}
	for i, n := range d.FeatureNames {
		pos[n] = i
	}
	out := dataset.New(d.Len(), len(union))
	out.FeatureNames = append([]string{}, union...)
	for i := 0; i < d.Len(); i++ {
		src := d.X.Row(i)
		dst := out.X.Row(i)
		for j, name := range union {
			if k, ok := pos[name]; ok {
				dst[j] = src[k]
			}
		}
		out.Y[i] = d.Y[i]
	}
	return out, nil
}
