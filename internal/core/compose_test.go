package core

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/fixed"
	"repro/internal/ir"
)

func adModel(t *testing.T) *ir.Model {
	t.Helper()
	dims := []int{7, 12, 6, 3, 2}
	m := &ir.Model{Kind: ir.DNN, Name: "ad", Inputs: 7, Outputs: 2, Format: fixed.Q8_8}
	for i := 0; i < len(dims)-1; i++ {
		l := ir.Layer{In: dims[i], Out: dims[i+1], Activation: "relu"}
		l.W = make([][]float64, l.Out)
		for o := range l.W {
			l.W[o] = make([]float64, l.In)
		}
		l.B = make([]float64, l.Out)
		m.Layers = append(m.Layers, l)
	}
	m.Layers[len(m.Layers)-1].Activation = "softmax"
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompositionStructure(t *testing.T) {
	m := adModel(t)
	c := Chain(Leaf(m), Parallel(Leaf(m), Leaf(m)), Leaf(m)) // m > (m|m) > m
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Models()) != 4 {
		t.Fatalf("models = %d", len(c.Models()))
	}
	if c.ChainDepth() != 3 {
		t.Fatalf("chain depth = %d, want 3", c.ChainDepth())
	}
	if !strings.Contains(c.String(), "|") || !strings.Contains(c.String(), ">") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestChainDepths(t *testing.T) {
	m := adModel(t)
	seq := Chain(Leaf(m), Leaf(m), Leaf(m), Leaf(m))
	par := Parallel(Leaf(m), Leaf(m), Leaf(m), Leaf(m))
	if seq.ChainDepth() != 4 || par.ChainDepth() != 1 {
		t.Fatalf("depths %d/%d", seq.ChainDepth(), par.ChainDepth())
	}
}

func TestCompositionValidateErrors(t *testing.T) {
	if (&Composition{}).Validate() == nil {
		t.Fatal("empty operator must fail")
	}
	var nilComp *Composition
	if nilComp.Validate() == nil {
		t.Fatal("nil composition must fail")
	}
	m := adModel(t)
	leafWithKids := &Composition{Model: m, Children: []*Composition{Leaf(m)}}
	if leafWithKids.Validate() == nil {
		t.Fatal("leaf with children must fail")
	}
}

func TestTable3ResourceInvariance(t *testing.T) {
	// The Table-3 experiment: identical CU/MU totals across strategies.
	m := adModel(t)
	target := backend.NewTaurusTarget()
	seq, err := EstimateComposition(target, Chain(Leaf(m), Leaf(m), Leaf(m), Leaf(m)))
	if err != nil {
		t.Fatal(err)
	}
	par, err := EstimateComposition(target, Parallel(Leaf(m), Leaf(m), Leaf(m), Leaf(m)))
	if err != nil {
		t.Fatal(err)
	}
	mix, err := EstimateComposition(target, Chain(Leaf(m), Parallel(Leaf(m), Leaf(m)), Leaf(m)))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Metrics["cus"] != par.Metrics["cus"] || seq.Metrics["cus"] != mix.Metrics["cus"] {
		t.Fatalf("CU totals differ: %v/%v/%v", seq.Metrics["cus"], par.Metrics["cus"], mix.Metrics["cus"])
	}
	if seq.Metrics["mus"] != par.Metrics["mus"] || seq.Metrics["mus"] != mix.Metrics["mus"] {
		t.Fatal("MU totals differ")
	}
	if !(par.Metrics["latency_ns"] < mix.Metrics["latency_ns"] &&
		mix.Metrics["latency_ns"] < seq.Metrics["latency_ns"]) {
		t.Fatal("latency ordering wrong across strategies")
	}
	if !seq.Feasible || !par.Feasible || !mix.Feasible {
		t.Fatal("4 AD copies must fit a 16x16 grid")
	}
}

func TestThroughputConsistent(t *testing.T) {
	min, err := ThroughputConsistent([]float64{1.0, 0.5, 2.0})
	if err != nil || min != 0.5 {
		t.Fatalf("min = %v err = %v", min, err)
	}
	if _, err := ThroughputConsistent(nil); err == nil {
		t.Fatal("empty rates must error")
	}
	if _, err := ThroughputConsistent([]float64{1, 0}); err == nil {
		t.Fatal("zero rate must error")
	}
}

func TestEstimateCompositionInvalid(t *testing.T) {
	target := backend.NewTaurusTarget()
	if _, err := EstimateComposition(target, &Composition{}); err == nil {
		t.Fatal("invalid composition must error")
	}
}
