// Package core implements the Homunculus optimization core (§3.2): it
// takes an application (datasets + objective) and a backend target,
// explores the design space of candidate ML algorithms with constrained
// Bayesian optimization, trains candidates, tests feasibility against the
// target's resources and the network performance constraints, and returns
// the best compliant model together with generated backend code. It also
// implements multi-model composition (§3.1.1 scheduling operators) and
// model fusion (§3.2.5).
package core

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/mat"
	"repro/internal/p4gen"
	"repro/internal/spatialgen"
	"repro/internal/taurus"
)

// Verdict is the backend-neutral feasibility report the optimization core
// consumes for a candidate model (§3.3 "the testing infrastructure is
// responsible for computing throughput and latency as well as identifying
// whether the application can be mapped within the available resources").
type Verdict struct {
	Feasible bool
	Reason   string
	// Metrics carries backend-specific measurements (CUs, MUs, tables,
	// LUT%, latency_ns, throughput_gpkts, ...).
	Metrics map[string]float64
}

// Target is a deployable backend: it estimates resources/performance for
// a model and generates its data-plane code. Implementations: Taurus
// (Spatial), MAT switches (P4 via IIsy), and the FPGA testbed.
type Target interface {
	// Name identifies the backend in reports.
	Name() string
	// Estimate maps the model and returns the feasibility verdict.
	Estimate(m *ir.Model) (Verdict, error)
	// Generate emits the platform code for a (feasible) model.
	Generate(m *ir.Model) (string, error)
	// Supports reports whether the backend can execute the algorithm
	// family at all — the §3.2.1 pre-pruning ("the core tries to rule out
	// as many algorithms as possible based on the data-plane platform").
	Supports(kind ir.Kind) bool
}

// TaurusTarget deploys onto the Taurus CGRA fabric.
type TaurusTarget struct {
	Grid        taurus.Grid
	Constraints taurus.Constraints
}

// NewTaurusTarget returns the default 16×16 grid at 1 GPkt/s / 500 ns.
func NewTaurusTarget() *TaurusTarget {
	return &TaurusTarget{Grid: taurus.DefaultGrid(), Constraints: taurus.DefaultConstraints()}
}

// Name implements Target.
func (t *TaurusTarget) Name() string { return "taurus" }

// Supports implements Target: the MapReduce fabric executes all families.
func (t *TaurusTarget) Supports(kind ir.Kind) bool { return true }

// Estimate implements Target.
func (t *TaurusTarget) Estimate(m *ir.Model) (Verdict, error) {
	r, err := taurus.Estimate(t.Grid, t.Constraints, m)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Feasible: r.Feasible(),
		Reason:   r.Reason,
		Metrics: map[string]float64{
			"cus":              float64(r.CUs),
			"mus":              float64(r.MUs),
			"stages":           float64(r.Stages),
			"latency_ns":       r.LatencyNS,
			"throughput_gpkts": r.ThroughputGPkts,
		},
	}, nil
}

// Generate implements Target (Spatial source).
func (t *TaurusTarget) Generate(m *ir.Model) (string, error) {
	p, err := spatialgen.Generate(m)
	if err != nil {
		return "", fmt.Errorf("core: taurus codegen: %w", err)
	}
	return p.Source, nil
}

// MATTarget deploys onto a match-action pipeline through IIsy.
type MATTarget struct {
	Pipeline mat.Pipeline
}

// NewMATTarget returns a MAT target with the given table budget (the
// Figure-7 resource sweep) atop the default pipeline geometry.
func NewMATTarget(tables int) *MATTarget {
	p := mat.DefaultPipeline()
	if tables > 0 {
		p.Tables = tables
	}
	return &MATTarget{Pipeline: p}
}

// Name implements Target.
func (t *MATTarget) Name() string { return "tofino-mat" }

// Supports implements Target: DNNs are pruned upfront — general matrix
// multiplies do not map onto MATs at line rate (§3.2.1's example of
// ruling out DNNs on table-limited switches).
func (t *MATTarget) Supports(kind ir.Kind) bool { return kind != ir.DNN }

// Estimate implements Target.
func (t *MATTarget) Estimate(m *ir.Model) (Verdict, error) {
	r, err := mat.Estimate(t.Pipeline, m)
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{
		Feasible: r.Feasible(),
		Reason:   r.Reason,
		Metrics: map[string]float64{
			"tables":           float64(r.TablesUsed),
			"entries":          float64(r.EntriesUsed),
			"latency_ns":       r.LatencyNS,
			"throughput_gpkts": r.ThroughputGPkts,
		},
	}, nil
}

// Generate implements Target (P4 source).
func (t *MATTarget) Generate(m *ir.Model) (string, error) {
	p, err := p4gen.Generate(m)
	if err != nil {
		return "", fmt.Errorf("core: MAT codegen: %w", err)
	}
	return p.Source, nil
}

// FPGATarget deploys onto the bump-in-the-wire FPGA testbed (P4-SDNet /
// Spatial-to-Verilog flow). Resource feasibility uses utilization caps.
type FPGATarget struct {
	Shell fpga.Shell
	// MaxLUTPct/MaxPowerW bound the deployment (100% / unbounded default).
	MaxLUTPct float64
	MaxPowerW float64
}

// NewFPGATarget returns the Alveo U250 testbed model.
func NewFPGATarget() *FPGATarget {
	return &FPGATarget{Shell: fpga.U250Shell(), MaxLUTPct: 100, MaxPowerW: 1e9}
}

// Name implements Target.
func (t *FPGATarget) Name() string { return "fpga" }

// Supports implements Target.
func (t *FPGATarget) Supports(kind ir.Kind) bool { return true }

// Estimate implements Target.
func (t *FPGATarget) Estimate(m *ir.Model) (Verdict, error) {
	r, err := fpga.Estimate(t.Shell, m)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{
		Metrics: map[string]float64{
			"lut_pct":  r.LUTPct,
			"ff_pct":   r.FFPct,
			"bram_pct": r.BRAMPct,
			"power_w":  r.PowerW,
		},
	}
	v.Feasible = r.LUTPct <= t.MaxLUTPct && r.PowerW <= t.MaxPowerW
	if !v.Feasible {
		v.Reason = fmt.Sprintf("utilization %.2f%% LUT / %.2f W exceeds caps", r.LUTPct, r.PowerW)
	}
	return v, nil
}

// Generate implements Target: the FPGA flow compiles Spatial to Verilog,
// so the emitted source is Spatial (§5.2 "compiled to Verilog using the
// Spatial compiler").
func (t *FPGATarget) Generate(m *ir.Model) (string, error) {
	p, err := spatialgen.Generate(m)
	if err != nil {
		return "", fmt.Errorf("core: fpga codegen: %w", err)
	}
	return p.Source, nil
}
