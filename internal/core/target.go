// Package core implements the Homunculus optimization core (§3.2): it
// takes an application (datasets + objective) and a backend target,
// explores the design space of candidate ML algorithms with constrained
// Bayesian optimization, trains candidates, tests feasibility against the
// target's resources and the network performance constraints, and returns
// the best compliant model. It also implements multi-model composition
// (§3.1.1 scheduling operators) and model fusion (§3.2.5).
//
// The core is backend-agnostic by construction: it sees platforms only
// through the internal/backend interfaces below, never through concrete
// Taurus/MAT/FPGA types or their code generators. New backends register
// with internal/backend and work here unchanged.
package core

import "repro/internal/backend"

// Verdict is the backend-neutral feasibility report (see
// backend.Verdict); aliased so the core's API reads in core vocabulary
// without re-wrapping every report.
type Verdict = backend.Verdict

// Target is the deployable-backend interface the core searches against
// (see backend.Target).
type Target = backend.Target

// Composer is the optional whole-pipeline estimation capability a Target
// may implement (see backend.Composer).
type Composer = backend.Composer
