package core

import (
	"fmt"

	"repro/internal/ir"
)

// CompOp is a composition operator from the Alchemy DSL (§3.1.1):
// sequential (>) or parallel (|).
type CompOp int

// Composition operators.
const (
	Seq CompOp = iota // mdl1 > mdl2: output feeds the next model
	Par               // mdl1 | mdl2: models run side by side
)

// String renders the operator with Alchemy syntax.
func (o CompOp) String() string {
	if o == Seq {
		return ">"
	}
	return "|"
}

// Composition is a DAG of models built from Seq/Par operators. A node is
// either a leaf (Model != nil) or an operator over children. "Models can
// either operate sequentially > or in parallel |, and can form a directed
// acyclic graph of any depth as long as the resources permit."
type Composition struct {
	Op       CompOp
	Children []*Composition
	Model    *ir.Model
}

// Leaf wraps a single model.
func Leaf(m *ir.Model) *Composition { return &Composition{Model: m} }

// Chain composes nodes sequentially (a > b > c ...).
func Chain(nodes ...*Composition) *Composition {
	return &Composition{Op: Seq, Children: nodes}
}

// Parallel composes nodes side by side (a | b | c ...).
func Parallel(nodes ...*Composition) *Composition {
	return &Composition{Op: Par, Children: nodes}
}

// Validate reports structural errors.
func (c *Composition) Validate() error {
	if c == nil {
		return fmt.Errorf("core: nil composition")
	}
	if c.Model != nil {
		if len(c.Children) != 0 {
			return fmt.Errorf("core: composition leaf with children")
		}
		return c.Model.Validate()
	}
	if len(c.Children) == 0 {
		return fmt.Errorf("core: composition operator with no children")
	}
	for _, ch := range c.Children {
		if err := ch.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Models returns the leaf models in schedule order.
func (c *Composition) Models() []*ir.Model {
	if c == nil {
		return nil
	}
	if c.Model != nil {
		return []*ir.Model{c.Model}
	}
	var out []*ir.Model
	for _, ch := range c.Children {
		out = append(out, ch.Models()...)
	}
	return out
}

// ChainDepth returns the longest sequential path length through the DAG —
// the latency-critical depth.
func (c *Composition) ChainDepth() int {
	if c == nil {
		return 0
	}
	if c.Model != nil {
		return 1
	}
	switch c.Op {
	case Seq:
		total := 0
		for _, ch := range c.Children {
			total += ch.ChainDepth()
		}
		return total
	default: // Par
		max := 0
		for _, ch := range c.Children {
			if d := ch.ChainDepth(); d > max {
				max = d
			}
		}
		return max
	}
}

// String renders the composition with Alchemy operator syntax.
func (c *Composition) String() string {
	if c == nil {
		return "<nil>"
	}
	if c.Model != nil {
		return c.Model.Name
	}
	s := "("
	for i, ch := range c.Children {
		if i > 0 {
			s += " " + c.Op.String() + " "
		}
		s += ch.String()
	}
	return s + ")"
}

// ThroughputConsistent checks the §3.2.1 rule that chained models'
// throughput requirements are mutually consistent: a pipeline runs at the
// minimum throughput of its members, so every member must tolerate that
// rate. Returns the sustained rate.
func ThroughputConsistent(rates []float64) (float64, error) {
	if len(rates) == 0 {
		return 0, fmt.Errorf("core: no throughput rates")
	}
	min := rates[0]
	for _, r := range rates {
		if r <= 0 {
			return 0, fmt.Errorf("core: non-positive throughput %v", r)
		}
		if r < min {
			min = r
		}
	}
	return min, nil
}

// EstimateComposition maps a composition onto a target that implements
// the Composer capability, returning the Table-3 style verdict. On
// Taurus, resources are strategy-independent (glue logic folds into
// existing CUs) and latency follows the longest chain. Targets without
// whole-pipeline support return an error.
func EstimateComposition(t Target, c *Composition) (Verdict, error) {
	comp, ok := t.(Composer)
	if !ok {
		return Verdict{}, fmt.Errorf("core: target %s cannot host multi-model compositions", t.Name())
	}
	if err := c.Validate(); err != nil {
		return Verdict{}, err
	}
	return comp.EstimateComposition(c.Models(), c.ChainDepth())
}
