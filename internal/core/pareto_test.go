package core

import (
	"context"
	"testing"

	"repro/internal/backend"
	"repro/internal/ir"
)

func TestSearchParetoFrontier(t *testing.T) {
	app := smallApp(t, 20)
	cfg := fastSearchConfig()
	cfg.BO.InitSamples = 5
	cfg.BO.Iterations = 10
	res, err := SearchPareto(context.Background(), app, backend.NewTaurusTarget(), cfg, ir.DNN)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResourceKey != "cus" {
		t.Fatalf("resource key %q", res.ResourceKey)
	}
	if res.Evaluations != 15 {
		t.Fatalf("evaluations %d", res.Evaluations)
	}
	if len(res.Front) == 0 {
		t.Fatal("front must be non-empty")
	}
	// Front sorted by resource, and metric must increase with resource
	// (otherwise the cheaper point would dominate).
	for i := 1; i < len(res.Front); i++ {
		a, b := res.Front[i-1], res.Front[i]
		if b.Resource < a.Resource {
			t.Fatal("front not sorted by resource")
		}
		if b.Resource > a.Resource && b.Metric <= a.Metric {
			t.Fatalf("dominated point on front: (%v, %v) vs (%v, %v)", a.Metric, a.Resource, b.Metric, b.Resource)
		}
	}
	// Every front point carries a deployable model and feasible verdict.
	for _, p := range res.Front {
		if p.Model == nil {
			t.Fatal("front point without model")
		}
		if !p.Verdict.Feasible {
			t.Fatal("infeasible point on front")
		}
		if float64(int(p.Verdict.Metrics["cus"])) != p.Resource {
			t.Fatalf("resource mismatch: %v vs %v", p.Verdict.Metrics["cus"], p.Resource)
		}
	}
}

func TestSearchParetoMAT(t *testing.T) {
	app := smallApp(t, 21)
	cfg := fastSearchConfig()
	cfg.Metric = MetricVMeasure
	res, err := SearchPareto(context.Background(), app, backend.NewMATTarget(6), cfg, ir.KMeans)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResourceKey != "tables" {
		t.Fatalf("resource key %q", res.ResourceKey)
	}
	for _, p := range res.Front {
		if p.Resource > 6 {
			t.Fatalf("front point exceeds table budget: %v", p.Resource)
		}
	}
}

func TestSearchParetoErrors(t *testing.T) {
	app := smallApp(t, 22)
	cfg := fastSearchConfig()
	if _, err := SearchPareto(context.Background(), app, nil, cfg, ir.DNN); err == nil {
		t.Fatal("nil target must error")
	}
	if _, err := SearchPareto(context.Background(), app, backend.NewMATTarget(8), cfg, ir.DNN); err == nil {
		t.Fatal("unsupported family must error")
	}
	bad := app
	bad.Name = ""
	if _, err := SearchPareto(context.Background(), bad, backend.NewTaurusTarget(), cfg, ir.DNN); err == nil {
		t.Fatal("invalid app must error")
	}
}
