package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/backend"
	"repro/internal/parallel"
	"repro/internal/synth/nslkdd"
)

// bestFingerprint serializes everything the search promises to be
// deterministic about: the winning algorithm, its metric, and the full
// model parameters (weights, biases, quantization metadata) via the IR's
// canonical JSON encoding.
func bestFingerprint(t *testing.T, res *SearchResult) []byte {
	t.Helper()
	if res.Best == nil || res.Best.Model == nil {
		t.Fatal("search found no model")
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "alg=%s metric=%x\n", res.Best.Algorithm, res.Best.Metric)
	if err := res.Best.Model.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Belt and braces: the per-candidate histories too (objective values
	// and evaluation order for every family).
	for _, c := range res.Candidates {
		fmt.Fprintf(&buf, "family=%s skipped=%q\n", c.Algorithm, c.Skipped)
		for _, ev := range c.BO.History {
			b, err := json.Marshal(ev.X)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&buf, "x=%s y=%x feas=%v\n", b, ev.Objective, ev.Feasible)
		}
	}
	return buf.Bytes()
}

// TestSearchDeterministicAcrossGOMAXPROCS pins the repo's concurrency
// contract: a fixed-seed core.Search must return byte-identical results
// across repeated runs, with the worker pool disabled (GOMAXPROCS=1) and
// with it fully populated (GOMAXPROCS=NumCPU) — the parallel kernels,
// forest fits, acquisition scoring, and family fan-out must not leak
// scheduling into the outcome.
func TestSearchDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := nslkdd.DefaultConfig()
	cfg.Samples = 600
	train, test, err := nslkdd.TrainTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app := App{Name: "ad", Train: train, Test: test, Normalize: true}

	sc := DefaultSearchConfig()
	sc.BO.InitSamples = 3
	sc.BO.Iterations = 4
	sc.TrainEpochs = 3
	sc.MaxHiddenLayers = 2
	sc.MaxNeurons = 12
	sc.Seed = 42

	run := func() []byte {
		res, err := Search(context.Background(), app, backend.NewTaurusTarget(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return bestFingerprint(t, res)
	}

	oldProcs := runtime.GOMAXPROCS(0)
	oldWorkers := parallel.Workers()
	defer func() {
		runtime.GOMAXPROCS(oldProcs)
		parallel.SetWorkers(oldWorkers)
	}()

	var reference []byte
	for _, procs := range []int{1, runtime.NumCPU(), 4} {
		runtime.GOMAXPROCS(procs)
		parallel.SetWorkers(procs)
		for rep := 0; rep < 3; rep++ {
			got := run()
			if reference == nil {
				reference = got
				continue
			}
			if !bytes.Equal(got, reference) {
				t.Fatalf("GOMAXPROCS=%d rep %d: search result diverged from reference", procs, rep)
			}
		}
	}
}
