package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/backend"
	"repro/internal/dataset"
	"repro/internal/ir"
)

// twoOverlappingApps builds apps over feature sets {a,b,c} and {b,c,d}
// with the same binary labeling rule (driven by shared features b,c).
func twoOverlappingApps(t *testing.T, seed int64) (App, App) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	build := func(names []string, n int) *dataset.Dataset {
		d := dataset.New(n, len(names))
		d.FeatureNames = append([]string{}, names...)
		for i := 0; i < n; i++ {
			c := i % 2
			for j, name := range names {
				switch name {
				case "b":
					d.X.Set(i, j, float64(c)*1.6+rng.NormFloat64()*0.5)
				case "c":
					d.X.Set(i, j, float64(c)*-1.3+rng.NormFloat64()*0.5)
				default:
					d.X.Set(i, j, rng.NormFloat64())
				}
			}
			d.Y[i] = c
		}
		return d
	}
	mk := func(name string, names []string) App {
		d := build(names, 500)
		train, test := d.StratifiedSplit(rng, 0.75)
		return App{Name: name, Train: train, Test: test, Normalize: true}
	}
	return mk("part1", []string{"a", "b", "c"}), mk("part2", []string{"b", "c", "d"})
}

func TestFusionCandidate(t *testing.T) {
	a, b := twoOverlappingApps(t, 1)
	ok, overlap := FusionCandidate(a, b)
	if !ok {
		t.Fatalf("overlap %v should qualify for fusion", overlap)
	}
	// Disjoint features: not a candidate.
	c := a
	other := a.Train.Clone()
	other.FeatureNames = []string{"x", "y", "z"}
	c.Train = other
	ok2, _ := FusionCandidate(c, b)
	if ok2 {
		t.Fatal("disjoint features must not fuse")
	}
}

func TestFuseShapes(t *testing.T) {
	a, b := twoOverlappingApps(t, 2)
	fused, err := Fuse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	// Union of {a,b,c} and {b,c,d} = 4 features.
	if fused.Train.Features() != 4 {
		t.Fatalf("fused features = %d", fused.Train.Features())
	}
	if fused.Train.Len() != a.Train.Len()+b.Train.Len() {
		t.Fatal("fused train must concatenate samples")
	}
	if fused.Name != "part1+part2" {
		t.Fatalf("fused name %q", fused.Name)
	}
}

func TestFuseRequiresNames(t *testing.T) {
	a, b := twoOverlappingApps(t, 3)
	a.Train.FeatureNames = nil
	if _, err := Fuse(a, b); err == nil {
		t.Fatal("fusion without names must error")
	}
}

func TestTable4FusedResourcesNearOneModel(t *testing.T) {
	// The Table-4 property: a fused model serving both halves costs about
	// as much as one split model, not the sum of two.
	a, b := twoOverlappingApps(t, 4)
	cfg := fastSearchConfig()
	cfg.Algorithms = []ir.Kind{ir.DNN}
	target := backend.NewTaurusTarget()

	resA, err := Search(context.Background(), a, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Search(context.Background(), b, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Fuse(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resF, err := Search(context.Background(), fused, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Best == nil || resB.Best == nil || resF.Best == nil {
		t.Fatal("all three searches must succeed")
	}
	sumCUs := resA.Best.Verdict.Metrics["cus"] + resB.Best.Verdict.Metrics["cus"]
	fusedCUs := resF.Best.Verdict.Metrics["cus"]
	if fusedCUs >= sumCUs {
		t.Fatalf("fused CUs (%v) must undercut the sum of parts (%v)", fusedCUs, sumCUs)
	}
	// Fused model must still classify well (shared features carry the
	// signal).
	if resF.Best.Metric < 0.75 {
		t.Fatalf("fused F1 %v too low", resF.Best.Metric)
	}
}
