// Package loaders holds the canonical DataLoader recipes for the
// bundled synthetic dataset generators — the single source the CLI's
// spec format, the HTTP daemon's catalog, and the experiment sweeps all
// build from, so the generator wiring (including the botnet corpus's
// 3/4 flowmarker/partial split) cannot drift between entry points.
package loaders

import (
	"repro/alchemy"
	"repro/internal/packet"
	"repro/internal/synth/botnet"
	"repro/internal/synth/iottc"
	"repro/internal/synth/nslkdd"
)

// partialWindow is the packet budget of the botnet test split's partial
// flow-marker features (a flow observed for its first N packets).
const partialWindow = 8

// NSLKDD returns a loader over the bundled NSL-KDD-like generator.
// Zero samples/seed keep the generator defaults.
func NSLKDD(samples int, seed int64) alchemy.DataLoader {
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := nslkdd.DefaultConfig()
		if samples > 0 {
			cfg.Samples = samples
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		train, test, err := nslkdd.TrainTest(cfg)
		if err != nil {
			return nil, err
		}
		return alchemy.FromDatasets(train, test), nil
	})
}

// IoTTC returns a loader over the bundled IoT traffic-classification
// generator. Zero samples/seed keep the generator defaults.
func IoTTC(samples int, seed int64) alchemy.DataLoader {
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := iottc.DefaultConfig()
		if samples > 0 {
			cfg.Samples = samples
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		train, test, err := iottc.TrainTest(cfg)
		if err != nil {
			return nil, err
		}
		return alchemy.FromDatasets(train, test), nil
	})
}

// Botnet returns a loader over the bundled botnet flow corpus: the
// first 3/4 of flows become full flow-marker training features, the
// rest a partial-window test split (the paper's detection setting).
// Zero flows/seed keep the generator defaults.
func Botnet(flows int, seed int64) alchemy.DataLoader {
	return alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
		cfg := botnet.DefaultConfig()
		if flows > 0 {
			cfg.Flows = flows
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		all, err := botnet.Generate(cfg)
		if err != nil {
			return nil, err
		}
		cut := len(all) * 3 / 4
		train, err := botnet.FlowmarkerDataset(all[:cut], packet.PaperBD)
		if err != nil {
			return nil, err
		}
		test, err := botnet.PartialDataset(all[cut:], packet.PaperBD, partialWindow)
		if err != nil {
			return nil, err
		}
		return alchemy.FromDatasets(train, test), nil
	})
}
