package ir

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/fixed"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/svm"
)

func trainSmallNN(t *testing.T, d *dataset.Dataset) *nn.Network {
	t.Helper()
	c := nn.Config{
		Inputs: d.Features(), Hidden: []int{8}, Outputs: 2,
		Activation: nn.ReLU, Optimizer: nn.Adam,
		LearnRate: 0.01, BatchSize: 16, Epochs: 30, Seed: 1,
	}
	net, err := nn.New(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(d); err != nil {
		t.Fatal(err)
	}
	return net
}

func blob2(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(n, 2)
	for i := 0; i < n; i++ {
		c := i % 2
		d.X.Set(i, 0, float64(c)*2-1+rng.NormFloat64()*0.3)
		d.X.Set(i, 1, float64(c)*2-1+rng.NormFloat64()*0.3)
		d.Y[i] = c
	}
	return d
}

func TestKindStrings(t *testing.T) {
	if DNN.String() != "dnn" || KMeans.String() != "kmeans" || Kind(9).String() == "" {
		t.Fatal("Kind stringer")
	}
	if k, err := ParseKind("decision_tree"); err != nil || k != DTree {
		t.Fatal("ParseKind alias")
	}
	_, err := ParseKind("nope")
	if err == nil {
		t.Fatal("ParseKind must reject unknown")
	}
	for _, name := range KindNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-algorithm error must list %q, got: %v", name, err)
		}
	}
}

func TestFromNNAndValidate(t *testing.T) {
	d := blob2(200, 1)
	net := trainSmallNN(t, d)
	m := FromNN("ad", net, fixed.Q8_8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.ParamCount() != net.ParamCount() {
		t.Fatalf("param count %d vs %d", m.ParamCount(), net.ParamCount())
	}
	widths := m.HiddenWidths()
	if len(widths) != 1 || widths[0] != 8 {
		t.Fatalf("HiddenWidths = %v", widths)
	}
	if m.Layers[len(m.Layers)-1].Activation != "softmax" {
		t.Fatal("output layer must be softmax")
	}
}

func TestNNFloatInferenceMatchesNetwork(t *testing.T) {
	d := blob2(200, 2)
	net := trainSmallNN(t, d)
	m := FromNN("ad", net, fixed.Q8_8)
	for i := 0; i < 50; i++ {
		want := net.PredictVec(d.X.Row(i))
		got, err := m.Infer(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sample %d: IR %d vs network %d", i, got, want)
		}
	}
}

func TestQuantizedInferenceCloseToFloat(t *testing.T) {
	d := blob2(300, 3)
	net := trainSmallNN(t, d)
	m := FromNN("ad", net, fixed.Q8_8)
	agree := 0
	for i := 0; i < d.Len(); i++ {
		f, _ := m.Infer(d.X.Row(i))
		q, err := m.InferQ(d.X.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if f == q {
			agree++
		}
	}
	if frac := float64(agree) / float64(d.Len()); frac < 0.95 {
		t.Fatalf("quantized agreement %v < 0.95", frac)
	}
}

func TestNormalizerFolded(t *testing.T) {
	d := blob2(300, 4)
	norm := dataset.FitNormalizer(d)
	normalized := d.Clone()
	norm.Apply(normalized)
	net := trainSmallNN(t, normalized)
	m := FromNN("ad", net, fixed.Q8_8).WithNormalizer(norm)
	// Infer on RAW features must match network on NORMALIZED features.
	for i := 0; i < 50; i++ {
		want := net.PredictVec(normalized.X.Row(i))
		got, _ := m.Infer(d.X.Row(i))
		if got != want {
			t.Fatalf("normalizer folding broken at %d", i)
		}
	}
}

func TestFromSVM(t *testing.T) {
	d := blob2(200, 5)
	sc := svm.Config{Features: 2, Classes: 2, LearnRate: 0.1, Lambda: 0.001, Epochs: 10, Seed: 1}
	sm, err := svm.Train(sc, d)
	if err != nil {
		t.Fatal(err)
	}
	m := FromSVM("tc", sm, fixed.Q8_8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < d.Len(); i++ {
		got, _ := m.Infer(d.X.Row(i))
		if got == sm.PredictVec(d.X.Row(i)) {
			agree++
		}
	}
	if agree != d.Len() {
		t.Fatalf("SVM IR agreement %d/%d", agree, d.Len())
	}
	q, err := m.PredictQ(d)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.FromLabels(d.Y, q, 2).Accuracy()
	if acc < 0.95 {
		t.Fatalf("quantized SVM accuracy %v", acc)
	}
}

func TestFromKMeans(t *testing.T) {
	d := blob2(200, 6)
	km, err := kmeans.Train(kmeans.Config{K: 2, MaxIters: 30, Seed: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	m := FromKMeans("clu", km, fixed.Q8_8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, _ := m.Infer(d.X.Row(i))
		if got != km.AssignVec(d.X.Row(i)) {
			t.Fatalf("KMeans IR disagrees at %d", i)
		}
	}
	// Quantized assignment should agree nearly always on separated blobs.
	agree := 0
	for i := 0; i < d.Len(); i++ {
		f, _ := m.Infer(d.X.Row(i))
		q, _ := m.InferQ(d.X.Row(i))
		if f == q {
			agree++
		}
	}
	if float64(agree)/float64(d.Len()) < 0.98 {
		t.Fatalf("quantized KMeans agreement %d/%d", agree, d.Len())
	}
}

func TestFromDTree(t *testing.T) {
	d := blob2(200, 7)
	tm, err := dtree.Train(dtree.Config{MaxDepth: 4, MinLeaf: 2, Classes: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	m := FromDTree("dt", tm, 2, fixed.Q8_8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		got, _ := m.Infer(d.X.Row(i))
		if got != tm.PredictVec(d.X.Row(i)) {
			t.Fatalf("DTree IR disagrees at %d", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := blob2(100, 8)
	net := trainSmallNN(t, d)
	m := FromNN("x", net, fixed.Q8_8)
	m.Layers[0].In = 99
	if m.Validate() == nil {
		t.Fatal("layer shape corruption must fail validation")
	}
	m2 := &Model{Kind: SVM, Name: "s", Inputs: 2, Outputs: 2}
	if m2.Validate() == nil {
		t.Fatal("missing SVM params must fail")
	}
	m3 := &Model{Kind: DTree, Name: "t", Inputs: 2, Outputs: 2}
	if m3.Validate() == nil {
		t.Fatal("missing tree must fail")
	}
	m4 := &Model{Kind: KMeans, Name: "k", Inputs: 2, Outputs: 3}
	if m4.Validate() == nil {
		t.Fatal("missing centroids must fail")
	}
}

func TestInferErrors(t *testing.T) {
	d := blob2(100, 9)
	net := trainSmallNN(t, d)
	m := FromNN("x", net, fixed.Q8_8)
	if _, err := m.Infer([]float64{1}); err == nil {
		t.Fatal("wrong input size must error")
	}
	if _, err := m.InferQ([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong input size must error (quantized)")
	}
}

func TestParamCounts(t *testing.T) {
	m := &Model{Kind: SVM, Inputs: 3, Outputs: 2,
		SVM: &SVMParams{W: [][]float64{{1, 2, 3}, {4, 5, 6}}, B: []float64{0, 0}}}
	if m.ParamCount() != 8 {
		t.Fatalf("SVM params = %d", m.ParamCount())
	}
	mk := &Model{Kind: KMeans, Inputs: 3, Outputs: 2,
		Centroids: [][]float64{{1, 2, 3}, {4, 5, 6}}}
	if mk.ParamCount() != 6 {
		t.Fatalf("KMeans params = %d", mk.ParamCount())
	}
}
