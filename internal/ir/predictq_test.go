package ir

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fixed"
)

// TestPredictQMatchesInferQ pins the DNN batch fast path in PredictQ to
// the per-row InferQ reference: pre-quantizing the weights once must not
// change a single prediction, with and without a folded normalizer.
func TestPredictQMatchesInferQ(t *testing.T) {
	d := blob2(300, 9)
	net := trainSmallNN(t, d)

	norm := dataset.FitNormalizer(d)
	for _, m := range []*Model{
		FromNN("ad", net, fixed.Q8_8),
		FromNN("ad", net, fixed.Q4_12),
		FromNN("ad", net, fixed.Q8_8).WithNormalizer(norm),
	} {
		batch, err := m.PredictQ(d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d.Len(); i++ {
			want, err := m.InferQ(d.X.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != want {
				t.Fatalf("%s row %d: PredictQ=%d InferQ=%d", m.Format, i, batch[i], want)
			}
		}
	}
}
