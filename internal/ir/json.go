package ir

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fixed"
)

// jsonModel is the stable on-disk representation of a Model. It exists so
// the wire format is explicit and versioned rather than mirroring internal
// struct layout.
type jsonModel struct {
	Version      int         `json:"version"`
	Kind         string      `json:"kind"`
	Name         string      `json:"name"`
	Inputs       int         `json:"inputs"`
	Outputs      int         `json:"outputs"`
	IntBits      int         `json:"int_bits"`
	FracBits     int         `json:"frac_bits"`
	FeatureNames []string    `json:"feature_names,omitempty"`
	Mean         []float64   `json:"mean,omitempty"`
	Std          []float64   `json:"std,omitempty"`
	Layers       []jsonLayer `json:"layers,omitempty"`
	SVMW         [][]float64 `json:"svm_w,omitempty"`
	SVMB         []float64   `json:"svm_b,omitempty"`
	Centroids    [][]float64 `json:"centroids,omitempty"`
	Tree         *jsonNode   `json:"tree,omitempty"`
}

type jsonLayer struct {
	In         int         `json:"in"`
	Out        int         `json:"out"`
	W          [][]float64 `json:"w"`
	B          []float64   `json:"b"`
	Activation string      `json:"activation"`
}

type jsonNode struct {
	Feature   int       `json:"feature"`
	Threshold float64   `json:"threshold,omitempty"`
	Class     int       `json:"class"`
	Left      *jsonNode `json:"left,omitempty"`
	Right     *jsonNode `json:"right,omitempty"`
}

// formatVersion is bumped on incompatible wire changes.
const formatVersion = 1

// WriteJSON serializes the model (validated first) to w.
func (m *Model) WriteJSON(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("ir: refusing to serialize invalid model: %w", err)
	}
	jm := jsonModel{
		Version:      formatVersion,
		Kind:         m.Kind.String(),
		Name:         m.Name,
		Inputs:       m.Inputs,
		Outputs:      m.Outputs,
		IntBits:      m.Format.IntBits,
		FracBits:     m.Format.FracBits,
		FeatureNames: m.FeatureNames,
		Mean:         m.Mean,
		Std:          m.Std,
		Centroids:    m.Centroids,
	}
	for _, l := range m.Layers {
		jm.Layers = append(jm.Layers, jsonLayer{In: l.In, Out: l.Out, W: l.W, B: l.B, Activation: l.Activation})
	}
	if m.SVM != nil {
		jm.SVMW, jm.SVMB = m.SVM.W, m.SVM.B
	}
	jm.Tree = toJSONNode(m.Tree)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jm); err != nil {
		return fmt.Errorf("ir: encode model: %w", err)
	}
	return nil
}

// ReadJSON deserializes a model written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Model, error) {
	var jm jsonModel
	if err := json.NewDecoder(r).Decode(&jm); err != nil {
		return nil, fmt.Errorf("ir: decode model: %w", err)
	}
	if jm.Version != formatVersion {
		return nil, fmt.Errorf("ir: unsupported model format version %d (want %d)", jm.Version, formatVersion)
	}
	kind, err := ParseKind(jm.Kind)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Kind:         kind,
		Name:         jm.Name,
		Inputs:       jm.Inputs,
		Outputs:      jm.Outputs,
		Format:       fixed.Format{IntBits: jm.IntBits, FracBits: jm.FracBits},
		FeatureNames: jm.FeatureNames,
		Mean:         jm.Mean,
		Std:          jm.Std,
		Centroids:    jm.Centroids,
	}
	for _, l := range jm.Layers {
		m.Layers = append(m.Layers, Layer{In: l.In, Out: l.Out, W: l.W, B: l.B, Activation: l.Activation})
	}
	if jm.SVMW != nil {
		m.SVM = &SVMParams{W: jm.SVMW, B: jm.SVMB}
	}
	m.Tree = fromJSONNode(jm.Tree)
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("ir: loaded model invalid: %w", err)
	}
	return m, nil
}

func toJSONNode(n *TreeNode) *jsonNode {
	if n == nil {
		return nil
	}
	return &jsonNode{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Class:     n.Class,
		Left:      toJSONNode(n.Left),
		Right:     toJSONNode(n.Right),
	}
}

func fromJSONNode(n *jsonNode) *TreeNode {
	if n == nil {
		return nil
	}
	return &TreeNode{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Class:     n.Class,
		Left:      fromJSONNode(n.Left),
		Right:     fromJSONNode(n.Right),
	}
}
