// Package ir defines the backend-neutral intermediate representation of a
// trained model that the Homunculus backend generators consume (§3.3).
// A Model captures the trained parameters (DNN layers, SVM hyperplanes,
// KMeans centroids, or a decision tree), the feature-normalization affine,
// and the fixed-point format the data plane will compute in. Backends use
// it three ways: resource estimation, code generation, and bit-accurate
// quantized inference (what the generated hardware would output).
package ir

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/fixed"
	"repro/internal/kmeans"
	"repro/internal/nn"
	"repro/internal/svm"
	"repro/internal/tensor"
)

// Kind identifies the algorithm family of a model.
type Kind int

// Algorithm families the optimization core can select (§3.2.1).
const (
	DNN Kind = iota
	SVM
	KMeans
	DTree
)

// String names the kind (the Alchemy "algorithm" strings).
func (k Kind) String() string {
	switch k {
	case DNN:
		return "dnn"
	case SVM:
		return "svm"
	case KMeans:
		return "kmeans"
	case DTree:
		return "dtree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindNames lists the accepted Alchemy algorithm names, in Kind order
// ("decision_tree" is also accepted as an alias of "dtree").
func KindNames() []string {
	return []string{"dnn", "svm", "kmeans", "dtree"}
}

// ParseKind maps an Alchemy algorithm name to a Kind; an unknown name's
// error lists the accepted values so a typo in a spec is a one-glance
// fix (matching the backend registry's unknown-kind style).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "dnn":
		return DNN, nil
	case "svm":
		return SVM, nil
	case "kmeans":
		return KMeans, nil
	case "dtree", "decision_tree":
		return DTree, nil
	default:
		return 0, fmt.Errorf("ir: unknown algorithm %q (accepted: %v)", s, KindNames())
	}
}

// Layer is one dense DNN layer in the IR: Out×In weights row-major by
// output neuron, plus biases, and the activation applied to the result.
type Layer struct {
	In, Out    int
	W          [][]float64 // [Out][In]
	B          []float64   // [Out]
	Activation string      // "relu", "sigmoid", "tanh", or "softmax" (output)
}

// TreeNode mirrors a CART node for backends (leaf when Feature < 0).
type TreeNode struct {
	Feature     int
	Threshold   float64
	Class       int
	Left, Right *TreeNode
}

// SVMParams holds one-vs-rest hyperplanes.
type SVMParams struct {
	W [][]float64 // [class][feature]
	B []float64
}

// Model is the full backend-neutral representation.
type Model struct {
	Kind         Kind
	Name         string
	Inputs       int
	Outputs      int // classes (or clusters for KMeans)
	Format       fixed.Format
	FeatureNames []string
	// Normalizer, if set, is folded into the feature-extraction stage of
	// the generated pipeline.
	Mean, Std []float64

	Layers    []Layer     // DNN
	SVM       *SVMParams  // SVM
	Centroids [][]float64 // KMeans
	Tree      *TreeNode   // DTree
}

// Validate checks structural consistency.
func (m *Model) Validate() error {
	if m.Inputs <= 0 {
		return fmt.Errorf("ir: model %q has %d inputs", m.Name, m.Inputs)
	}
	if m.Outputs <= 0 {
		return fmt.Errorf("ir: model %q has %d outputs", m.Name, m.Outputs)
	}
	switch m.Kind {
	case DNN:
		if len(m.Layers) == 0 {
			return fmt.Errorf("ir: DNN %q has no layers", m.Name)
		}
		prev := m.Inputs
		for i, l := range m.Layers {
			if l.In != prev {
				return fmt.Errorf("ir: layer %d input %d, want %d", i, l.In, prev)
			}
			if len(l.W) != l.Out || len(l.B) != l.Out {
				return fmt.Errorf("ir: layer %d weight/bias shape mismatch", i)
			}
			for _, row := range l.W {
				if len(row) != l.In {
					return fmt.Errorf("ir: layer %d weight row length %d, want %d", i, len(row), l.In)
				}
			}
			prev = l.Out
		}
		if prev != m.Outputs {
			return fmt.Errorf("ir: final layer out %d, want %d outputs", prev, m.Outputs)
		}
	case SVM:
		if m.SVM == nil || len(m.SVM.W) != m.Outputs {
			return fmt.Errorf("ir: SVM %q params missing or wrong class count", m.Name)
		}
	case KMeans:
		if len(m.Centroids) != m.Outputs {
			return fmt.Errorf("ir: KMeans %q has %d centroids, want %d", m.Name, len(m.Centroids), m.Outputs)
		}
	case DTree:
		if m.Tree == nil {
			return fmt.Errorf("ir: DTree %q has no tree", m.Name)
		}
	default:
		return fmt.Errorf("ir: unknown kind %d", int(m.Kind))
	}
	return nil
}

// ParamCount returns the trainable parameter count (the "# NN Param"
// column of Table 2; weight+bias words for the data-plane memory budget).
func (m *Model) ParamCount() int {
	switch m.Kind {
	case DNN:
		total := 0
		for _, l := range m.Layers {
			total += l.In*l.Out + l.Out
		}
		return total
	case SVM:
		total := 0
		for _, w := range m.SVM.W {
			total += len(w) + 1
		}
		return total
	case KMeans:
		total := 0
		for _, c := range m.Centroids {
			total += len(c)
		}
		return total
	case DTree:
		return countNodes(m.Tree) * 2 // threshold + feature id per node
	default:
		return 0
	}
}

func countNodes(n *TreeNode) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// HiddenWidths returns the hidden layer widths of a DNN model (empty for
// other kinds) — the architecture summary reported in experiment tables.
func (m *Model) HiddenWidths() []int {
	if m.Kind != DNN || len(m.Layers) == 0 {
		return nil
	}
	widths := make([]int, 0, len(m.Layers)-1)
	for _, l := range m.Layers[:len(m.Layers)-1] {
		widths = append(widths, l.Out)
	}
	return widths
}

// FromNN converts a trained network into the IR.
func FromNN(name string, net *nn.Network, format fixed.Format) *Model {
	m := &Model{
		Kind:    DNN,
		Name:    name,
		Inputs:  net.Config.Inputs,
		Outputs: net.Config.Outputs,
		Format:  format,
	}
	for li, l := range net.Layers {
		layer := Layer{In: l.In, Out: l.Out, B: append([]float64{}, l.B...)}
		layer.W = make([][]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			layer.W[o] = make([]float64, l.In)
			for i := 0; i < l.In; i++ {
				layer.W[o][i] = l.W.At(i, o) // transpose: IR is [out][in]
			}
		}
		if li == len(net.Layers)-1 {
			layer.Activation = "softmax"
		} else {
			layer.Activation = l.Act.String()
		}
		m.Layers = append(m.Layers, layer)
	}
	return m
}

// FromSVM converts a trained SVM into the IR.
func FromSVM(name string, model *svm.Model, format fixed.Format) *Model {
	p := &SVMParams{B: append([]float64{}, model.B...)}
	for _, w := range model.W {
		p.W = append(p.W, append([]float64{}, w...))
	}
	return &Model{
		Kind:    SVM,
		Name:    name,
		Inputs:  model.Config.Features,
		Outputs: model.Config.Classes,
		Format:  format,
		SVM:     p,
	}
}

// FromKMeans converts a fitted clustering into the IR.
func FromKMeans(name string, model *kmeans.Model, format fixed.Format) *Model {
	m := &Model{
		Kind:    KMeans,
		Name:    name,
		Inputs:  model.Centroids.Cols,
		Outputs: model.K(),
		Format:  format,
	}
	for k := 0; k < model.K(); k++ {
		m.Centroids = append(m.Centroids, append([]float64{}, model.Centroids.Row(k)...))
	}
	return m
}

// FromDTree converts a fitted CART tree into the IR.
func FromDTree(name string, model *dtree.Model, features int, format fixed.Format) *Model {
	return &Model{
		Kind:    DTree,
		Name:    name,
		Inputs:  features,
		Outputs: model.Config.Classes,
		Format:  format,
		Tree:    convertTree(model.Root),
	}
}

func convertTree(n *dtree.Node) *TreeNode {
	if n == nil {
		return nil
	}
	return &TreeNode{
		Feature:   n.Feature,
		Threshold: n.Threshold,
		Class:     n.Class,
		Left:      convertTree(n.Left),
		Right:     convertTree(n.Right),
	}
}

// WithNormalizer attaches feature standardization to the pipeline.
func (m *Model) WithNormalizer(norm *dataset.Normalizer) *Model {
	m.Mean = append([]float64{}, norm.Mean...)
	m.Std = append([]float64{}, norm.Std...)
	return m
}

// normalizeQ applies the baked-in normalizer (if any) in float, returning
// the vector the quantizer will see. Data planes implement this as a
// shift-and-scale in the feature-extraction stage before quantization.
func (m *Model) normalize(x []float64) []float64 {
	out := append([]float64{}, x...)
	if len(m.Mean) == len(out) {
		for i := range out {
			out[i] = (out[i] - m.Mean[i]) / m.Std[i]
		}
	}
	return out
}

// Infer runs float inference (reference semantics, used for testing the
// quantized path against).
func (m *Model) Infer(x []float64) (int, error) {
	if len(x) != m.Inputs {
		return 0, fmt.Errorf("ir: input has %d features, model %q wants %d", len(x), m.Name, m.Inputs)
	}
	v := m.normalize(x)
	switch m.Kind {
	case DNN:
		for _, l := range m.Layers {
			next := make([]float64, l.Out)
			for o := 0; o < l.Out; o++ {
				next[o] = tensor.Dot(l.W[o], v) + l.B[o]
			}
			applyAct(next, l.Activation)
			v = next
		}
		return tensor.ArgMax(v), nil
	case SVM:
		scores := make([]float64, m.Outputs)
		for k := range scores {
			scores[k] = tensor.Dot(m.SVM.W[k], v) + m.SVM.B[k]
		}
		return tensor.ArgMax(scores), nil
	case KMeans:
		best, bi := -1.0, 0
		for k, c := range m.Centroids {
			d := tensor.SqDist(v, c)
			if best < 0 || d < best {
				best, bi = d, k
			}
		}
		return bi, nil
	case DTree:
		n := m.Tree
		for n.Feature >= 0 {
			if v[n.Feature] <= n.Threshold {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		return n.Class, nil
	default:
		return 0, fmt.Errorf("ir: cannot infer kind %d", int(m.Kind))
	}
}

func applyAct(v []float64, act string) {
	switch act {
	case "relu":
		for i := range v {
			if v[i] < 0 {
				v[i] = 0
			}
		}
	case "sigmoid":
		for i := range v {
			v[i] = 1 / (1 + exp(-v[i]))
		}
	case "tanh":
		for i := range v {
			v[i] = tanh(v[i])
		}
	case "softmax":
		// arg-max is invariant to softmax; data planes skip it entirely.
	}
}

// InferQ runs bit-accurate fixed-point inference in the model's Format —
// the exact arithmetic the generated Taurus/FPGA pipeline performs.
// Non-linear activations use the same piecewise approximations the
// hardware templates emit.
func (m *Model) InferQ(x []float64) (int, error) {
	if len(x) != m.Inputs {
		return 0, fmt.Errorf("ir: input has %d features, model %q wants %d", len(x), m.Name, m.Inputs)
	}
	f := m.Format
	v := f.QuantizeVec(m.normalize(x))
	switch m.Kind {
	case DNN:
		for _, l := range m.Layers {
			next := make([]int32, l.Out)
			for o := 0; o < l.Out; o++ {
				wq := f.QuantizeVec(l.W[o])
				acc := f.DotQ(wq, v)
				acc = f.Add(acc, f.Quantize(l.B[o]))
				switch l.Activation {
				case "relu":
					acc = fixed.ReLUQ(acc)
				case "sigmoid":
					acc = f.SigmoidQ(acc)
				case "tanh":
					// PWL tanh: clamp(x) in [-1, 1]
					one := f.Quantize(1)
					if acc > one {
						acc = one
					}
					if acc < -one {
						acc = -one
					}
				}
				next[o] = acc
			}
			v = next
		}
		return argMaxQ(v), nil
	case SVM:
		scores := make([]int32, m.Outputs)
		for k := range scores {
			wq := f.QuantizeVec(m.SVM.W[k])
			scores[k] = f.Add(f.DotQ(wq, v), f.Quantize(m.SVM.B[k]))
		}
		return argMaxQ(scores), nil
	case KMeans:
		bestK, bestD := 0, int64(-1)
		for k, c := range m.Centroids {
			cq := f.QuantizeVec(c)
			var d int64
			for i := range cq {
				diff := int64(v[i]) - int64(cq[i])
				d += diff * diff
			}
			if bestD < 0 || d < bestD {
				bestD, bestK = d, k
			}
		}
		return bestK, nil
	case DTree:
		n := m.Tree
		for n.Feature >= 0 {
			if v[n.Feature] <= f.Quantize(n.Threshold) {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		return n.Class, nil
	default:
		return 0, fmt.Errorf("ir: cannot infer kind %d", int(m.Kind))
	}
}

func argMaxQ(v []int32) int {
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// ScoresQ runs quantized inference and returns the per-output scores
// (dequantized): decision values for DNN/SVM, negated squared distances
// for KMeans (so arg-max semantics hold), and a one-hot for trees. The
// composition executor uses these as the values an IOMap transforms.
func (m *Model) ScoresQ(x []float64) ([]float64, error) {
	if len(x) != m.Inputs {
		return nil, fmt.Errorf("ir: input has %d features, model %q wants %d", len(x), m.Name, m.Inputs)
	}
	f := m.Format
	v := f.QuantizeVec(m.normalize(x))
	switch m.Kind {
	case DNN:
		for _, l := range m.Layers {
			next := make([]int32, l.Out)
			for o := 0; o < l.Out; o++ {
				wq := f.QuantizeVec(l.W[o])
				acc := f.Add(f.DotQ(wq, v), f.Quantize(l.B[o]))
				switch l.Activation {
				case "relu":
					acc = fixed.ReLUQ(acc)
				case "sigmoid":
					acc = f.SigmoidQ(acc)
				case "tanh":
					one := f.Quantize(1)
					if acc > one {
						acc = one
					}
					if acc < -one {
						acc = -one
					}
				}
				next[o] = acc
			}
			v = next
		}
		return f.DequantizeVec(v), nil
	case SVM:
		out := make([]float64, m.Outputs)
		for k := range out {
			wq := f.QuantizeVec(m.SVM.W[k])
			out[k] = f.Dequantize(f.Add(f.DotQ(wq, v), f.Quantize(m.SVM.B[k])))
		}
		return out, nil
	case KMeans:
		out := make([]float64, m.Outputs)
		for k, c := range m.Centroids {
			cq := f.QuantizeVec(c)
			var d int64
			for i := range cq {
				diff := int64(v[i]) - int64(cq[i])
				d += diff * diff
			}
			out[k] = -float64(d)
		}
		return out, nil
	case DTree:
		class, err := m.InferQ(x)
		if err != nil {
			return nil, err
		}
		out := make([]float64, m.Outputs)
		if class >= 0 && class < m.Outputs {
			out[class] = 1
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ir: cannot score kind %d", int(m.Kind))
	}
}

// PredictQ classifies every sample of d with quantized inference. It
// rides the prepared Predictor fast path: parameters are quantized once
// and every row streams through reusable buffers (InferQ re-quantizes
// the weights per input, which dominates scoring during search). The
// per-element operation order is identical to InferQ, so predictions
// match bit-for-bit. The deployment runtime (internal/serve) uses the
// same Predictor per shard to serve live traffic.
func (m *Model) PredictQ(d *dataset.Dataset) ([]int, error) {
	p, err := NewPredictor(m)
	if err != nil {
		return nil, err
	}
	out := make([]int, d.Len())
	if err := p.PredictDataset(d, out); err != nil {
		return nil, err
	}
	return out, nil
}

func exp(x float64) float64  { return math.Exp(x) }
func tanh(x float64) float64 { return math.Tanh(x) }
