package ir

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/fixed"
	"repro/internal/kmeans"
	"repro/internal/svm"
)

// predictorModels builds one trained model per algorithm family over the
// same 2-feature blob, with and without a folded normalizer for the DNN.
func predictorModels(t *testing.T, d *dataset.Dataset) []*Model {
	t.Helper()
	net := trainSmallNN(t, d)
	sm, err := svm.Train(svm.Config{Features: 2, Classes: 2, LearnRate: 0.1, Lambda: 0.001, Epochs: 10, Seed: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	km, err := kmeans.Train(kmeans.Config{K: 2, MaxIters: 30, Seed: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := dtree.Train(dtree.Config{MaxDepth: 4, MinLeaf: 2, Classes: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	norm := dataset.FitNormalizer(d)
	return []*Model{
		FromNN("dnn", net, fixed.Q8_8),
		FromNN("dnn412", net, fixed.Q4_12),
		FromNN("dnnnorm", net, fixed.Q8_8).WithNormalizer(norm),
		FromSVM("svm", sm, fixed.Q8_8),
		FromKMeans("km", km, fixed.Q8_8),
		FromDTree("dt", tm, 2, fixed.Q8_8),
	}
}

// TestPredictorMatchesInferQ pins the prepared serving path to the
// per-row InferQ reference for every algorithm family: quantizing the
// parameters once and reusing buffers must not change a single answer.
func TestPredictorMatchesInferQ(t *testing.T) {
	d := blob2(300, 11)
	for _, m := range predictorModels(t, d) {
		p, err := NewPredictor(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := 0; i < d.Len(); i++ {
			want, err := m.InferQ(d.X.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Classify(d.X.Row(i))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s row %d: Predictor=%d InferQ=%d", m.Name, i, got, want)
			}
		}
	}
}

// TestPredictorZeroAlloc asserts the steady-state Classify contract the
// deployment runtime's 0 allocs/op serving budget is built on.
func TestPredictorZeroAlloc(t *testing.T) {
	d := blob2(64, 12)
	for _, m := range predictorModels(t, d) {
		p, err := NewPredictor(m)
		if err != nil {
			t.Fatal(err)
		}
		row := d.X.Row(0)
		if _, err := p.Classify(row); err != nil { // warm up
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := p.Classify(row); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: Classify allocates %.1f times per op, want 0", m.Name, allocs)
		}
	}
}

// TestPredictorErrors covers construction and input validation.
func TestPredictorErrors(t *testing.T) {
	if _, err := NewPredictor(&Model{Kind: DNN, Name: "bad", Inputs: 2, Outputs: 2}); err == nil {
		t.Fatal("NewPredictor must reject an invalid model")
	}
	d := blob2(40, 13)
	net := trainSmallNN(t, d)
	p, err := NewPredictor(FromNN("dnn", net, fixed.Q8_8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify([]float64{1}); err == nil {
		t.Fatal("Classify must reject a wrong-length input")
	}
	out := make([]int, 3)
	if err := p.PredictDataset(d, out); err == nil {
		t.Fatal("PredictDataset must reject a wrong-length output slice")
	}
}
