package ir

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fixed"
)

func TestJSONRoundTripDNN(t *testing.T) {
	d := blob2(200, 30)
	net := trainSmallNN(t, d)
	m := FromNN("ad", net, fixed.Q8_8)
	m.FeatureNames = []string{"fa", "fb"}
	m.Mean = []float64{0.1, 0.2}
	m.Std = []float64{1, 2}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != DNN || back.Name != "ad" || back.Inputs != m.Inputs {
		t.Fatal("metadata lost")
	}
	if back.Format != fixed.Q8_8 {
		t.Fatalf("format lost: %v", back.Format)
	}
	if back.FeatureNames[1] != "fb" || back.Mean[1] != 0.2 {
		t.Fatal("names/normalizer lost")
	}
	// Bit-identical inference after round trip.
	for i := 0; i < 50; i++ {
		a, _ := m.InferQ(d.X.Row(i))
		b, _ := back.InferQ(d.X.Row(i))
		if a != b {
			t.Fatalf("inference diverges at %d", i)
		}
	}
}

func TestJSONRoundTripTree(t *testing.T) {
	tree := &TreeNode{Feature: 0, Threshold: 0.5,
		Left: &TreeNode{Feature: -1, Class: 1},
		Right: &TreeNode{Feature: 1, Threshold: -0.25,
			Left:  &TreeNode{Feature: -1, Class: 0},
			Right: &TreeNode{Feature: -1, Class: 1}}}
	m := &Model{Kind: DTree, Name: "t", Inputs: 2, Outputs: 2, Format: fixed.Q4_12, Tree: tree}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tree.Right.Threshold != -0.25 || back.Tree.Right.Left.Class != 0 {
		t.Fatal("tree structure lost")
	}
}

func TestJSONRoundTripSVMAndKMeans(t *testing.T) {
	svm := &Model{Kind: SVM, Name: "s", Inputs: 3, Outputs: 2, Format: fixed.Q8_8,
		SVM: &SVMParams{W: [][]float64{{1, 2, 3}, {4, 5, 6}}, B: []float64{0.5, -0.5}}}
	var buf bytes.Buffer
	if err := svm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SVM.B[1] != -0.5 {
		t.Fatal("SVM params lost")
	}

	km := &Model{Kind: KMeans, Name: "k", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
		Centroids: [][]float64{{1, 2}, {3, 4}}}
	buf.Reset()
	if err := km.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back2.Centroids[1][0] != 3 {
		t.Fatal("centroids lost")
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	bad := &Model{Kind: DNN, Name: "bad", Inputs: 2, Outputs: 2}
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err == nil {
		t.Fatal("invalid model must not serialize")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version": 1, "kind": "nope"}`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
	// structurally broken model
	if _, err := ReadJSON(strings.NewReader(`{"version": 1, "kind": "dnn", "name": "x", "inputs": 2, "outputs": 2}`)); err == nil {
		t.Fatal("invalid loaded model must fail validation")
	}
}
