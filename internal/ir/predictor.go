package ir

// Predictor is a prepared quantized-inference engine over one Model: the
// trained parameters are quantized once at construction and every scratch
// buffer is preallocated, so a steady-state Classify call performs zero
// heap allocations. This is the serving-path counterpart of PredictQ's
// batch fast path — the deployment runtime (internal/serve) builds one
// Predictor per inference shard and streams live feature vectors through
// it at line rate.
//
// Construction flattens every model family into the hardware idiom:
// DNN weights become one row-major []int32 per layer with the activation
// resolved to an enum (no per-neuron string switch), SVM hyperplanes and
// KMeans centroids become strided flat arrays, and trees become
// index-linked arrays with thresholds quantized once — the traversal step
// is pure arithmetic (a sign-bit select), with leaves self-looping so the
// walk runs a fixed number of iterations with no data-dependent branch.
//
// Classify is bit-identical to Model.InferQ for every algorithm family:
// the per-element operation order (quantize, wide-accumulator dot,
// saturating add, PWL activations) is exactly the generated hardware's,
// so a served answer matches what the data plane would output.
//
// A Predictor is NOT safe for concurrent use — it owns mutable scratch
// state. Create one per goroutine; construction is cheap relative to the
// model's lifetime (one pass over the parameters).

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/fixed"
)

// actKind is a DNN activation resolved at construction time so the inner
// loop never compares strings. Unknown strings (including "softmax",
// which arg-max skips) map to actNone, matching InferQ's default case.
type actKind uint8

const (
	actNone actKind = iota
	actReLU
	actSigmoid
	actTanh
)

func resolveAct(s string) actKind {
	switch s {
	case "relu":
		return actReLU
	case "sigmoid":
		return actSigmoid
	case "tanh":
		return actTanh
	}
	return actNone
}

// flatLayer is one DNN layer with weights quantized into a single
// row-major array: neuron o's weights are w[o*in : (o+1)*in].
type flatLayer struct {
	in, out int
	w       []int32
	b       []int32
	act     actKind
}

// Predictor holds quantized parameters and reusable inference buffers.
type Predictor struct {
	m       *Model
	f       fixed.Format
	one     int32
	hasNorm bool

	vbuf, nbuf []int32 // ping-pong activation buffers

	layers []flatLayer // DNN

	svmW   []int32 // SVM: row-major [class*feature]
	svmB   []int32
	scores []int32

	cq []int32 // KMeans: row-major [cluster*feature]

	// DTree as index-linked flat arrays. Node i tests feature treeFeat[i]
	// against the pre-quantized treeThr[i] and steps to
	// treeKids[i][sign(thr-x)]. Leaves store feat=0, thr=MaxInt32 and
	// self-loop through both kid slots, so the walk can run exactly
	// treeDepth iterations with no leaf test; the class answer is
	// treeCls[idx] wherever the walk lands.
	treeFeat  []int32
	treeThr   []int32
	treeKids  [][2]int32
	treeCls   []int32
	treeDepth int
}

// NewPredictor validates m and prepares its quantized flat parameters.
func NewPredictor(m *Model) (*Predictor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	f := m.Format
	p := &Predictor{m: m, f: f, one: f.Quantize(1), hasNorm: len(m.Mean) == m.Inputs}
	maxW := m.Inputs
	switch m.Kind {
	case DNN:
		p.layers = make([]flatLayer, len(m.Layers))
		for li, l := range m.Layers {
			fl := flatLayer{
				in:  l.In,
				out: l.Out,
				w:   make([]int32, l.Out*l.In),
				b:   make([]int32, l.Out),
				act: resolveAct(l.Activation),
			}
			for o := 0; o < l.Out; o++ {
				row := fl.w[o*l.In : (o+1)*l.In]
				for i, wv := range l.W[o] {
					row[i] = f.Quantize(wv)
				}
				fl.b[o] = f.Quantize(l.B[o])
			}
			p.layers[li] = fl
			if l.Out > maxW {
				maxW = l.Out
			}
		}
	case SVM:
		if len(m.SVM.B) != m.Outputs {
			return nil, fmt.Errorf("ir: SVM %q has %d biases, want %d", m.Name, len(m.SVM.B), m.Outputs)
		}
		p.svmW = make([]int32, m.Outputs*m.Inputs)
		p.svmB = make([]int32, m.Outputs)
		for k := 0; k < m.Outputs; k++ {
			row := p.svmW[k*m.Inputs : (k+1)*m.Inputs]
			for i, wv := range m.SVM.W[k] {
				row[i] = f.Quantize(wv)
			}
			p.svmB[k] = f.Quantize(m.SVM.B[k])
		}
		p.scores = make([]int32, m.Outputs)
	case KMeans:
		p.cq = make([]int32, len(m.Centroids)*m.Inputs)
		for k, c := range m.Centroids {
			row := p.cq[k*m.Inputs : (k+1)*m.Inputs]
			for i, cv := range c {
				row[i] = f.Quantize(cv)
			}
		}
	case DTree:
		p.flattenTree(m.Tree)
	}
	p.vbuf = make([]int32, maxW)
	p.nbuf = make([]int32, maxW)
	return p, nil
}

// flattenTree lowers the pointer-linked CART into the index-linked flat
// arrays, quantizing every threshold exactly once. A leaf's threshold is
// MaxInt32 so the sign-bit step always selects kid 0, which points back
// at the leaf itself — the walk parks there for the remaining iterations.
func (p *Predictor) flattenTree(root *TreeNode) {
	n := countNodes(root)
	p.treeFeat = make([]int32, 0, n)
	p.treeThr = make([]int32, 0, n)
	p.treeKids = make([][2]int32, 0, n)
	p.treeCls = make([]int32, 0, n)
	var walk func(node *TreeNode, d int) int32
	walk = func(node *TreeNode, d int) int32 {
		i := int32(len(p.treeFeat))
		p.treeFeat = append(p.treeFeat, 0)
		p.treeThr = append(p.treeThr, 0)
		p.treeKids = append(p.treeKids, [2]int32{})
		p.treeCls = append(p.treeCls, 0)
		if d > p.treeDepth {
			p.treeDepth = d
		}
		if node.Feature < 0 {
			p.treeThr[i] = math.MaxInt32
			p.treeKids[i] = [2]int32{i, i}
			p.treeCls[i] = int32(node.Class)
			return i
		}
		p.treeFeat[i] = int32(node.Feature)
		p.treeThr[i] = p.f.Quantize(node.Threshold)
		l := walk(node.Left, d+1)
		r := walk(node.Right, d+1)
		p.treeKids[i] = [2]int32{l, r}
		return i
	}
	walk(root, 0)
}

// Model returns the model this predictor was prepared from.
func (p *Predictor) Model() *Model { return p.m }

// Classify runs one quantized inference, reusing the predictor's buffers.
// The result equals p.Model().InferQ(x) bit-for-bit; the input slice is
// only read.
func (p *Predictor) Classify(x []float64) (int, error) {
	m := p.m
	if len(x) != m.Inputs {
		return 0, fmt.Errorf("ir: input has %d features, model %q wants %d", len(x), m.Name, m.Inputs)
	}
	f := p.f
	cur := p.vbuf[:m.Inputs]
	// Fused normalize+quantize: one sweep over the features. The divide
	// must stay a divide — a reciprocal multiply would round differently
	// and break bit-identity with InferQ's normalize-then-quantize.
	if p.hasNorm {
		mean, std := m.Mean, m.Std
		for i := range cur {
			cur[i] = f.Quantize((x[i] - mean[i]) / std[i])
		}
	} else {
		for i := range cur {
			cur[i] = f.Quantize(x[i])
		}
	}
	switch m.Kind {
	case DNN:
		nxt := p.nbuf
		for li := range p.layers {
			l := &p.layers[li]
			nv := nxt[:l.out]
			w, b, in := l.w, l.b, l.in
			// Activation hoisted out of the neuron loop: the per-neuron
			// op order (dot, saturating bias add, activation) is
			// unchanged, so each lane computes exactly InferQ's value.
			switch l.act {
			case actReLU:
				for o := range nv {
					nv[o] = fixed.ReLUQ(f.Add(f.DotQ(w[o*in:(o+1)*in], cur), b[o]))
				}
			case actSigmoid:
				for o := range nv {
					nv[o] = f.SigmoidQ(f.Add(f.DotQ(w[o*in:(o+1)*in], cur), b[o]))
				}
			case actTanh:
				one := p.one
				for o := range nv {
					acc := f.Add(f.DotQ(w[o*in:(o+1)*in], cur), b[o])
					if acc > one {
						acc = one
					}
					if acc < -one {
						acc = -one
					}
					nv[o] = acc
				}
			default:
				for o := range nv {
					nv[o] = f.Add(f.DotQ(w[o*in:(o+1)*in], cur), b[o])
				}
			}
			nxt = cur[:cap(cur)]
			cur = nv
		}
		return argMaxQ(cur), nil
	case SVM:
		in := m.Inputs
		for k := range p.scores {
			p.scores[k] = f.Add(f.DotQ(p.svmW[k*in:(k+1)*in], cur), p.svmB[k])
		}
		return argMaxQ(p.scores), nil
	case KMeans:
		in := m.Inputs
		bestK, bestD := 0, int64(-1)
		for k := 0; k*in < len(p.cq); k++ {
			row := p.cq[k*in : (k+1)*in]
			var d int64
			for i, cv := range row {
				diff := int64(cur[i]) - int64(cv)
				d += diff * diff
			}
			if bestD < 0 || d < bestD {
				bestD, bestK = d, k
			}
		}
		return bestK, nil
	case DTree:
		feat, thr, kids := p.treeFeat, p.treeThr, p.treeKids
		idx := int32(0)
		for d := 0; d < p.treeDepth; d++ {
			// b is the sign bit of thr-x: 0 when x <= thr (go left),
			// 1 when x > thr (go right) — the exact InferQ comparison
			// with no branch.
			xv := int64(cur[feat[idx]])
			b := uint64(int64(thr[idx])-xv) >> 63
			idx = kids[idx][b&1]
		}
		return int(p.treeCls[idx]), nil
	default:
		return 0, fmt.Errorf("ir: cannot infer kind %d", int(m.Kind))
	}
}

// PredictDataset classifies every row of d through the predictor's
// reusable buffers, writing into out (which must have d.Len() slots).
func (p *Predictor) PredictDataset(d *dataset.Dataset, out []int) error {
	if d.Features() != p.m.Inputs {
		return fmt.Errorf("ir: input has %d features, model %q wants %d", d.Features(), p.m.Name, p.m.Inputs)
	}
	if len(out) != d.Len() {
		return fmt.Errorf("ir: output slice has %d slots for %d samples", len(out), d.Len())
	}
	for i := range out {
		y, err := p.Classify(d.X.Row(i))
		if err != nil {
			return err
		}
		out[i] = y
	}
	return nil
}
