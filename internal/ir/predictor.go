package ir

// Predictor is a prepared quantized-inference engine over one Model: the
// trained parameters are quantized once at construction and every scratch
// buffer is preallocated, so a steady-state Classify call performs zero
// heap allocations. This is the serving-path counterpart of PredictQ's
// batch fast path — the deployment runtime (internal/serve) builds one
// Predictor per inference shard and streams live feature vectors through
// it at line rate.
//
// Classify is bit-identical to Model.InferQ for every algorithm family:
// the per-element operation order (quantize, wide-accumulator dot,
// saturating add, PWL activations) is exactly the generated hardware's,
// so a served answer matches what the data plane would output.
//
// A Predictor is NOT safe for concurrent use — it owns mutable scratch
// state. Create one per goroutine; construction is cheap relative to the
// model's lifetime (one pass over the parameters).

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fixed"
)

// Predictor holds quantized parameters and reusable inference buffers.
type Predictor struct {
	m   *Model
	f   fixed.Format
	one int32

	xbuf       []float64 // normalized-input staging
	vbuf, nbuf []int32   // ping-pong activation buffers

	wq [][][]int32 // DNN: quantized weights [layer][out][in]
	bq [][]int32   // DNN: quantized biases [layer][out]

	svmW   [][]int32 // SVM: quantized hyperplanes [class][feature]
	svmB   []int32
	scores []int32

	cq [][]int32 // KMeans: quantized centroids
}

// NewPredictor validates m and prepares its quantized parameters.
func NewPredictor(m *Model) (*Predictor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	f := m.Format
	p := &Predictor{m: m, f: f, one: f.Quantize(1), xbuf: make([]float64, m.Inputs)}
	maxW := m.Inputs
	switch m.Kind {
	case DNN:
		p.wq = make([][][]int32, len(m.Layers))
		p.bq = make([][]int32, len(m.Layers))
		for li, l := range m.Layers {
			p.wq[li] = make([][]int32, l.Out)
			p.bq[li] = make([]int32, l.Out)
			for o := 0; o < l.Out; o++ {
				p.wq[li][o] = f.QuantizeVec(l.W[o])
				p.bq[li][o] = f.Quantize(l.B[o])
			}
			if l.Out > maxW {
				maxW = l.Out
			}
		}
	case SVM:
		if len(m.SVM.B) != m.Outputs {
			return nil, fmt.Errorf("ir: SVM %q has %d biases, want %d", m.Name, len(m.SVM.B), m.Outputs)
		}
		p.svmW = make([][]int32, m.Outputs)
		p.svmB = make([]int32, m.Outputs)
		for k := 0; k < m.Outputs; k++ {
			p.svmW[k] = f.QuantizeVec(m.SVM.W[k])
			p.svmB[k] = f.Quantize(m.SVM.B[k])
		}
		p.scores = make([]int32, m.Outputs)
	case KMeans:
		p.cq = make([][]int32, len(m.Centroids))
		for k, c := range m.Centroids {
			p.cq[k] = f.QuantizeVec(c)
		}
	}
	p.vbuf = make([]int32, maxW)
	p.nbuf = make([]int32, maxW)
	return p, nil
}

// Model returns the model this predictor was prepared from.
func (p *Predictor) Model() *Model { return p.m }

// Classify runs one quantized inference, reusing the predictor's buffers.
// The result equals p.Model().InferQ(x) bit-for-bit; the input slice is
// only read.
func (p *Predictor) Classify(x []float64) (int, error) {
	m := p.m
	if len(x) != m.Inputs {
		return 0, fmt.Errorf("ir: input has %d features, model %q wants %d", len(x), m.Name, m.Inputs)
	}
	f := p.f
	in := x
	if len(m.Mean) == m.Inputs {
		for i := range p.xbuf {
			p.xbuf[i] = (x[i] - m.Mean[i]) / m.Std[i]
		}
		in = p.xbuf
	}
	cur := p.vbuf[:m.Inputs]
	for i := range cur {
		cur[i] = f.Quantize(in[i])
	}
	switch m.Kind {
	case DNN:
		nxt := p.nbuf
		for li, l := range m.Layers {
			nv := nxt[:l.Out]
			for o := 0; o < l.Out; o++ {
				acc := f.DotQ(p.wq[li][o], cur)
				acc = f.Add(acc, p.bq[li][o])
				switch l.Activation {
				case "relu":
					acc = fixed.ReLUQ(acc)
				case "sigmoid":
					acc = f.SigmoidQ(acc)
				case "tanh":
					if acc > p.one {
						acc = p.one
					}
					if acc < -p.one {
						acc = -p.one
					}
				}
				nv[o] = acc
			}
			nxt = cur[:cap(cur)]
			cur = nv
		}
		return argMaxQ(cur), nil
	case SVM:
		for k := range p.scores {
			p.scores[k] = f.Add(f.DotQ(p.svmW[k], cur), p.svmB[k])
		}
		return argMaxQ(p.scores), nil
	case KMeans:
		bestK, bestD := 0, int64(-1)
		for k, cq := range p.cq {
			var d int64
			for i := range cq {
				diff := int64(cur[i]) - int64(cq[i])
				d += diff * diff
			}
			if bestD < 0 || d < bestD {
				bestD, bestK = d, k
			}
		}
		return bestK, nil
	case DTree:
		n := m.Tree
		for n.Feature >= 0 {
			if cur[n.Feature] <= f.Quantize(n.Threshold) {
				n = n.Left
			} else {
				n = n.Right
			}
		}
		return n.Class, nil
	default:
		return 0, fmt.Errorf("ir: cannot infer kind %d", int(m.Kind))
	}
}

// PredictDataset classifies every row of d through the predictor's
// reusable buffers, writing into out (which must have d.Len() slots).
func (p *Predictor) PredictDataset(d *dataset.Dataset, out []int) error {
	if d.Features() != p.m.Inputs {
		return fmt.Errorf("ir: input has %d features, model %q wants %d", d.Features(), p.m.Name, p.m.Inputs)
	}
	if len(out) != d.Len() {
		return fmt.Errorf("ir: output slice has %d slots for %d samples", len(out), d.Len())
	}
	for i := range out {
		y, err := p.Classify(d.X.Row(i))
		if err != nil {
			return err
		}
		out[i] = y
	}
	return nil
}
