package ir

// Property test for the flat branchless predictors: fuzzed models of
// every algorithm family, driven with fuzzed (and adversarial) inputs,
// must classify bit-identically to the Model.InferQ reference. This is
// the serving-path half of the PR1 invariant — the flat layouts
// (row-major weights, enum activations, index-linked trees with
// pre-quantized thresholds, the fused normalize+quantize sweep) are pure
// layout changes, and this test is what pins that claim down.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fixed"
)

var propFormats = []fixed.Format{fixed.Q8_8, fixed.Q4_12, fixed.Q16_16}

var propActivations = []string{"relu", "sigmoid", "tanh", "softmax", ""}

// fuzzInput mixes typical values with adversarial ones: saturating
// magnitudes, exact zeros, NaN (quantizes to 0), and infinities
// (saturate at the format bounds).
func fuzzInput(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		switch rng.Intn(10) {
		case 0:
			x[i] = 0
		case 1:
			x[i] = float64(rng.Intn(2000)-1000) * 10 // saturation territory
		case 2:
			x[i] = math.NaN()
		case 3:
			x[i] = math.Inf(1 - 2*rng.Intn(2))
		default:
			x[i] = rng.NormFloat64() * 3
		}
	}
	return x
}

func fuzzNormalizer(rng *rand.Rand, m *Model) {
	if rng.Intn(2) == 0 {
		return
	}
	m.Mean = make([]float64, m.Inputs)
	m.Std = make([]float64, m.Inputs)
	for i := range m.Mean {
		m.Mean[i] = rng.NormFloat64()
		m.Std[i] = 0.25 + rng.Float64()*4 // strictly positive
	}
}

func fuzzDNN(rng *rand.Rand) *Model {
	inputs := 1 + rng.Intn(12)
	outputs := 2 + rng.Intn(5)
	layers := 1 + rng.Intn(3)
	m := &Model{
		Kind: DNN, Name: "fuzz-dnn", Inputs: inputs, Outputs: outputs,
		Format: propFormats[rng.Intn(len(propFormats))],
	}
	prev := inputs
	for li := 0; li < layers; li++ {
		out := 1 + rng.Intn(14)
		if li == layers-1 {
			out = outputs
		}
		l := Layer{
			In: prev, Out: out,
			W:          make([][]float64, out),
			B:          make([]float64, out),
			Activation: propActivations[rng.Intn(len(propActivations))],
		}
		for o := range l.W {
			l.W[o] = make([]float64, prev)
			for i := range l.W[o] {
				l.W[o][i] = rng.NormFloat64()
			}
			l.B[o] = rng.NormFloat64()
		}
		m.Layers = append(m.Layers, l)
		prev = out
	}
	fuzzNormalizer(rng, m)
	return m
}

func fuzzSVM(rng *rand.Rand) *Model {
	inputs := 1 + rng.Intn(12)
	outputs := 2 + rng.Intn(6)
	m := &Model{
		Kind: SVM, Name: "fuzz-svm", Inputs: inputs, Outputs: outputs,
		Format: propFormats[rng.Intn(len(propFormats))],
		SVM:    &SVMParams{W: make([][]float64, outputs), B: make([]float64, outputs)},
	}
	for k := range m.SVM.W {
		m.SVM.W[k] = make([]float64, inputs)
		for i := range m.SVM.W[k] {
			m.SVM.W[k][i] = rng.NormFloat64()
		}
		m.SVM.B[k] = rng.NormFloat64()
	}
	fuzzNormalizer(rng, m)
	return m
}

func fuzzKMeans(rng *rand.Rand) *Model {
	inputs := 1 + rng.Intn(12)
	outputs := 2 + rng.Intn(7)
	m := &Model{
		Kind: KMeans, Name: "fuzz-kmeans", Inputs: inputs, Outputs: outputs,
		Format:    propFormats[rng.Intn(len(propFormats))],
		Centroids: make([][]float64, outputs),
	}
	for k := range m.Centroids {
		m.Centroids[k] = make([]float64, inputs)
		for i := range m.Centroids[k] {
			m.Centroids[k][i] = rng.NormFloat64() * 2
		}
	}
	fuzzNormalizer(rng, m)
	return m
}

func fuzzTree(rng *rand.Rand, inputs, classes, depth int) *TreeNode {
	if depth <= 0 || rng.Intn(4) == 0 {
		return &TreeNode{Feature: -1, Class: rng.Intn(classes)}
	}
	return &TreeNode{
		Feature:   rng.Intn(inputs),
		Threshold: rng.NormFloat64() * 2,
		Left:      fuzzTree(rng, inputs, classes, depth-1),
		Right:     fuzzTree(rng, inputs, classes, depth-1),
	}
}

func fuzzDTree(rng *rand.Rand) *Model {
	inputs := 1 + rng.Intn(12)
	outputs := 2 + rng.Intn(5)
	m := &Model{
		Kind: DTree, Name: "fuzz-dtree", Inputs: inputs, Outputs: outputs,
		Format: propFormats[rng.Intn(len(propFormats))],
		Tree:   fuzzTree(rng, inputs, outputs, 1+rng.Intn(8)),
	}
	fuzzNormalizer(rng, m)
	return m
}

// TestPredictorMatchesInferQFuzzed is the bit-identity property test:
// for every fuzzed model and input, the flat predictor and the reference
// interpreter must agree exactly — same class, same error disposition.
func TestPredictorMatchesInferQFuzzed(t *testing.T) {
	gens := map[string]func(*rand.Rand) *Model{
		"dnn":    fuzzDNN,
		"svm":    fuzzSVM,
		"kmeans": fuzzKMeans,
		"dtree":  fuzzDTree,
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 60; trial++ {
				m := gen(rng)
				if err := m.Validate(); err != nil {
					t.Fatalf("trial %d: generator produced invalid model: %v", trial, err)
				}
				p, err := NewPredictor(m)
				if err != nil {
					t.Fatalf("trial %d: NewPredictor: %v", trial, err)
				}
				for q := 0; q < 40; q++ {
					x := fuzzInput(rng, m.Inputs)
					want, werr := m.InferQ(x)
					got, gerr := p.Classify(x)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("trial %d/%d: error mismatch: InferQ=%v Predictor=%v", trial, q, werr, gerr)
					}
					if werr == nil && got != want {
						t.Fatalf("trial %d/%d: Predictor=%d InferQ=%d (format %v, x=%v)",
							trial, q, got, want, m.Format, x)
					}
				}
				// Wrong-length inputs must error on both paths.
				bad := make([]float64, m.Inputs+1)
				if _, err := p.Classify(bad); err == nil {
					t.Fatalf("trial %d: wrong-length input must error", trial)
				}
			}
		})
	}
}

// TestPredictorTreeDegenerate pins the flat-tree edge cases the fuzzer
// is unlikely to isolate: a bare leaf root (the walk runs zero steps), a
// maximally unbalanced chain (the walk parks on the leaf's self-loop for
// the remaining iterations), and thresholds at the saturation bound.
func TestPredictorTreeDegenerate(t *testing.T) {
	leaf := func(c int) *TreeNode { return &TreeNode{Feature: -1, Class: c} }
	cases := []struct {
		name string
		tree *TreeNode
	}{
		{"leaf-root", leaf(3)},
		{"left-chain", &TreeNode{Feature: 0, Threshold: 0,
			Left: &TreeNode{Feature: 1, Threshold: -1,
				Left:  &TreeNode{Feature: 0, Threshold: -2, Left: leaf(1), Right: leaf(2)},
				Right: leaf(3)},
			Right: leaf(0)}},
		{"saturated-threshold", &TreeNode{Feature: 0, Threshold: 1e9,
			Left: leaf(1), Right: leaf(2)}},
		{"negative-saturated", &TreeNode{Feature: 0, Threshold: -1e9,
			Left: leaf(1), Right: leaf(2)}},
	}
	xs := [][]float64{{0, 0}, {5, -5}, {-5, 5}, {1e9, -1e9}, {math.NaN(), 0}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Model{Kind: DTree, Name: "deg", Inputs: 2, Outputs: 4,
				Format: fixed.Q8_8, Tree: tc.tree}
			p, err := NewPredictor(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				want, _ := m.InferQ(x)
				got, err := p.Classify(x)
				if err != nil || got != want {
					t.Fatalf("x=%v: Predictor=%d,%v InferQ=%d", x, got, err, want)
				}
			}
		})
	}
}

// TestPredictorReuseIsStateless: back-to-back Classify calls through the
// shared scratch buffers must not leak state between requests — the same
// input always produces the same class, interleaved with other inputs.
func TestPredictorReuseIsStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := fuzzDNN(rng)
	p, err := NewPredictor(m)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 16)
	want := make([]int, len(xs))
	for i := range xs {
		xs[i] = fuzzInput(rng, m.Inputs)
		if want[i], err = p.Classify(xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 50; round++ {
		i := rng.Intn(len(xs))
		got, err := p.Classify(xs[i])
		if err != nil || got != want[i] {
			t.Fatalf("round %d input %d: got %d,%v want %d", round, i, got, err, want[i])
		}
	}
}

func BenchmarkPredictorClassifyDNN(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := &Model{Kind: DNN, Name: "bench", Inputs: 7, Outputs: 2, Format: fixed.Q8_8}
	prev := 7
	for _, out := range []int{12, 6, 2} {
		l := Layer{In: prev, Out: out, W: make([][]float64, out), B: make([]float64, out), Activation: "relu"}
		for o := range l.W {
			l.W[o] = make([]float64, prev)
			for i := range l.W[o] {
				l.W[o][i] = rng.NormFloat64()
			}
		}
		m.Layers = append(m.Layers, l)
		prev = out
	}
	p, err := NewPredictor(m)
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictorClassifyDTree(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := &Model{Kind: DTree, Name: "bench", Inputs: 8, Outputs: 4,
		Format: fixed.Q8_8, Tree: fuzzTree(rng, 8, 4, 10)}
	p, err := NewPredictor(m)
	if err != nil {
		b.Fatal(err)
	}
	x := fuzzInput(rng, 8)
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			x[i] = 0.5
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Classify(x); err != nil {
			b.Fatal(err)
		}
	}
}
