package validate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/ir"
)

// Repro is a minimized, self-contained divergence reproducer: the model
// (full IR JSON, so the artifacts can be regenerated), the fingerprint of
// the dataset it was trained on, and the smallest failing input the
// minimizer found, with every evaluator's answer. Repros are written as
// JSON artifacts by the harness and replayed verbatim by the corpus
// regression test and the nightly fuzz job.
type Repro struct {
	Version     int             `json:"version"`
	Model       json.RawMessage `json:"model"`
	DatasetFP   string          `json:"dataset_fingerprint,omitempty"`
	Input       []float64       `json:"input"`
	Results     []Result        `json:"results"`
	MinimizedBy int             `json:"minimized_steps"`
	Note        string          `json:"note,omitempty"`
}

const reproVersion = 1

// NewRepro minimizes the divergence and packages it with the model.
func NewRepro(m *ir.Model, evals []Evaluator, d Divergence, datasetFP string) (*Repro, error) {
	var mb bytes.Buffer
	if err := m.WriteJSON(&mb); err != nil {
		return nil, fmt.Errorf("validate: repro: %w", err)
	}
	input, steps := Minimize(evals, d.Input)
	final, _ := checkOne(evals, input)
	return &Repro{
		Version:     reproVersion,
		Model:       json.RawMessage(mb.Bytes()),
		DatasetFP:   datasetFP,
		Input:       input,
		Results:     final.Results,
		MinimizedBy: steps,
	}, nil
}

// Minimize greedily simplifies a diverging input while it keeps
// diverging: first zeroing whole features, then rounding the survivors
// to fewer decimal digits. The result is the witness a human debugs, so
// smaller and rounder wins; steps counts accepted simplifications.
func Minimize(evals []Evaluator, input []float64) ([]float64, int) {
	diverges := func(x []float64) bool {
		_, bad := checkOne(evals, x)
		return bad
	}
	x := append([]float64{}, input...)
	if !diverges(x) {
		return x, 0
	}
	steps := 0
	for i := range x {
		if x[i] == 0 {
			continue
		}
		old := x[i]
		x[i] = 0
		if diverges(x) {
			steps++
		} else {
			x[i] = old
		}
	}
	for _, digits := range []int{0, 1, 2, 4} {
		scale := math.Pow(10, float64(digits))
		for i := range x {
			rounded := math.Round(x[i]*scale) / scale
			if rounded == x[i] {
				continue
			}
			old := x[i]
			x[i] = rounded
			if diverges(x) {
				steps++
			} else {
				x[i] = old
			}
		}
	}
	return x, steps
}

// Write serializes the repro as indented JSON.
func (r *Repro) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the repro to path.
func (r *Repro) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRepro parses a repro artifact.
func ReadRepro(rd io.Reader) (*Repro, error) {
	var r Repro
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("validate: bad repro artifact: %w", err)
	}
	if r.Version != reproVersion {
		return nil, fmt.Errorf("validate: repro version %d not supported", r.Version)
	}
	if len(r.Model) == 0 || len(r.Input) == 0 {
		return nil, fmt.Errorf("validate: repro artifact missing model or input")
	}
	return &r, nil
}

// ReadReproFile reads a repro artifact from path.
func ReadReproFile(path string) (*Repro, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRepro(f)
}

// DecodeModel decodes the embedded IR model.
func (r *Repro) DecodeModel() (*ir.Model, error) {
	return ir.ReadJSON(bytes.NewReader(r.Model))
}

// Replay regenerates the artifacts from the embedded model and re-runs
// the recorded input through every evaluator. It returns the divergence
// (when the bug still reproduces) and whether it reproduced — a fixed
// codegen bug yields reproduced=false, which is what the corpus
// regression test asserts for checked-in repros of fixed bugs... and the
// opposite for seeds that must stay green.
func (r *Repro) Replay() (Divergence, bool, error) {
	m, err := r.DecodeModel()
	if err != nil {
		return Divergence{}, false, err
	}
	evals, err := Evaluators(m)
	if err != nil {
		return Divergence{}, false, err
	}
	d, diverged := checkOne(evals, r.Input)
	return d, diverged, nil
}
