package validate

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/fixed"
)

// P4Interp executes an emitted P4 artifact. It is constructed from the
// source text alone — the same representation the MAT backend ships — so
// whatever function the artifact encodes is what runs; there is no back
// channel to the model that generated it. The interpreter implements the
// operational semantics documented in docs/validation.md: per-class wide
// MAC accumulators with a single writeback (SVM), exact 64-bit squared
// distances (KMeans), and level-table walks over quantized range entries
// (trees), all in the Q format declared by the artifact header.
type P4Interp struct {
	format  fixed.Format
	inputs  int
	outputs int
	mean    []float64
	std     []float64
	kind    string // "svm", "kmeans", "tree"

	features []string // header field names, in declaration order

	// svm
	macOrder []macTable // apply-order MAC tables
	bias     []int32

	// kmeans
	centroids [][]int32

	// tree
	levels []levelTable // apply-order level tables
}

type macTable struct {
	feature int     // index into the input vector
	weights []int32 // per-class quantized words
}

type levelTable struct {
	entries []treeEntry
}

type treeEntry struct {
	node    int
	feature int // -1 for set_leaf
	lo, hi  int32
	action  string // "goto_node" or "set_leaf"
	param   int
}

var (
	p4HeaderRE  = regexp.MustCompile(`// inputs=(\d+) outputs=(\d+) format=(\S+)`)
	p4NormRE    = regexp.MustCompile(`// normalize (\S+) mean=(\S+) std=(\S+)`)
	p4FieldRE   = regexp.MustCompile(`^\s*bit<\d+>\s+(\w+);`)
	p4TableRE   = regexp.MustCompile(`^\s*table\s+(\w+)\s*\{`)
	p4KeyRE     = regexp.MustCompile(`hdr\.features\.(\w+):`)
	p4ApplyRE   = regexp.MustCompile(`^\s*(\w+)\.apply\(\);`)
	p4WildRE    = regexp.MustCompile(`^\s*\(_\)\s*:\s*(\w+)\(([^)]*)\);`)
	p4GotoRE    = regexp.MustCompile(`^\s*\((\d+),\s*f(\d+),\s*(-?\d+)\.\.(-?\d+)\)\s*:\s*goto_node\((\d+)\);`)
	p4LeafRE    = regexp.MustCompile(`^\s*\((\d+),\s*_,\s*_\)\s*:\s*set_leaf\((\d+)\);`)
	p4ControlRE = regexp.MustCompile(`control\s+(\w+)Ingress`)
)

// NewP4Interp parses the emitted P4 source into an executable form.
func NewP4Interp(source string) (*P4Interp, error) {
	p := &P4Interp{}
	hm := p4HeaderRE.FindStringSubmatch(source)
	if hm == nil {
		return nil, fmt.Errorf("validate: p4 artifact has no inputs/outputs/format header")
	}
	p.inputs, _ = strconv.Atoi(hm[1])
	p.outputs, _ = strconv.Atoi(hm[2])
	var err error
	if p.format, err = fixed.ParseFormat(hm[3]); err != nil {
		return nil, fmt.Errorf("validate: p4 artifact: %w", err)
	}
	cm := p4ControlRE.FindStringSubmatch(source)
	if cm == nil {
		return nil, fmt.Errorf("validate: p4 artifact has no Ingress control")
	}
	p.kind = strings.ToLower(cm[1])

	for _, nm := range p4NormRE.FindAllStringSubmatch(source, -1) {
		mean, err1 := strconv.ParseFloat(nm[2], 64)
		std, err2 := strconv.ParseFloat(nm[3], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("validate: p4 artifact: bad normalize line %q", nm[0])
		}
		p.mean = append(p.mean, mean)
		p.std = append(p.std, std)
	}
	if len(p.mean) != 0 && len(p.mean) != p.inputs {
		return nil, fmt.Errorf("validate: p4 artifact: %d normalize lines for %d inputs", len(p.mean), p.inputs)
	}

	// First pass: header field order, table blocks (key feature + const
	// entries), and the apply order.
	type tableBlock struct {
		name    string
		keyFeat string
		wildAct string
		wild    []int32
		tree    []treeEntry
	}
	tables := map[string]*tableBlock{}
	var applyOrder []string
	var cur *tableBlock
	inHeader := false
	depth := 0
	for _, line := range strings.Split(source, "\n") {
		switch {
		case strings.Contains(line, "header features_t {"):
			inHeader = true
			continue
		case inHeader:
			if strings.Contains(line, "}") {
				inHeader = false
				continue
			}
			if fm := p4FieldRE.FindStringSubmatch(line); fm != nil {
				p.features = append(p.features, fm[1])
			}
			continue
		}
		if tm := p4TableRE.FindStringSubmatch(line); tm != nil {
			cur = &tableBlock{name: tm[1]}
			tables[tm[1]] = cur
			depth = 1
			continue
		}
		if cur != nil {
			depth += strings.Count(line, "{") - strings.Count(line, "}")
			if km := p4KeyRE.FindStringSubmatch(line); km != nil {
				cur.keyFeat = km[1]
			}
			if wm := p4WildRE.FindStringSubmatch(line); wm != nil {
				cur.wildAct = wm[1]
				cur.wild, err = parseWords(wm[2])
				if err != nil {
					return nil, fmt.Errorf("validate: p4 artifact: table %s: %w", cur.name, err)
				}
			}
			if gm := p4GotoRE.FindStringSubmatch(line); gm != nil {
				e := treeEntry{action: "goto_node"}
				e.node, _ = strconv.Atoi(gm[1])
				e.feature, _ = strconv.Atoi(gm[2])
				lo, _ := strconv.ParseInt(gm[3], 10, 64)
				hi, _ := strconv.ParseInt(gm[4], 10, 64)
				e.lo, e.hi = int32(lo), int32(hi)
				e.param, _ = strconv.Atoi(gm[5])
				cur.tree = append(cur.tree, e)
			}
			if lm := p4LeafRE.FindStringSubmatch(line); lm != nil {
				e := treeEntry{action: "set_leaf", feature: -1}
				e.node, _ = strconv.Atoi(lm[1])
				e.param, _ = strconv.Atoi(lm[2])
				cur.tree = append(cur.tree, e)
			}
			if depth <= 0 {
				cur = nil
			}
			continue
		}
		if am := p4ApplyRE.FindStringSubmatch(line); am != nil {
			applyOrder = append(applyOrder, am[1])
		}
	}
	if len(p.features) != p.inputs {
		return nil, fmt.Errorf("validate: p4 artifact declares %d feature fields for %d inputs", len(p.features), p.inputs)
	}
	featIndex := map[string]int{}
	for i, name := range p.features {
		featIndex[name] = i
	}

	// Second pass: assemble the executable form in apply order.
	for _, name := range applyOrder {
		tb, ok := tables[name]
		if !ok {
			return nil, fmt.Errorf("validate: p4 artifact applies undeclared table %q", name)
		}
		switch {
		case strings.HasPrefix(name, "svm_mac_"):
			fi, ok := featIndex[tb.keyFeat]
			if !ok {
				return nil, fmt.Errorf("validate: p4 artifact: table %s keys on unknown feature %q", name, tb.keyFeat)
			}
			if len(tb.wild) != p.outputs {
				return nil, fmt.Errorf("validate: p4 artifact: table %s carries %d weight words for %d classes", name, len(tb.wild), p.outputs)
			}
			p.macOrder = append(p.macOrder, macTable{feature: fi, weights: tb.wild})
		case name == "svm_bias":
			if len(tb.wild) != p.outputs {
				return nil, fmt.Errorf("validate: p4 artifact: bias carries %d words for %d classes", len(tb.wild), p.outputs)
			}
			p.bias = tb.wild
		case strings.HasPrefix(name, "cluster_"):
			if len(tb.wild) != p.inputs {
				return nil, fmt.Errorf("validate: p4 artifact: table %s carries %d centroid words for %d inputs", name, len(tb.wild), p.inputs)
			}
			p.centroids = append(p.centroids, tb.wild)
		case strings.HasPrefix(name, "tree_level_"):
			p.levels = append(p.levels, levelTable{entries: tb.tree})
		case name == "svm_decide" || name == "kmeans_decide":
			// Selection stages carry no entries; semantics are fixed
			// (first strict max / first strict min).
		default:
			return nil, fmt.Errorf("validate: p4 artifact applies unrecognized table %q", name)
		}
	}
	switch p.kind {
	case "svm":
		if len(p.macOrder) != p.inputs || p.bias == nil {
			return nil, fmt.Errorf("validate: p4 svm artifact incomplete (%d MAC tables, bias %v)", len(p.macOrder), p.bias != nil)
		}
	case "kmeans":
		if len(p.centroids) != p.outputs {
			return nil, fmt.Errorf("validate: p4 kmeans artifact has %d clusters, want %d", len(p.centroids), p.outputs)
		}
	case "tree":
		if len(p.levels) == 0 {
			return nil, fmt.Errorf("validate: p4 tree artifact has no level tables")
		}
	default:
		return nil, fmt.Errorf("validate: p4 artifact has unsupported control kind %q", p.kind)
	}
	return p, nil
}

func parseWords(list string) ([]int32, error) {
	var out []int32
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad parameter word %q", part)
		}
		out = append(out, int32(v))
	}
	return out, nil
}

// Inputs returns the artifact's declared feature width.
func (p *P4Interp) Inputs() int { return p.inputs }

// Classify executes the artifact over one feature vector, producing the
// class index the data plane would emit.
func (p *P4Interp) Classify(x []float64) (int, error) {
	if len(x) != p.inputs {
		return 0, fmt.Errorf("validate: input has %d features, artifact wants %d", len(x), p.inputs)
	}
	f := p.format
	xn := x
	if len(p.mean) == p.inputs {
		xn = make([]float64, len(x))
		for i := range x {
			xn[i] = (x[i] - p.mean[i]) / p.std[i]
		}
	}
	v := f.QuantizeVec(xn)
	switch p.kind {
	case "svm":
		acc := make([]int64, p.outputs)
		for _, mt := range p.macOrder {
			for c := 0; c < p.outputs; c++ {
				acc[c] += int64(mt.weights[c]) * int64(v[mt.feature])
			}
		}
		scores := make([]int32, p.outputs)
		for c := 0; c < p.outputs; c++ {
			scores[c] = f.Add(f.Writeback(acc[c]), p.bias[c])
		}
		best, bi := scores[0], 0
		for i, s := range scores {
			if s > best {
				best, bi = s, i
			}
		}
		return bi, nil
	case "kmeans":
		bestK, bestD := 0, int64(-1)
		for k, cq := range p.centroids {
			var d int64
			for i := range cq {
				diff := int64(v[i]) - int64(cq[i])
				d += diff * diff
			}
			if bestD < 0 || d < bestD {
				bestD, bestK = d, k
			}
		}
		return bestK, nil
	case "tree":
		node := 0
		for _, lvl := range p.levels {
			if node < 0 {
				break
			}
			matched := false
			for _, e := range lvl.entries {
				if e.node != node {
					continue
				}
				if e.action == "set_leaf" {
					return e.param, nil
				}
				if e.feature >= p.inputs {
					return 0, fmt.Errorf("validate: p4 tree entry selects feature %d of %d", e.feature, p.inputs)
				}
				if v[e.feature] >= e.lo && v[e.feature] <= e.hi {
					node = e.param
					matched = true
					break
				}
			}
			if !matched {
				return 0, fmt.Errorf("validate: p4 tree walk stuck at node %d (no matching entry)", node)
			}
		}
		return 0, fmt.Errorf("validate: p4 tree walk ran out of levels at node %d", node)
	}
	return 0, fmt.Errorf("validate: p4 artifact kind %q not executable", p.kind)
}
