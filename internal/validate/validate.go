// Package validate is the translation-validation layer: it checks that
// the artifacts the code generators emit compute the same function as the
// model IR they were generated from.
//
// The paper's pipeline (Figure 4) lowers a trained model through the IR
// into per-platform programs — P4 match-action tables for Tofino,
// Spatial dataflow for the Taurus MapReduce fabric — and the whole value
// proposition rests on those programs classifying packets the way the
// trained model does. This package closes that loop in the Alive2 style:
// each backend gets an executable interpreter over the *shipped artifact
// text* (not a private AST — the same string the backend returns is what
// gets parsed and run), and a differential harness drives the IR's
// quantized reference semantics (ir.Model.InferQ), the P4 interpreter,
// the Spatial interpreter, and the Taurus fabric simulator with
// identical fixed-seed traffic, requiring bit-identical class outputs.
// On divergence it emits a minimized repro artifact (see repro.go) that
// replays as a regression test.
//
// Evaluator coverage per model family:
//
//	svm, kmeans, dtree:  InferQ + P4 + Spatial        (sim is DNN-only)
//	dnn:                 InferQ + Spatial + Sim       (Tofino rejects DNNs)
//
// Random forests are composed of per-tree models upstream of the IR, so
// the harness sees their individual trees.
package validate

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/p4gen"
	"repro/internal/spatialgen"
	"repro/internal/taurus"
)

// Evaluator is one implementation of the model's classification function.
type Evaluator struct {
	Name     string
	Classify func(x []float64) (int, error)
}

// Result is one evaluator's answer for one input.
type Result struct {
	Evaluator string `json:"evaluator"`
	Class     int    `json:"class"`
	Err       string `json:"error,omitempty"`
}

// Divergence records one input on which the evaluators disagreed.
type Divergence struct {
	Input   []float64 `json:"input"`
	Results []Result  `json:"results"`
}

func (d Divergence) String() string {
	s := fmt.Sprintf("input %v:", d.Input)
	for _, r := range d.Results {
		if r.Err != "" {
			s += fmt.Sprintf(" %s=error(%s)", r.Evaluator, r.Err)
		} else {
			s += fmt.Sprintf(" %s=%d", r.Evaluator, r.Class)
		}
	}
	return s
}

// Report summarizes a differential run.
type Report struct {
	Evaluators  []string     `json:"evaluators"`
	Inputs      int          `json:"inputs"`
	Divergences []Divergence `json:"divergences,omitempty"`
}

// OK reports whether every evaluator agreed on every input.
func (r Report) OK() bool { return len(r.Divergences) == 0 }

func (r Report) String() string {
	if r.OK() {
		return fmt.Sprintf("validate: %d evaluators agree on %d inputs", len(r.Evaluators), r.Inputs)
	}
	return fmt.Sprintf("validate: %d/%d inputs diverge (first: %s)",
		len(r.Divergences), r.Inputs, r.Divergences[0])
}

// Evaluators builds the evaluator set for a model: the IR reference plus
// an interpreter over each artifact the backends would ship for it, plus
// the fabric simulator for DNNs. Generation or parse errors surface
// immediately — an artifact the interpreter cannot parse is as broken as
// one that misclassifies.
func Evaluators(m *ir.Model) ([]Evaluator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	evals := []Evaluator{{Name: "ir", Classify: m.InferQ}}

	if m.Kind != ir.DNN {
		prog, err := p4gen.Generate(m)
		if err != nil {
			return nil, fmt.Errorf("validate: p4gen: %w", err)
		}
		interp, err := NewP4Interp(prog.Source)
		if err != nil {
			return nil, fmt.Errorf("validate: p4 artifact unparseable: %w", err)
		}
		evals = append(evals, Evaluator{Name: "p4", Classify: interp.Classify})
	}

	sprog, err := spatialgen.Generate(m)
	if err != nil {
		return nil, fmt.Errorf("validate: spatialgen: %w", err)
	}
	sinterp, err := NewSpatialInterp(sprog.Source)
	if err != nil {
		return nil, fmt.Errorf("validate: spatial artifact unparseable: %w", err)
	}
	evals = append(evals, Evaluator{Name: "spatial", Classify: sinterp.Classify})

	if m.Kind == ir.DNN {
		sim, err := taurus.NewSim(taurus.DefaultGrid(), m)
		if err != nil {
			return nil, fmt.Errorf("validate: taurus sim: %w", err)
		}
		evals = append(evals, Evaluator{Name: "sim", Classify: func(x []float64) (int, error) {
			c, _, err := sim.Process(x)
			return c, err
		}})
	}
	return evals, nil
}

// Check runs every evaluator over every input and reports divergences.
// The first evaluator is the reference; an input diverges when any
// evaluator returns a different class (or an error) than the reference.
func Check(evals []Evaluator, inputs [][]float64) Report {
	rep := Report{Inputs: len(inputs)}
	for _, e := range evals {
		rep.Evaluators = append(rep.Evaluators, e.Name)
	}
	for _, x := range inputs {
		if d, diverged := checkOne(evals, x); diverged {
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	return rep
}

func checkOne(evals []Evaluator, x []float64) (Divergence, bool) {
	d := Divergence{Input: x}
	diverged := false
	for i, e := range evals {
		c, err := e.Classify(x)
		r := Result{Evaluator: e.Name, Class: c}
		if err != nil {
			r.Err = err.Error()
			diverged = true
		} else if i > 0 && len(d.Results) > 0 && d.Results[0].Err == "" && c != d.Results[0].Class {
			diverged = true
		}
		d.Results = append(d.Results, r)
	}
	if len(d.Results) > 0 && d.Results[0].Err != "" {
		diverged = true
	}
	return d, diverged
}

// CheckModel generates the evaluator set for m and drives it with
// deterministic traffic derived from seed: n pseudorandom vectors over
// the model's representable range plus the quantization-boundary probes
// from BoundaryInputs.
func CheckModel(m *ir.Model, seed uint64, n int) (Report, error) {
	evals, err := Evaluators(m)
	if err != nil {
		return Report{}, err
	}
	inputs := Traffic(m, seed, n)
	return Check(evals, inputs), nil
}

// Traffic builds the fixed-seed input set for a model: n splitmix64
// vectors spanning the format's representable range, plus boundary
// probes (exact quantization steps, saturation rails, zero) that
// historically flush rounding divergences ordinary random traffic
// misses.
func Traffic(m *ir.Model, seed uint64, n int) [][]float64 {
	rng := splitmix64(seed)
	f := m.Format
	span := float64(int64(1) << uint(f.IntBits))
	inputs := make([][]float64, 0, n+8)
	for i := 0; i < n; i++ {
		x := make([]float64, m.Inputs)
		for j := range x {
			// Uniform over [-span, span) — covers the saturating edges.
			x[j] = (rng.float()*2 - 1) * span
		}
		inputs = append(inputs, x)
	}
	inputs = append(inputs, BoundaryInputs(m)...)
	return inputs
}

// BoundaryInputs returns deterministic probe vectors at the numeric
// edges of the model's format: all-zero, the saturation rails, one LSB
// above/below zero, and (for trees) each split threshold ± half an LSB,
// where round-to-nearest flips sides.
func BoundaryInputs(m *ir.Model) [][]float64 {
	f := m.Format
	lsb := 1 / float64(int64(1)<<uint(f.FracBits))
	rail := float64(int64(1) << uint(f.IntBits))
	uniform := func(v float64) []float64 {
		x := make([]float64, m.Inputs)
		for i := range x {
			x[i] = v
		}
		return x
	}
	probes := [][]float64{
		uniform(0),
		uniform(rail), uniform(-rail),
		uniform(lsb / 2), uniform(-lsb / 2),
		uniform(lsb), uniform(-lsb),
	}
	if m.Kind == ir.DTree && m.Tree != nil {
		var walk func(n *ir.TreeNode)
		walk = func(n *ir.TreeNode) {
			if n == nil || n.Feature < 0 {
				return
			}
			for _, delta := range []float64{-lsb / 2, 0, lsb / 2} {
				x := uniform(0)
				// Undo the normalizer so the probe lands on the
				// threshold in the quantized domain.
				v := n.Threshold + delta
				if len(m.Mean) == m.Inputs {
					v = v*m.Std[n.Feature] + m.Mean[n.Feature]
				}
				x[n.Feature] = v
				probes = append(probes, x)
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(m.Tree)
	}
	return probes
}

// splitmix64 is the deterministic traffic source — tiny, seedable, and
// identical across platforms (no dependence on math/rand stream
// versioning).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (s *splitmix64) float() float64 {
	return float64(s.next()>>11) / float64(int64(1)<<53)
}
