package validate

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
	"repro/internal/p4gen"
	"repro/internal/spatialgen"
)

// Representative production-shaped models, one per family.

func svmModel() *ir.Model {
	return &ir.Model{Kind: ir.SVM, Name: "tc_svm", Inputs: 4, Outputs: 3, Format: fixed.Q8_8,
		Mean: []float64{0.5, -1.25, 3, 0.0625},
		Std:  []float64{2, 0.5, 1.5, 0.125},
		SVM: &ir.SVMParams{
			W: [][]float64{
				{0.75, -1.5, 0.25, 2},
				{-0.5, 1.125, -2.25, 0.875},
				{1.0625, 0.5, -0.75, -1.25},
			},
			B: []float64{0.5, -0.25, 0.125},
		}}
}

func kmeansModel() *ir.Model {
	return &ir.Model{Kind: ir.KMeans, Name: "clu", Inputs: 3, Outputs: 4, Format: fixed.Q4_12,
		Centroids: [][]float64{
			{0.5, -0.25, 1.75},
			{-1.5, 0.875, -0.0625},
			{2.25, 2.25, 2.25},
			{0, 0, 0},
		}}
}

func treeModel() *ir.Model {
	return &ir.Model{Kind: ir.DTree, Name: "ids_tree", Inputs: 3, Outputs: 3, Format: fixed.Q8_8,
		Mean: []float64{1, 2, 3},
		Std:  []float64{0.5, 2, 1},
		Tree: &ir.TreeNode{Feature: 1, Threshold: 0.375,
			Left: &ir.TreeNode{Feature: 0, Threshold: -1.5,
				Left:  &ir.TreeNode{Feature: -1, Class: 0},
				Right: &ir.TreeNode{Feature: -1, Class: 2}},
			Right: &ir.TreeNode{Feature: 2, Threshold: 126.5,
				Left:  &ir.TreeNode{Feature: -1, Class: 1},
				Right: &ir.TreeNode{Feature: -1, Class: 0}}}}
}

func dnnModel() *ir.Model {
	m := &ir.Model{Kind: ir.DNN, Name: "anomaly", Inputs: 5, Outputs: 2, Format: fixed.Q8_8,
		Mean: []float64{0, 1, -1, 0.5, 2},
		Std:  []float64{1, 2, 0.25, 1.5, 3}}
	l1 := ir.Layer{In: 5, Out: 6, Activation: "relu"}
	l1.W = [][]float64{
		{0.5, -0.25, 1, 0.125, -0.75},
		{-1.5, 0.875, 0.0625, 2, -0.5},
		{0.25, 0.25, -0.25, -0.25, 0.5},
		{1.75, -2, 0.375, 0.625, -1},
		{-0.125, 0.5, 1.25, -0.875, 0.75},
		{2.5, -1.125, 0.1875, -0.0625, 1.5},
	}
	l1.B = []float64{0.5, -0.5, 0.25, 0, -0.125, 1}
	l2 := ir.Layer{In: 6, Out: 2, Activation: "softmax"}
	l2.W = [][]float64{
		{0.75, -0.5, 1.125, 0.25, -1.25, 0.5},
		{-0.625, 1, 0.375, -0.75, 0.875, -0.25},
	}
	l2.B = []float64{0.125, -0.375}
	m.Layers = []ir.Layer{l1, l2}
	return m
}

func allModels() []*ir.Model {
	return []*ir.Model{svmModel(), kmeansModel(), treeModel(), dnnModel()}
}

// The tentpole invariant: for every model family, every evaluator —
// InferQ, the P4 interpreter, the Spatial interpreter, the fabric sim —
// classifies identical fixed-seed traffic bit-identically.
func TestDifferentialAllFamilies(t *testing.T) {
	for _, m := range allModels() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			rep, err := CheckModel(m, 0xda7a_5eed, 512)
			if err != nil {
				t.Fatal(err)
			}
			wantEvals := 3
			if len(rep.Evaluators) != wantEvals {
				t.Fatalf("evaluators = %v, want %d", rep.Evaluators, wantEvals)
			}
			if !rep.OK() {
				t.Fatalf("diverged on %d/%d inputs; first: %s",
					len(rep.Divergences), rep.Inputs, rep.Divergences[0])
			}
		})
	}
}

// Activation coverage: sigmoid and tanh PWL stages must agree across
// Spatial and the sim, not just relu/softmax.
func TestDifferentialDNNActivations(t *testing.T) {
	for _, act := range []string{"sigmoid", "tanh"} {
		m := dnnModel()
		m.Layers[0].Activation = act
		rep, err := CheckModel(m, 31337, 256)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("%s diverged: %s", act, rep.Divergences[0])
		}
	}
}

// An injected codegen bug must be caught. Corrupt each artifact the way
// a real emitter bug would (a flipped weight word, a shifted threshold)
// and require the harness to flag it.
func TestCorruptedP4ArtifactDetected(t *testing.T) {
	m := svmModel()
	prog, err := p4gen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the sign of one weight word in a MAC entry.
	src := strings.Replace(prog.Source, "(_) : mac_0(", "(_) : mac_0(-", 1)
	if src == prog.Source {
		t.Fatalf("corruption did not apply:\n%s", prog.Source)
	}
	interp, err := NewP4Interp(src)
	if err != nil {
		t.Fatal(err)
	}
	evals := []Evaluator{{Name: "ir", Classify: m.InferQ}, {Name: "p4", Classify: interp.Classify}}
	rep := Check(evals, Traffic(m, 7, 256))
	if rep.OK() {
		t.Fatal("corrupted P4 artifact passed validation")
	}
}

func TestCorruptedSpatialArtifactDetected(t *testing.T) {
	m := treeModel()
	prog, err := spatialgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	// Shift the root threshold by one LSB — the classic rounding bug.
	src := strings.Replace(prog.Source, "0.375.to[T]", "0.379.to[T]", 1)
	if src == prog.Source {
		t.Fatalf("corruption did not apply:\n%s", prog.Source)
	}
	interp, err := NewSpatialInterp(src)
	if err != nil {
		t.Fatal(err)
	}
	evals := []Evaluator{{Name: "ir", Classify: m.InferQ}, {Name: "spatial", Classify: interp.Classify}}
	rep := Check(evals, Traffic(m, 7, 512))
	if rep.OK() {
		t.Fatal("corrupted Spatial artifact passed validation")
	}
}

// A truncated artifact must fail to parse, not silently validate.
func TestTruncatedArtifactRejected(t *testing.T) {
	m := svmModel()
	prog, _ := p4gen.Generate(m)
	if _, err := NewP4Interp(prog.Source[:len(prog.Source)/2]); err == nil {
		t.Fatal("truncated P4 artifact parsed")
	}
	sprog, _ := spatialgen.Generate(m)
	cut := strings.Index(sprog.Source, "val bias")
	if _, err := NewSpatialInterp(sprog.Source[:cut]); err == nil {
		t.Fatal("truncated Spatial artifact parsed")
	}
}

// Degenerate single-leaf trees must validate: the P4 emitter once had no
// entry form for a tree with no splits.
func TestDegenerateSingleLeafTree(t *testing.T) {
	m := &ir.Model{Kind: ir.DTree, Name: "leaf", Inputs: 2, Outputs: 3, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{Feature: -1, Class: 2}}
	rep, err := CheckModel(m, 99, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("single-leaf tree diverged: %s", rep.Divergences[0])
	}
}

// Thresholds at the saturation rail: the right-side range [th+1, MaxRaw]
// is empty and must be omitted, not emitted inverted.
func TestSaturatedThresholdTree(t *testing.T) {
	m := &ir.Model{Kind: ir.DTree, Name: "rail", Inputs: 1, Outputs: 2, Format: fixed.Q8_8,
		Tree: &ir.TreeNode{Feature: 0, Threshold: 1000, // quantizes to MaxRaw
			Left:  &ir.TreeNode{Feature: -1, Class: 1},
			Right: &ir.TreeNode{Feature: -1, Class: 0}}}
	rep, err := CheckModel(m, 99, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("saturated-threshold tree diverged: %s", rep.Divergences[0])
	}
}

func TestTrafficDeterministic(t *testing.T) {
	m := svmModel()
	a := Traffic(m, 42, 16)
	b := Traffic(m, 42, 16)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("traffic not deterministic at [%d][%d]", i, j)
			}
		}
	}
	c := Traffic(m, 43, 16)
	same := true
	for i := range a[0] {
		if a[0][i] != c[0][i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestReproRoundTrip(t *testing.T) {
	m := svmModel()
	evals, err := Evaluators(m)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture a divergence with a deliberately wrong evaluator.
	bad := append(append([]Evaluator{}, evals...), Evaluator{
		Name: "broken",
		Classify: func(x []float64) (int, error) {
			c, err := m.InferQ(x)
			if err != nil {
				return 0, err
			}
			return (c + 1) % m.Outputs, nil
		}})
	rep := Check(bad, Traffic(m, 5, 32))
	if rep.OK() {
		t.Fatal("broken evaluator not flagged")
	}
	r, err := NewRepro(m, bad, rep.Divergences[0], "sha256:feedface")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.DatasetFP != "sha256:feedface" {
		t.Fatalf("fingerprint = %q", back.DatasetFP)
	}
	m2, err := back.DecodeModel()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.Kind != m.Kind {
		t.Fatalf("model round-trip: %q/%v", m2.Name, m2.Kind)
	}
	// The genuine artifacts are correct, so replaying the repro against
	// freshly generated code must NOT diverge.
	_, diverged, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if diverged {
		t.Fatal("replay diverged against correct codegen")
	}
}

func TestMinimizeShrinksInput(t *testing.T) {
	m := svmModel()
	evals, _ := Evaluators(m)
	bad := append(append([]Evaluator{}, evals...), Evaluator{
		Name:     "broken",
		Classify: func(x []float64) (int, error) { c, err := m.InferQ(x); return (c + 1) % m.Outputs, err }})
	input := []float64{1.23456789, -3.14159, 2.71828, -0.577215}
	min, steps := Minimize(bad, input)
	if steps == 0 {
		t.Fatal("minimizer made no progress on a messy always-diverging input")
	}
	if _, diverged := checkOne(bad, min); !diverged {
		t.Fatal("minimized input no longer diverges")
	}
}

func TestFuzzSmoke(t *testing.T) {
	findings, checked, err := Fuzz(FuzzConfig{Seed: 1, Models: 48, Traffic: 48})
	if err != nil {
		t.Fatal(err)
	}
	if checked != 48 {
		t.Fatalf("checked %d models, want 48", checked)
	}
	for _, f := range findings {
		t.Errorf("fuzz finding: model %s (%v): %s", f.Model.Name, f.Model.Kind, f.Report.Divergences[0])
	}
}

func TestGenModelDeterministic(t *testing.T) {
	a, b := GenModel(7), GenModel(7)
	if a.Name != b.Name || a.Kind != b.Kind || a.Inputs != b.Inputs {
		t.Fatal("GenModel not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
