package validate

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

var updateCorpus = flag.Bool("update", false, "regenerate the divergence seed corpus")

// corpusSeeds are the historically-found codegen bugs, one seed per bug.
// Each seed is the model shape + input that triggered the divergence
// before the emitter fix landed; the corpus replay asserts they all stay
// fixed. New fuzzer findings get minimized into this directory by the
// nightly job and promoted here with their fix.
func corpusSeeds() []struct {
	File  string
	Note  string
	Model *ir.Model
	Input []float64
} {
	return []struct {
		File  string
		Note  string
		Model *ir.Model
		Input []float64
	}{
		{
			File: "p4_svm_range_midpoint.json",
			Note: "P4 SVM range tables scored each feature at its bucket midpoint; exact MAC-table fix. Input sits between midpoints where the old tables rounded the score across the class boundary.",
			Model: &ir.Model{Kind: ir.SVM, Name: "seed_svm_midpoint", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
				SVM: &ir.SVMParams{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0.001, 0}}},
			Input: []float64{0.06640625, 0.06249999}, // 17 LSB vs just under 16 LSB
		},
		{
			File: "p4_kmeans_representative_entry.json",
			Note: "P4 KMeans tables once shipped a single representative entry instead of full centroid words; distances to dropped components vanished.",
			Model: &ir.Model{Kind: ir.KMeans, Name: "seed_kmeans_entry", Inputs: 3, Outputs: 2, Format: fixed.Q8_8,
				Centroids: [][]float64{{0, 10, 10}, {1, 0, 0}}},
			Input: []float64{0.5, 9, 9}, // near cluster 0 only via the trailing components
		},
		{
			File: "p4_tree_single_leaf.json",
			Note: "P4 tree emitter had no entry form for a split-free tree; the walk table was empty and the packet fell through to class 0.",
			Model: &ir.Model{Kind: ir.DTree, Name: "seed_leaf_only", Inputs: 1, Outputs: 3, Format: fixed.Q8_8,
				Tree: &ir.TreeNode{Feature: -1, Class: 2}},
			Input: []float64{0},
		},
		{
			File: "p4_tree_threshold_boundary.json",
			Note: "Tree range upper bound vs strict-less-than: v <= Quantize(th) must route Left exactly at the quantized threshold word.",
			Model: &ir.Model{Kind: ir.DTree, Name: "seed_tree_boundary", Inputs: 1, Outputs: 2, Format: fixed.Q8_8,
				Tree: &ir.TreeNode{Feature: 0, Threshold: 0.12890625, // exactly 33 LSB
					Left:  &ir.TreeNode{Feature: -1, Class: 0},
					Right: &ir.TreeNode{Feature: -1, Class: 1}}},
			Input: []float64{0.12890625},
		},
		{
			File: "p4_tree_saturated_threshold.json",
			Note: "Threshold quantizing to MaxRaw leaves an empty right range [MaxRaw+1, MaxRaw]; the emitter must omit it, not emit it inverted.",
			Model: &ir.Model{Kind: ir.DTree, Name: "seed_tree_rail", Inputs: 1, Outputs: 2, Format: fixed.Q8_8,
				Tree: &ir.TreeNode{Feature: 0, Threshold: 500,
					Left:  &ir.TreeNode{Feature: -1, Class: 1},
					Right: &ir.TreeNode{Feature: -1, Class: 0}}},
			Input: []float64{127.99609375}, // MaxRaw
		},
		{
			File: "spatial_threshold_precision.json",
			Note: "Spatial %.6f literal formatting truncated thresholds; parsed-back literal quantized one LSB below the model parameter.",
			Model: &ir.Model{Kind: ir.DTree, Name: "seed_spatial_precision", Inputs: 1, Outputs: 2, Format: fixed.Q16_16,
				Tree: &ir.TreeNode{Feature: 0, Threshold: 0.12345678921234, // rounds differently at 6 decimals
					Left:  &ir.TreeNode{Feature: -1, Class: 0},
					Right: &ir.TreeNode{Feature: -1, Class: 1}}},
			Input: []float64{0.1234588623046875}, // the exact quantized step of the true threshold
		},
		{
			File: "spatial_kmeans_argmax.json",
			Note: "Spatial KMeans selected clusters with ArgMax over distances — the farthest centroid won.",
			Model: &ir.Model{Kind: ir.KMeans, Name: "seed_spatial_argmax", Inputs: 2, Outputs: 3, Format: fixed.Q8_8,
				Centroids: [][]float64{{0, 0}, {5, 5}, {-5, 5}}},
			Input: []float64{0.25, -0.25},
		},
		{
			File: "spatial_norm_missing.json",
			Note: "Spatial emitted the normalization affine only for DNNs; classical models classified raw features.",
			Model: &ir.Model{Kind: ir.SVM, Name: "seed_spatial_norm", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
				Mean: []float64{10, -10}, Std: []float64{4, 4},
				SVM: &ir.SVMParams{W: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}}},
			Input: []float64{11, -11},
		},
		{
			File: "sim_lane_saturation.json",
			Note: "Fabric sim saturated each 8-wide lane partial separately; a lane overflow that the full sum recovers from changed the class.",
			Model: func() *ir.Model {
				m := &ir.Model{Kind: ir.DNN, Name: "seed_sim_lanes", Inputs: 16, Outputs: 2, Format: fixed.Q8_8}
				l := ir.Layer{In: 16, Out: 2, Activation: "softmax"}
				l.W = make([][]float64, 2)
				l.B = []float64{0, 0}
				for o := range l.W {
					l.W[o] = make([]float64, 16)
					for j := range l.W[o] {
						if (j < 8) == (o == 0) {
							l.W[o][j] = 120 // lane 0 overflows +, lane 1 recovers -
						} else {
							l.W[o][j] = -120
						}
					}
				}
				m.Layers = []ir.Layer{l}
				return m
			}(),
			Input: func() []float64 {
				x := make([]float64, 16)
				for i := range x {
					x[i] = 120
				}
				return x
			}(),
		},
		{
			File: "sim_norm_sub_lsb.json",
			Note: "Sim quantized inputs before applying the normalizer; sub-LSB features with small stds quantized to zero and lost the signal.",
			Model: func() *ir.Model {
				m := &ir.Model{Kind: ir.DNN, Name: "seed_sim_norm", Inputs: 2, Outputs: 2, Format: fixed.Q8_8,
					Mean: []float64{0, 0}, Std: []float64{0.001, 1}}
				l := ir.Layer{In: 2, Out: 2, Activation: "softmax"}
				l.W = [][]float64{{1, 0}, {0, 1}}
				l.B = []float64{0, 0.25}
				m.Layers = []ir.Layer{l}
				return m
			}(),
			Input: []float64{0.001, 0},
		},
	}
}

// TestCorpusReplay replays every checked-in divergence seed against
// freshly generated artifacts and requires each historical bug to stay
// fixed. Run with -update to regenerate the corpus files from the seed
// table (e.g. after an IR JSON format bump).
func TestCorpusReplay(t *testing.T) {
	dir := "corpus"
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, s := range corpusSeeds() {
			evals, err := Evaluators(s.Model)
			if err != nil {
				t.Fatalf("%s: %v", s.File, err)
			}
			d, _ := checkOne(evals, s.Input)
			r, err := NewRepro(s.Model, evals, d, "")
			if err != nil {
				t.Fatalf("%s: %v", s.File, err)
			}
			r.Input = s.Input // keep the curated witness, not a re-minimized one
			r.Results = d.Results
			r.Note = s.Note
			if err := r.WriteFile(filepath.Join(dir, s.File)); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus directory missing (run go test -run TestCorpusReplay -update): %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus directory is empty")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			r, err := ReadReproFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			d, diverged, err := r.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if diverged {
				t.Fatalf("historical bug regressed: %s\n%s", r.Note, d)
			}
		})
	}
}
