package validate

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/fixed"
)

// SpatialInterp executes an emitted Spatial artifact. Like P4Interp it is
// built from the shipped source text alone. The operational semantics
// (docs/validation.md) interpret the Taurus template library the way the
// fabric executes it: LUT parameters quantize to the artifact's Q format,
// each Foreach/Reduce nest is a wide-accumulator dot product with one
// writeback, activations are the fixed PWL approximations, svm_score /
// kmeans_distance are the linear kernels over the embedded LUTs, and mux
// trees compare quantized feature words against quantized thresholds.
type SpatialInterp struct {
	format  fixed.Format
	inputs  int
	outputs int
	mean    []float64
	std     []float64
	kind    string // "dnn", "svm", "kmeans", "tree"

	layers []spatialLayer // dnn

	w    [][]float64 // svm hyperplanes / kmeans centroids
	bias []float64   // svm

	tree *muxNode // tree

	argMin bool // selection stage: ArgMin (kmeans) vs ArgMax
}

type spatialLayer struct {
	in, out    int
	w          [][]float64
	b          []float64
	activation string // "relu", "sigmoid", "tanh", "softmax"
}

type muxNode struct {
	feature     int
	threshold   float64
	class       int // leaf value when left/right nil
	left, right *muxNode
}

var (
	spHeaderRE = regexp.MustCompile(`// inputs=(\d+) outputs=(\d+) params=\d+ format=(\S+)`)
	spNormRE   = regexp.MustCompile(`val norm = normalize\(fields, mean=([^)]*), std=([^)]*)\)`)
	spLutRE    = regexp.MustCompile(`val (\w+) = LUT\[T\]\((\d+)(?:, (\d+))?\)\(`)
	spActRE    = regexp.MustCompile(`layer(\d+)\(o\) = (\w+)\(acc\.value \+ b\d+\(o\)\)`)
	spMuxRE    = regexp.MustCompile(`val decision = (mux\(|\d)`)
)

// NewSpatialInterp parses the emitted Spatial source into an executable
// form.
func NewSpatialInterp(source string) (*SpatialInterp, error) {
	s := &SpatialInterp{}
	hm := spHeaderRE.FindStringSubmatch(source)
	if hm == nil {
		return nil, fmt.Errorf("validate: spatial artifact has no inputs/outputs/format header")
	}
	s.inputs, _ = strconv.Atoi(hm[1])
	s.outputs, _ = strconv.Atoi(hm[2])
	var err error
	if s.format, err = fixed.ParseFormat(hm[3]); err != nil {
		return nil, fmt.Errorf("validate: spatial artifact: %w", err)
	}

	if nm := spNormRE.FindStringSubmatch(source); nm != nil {
		if s.mean, err = parseFloats(nm[1]); err != nil {
			return nil, fmt.Errorf("validate: spatial artifact: normalize mean: %w", err)
		}
		if s.std, err = parseFloats(nm[2]); err != nil {
			return nil, fmt.Errorf("validate: spatial artifact: normalize std: %w", err)
		}
		if len(s.mean) != s.inputs || len(s.std) != s.inputs {
			return nil, fmt.Errorf("validate: spatial artifact: normalize width %d/%d for %d inputs", len(s.mean), len(s.std), s.inputs)
		}
	}

	// Collect every LUT with its (possibly multi-line) contents.
	luts := map[string]struct {
		rows, cols int // cols 0 for 1-D
		vals       []float64
	}{}
	for _, loc := range spLutRE.FindAllStringSubmatchIndex(source, -1) {
		name := source[loc[2]:loc[3]]
		rows, _ := strconv.Atoi(source[loc[4]:loc[5]])
		cols := 0
		if loc[6] >= 0 {
			cols, _ = strconv.Atoi(source[loc[6]:loc[7]])
		}
		body, err := balancedParen(source, loc[1]-1)
		if err != nil {
			return nil, fmt.Errorf("validate: spatial artifact: LUT %s: %w", name, err)
		}
		vals, err := parseFloats(body)
		if err != nil {
			return nil, fmt.Errorf("validate: spatial artifact: LUT %s: %w", name, err)
		}
		want := rows
		if cols > 0 {
			want = rows * cols
		}
		if len(vals) != want {
			return nil, fmt.Errorf("validate: spatial artifact: LUT %s has %d values, want %d", name, len(vals), want)
		}
		luts[name] = struct {
			rows, cols int
			vals       []float64
		}{rows, cols, vals}
	}

	switch {
	case strings.Contains(source, "svm_score("):
		s.kind = "svm"
		wl, ok := luts["w"]
		if !ok || wl.cols == 0 {
			return nil, fmt.Errorf("validate: spatial svm artifact has no hyperplane LUT")
		}
		bl, ok := luts["bias"]
		if !ok {
			return nil, fmt.Errorf("validate: spatial svm artifact has no bias LUT")
		}
		if wl.rows != s.outputs || len(bl.vals) != s.outputs {
			return nil, fmt.Errorf("validate: spatial svm artifact carries %d hyperplanes/%d biases for %d classes", wl.rows, len(bl.vals), s.outputs)
		}
		s.w = reshape(wl.vals, wl.rows, wl.cols)
		s.bias = bl.vals
	case strings.Contains(source, "kmeans_distance("):
		s.kind = "kmeans"
		cl, ok := luts["centroids"]
		if !ok || cl.cols == 0 {
			return nil, fmt.Errorf("validate: spatial kmeans artifact has no centroid LUT")
		}
		if cl.rows != s.outputs {
			return nil, fmt.Errorf("validate: spatial kmeans artifact carries %d centroids for %d clusters", cl.rows, s.outputs)
		}
		s.w = reshape(cl.vals, cl.rows, cl.cols)
		if !strings.Contains(source, "ArgMin(") {
			return nil, fmt.Errorf("validate: spatial kmeans artifact selects with ArgMax (distances need ArgMin)")
		}
		s.argMin = true
	case spMuxRE.MatchString(source):
		s.kind = "tree"
		dm := spMuxRE.FindStringIndex(source)
		expr := source[dm[0]+len("val decision = "):]
		if end := strings.Index(expr, "\n"); end >= 0 {
			expr = expr[:end]
		}
		node, rest, err := parseMux(strings.TrimSpace(expr))
		if err != nil {
			return nil, fmt.Errorf("validate: spatial tree artifact: %w", err)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("validate: spatial tree artifact: trailing expression %q", rest)
		}
		s.tree = node
	default:
		// DNN: ordered layer LUT pairs w<i>/b<i> plus activation lines.
		s.kind = "dnn"
		acts := map[int]string{}
		for _, am := range spActRE.FindAllStringSubmatch(source, -1) {
			li, _ := strconv.Atoi(am[1])
			acts[li] = activationName(am[2])
		}
		for i := 0; ; i++ {
			wl, ok := luts[fmt.Sprintf("w%d", i)]
			if !ok {
				break
			}
			bl, ok := luts[fmt.Sprintf("b%d", i)]
			if !ok || wl.cols == 0 {
				return nil, fmt.Errorf("validate: spatial dnn artifact: layer %d LUTs malformed", i)
			}
			act, ok := acts[i]
			if !ok {
				return nil, fmt.Errorf("validate: spatial dnn artifact: layer %d has no activation", i)
			}
			s.layers = append(s.layers, spatialLayer{
				in: wl.cols, out: wl.rows,
				w: reshape(wl.vals, wl.rows, wl.cols), b: bl.vals,
				activation: act,
			})
		}
		if len(s.layers) == 0 {
			return nil, fmt.Errorf("validate: spatial artifact matches no known template structure")
		}
	}
	return s, nil
}

// balancedParen returns the contents of the parenthesized group opening
// at source[open] (which must be '(').
func balancedParen(source string, open int) (string, error) {
	if open >= len(source) || source[open] != '(' {
		return "", fmt.Errorf("expected '(' at offset %d", open)
	}
	depth := 0
	for i := open; i < len(source); i++ {
		switch source[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return source[open+1 : i], nil
			}
		}
	}
	return "", fmt.Errorf("unbalanced parentheses")
}

func parseFloats(list string) ([]float64, error) {
	var out []float64
	for _, part := range strings.FieldsFunc(list, func(r rune) bool { return r == ',' || r == '\n' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float literal %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func reshape(vals []float64, rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		out[r] = vals[r*cols : (r+1)*cols]
	}
	return out
}

func activationName(fn string) string {
	switch fn {
	case "max0":
		return "relu"
	case "sigmoidPWL":
		return "sigmoid"
	case "tanhPWL":
		return "tanh"
	default: // identity
		return "softmax"
	}
}

// parseMux parses `mux(<vec>(<idx>) <= <float>.to[T], <expr>, <expr>)` or
// an integer leaf, returning the node and the unconsumed remainder.
func parseMux(expr string) (*muxNode, string, error) {
	expr = strings.TrimSpace(expr)
	if !strings.HasPrefix(expr, "mux(") {
		i := 0
		for i < len(expr) && (expr[i] == '-' || expr[i] >= '0' && expr[i] <= '9') {
			i++
		}
		if i == 0 {
			return nil, expr, fmt.Errorf("expected mux or leaf class at %q", truncate(expr))
		}
		cls, err := strconv.Atoi(expr[:i])
		if err != nil {
			return nil, expr, err
		}
		return &muxNode{feature: -1, class: cls}, expr[i:], nil
	}
	rest := expr[len("mux("):]
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return nil, expr, fmt.Errorf("mux condition has no feature selector at %q", truncate(rest))
	}
	closeIdx := strings.IndexByte(rest[open:], ')')
	if closeIdx < 0 {
		return nil, expr, fmt.Errorf("mux condition unterminated at %q", truncate(rest))
	}
	feat, err := strconv.Atoi(rest[open+1 : open+closeIdx])
	if err != nil {
		return nil, expr, fmt.Errorf("mux feature index: %w", err)
	}
	rest = rest[open+closeIdx+1:]
	le := strings.Index(rest, "<=")
	toT := strings.Index(rest, ".to[T],")
	if le < 0 || toT < 0 || toT < le {
		return nil, expr, fmt.Errorf("mux threshold malformed at %q", truncate(rest))
	}
	thr, err := strconv.ParseFloat(strings.TrimSpace(rest[le+2:toT]), 64)
	if err != nil {
		return nil, expr, fmt.Errorf("mux threshold: %w", err)
	}
	rest = rest[toT+len(".to[T],"):]
	left, rest, err := parseMux(rest)
	if err != nil {
		return nil, expr, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, ",") {
		return nil, expr, fmt.Errorf("mux missing right arm at %q", truncate(rest))
	}
	right, rest, err := parseMux(rest[1:])
	if err != nil {
		return nil, expr, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, ")") {
		return nil, expr, fmt.Errorf("mux unterminated at %q", truncate(rest))
	}
	return &muxNode{feature: feat, threshold: thr, left: left, right: right}, rest[1:], nil
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}

// Inputs returns the artifact's declared feature width.
func (s *SpatialInterp) Inputs() int { return s.inputs }

// Classify executes the artifact over one feature vector.
func (s *SpatialInterp) Classify(x []float64) (int, error) {
	if len(x) != s.inputs {
		return 0, fmt.Errorf("validate: input has %d features, artifact wants %d", len(x), s.inputs)
	}
	f := s.format
	xn := x
	if len(s.mean) == s.inputs {
		xn = make([]float64, len(x))
		for i := range x {
			xn[i] = (x[i] - s.mean[i]) / s.std[i]
		}
	}
	v := f.QuantizeVec(xn)
	switch s.kind {
	case "dnn":
		for _, l := range s.layers {
			if l.in != len(v) {
				return 0, fmt.Errorf("validate: spatial layer expects %d inputs, has %d", l.in, len(v))
			}
			next := make([]int32, l.out)
			for o := 0; o < l.out; o++ {
				wq := f.QuantizeVec(l.w[o])
				acc := f.Add(f.DotQ(wq, v), f.Quantize(l.b[o]))
				switch l.activation {
				case "relu":
					acc = fixed.ReLUQ(acc)
				case "sigmoid":
					acc = f.SigmoidQ(acc)
				case "tanh":
					one := f.Quantize(1)
					if acc > one {
						acc = one
					}
					if acc < -one {
						acc = -one
					}
				}
				next[o] = acc
			}
			v = next
		}
		return firstArgMax(v), nil
	case "svm":
		scores := make([]int32, len(s.w))
		for k := range s.w {
			wq := f.QuantizeVec(s.w[k])
			scores[k] = f.Add(f.DotQ(wq, v), f.Quantize(s.bias[k]))
		}
		return firstArgMax(scores), nil
	case "kmeans":
		bestK, bestD := 0, int64(-1)
		for k := range s.w {
			cq := f.QuantizeVec(s.w[k])
			var d int64
			for i := range cq {
				diff := int64(v[i]) - int64(cq[i])
				d += diff * diff
			}
			if bestD < 0 || d < bestD {
				bestD, bestK = d, k
			}
		}
		return bestK, nil
	case "tree":
		n := s.tree
		for n.feature >= 0 {
			if n.feature >= len(v) {
				return 0, fmt.Errorf("validate: spatial tree selects feature %d of %d", n.feature, len(v))
			}
			if v[n.feature] <= f.Quantize(n.threshold) {
				n = n.left
			} else {
				n = n.right
			}
		}
		return n.class, nil
	}
	return 0, fmt.Errorf("validate: spatial artifact kind %q not executable", s.kind)
}

func firstArgMax(v []int32) int {
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
