package validate

// Budgeted fuzz entry point for `make fuzz` and the nightly CI job
// (.github/workflows/nightly-fuzz.yml). The sweep is opt-in via
// FUZZ_BUDGET so `go test ./...` stays fast; the nightly workflow sets
// a real budget and a per-run seed, and uploads whatever lands in
// FUZZ_REPRO_DIR as workflow artifacts — one minimized repro JSON per
// divergent model, replayable with `homunculus -validate -repro`.
//
//	FUZZ_BUDGET     wall-clock cap, e.g. "300s" (required to run)
//	FUZZ_SEED       base seed (default a fixed constant; CI passes the
//	                run number so every night covers fresh models)
//	FUZZ_REPRO_DIR  where divergence repros are written (default
//	                "fuzz-repros")

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

func TestFuzzNightly(t *testing.T) {
	budget := os.Getenv("FUZZ_BUDGET")
	if budget == "" {
		t.Skip("set FUZZ_BUDGET (e.g. 300s) to run the budgeted fuzz sweep")
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("FUZZ_BUDGET: %v", err)
	}
	seed := uint64(0x4e49474854) // "NIGHT"
	if s := os.Getenv("FUZZ_SEED"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("FUZZ_SEED: %v", err)
		}
		seed = n
	}

	findings, checked, err := Fuzz(FuzzConfig{Seed: seed, Budget: d, Traffic: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fuzz: %d models checked under %s (seed %d), %d divergent", checked, d, seed, len(findings))
	if len(findings) == 0 {
		return
	}

	dir := os.Getenv("FUZZ_REPRO_DIR")
	if dir == "" {
		dir = "fuzz-repros"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, f := range findings {
		evals, eerr := Evaluators(f.Model)
		if eerr != nil {
			t.Errorf("finding %d (%s): evaluators: %v", i, f.Model.Name, eerr)
			continue
		}
		r, rerr := NewRepro(f.Model, evals, f.Report.Divergences[0], "")
		if rerr != nil {
			t.Errorf("finding %d (%s): repro: %v", i, f.Model.Name, rerr)
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("%s.repro.json", f.Model.Name))
		if werr := r.WriteFile(path); werr != nil {
			t.Errorf("finding %d (%s): write: %v", i, f.Model.Name, werr)
			continue
		}
		t.Logf("repro: %s (%s)", path, f.Report.Divergences[0].String())
	}
	t.Fatalf("fuzz found %d divergent models; repros in %s", len(findings), dir)
}
