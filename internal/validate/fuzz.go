package validate

import (
	"fmt"
	"time"

	"repro/internal/fixed"
	"repro/internal/ir"
)

// FuzzConfig bounds a fuzzing run.
type FuzzConfig struct {
	Seed    uint64        // base seed; each generated model derives its own
	Models  int           // models to generate (0 = until Budget expires)
	Traffic int           // random inputs per model (boundary probes are added on top)
	Budget  time.Duration // wall-clock cap (0 = no cap)
}

// FuzzFinding is one model whose artifacts diverged from the IR.
type FuzzFinding struct {
	Model  *ir.Model
	Report Report
}

// Fuzz generates equivalence-modulo-inputs model variants — degenerate
// trees, thresholds parked on quantization boundaries, extreme formats,
// single-class outputs — and differentially checks each one. The mutation
// pool is biased toward the shapes that have historically broken code
// generators: emitters are written against well-formed production models,
// and the degenerate corners (a tree that is one leaf, a threshold at the
// saturation rail, a Q4.12 model with near-rail weights) are exactly
// where table-range and rounding logic goes wrong.
func Fuzz(cfg FuzzConfig) ([]FuzzFinding, int, error) {
	if cfg.Traffic <= 0 {
		cfg.Traffic = 64
	}
	deadline := time.Time{}
	if cfg.Budget > 0 {
		deadline = time.Now().Add(cfg.Budget)
	}
	var findings []FuzzFinding
	checked := 0
	for i := 0; ; i++ {
		if cfg.Models > 0 && i >= cfg.Models {
			break
		}
		if cfg.Models <= 0 && cfg.Budget <= 0 && i >= 256 {
			break // neither bound set: one bounded sweep
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		m := GenModel(cfg.Seed + uint64(i))
		rep, err := CheckModel(m, cfg.Seed^uint64(i)<<32, cfg.Traffic)
		if err != nil {
			return findings, checked, fmt.Errorf("validate: fuzz model %d (%s): %w", i, m.Name, err)
		}
		checked++
		if !rep.OK() {
			findings = append(findings, FuzzFinding{Model: m, Report: rep})
		}
	}
	return findings, checked, nil
}

// fuzzFormats are the quantization formats the fuzzer cycles through —
// the production defaults plus the extremes (minimal fraction, minimal
// integer range) where rounding and saturation corners live.
var fuzzFormats = []fixed.Format{
	fixed.Q8_8,
	fixed.Q4_12,
	fixed.Q16_16,
	{IntBits: 1, FracBits: 6},
	{IntBits: 12, FracBits: 3},
}

// GenModel deterministically derives one fuzz model from a seed. The
// same seed always yields the same model, so any finding is replayable
// from its seed alone (the repro artifact embeds the model anyway).
func GenModel(seed uint64) *ir.Model {
	rng := splitmix64(seed)
	f := fuzzFormats[rng.next()%uint64(len(fuzzFormats))]
	inputs := 1 + int(rng.next()%6)
	outputs := 2 + int(rng.next()%3)
	rail := float64(int64(1) << uint(f.IntBits))
	lsb := 1 / float64(int64(1)<<uint(f.FracBits))

	// value draws a parameter; the distribution is deliberately spiky:
	// plain uniform values, exact quantization steps, boundary rails,
	// and sub-LSB dust.
	value := func() float64 {
		switch rng.next() % 8 {
		case 0:
			return 0
		case 1:
			return rail - lsb // top of range
		case 2:
			return -rail // saturation rail
		case 3:
			return float64(int64(rng.next()%64)) * lsb // exact step
		case 4:
			return float64(int64(rng.next()%64))*lsb + lsb/2 // rounding midpoint
		case 5:
			return (rng.float() - 0.5) * lsb // sub-LSB dust
		default:
			return (rng.float()*2 - 1) * rail
		}
	}

	m := &ir.Model{
		Inputs:  inputs,
		Outputs: outputs,
		Format:  f,
	}
	if rng.next()%2 == 0 {
		m.Mean = make([]float64, inputs)
		m.Std = make([]float64, inputs)
		for i := range m.Mean {
			m.Mean[i] = value()
			s := rng.float()*2 + 0.001 // includes sub-LSB stds
			m.Std[i] = s
		}
	}

	switch rng.next() % 4 {
	case 0:
		m.Kind = ir.DTree
		m.Name = fmt.Sprintf("fuzz_tree_%d", seed)
		m.Tree = genTree(&rng, inputs, outputs, int(rng.next()%4), value)
	case 1:
		m.Kind = ir.SVM
		m.Name = fmt.Sprintf("fuzz_svm_%d", seed)
		w := make([][]float64, outputs)
		b := make([]float64, outputs)
		for k := range w {
			w[k] = make([]float64, inputs)
			for j := range w[k] {
				w[k][j] = value()
			}
			b[k] = value()
		}
		m.SVM = &ir.SVMParams{W: w, B: b}
	case 2:
		m.Kind = ir.KMeans
		m.Name = fmt.Sprintf("fuzz_kmeans_%d", seed)
		m.Centroids = make([][]float64, outputs)
		for k := range m.Centroids {
			m.Centroids[k] = make([]float64, inputs)
			for j := range m.Centroids[k] {
				m.Centroids[k][j] = value()
			}
		}
	default:
		m.Kind = ir.DNN
		m.Name = fmt.Sprintf("fuzz_dnn_%d", seed)
		hidden := 1 + int(rng.next()%8)
		acts := []string{"relu", "sigmoid", "tanh"}
		l1 := ir.Layer{In: inputs, Out: hidden, Activation: acts[rng.next()%3]}
		l1.W = make([][]float64, hidden)
		l1.B = make([]float64, hidden)
		for o := range l1.W {
			l1.W[o] = make([]float64, inputs)
			for j := range l1.W[o] {
				l1.W[o][j] = value()
			}
			l1.B[o] = value()
		}
		l2 := ir.Layer{In: hidden, Out: outputs, Activation: "softmax"}
		l2.W = make([][]float64, outputs)
		l2.B = make([]float64, outputs)
		for o := range l2.W {
			l2.W[o] = make([]float64, hidden)
			for j := range l2.W[o] {
				l2.W[o][j] = value()
			}
			l2.B[o] = value()
		}
		m.Layers = []ir.Layer{l1, l2}
	}
	return m
}

// genTree builds a tree of the requested depth. Depth 0 yields the
// degenerate single-leaf tree (historically mishandled by table-based
// emitters, which assumed at least one split). With some probability a
// subtree collapses to a single class on both sides — the single-class
// shape.
func genTree(rng *splitmix64, inputs, outputs, depth int, value func() float64) *ir.TreeNode {
	if depth <= 0 || rng.next()%5 == 0 {
		return &ir.TreeNode{Feature: -1, Class: int(rng.next() % uint64(outputs))}
	}
	n := &ir.TreeNode{
		Feature:   int(rng.next() % uint64(inputs)),
		Threshold: value(),
	}
	n.Left = genTree(rng, inputs, outputs, depth-1, value)
	n.Right = genTree(rng, inputs, outputs, depth-1, value)
	if rng.next()%8 == 0 && n.Left.Feature < 0 && n.Right.Feature < 0 {
		n.Right.Class = n.Left.Class // single-class subtree
	}
	return n
}
