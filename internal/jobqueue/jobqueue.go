// Package jobqueue is a bounded FIFO admission queue with a fixed-size
// dispatch pool: the primitive underneath homunculus.Service. Submit
// either admits a task (returning a Ticket) or rejects it immediately
// (ErrFull / ErrClosed) — admission never blocks, which is what lets a
// service's Submit return in microseconds regardless of how much work is
// already in flight. Tickets can be cancelled while still pending, in
// which case the task provably never runs. Close stops intake, drops the
// pending backlog through each ticket's drop callback, and waits for the
// tasks already dispatched to finish.
//
// The queue deliberately knows nothing about jobs, contexts, or results:
// tasks are opaque funcs, and cancellation of *running* work is the
// caller's business (homunculus.Job carries the context).
package jobqueue

import (
	"errors"
	"sync"
)

var (
	// ErrFull rejects a Submit when the pending backlog is at capacity.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed rejects a Submit after Close, and is handed to the drop
	// callback of every ticket still pending when Close runs.
	ErrClosed = errors.New("jobqueue: queue closed")
)

// ticket lifecycle states.
const (
	statePending = iota
	stateRunning
	stateDone
	stateCancelled
	stateDropped
)

// Ticket is the handle for one admitted task.
type Ticket struct {
	q     *Queue
	run   func()
	drop  func(error)
	state int
}

// Cancel removes the ticket's task from the pending backlog. It returns
// true when the task had not been dispatched yet — the task will never
// run and its drop callback will not fire. It returns false when the
// task is already running (or finished, or was dropped by Close); the
// caller must then cancel the running work through its own means.
func (t *Ticket) Cancel() bool {
	t.q.mu.Lock()
	defer t.q.mu.Unlock()
	if t.state != statePending {
		return false
	}
	for i, p := range t.q.pending {
		if p == t {
			t.q.pending = append(t.q.pending[:i], t.q.pending[i+1:]...)
			t.state = stateCancelled
			return true
		}
	}
	return false
}

// Queue is the bounded admission queue. Zero value is not usable; use New.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Ticket
	running int
	depth   int // max pending; negative means unbounded
	closed  bool
	wg      sync.WaitGroup
}

// New starts a queue with the given number of dispatch workers (the
// in-flight cap; clipped up to 1) and pending-backlog depth (negative
// means unbounded).
func New(workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	q := &Queue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit admits run to the backlog, or rejects it without blocking. drop
// (optional) is invoked — outside the queue lock, never concurrently with
// run — if the queue closes before the task is dispatched.
func (q *Queue) Submit(run func(), drop func(error)) (*Ticket, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if q.depth >= 0 && len(q.pending) >= q.depth {
		return nil, ErrFull
	}
	t := &Ticket{q: q, run: run, drop: drop}
	q.pending = append(q.pending, t)
	q.cond.Signal()
	return t, nil
}

// Stats reports the backlog and in-flight sizes.
func (q *Queue) Stats() (pending, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), q.running
}

// Close stops intake, fails every still-pending ticket through its drop
// callback with ErrClosed, and blocks until the tasks already running
// have finished. Idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	dropped := q.pending
	q.pending = nil
	for _, t := range dropped {
		t.state = stateDropped
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, t := range dropped {
		if t.drop != nil {
			t.drop(ErrClosed)
		}
	}
	q.wg.Wait()
}

func (q *Queue) worker() {
	defer q.wg.Done()
	q.mu.Lock()
	for {
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			// Closed and drained: the worker retires.
			q.mu.Unlock()
			return
		}
		t := q.pending[0]
		q.pending = q.pending[1:]
		t.state = stateRunning
		q.running++
		q.mu.Unlock()
		t.run()
		q.mu.Lock()
		t.state = stateDone
		q.running--
	}
}
