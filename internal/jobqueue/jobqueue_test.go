package jobqueue

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFIFODispatchOrder(t *testing.T) {
	q := New(1, -1)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		i := i
		wg.Add(1)
		if _, err := q.Submit(func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	q.Close()
	for i, got := range order {
		if got != i {
			t.Fatalf("dispatch order %v, want FIFO", order)
		}
	}
}

func TestWorkerCapBoundsConcurrency(t *testing.T) {
	const workers = 2
	q := New(workers, -1)
	defer q.Close()
	var cur, max atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		if _, err := q.Submit(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, cap is %d", got, workers)
	}
}

func TestDepthRejectsWithErrFull(t *testing.T) {
	q := New(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := q.Submit(func() { close(started); <-release }, nil); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds task 1; the backlog is empty
	if _, err := q.Submit(func() {}, nil); err != nil {
		t.Fatalf("second submit must queue: %v", err)
	}
	if _, err := q.Submit(func() {}, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("third submit must be ErrFull, got %v", err)
	}
	close(release)
	q.Close()
}

func TestCancelPendingNeverRuns(t *testing.T) {
	q := New(1, -1)
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := q.Submit(func() { close(started); <-release }, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Bool
	ticket, err := q.Submit(func() { ran.Store(true) }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ticket.Cancel() {
		t.Fatal("pending ticket must cancel")
	}
	if ticket.Cancel() {
		t.Fatal("double cancel must report false")
	}
	close(release)
	q.Close() // waits for the running task; the cancelled one must not run
	if ran.Load() {
		t.Fatal("cancelled pending task ran")
	}
}

func TestCancelAfterDispatchReturnsFalse(t *testing.T) {
	q := New(1, -1)
	started := make(chan struct{})
	release := make(chan struct{})
	ticket, err := q.Submit(func() { close(started); <-release }, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if ticket.Cancel() {
		t.Fatal("running ticket must not cancel")
	}
	close(release)
	q.Close()
}

func TestCloseDropsPendingAndDrainsRunning(t *testing.T) {
	q := New(1, -1)
	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Bool
	if _, err := q.Submit(func() {
		close(started)
		<-release
		finished.Store(true)
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Bool
	dropErr := make(chan error, 1)
	if _, err := q.Submit(func() { ran.Store(true) }, func(err error) { dropErr <- err }); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		q.Close()
		close(closed)
	}()
	// The pending task is dropped promptly even while task 1 runs.
	select {
	case err := <-dropErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("drop error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending task not dropped by Close")
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a task was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if !finished.Load() {
		t.Fatal("Close must drain the running task")
	}
	if ran.Load() {
		t.Fatal("dropped task ran")
	}
	if _, err := q.Submit(func() {}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}
