package fixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatBounds(t *testing.T) {
	f := Q8_8
	if f.Bits() != 16 {
		t.Fatalf("Q8.8 bits = %d", f.Bits())
	}
	if f.Max() < 127.99 || f.Max() > 128 {
		t.Fatalf("Q8.8 max = %v", f.Max())
	}
	if f.Min() != -128 {
		t.Fatalf("Q8.8 min = %v", f.Min())
	}
	if f.Eps() != 1.0/256 {
		t.Fatalf("Q8.8 eps = %v", f.Eps())
	}
	if f.String() != "Q8.8" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	f := Q8_8
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, 3.14159, -2.71828, 100.25} {
		rt := f.RoundTrip(v)
		if math.Abs(rt-v) > f.Eps()/2+1e-12 {
			t.Fatalf("RoundTrip(%v) = %v, err > eps/2", v, rt)
		}
	}
}

func TestQuantizeSaturation(t *testing.T) {
	f := Q8_8
	if f.Dequantize(f.Quantize(1e9)) != f.Max() {
		t.Fatal("positive overflow must saturate at Max")
	}
	if f.Dequantize(f.Quantize(-1e9)) != f.Min() {
		t.Fatal("negative overflow must saturate at Min")
	}
	if f.Quantize(math.NaN()) != 0 {
		t.Fatal("NaN must quantize to 0")
	}
}

func TestMulAdd(t *testing.T) {
	f := Q8_8
	a, b := f.Quantize(1.5), f.Quantize(2.0)
	if got := f.Dequantize(f.Mul(a, b)); math.Abs(got-3.0) > 2*f.Eps() {
		t.Fatalf("Mul 1.5*2.0 = %v", got)
	}
	if got := f.Dequantize(f.Add(a, b)); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("Add 1.5+2.0 = %v", got)
	}
	// saturating add
	big := f.Quantize(f.Max())
	if f.Add(big, big) != f.Quantize(f.Max()) {
		t.Fatal("Add must saturate")
	}
}

func TestDotQMatchesFloat(t *testing.T) {
	f := Q8_8
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 32)
	b := make([]float64, 32)
	var want float64
	for i := range a {
		a[i] = rng.Float64()*2 - 1
		b[i] = rng.Float64()*2 - 1
		want += f.RoundTrip(a[i]) * f.RoundTrip(b[i])
	}
	got := f.Dequantize(f.DotQ(f.QuantizeVec(a), f.QuantizeVec(b)))
	if math.Abs(got-want) > f.Eps()*2 {
		t.Fatalf("DotQ = %v, want %v", got, want)
	}
}

func TestReLUQ(t *testing.T) {
	if ReLUQ(-5) != 0 || ReLUQ(7) != 7 || ReLUQ(0) != 0 {
		t.Fatal("ReLUQ broken")
	}
}

func TestSigmoidQ(t *testing.T) {
	f := Q8_8
	if got := f.Dequantize(f.SigmoidQ(f.Quantize(0))); math.Abs(got-0.5) > f.Eps() {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	if got := f.Dequantize(f.SigmoidQ(f.Quantize(10))); got != 1 {
		t.Fatalf("sigmoid(10) = %v", got)
	}
	if got := f.Dequantize(f.SigmoidQ(f.Quantize(-10))); got != 0 {
		t.Fatalf("sigmoid(-10) = %v", got)
	}
	// monotone on the linear segment
	prev := int32(math.MinInt32)
	for x := -4.0; x <= 4.0; x += 0.25 {
		y := f.SigmoidQ(f.Quantize(x))
		if y < prev {
			t.Fatalf("sigmoid not monotone at %v", x)
		}
		prev = y
	}
}

// Property: quantization error is bounded by half an LSB for in-range
// values, for several formats.
func TestQuantizeErrorBoundQuick(t *testing.T) {
	formats := []Format{Q8_8, Q4_12, Q16_16}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		for _, fm := range formats {
			if v > fm.Max() || v < fm.Min() {
				continue
			}
			if math.Abs(fm.RoundTrip(v)-v) > fm.Eps()/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Mul is commutative in the raw domain.
func TestCommutativityQuick(t *testing.T) {
	fm := Q8_8
	f := func(a, b int16) bool {
		x, y := int32(a), int32(b)
		return fm.Add(x, y) == fm.Add(y, x) && fm.Mul(x, y) == fm.Mul(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVecHelpers(t *testing.T) {
	f := Q4_12
	v := []float64{0.25, -0.75, 1.5}
	back := f.DequantizeVec(f.QuantizeVec(v))
	for i := range v {
		if math.Abs(back[i]-v[i]) > f.Eps() {
			t.Fatalf("vec roundtrip[%d] = %v want %v", i, back[i], v[i])
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, f := range []Format{Q8_8, Q4_12, Q16_16, {IntBits: 0, FracBits: 15}} {
		got, err := ParseFormat(f.String())
		if err != nil {
			t.Fatalf("ParseFormat(%s): %v", f, err)
		}
		if got != f {
			t.Fatalf("ParseFormat(%s) = %+v, want %+v", f, got, f)
		}
	}
	for _, bad := range []string{"", "8.8", "Q8", "Qx.8", "Q8.y", "Q40.40", "Q0.8"} {
		if _, err := ParseFormat(bad); err == nil {
			t.Fatalf("ParseFormat(%q) must fail", bad)
		}
	}
}

func TestRawBounds(t *testing.T) {
	f := Q8_8
	if f.MaxRaw() != 32767 || f.MinRaw() != -32768 {
		t.Fatalf("Q8.8 raw bounds = [%d, %d]", f.MinRaw(), f.MaxRaw())
	}
	if f.Quantize(f.Max()+1) != f.MaxRaw() || f.Quantize(f.Min()-1) != f.MinRaw() {
		t.Fatal("quantize must saturate at the exported raw bounds")
	}
}

// Property: Writeback is exactly DotQ's finalization — a DotQ over any
// vector equals the Writeback of its wide accumulator.
func TestWritebackMatchesDotQ(t *testing.T) {
	fm := Q8_8
	f := func(a, b [9]int16) bool {
		av := make([]int32, len(a))
		bv := make([]int32, len(b))
		var acc int64
		for i := range a {
			av[i], bv[i] = int32(a[i]), int32(b[i])
			acc += int64(av[i]) * int64(bv[i])
		}
		return fm.DotQ(av, bv) == fm.Writeback(acc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
