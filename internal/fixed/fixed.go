// Package fixed implements the Q-format fixed-point arithmetic used by the
// data-plane executors. Programmable switches (Taurus CUs, MAT ALUs) have
// no floating-point units; generated pipelines compute in two's-complement
// fixed point. The Format type captures a word layout (integer bits,
// fraction bits) and provides saturating conversion and multiply-accumulate
// so that quantized inference exactly matches what the generated hardware
// would compute.
package fixed

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Format describes a signed fixed-point layout Qm.n: 1 sign bit, m integer
// bits, and n fraction bits, stored in an int32 word.
type Format struct {
	IntBits  int // m
	FracBits int // n
}

// Q8_8 is the default data-plane format used by the Taurus backend
// (16-bit words: 1 sign, 7 integer, 8 fraction bits — referred to as
// "Q8.8" following the inclusive-sign convention used in the Taurus paper).
var Q8_8 = Format{IntBits: 7, FracBits: 8}

// Q4_12 trades range for precision (16-bit words).
var Q4_12 = Format{IntBits: 3, FracBits: 12}

// Q16_16 is a wide 32-bit format used for accumulators.
var Q16_16 = Format{IntBits: 15, FracBits: 16}

// Bits returns the total word width including the sign bit.
func (f Format) Bits() int { return 1 + f.IntBits + f.FracBits }

// String renders the format as "Qm.n" (inclusive of the sign bit in m,
// matching hardware-documentation convention).
func (f Format) String() string { return fmt.Sprintf("Q%d.%d", f.IntBits+1, f.FracBits) }

// ParseFormat inverts String: "Q8.8" -> Format{IntBits: 7, FracBits: 8}.
// Generated artifacts carry the format in their header line; interpreters
// that execute the artifact text recover the word layout through this.
func ParseFormat(s string) (Format, error) {
	rest, ok := strings.CutPrefix(s, "Q")
	if !ok {
		return Format{}, fmt.Errorf("fixed: format %q does not start with Q", s)
	}
	mStr, nStr, ok := strings.Cut(rest, ".")
	if !ok {
		return Format{}, fmt.Errorf("fixed: format %q is not Qm.n", s)
	}
	m, err := strconv.Atoi(mStr)
	if err != nil {
		return Format{}, fmt.Errorf("fixed: format %q integer bits: %w", s, err)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		return Format{}, fmt.Errorf("fixed: format %q fraction bits: %w", s, err)
	}
	f := Format{IntBits: m - 1, FracBits: n}
	if f.IntBits < 0 || f.FracBits < 0 || f.Bits() > 32 {
		return Format{}, fmt.Errorf("fixed: format %q out of range (word width %d)", s, f.Bits())
	}
	return f, nil
}

// Max returns the largest representable value.
func (f Format) Max() float64 {
	return float64(f.maxRaw()) / float64(int64(1)<<uint(f.FracBits))
}

// Min returns the smallest (most negative) representable value.
func (f Format) Min() float64 {
	return float64(f.minRaw()) / float64(int64(1)<<uint(f.FracBits))
}

// Eps returns the quantization step (value of one LSB).
func (f Format) Eps() float64 { return 1.0 / float64(int64(1)<<uint(f.FracBits)) }

func (f Format) maxRaw() int64 { return int64(1)<<uint(f.IntBits+f.FracBits) - 1 }
func (f Format) minRaw() int64 { return -(int64(1) << uint(f.IntBits+f.FracBits)) }

// MaxRaw returns the largest representable raw word — the upper bound a
// range-match table entry can carry.
func (f Format) MaxRaw() int32 { return int32(f.maxRaw()) }

// MinRaw returns the smallest (most negative) representable raw word.
func (f Format) MinRaw() int32 { return int32(f.minRaw()) }

// Quantize converts v to the nearest representable raw word, saturating at
// the format bounds. NaN quantizes to 0.
func (f Format) Quantize(v float64) int32 {
	if math.IsNaN(v) {
		return 0
	}
	raw := math.Round(v * float64(int64(1)<<uint(f.FracBits)))
	if raw > float64(f.maxRaw()) {
		return int32(f.maxRaw())
	}
	if raw < float64(f.minRaw()) {
		return int32(f.minRaw())
	}
	return int32(raw)
}

// Dequantize converts a raw word back to float64.
func (f Format) Dequantize(raw int32) float64 {
	return float64(raw) / float64(int64(1)<<uint(f.FracBits))
}

// RoundTrip quantizes then dequantizes v — the value the hardware would see.
func (f Format) RoundTrip(v float64) float64 { return f.Dequantize(f.Quantize(v)) }

// Mul multiplies two raw words, rescaling the 2n-fraction-bit product back
// to n fraction bits with saturation (the CU multiplier behaviour).
func (f Format) Mul(a, b int32) int32 {
	prod := int64(a) * int64(b) >> uint(f.FracBits)
	return f.saturate(prod)
}

// Add adds two raw words with saturation.
func (f Format) Add(a, b int32) int32 { return f.saturate(int64(a) + int64(b)) }

func (f Format) saturate(v int64) int32 {
	if v > f.maxRaw() {
		return int32(f.maxRaw())
	}
	if v < f.minRaw() {
		return int32(f.minRaw())
	}
	return int32(v)
}

// DotQ computes the fixed-point dot product of two raw vectors using a
// wide 64-bit accumulator (matching the Taurus reduce tree, which keeps
// full precision until the final writeback) and saturates the result.
// The lanes are 4-way unrolled; two's-complement int64 addition is
// associative mod 2^64, so the reassociated sum is bit-identical to the
// sequential one.
func (f Format) DotQ(a, b []int32) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fixed: DotQ length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var acc0, acc1, acc2, acc3 int64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		acc0 += int64(a[i]) * int64(b[i])
		acc1 += int64(a[i+1]) * int64(b[i+1])
		acc2 += int64(a[i+2]) * int64(b[i+2])
		acc3 += int64(a[i+3]) * int64(b[i+3])
	}
	acc := acc0 + acc1 + acc2 + acc3
	for ; i < len(a); i++ {
		acc += int64(a[i]) * int64(b[i])
	}
	return f.saturate(acc >> uint(f.FracBits))
}

// Writeback finalizes a wide multiply-accumulate sum: rescale the
// 2n-fraction-bit accumulator back to n fraction bits and saturate. It is
// the final step of DotQ, exported so executors that keep their own wide
// accumulator (the Taurus reduce tree, the artifact interpreters) share
// DotQ's exact semantics: full precision until this single writeback.
func (f Format) Writeback(acc int64) int32 {
	return f.saturate(acc >> uint(f.FracBits))
}

// QuantizeVec quantizes a float vector into a fresh raw-word slice.
func (f Format) QuantizeVec(v []float64) []int32 {
	out := make([]int32, len(v))
	for i, x := range v {
		out[i] = f.Quantize(x)
	}
	return out
}

// DequantizeVec converts raw words back into a fresh float slice.
func (f Format) DequantizeVec(raw []int32) []float64 {
	out := make([]float64, len(raw))
	for i, x := range raw {
		out[i] = f.Dequantize(x)
	}
	return out
}

// ReLUQ applies the rectifier in the raw domain.
func ReLUQ(v int32) int32 {
	if v < 0 {
		return 0
	}
	return v
}

// SigmoidQ applies a piecewise-linear sigmoid approximation in the raw
// domain — the lookup-table-free approximation data planes typically use
// (three segments: saturate below -4, above +4, linear slope 1/8 between,
// offset 0.5).
func (f Format) SigmoidQ(v int32) int32 {
	x := f.Dequantize(v)
	var y float64
	switch {
	case x <= -4:
		y = 0
	case x >= 4:
		y = 1
	default:
		y = 0.125*x + 0.5
	}
	return f.Quantize(y)
}
