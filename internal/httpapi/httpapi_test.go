package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/alchemy"

	homunculus "repro"
)

var registerTestLoaders sync.Once

// testRelease gates the "httpapi_block" loader so cancellation tests can
// hold a job in its load stage.
var (
	testRelease     = make(chan struct{})
	testReleaseOnce sync.Once
)

func tinyData() *alchemy.Data {
	d := &alchemy.Data{FeatureNames: []string{"fa", "fb"}}
	for i := 0; i < 120; i++ {
		c := i % 2
		d.TrainX = append(d.TrainX, []float64{float64(c)*2 + float64(i%5)*0.1, float64(1-c) + float64(i%3)*0.1})
		d.TrainY = append(d.TrainY, c)
	}
	for i := 0; i < 40; i++ {
		c := i % 2
		d.TestX = append(d.TestX, []float64{float64(c)*2 + float64(i%5)*0.1, float64(1-c) + float64(i%3)*0.1})
		d.TestY = append(d.TestY, c)
	}
	return d
}

func setupServer(t *testing.T, opts homunculus.ServiceOptions) (*httptest.Server, *homunculus.Service) {
	t.Helper()
	registerTestLoaders.Do(func() {
		alchemy.RegisterLoader("httpapi_tiny", alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
			return tinyData(), nil
		}))
		alchemy.RegisterLoader("httpapi_block", alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
			<-testRelease
			return tinyData(), nil
		}))
	})
	svc := homunculus.New(opts)
	srv := httptest.NewServer(NewServer(svc))
	t.Cleanup(func() {
		srv.Close()
		_ = svc.Close()
	})
	return srv, svc
}

func submitBody(dataset string) string {
	return fmt.Sprintf(`{
		"platform": {
			"kind": "taurus",
			"constraints": {"rows": 16, "cols": 16},
			"schedule": {"model": {"name": "tiny", "algorithms": ["dtree"], "dataset": %q}}
		},
		"search": {"init": 2, "iterations": 2, "seed": 1}
	}`, dataset)
}

func postJob(t *testing.T, srv *httptest.Server, body string) (JobJSON, *http.Response) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job JobJSON
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return job, resp
}

func pollDone(t *testing.T, srv *httptest.Server, id string) JobJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job JobJSON
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State.Terminal() {
			return job
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobJSON{}
}

func TestHTTPSubmitPollResult(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job, resp := postJob(t, srv, submitBody("httpapi_tiny"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if job.ID == "" || job.Platform != "taurus" {
		t.Fatalf("submit response: %+v", job)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Fatalf("Location %q", loc)
	}

	final := pollDone(t, srv, job.ID)
	if final.State != homunculus.JobDone {
		t.Fatalf("state %q (error %q)", final.State, final.Error)
	}
	if final.Result == nil || len(final.Result.Apps) != 1 {
		t.Fatalf("missing result: %+v", final)
	}
	app := final.Result.Apps[0]
	if app.Algorithm != "dtree" || !app.Feasible || app.Code != "" {
		t.Fatalf("app summary wrong (code must be excluded by default): %+v", app)
	}
	if final.Stages[homunculus.StageSearch].Done < 1 {
		t.Fatalf("stage progress missing: %+v", final.Stages)
	}

	// ?include=code returns the generated source.
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "?include=code")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var withCode JobJSON
	if err := json.NewDecoder(resp2.Body).Decode(&withCode); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withCode.Result.Apps[0].Code, "@spatial") {
		t.Fatal("included code must be the Spatial source")
	}

	// An identical resubmission resolves from the content-addressed
	// cache.
	job2, _ := postJob(t, srv, submitBody("httpapi_tiny"))
	final2 := pollDone(t, srv, job2.ID)
	if final2.State != homunculus.JobDone || !final2.CacheHit {
		t.Fatalf("identical resubmission must cache-hit: %+v", final2)
	}
	if final2.SpecHash != final.SpecHash {
		t.Fatalf("spec hashes differ: %q vs %q", final2.SpecHash, final.SpecHash)
	}

	// The jobs listing shows both, admission order.
	resp3, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var all []JobJSON
	if err := json.NewDecoder(resp3.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].ID != job.ID || all[1].ID != job2.ID {
		t.Fatalf("job listing wrong: %+v", all)
	}
}

func TestHTTPUnknownDatasetRejected(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{})
	_, resp := postJob(t, srv, submitBody("httpapi_no_such_ds"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{})
	for label, body := range map[string]string{
		"not json":    `{`,
		"no platform": `{"search": {}}`,
		"bad kind":    `{"platform": {"kind": "abacus", "schedule": {"model": {"name": "x", "dataset": "httpapi_tiny"}}}}`,
	} {
		_, resp := postJob(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", label, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 1, CacheEntries: -1})
	job, resp := postJob(t, srv, submitBody("httpapi_block"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	// Unblock the load: the cancelled context aborts the pipeline at the
	// next stage boundary (loads themselves are arbitrary user code and
	// cannot be interrupted).
	testReleaseOnce.Do(func() { close(testRelease) })
	final := pollDone(t, srv, job.ID)
	if final.State != homunculus.JobCancelled {
		t.Fatalf("state %q, want cancelled", final.State)
	}
}

func TestHTTPEventsSSE(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job, _ := postJob(t, srv, submitBody("httpapi_tiny"))
	pollDone(t, srv, job.ID)

	// Subscribing after completion replays the log and terminates.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: progress") || !strings.Contains(text, `"stage":"search"`) {
		t.Fatalf("stream missing progress events:\n%s", text)
	}
	if !strings.Contains(text, "event: state") || !strings.Contains(text, `"state":"done"`) {
		t.Fatalf("stream missing terminal state:\n%s", text)
	}
	if !strings.Contains(text, `"platform":"taurus"`) {
		t.Fatalf("stream events must carry the platform:\n%s", text)
	}
}

func TestHTTPBackends(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{})
	resp, err := http.Get(srv.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var backends []BackendJSON
	if err := json.NewDecoder(resp.Body).Decode(&backends); err != nil {
		t.Fatal(err)
	}
	byKind := map[string]BackendJSON{}
	for _, b := range backends {
		byKind[b.Kind] = b
	}
	for _, kind := range []string{"taurus", "tofino", "fpga"} {
		if _, ok := byKind[kind]; !ok {
			t.Fatalf("backend %s missing from %+v", kind, backends)
		}
	}
	if byKind["taurus"].Defaults.Rows != 16 || byKind["taurus"].CodeExt != ".spatial" {
		t.Fatalf("taurus registration wrong: %+v", byKind["taurus"])
	}
}

// TestHTTPJobValidation: a submission with "validate": true carries the
// translation-validation verdict on the finished job document, and the
// same spec without the flag does not — the two resolve to distinct
// cache entries.
func TestHTTPJobValidation(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})

	plain, resp := postJob(t, srv, submitBody("httpapi_tiny"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	done := pollDone(t, srv, plain.ID)
	if done.State != homunculus.JobDone || done.Result.Apps[0].Validation != nil {
		t.Fatalf("unvalidated job: state %q validation %+v", done.State, done.Result.Apps[0].Validation)
	}

	body := strings.Replace(submitBody("httpapi_tiny"), `"search":`, `"validate": true, "search":`, 1)
	checked, resp := postJob(t, srv, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST validate status %d", resp.StatusCode)
	}
	vdone := pollDone(t, srv, checked.ID)
	v := vdone.Result.Apps[0].Validation
	if vdone.State != homunculus.JobDone || v == nil || !v.OK || v.Inputs == 0 || len(v.Evaluators) == 0 {
		t.Fatalf("validated job: state %q validation %+v", vdone.State, v)
	}
}
