package httpapi

// GET /v1/healthz: liveness plus the signals PR6's durability layer
// used to leave in logs only — absorbed store errors, the boot recovery
// summary, and the admission backlog. The same document doubles as the
// cluster heartbeat payload (internal/cluster embeds it in
// GET /v1/cluster/health), so "what a peer knows about a node" and
// "what an operator's probe sees" never drift apart.

import (
	"net/http"

	homunculus "repro"
)

// HealthJSON is the health document. Status is "ok", or "degraded" once
// the durability layer has absorbed store errors (results still serve
// correctly but may not survive a restart — see docs/operations.md).
type HealthJSON struct {
	Status      string `json:"status"`
	Queued      int    `json:"queued"`
	Running     int    `json:"running"`
	MaxInFlight int    `json:"max_in_flight"`
	QueueDepth  int    `json:"queue_depth"`
	Endpoints   int    `json:"endpoints"`
	Durable     bool   `json:"durable"`
	StoreErrors uint64 `json:"store_errors"`
	// Recovery summarizes what boot replay found (durable services only).
	Recovery *RecoveryJSON `json:"recovery,omitempty"`
}

// RecoveryJSON is the wire summary of a boot recovery report.
type RecoveryJSON struct {
	JournalRecords    int `json:"journal_records"`
	JournalSkipped    int `json:"journal_skipped"`
	JobsRecovered     int `json:"jobs_recovered"`
	JobsRequeued      int `json:"jobs_requeued"`
	JobsSkipped       int `json:"jobs_skipped"`
	EndpointsRestored int `json:"endpoints_restored"`
	EndpointsSkipped  int `json:"endpoints_skipped"`
}

// Health renders the service's current health document.
func Health(svc *homunculus.Service) HealthJSON {
	queued, running := svc.Stats()
	o := svc.Options()
	out := HealthJSON{
		Status:      "ok",
		Queued:      queued,
		Running:     running,
		MaxInFlight: o.MaxInFlight,
		QueueDepth:  o.QueueDepth,
		Endpoints:   len(svc.Endpoints()),
		Durable:     o.StateDir != "",
		StoreErrors: svc.StoreErrors(),
	}
	if out.StoreErrors > 0 {
		out.Status = "degraded"
	}
	if out.Durable {
		rep := svc.Recovery()
		out.Recovery = &RecoveryJSON{
			JournalRecords:    rep.JournalRecords,
			JournalSkipped:    rep.JournalSkipped,
			JobsRecovered:     len(rep.JobsRecovered),
			JobsRequeued:      len(rep.JobsRequeued),
			JobsSkipped:       len(rep.JobsSkipped),
			EndpointsRestored: len(rep.EndpointsRestored),
			EndpointsSkipped:  len(rep.EndpointsSkipped),
		}
	}
	return out
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health(h.svc))
}
