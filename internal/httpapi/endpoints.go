package httpapi

// Endpoint lifecycle handlers: the serving surface of the daemon.
// /v1/endpoints serves a *stable name* whose revisions can be rolled
// out gradually (deterministic canary split), mirrored (shadow scoring
// with a divergence report), promoted atomically, and rolled back —
// zero downtime at every step. The flat /v1/deployments routes
// (deployments.go) alias onto this surface behind auto-generated names
// (docs/serving.md):
//
//	POST   /v1/endpoints                     create from a finished job
//	GET    /v1/endpoints                     list endpoints
//	GET    /v1/endpoints/{name}              endpoint info + stats
//	POST   /v1/endpoints/{name}/rollout      start a canary/shadow rollout
//	POST   /v1/endpoints/{name}/promote      make the rollout stable
//	POST   /v1/endpoints/{name}/rollback     abort rollout / revert stable
//	POST   /v1/endpoints/{name}/classify     classify a feature batch
//	GET    /v1/endpoints/{name}/stats        per-revision stats + divergence
//	GET    /v1/endpoints/{name}/config       canonical serving config (config.go)
//	PUT    /v1/endpoints/{name}/config       validate + apply a config (config.go)
//	POST   /v1/endpoints/{name}/tune         replay-driven autotuning (config.go)
//	DELETE /v1/endpoints/{name}              drain and remove

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	homunculus "repro"
)

// EndpointRequest is the POST /v1/endpoints body. Zero-valued knobs
// select the runtime defaults.
type EndpointRequest struct {
	// Name is the endpoint's stable route name (URL-safe segment).
	Name string `json:"name"`
	// JobID names the finished compilation job whose pipeline becomes
	// revision 1.
	JobID string `json:"job_id"`
	// App selects one application of a multi-model pipeline.
	App string `json:"app,omitempty"`
	// Serving is the canonical versioned serving configuration — the
	// same document GET/PUT /v1/endpoints/{name}/config speak and the
	// tuner emits. When present it wins wholesale over the flat knobs
	// below and is validated up front (400 lists every violation).
	Serving *homunculus.ServingConfig `json:"serving,omitempty"`
	// Deprecated: set Serving. The flat knobs remain as thin aliases for
	// pre-config-API clients; zero values select defaults.
	Shards int `json:"shards,omitempty"`
	// Deprecated: set Serving.
	BatchSize int `json:"batch_size,omitempty"`
	// Deprecated: set Serving (whose max_delay_ns is presence-aware, so
	// an explicit greedy flush survives; this µs spelling cannot say
	// "explicit zero").
	MaxDelayUS int64 `json:"max_delay_us,omitempty"`
	// Deprecated: set Serving.
	QueueDepth int `json:"queue_depth,omitempty"`
	// ValidateRollouts gates revision 1 and every later rollout of this
	// endpoint behind translation validation of the shipped artifact; a
	// diverging revision is refused with 409 (docs/validation.md).
	ValidateRollouts bool `json:"validate_rollouts,omitempty"`
}

// RolloutRequest is the POST /v1/endpoints/{name}/rollout body. Rollouts
// inherit the endpoint's validate_rollouts setting.
type RolloutRequest struct {
	// JobID names the finished compilation job to roll out.
	JobID string `json:"job_id"`
	// CanaryPercent routes this share (0-100) of requests to the new
	// revision; 0 deploys it warm without traffic.
	CanaryPercent int `json:"canary_percent,omitempty"`
	// Shadow mirrors traffic to the new revision off the record instead
	// of splitting it.
	Shadow bool   `json:"shadow,omitempty"`
	App    string `json:"app,omitempty"`
	// Serving, when present, is the canonical config for the new
	// revision; it wins wholesale over the flat knobs below.
	Serving *homunculus.ServingConfig `json:"serving,omitempty"`
	// Deprecated: set Serving. Thin aliases for pre-config-API clients;
	// zero values inherit the endpoint defaults.
	Shards int `json:"shards,omitempty"`
	// Deprecated: set Serving.
	BatchSize int `json:"batch_size,omitempty"`
	// Deprecated: set Serving.
	MaxDelayUS int64 `json:"max_delay_us,omitempty"`
	// Deprecated: set Serving.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// RevisionJSON is the wire rendering of one endpoint revision.
type RevisionJSON struct {
	ID            int              `json:"id"`
	JobID         string           `json:"job_id,omitempty"`
	App           string           `json:"app"`
	State         string           `json:"state"`
	CanaryPercent int              `json:"canary_percent,omitempty"`
	Stats         *DeployStatsJSON `json:"stats,omitempty"`
}

// EndpointJSON is the wire rendering of an endpoint.
type EndpointJSON struct {
	Name          string `json:"name"`
	Platform      string `json:"platform"`
	Algorithm     string `json:"algorithm"`
	Features      int    `json:"features"`
	Classes       int    `json:"classes"`
	Stable        int    `json:"stable"`
	Canary        int    `json:"canary,omitempty"`
	CanaryPercent int    `json:"canary_percent,omitempty"`
	Shadow        int    `json:"shadow,omitempty"`
	// ValidateRollouts reports whether revisions are gated behind
	// translation validation.
	ValidateRollouts bool               `json:"validate_rollouts,omitempty"`
	Revisions        []RevisionJSON     `json:"revisions"`
	Stats            *EndpointStatsJSON `json:"stats,omitempty"`
}

// EndpointStatsJSON is the per-endpoint stats document: the merged view,
// the per-revision breakdown, and the shadow divergence report. When it
// is embedded in an EndpointJSON (whose revisions array already carries
// per-revision stats), the Revisions field is omitted.
type EndpointStatsJSON struct {
	Merged    DeployStatsJSON `json:"merged"`
	Revisions []RevisionJSON  `json:"revisions,omitempty"`
	Shadow    *DivergenceJSON `json:"shadow,omitempty"`
}

// DivergenceJSON is the shadow-vs-primary comparison report.
type DivergenceJSON struct {
	Revision  int        `json:"revision"`
	Mirrored  uint64     `json:"mirrored"`
	Shed      uint64     `json:"shed"`
	Errors    uint64     `json:"errors"`
	Agreed    uint64     `json:"agreed"`
	Disagreed uint64     `json:"disagreed"`
	Pairs     [][]uint64 `json:"pairs"`
}

func divergenceJSON(d *homunculus.ShadowDivergence) *DivergenceJSON {
	if d == nil {
		return nil
	}
	return &DivergenceJSON{
		Revision: d.Revision, Mirrored: d.Mirrored, Shed: d.Shed,
		Errors: d.Errors, Agreed: d.Agreed, Disagreed: d.Disagreed,
		Pairs: d.Pairs,
	}
}

func revisionJSON(r homunculus.RevisionInfo, withStats bool) RevisionJSON {
	out := RevisionJSON{
		ID: r.ID, JobID: r.JobID, App: r.App,
		State: string(r.State), CanaryPercent: r.CanaryPercent,
	}
	if withStats {
		out.Stats = statsJSON(r.Stats)
	}
	return out
}

func endpointJSON(e *homunculus.Endpoint, withStats bool) EndpointJSON {
	stable, canary, pct, shadow := e.View()
	out := EndpointJSON{
		Name:     e.Name(),
		Platform: e.Platform(),
		Stable:   stable, Canary: canary, CanaryPercent: pct, Shadow: shadow,
		ValidateRollouts: e.Config().ValidateRollouts,
	}
	if withStats {
		// One full snapshot: the revisions array carries the per-revision
		// stats, so the embedded stats document only adds the merged view
		// and the divergence report.
		st := e.Stats()
		for _, r := range st.Revisions {
			out.Revisions = append(out.Revisions, revisionJSON(r, true))
		}
		out.Stats = &EndpointStatsJSON{
			Merged: *statsJSON(st.Merged),
			Shadow: divergenceJSON(st.Shadow),
		}
	} else {
		// Listing/lifecycle responses need only the routing metadata —
		// skip the runtime counter/histogram snapshot entirely.
		for _, r := range e.Revisions() {
			out.Revisions = append(out.Revisions, revisionJSON(r, false))
		}
	}
	if m := e.Model(); m != nil {
		out.Algorithm = m.Kind.String()
		out.Features = m.Inputs
		out.Classes = m.Outputs
	}
	return out
}

func endpointStatsJSON(st homunculus.EndpointStats) EndpointStatsJSON {
	out := EndpointStatsJSON{
		Merged: *statsJSON(st.Merged),
		Shadow: divergenceJSON(st.Shadow),
	}
	for _, r := range st.Revisions {
		out.Revisions = append(out.Revisions, revisionJSON(r, true))
	}
	return out
}

func (h *handler) createEndpoint(w http.ResponseWriter, r *http.Request) {
	var req EndpointRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.Name == "" || req.JobID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a name and a job_id"))
		return
	}
	ep, err := h.svc.CreateEndpoint(req.Name, req.JobID, homunculus.EndpointOptions{
		App:              req.App,
		Serving:          req.Serving,
		Shards:           req.Shards,
		BatchSize:        req.BatchSize,
		MaxDelay:         time.Duration(req.MaxDelayUS) * time.Microsecond,
		QueueDepth:       req.QueueDepth,
		ValidateRollouts: req.ValidateRollouts,
	})
	if err != nil {
		switch {
		case errors.Is(err, homunculus.ErrJobNotFinished):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrNotDeployable):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrValidationFailed):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrServiceClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeConfigAwareError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/endpoints/"+ep.Name())
	writeJSON(w, http.StatusCreated, endpointJSON(ep, false))
}

func (h *handler) listEndpoints(w http.ResponseWriter, r *http.Request) {
	eps := h.svc.Endpoints()
	out := make([]EndpointJSON, 0, len(eps))
	for _, e := range eps {
		out = append(out, endpointJSON(e, false))
	}
	writeJSON(w, http.StatusOK, out)
}

// endpoint resolves the {name} path segment to a live endpoint.
func (h *handler) endpointFor(w http.ResponseWriter, r *http.Request) (*homunculus.Endpoint, bool) {
	name := r.PathValue("name")
	ep, ok := h.svc.Endpoint(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %q", name))
		return nil, false
	}
	return ep, true
}

func (h *handler) endpoint(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, endpointJSON(ep, true))
}

func (h *handler) endpointStats(w http.ResponseWriter, r *http.Request) {
	switch scope := r.URL.Query().Get("scope"); scope {
	case "", "local":
		ep, ok := h.endpointFor(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, endpointStatsJSON(ep.Stats()))
	case "raw":
		// The mergeable wire form: counters + log2 latency histogram,
		// what a peer sums into a cluster-scope view (docs/cluster.md).
		ep, ok := h.endpointFor(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, ep.RawStats())
	case "cluster":
		if h.opts.ClusterStats == nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("scope=cluster requires cluster mode (start the daemon with -peers)"))
			return
		}
		doc, err := h.opts.ClusterStats(r.Context(), r.PathValue("name"))
		if err != nil {
			if errors.Is(err, ErrEndpointNotFound) {
				writeError(w, http.StatusNotFound, err)
				return
			}
			writeError(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, doc)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown stats scope %q (want local, raw, or cluster)", scope))
	}
}

func (h *handler) rollout(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	var req RolloutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.JobID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a job_id"))
		return
	}
	_, err := ep.Rollout(req.JobID, homunculus.RolloutOptions{
		App:           req.App,
		CanaryPercent: req.CanaryPercent,
		Shadow:        req.Shadow,
		Serving:       req.Serving,
		Shards:        req.Shards,
		BatchSize:     req.BatchSize,
		MaxDelay:      time.Duration(req.MaxDelayUS) * time.Microsecond,
		QueueDepth:    req.QueueDepth,
	})
	if err != nil {
		switch {
		case errors.Is(err, homunculus.ErrRolloutActive):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrJobNotFinished):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrNotDeployable):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrValidationFailed):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrEndpointClosed):
			writeError(w, http.StatusConflict, err)
		default:
			writeConfigAwareError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, endpointJSON(ep, false))
}

func (h *handler) promote(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	if err := ep.Promote(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, endpointJSON(ep, false))
}

func (h *handler) rollback(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	if err := ep.Rollback(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, endpointJSON(ep, false))
}

func (h *handler) endpointClassify(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if len(req.Features) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a features batch"))
		return
	}
	classes, dropped, err := ep.ClassifyBatch(req.Features)
	writeClassifyResponse(w, classes, dropped, err, len(req.Features))
}

func (h *handler) deleteEndpoint(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.DeleteEndpoint(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// The drain has completed: the final stats are the endpoint's
	// lifetime totals across every revision.
	writeJSON(w, http.StatusOK, endpointStatsJSON(st))
}
