package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/alchemy"

	homunculus "repro"
)

// endpointTestLoaders registers a blocking loader private to this file
// so the queue-full test can hold the admission pipe without touching
// the gates other test files rely on.
var (
	endpointTestLoaders  sync.Once
	endpointRelease      = make(chan struct{})
	endpointReleaseOnce  sync.Once
	endpointBlockDataset = func() {
		endpointTestLoaders.Do(func() {
			alchemy.RegisterLoader("httpapi_ep_block", alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
				<-endpointRelease
				return tinyData(), nil
			}))
		})
	}
)

// TestHTTPEndpointLifecycle is the versioned-serving acceptance path:
// compile two jobs, create a named endpoint from the first, classify,
// roll the second out at 50% canary, see both revisions serving in the
// stats, promote, roll back, and DELETE-drain.
func TestHTTPEndpointLifecycle(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job1 := compileDone(t, srv)
	// A second, distinct compilation (different seed) to roll out.
	job2body := `{
		"platform": {
			"kind": "taurus",
			"constraints": {"rows": 16, "cols": 16},
			"schedule": {"model": {"name": "tiny", "algorithms": ["dtree"], "dataset": "httpapi_tiny"}}
		},
		"search": {"init": 2, "iterations": 2, "seed": 7}
	}`
	job2, resp := postJob(t, srv, job2body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	if final := pollDone(t, srv, job2.ID); final.State != homunculus.JobDone {
		t.Fatalf("second job state %q (%s)", final.State, final.Error)
	}

	resp, body := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{
		Name: "anomaly-detection", JobID: job1.ID, BatchSize: 8, MaxDelayUS: 1000,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	var ep EndpointJSON
	if err := json.Unmarshal(body, &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Name != "anomaly-detection" || ep.Stable != 1 || ep.Algorithm != "dtree" || len(ep.Revisions) != 1 {
		t.Fatalf("endpoint document: %+v", ep)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/endpoints/anomaly-detection" {
		t.Fatalf("Location %q", loc)
	}

	// Listing and info.
	lresp, lbody := httpGet(t, srv.URL+"/v1/endpoints")
	var all []EndpointJSON
	if err := json.Unmarshal(lbody, &all); err != nil {
		t.Fatal(err)
	}
	if lresp.StatusCode != http.StatusOK || len(all) != 1 || all[0].Name != ep.Name {
		t.Fatalf("listing: %d %s", lresp.StatusCode, lbody)
	}

	// Classify through the named route.
	batch := ClassifyRequest{Features: [][]float64{{0.1, 1.0}, {2.0, 0.1}, {0.2, 1.1}, {2.1, 0.0}}}
	cresp, cbody := postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/classify", batch)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", cresp.StatusCode, cbody)
	}
	var cls ClassifyResponse
	if err := json.Unmarshal(cbody, &cls); err != nil {
		t.Fatal(err)
	}
	if len(cls.Classes) != 4 || cls.Dropped != 0 {
		t.Fatalf("classify response: %+v", cls)
	}

	// Roll out job2 at 50% canary and push enough traffic that both
	// revisions serve.
	rresp, rbody := postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/rollout",
		RolloutRequest{JobID: job2.ID, CanaryPercent: 50})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("rollout status %d: %s", rresp.StatusCode, rbody)
	}
	var rolled EndpointJSON
	if err := json.Unmarshal(rbody, &rolled); err != nil {
		t.Fatal(err)
	}
	if rolled.Canary != 2 || rolled.CanaryPercent != 50 || len(rolled.Revisions) != 2 {
		t.Fatalf("rollout document: %+v", rolled)
	}
	// Overlapping rollout conflicts.
	oresp, _ := postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/rollout",
		RolloutRequest{JobID: job1.ID})
	if oresp.StatusCode != http.StatusConflict {
		t.Fatalf("overlapping rollout status %d", oresp.StatusCode)
	}
	for i := 0; i < 16; i++ {
		cresp, _ = postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/classify", batch)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("canary classify status %d", cresp.StatusCode)
		}
	}
	sresp, sbody := httpGet(t, srv.URL+"/v1/endpoints/anomaly-detection/stats")
	var st EndpointStatsJSON
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK || len(st.Revisions) != 2 {
		t.Fatalf("stats: %d %s", sresp.StatusCode, sbody)
	}
	if st.Revisions[0].Stats.Completed == 0 || st.Revisions[1].Stats.Completed == 0 {
		t.Fatalf("both revisions must serve at 50%% canary: %s", sbody)
	}
	if st.Merged.Completed != st.Revisions[0].Stats.Completed+st.Revisions[1].Stats.Completed {
		t.Fatalf("merged must sum revisions: %s", sbody)
	}
	if st.Revisions[1].JobID != job2.ID {
		t.Fatalf("revision 2 provenance: %s", sbody)
	}

	// Promote, verify the view, then roll back to revision 1.
	presp, pbody := postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/promote", struct{}{})
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d: %s", presp.StatusCode, pbody)
	}
	var promoted EndpointJSON
	if err := json.Unmarshal(pbody, &promoted); err != nil {
		t.Fatal(err)
	}
	if promoted.Stable != 2 || promoted.Canary != 0 {
		t.Fatalf("promoted document: %+v", promoted)
	}
	// Promote again without a rollout conflicts.
	presp, _ = postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/promote", struct{}{})
	if presp.StatusCode != http.StatusConflict {
		t.Fatalf("double promote status %d", presp.StatusCode)
	}
	bresp, bbody := postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/rollback", struct{}{})
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("rollback status %d: %s", bresp.StatusCode, bbody)
	}
	var back EndpointJSON
	if err := json.Unmarshal(bbody, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stable != 1 {
		t.Fatalf("rollback document: %+v", back)
	}

	// DELETE drains and reports final lifetime totals; the route is gone.
	dresp, dbody := doDelete(t, srv.URL+"/v1/endpoints/anomaly-detection")
	var final EndpointStatsJSON
	if err := json.Unmarshal(dbody, &final); err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK || final.Merged.Accepted != final.Merged.Completed {
		t.Fatalf("drain: %d %s", dresp.StatusCode, dbody)
	}
	gresp, _ := httpGet(t, srv.URL+"/v1/endpoints/anomaly-detection")
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted endpoint GET status %d", gresp.StatusCode)
	}
	cresp, _ = postJSON(t, srv.URL+"/v1/endpoints/anomaly-detection/classify", batch)
	if cresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted endpoint classify status %d", cresp.StatusCode)
	}
}

// TestHTTPEndpointShadow drives a shadow rollout over the wire and reads
// the divergence report from the stats document.
func TestHTTPEndpointShadow(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)
	resp, body := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{
		Name: "shadowed", JobID: job.ID, MaxDelayUS: -1,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	rresp, rbody := postJSON(t, srv.URL+"/v1/endpoints/shadowed/rollout",
		RolloutRequest{JobID: job.ID, Shadow: true})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("shadow rollout status %d: %s", rresp.StatusCode, rbody)
	}
	var rolled EndpointJSON
	if err := json.Unmarshal(rbody, &rolled); err != nil {
		t.Fatal(err)
	}
	if rolled.Shadow != 2 {
		t.Fatalf("shadow document: %+v", rolled)
	}
	batch := ClassifyRequest{Features: [][]float64{{0.1, 1.0}, {2.0, 0.1}}}
	for i := 0; i < 8; i++ {
		cresp, _ := postJSON(t, srv.URL+"/v1/endpoints/shadowed/classify", batch)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("classify status %d", cresp.StatusCode)
		}
	}
	// The shadow is the same compiled pipeline, so mirrored scores agree;
	// mirrors are asynchronous, so poll for the report to fill.
	deadline := 200
	for ; deadline > 0; deadline-- {
		_, sbody := httpGet(t, srv.URL+"/v1/endpoints/shadowed/stats")
		var st EndpointStatsJSON
		if err := json.Unmarshal(sbody, &st); err != nil {
			t.Fatal(err)
		}
		if st.Shadow != nil && st.Shadow.Mirrored+st.Shadow.Shed == 16 {
			if st.Shadow.Revision != 2 || st.Shadow.Disagreed != 0 || st.Shadow.Agreed != st.Shadow.Mirrored {
				t.Fatalf("identical shadow must agree: %s", sbody)
			}
			return
		}
	}
	t.Fatal("shadow divergence report never filled")
}

func TestHTTPEndpointErrors(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)

	// Bad bodies and missing fields.
	for label, body := range map[string]string{
		"not json": `{`,
		"no name":  `{"job_id": "job-000001"}`,
		"no job":   `{"name": "x"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/endpoints", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", label, resp.StatusCode)
		}
	}
	// Bad name, unknown job.
	resp, _ := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{Name: "bad name", JobID: job.ID})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{Name: "x", JobID: "job-999999"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
	// Duplicate name.
	resp, _ = postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{Name: "dup", JobID: job.ID})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{Name: "dup", JobID: job.ID})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate name status %d", resp.StatusCode)
	}
	// Unknown endpoint paths 404.
	for _, probe := range []func() (*http.Response, []byte){
		func() (*http.Response, []byte) { return httpGet(t, srv.URL+"/v1/endpoints/ghost") },
		func() (*http.Response, []byte) { return httpGet(t, srv.URL+"/v1/endpoints/ghost/stats") },
		func() (*http.Response, []byte) {
			return postJSON(t, srv.URL+"/v1/endpoints/ghost/promote", struct{}{})
		},
		func() (*http.Response, []byte) {
			return postJSON(t, srv.URL+"/v1/endpoints/ghost/rollback", struct{}{})
		},
		func() (*http.Response, []byte) { return doDelete(t, srv.URL+"/v1/endpoints/ghost") },
	} {
		if resp, _ := probe(); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown endpoint probe status %d, want 404", resp.StatusCode)
		}
	}
	// Rollback with no history conflicts.
	resp, _ = postJSON(t, srv.URL+"/v1/endpoints/dup/rollback", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rollback without history status %d", resp.StatusCode)
	}
	// Rollout needs a job_id.
	resp, _ = postJSON(t, srv.URL+"/v1/endpoints/dup/rollout", RolloutRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rollout without job status %d", resp.StatusCode)
	}
}

// TestHTTPQueueFullRetryAfter pins the backpressure contract on the
// submission path: when the admission queue sheds, the 429 carries a
// Retry-After hint.
func TestHTTPQueueFullRetryAfter(t *testing.T) {
	endpointBlockDataset()
	srv, _ := setupServer(t, homunculus.ServiceOptions{
		MaxInFlight: 1, QueueDepth: 1, CacheEntries: -1})
	defer endpointReleaseOnce.Do(func() { close(endpointRelease) })

	// Job 1 occupies the single dispatch slot (blocked in load), job 2
	// fills the depth-1 backlog, job 3 must shed with 429 + Retry-After.
	j1, resp := postJob(t, srv, submitBody("httpapi_ep_block"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status %d", resp.StatusCode)
	}
	j2, resp := postJob(t, srv, submitBody("httpapi_ep_block"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status %d", resp.StatusCode)
	}
	_, resp = postJob(t, srv, submitBody("httpapi_ep_block"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("queue-full 429 Retry-After %q, want \"1\"", ra)
	}
	// Release and settle so Close can drain.
	endpointReleaseOnce.Do(func() { close(endpointRelease) })
	pollDone(t, srv, j1.ID)
	pollDone(t, srv, j2.ID)
}

// TestClassifyShedRetryAfter pins the serving-side backpressure wire
// contract: a fully shed classify batch is a 429 with Retry-After, a
// partial shed is a 200, and a draining target is a 409 (no backoff
// hint — retrying a closed deployment is pointless).
func TestClassifyShedRetryAfter(t *testing.T) {
	fullyShed := []int{-1, -1}
	rec := httptest.NewRecorder()
	writeClassifyResponse(rec, fullyShed, 2, nil, 2)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("fully shed status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("classify-shed 429 Retry-After %q, want \"1\"", ra)
	}

	rec = httptest.NewRecorder()
	writeClassifyResponse(rec, []int{1, -1}, 1, nil, 2)
	if rec.Code != http.StatusOK || rec.Header().Get("Retry-After") != "" {
		t.Fatalf("partial shed: status %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}

	rec = httptest.NewRecorder()
	writeClassifyResponse(rec, fullyShed, 2, homunculus.ErrDeploymentClosed, 2)
	if rec.Code != http.StatusConflict || rec.Header().Get("Retry-After") != "" {
		t.Fatalf("closed target: status %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}

	// writeError applies the hint to any 429 it renders.
	rec = httptest.NewRecorder()
	writeError(rec, http.StatusTooManyRequests, errors.New("shed"))
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatal("writeError(429) must set Retry-After")
	}
	rec = httptest.NewRecorder()
	writeError(rec, http.StatusBadRequest, errors.New("nope"))
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("writeError(400) must not set Retry-After")
	}
}

// TestHTTPEndpointValidationGate: creating or rolling out on a
// validate_rollouts endpoint re-checks the shipped artifact, so a
// corrupted emitted program (an injected codegen bug) is refused with
// 409 at the HTTP layer.
func TestHTTPEndpointValidationGate(t *testing.T) {
	srv, svc := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)

	// The clean pipeline passes the gate and the flag lands on the doc.
	resp, body := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{
		Name: "gated", JobID: job.ID, ValidateRollouts: true,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gated create status %d: %s", resp.StatusCode, body)
	}
	var ep EndpointJSON
	if err := json.Unmarshal(body, &ep); err != nil {
		t.Fatal(err)
	}
	if !ep.ValidateRollouts {
		t.Fatalf("endpoint document must carry validate_rollouts: %s", body)
	}

	// Inject the codegen bug: corrupt the job's shipped artifact text in
	// place (the cached pipeline is what any later create/rollout serves).
	j, ok := svc.Job(job.ID)
	if !ok {
		t.Fatal("job handle")
	}
	pipe, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for i := range pipe.Apps {
		if pipe.Apps[i].Code != "" {
			pipe.Apps[i].Code = pipe.Apps[i].Code[:len(pipe.Apps[i].Code)/3]
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("pipeline ships no artifact to corrupt")
	}

	// Rollout of the now-corrupted artifact is refused with 409.
	rresp, rbody := postJSON(t, srv.URL+"/v1/endpoints/gated/rollout",
		RolloutRequest{JobID: job.ID, CanaryPercent: 50})
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("corrupted rollout status %d: %s", rresp.StatusCode, rbody)
	}
	var failure errorJSON
	if err := json.Unmarshal(rbody, &failure); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(failure.Error, "validation failed") {
		t.Fatalf("rollout refusal must name validation: %s", rbody)
	}

	// Creating a fresh gated endpoint from the corrupted job is refused
	// the same way; an ungated one still works.
	cresp, _ := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{
		Name: "gated2", JobID: job.ID, ValidateRollouts: true,
	})
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("corrupted gated create status %d", cresp.StatusCode)
	}
	uresp, _ := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{
		Name: "ungated", JobID: job.ID,
	})
	if uresp.StatusCode != http.StatusCreated {
		t.Fatalf("ungated create status %d", uresp.StatusCode)
	}
}
