// Package httpapi exposes a homunculus.Service over HTTP/JSON: the
// handler set behind cmd/homunculusd and the CLI's -serve mode. The
// wire surface (docs/api.md) is deliberately thin — every semantic
// (admission bounds, job states, content-addressed caching,
// single-flight) lives in the service layer and is reused verbatim:
//
//	POST   /v1/jobs             submit a compilation, returns the job
//	GET    /v1/jobs             list jobs (admission order)
//	GET    /v1/jobs/{id}        status snapshot (+ result when done)
//	GET    /v1/jobs/{id}/events live progress stream (SSE)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/backends         registered platform kinds + defaults
//
// Finished jobs are promoted to live inference servers through the
// /v1/endpoints surface (endpoints.go, docs/serving.md): named routes
// with revisions, canary/shadow rollouts, promote, and rollback —
// zero-downtime swaps over a batched, backpressured runtime with
// per-revision latency/throughput stats. The original flat
// /v1/deployments routes remain as thin aliases (deployments.go) that
// create endpoints behind auto-generated "dep-%06d" names. Every 429
// the API emits carries a Retry-After backoff hint.
//
// Dataset references resolve through the alchemy loader catalog;
// RegisterBuiltinLoaders installs the bundled synthetic generators so a
// fresh daemon can compile the quickstart spec out of the box.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/alchemy"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/loaders"

	homunculus "repro"
)

// registerBuiltins guards the catalog against double registration when
// both a daemon and its tests initialize.
var registerBuiltins sync.Once

// RegisterBuiltinLoaders installs the bundled synthetic dataset
// generators ("nslkdd", "iottc", "botnet", default configurations) in
// the alchemy loader catalog. Idempotent.
func RegisterBuiltinLoaders() {
	registerBuiltins.Do(func() {
		alchemy.RegisterLoader("nslkdd", loaders.NSLKDD(0, 0))
		alchemy.RegisterLoader("iottc", loaders.IoTTC(0, 0))
		alchemy.RegisterLoader("botnet", loaders.Botnet(0, 0))
	})
}

// SubmitRequest is the POST /v1/jobs body: the canonical platform wire
// document plus optional search-budget knobs (the CLI spec's "search"
// section).
type SubmitRequest struct {
	Platform *alchemy.PlatformJSON `json:"platform"`
	Search   *SearchJSON           `json:"search,omitempty"`
	// Validate runs translation validation after codegen and attaches
	// each app's verdict to the job result (docs/validation.md).
	Validate bool `json:"validate,omitempty"`
	// Delegated marks a submission forwarded by a peer's queue-full
	// fallback. A delegated submission that sheds here is a plain 429 —
	// never re-delegated — so a saturated cluster bounds forwarding at
	// one hop instead of ping-ponging jobs.
	Delegated bool `json:"delegated,omitempty"`
}

// SearchJSON mirrors the CLI spec's search knobs; zero fields keep
// defaults.
type SearchJSON struct {
	Init       int   `json:"init,omitempty"`
	Iterations int   `json:"iterations,omitempty"`
	Epochs     int   `json:"epochs,omitempty"`
	MaxLayers  int   `json:"max_layers,omitempty"`
	MaxNeurons int   `json:"max_neurons,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
}

// Config applies the knobs over the default search configuration.
func (s *SearchJSON) Config() core.SearchConfig {
	cfg := core.DefaultSearchConfig()
	if s == nil {
		return cfg
	}
	if s.Init > 0 {
		cfg.BO.InitSamples = s.Init
	}
	if s.Iterations > 0 {
		cfg.BO.Iterations = s.Iterations
	}
	if s.Epochs > 0 {
		cfg.TrainEpochs = s.Epochs
	}
	if s.MaxLayers > 0 {
		cfg.MaxHiddenLayers = s.MaxLayers
	}
	if s.MaxNeurons > 0 {
		cfg.MaxNeurons = s.MaxNeurons
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg
}

// JobJSON is the wire rendering of a job status snapshot.
type JobJSON struct {
	ID       string                                        `json:"id"`
	Platform string                                        `json:"platform"`
	State    homunculus.JobState                           `json:"state"`
	CacheHit bool                                          `json:"cache_hit,omitempty"`
	SpecHash string                                        `json:"spec_hash,omitempty"`
	Stages   map[homunculus.Stage]homunculus.StageProgress `json:"stages,omitempty"`
	Error    string                                        `json:"error,omitempty"`
	Result   *ResultJSON                                   `json:"result,omitempty"`
}

// ResultJSON summarizes a completed pipeline.
type ResultJSON struct {
	Platform    string         `json:"platform"`
	Apps        []AppJSON      `json:"apps"`
	Composition map[string]any `json:"composition,omitempty"`
}

// AppJSON is one compiled application.
type AppJSON struct {
	Name      string             `json:"name"`
	Algorithm string             `json:"algorithm,omitempty"`
	Metric    float64            `json:"metric"`
	Feasible  bool               `json:"feasible"`
	Verdict   map[string]float64 `json:"verdict,omitempty"`
	// Code is included only when the status request asks for it
	// (?include=code) — generated sources can be large.
	Code string `json:"code,omitempty"`
	// Validation is present when the job was submitted with
	// "validate": true.
	Validation *ValidationJSON `json:"validation,omitempty"`
}

// ValidationJSON is the wire form of a translation-validation verdict.
type ValidationJSON struct {
	OK          bool     `json:"ok"`
	Evaluators  []string `json:"evaluators,omitempty"`
	Inputs      int      `json:"inputs"`
	Divergences int      `json:"divergences"`
	Error       string   `json:"error,omitempty"`
	// Repro is the minimized divergence artifact; present only when the
	// status request asks for code/repro payloads (?include=code).
	Repro json.RawMessage `json:"repro,omitempty"`
}

// EventJSON is one SSE progress payload.
type EventJSON struct {
	Stage     homunculus.Stage `json:"stage"`
	Platform  string           `json:"platform,omitempty"`
	App       string           `json:"app,omitempty"`
	Candidate string           `json:"candidate,omitempty"`
	Done      bool             `json:"done"`
}

// BackendJSON describes one registered platform kind.
type BackendJSON struct {
	Kind     string                  `json:"kind"`
	CodeExt  string                  `json:"code_ext"`
	Defaults alchemy.ConstraintsJSON `json:"defaults"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// ListenAndServe is the daemon loop shared by cmd/homunculusd and the
// CLI's -serve mode: HTTP on addr over svc, with graceful shutdown on
// SIGINT/SIGTERM — stop accepting requests, drain in-flight handlers
// (30 s bound), then Close the service so running compilations finish
// and queued jobs fail with their ErrServiceClosed terminal state.
func ListenAndServe(addr string, svc *homunculus.Service) error {
	return ListenAndServeHandler(addr, svc, NewServer(svc))
}

// ListenAndServeHandler is ListenAndServe with a caller-built handler —
// the daemon uses it to mount the cluster fabric's routes
// (NewServerWith) around the same graceful-shutdown loop.
func ListenAndServeHandler(addr string, svc *homunculus.Service, handler http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		// Listen/serve failure (e.g. port in use) before any signal.
		return err
	case <-ctx.Done():
	}
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		_ = svc.Close()
		return fmt.Errorf("httpapi: shutdown: %w", err)
	}
	return svc.Close()
}

// ServerOptions extends the handler set with the cluster fabric's
// seams. The zero value is a plain single-node server.
type ServerOptions struct {
	// SubmitFallback is consulted when local job admission sheds with
	// ErrQueueFull (and the submission is not already delegated): it may
	// place the work elsewhere — delegation to the least-loaded live
	// peer — and return the local job handle tracking it. An error falls
	// through to the plain 429.
	SubmitFallback func(ctx context.Context, p *alchemy.Platform, opts []homunculus.Option, req SubmitRequest) (*homunculus.Job, error)
	// ClusterStats resolves GET /v1/endpoints/{name}/stats?scope=cluster
	// by merging the endpoint's histograms across live nodes. Nil maps
	// the scope to a 400 (not running in cluster mode).
	ClusterStats func(ctx context.Context, name string) (*ClusterStatsJSON, error)
	// Routes mounts extra patterns — the /v1/cluster/* surface.
	Routes map[string]http.HandlerFunc
}

// NewServer wraps the service in the /v1 HTTP handler set.
func NewServer(svc *homunculus.Service) http.Handler {
	return NewServerWith(svc, ServerOptions{})
}

// NewServerWith is NewServer plus cluster hooks.
func NewServerWith(svc *homunculus.Service, opts ServerOptions) http.Handler {
	h := &handler{svc: svc, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", h.healthz)
	for pattern, fn := range opts.Routes {
		mux.HandleFunc(pattern, fn)
	}
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("GET /v1/jobs", h.list)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("GET /v1/jobs/{id}/events", h.events)
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	mux.HandleFunc("GET /v1/backends", h.backends)
	mux.HandleFunc("POST /v1/deployments", h.deploy)
	mux.HandleFunc("GET /v1/deployments", h.listDeployments)
	mux.HandleFunc("GET /v1/deployments/{id}", h.deployment)
	mux.HandleFunc("POST /v1/deployments/{id}/classify", h.classify)
	mux.HandleFunc("GET /v1/deployments/{id}/stats", h.deploymentStats)
	mux.HandleFunc("DELETE /v1/deployments/{id}", h.undeploy)
	mux.HandleFunc("POST /v1/endpoints", h.createEndpoint)
	mux.HandleFunc("GET /v1/endpoints", h.listEndpoints)
	mux.HandleFunc("GET /v1/endpoints/{name}", h.endpoint)
	mux.HandleFunc("POST /v1/endpoints/{name}/rollout", h.rollout)
	mux.HandleFunc("POST /v1/endpoints/{name}/promote", h.promote)
	mux.HandleFunc("POST /v1/endpoints/{name}/rollback", h.rollback)
	mux.HandleFunc("POST /v1/endpoints/{name}/classify", h.endpointClassify)
	mux.HandleFunc("GET /v1/endpoints/{name}/stats", h.endpointStats)
	mux.HandleFunc("GET /v1/endpoints/{name}/config", h.getEndpointConfig)
	mux.HandleFunc("PUT /v1/endpoints/{name}/config", h.putEndpointConfig)
	mux.HandleFunc("POST /v1/endpoints/{name}/tune", h.tuneEndpoint)
	mux.HandleFunc("POST /v1/jobs/{id}/tune", h.tuneJob)
	mux.HandleFunc("DELETE /v1/endpoints/{name}", h.deleteEndpoint)
	return mux
}

type handler struct {
	svc  *homunculus.Service
	opts ServerOptions

	// depSeq mints the auto-generated endpoint names ("dep-%06d") behind
	// the flat /v1/deployments alias surface (deployments.go).
	depSeq atomic.Uint64
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		writeRetryAfter(w)
	}
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// retryAfterSeconds is the backoff hint attached to every 429: both the
// job queue and the classify intake shed in bursts that clear quickly,
// so a short, fixed hint beats none at all.
const retryAfterSeconds = "1"

// writeRetryAfter marks a shed response with the standard backoff
// header. Every 429 the API emits — job admission queue full, classify
// batch fully shed — carries it.
func writeRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterSeconds)
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.Platform == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a platform document"))
		return
	}
	p, err := alchemy.PlatformFromJSON(req.Platform)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Fail unknown dataset names at submission time (the catalog lookup
	// otherwise happens inside the job, where the client can only see
	// the failure by polling).
	for _, m := range p.Sched.Models() {
		if named, ok := m.Spec.DataLoader.(alchemy.NamedDataLoader); ok {
			if _, err := alchemy.LoaderFor(named.LoaderName()); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
	}
	// The job must outlive this request: submit with a background
	// context rather than r.Context(). DELETE /v1/jobs/{id} is the
	// cancellation path.
	opts := []homunculus.Option{homunculus.WithSearchConfig(req.Search.Config())}
	if req.Validate {
		opts = append(opts, homunculus.WithValidation())
	}
	job, err := h.svc.Submit(context.Background(), p, opts...)
	if err != nil {
		switch {
		case errors.Is(err, homunculus.ErrQueueFull):
			// Cluster delegation: instead of shedding, hand the wire spec
			// to a less-loaded peer and return a local job tracking it —
			// unless this submission already crossed a node (bounded at
			// one hop).
			if h.opts.SubmitFallback != nil && !req.Delegated {
				if djob, derr := h.opts.SubmitFallback(r.Context(), p, opts, req); derr == nil {
					w.Header().Set("Location", "/v1/jobs/"+djob.ID())
					writeJSON(w, http.StatusAccepted, jobJSON(djob, false))
					return
				}
			}
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, homunculus.ErrServiceClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, jobJSON(job, false))
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	jobs := h.svc.Jobs()
	out := make([]JobJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobJSON(j, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	job, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(job, r.URL.Query().Get("include") == "code"))
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	job, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	job.Cancel()
	// Cancellation is asynchronous for running jobs; report the state a
	// poll would now see.
	writeJSON(w, http.StatusOK, jobJSON(job, false))
}

// events streams the job's progress as Server-Sent Events: one
// "progress" event per pipeline Event (replaying history first), then a
// terminal "state" event, then EOF.
func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	job, ok := h.svc.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := job.Events()
	defer func() {
		// On early client disconnect, release the feed goroutine by
		// draining what remains (it closes once the job is terminal).
		go func() {
			for range ch {
			}
		}()
	}()
	enc := func(name string, v any) bool {
		raw, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, raw); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				st := job.Status()
				final := JobJSON{ID: st.ID, Platform: st.Platform, State: st.State, CacheHit: st.CacheHit}
				if st.Err != nil {
					final.Error = st.Err.Error()
				}
				enc("state", final)
				return
			}
			if !enc("progress", EventJSON{
				Stage: ev.Stage, Platform: ev.Platform, App: ev.App,
				Candidate: ev.Candidate, Done: ev.Done,
			}) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (h *handler) backends(w http.ResponseWriter, r *http.Request) {
	names := backend.Names()
	out := make([]BackendJSON, 0, len(names))
	for _, kind := range names {
		defaults, err := backend.Defaults(kind)
		if err != nil {
			continue
		}
		out = append(out, BackendJSON{
			Kind:    kind,
			CodeExt: backend.CodeExt(kind),
			Defaults: alchemy.ConstraintsJSON{
				ThroughputGPkts: defaults.Performance.ThroughputGPkts,
				LatencyNS:       defaults.Performance.LatencyNS,
				Rows:            defaults.Resources.Rows,
				Cols:            defaults.Resources.Cols,
				Tables:          defaults.Resources.Tables,
				MaxLUTPct:       defaults.Resources.MaxLUTPct,
				MaxPowerW:       defaults.Resources.MaxPowerW,
			},
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// jobJSON renders a status snapshot (with the result when terminal).
func jobJSON(j *homunculus.Job, includeCode bool) JobJSON {
	st := j.Status()
	out := JobJSON{
		ID:       st.ID,
		Platform: st.Platform,
		State:    st.State,
		CacheHit: st.CacheHit,
		SpecHash: st.SpecHash,
	}
	if len(st.Stages) > 0 {
		out.Stages = st.Stages
	}
	if st.Err != nil {
		out.Error = st.Err.Error()
	}
	if pipe, err := j.Result(); err == nil && pipe != nil {
		res := &ResultJSON{Platform: pipe.Platform}
		for _, app := range pipe.Apps {
			aj := AppJSON{
				Name:      app.Name,
				Algorithm: app.Algorithm,
				Metric:    app.Metric,
				Feasible:  app.Verdict.Feasible,
				Verdict:   app.Verdict.Metrics,
			}
			if includeCode {
				aj.Code = app.Code
			}
			if v := app.Validation; v != nil {
				aj.Validation = &ValidationJSON{
					OK:          v.OK(),
					Evaluators:  v.Evaluators,
					Inputs:      v.Inputs,
					Divergences: v.Divergences,
					Error:       v.Err,
				}
				if includeCode {
					aj.Validation.Repro = v.Repro
				}
			}
			res.Apps = append(res.Apps, aj)
		}
		if pipe.Composition != nil {
			res.Composition = map[string]any{
				"feasible": pipe.Composition.Feasible,
				"metrics":  pipe.Composition.Metrics,
			}
		}
		out.Result = res
	}
	return out
}
