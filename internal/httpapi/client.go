// Client is the retrying counterpart of the /v1 handler set: a thin
// HTTP/JSON client for the daemon wire surface that absorbs the
// transient failures the API is designed to emit. Every 429 the server
// sends carries a Retry-After hint (writeRetryAfter); the client honors
// it, and falls back to capped exponential backoff with full jitter for
// transport errors and gateway-class statuses (502/503/504). Anything
// else — 400s, 404s, 409s — is a real answer and returns immediately as
// an *APIError.
//
// Requests are replayable by construction: the body is marshaled once
// and re-read per attempt, so a POST that sheds on the admission queue
// is retried byte-identically (submission is content-addressed, so a
// duplicate delivery is a cache hit, not a duplicate compilation).

package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	homunculus "repro"
)

// APIError is a non-2xx daemon response that is not worth retrying (or
// that exhausted the retry budget).
type APIError struct {
	Status  int    // HTTP status code
	Message string // decoded "error" field, or the raw body
}

func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: server returned %d: %s", e.Status, e.Message)
}

// Client talks to a homunculusd daemon with retry/backoff. The zero
// value is not usable; construct with NewClient. Fields may be adjusted
// before the first request; they must not be mutated concurrently with
// requests.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient issues the requests (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds the total tries per request, first included
	// (default 5).
	MaxAttempts int
	// BaseDelay is the first retry's backoff before jitter (default
	// 100ms); each subsequent retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 5s). A server-provided
	// Retry-After is honored even above the cap — the server knows its
	// own queue.
	MaxDelay time.Duration
	// AttemptTimeout, when positive, bounds each individual attempt
	// (connect through body read) with its own deadline, derived from the
	// caller's context. Without it, one hung attempt consumes the whole
	// request budget before any retry fires — with it, a stalled peer
	// costs one attempt, not the request. The caller's context still
	// bounds the total: its cancellation interrupts both attempts and the
	// backoff sleeps between them.
	AttemptTimeout time.Duration

	// sleep is the backoff seam (tests shrink waits to observe them).
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a Client for the daemon at baseURL with default
// retry policy.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:     strings.TrimRight(baseURL, "/"),
		HTTPClient:  http.DefaultClient,
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		sleep:       sleepCtx,
	}
}

// sleeper returns the backoff sleep, tolerating Clients constructed as
// struct literals (nil seam) instead of via NewClient.
func (c *Client) sleeper() func(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep
	}
	return sleepCtx
}

// httpClient tolerates struct-literal Clients the same way.
func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether an HTTP status is a transient condition the
// API contract expects clients to retry.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the pre-jitter delay for retry number n (0-based).
func (c *Client) backoff(n int) time.Duration {
	d := c.BaseDelay
	for i := 0; i < n && d < c.MaxDelay; i++ {
		d *= 2
	}
	if d > c.MaxDelay {
		d = c.MaxDelay
	}
	// Full jitter over the upper half: uniformly in [d/2, d], so
	// synchronized clients desynchronize without collapsing the wait.
	if half := int64(d / 2); half > 0 {
		d = time.Duration(half + rand.Int63n(half+1))
	}
	return d
}

// Get issues a retrying GET and decodes the 2xx body into out (out may
// be nil to discard it).
func (c *Client) Get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// Post marshals in (nil for an empty body), issues a retrying POST, and
// decodes the 2xx body into out.
func (c *Client) Post(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, http.MethodPost, path, in, out)
}

// Put marshals in, issues a retrying PUT, and decodes the 2xx body
// into out.
func (c *Client) Put(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, http.MethodPut, path, in, out)
}

// Delete issues a retrying DELETE and decodes the 2xx body into out.
func (c *Client) Delete(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodDelete, path, nil, out)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("httpapi: marshal request: %w", err)
		}
	}
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	sleep := c.sleeper()
	var lastErr error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			if err := sleep(ctx, c.delayFor(lastErr, n-1)); err != nil {
				return err
			}
		}
		// Each attempt gets its own deadline (when configured) derived
		// from the caller's context: a hung connection costs one attempt,
		// and a caller cancel mid-attempt or mid-backoff returns
		// immediately with ctx.Err.
		attemptCtx, cancelAttempt := ctx, context.CancelFunc(func() {})
		if c.AttemptTimeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(ctx, c.AttemptTimeout)
		}
		req, err := http.NewRequestWithContext(attemptCtx, method, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			cancelAttempt()
			return fmt.Errorf("httpapi: build request: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			cancelAttempt()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Transport failure (refused, reset, torn connection, or an
			// expired attempt deadline): the daemon may be restarting or
			// stalled — exactly the window retries are for.
			lastErr = &transientError{err: err}
			continue
		}
		raw, readErr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		cancelAttempt()
		if readErr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = &transientError{err: readErr}
			continue
		}
		if resp.StatusCode/100 == 2 {
			if out == nil || len(raw) == 0 {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("httpapi: decode response: %w", err)
			}
			return nil
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: errorMessage(raw)}
		if !retryable(resp.StatusCode) {
			return apiErr
		}
		lastErr = &transientError{err: apiErr, retryAfter: resp.Header.Get("Retry-After")}
	}
	if te, ok := lastErr.(*transientError); ok {
		return te.err
	}
	return lastErr
}

// transientError threads the retryable failure (and its Retry-After
// hint, if any) between attempts.
type transientError struct {
	err        error
	retryAfter string
}

func (t *transientError) Error() string { return t.err.Error() }

// delayFor resolves the wait before the next attempt: the server's
// Retry-After when the last failure carried one, jittered backoff
// otherwise.
func (c *Client) delayFor(lastErr error, n int) time.Duration {
	if te, ok := lastErr.(*transientError); ok && te.retryAfter != "" {
		if secs, err := strconv.Atoi(te.retryAfter); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return c.backoff(n)
}

// errorMessage extracts the wire error field, falling back to the raw
// body.
func errorMessage(raw []byte) string {
	var e errorJSON
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// SubmitJob submits a compilation and returns the accepted job
// snapshot. Identical submissions are content-addressed server-side, so
// a retried (duplicately delivered) submit coalesces instead of
// compiling twice.
func (c *Client) SubmitJob(ctx context.Context, req SubmitRequest) (JobJSON, error) {
	var job JobJSON
	err := c.Post(ctx, "/v1/jobs", req, &job)
	return job, err
}

// Job fetches one job's status snapshot (includeCode asks for the
// generated sources in the result).
func (c *Client) Job(ctx context.Context, id string, includeCode bool) (JobJSON, error) {
	path := "/v1/jobs/" + id
	if includeCode {
		path += "?include=code"
	}
	var job JobJSON
	err := c.Get(ctx, path, &job)
	return job, err
}

// WaitJob polls a job until it reaches a terminal state (done, failed,
// or cancelled), at the given interval, returning the terminal
// snapshot. The context bounds the wait.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (JobJSON, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id, false)
		if err != nil {
			return job, err
		}
		switch job.State {
		case homunculus.JobDone, homunculus.JobFailed, homunculus.JobCancelled:
			return job, nil
		}
		if err := c.sleeper()(ctx, poll); err != nil {
			return job, err
		}
	}
}

// ClassifyEndpoint classifies a feature batch through a named endpoint.
// A fully shed batch is a 429 the retry policy absorbs; what returns is
// either a delivered (possibly partially shed) batch or a terminal
// error.
func (c *Client) ClassifyEndpoint(ctx context.Context, name string, features [][]float64) (ClassifyResponse, error) {
	var resp ClassifyResponse
	err := c.Post(ctx, "/v1/endpoints/"+name+"/classify", ClassifyRequest{Features: features}, &resp)
	return resp, err
}

// EndpointConfig fetches an endpoint's canonical effective serving
// configuration.
func (c *Client) EndpointConfig(ctx context.Context, name string) (homunculus.ServingConfig, error) {
	var cfg homunculus.ServingConfig
	err := c.Get(ctx, "/v1/endpoints/"+name+"/config", &cfg)
	return cfg, err
}

// PutEndpointConfig applies a serving configuration to an endpoint
// (complete-document semantics) and returns the now-effective config.
func (c *Client) PutEndpointConfig(ctx context.Context, name string, cfg homunculus.ServingConfig) (homunculus.ServingConfig, error) {
	var out homunculus.ServingConfig
	err := c.Put(ctx, "/v1/endpoints/"+name+"/config", cfg, &out)
	return out, err
}

// TuneEndpoint runs the replay-driven serving tuner against an
// endpoint's stable model and returns the report (frontier + chosen
// config).
func (c *Client) TuneEndpoint(ctx context.Context, name string, req TuneRequest) (TuneResponse, error) {
	var resp TuneResponse
	err := c.Post(ctx, "/v1/endpoints/"+name+"/tune", req, &resp)
	return resp, err
}

// Health fetches the daemon's health document (GET /v1/healthz).
func (c *Client) Health(ctx context.Context) (HealthJSON, error) {
	var out HealthJSON
	err := c.Get(ctx, "/v1/healthz", &out)
	return out, err
}

// EndpointRawStats fetches an endpoint's mergeable wire stats
// (?scope=raw): counters plus the log2 latency histogram.
func (c *Client) EndpointRawStats(ctx context.Context, name string) (homunculus.RawServingStats, error) {
	var out homunculus.RawServingStats
	err := c.Get(ctx, "/v1/endpoints/"+name+"/stats?scope=raw", &out)
	return out, err
}

// EndpointClusterStats fetches an endpoint's cluster-merged stats
// (?scope=cluster) from a cluster-mode daemon.
func (c *Client) EndpointClusterStats(ctx context.Context, name string) (ClusterStatsJSON, error) {
	var out ClusterStatsJSON
	err := c.Get(ctx, "/v1/endpoints/"+name+"/stats?scope=cluster", &out)
	return out, err
}

// ClusterStatus fetches the node + peer table and fabric counters
// (GET /v1/cluster) from a cluster-mode daemon.
func (c *Client) ClusterStatus(ctx context.Context) (ClusterStatusJSON, error) {
	var out ClusterStatusJSON
	err := c.Get(ctx, "/v1/cluster", &out)
	return out, err
}
