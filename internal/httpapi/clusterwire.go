package httpapi

// Wire documents for the /v1/cluster/* surface (docs/cluster.md). The
// handlers live in internal/cluster (mounted through ServerOptions.
// Routes); the types live here with the rest of the wire schema so the
// CLI and peers share one vocabulary without importing the fabric.
//
//	GET  /v1/cluster                 node + peer table, cache/steal counters
//	GET  /v1/cluster/health          heartbeat: identity, health, peer digests
//	GET  /v1/cluster/artifacts/{hash} verified artifact envelope by content address
//	PUT  /v1/cluster/artifacts/{hash} broadcast install (envelope body)
//	GET  /v1/cluster/backlog         stealable queued jobs
//	POST /v1/cluster/steal           claim one queued job for remote execution
//	POST /v1/cluster/stolen          report a stolen job's terminal state

import (
	"encoding/json"
	"errors"

	homunculus "repro"
)

// ErrEndpointNotFound marks a cluster-scope stats request for an
// endpoint no live node serves; the handler maps it to a 404.
var ErrEndpointNotFound = errors.New("httpapi: endpoint not found on any node")

// ClusterNodeJSON describes one node as its peers see it.
type ClusterNodeJSON struct {
	ID string `json:"id"`
	// Addr is the node's advertised base URL.
	Addr string `json:"addr"`
	// Epoch is the node's boot stamp (unix nanos); a changed epoch under
	// the same address means the process restarted.
	Epoch int64 `json:"epoch,omitempty"`
	// State: "self", "alive", "suspect" (missed heartbeats), "dead"
	// (evicted), or "unknown" (configured but never heard from).
	State string `json:"state"`
	// LastSeenMS is milliseconds since the last successful heartbeat.
	LastSeenMS int64 `json:"last_seen_ms,omitempty"`
	// Load, from the node's last health document.
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	MaxInFlight int `json:"max_in_flight,omitempty"`
	QueueDepth  int `json:"queue_depth,omitempty"`
	// Quarantined marks a peer that served a corrupt artifact; it is
	// skipped for fetches until it restarts (new epoch).
	Quarantined bool `json:"quarantined,omitempty"`
}

// HeartbeatJSON is the GET /v1/cluster/health exchange: the responding
// node's identity and health, plus digests of every peer it knows —
// the gossip that lets a static -peers list discover the full mesh.
type HeartbeatJSON struct {
	Node   ClusterNodeJSON   `json:"node"`
	Health HealthJSON        `json:"health"`
	Peers  []ClusterNodeJSON `json:"peers,omitempty"`
}

// ClusterStatusJSON is the GET /v1/cluster document.
type ClusterStatusJSON struct {
	Self      ClusterNodeJSON   `json:"self"`
	CacheMode string            `json:"cache_mode"`
	Peers     []ClusterNodeJSON `json:"peers"`
	Cache     ClusterCacheJSON  `json:"cache"`
	Steal     ClusterStealJSON  `json:"steal"`
}

// ClusterCacheJSON counts the shared-cache traffic of the active
// consistency mode (docs/cluster.md measures the modes against each
// other with these counters).
type ClusterCacheJSON struct {
	Mode string `json:"mode"`
	// RemoteHits/RemoteMisses count peer fetches by outcome; fetch
	// latency quantiles cover the hits.
	RemoteHits   uint64 `json:"remote_hits"`
	RemoteMisses uint64 `json:"remote_misses"`
	FetchP50NS   int64  `json:"fetch_p50_ns"`
	FetchP99NS   int64  `json:"fetch_p99_ns"`
	// Poisoned counts peer responses rejected by envelope verification
	// (and never installed); the serving peer is quarantined.
	Poisoned uint64 `json:"poisoned"`
	// Served counts artifact requests this node answered for peers.
	Served uint64 `json:"served"`
	// BroadcastsSent counts per-peer pushes of fresh local compiles;
	// Installs counts artifacts accepted from peers (fetch or broadcast).
	BroadcastsSent uint64 `json:"broadcasts_sent"`
	Installs       uint64 `json:"installs"`
}

// ClusterStealJSON counts work-stealing traffic from both sides.
type ClusterStealJSON struct {
	// Origin side: queue-full submissions delegated to a peer, and
	// delegations that fell back to running locally.
	Delegated      uint64 `json:"delegated"`
	DelegatedLocal uint64 `json:"delegated_local"`
	// Origin side: queued jobs granted to thieves, thief-reported
	// completions, and leases that expired into a local reclaim run.
	StolenGranted   uint64 `json:"stolen_granted"`
	StolenCompleted uint64 `json:"stolen_completed"`
	Reclaimed       uint64 `json:"reclaimed"`
	// Thief side: steal attempts against busy peers and stolen jobs
	// actually executed here.
	StealsAttempted uint64 `json:"steals_attempted"`
	StealsExecuted  uint64 `json:"steals_executed"`
}

// StealRequestJSON is the POST /v1/cluster/steal body: a thief asking
// the origin for one specific queued job.
type StealRequestJSON struct {
	JobID     string `json:"job_id"`
	ThiefID   string `json:"thief_id"`
	ThiefAddr string `json:"thief_addr"`
}

// StealGrantJSON hands the claimed job's wire form to the thief, with
// the lease the origin will wait before reclaiming the job.
type StealGrantJSON struct {
	JobID    string          `json:"job_id"`
	Platform string          `json:"platform"`
	Spec     json.RawMessage `json:"spec"`
	Search   json.RawMessage `json:"search"`
	LeaseMS  int64           `json:"lease_ms"`
}

// StealReportJSON is the POST /v1/cluster/stolen body: the thief
// reporting a stolen job's terminal state under its origin ID. Addr is
// where the origin fetches the result artifact.
type StealReportJSON struct {
	JobID    string `json:"job_id"`
	State    string `json:"state"` // "done" | "failed"
	SpecHash string `json:"spec_hash,omitempty"`
	Error    string `json:"error,omitempty"`
	Addr     string `json:"addr"`
}

// BacklogJSON is the GET /v1/cluster/backlog document: this node's
// stealable queued jobs.
type BacklogJSON struct {
	Node string                  `json:"node"`
	Jobs []homunculus.BacklogJob `json:"jobs"`
}

// NodeStatsJSON is one node's contribution to a cluster-scope stats
// merge.
type NodeStatsJSON struct {
	Node  string          `json:"node"`
	Addr  string          `json:"addr"`
	Stats DeployStatsJSON `json:"stats"`
}

// ClusterStatsJSON answers GET /v1/endpoints/{name}/stats?scope=cluster:
// per-node snapshots plus the exact merge (counters summed, quantiles
// over the summed histograms). Raw carries the merged wire accumulator
// so the document itself can be merged further.
type ClusterStatsJSON struct {
	Name   string                     `json:"name"`
	Scope  string                     `json:"scope"`
	Nodes  []NodeStatsJSON            `json:"nodes"`
	Merged DeployStatsJSON            `json:"merged"`
	Raw    homunculus.RawServingStats `json:"raw"`
}
