package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	homunculus "repro"
)

func httpPut(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPEndpointConfig drives the canonical config surface over the
// wire: create with a Serving document (explicit greedy flush), GET the
// effective config, PUT an invalid one (400 + violations list), PUT a
// valid adaptive config through the atomic rollout path, and watch the
// revision history grow.
func TestHTTPEndpointConfig(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)

	zero := int64(0)
	resp, body := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{
		Name: "cfg-ep", JobID: job.ID,
		Serving: &homunculus.ServingConfig{BatchSize: 8, MaxDelayNS: &zero},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}

	// GET returns the effective config: requested fields verbatim, the
	// explicit greedy flush preserved as a present zero.
	gresp, gbody := httpGet(t, srv.URL+"/v1/endpoints/cfg-ep/config")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("get config status %d: %s", gresp.StatusCode, gbody)
	}
	cfg, err := homunculus.ParseServingConfig(gbody)
	if err != nil {
		t.Fatalf("GET body is not a canonical config: %v\n%s", err, gbody)
	}
	if cfg.Version != 1 || cfg.BatchSize != 8 {
		t.Fatalf("effective config: %+v", cfg)
	}
	if cfg.MaxDelayNS == nil || *cfg.MaxDelayNS != 0 {
		t.Fatalf("explicit greedy flush lost: %+v", cfg)
	}

	// An invalid document is a 400 listing every violation.
	bresp, bbody := httpPut(t, srv.URL+"/v1/endpoints/cfg-ep/config",
		[]byte(`{"version":1,"batch_size":-5,"shards":100000}`))
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config status %d: %s", bresp.StatusCode, bbody)
	}
	var ce configErrorJSON
	if err := json.Unmarshal(bbody, &ce); err != nil || len(ce.Violations) != 2 {
		t.Fatalf("400 body must list both violations: %s", bbody)
	}

	// Unknown fields are rejected, not silently dropped.
	uresp, _ := httpPut(t, srv.URL+"/v1/endpoints/cfg-ep/config",
		[]byte(`{"version":1,"batch_sise":32}`))
	if uresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field config status %d", uresp.StatusCode)
	}

	// A valid PUT applies through the rollout path and echoes the
	// now-effective document.
	delay := int64(250_000)
	raw, err := json.Marshal(homunculus.ServingConfig{
		BatchSize: 16, MaxDelayNS: &delay, AdaptiveFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	presp, pbody := httpPut(t, srv.URL+"/v1/endpoints/cfg-ep/config", raw)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("put config status %d: %s", presp.StatusCode, pbody)
	}
	applied, err := homunculus.ParseServingConfig(pbody)
	if err != nil {
		t.Fatal(err)
	}
	if applied.BatchSize != 16 || !applied.AdaptiveFlush || applied.MaxDelayNS == nil || *applied.MaxDelayNS != delay {
		t.Fatalf("applied config: %+v", applied)
	}

	// The change rode the rollout path: a second revision now exists and
	// the endpoint still classifies.
	iresp, ibody := httpGet(t, srv.URL+"/v1/endpoints/cfg-ep")
	var ep EndpointJSON
	if iresp.StatusCode != http.StatusOK || json.Unmarshal(ibody, &ep) != nil {
		t.Fatalf("endpoint info: %d %s", iresp.StatusCode, ibody)
	}
	if ep.Stable != 2 || len(ep.Revisions) != 2 {
		t.Fatalf("config apply must create a promoted revision: %+v", ep)
	}
	cresp, cbody := postJSON(t, srv.URL+"/v1/endpoints/cfg-ep/classify",
		ClassifyRequest{Features: [][]float64{{0.1, 1.0}, {2.0, 0.1}}})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify after config apply: %d %s", cresp.StatusCode, cbody)
	}
}

// TestHTTPTuneEndpoint exercises POST /v1/endpoints/{name}/tune end to
// end with a tiny budget: the report carries a frontier and a feasible
// chosen config, apply=true installs it, and the SLO failure modes map
// to 400/409.
func TestHTTPTuneEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("replay tuning is wall-clock bound")
	}
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)
	resp, body := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{Name: "tune-ep", JobID: job.ID})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}

	// Missing and malformed SLOs are 400s before any replay runs.
	mresp, _ := postJSON(t, srv.URL+"/v1/endpoints/tune-ep/tune", TuneRequest{})
	if mresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing slo status %d", mresp.StatusCode)
	}
	sresp, sbody := postJSON(t, srv.URL+"/v1/endpoints/tune-ep/tune", TuneRequest{SLO: "p99>=2ms"})
	if sresp.StatusCode != http.StatusBadRequest || !strings.Contains(string(sbody), "p99") {
		t.Fatalf("bad slo: %d %s", sresp.StatusCode, sbody)
	}

	tresp, tbody := postJSON(t, srv.URL+"/v1/endpoints/tune-ep/tune", TuneRequest{
		SLO: "p99<=500ms", Seed: 3, Budget: 4, Clients: 2, MaxShards: 2,
		TraceSamples: 64, Apply: true,
	})
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("tune status %d: %s", tresp.StatusCode, tbody)
	}
	var tr TuneResponse
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Report == nil || len(tr.Report.Front) == 0 || !tr.Report.Chosen.Feasible || !tr.Applied {
		t.Fatalf("tune response: %s", tbody)
	}

	// apply=true installed the chosen config: the endpoint's effective
	// config now matches the report's choice.
	gresp, gbody := httpGet(t, srv.URL+"/v1/endpoints/tune-ep/config")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("get config status %d", gresp.StatusCode)
	}
	live, err := homunculus.ParseServingConfig(gbody)
	if err != nil {
		t.Fatal(err)
	}
	if live.BatchSize != tr.Report.Chosen.Config.BatchSize {
		t.Fatalf("applied batch %d, chosen %d", live.BatchSize, tr.Report.Chosen.Config.BatchSize)
	}

	// An SLO no config can meet is a 409 carrying the closest miss.
	iresp, ibody := postJSON(t, srv.URL+"/v1/endpoints/tune-ep/tune", TuneRequest{
		SLO: "p99<=1ns", Seed: 3, Budget: 4, Clients: 2, MaxShards: 2, TraceSamples: 64,
	})
	if iresp.StatusCode != http.StatusConflict || !strings.Contains(string(ibody), "closest") {
		t.Fatalf("infeasible slo: %d %s", iresp.StatusCode, ibody)
	}
}
