package httpapi

// Flat deployment routes: the original serving surface of the daemon,
// now a thin alias over the endpoint lifecycle API (endpoints.go). A
// POST mints an auto-generated endpoint name ("dep-%06d") and creates a
// single-revision endpoint behind it; every other route resolves that
// name through the endpoint table. The wire shapes are unchanged, so
// existing clients keep working — but the deployments they create are
// real endpoints: they show up under /v1/endpoints, can be rolled out
// to, and (on a durable daemon) survive restarts, which the retired
// flat Deploy runtime never did (docs/serving.md):
//
//	POST   /v1/deployments                 deploy a finished job's pipeline
//	GET    /v1/deployments                 list flat-named deployments
//	GET    /v1/deployments/{id}            deployment info + stats
//	POST   /v1/deployments/{id}/classify   classify a feature batch
//	GET    /v1/deployments/{id}/stats      serving metrics snapshot
//	DELETE /v1/deployments/{id}            drain and remove

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"time"

	homunculus "repro"
)

// DeployRequest is the POST /v1/deployments body. Zero-valued knobs
// select the runtime defaults.
type DeployRequest struct {
	// JobID names the finished compilation job to serve.
	JobID string `json:"job_id"`
	// App selects one application of a multi-model pipeline (default:
	// the first with a deployable model).
	App        string `json:"app,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	MaxDelayUS int64  `json:"max_delay_us,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
}

// DeploymentJSON is the wire rendering of a deployment: the flat view
// of a single-revision endpoint, its ID the auto-generated endpoint
// name.
type DeploymentJSON struct {
	ID         string           `json:"id"`
	JobID      string           `json:"job_id,omitempty"`
	App        string           `json:"app"`
	Platform   string           `json:"platform"`
	Algorithm  string           `json:"algorithm"`
	Features   int              `json:"features"`
	Classes    int              `json:"classes"`
	Shards     int              `json:"shards"`
	BatchSize  int              `json:"batch_size"`
	MaxDelayUS int64            `json:"max_delay_us"`
	QueueDepth int              `json:"queue_depth"`
	Stats      *DeployStatsJSON `json:"stats,omitempty"`
}

// DeployStatsJSON is the wire rendering of serving metrics.
type DeployStatsJSON struct {
	Accepted        uint64   `json:"accepted"`
	Completed       uint64   `json:"completed"`
	Dropped         uint64   `json:"dropped"`
	Errors          uint64   `json:"errors"`
	PerClass        []uint64 `json:"per_class"`
	Batches         uint64   `json:"batches"`
	FullFlushes     uint64   `json:"full_flushes"`
	DeadlineFlushes uint64   `json:"deadline_flushes"`
	MeanBatch       float64  `json:"mean_batch"`
	P50NS           int64    `json:"p50_ns"`
	P99NS           int64    `json:"p99_ns"`
	ThroughputRPS   float64  `json:"throughput_rps"`
	UptimeMS        int64    `json:"uptime_ms"`
}

// ClassifyRequest is the POST /v1/deployments/{id}/classify body: a
// batch of feature vectors.
type ClassifyRequest struct {
	Features [][]float64 `json:"features"`
}

// ClassifyResponse reports per-vector classes (-1 for shed or failed
// requests) plus the shed count — partial shedding under backpressure is
// an expected outcome, not an HTTP error.
type ClassifyResponse struct {
	Classes []int  `json:"classes"`
	Dropped int    `json:"dropped"`
	Error   string `json:"error,omitempty"`
}

func statsJSON(st homunculus.DeploymentStats) *DeployStatsJSON {
	return &DeployStatsJSON{
		Accepted:        st.Accepted,
		Completed:       st.Completed,
		Dropped:         st.Dropped,
		Errors:          st.Errors,
		PerClass:        st.PerClass,
		Batches:         st.Batches,
		FullFlushes:     st.FullFlushes,
		DeadlineFlushes: st.DeadlineFlushes,
		MeanBatch:       st.MeanBatch,
		P50NS:           st.P50.Nanoseconds(),
		P99NS:           st.P99.Nanoseconds(),
		ThroughputRPS:   st.Throughput,
		UptimeMS:        st.Uptime.Milliseconds(),
	}
}

// StatsJSON renders a serving-stats snapshot in wire form — exported so
// internal/cluster can render per-node and merged documents with the
// exact schema the local stats surface uses.
func StatsJSON(st homunculus.DeploymentStats) DeployStatsJSON { return *statsJSON(st) }

// flatDeploymentName matches the auto-minted names the alias surface
// assigns — what distinguishes its endpoints in the flat listing.
var flatDeploymentName = regexp.MustCompile(`^dep-\d{6}$`)

// deploymentJSON renders an endpoint in the flat deployment wire shape:
// the stable revision's identity plus the endpoint's merged stats.
func deploymentJSON(e *homunculus.Endpoint, withStats bool) DeploymentJSON {
	cfg := e.Config()
	out := DeploymentJSON{
		ID:         e.Name(),
		Platform:   e.Platform(),
		Shards:     cfg.Shards,
		BatchSize:  cfg.BatchSize,
		MaxDelayUS: cfg.MaxDelay.Microseconds(),
		QueueDepth: cfg.QueueDepth,
	}
	stable, _, _, _ := e.View()
	for _, rev := range e.Revisions() {
		if rev.ID == stable {
			out.JobID = rev.JobID
			out.App = rev.App
		}
	}
	if m := e.Model(); m != nil {
		out.Algorithm = m.Kind.String()
		out.Features = m.Inputs
		out.Classes = m.Outputs
	}
	if withStats {
		out.Stats = statsJSON(e.Stats().Merged)
	}
	return out
}

func (h *handler) deploy(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.JobID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a job_id"))
		return
	}
	opts := homunculus.EndpointOptions{
		App:        req.App,
		Shards:     req.Shards,
		BatchSize:  req.BatchSize,
		MaxDelay:   time.Duration(req.MaxDelayUS) * time.Microsecond,
		QueueDepth: req.QueueDepth,
	}
	// The flat surface carries no name, so mint "dep-%06d" names until
	// one is free: a durable daemon restores earlier alias endpoints
	// across restarts while the in-process counter starts over, and the
	// collision loop walks past them.
	var ep *homunculus.Endpoint
	var err error
	for {
		name := fmt.Sprintf("dep-%06d", h.depSeq.Add(1))
		ep, err = h.svc.CreateEndpoint(name, req.JobID, opts)
		if !errors.Is(err, homunculus.ErrEndpointExists) {
			break
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, homunculus.ErrJobNotFinished):
			// The job exists but has not produced a pipeline yet.
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrServiceClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, homunculus.ErrNotDeployable):
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/deployments/"+ep.Name())
	writeJSON(w, http.StatusCreated, deploymentJSON(ep, false))
}

func (h *handler) listDeployments(w http.ResponseWriter, r *http.Request) {
	out := make([]DeploymentJSON, 0)
	for _, e := range h.svc.Endpoints() {
		// Only the alias surface's own endpoints appear in the flat
		// listing; named endpoints stay under /v1/endpoints.
		if flatDeploymentName.MatchString(e.Name()) {
			out = append(out, deploymentJSON(e, false))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// deploymentFor resolves the {id} path segment through the endpoint
// table — the alias accepts any live endpoint name, so flat clients can
// also read and classify named endpoints.
func (h *handler) deploymentFor(w http.ResponseWriter, r *http.Request) (*homunculus.Endpoint, bool) {
	id := r.PathValue("id")
	e, ok := h.svc.Endpoint(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such deployment %q", id))
		return nil, false
	}
	return e, true
}

func (h *handler) deployment(w http.ResponseWriter, r *http.Request) {
	e, ok := h.deploymentFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, deploymentJSON(e, true))
}

func (h *handler) deploymentStats(w http.ResponseWriter, r *http.Request) {
	e, ok := h.deploymentFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statsJSON(e.Stats().Merged))
}

func (h *handler) classify(w http.ResponseWriter, r *http.Request) {
	e, ok := h.deploymentFor(w, r)
	if !ok {
		return
	}
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if len(req.Features) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a features batch"))
		return
	}
	classes, dropped, err := e.ClassifyBatch(req.Features)
	writeClassifyResponse(w, classes, dropped, err, len(req.Features))
}

// writeClassifyResponse maps a batch classify outcome to the wire: 409
// when the target is draining, 429 with a Retry-After hint when the
// whole batch was shed (nothing admitted — back off), 200 otherwise.
// Partial shedding is a 200 with dropped > 0 and -1 placeholders —
// expected behaviour under load, not an error.
func writeClassifyResponse(w http.ResponseWriter, classes []int, dropped int, err error, batchLen int) {
	resp := ClassifyResponse{Classes: classes, Dropped: dropped}
	if err != nil {
		resp.Error = err.Error()
	}
	switch {
	case errors.Is(err, homunculus.ErrDeploymentClosed):
		writeJSON(w, http.StatusConflict, resp)
	case dropped == batchLen:
		writeRetryAfter(w)
		writeJSON(w, http.StatusTooManyRequests, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (h *handler) undeploy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := h.svc.DeleteEndpoint(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// The drain has completed: the final stats are the deployment's
	// lifetime totals.
	writeJSON(w, http.StatusOK, statsJSON(st.Merged))
}
