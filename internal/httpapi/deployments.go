package httpapi

// Deployment endpoints: the serving side of the daemon. A finished
// compilation job can be promoted to a live inference server and driven
// with batched classify requests — the compile → serve lifecycle over
// one wire surface (docs/serving.md):
//
//	POST   /v1/deployments                 deploy a finished job's pipeline
//	GET    /v1/deployments                 list deployments
//	GET    /v1/deployments/{id}            deployment info + stats
//	POST   /v1/deployments/{id}/classify   classify a feature batch
//	GET    /v1/deployments/{id}/stats      serving metrics snapshot
//	DELETE /v1/deployments/{id}            drain and remove

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	homunculus "repro"
)

// DeployRequest is the POST /v1/deployments body. Zero-valued knobs
// select the runtime defaults.
type DeployRequest struct {
	// JobID names the finished compilation job to serve.
	JobID string `json:"job_id"`
	// App selects one application of a multi-model pipeline (default:
	// the first with a deployable model).
	App        string `json:"app,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	MaxDelayUS int64  `json:"max_delay_us,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
}

// DeploymentJSON is the wire rendering of a deployment.
type DeploymentJSON struct {
	ID         string           `json:"id"`
	JobID      string           `json:"job_id,omitempty"`
	App        string           `json:"app"`
	Platform   string           `json:"platform"`
	Algorithm  string           `json:"algorithm"`
	Features   int              `json:"features"`
	Classes    int              `json:"classes"`
	Shards     int              `json:"shards"`
	BatchSize  int              `json:"batch_size"`
	MaxDelayUS int64            `json:"max_delay_us"`
	QueueDepth int              `json:"queue_depth"`
	Stats      *DeployStatsJSON `json:"stats,omitempty"`
}

// DeployStatsJSON is the wire rendering of serving metrics.
type DeployStatsJSON struct {
	Accepted        uint64   `json:"accepted"`
	Completed       uint64   `json:"completed"`
	Dropped         uint64   `json:"dropped"`
	Errors          uint64   `json:"errors"`
	PerClass        []uint64 `json:"per_class"`
	Batches         uint64   `json:"batches"`
	FullFlushes     uint64   `json:"full_flushes"`
	DeadlineFlushes uint64   `json:"deadline_flushes"`
	MeanBatch       float64  `json:"mean_batch"`
	P50NS           int64    `json:"p50_ns"`
	P99NS           int64    `json:"p99_ns"`
	ThroughputRPS   float64  `json:"throughput_rps"`
	UptimeMS        int64    `json:"uptime_ms"`
}

// ClassifyRequest is the POST /v1/deployments/{id}/classify body: a
// batch of feature vectors.
type ClassifyRequest struct {
	Features [][]float64 `json:"features"`
}

// ClassifyResponse reports per-vector classes (-1 for shed or failed
// requests) plus the shed count — partial shedding under backpressure is
// an expected outcome, not an HTTP error.
type ClassifyResponse struct {
	Classes []int  `json:"classes"`
	Dropped int    `json:"dropped"`
	Error   string `json:"error,omitempty"`
}

func statsJSON(st homunculus.DeploymentStats) *DeployStatsJSON {
	return &DeployStatsJSON{
		Accepted:        st.Accepted,
		Completed:       st.Completed,
		Dropped:         st.Dropped,
		Errors:          st.Errors,
		PerClass:        st.PerClass,
		Batches:         st.Batches,
		FullFlushes:     st.FullFlushes,
		DeadlineFlushes: st.DeadlineFlushes,
		MeanBatch:       st.MeanBatch,
		P50NS:           st.P50.Nanoseconds(),
		P99NS:           st.P99.Nanoseconds(),
		ThroughputRPS:   st.Throughput,
		UptimeMS:        st.Uptime.Milliseconds(),
	}
}

func deploymentJSON(d *homunculus.Deployment, withStats bool) DeploymentJSON {
	cfg := d.Config()
	m := d.Model()
	out := DeploymentJSON{
		ID:         d.ID(),
		JobID:      d.JobID(),
		App:        d.App(),
		Platform:   d.Platform(),
		Algorithm:  m.Kind.String(),
		Features:   m.Inputs,
		Classes:    m.Outputs,
		Shards:     cfg.Shards,
		BatchSize:  cfg.BatchSize,
		MaxDelayUS: cfg.MaxDelay.Microseconds(),
		QueueDepth: cfg.QueueDepth,
	}
	if withStats {
		out.Stats = statsJSON(d.Stats())
	}
	return out
}

func (h *handler) deploy(w http.ResponseWriter, r *http.Request) {
	var req DeployRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if req.JobID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a job_id"))
		return
	}
	//lint:ignore SA1019 the /v1/deployments wire surface deliberately keeps serving the deprecated flat Deploy for compatibility
	dep, err := h.svc.Deploy(req.JobID, homunculus.DeployOptions{
		App:        req.App,
		Shards:     req.Shards,
		BatchSize:  req.BatchSize,
		MaxDelay:   time.Duration(req.MaxDelayUS) * time.Microsecond,
		QueueDepth: req.QueueDepth,
	})
	if err != nil {
		switch {
		case errors.Is(err, homunculus.ErrJobNotFinished):
			// The job exists but has not produced a pipeline yet.
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrServiceClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, homunculus.ErrNotDeployable):
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/deployments/"+dep.ID())
	writeJSON(w, http.StatusCreated, deploymentJSON(dep, false))
}

func (h *handler) listDeployments(w http.ResponseWriter, r *http.Request) {
	deps := h.svc.Deployments()
	out := make([]DeploymentJSON, 0, len(deps))
	for _, d := range deps {
		out = append(out, deploymentJSON(d, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) deployment(w http.ResponseWriter, r *http.Request) {
	d, ok := h.svc.Deployment(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such deployment %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, deploymentJSON(d, true))
}

func (h *handler) deploymentStats(w http.ResponseWriter, r *http.Request) {
	d, ok := h.svc.Deployment(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such deployment %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, statsJSON(d.Stats()))
}

func (h *handler) classify(w http.ResponseWriter, r *http.Request) {
	d, ok := h.svc.Deployment(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such deployment %q", r.PathValue("id")))
		return
	}
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	if len(req.Features) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs a features batch"))
		return
	}
	classes, dropped, err := d.ClassifyBatch(req.Features)
	writeClassifyResponse(w, classes, dropped, err, len(req.Features))
}

// writeClassifyResponse maps a batch classify outcome to the wire: 409
// when the target is draining, 429 with a Retry-After hint when the
// whole batch was shed (nothing admitted — back off), 200 otherwise.
// Partial shedding is a 200 with dropped > 0 and -1 placeholders —
// expected behaviour under load, not an error.
func writeClassifyResponse(w http.ResponseWriter, classes []int, dropped int, err error, batchLen int) {
	resp := ClassifyResponse{Classes: classes, Dropped: dropped}
	if err != nil {
		resp.Error = err.Error()
	}
	switch {
	case errors.Is(err, homunculus.ErrDeploymentClosed):
		writeJSON(w, http.StatusConflict, resp)
	case dropped == batchLen:
		writeRetryAfter(w)
		writeJSON(w, http.StatusTooManyRequests, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (h *handler) undeploy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := h.svc.Undeploy(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// The drain has completed: the final stats are the deployment's
	// lifetime totals.
	writeJSON(w, http.StatusOK, statsJSON(st))
}
