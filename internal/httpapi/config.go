package httpapi

// The serving-config and autopilot wire surface (docs/tuning.md):
//
//	GET  /v1/endpoints/{name}/config   the canonical effective ServingConfig
//	PUT  /v1/endpoints/{name}/config   validate + apply a config atomically
//	POST /v1/endpoints/{name}/tune     replay-driven BO tuning of the endpoint
//	POST /v1/jobs/{id}/tune            offline tuning of a finished job's model
//
// GET/PUT speak the canonical versioned ServingConfig document —
// complete-document semantics, so GET, edit, PUT round-trips losslessly.
// A config that fails validation is a 400 whose body lists every
// violation; PUT applies through the endpoint's atomic rollout path
// (409 while another rollout is in flight, previous bounds one
// rollback away). Tuning replays a trace against sandboxed candidate
// runtimes — the live endpoint is untouched unless "apply" is set.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	homunculus "repro"
)

// TuneRequest is the POST .../tune body.
type TuneRequest struct {
	// SLO is the objective bound list, e.g. "p99<=2ms,drops=0".
	// Required.
	SLO string `json:"slo"`
	// Seed fixes the optimizer's randomness (same seed + same trace =
	// same report).
	Seed int64 `json:"seed,omitempty"`
	// Budget caps candidate evaluations (default 24).
	Budget int `json:"budget,omitempty"`
	// Clients is the replay concurrency (default 8).
	Clients int `json:"clients,omitempty"`
	// MaxShards bounds the shard axis (default GOMAXPROCS).
	MaxShards int `json:"max_shards,omitempty"`
	// TraceSamples sizes the synthetic replay trace (default 512).
	TraceSamples int `json:"trace_samples,omitempty"`
	// App selects the application to tune (job tuning only).
	App string `json:"app,omitempty"`
	// Apply applies the chosen config to the endpoint on success
	// (endpoint tuning only).
	Apply bool `json:"apply,omitempty"`
}

// TuneResponse wraps the tuner's report: the evaluated candidates, the
// Pareto frontier, and the chosen config.
type TuneResponse struct {
	Report  *homunculus.TuneReport `json:"report"`
	Applied bool                   `json:"applied,omitempty"`
}

// configErrorJSON is the 400 body of a rejected config: the flat error
// plus the individual violations, each naming the field and its
// accepted range.
type configErrorJSON struct {
	Error      string   `json:"error"`
	Violations []string `json:"violations,omitempty"`
}

// writeConfigAwareError renders err like writeError, but when a
// ServingConfig validation failure is inside, the body also carries the
// machine-readable violations list.
func writeConfigAwareError(w http.ResponseWriter, code int, err error) {
	var ce *homunculus.ServingConfigError
	if errors.As(err, &ce) {
		writeJSON(w, code, configErrorJSON{Error: err.Error(), Violations: ce.Violations})
		return
	}
	writeError(w, code, err)
}

func (h *handler) getEndpointConfig(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	raw, err := ep.ServingConfig().Canonical()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(append(raw, '\n'))
}

func (h *handler) putEndpointConfig(w http.ResponseWriter, r *http.Request) {
	ep, ok := h.endpointFor(w, r)
	if !ok {
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	cfg, err := homunculus.ParseServingConfig(raw)
	if err != nil {
		writeConfigAwareError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := ep.ApplyConfig(cfg); err != nil {
		switch {
		case errors.Is(err, homunculus.ErrRolloutActive),
			errors.Is(err, homunculus.ErrEndpointClosed):
			writeError(w, http.StatusConflict, err)
		default:
			writeConfigAwareError(w, http.StatusBadRequest, err)
		}
		return
	}
	// Echo the now-effective config back (defaults resolved), so the
	// response is the document a follow-up GET would return.
	h.getEndpointConfig(w, r)
}

// tuneOptions maps the wire request onto the service tuning options.
func tuneOptions(req TuneRequest) homunculus.TuneOptions {
	return homunculus.TuneOptions{
		SLO:          req.SLO,
		Seed:         req.Seed,
		Budget:       req.Budget,
		Clients:      req.Clients,
		MaxShards:    req.MaxShards,
		TraceSamples: req.TraceSamples,
		App:          req.App,
		Apply:        req.Apply,
	}
}

// decodeTuneRequest parses and sanity-checks the tune body.
func decodeTuneRequest(w http.ResponseWriter, r *http.Request) (TuneRequest, bool) {
	var req TuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return req, false
	}
	if req.SLO == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request needs an slo, e.g. \"p99<=2ms,drops=0\""))
		return req, false
	}
	return req, true
}

// writeTuneResult maps the tuner outcome onto the wire: 200 with the
// report, 409 for an infeasible SLO (the closest miss rides in the
// error), 400 for a bad SLO spelling.
func (h *handler) writeTuneResult(w http.ResponseWriter, rep *homunculus.TuneReport, applied bool, err error) {
	if err != nil {
		switch {
		case errors.Is(err, homunculus.ErrTuneInfeasible):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrRolloutActive):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, homunculus.ErrJobNotFinished):
			writeError(w, http.StatusConflict, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, TuneResponse{Report: rep, Applied: applied})
}

func (h *handler) tuneEndpoint(w http.ResponseWriter, r *http.Request) {
	if _, ok := h.endpointFor(w, r); !ok {
		return
	}
	req, ok := decodeTuneRequest(w, r)
	if !ok {
		return
	}
	// The tuner runs for the life of the request: a disconnecting client
	// cancels the replay via the request context.
	rep, err := h.svc.TuneEndpoint(r.Context(), r.PathValue("name"), tuneOptions(req))
	h.writeTuneResult(w, rep, err == nil && req.Apply, err)
}

func (h *handler) tuneJob(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeTuneRequest(w, r)
	if !ok {
		return
	}
	rep, err := h.svc.Tune(r.Context(), r.PathValue("id"), tuneOptions(req))
	h.writeTuneResult(w, rep, false, err)
}
