package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	homunculus "repro"
)

// testClient wires a Client to a test server with a recording sleep
// seam so backoff waits are observable instead of slept.
func testClient(srv *httptest.Server) (*Client, *[]time.Duration) {
	c := NewClient(srv.URL)
	c.BaseDelay = 10 * time.Millisecond
	c.MaxDelay = 80 * time.Millisecond
	var waits []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		waits = append(waits, d)
		return ctx.Err()
	}
	return c, &waits
}

// TestClientRetriesOn429 pins the headline contract: a shed request
// (429 + Retry-After, exactly what writeRetryAfter emits) is retried
// with the server's hint and eventually succeeds, with the POST body
// replayed byte-identically on every attempt.
func TestClientRetriesOn429(t *testing.T) {
	var calls atomic.Int32
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(raw))
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorJSON{Error: "queue full"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": "yes"})
	}))
	defer srv.Close()

	c, waits := testClient(srv)
	var out map[string]string
	if err := c.Post(context.Background(), "/x", map[string]int{"n": 7}, &out); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	if out["ok"] != "yes" {
		t.Fatalf("response %v", out)
	}
	// Retry-After: 1 wins over the (smaller) backoff schedule.
	if len(*waits) != 2 || (*waits)[0] != time.Second || (*waits)[1] != time.Second {
		t.Fatalf("waits %v, want [1s 1s] from Retry-After", *waits)
	}
	for i, b := range bodies {
		if b != bodies[0] {
			t.Fatalf("attempt %d body %q != first attempt %q", i, b, bodies[0])
		}
	}
}

// TestClientBackoffJitter: without a Retry-After hint, retries wait a
// jittered exponential backoff in [d/2, d] capped at MaxDelay.
func TestClientBackoffJitter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "restarting"})
	}))
	defer srv.Close()

	c, waits := testClient(srv)
	c.MaxAttempts = 6
	err := c.Get(context.Background(), "/x", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if len(*waits) != 5 {
		t.Fatalf("%d waits, want 5", len(*waits))
	}
	// Pre-jitter schedule: 10ms, 20ms, 40ms, 80ms, 80ms (capped).
	for i, ceil := range []time.Duration{10, 20, 40, 80, 80} {
		ceil *= time.Millisecond
		got := (*waits)[i]
		if got < ceil/2 || got > ceil {
			t.Fatalf("wait %d = %v outside jitter window [%v, %v]", i, got, ceil/2, ceil)
		}
	}
}

// TestClientNoRetryOnClientError: a 404 is an answer, not a transient —
// one attempt, immediate *APIError with the decoded message.
func TestClientNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusNotFound, errorJSON{Error: `no such job "job-000009"`})
	}))
	defer srv.Close()

	c, waits := testClient(srv)
	err := c.Get(context.Background(), "/v1/jobs/job-000009", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Message != `no such job "job-000009"` {
		t.Fatalf("APIError %+v", apiErr)
	}
	if calls.Load() != 1 || len(*waits) != 0 {
		t.Fatalf("attempts=%d waits=%v, want exactly one try", calls.Load(), *waits)
	}
}

// TestClientRetriesTransportErrors: a refused connection (daemon down,
// mid-restart) retries until the budget runs out and surfaces the
// transport error.
func TestClientRetriesTransportErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // connection refused from here on

	c, waits := testClient(srv)
	c.MaxAttempts = 3
	err := c.Get(context.Background(), "/x", nil)
	if err == nil {
		t.Fatal("refused connection must error after retries")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("transport failure surfaced as APIError: %v", err)
	}
	if len(*waits) != 2 {
		t.Fatalf("%d waits, want 2 (3 attempts)", len(*waits))
	}
}

// TestClientRecoversWhenServerReturns proves the restart window story:
// transport errors first, then success — the client rides through.
func TestClientRecoversWhenServerReturns(t *testing.T) {
	var calls atomic.Int32
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"n": 1})
	})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			// Kill the connection without a response: a torn socket.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, _ := testClient(srv)
	var out map[string]int
	if err := c.Get(context.Background(), "/x", &out); err != nil {
		t.Fatal(err)
	}
	if out["n"] != 1 || calls.Load() != 3 {
		t.Fatalf("out=%v calls=%d", out, calls.Load())
	}
}

// TestClientContextCancellation: a cancelled context stops the retry
// loop in its backoff sleep.
func TestClientContextCancellation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "restarting"})
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if err := c.Get(ctx, "/x", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestClientWaitJob polls through non-terminal states to the terminal
// snapshot.
func TestClientWaitJob(t *testing.T) {
	states := []homunculus.JobState{homunculus.JobQueued, homunculus.JobRunning, homunculus.JobDone}
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n >= len(states) {
			n = len(states) - 1
		}
		writeJSON(w, http.StatusOK, JobJSON{ID: "job-000001", State: states[n], CacheHit: n == len(states)-1})
	}))
	defer srv.Close()

	c, waits := testClient(srv)
	job, err := c.WaitJob(context.Background(), "job-000001", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != homunculus.JobDone || !job.CacheHit {
		t.Fatalf("terminal snapshot %+v", job)
	}
	if calls.Load() != 3 || len(*waits) != 2 {
		t.Fatalf("calls=%d waits=%d, want 3 polls with 2 sleeps", calls.Load(), len(*waits))
	}
}

// TestClientAgainstRealServer drives SubmitJob/WaitJob/ClassifyEndpoint
// against the actual handler set end to end.
func TestClientAgainstRealServer(t *testing.T) {
	RegisterBuiltinLoaders()
	svc := homunculus.New(homunculus.ServiceOptions{MaxInFlight: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewServer(svc))
	defer srv.Close()

	c := NewClient(srv.URL)
	ctx := context.Background()
	req := SubmitRequest{Search: &SearchJSON{Init: 2, Iterations: 2, Epochs: 3, MaxLayers: 2, MaxNeurons: 8, Seed: 1}}
	if err := json.Unmarshal([]byte(`{
		"kind": "taurus",
		"constraints": {"throughput_gpkts": 1, "latency_ns": 500, "rows": 16, "cols": 16},
		"schedule": {"model": {"name": "ad", "metric": "f1", "algorithms": ["dnn"], "dataset": "nslkdd"}}
	}`), &req.Platform); err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitJob(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != homunculus.JobDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	var ep EndpointJSON
	if err := c.Post(ctx, "/v1/endpoints", EndpointRequest{
		Name: "ad", JobID: job.ID, BatchSize: 8, MaxDelayUS: 1000,
	}, &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Stable != 1 {
		t.Fatalf("endpoint %+v", ep)
	}
	resp, err := c.ClassifyEndpoint(ctx, "ad", [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7},
		{5, 4, 3, 2, 1, 0.5, 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Classes) != 2 || resp.Dropped != 0 {
		t.Fatalf("classify %+v", resp)
	}
}
