package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/alchemy"

	homunculus "repro"
)

// deployTestLoaders registers a blocking loader private to this file so
// releasing it cannot interfere with httpapi_test.go's cancellation
// gate.
var (
	deployTestLoaders   sync.Once
	deployRelease       = make(chan struct{})
	deployReleaseOnce   sync.Once
	deployBlockDatasets = func() {
		deployTestLoaders.Do(func() {
			alchemy.RegisterLoader("httpapi_deploy_block", alchemy.DataLoaderFunc(func() (*alchemy.Data, error) {
				<-deployRelease
				return tinyData(), nil
			}))
		})
	}
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func doDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// compileDone submits the tiny spec and polls the job to done.
func compileDone(t *testing.T, srv *httptest.Server) JobJSON {
	t.Helper()
	job, resp := postJob(t, srv, submitBody("httpapi_tiny"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status %d", resp.StatusCode)
	}
	final := pollDone(t, srv, job.ID)
	if final.State != homunculus.JobDone {
		t.Fatalf("job state %q (%s)", final.State, final.Error)
	}
	return final
}

// TestHTTPDeployLifecycle is the daemon acceptance path: compile, deploy,
// classify a batch, read stats (>= the request count, nonzero p99), then
// DELETE-drain.
func TestHTTPDeployLifecycle(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)

	resp, body := postJSON(t, srv.URL+"/v1/deployments", DeployRequest{
		JobID: job.ID, BatchSize: 8, MaxDelayUS: 1000,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status %d: %s", resp.StatusCode, body)
	}
	var dep DeploymentJSON
	if err := json.Unmarshal(body, &dep); err != nil {
		t.Fatal(err)
	}
	if dep.ID == "" || dep.JobID != job.ID || dep.App != "tiny" || dep.Algorithm != "dtree" || dep.Features != 2 {
		t.Fatalf("deployment document: %+v", dep)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/deployments/"+dep.ID {
		t.Fatalf("Location %q", loc)
	}

	// The listing shows it; the info endpoint carries stats.
	lresp, lbody := httpGet(t, srv.URL+"/v1/deployments")
	var all []DeploymentJSON
	if err := json.Unmarshal(lbody, &all); err != nil {
		t.Fatal(err)
	}
	if lresp.StatusCode != http.StatusOK || len(all) != 1 || all[0].ID != dep.ID {
		t.Fatalf("listing: %d %s", lresp.StatusCode, lbody)
	}

	// Classify a replayed batch: the tiny dataset's own feature space.
	batch := ClassifyRequest{Features: [][]float64{{0.1, 1.0}, {2.0, 0.1}, {0.2, 1.1}, {2.1, 0.0}}}
	cresp, cbody := postJSON(t, srv.URL+"/v1/deployments/"+dep.ID+"/classify", batch)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", cresp.StatusCode, cbody)
	}
	var cls ClassifyResponse
	if err := json.Unmarshal(cbody, &cls); err != nil {
		t.Fatal(err)
	}
	if len(cls.Classes) != 4 || cls.Dropped != 0 || cls.Error != "" {
		t.Fatalf("classify response: %+v", cls)
	}
	for i, c := range cls.Classes {
		if c < 0 || c > 1 {
			t.Fatalf("class %d out of range in %+v", i, cls)
		}
	}

	// Stats must account for at least the classified batch with a
	// nonzero latency tail.
	sresp, sbody := httpGet(t, srv.URL+"/v1/deployments/"+dep.ID+"/stats")
	var st DeployStatsJSON
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK || st.Completed < 4 || st.P99NS == 0 {
		t.Fatalf("stats: %d %+v", sresp.StatusCode, st)
	}
	if st.PerClass[0]+st.PerClass[1] != st.Completed {
		t.Fatalf("per-class counts must partition completions: %+v", st)
	}

	// DELETE drains and reports the final totals; the deployment is gone.
	dresp, dbody := doDelete(t, srv.URL+"/v1/deployments/"+dep.ID)
	var final DeployStatsJSON
	if err := json.Unmarshal(dbody, &final); err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK || final.Completed != st.Completed {
		t.Fatalf("drain: %d %+v", dresp.StatusCode, final)
	}
	gresp, _ := httpGet(t, srv.URL+"/v1/deployments/"+dep.ID)
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("undeployed GET status %d", gresp.StatusCode)
	}
	cresp2, _ := postJSON(t, srv.URL+"/v1/deployments/"+dep.ID+"/classify", batch)
	if cresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("undeployed classify status %d", cresp2.StatusCode)
	}
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPDeployErrors(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 1, CacheEntries: -1})

	// Bad bodies.
	for label, body := range map[string]string{
		"not json":  `{`,
		"no job id": `{}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/deployments", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", label, resp.StatusCode)
		}
	}

	// Unknown job.
	resp, _ := postJSON(t, srv.URL+"/v1/deployments", DeployRequest{JobID: "job-999999"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}

	// A job that has not finished yet conflicts.
	deployBlockDatasets()
	blocked, presp := postJob(t, srv, submitBody("httpapi_deploy_block"))
	if presp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", presp.StatusCode)
	}
	resp, body := postJSON(t, srv.URL+"/v1/deployments", DeployRequest{JobID: blocked.ID})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unfinished job deploy status %d: %s", resp.StatusCode, body)
	}
	// Unblock and settle the job so service Close can drain.
	deployReleaseOnce.Do(func() { close(deployRelease) })
	pollDone(t, srv, blocked.ID)

	// Unknown deployment paths 404.
	gresp, _ := httpGet(t, srv.URL+"/v1/deployments/dep-999999")
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown deployment GET %d", gresp.StatusCode)
	}
	dresp, _ := doDelete(t, srv.URL+"/v1/deployments/dep-999999")
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown deployment DELETE %d", dresp.StatusCode)
	}

	// Unknown app on a real job.
	done := compileDone(t, srv)
	resp, body = postJSON(t, srv.URL+"/v1/deployments", DeployRequest{JobID: done.ID, App: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown app status %d: %s", resp.StatusCode, body)
	}

	// Empty classify batch on a live deployment.
	resp, body = postJSON(t, srv.URL+"/v1/deployments", DeployRequest{JobID: done.ID})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status %d: %s", resp.StatusCode, body)
	}
	var dep DeploymentJSON
	if err := json.Unmarshal(body, &dep); err != nil {
		t.Fatal(err)
	}
	cresp, _ := postJSON(t, srv.URL+"/v1/deployments/"+dep.ID+"/classify", ClassifyRequest{})
	if cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", cresp.StatusCode)
	}
}

// TestHTTPClassifyFeatureMismatch: wrong-width vectors are per-item
// failures (-1) with the error surfaced, not a transport error.
func TestHTTPClassifyFeatureMismatch(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)
	resp, body := postJSON(t, srv.URL+"/v1/deployments", DeployRequest{JobID: job.ID})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status %d: %s", resp.StatusCode, body)
	}
	var dep DeploymentJSON
	if err := json.Unmarshal(body, &dep); err != nil {
		t.Fatal(err)
	}
	cresp, cbody := postJSON(t, srv.URL+"/v1/deployments/"+dep.ID+"/classify",
		ClassifyRequest{Features: [][]float64{{0.1, 1.0}, {0.5}}})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d", cresp.StatusCode)
	}
	var cls ClassifyResponse
	if err := json.Unmarshal(cbody, &cls); err != nil {
		t.Fatal(err)
	}
	if cls.Classes[0] < 0 || cls.Classes[1] != -1 || cls.Error == "" {
		t.Fatalf("mismatch handling: %+v", cls)
	}
}

// TestHTTPDeploymentJSONShape pins the stats wire format the CI daemon
// smoke greps for.
func TestHTTPDeploymentJSONShape(t *testing.T) {
	st := statsJSON(homunculus.DeploymentStats{Accepted: 2, Completed: 2, PerClass: []uint64{1, 1}})
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"accepted"`, `"completed"`, `"dropped"`, `"p50_ns"`, `"p99_ns"`, `"throughput_rps"`, `"per_class"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Fatalf("stats JSON missing %s: %s", key, raw)
		}
	}
}

// TestHTTPDeploymentIsEndpointAlias pins the folded surface: a flat
// deployment is a real endpoint behind a minted "dep-%06d" name —
// visible and rollout-able under /v1/endpoints — while the flat listing
// shows only alias-minted names.
func TestHTTPDeploymentIsEndpointAlias(t *testing.T) {
	srv, _ := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job := compileDone(t, srv)

	resp, body := postJSON(t, srv.URL+"/v1/deployments", DeployRequest{JobID: job.ID})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy status %d: %s", resp.StatusCode, body)
	}
	var dep DeploymentJSON
	if err := json.Unmarshal(body, &dep); err != nil {
		t.Fatal(err)
	}
	if !flatDeploymentName.MatchString(dep.ID) {
		t.Fatalf("deployment ID %q is not an auto-minted endpoint name", dep.ID)
	}

	// The same resource is a live endpoint with a stable revision 1.
	eresp, ebody := httpGet(t, srv.URL+"/v1/endpoints/"+dep.ID)
	var ep EndpointJSON
	if err := json.Unmarshal(ebody, &ep); err != nil {
		t.Fatal(err)
	}
	if eresp.StatusCode != http.StatusOK || ep.Name != dep.ID || ep.Stable != 1 {
		t.Fatalf("endpoint view of deployment: %d %s", eresp.StatusCode, ebody)
	}

	// The endpoint lifecycle works on it: roll out the same job as
	// revision 2 and promote.
	rresp, rbody := postJSON(t, srv.URL+"/v1/endpoints/"+dep.ID+"/rollout",
		RolloutRequest{JobID: job.ID, CanaryPercent: 50})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("rollout on deployment: %d %s", rresp.StatusCode, rbody)
	}
	presp, pbody := postJSON(t, srv.URL+"/v1/endpoints/"+dep.ID+"/promote", struct{}{})
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("promote on deployment: %d %s", presp.StatusCode, pbody)
	}

	// A named endpoint stays out of the flat listing, but the alias
	// resolves it by name for reads.
	cresp, cbody := postJSON(t, srv.URL+"/v1/endpoints", EndpointRequest{Name: "alias-named", JobID: job.ID})
	if cresp.StatusCode != http.StatusCreated {
		t.Fatalf("named endpoint create: %d %s", cresp.StatusCode, cbody)
	}
	lresp, lbody := httpGet(t, srv.URL+"/v1/deployments")
	var all []DeploymentJSON
	if err := json.Unmarshal(lbody, &all); err != nil {
		t.Fatal(err)
	}
	if lresp.StatusCode != http.StatusOK || len(all) != 1 || all[0].ID != dep.ID {
		t.Fatalf("flat listing must show only minted names: %d %s", lresp.StatusCode, lbody)
	}
	gresp, _ := httpGet(t, srv.URL+"/v1/deployments/alias-named")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("alias read of named endpoint: %d", gresp.StatusCode)
	}
}
