package httpapi

// PR10 surface tests: the health document, the per-attempt client
// deadline, and the stats scopes the cluster merge builds on.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	homunculus "repro"
)

func TestHealthzDocument(t *testing.T) {
	srv, svc := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2, QueueDepth: 8})
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.MaxInFlight != 2 || h.QueueDepth != 8 || h.Durable {
		t.Fatalf("healthz: %+v", h)
	}
	if h.Recovery != nil {
		t.Fatal("in-memory daemon reported a recovery summary")
	}
	_ = svc
}

func TestHealthzDegradedOnStoreErrors(t *testing.T) {
	// The Health builder flips status once the service has absorbed
	// store errors; svc.StoreErrors is monotonic, so rendering is pure.
	h := HealthJSON{Status: "ok", StoreErrors: 0}
	if h.Status != "ok" {
		t.Fatal("baseline")
	}
	// Rendering logic lives in Health(); exercised end-to-end in the
	// durability tests. Here pin the wire contract: a degraded document
	// still decodes.
	raw := []byte(`{"status":"degraded","store_errors":3,"queued":0,"running":0,"max_in_flight":1,"queue_depth":1,"endpoints":0,"durable":true}`)
	var back HealthJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Status != "degraded" || back.StoreErrors != 3 || !back.Durable {
		t.Fatalf("degraded document: %+v", back)
	}
}

// TestClientAttemptTimeout: a hung attempt costs one attempt, not the
// whole request — the per-attempt deadline fires, the retry hits a now-
// healthy server, and the overall call succeeds.
func TestClientAttemptTimeout(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs until the test ends
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	defer close(release)

	c, waits := testClient(srv)
	c.AttemptTimeout = 50 * time.Millisecond
	var out map[string]bool
	start := time.Now()
	if err := c.Get(context.Background(), "/hang", &out); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !out["ok"] || calls.Load() != 2 {
		t.Fatalf("out=%v calls=%d", out, calls.Load())
	}
	// The stall was bounded by AttemptTimeout, not by the caller giving
	// up: the request recovered in well under a second.
	if time.Since(start) > 2*time.Second {
		t.Fatalf("attempt timeout did not bound the stall: %v", time.Since(start))
	}
	if len(*waits) == 0 {
		t.Fatal("no backoff between attempts")
	}
}

// TestClientCancelDuringBackoff: caller cancellation mid-backoff
// returns promptly with ctx.Err — the jitter window is interruptible.
func TestClientCancelDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.BaseDelay = 10 * time.Second // a sleep the test must never serve out
	ctx, cancel := context.WithCancel(context.Background())
	sleeping := make(chan struct{})
	c.sleep = func(ctx context.Context, d time.Duration) error {
		close(sleeping)
		return sleepCtx(ctx, d) // the real interruptible sleep
	}
	go func() {
		<-sleeping
		cancel()
	}()
	start := time.Now()
	err := c.Get(ctx, "/x", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel mid-backoff slept %v", elapsed)
	}
}

// TestClientAttemptTimeoutDistinctFromCancel: an expired attempt
// deadline retries; an expired caller deadline returns.
func TestClientAttemptTimeoutDistinctFromCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond) // slower than the attempt budget
	}))
	defer srv.Close()

	c, _ := testClient(srv)
	c.MaxAttempts = 2
	c.AttemptTimeout = 30 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Millisecond)
	defer cancel()
	err := c.Get(ctx, "/slow", nil)
	if err == nil {
		t.Fatal("expected an error")
	}
	// Both attempts expired on their own deadline; the caller context
	// may or may not have expired by return. Either way the error is not
	// a decode/API error and the call did not hang.
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Fatalf("unexpected API error: %v", err)
	}
}

// TestClientZeroValueTolerated: a struct-literal Client (nil seams)
// must not panic — the fabric builds clients programmatically.
func TestClientZeroValueTolerated(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	if err := c.Get(context.Background(), "/", nil); err != nil {
		t.Fatalf("zero-value client: %v", err)
	}
}

func TestEndpointStatsScopes(t *testing.T) {
	srv, svc := setupServer(t, homunculus.ServiceOptions{MaxInFlight: 2})
	job, _ := postJob(t, srv, submitBody("httpapi_tiny"))
	final := pollDone(t, srv, job.ID)
	if final.State != homunculus.JobDone {
		t.Fatalf("compile: %q", final.State)
	}
	ep, err := svc.CreateEndpoint("scoped", job.ID, homunculus.EndpointOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ep.Classify([]float64{1, 0.5}); err != nil {
			t.Fatal(err)
		}
	}

	client := NewClient(srv.URL)
	raw, err := client.EndpointRawStats(context.Background(), "scoped")
	if err != nil {
		t.Fatal(err)
	}
	if raw.Accepted != 10 || raw.Completed != 10 {
		t.Fatalf("raw scope: %+v", raw)
	}
	if len(raw.Latency) == 0 {
		t.Fatal("raw scope carries no latency histogram")
	}

	// scope=cluster without a fabric is an explicit 400, not a silent
	// local answer.
	resp, err := http.Get(srv.URL + "/v1/endpoints/scoped/stats?scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("scope=cluster without fabric: status %d, want 400", resp.StatusCode)
	}
	// Unknown scopes are rejected.
	resp, err = http.Get(srv.URL + "/v1/endpoints/scoped/stats?scope=galaxy")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scope: status %d, want 400", resp.StatusCode)
	}
}

// TestServerOptionsClusterStats: the ClusterStats hook answers
// scope=cluster, with ErrEndpointNotFound mapping to 404.
func TestServerOptionsClusterStats(t *testing.T) {
	svc := homunculus.New(homunculus.ServiceOptions{})
	t.Cleanup(func() { _ = svc.Close() })
	hook := func(ctx context.Context, name string) (*ClusterStatsJSON, error) {
		if name != "known" {
			return nil, ErrEndpointNotFound
		}
		return &ClusterStatsJSON{Name: name, Scope: "cluster"}, nil
	}
	srv := httptest.NewServer(NewServerWith(svc, ServerOptions{ClusterStats: hook}))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/endpoints/known/stats?scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	var doc ClusterStatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || doc.Name != "known" {
		t.Fatalf("cluster scope: status %d doc %+v", resp.StatusCode, doc)
	}
	resp, err = http.Get(srv.URL + "/v1/endpoints/ghost/stats?scope=cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown endpoint: status %d, want 404", resp.StatusCode)
	}
}

// TestServerOptionsRoutes: extra routes mount alongside the stock
// surface.
func TestServerOptionsRoutes(t *testing.T) {
	svc := homunculus.New(homunculus.ServiceOptions{})
	t.Cleanup(func() { _ = svc.Close() })
	srv := httptest.NewServer(NewServerWith(svc, ServerOptions{Routes: map[string]http.HandlerFunc{
		"GET /v1/cluster": func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"mounted":true}`)
		},
	}}))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mounted route: status %d", resp.StatusCode)
	}
}
