// Package mat models a match-action-table (MAT) switch pipeline — the
// Tofino/RMT-style backend Homunculus targets through IIsy (§4). The IIsy
// mapping makes the relation between algorithm parameters and tables
// explicit, which Homunculus exploits as a feasibility constraint:
//
//   - SVM: one table per feature (each table matches a feature-value range
//     and emits per-class partial scores) plus one decision table;
//   - KMeans: one table per cluster ("IIsy restricts a single MAT for each
//     cluster", §5.2.2);
//   - Decision tree: one table per tree level plus one leaf-action table.
//
// The model answers table and entry budgets, plus line-rate timing (a MAT
// pipeline is fixed-latency: fitting the pipeline means running at line
// rate, which is why Figure 7 trades model fidelity for tables rather than
// throughput).
package mat

import (
	"fmt"

	"repro/internal/ir"
)

// Pipeline describes a MAT switch configuration.
type Pipeline struct {
	Tables          int // total match-action tables available to the model
	EntriesPerTable int // TCAM/SRAM entries per table
	StageLatencyNS  float64
	LineRateGPkts   float64
}

// DefaultPipeline approximates one Tofino pipe: the evaluation constrains
// models to small table budgets (Figure 7 sweeps 1–5), but the physical
// pipe offers more.
func DefaultPipeline() Pipeline {
	return Pipeline{Tables: 32, EntriesPerTable: 4096, StageLatencyNS: 1.0, LineRateGPkts: 1.0}
}

// Validate reports configuration errors.
func (p Pipeline) Validate() error {
	if p.Tables <= 0 {
		return fmt.Errorf("mat: Tables must be positive, got %d", p.Tables)
	}
	if p.EntriesPerTable <= 0 {
		return fmt.Errorf("mat: EntriesPerTable must be positive, got %d", p.EntriesPerTable)
	}
	if p.StageLatencyNS <= 0 {
		return fmt.Errorf("mat: StageLatencyNS must be positive, got %v", p.StageLatencyNS)
	}
	if p.LineRateGPkts <= 0 {
		return fmt.Errorf("mat: LineRateGPkts must be positive, got %v", p.LineRateGPkts)
	}
	return nil
}

// Report is the backend verdict for a candidate model.
type Report struct {
	TablesUsed      int
	EntriesUsed     int // worst-case entries in the largest table
	LatencyNS       float64
	ThroughputGPkts float64
	Fits            bool
	Reason          string
}

// Feasible reports whether the model maps onto the pipeline.
func (r Report) Feasible() bool { return r.Fits }

// rangeEntriesPerFeature is how many range-match entries IIsy installs to
// cover one quantized feature dimension (8-bit quantization → up to 256
// value ranges, merged; we charge the worst case after prefix merging).
const rangeEntriesPerFeature = 64

// Estimate maps the model onto the MAT pipeline.
func Estimate(p Pipeline, m *ir.Model) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	var rep Report
	switch m.Kind {
	case ir.SVM:
		// One table per feature + decision table.
		rep.TablesUsed = m.Inputs + 1
		rep.EntriesUsed = rangeEntriesPerFeature
	case ir.KMeans:
		// One table per cluster.
		rep.TablesUsed = len(m.Centroids)
		rep.EntriesUsed = rangeEntriesPerFeature * maxInt(1, m.Inputs/2)
	case ir.DTree:
		depth := treeDepth(m.Tree)
		rep.TablesUsed = depth + 1
		// Entries per level table grow with the node count at that level,
		// bounded by leaves.
		rep.EntriesUsed = maxInt(1, countLeaves(m.Tree))
	case ir.DNN:
		// MAT switches cannot execute general matrix multiplies at line
		// rate; N2Net-style BNN folding charges ~12 tables per layer
		// (§2: "a single layer of a manually designed anomaly-detection
		// DNN in N2Net takes up to 12 MATs").
		rep.TablesUsed = 12 * len(m.Layers)
		rep.EntriesUsed = rangeEntriesPerFeature * m.Inputs
	default:
		return Report{}, fmt.Errorf("mat: unsupported model kind %v", m.Kind)
	}

	rep.Fits = rep.TablesUsed <= p.Tables && rep.EntriesUsed <= p.EntriesPerTable
	if !rep.Fits {
		rep.Reason = fmt.Sprintf("needs %d tables × %d entries, pipeline has %d × %d",
			rep.TablesUsed, rep.EntriesUsed, p.Tables, p.EntriesPerTable)
	}
	// Fixed-function pipeline: latency is stages × per-stage latency and
	// throughput is line rate whenever the program fits.
	rep.LatencyNS = float64(rep.TablesUsed) * p.StageLatencyNS
	if rep.Fits {
		rep.ThroughputGPkts = p.LineRateGPkts
	}
	return rep, nil
}

func treeDepth(n *ir.TreeNode) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	l, r := treeDepth(n.Left), treeDepth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func countLeaves(n *ir.TreeNode) int {
	if n == nil {
		return 0
	}
	if n.Feature < 0 {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaxClustersForBudget returns the largest K a KMeans model can use under
// a table budget — the inversion Homunculus applies in Figure 7 when it
// "creates more coarse-grain clusters, sacrificing fidelity in favor of
// resource usage".
func MaxClustersForBudget(p Pipeline, budget int) int {
	if budget < p.Tables {
		p.Tables = budget
	}
	return p.Tables
}

// MaxSVMFeaturesForBudget returns the largest feature count an SVM can
// keep under a table budget (one table per feature + decision table);
// Homunculus drops "less impactful features until the SVM model fits".
func MaxSVMFeaturesForBudget(p Pipeline, budget int) int {
	t := p.Tables
	if budget < t {
		t = budget
	}
	if t <= 1 {
		return 0
	}
	return t - 1
}
