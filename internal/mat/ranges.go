package mat

import (
	"fmt"
)

// TCAM range expansion. Match-action tables implement range matches by
// expanding each range into a set of ternary prefix entries (value/mask
// pairs); the expansion factor determines how many physical TCAM entries
// a logical range costs — up to 2w-2 entries for a w-bit field in the
// worst case. The IIsy-style mappings in this package install range
// entries per feature, so accurate entry budgeting needs the real
// expansion, implemented here with the standard prefix-cover algorithm.

// Prefix is one ternary entry: Value matched under Mask (1-bits compared,
// 0-bits wildcarded). Bits is the field width.
type Prefix struct {
	Value uint32
	Mask  uint32
	Bits  int
}

// Matches reports whether x hits the prefix.
func (p Prefix) Matches(x uint32) bool {
	return x&p.Mask == p.Value&p.Mask
}

// String renders the prefix as bits with '*' wildcards.
func (p Prefix) String() string {
	s := make([]byte, p.Bits)
	for i := 0; i < p.Bits; i++ {
		bit := uint32(1) << uint(p.Bits-1-i)
		switch {
		case p.Mask&bit == 0:
			s[i] = '*'
		case p.Value&bit != 0:
			s[i] = '1'
		default:
			s[i] = '0'
		}
	}
	return string(s)
}

// ExpandRange converts the inclusive range [lo, hi] over a bits-wide
// unsigned field into a minimal prefix cover using the classic
// largest-aligned-block greedy algorithm.
func ExpandRange(lo, hi uint32, bits int) ([]Prefix, error) {
	if bits <= 0 || bits > 32 {
		return nil, fmt.Errorf("mat: field width %d out of range [1,32]", bits)
	}
	maxVal := uint32(1)<<uint(bits) - 1
	if bits == 32 {
		maxVal = ^uint32(0)
	}
	if lo > hi {
		return nil, fmt.Errorf("mat: empty range [%d, %d]", lo, hi)
	}
	if hi > maxVal {
		return nil, fmt.Errorf("mat: range end %d exceeds %d-bit field", hi, bits)
	}
	if lo == 0 && hi == maxVal {
		// Full field: a single all-wildcard entry (the 2^bits block size
		// would overflow the doubling loop below for bits == 32).
		return []Prefix{{Value: 0, Mask: 0, Bits: bits}}, nil
	}
	var out []Prefix
	for lo <= hi {
		// The largest block starting at lo: aligned to lo's lowest set
		// bits and not exceeding hi.
		size := uint32(1)
		for {
			next := size << 1
			if next == 0 { // overflow: block covers the full space
				break
			}
			if lo&(next-1) != 0 { // alignment broken
				break
			}
			if uint64(lo)+uint64(next)-1 > uint64(hi) { // too big
				break
			}
			size = next
		}
		maskBits := bits
		for s := size; s > 1; s >>= 1 {
			maskBits--
		}
		var mask uint32
		if maskBits == 0 {
			mask = 0
		} else {
			mask = (uint32(1)<<uint(maskBits) - 1) << uint(bits-maskBits)
			if bits == 32 && maskBits == 32 {
				mask = ^uint32(0)
			}
		}
		out = append(out, Prefix{Value: lo, Mask: mask, Bits: bits})
		if uint64(lo)+uint64(size) > uint64(maxVal) {
			break
		}
		lo += size
	}
	return out, nil
}

// RangeEntryCost returns the number of physical TCAM entries the range
// costs after prefix expansion.
func RangeEntryCost(lo, hi uint32, bits int) (int, error) {
	ps, err := ExpandRange(lo, hi, bits)
	if err != nil {
		return 0, err
	}
	return len(ps), nil
}

// WorstCaseRangeCost is the textbook bound 2w-2 for a w-bit field
// (w >= 2; a 1-bit field needs at most 1 entry).
func WorstCaseRangeCost(bits int) int {
	if bits <= 1 {
		return 1
	}
	return 2*bits - 2
}
