package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpandRangeFullField(t *testing.T) {
	ps, err := ExpandRange(0, 255, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("full range must be one wildcard entry, got %d", len(ps))
	}
	if ps[0].Mask != 0 {
		t.Fatal("full range mask must be all-wildcard")
	}
	if ps[0].String() != "********" {
		t.Fatalf("String = %q", ps[0].String())
	}
}

func TestExpandRangeSingleValue(t *testing.T) {
	ps, err := ExpandRange(42, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Value != 42 {
		t.Fatalf("single value expansion wrong: %+v", ps)
	}
	if ps[0].Mask != 0xFF {
		t.Fatal("exact match needs a full mask")
	}
	if !ps[0].Matches(42) || ps[0].Matches(43) {
		t.Fatal("match semantics wrong")
	}
}

func TestExpandRangeWorstCase(t *testing.T) {
	// [1, 2^w - 2] is the classic worst case: 2w-2 entries.
	ps, err := ExpandRange(1, 254, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != WorstCaseRangeCost(8) {
		t.Fatalf("worst case 8-bit should cost %d, got %d", WorstCaseRangeCost(8), len(ps))
	}
}

func TestExpandRangeErrors(t *testing.T) {
	if _, err := ExpandRange(5, 4, 8); err == nil {
		t.Fatal("inverted range must fail")
	}
	if _, err := ExpandRange(0, 300, 8); err == nil {
		t.Fatal("range beyond field must fail")
	}
	if _, err := ExpandRange(0, 1, 0); err == nil {
		t.Fatal("zero-width field must fail")
	}
	if _, err := ExpandRange(0, 1, 40); err == nil {
		t.Fatal("over-wide field must fail")
	}
}

func TestWorstCaseRangeCost(t *testing.T) {
	if WorstCaseRangeCost(1) != 1 || WorstCaseRangeCost(8) != 14 || WorstCaseRangeCost(16) != 30 {
		t.Fatal("bound values wrong")
	}
}

// Property: the expansion exactly covers the range — every value in
// [lo, hi] matches exactly one prefix, and no value outside matches any.
func TestExpandRangeCoverageQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(10) // up to 10-bit fields: exhaustive check cheap
		max := uint32(1)<<uint(bits) - 1
		lo := uint32(rng.Intn(int(max + 1)))
		hi := lo + uint32(rng.Intn(int(max-lo+1)))
		ps, err := ExpandRange(lo, hi, bits)
		if err != nil {
			return false
		}
		for x := uint32(0); x <= max; x++ {
			hits := 0
			for _, p := range ps {
				if p.Matches(x) {
					hits++
				}
			}
			inRange := x >= lo && x <= hi
			if inRange && hits != 1 {
				return false
			}
			if !inRange && hits != 0 {
				return false
			}
			if x == max {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: expansion size never exceeds the 2w-2 bound.
func TestExpandRangeBoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 2 + rng.Intn(15)
		max := uint32(1)<<uint(bits) - 1
		lo := uint32(rng.Intn(int(max + 1)))
		hi := lo + uint32(rng.Intn(int(max-lo+1)))
		ps, err := ExpandRange(lo, hi, bits)
		if err != nil {
			return false
		}
		return len(ps) <= WorstCaseRangeCost(bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandRange32Bit(t *testing.T) {
	ps, err := ExpandRange(0, ^uint32(0), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Mask != 0 {
		t.Fatalf("full 32-bit range must be one wildcard: %+v", ps)
	}
	ps2, err := ExpandRange(1<<31, ^uint32(0), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps2) != 1 {
		t.Fatalf("upper half must be one prefix: %+v", ps2)
	}
	if !ps2[0].Matches(1<<31) || ps2[0].Matches(5) {
		t.Fatal("upper-half match semantics wrong")
	}
}
