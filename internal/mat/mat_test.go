package mat

import (
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

func svmModel(features, classes int) *ir.Model {
	m := &ir.Model{Kind: ir.SVM, Name: "s", Inputs: features, Outputs: classes, Format: fixed.Q8_8,
		SVM: &ir.SVMParams{W: make([][]float64, classes), B: make([]float64, classes)}}
	for i := range m.SVM.W {
		m.SVM.W[i] = make([]float64, features)
	}
	return m
}

func kmeansModel(features, k int) *ir.Model {
	m := &ir.Model{Kind: ir.KMeans, Name: "k", Inputs: features, Outputs: k, Format: fixed.Q8_8,
		Centroids: make([][]float64, k)}
	for i := range m.Centroids {
		m.Centroids[i] = make([]float64, features)
	}
	return m
}

func TestPipelineValidate(t *testing.T) {
	if err := DefaultPipeline().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Pipeline{
		{Tables: 0, EntriesPerTable: 1, StageLatencyNS: 1, LineRateGPkts: 1},
		{Tables: 1, EntriesPerTable: 0, StageLatencyNS: 1, LineRateGPkts: 1},
		{Tables: 1, EntriesPerTable: 1, StageLatencyNS: 0, LineRateGPkts: 1},
		{Tables: 1, EntriesPerTable: 1, StageLatencyNS: 1, LineRateGPkts: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("pipeline %d must fail", i)
		}
	}
}

func TestSVMTablePerFeature(t *testing.T) {
	// IIsy: "an implementation of an SVM may use a MAT per feature".
	rep, err := Estimate(DefaultPipeline(), svmModel(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesUsed != 8 { // 7 features + decision
		t.Fatalf("SVM tables = %d, want 8", rep.TablesUsed)
	}
	if !rep.Feasible() {
		t.Fatal("7-feature SVM must fit default pipeline")
	}
	if rep.ThroughputGPkts != 1.0 {
		t.Fatal("fitting MAT program must run at line rate")
	}
}

func TestKMeansTablePerCluster(t *testing.T) {
	rep, err := Estimate(DefaultPipeline(), kmeansModel(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesUsed != 5 {
		t.Fatalf("KMeans tables = %d, want 5", rep.TablesUsed)
	}
}

func TestBudgetBinds(t *testing.T) {
	tight := DefaultPipeline()
	tight.Tables = 3
	rep, _ := Estimate(tight, kmeansModel(7, 5))
	if rep.Feasible() {
		t.Fatal("5 clusters must not fit 3 tables")
	}
	if rep.Reason == "" {
		t.Fatal("must carry reason")
	}
	if rep.ThroughputGPkts != 0 {
		t.Fatal("non-fitting program has no deployable throughput")
	}
	rep2, _ := Estimate(tight, kmeansModel(7, 3))
	if !rep2.Feasible() {
		t.Fatal("3 clusters must fit 3 tables")
	}
}

func TestDTreeTablePerLevel(t *testing.T) {
	tree := &ir.TreeNode{Feature: 0, Threshold: 0.5,
		Left: &ir.TreeNode{Feature: -1, Class: 0},
		Right: &ir.TreeNode{Feature: 1, Threshold: 0.3,
			Left:  &ir.TreeNode{Feature: -1, Class: 1},
			Right: &ir.TreeNode{Feature: -1, Class: 0}},
	}
	m := &ir.Model{Kind: ir.DTree, Name: "t", Inputs: 2, Outputs: 2, Format: fixed.Q8_8, Tree: tree}
	rep, err := Estimate(DefaultPipeline(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesUsed != 3 { // depth 2 + leaf table
		t.Fatalf("DTree tables = %d, want 3", rep.TablesUsed)
	}
}

func TestDNNChargedLikeN2Net(t *testing.T) {
	m := &ir.Model{Kind: ir.DNN, Name: "d", Inputs: 4, Outputs: 2, Format: fixed.Q8_8,
		Layers: []ir.Layer{
			{In: 4, Out: 4, W: [][]float64{{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}}, B: make([]float64, 4), Activation: "relu"},
			{In: 4, Out: 2, W: [][]float64{{0, 0, 0, 0}, {0, 0, 0, 0}}, B: make([]float64, 2), Activation: "softmax"},
		}}
	rep, err := Estimate(DefaultPipeline(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesUsed != 24 { // 12 per layer
		t.Fatalf("DNN tables = %d, want 24", rep.TablesUsed)
	}
}

func TestBudgetHelpers(t *testing.T) {
	p := DefaultPipeline()
	if MaxClustersForBudget(p, 5) != 5 {
		t.Fatal("cluster budget")
	}
	if MaxClustersForBudget(p, 100) != p.Tables {
		t.Fatal("cluster budget must cap at pipeline tables")
	}
	if MaxSVMFeaturesForBudget(p, 5) != 4 {
		t.Fatal("svm feature budget")
	}
	if MaxSVMFeaturesForBudget(p, 1) != 0 {
		t.Fatal("svm needs >= 2 tables for any feature")
	}
}
