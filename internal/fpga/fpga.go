// Package fpga models the Alveo U250 FPGA testbed of the end-to-end
// evaluation (§5.2): the bump-in-the-wire board that emulates the Taurus
// MapReduce core. Given a model IR it estimates the utilization columns of
// Table 5 — LUT%, FF%, BRAM%, and power — on top of the fixed loopback
// shell (CMAC core + AXI plumbing) that is present even with no model
// loaded.
//
// Substitution note (DESIGN.md): Vivado synthesis is replaced with an
// analytic utilization model calibrated against Table 5's published
// baseline: the loopback shell costs 5.36% LUTs / 3.64% FFs / 4.15% BRAM /
// 15.131 W, and model cost grows sublinearly with parameter count (LUTs
// store model parameters; routing amortizes with reuse). Relative
// ordering across models — the property the paper discusses — is
// preserved.
package fpga

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Shell is the fixed cost of the bump-in-the-wire infrastructure
// (loopback row of Table 5).
type Shell struct {
	LUTPct  float64
	FFPct   float64
	BRAMPct float64
	PowerW  float64
}

// U250Shell is the published loopback utilization of the testbed.
func U250Shell() Shell {
	return Shell{LUTPct: 5.36, FFPct: 3.64, BRAMPct: 4.15, PowerW: 15.131}
}

// Report mirrors one row of Table 5.
type Report struct {
	LUTPct  float64
	FFPct   float64
	BRAMPct float64
	PowerW  float64
}

// Coefficients of the utilization model. LUT delta grows as
// lutScale · params^lutExp; FFs track LUTs at ffRatio; dynamic power
// tracks LUT delta at wattsPerLUTPct.
const (
	lutScale       = 0.020
	lutExp         = 0.72
	ffRatio        = 0.55
	wattsPerLUTPct = 1.55
)

// Estimate computes the utilization of shell + model. A nil model returns
// the bare shell (the loopback row).
func Estimate(shell Shell, m *ir.Model) (Report, error) {
	rep := Report{
		LUTPct:  shell.LUTPct,
		FFPct:   shell.FFPct,
		BRAMPct: shell.BRAMPct,
		PowerW:  shell.PowerW,
	}
	if m == nil {
		return rep, nil
	}
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	params := float64(m.ParamCount())
	if params <= 0 {
		return rep, nil
	}
	lutDelta := lutScale * math.Pow(params, lutExp)
	rep.LUTPct += lutDelta
	rep.FFPct += ffRatio * lutDelta
	// BRAM allocates in coarse blocks; models at this scale fit the
	// shell's existing allocation (Table 5 shows 4.15% across all rows).
	rep.PowerW += wattsPerLUTPct * lutDelta
	return rep, nil
}

// Compare returns the utilization difference (b - a) for reporting.
func Compare(a, b Report) Report {
	return Report{
		LUTPct:  b.LUTPct - a.LUTPct,
		FFPct:   b.FFPct - a.FFPct,
		BRAMPct: b.BRAMPct - a.BRAMPct,
		PowerW:  b.PowerW - a.PowerW,
	}
}

// String renders the report as a Table-5-style row fragment.
func (r Report) String() string {
	return fmt.Sprintf("LUT %.2f%% FF %.2f%% BRAM %.2f%% Power %.3f W",
		r.LUTPct, r.FFPct, r.BRAMPct, r.PowerW)
}
