package fpga

import (
	"math"
	"testing"

	"repro/internal/fixed"
	"repro/internal/ir"
)

func dnn(dims ...int) *ir.Model {
	m := &ir.Model{Kind: ir.DNN, Name: "m", Inputs: dims[0], Outputs: dims[len(dims)-1], Format: fixed.Q8_8}
	for i := 0; i < len(dims)-1; i++ {
		l := ir.Layer{In: dims[i], Out: dims[i+1], Activation: "relu"}
		l.W = make([][]float64, l.Out)
		for o := range l.W {
			l.W[o] = make([]float64, l.In)
		}
		l.B = make([]float64, l.Out)
		m.Layers = append(m.Layers, l)
	}
	m.Layers[len(m.Layers)-1].Activation = "softmax"
	return m
}

func TestLoopbackRow(t *testing.T) {
	rep, err := Estimate(U250Shell(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LUTPct != 5.36 || rep.FFPct != 3.64 || rep.BRAMPct != 4.15 || rep.PowerW != 15.131 {
		t.Fatalf("loopback row wrong: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("String must render")
	}
}

func TestModelAddsUtilization(t *testing.T) {
	rep, err := Estimate(U250Shell(), dnn(7, 12, 6, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	shell := U250Shell()
	if rep.LUTPct <= shell.LUTPct || rep.FFPct <= shell.FFPct || rep.PowerW <= shell.PowerW {
		t.Fatalf("model must add utilization: %+v", rep)
	}
	if rep.BRAMPct != shell.BRAMPct {
		t.Fatal("BRAM stays at shell allocation for small models (Table 5)")
	}
	// Sanity: a ~200-param model should land in the same range Table 5
	// reports (LUT between 6 and 8%, power 16–19 W).
	if rep.LUTPct < 6 || rep.LUTPct > 8 {
		t.Fatalf("LUT%% %v outside Table-5 range", rep.LUTPct)
	}
	if rep.PowerW < 16 || rep.PowerW > 19 {
		t.Fatalf("power %v outside Table-5 range", rep.PowerW)
	}
}

func TestOrderingByParamCount(t *testing.T) {
	// Table 5's discussed property: more parameters → more LUTs and power.
	small, _ := Estimate(U250Shell(), dnn(7, 12, 6, 3, 2))        // ~203 params
	large, _ := Estimate(U250Shell(), dnn(30, 10, 10, 10, 10, 2)) // ~662 params
	if large.LUTPct <= small.LUTPct {
		t.Fatalf("662-param model must use more LUTs (%v vs %v)", large.LUTPct, small.LUTPct)
	}
	if large.PowerW <= small.PowerW {
		t.Fatal("and more power")
	}
}

func TestSublinearGrowth(t *testing.T) {
	a, _ := Estimate(U250Shell(), dnn(10, 10, 2)) // ~132 params
	b, _ := Estimate(U250Shell(), dnn(10, 40, 2)) // ~522 params
	shell := U250Shell()
	da := a.LUTPct - shell.LUTPct
	db := b.LUTPct - shell.LUTPct
	ratioParams := 522.0 / 132.0
	if db/da >= ratioParams {
		t.Fatalf("LUT growth should be sublinear in params: %v vs param ratio %v", db/da, ratioParams)
	}
}

func TestCompare(t *testing.T) {
	a := Report{LUTPct: 1, FFPct: 2, BRAMPct: 3, PowerW: 4}
	b := Report{LUTPct: 2, FFPct: 4, BRAMPct: 6, PowerW: 8}
	d := Compare(a, b)
	if d.LUTPct != 1 || d.FFPct != 2 || d.BRAMPct != 3 || d.PowerW != 4 {
		t.Fatalf("Compare = %+v", d)
	}
}

func TestInvalidModelRejected(t *testing.T) {
	bad := &ir.Model{Kind: ir.DNN, Name: "bad", Inputs: 2, Outputs: 2}
	if _, err := Estimate(U250Shell(), bad); err == nil {
		t.Fatal("invalid model must error")
	}
}

func TestFFTracksLUT(t *testing.T) {
	rep, _ := Estimate(U250Shell(), dnn(7, 12, 6, 3, 2))
	shell := U250Shell()
	lutDelta := rep.LUTPct - shell.LUTPct
	ffDelta := rep.FFPct - shell.FFPct
	if math.Abs(ffDelta-0.55*lutDelta) > 1e-9 {
		t.Fatalf("FF delta %v should be 0.55×LUT delta %v", ffDelta, lutDelta)
	}
}
