// Package dtree implements CART decision-tree classification — the third
// classical algorithm family IIsy maps to match-action pipelines (one MAT
// level per tree depth). The Homunculus optimization core tunes MaxDepth
// and MinLeaf against the available table budget.
package dtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// Config holds the tree hyperparameters.
type Config struct {
	MaxDepth int
	MinLeaf  int // minimum samples per leaf
	Classes  int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MaxDepth <= 0 {
		return fmt.Errorf("dtree: MaxDepth must be positive, got %d", c.MaxDepth)
	}
	if c.MinLeaf <= 0 {
		return fmt.Errorf("dtree: MinLeaf must be positive, got %d", c.MinLeaf)
	}
	if c.Classes < 2 {
		return fmt.Errorf("dtree: Classes must be >= 2, got %d", c.Classes)
	}
	return nil
}

// Node is one tree node. Leaves have Feature == -1.
type Node struct {
	Feature     int // split feature, -1 for leaf
	Threshold   float64
	Left, Right *Node
	Class       int // majority class at this node
	Samples     int
}

// IsLeaf reports whether the node is terminal.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Model is a fitted CART tree.
type Model struct {
	Config Config
	Root   *Node
}

// Train fits a CART tree with Gini-impurity splits.
func Train(c Config, d *dataset.Dataset) (*Model, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("dtree: empty training set")
	}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	root := build(c, d, idx, 0)
	return &Model{Config: c, Root: root}, nil
}

func build(c Config, d *dataset.Dataset, idx []int, depth int) *Node {
	node := &Node{Feature: -1, Samples: len(idx)}
	counts := make([]int, c.Classes)
	for _, i := range idx {
		if d.Y[i] < c.Classes {
			counts[d.Y[i]]++
		}
	}
	node.Class = argMaxInt(counts)
	if depth >= c.MaxDepth || len(idx) < 2*c.MinLeaf || pure(counts) {
		return node
	}
	feat, thresh, gain := bestSplit(c, d, idx, counts)
	if gain <= 1e-12 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X.At(i, feat) <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < c.MinLeaf || len(right) < c.MinLeaf {
		return node
	}
	node.Feature = feat
	node.Threshold = thresh
	node.Left = build(c, d, left, depth+1)
	node.Right = build(c, d, right, depth+1)
	return node
}

func pure(counts []int) bool {
	nonzero := 0
	for _, v := range counts {
		if v > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

func argMaxInt(x []int) int {
	best, bi := math.MinInt64, 0
	for i, v := range x {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, v := range counts {
		p := float64(v) / float64(total)
		g -= p * p
	}
	return g
}

// bestSplit scans every feature with a sorted sweep, maintaining class
// counts on each side incrementally (O(features · n log n)).
func bestSplit(c Config, d *dataset.Dataset, idx []int, parentCounts []int) (feat int, thresh, gain float64) {
	n := len(idx)
	parentGini := gini(parentCounts, n)
	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0

	order := make([]int, n)
	for f := 0; f < d.Features(); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return d.X.At(order[a], f) < d.X.At(order[b], f) })
		leftCounts := make([]int, c.Classes)
		rightCounts := append([]int{}, parentCounts...)
		for pos := 0; pos < n-1; pos++ {
			y := d.Y[order[pos]]
			if y < c.Classes {
				leftCounts[y]++
				rightCounts[y]--
			}
			v, next := d.X.At(order[pos], f), d.X.At(order[pos+1], f)
			if v == next {
				continue // can't split between equal values
			}
			nl, nr := pos+1, n-pos-1
			g := parentGini -
				(float64(nl)/float64(n))*gini(leftCounts, nl) -
				(float64(nr)/float64(n))*gini(rightCounts, nr)
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestGain
}

// PredictVec classifies one feature vector.
func (m *Model) PredictVec(x []float64) int {
	n := m.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}

// Predict classifies every sample of d.
func (m *Model) Predict(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	for i := range out {
		out[i] = m.PredictVec(d.X.Row(i))
	}
	return out
}

// Depth returns the height of the fitted tree (a single leaf is depth 0) —
// this is what the MAT backend charges tables for.
func (m *Model) Depth() int { return depth(m.Root) }

func depth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaf nodes.
func (m *Model) Leaves() int { return leaves(m.Root) }

func leaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return leaves(n.Left) + leaves(n.Right)
}
