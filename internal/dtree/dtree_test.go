package dtree

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

func xorData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(n, 2)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		d.X.Set(i, 0, float64(a)+rng.NormFloat64()*0.05)
		d.X.Set(i, 1, float64(b)+rng.NormFloat64()*0.05)
		d.Y[i] = a ^ b
	}
	return d
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{MaxDepth: 0, MinLeaf: 1, Classes: 2},
		{MaxDepth: 1, MinLeaf: 0, Classes: 2},
		{MaxDepth: 1, MinLeaf: 1, Classes: 1},
	}
	for i, c := range bad {
		if _, err := Train(c, dataset.New(1, 1)); err == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
	if _, err := Train(Config{MaxDepth: 2, MinLeaf: 1, Classes: 2}, dataset.New(0, 1)); err == nil {
		t.Fatal("empty set must fail")
	}
}

func TestLearnsXOR(t *testing.T) {
	// Greedy Gini CART needs extra depth on XOR: the informative 0.5
	// split has near-zero immediate gain, so the sweep first chips off
	// low-gain edge regions before finding the interaction.
	d := xorData(400, 1)
	m, err := Train(Config{MaxDepth: 8, MinLeaf: 2, Classes: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.FromLabels(d.Y, m.Predict(d), 2).Accuracy()
	if acc < 0.97 {
		t.Fatalf("XOR accuracy %v", acc)
	}
	if m.Depth() < 2 {
		t.Fatalf("XOR needs depth >= 2, got %d", m.Depth())
	}
}

func TestDepthLimitRespected(t *testing.T) {
	d := xorData(400, 2)
	for _, maxDepth := range []int{1, 2, 3, 5} {
		m, err := Train(Config{MaxDepth: maxDepth, MinLeaf: 1, Classes: 2}, d)
		if err != nil {
			t.Fatal(err)
		}
		if m.Depth() > maxDepth {
			t.Fatalf("depth %d exceeds limit %d", m.Depth(), maxDepth)
		}
	}
}

func TestDepth1CannotSolveXOR(t *testing.T) {
	d := xorData(400, 3)
	m, _ := Train(Config{MaxDepth: 1, MinLeaf: 1, Classes: 2}, d)
	acc := metrics.FromLabels(d.Y, m.Predict(d), 2).Accuracy()
	if acc > 0.8 {
		t.Fatalf("a stump should not solve XOR (acc %v)", acc)
	}
}

func TestPureNodeIsLeaf(t *testing.T) {
	d := dataset.New(50, 1)
	// single class: root must be a leaf predicting it
	for i := range d.Y {
		d.Y[i] = 1
	}
	m, err := Train(Config{MaxDepth: 5, MinLeaf: 1, Classes: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Root.IsLeaf() || m.Root.Class != 1 {
		t.Fatal("pure data must yield a single leaf")
	}
	if m.Leaves() != 1 || m.Depth() != 0 {
		t.Fatal("leaf accounting wrong")
	}
}

func TestMinLeafRespected(t *testing.T) {
	d := xorData(40, 4)
	m, _ := Train(Config{MaxDepth: 10, MinLeaf: 15, Classes: 2}, d)
	// With MinLeaf 15 of 40 samples only very few splits are possible.
	var check func(n *Node)
	check = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() && n.Samples < 15 {
			t.Fatalf("leaf with %d samples violates MinLeaf", n.Samples)
		}
		check(n.Left)
		check(n.Right)
	}
	check(m.Root)
}

func TestConstantFeaturesYieldLeaf(t *testing.T) {
	d := dataset.New(20, 2) // all-zero features, mixed labels
	for i := range d.Y {
		d.Y[i] = i % 2
	}
	m, err := Train(Config{MaxDepth: 5, MinLeaf: 1, Classes: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Root.IsLeaf() {
		t.Fatal("unsplittable data must yield a leaf")
	}
}

func TestMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := dataset.New(300, 1)
	for i := 0; i < 300; i++ {
		c := i % 3
		d.X.Set(i, 0, float64(c)*2+rng.NormFloat64()*0.2)
		d.Y[i] = c
	}
	m, err := Train(Config{MaxDepth: 4, MinLeaf: 2, Classes: 3}, d)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.FromLabels(d.Y, m.Predict(d), 3).Accuracy()
	if acc < 0.95 {
		t.Fatalf("multiclass accuracy %v", acc)
	}
}
