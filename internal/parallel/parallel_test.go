package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := Workers()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(old) })
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		withWorkers(t, workers)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			counts := make([]int64, n)
			For(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForSerialBelowGrain(t *testing.T) {
	withWorkers(t, 8)
	calls := 0
	For(10, 6, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single full-range call, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected 1 serial call, got %d", calls)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4)
	var total int64
	For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(8, 1, func(lo2, hi2 int) {
				atomic.AddInt64(&total, int64(hi2-lo2))
			})
		}
	})
	if total != 64 {
		t.Fatalf("nested For covered %d inner indices, want 64", total)
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	for _, workers := range []int{1, 3} {
		withWorkers(t, workers)
		const n = 17
		counts := make([]int64, n)
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt64(&counts[i], 1) }
		}
		Run(tasks...)
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
	Run() // zero tasks must be a no-op
}

func TestTokensReturnedAfterUse(t *testing.T) {
	withWorkers(t, 4)
	for round := 0; round < 50; round++ {
		For(100, 1, func(lo, hi int) {})
	}
	if got := tryAcquire(pool(), 8); got != 3 {
		t.Fatalf("pool leaked tokens: acquired %d helpers, want 3", got)
	} else {
		release(pool(), got)
	}
}

func TestChunkBoundsPartition(t *testing.T) {
	for n := 1; n < 50; n++ {
		for chunks := 1; chunks <= n; chunks++ {
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(n, chunks, c)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d chunks=%d c=%d: bad range [%d,%d), prev end %d", n, chunks, c, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d chunks=%d: ranges end at %d", n, chunks, prev)
			}
		}
	}
}

func TestRunCtxCancellationSkipsRemainingTasks(t *testing.T) {
	withWorkers(t, 1) // serial path: deterministic task order
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int32
	tasks := make([]func(), 10)
	for i := range tasks {
		i := i
		tasks[i] = func() {
			atomic.AddInt32(&ran, 1)
			if i == 2 {
				cancel()
			}
		}
	}
	err := RunCtx(ctx, tasks...)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunCtx must return the ctx error, got %v", err)
	}
	if got := atomic.LoadInt32(&ran); got != 3 {
		t.Fatalf("serial RunCtx must stop after the cancelling task: ran %d", got)
	}
}

func TestRunCtxUndoneMatchesRun(t *testing.T) {
	withWorkers(t, 4)
	var ran int32
	tasks := make([]func(), 20)
	for i := range tasks {
		tasks[i] = func() { atomic.AddInt32(&ran, 1) }
	}
	if err := RunCtx(context.Background(), tasks...); err != nil {
		t.Fatal(err)
	}
	if ran != 20 {
		t.Fatalf("ran %d of 20 tasks", ran)
	}
}

func TestRunCtxAlreadyCancelled(t *testing.T) {
	withWorkers(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := RunCtx(ctx, func() { atomic.AddInt32(&ran, 1) }, func() { atomic.AddInt32(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if ran != 0 {
		t.Fatalf("no task should start under a dead ctx, ran %d", ran)
	}
}
