// Package parallel provides the shared, bounded worker pool behind the
// repo's hot paths: the blocked tensor kernels, random-forest tree fits,
// BO acquisition scoring, and the per-family searches in internal/core all
// draw helpers from the same token pool. The pool holds GOMAXPROCS-1
// helper tokens (the caller is always the GOMAXPROCS-th worker), and every
// acquisition is non-blocking: when the tokens are spent — e.g. a kernel
// running inside an already-parallel family search — the work simply runs
// serially on the caller. That makes nesting safe by construction (no
// unbounded goroutine trees, no oversubscription, no deadlock) at the cost
// of occasionally under-splitting.
//
// Determinism contract: For and Run only guarantee that every index/task
// executes exactly once; the partition into goroutines depends on how many
// tokens are free. Callers therefore must keep each output element's
// computation independent of the chunking — write to disjoint slots and
// keep any floating-point accumulation order fixed per element, never
// accumulated across chunks. All in-repo callers follow this rule, which
// is what keeps fixed-seed searches bit-identical at any GOMAXPROCS.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	tokens chan struct{}
)

func init() {
	resize(runtime.GOMAXPROCS(0))
}

func resize(workers int) {
	if workers < 1 {
		workers = 1
	}
	t := make(chan struct{}, workers-1)
	for i := 0; i < workers-1; i++ {
		t <- struct{}{}
	}
	mu.Lock()
	tokens = t
	mu.Unlock()
}

func pool() chan struct{} {
	mu.Lock()
	t := tokens
	mu.Unlock()
	return t
}

// Workers returns the pool's total concurrency (helpers + the caller).
func Workers() int { return cap(pool()) + 1 }

// SetWorkers resizes the pool to the given total concurrency. It is meant
// for startup configuration and for tests that need to force the parallel
// paths on (or off) regardless of the machine; it must not race with
// in-flight For/Run calls. SetWorkers(1) disables helper goroutines
// entirely.
func SetWorkers(n int) { resize(n) }

// tryAcquire grabs up to want helper tokens from t without blocking.
func tryAcquire(t chan struct{}, want int) int {
	got := 0
	for got < want {
		select {
		case <-t:
			got++
		default:
			return got
		}
	}
	return got
}

func release(t chan struct{}, n int) {
	for i := 0; i < n; i++ {
		t <- struct{}{}
	}
}

// For executes fn over contiguous index ranges covering [0, n). grain is
// the minimum number of indices worth a chunk: work smaller than two
// grains, or arriving when the pool is drained, runs as a single serial
// fn(0, n) call on the caller — tiny data-plane models never pay goroutine
// dispatch. fn must treat each index independently (see the package
// determinism contract).
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	t := pool()
	maxChunks := n / grain
	if maxChunks < 2 || cap(t) == 0 {
		fn(0, n)
		return
	}
	want := maxChunks - 1
	if want > cap(t) {
		want = cap(t)
	}
	helpers := tryAcquire(t, want)
	if helpers == 0 {
		fn(0, n)
		return
	}
	chunks := helpers + 1
	var wg sync.WaitGroup
	wg.Add(helpers)
	for c := 1; c < chunks; c++ {
		lo, hi := chunkBounds(n, chunks, c)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	lo, hi := chunkBounds(n, chunks, 0)
	fn(lo, hi)
	wg.Wait()
	release(t, helpers)
}

// chunkBounds splits [0, n) into chunks near-equal ranges and returns the
// c-th one.
func chunkBounds(n, chunks, c int) (lo, hi int) {
	base := n / chunks
	rem := n % chunks
	lo = c*base + min(c, rem)
	hi = lo + base
	if c < rem {
		hi++
	}
	return lo, hi
}

// Run executes every task exactly once, using the caller plus however many
// helper tokens are free right now. Tasks beyond the worker count are
// pulled off a shared atomic cursor as workers finish, so long and short
// tasks pack without idle helpers. With an empty pool it degrades to a
// serial loop.
func Run(tasks ...func()) {
	RunCtx(context.Background(), tasks...)
}

// RunCtx is Run with cooperative cancellation: once ctx is done, workers
// stop pulling tasks off the cursor and RunCtx returns ctx.Err(). Tasks
// already started always run to completion (they are expected to observe
// ctx themselves if they are long); tasks never started are simply
// skipped, so the caller must treat a non-nil return as "results
// incomplete". With an undone ctx the task schedule is identical to Run.
func RunCtx(ctx context.Context, tasks ...func()) error {
	n := len(tasks)
	if n == 0 {
		return ctx.Err()
	}
	t := pool()
	done := ctx.Done()
	serial := func() error {
		for _, task := range tasks {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			task()
		}
		return ctx.Err()
	}
	if n == 1 || cap(t) == 0 {
		return serial()
	}
	helpers := tryAcquire(t, n-1)
	if helpers == 0 {
		return serial()
	}
	var next int64
	work := func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			i := atomic.AddInt64(&next, 1) - 1
			if i >= int64(n) {
				return
			}
			tasks[i]()
		}
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	release(t, helpers)
	return ctx.Err()
}
