// Package serve is the deployment runtime: it turns a compiled model (the
// winning *ir.Model of a homunculus compilation) into a long-lived
// inference server for live traffic. This is the fourth architectural
// layer — load → search → compose → codegen → **serve** — and the first
// whose correctness is a throughput/latency contract rather than a result
// value.
//
// The runtime micro-batches incoming feature vectors under a configurable
// latency bound (a batch flushes when it reaches BatchSize OR when the
// oldest request has waited MaxDelay), shards inference across worker
// goroutines sized to the internal/parallel pool — each shard owns a
// prepared ir.Predictor, so the steady-state classify path performs zero
// heap allocations — and applies backpressure with a bounded intake
// queue: when the queue is full, Classify sheds immediately with
// ErrOverloaded instead of queueing unboundedly (the same
// shed-at-the-door discipline as the compilation service's admission
// queue). Per-deployment metrics (throughput, a log-scale latency
// histogram for p50/p99, per-class counts, drops) are recorded inline
// from day one — observability is part of the serving contract, not a
// bolt-on.
//
// Close drains: intake stops (ErrClosed), every request already accepted
// is still classified and delivered, then the shards exit. See
// docs/serving.md for the knobs and wire API.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/parallel"
)

var (
	// ErrOverloaded sheds a request because the bounded intake queue is
	// full. Callers should back off (HTTP maps this to 429).
	ErrOverloaded = errors.New("serve: deployment overloaded, request shed")
	// ErrClosed rejects requests after Close began draining.
	ErrClosed = errors.New("serve: deployment closed")
)

// Options bounds a deployment runtime. Zero values select defaults.
type Options struct {
	// Shards is the number of inference workers, each owning a prepared
	// quantized predictor. Default: the shared parallel pool's worker
	// count (GOMAXPROCS).
	Shards int
	// BatchSize is the flush threshold of the micro-batcher. Default 64.
	BatchSize int
	// MaxDelay bounds how long an accepted request may wait for its
	// batch to fill before a partial flush. Default 500µs. Negative
	// selects greedy batching: a batch flushes as soon as the intake is
	// momentarily empty (minimum latency, batches form only under
	// concurrent load).
	MaxDelay time.Duration
	// QueueDepth caps requests accepted but not yet dispatched to a
	// shard. Classify sheds with ErrOverloaded beyond it. Default 1024.
	QueueDepth int

	// RetainRetired caps how many retired revisions an Endpoint keeps
	// warm (live runtime, instant rollback). Older retired revisions
	// have their runtimes closed — their serving counters leave the
	// endpoint's merged stats — and are lazily re-created from the
	// revision's model if a rollback walks back that far. Default 2;
	// negative keeps every retired revision warm (the pre-cap behavior).
	// Meaningful only for endpoints; single-revision runtimes ignore it.
	RetainRetired int

	// testHook, when set by white-box tests, runs before each request is
	// classified — it lets tests hold shards busy deterministically.
	testHook func()
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = parallel.Workers()
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 500 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.RetainRetired == 0 {
		o.RetainRetired = 2
	}
	return o
}

// request is one in-flight classification. Requests are pooled: the
// feature buffer, the 1-slot done channel, and the struct itself are all
// reused, which is what keeps the steady-state classify path at zero
// allocations.
type request struct {
	x     []float64
	class int
	err   error
	done  chan struct{}
	start time.Time
}

// Runtime is a live deployment serving one compiled model. All exported
// methods are safe for concurrent use.
type Runtime struct {
	opts  Options
	model *ir.Model

	intake  chan *request
	batches chan *[]*request

	reqPool   sync.Pool
	batchPool sync.Pool

	stats stats

	// closeMu serializes intake sends against the close of the intake
	// channel (a send on a closed channel panics; the RLock'd fast path
	// costs no allocations).
	closeMu sync.RWMutex
	closed  bool

	closeOnce sync.Once
	shards    sync.WaitGroup
}

// New validates the model and starts the runtime's batcher and shards.
func New(model *ir.Model, opts Options) (*Runtime, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	// Validate up front so a broken model fails at Deploy time, not on
	// the first live request.
	if _, err := ir.NewPredictor(model); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	rt := &Runtime{
		opts:    o,
		model:   model,
		intake:  make(chan *request, o.QueueDepth),
		batches: make(chan *[]*request, o.Shards),
	}
	rt.reqPool.New = func() any {
		return &request{done: make(chan struct{}, 1), x: make([]float64, 0, model.Inputs)}
	}
	rt.batchPool.New = func() any {
		s := make([]*request, 0, o.BatchSize)
		return &s
	}
	rt.stats.init(model.Outputs)
	rt.shards.Add(o.Shards)
	for i := 0; i < o.Shards; i++ {
		go rt.shard()
	}
	go rt.batcher()
	return rt, nil
}

// Options returns the effective (defaulted) runtime bounds.
func (rt *Runtime) Options() Options { return rt.opts }

// Model returns the deployed model.
func (rt *Runtime) Model() *ir.Model { return rt.model }

// Classify submits one feature vector and blocks until its class is
// computed (micro-batched with concurrent submissions). It sheds with
// ErrOverloaded when the intake queue is full and fails with ErrClosed
// once draining began. The input slice is copied; the caller may reuse it
// immediately.
func (rt *Runtime) Classify(x []float64) (int, error) {
	r := rt.reqPool.Get().(*request)
	r.x = append(r.x[:0], x...)
	r.start = time.Now()
	if err := rt.enqueue(r); err != nil {
		r.x = r.x[:0]
		rt.reqPool.Put(r)
		return 0, err
	}
	<-r.done
	class, err := r.class, r.err
	rt.reqPool.Put(r)
	return class, err
}

// ClassifyBatch submits every vector of xs and waits for all results.
// classes[i] is -1 for requests that were shed (counted in dropped) or
// failed inference; err carries the first inference error, if any.
// Accepted requests always complete, even when later ones shed.
func (rt *Runtime) ClassifyBatch(xs [][]float64) (classes []int, dropped int, err error) {
	classes = make([]int, len(xs))
	pending := make([]*request, len(xs))
	for i, x := range xs {
		r := rt.reqPool.Get().(*request)
		r.x = append(r.x[:0], x...)
		r.start = time.Now()
		if eerr := rt.enqueue(r); eerr != nil {
			r.x = r.x[:0]
			rt.reqPool.Put(r)
			classes[i] = -1
			dropped++
			if errors.Is(eerr, ErrClosed) && err == nil {
				err = eerr
			}
			continue
		}
		pending[i] = r
	}
	for i, r := range pending {
		if r == nil {
			continue
		}
		<-r.done
		if r.err != nil {
			classes[i] = -1
			if err == nil {
				err = r.err
			}
		} else {
			classes[i] = r.class
		}
		rt.reqPool.Put(r)
	}
	return classes, dropped, err
}

// enqueue admits r into the bounded intake queue without blocking.
func (rt *Runtime) enqueue(r *request) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	select {
	case rt.intake <- r:
		rt.stats.accepted.Add(1)
		return nil
	default:
		rt.stats.dropped.Add(1)
		return ErrOverloaded
	}
}

// Stats snapshots the deployment's metrics.
func (rt *Runtime) Stats() Stats { return rt.stats.snapshot() }

// Close stops intake and drains: every accepted request is classified
// and delivered, then the batcher and shards exit. Blocks until the
// drain completes. Idempotent; concurrent Classify calls either complete
// or fail with ErrClosed.
func (rt *Runtime) Close() error {
	rt.closeOnce.Do(func() {
		rt.closeMu.Lock()
		rt.closed = true
		close(rt.intake)
		rt.closeMu.Unlock()
		rt.shards.Wait()
	})
	return nil
}

// batcher folds intake into batches: flush on BatchSize, on the MaxDelay
// deadline of the oldest queued request, or (greedy mode, MaxDelay < 0)
// as soon as the intake is momentarily empty.
func (rt *Runtime) batcher() {
	defer close(rt.batches)
	o := rt.opts
	greedy := o.MaxDelay < 0
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	batch := rt.getBatch()
	flush := func(deadline bool) {
		if len(*batch) == 0 {
			return
		}
		rt.stats.flush(len(*batch), deadline, len(*batch) >= o.BatchSize)
		rt.batches <- batch
		batch = rt.getBatch()
	}
	for {
		if len(*batch) == 0 {
			// Idle: block for the first request of the next batch. Its
			// arrival starts the flush deadline.
			r, ok := <-rt.intake
			if !ok {
				return
			}
			*batch = append(*batch, r)
			if len(*batch) >= o.BatchSize {
				flush(false)
				continue
			}
			if !greedy {
				timer.Reset(o.MaxDelay)
			}
		}
		if greedy {
			select {
			case r, ok := <-rt.intake:
				if !ok {
					flush(false)
					return
				}
				*batch = append(*batch, r)
				if len(*batch) >= o.BatchSize {
					flush(false)
				}
			default:
				flush(false)
			}
			continue
		}
		select {
		case r, ok := <-rt.intake:
			if !ok {
				flush(false)
				return
			}
			*batch = append(*batch, r)
			if len(*batch) >= o.BatchSize {
				timer.Stop()
				flush(false)
			}
		case <-timer.C:
			flush(true)
		}
	}
}

// shard is one inference worker: it owns a prepared predictor and
// processes whole batches pulled off the shared dispatch channel (free
// shards steal work, so an expensive batch never blocks the others).
func (rt *Runtime) shard() {
	defer rt.shards.Done()
	pred, err := ir.NewPredictor(rt.model)
	if err != nil {
		// New() already validated the model; this is unreachable, but a
		// shard must never process with a nil predictor.
		panic(fmt.Sprintf("serve: shard predictor: %v", err))
	}
	for batch := range rt.batches {
		for _, r := range *batch {
			if rt.opts.testHook != nil {
				rt.opts.testHook()
			}
			r.class, r.err = pred.Classify(r.x)
			rt.stats.observe(r.class, r.err, time.Since(r.start))
			r.done <- struct{}{}
		}
		rt.putBatch(batch)
	}
}

// getBatch and putBatch recycle batch slices by pointer so the pooled
// header is never re-boxed (a per-batch allocation would break the
// zero-alloc serving budget).
func (rt *Runtime) getBatch() *[]*request {
	b := rt.batchPool.Get().(*[]*request)
	*b = (*b)[:0]
	return b
}

func (rt *Runtime) putBatch(b *[]*request) {
	rt.batchPool.Put(b)
}
