// Package serve is the deployment runtime: it turns a compiled model (the
// winning *ir.Model of a homunculus compilation) into a long-lived
// inference server for live traffic. This is the fourth architectural
// layer — load → search → compose → codegen → **serve** — and the first
// whose correctness is a throughput/latency contract rather than a result
// value.
//
// The hot loop is built in the hardware idiom (see ring.go): each shard
// owns a fixed-size ring of preallocated request slots with an atomic
// ready-bitmap scoreboard. Producers claim a slot with an atomic
// fetch-add and publish with a bit set; a harvester — the producer
// itself when the shard is idle, else the shard's fallback worker —
// drains the bitmap with a bits.TrailingZeros64 sweep. One sweep is one
// micro-batch, so batches form naturally under concurrent load and a
// lone request is classified inline with zero scheduler handoffs. The
// busy path touches no channel and no mutex; parking is futex-style and
// only on the idle path.
//
// Backpressure is a per-shard credit counter: when a ring is full,
// Classify sheds immediately with ErrOverloaded instead of queueing
// unboundedly (the same shed-at-the-door discipline as the compilation
// service's admission queue). Each shard owns a prepared ir.Predictor,
// so the steady-state classify path performs zero heap allocations.
// Per-deployment metrics (throughput, a sampled log-scale latency
// histogram for p50/p99, per-class counts, drops) are recorded inline
// from day one — observability is part of the serving contract, not a
// bolt-on.
//
// Close drains: intake stops (ErrClosed), every request already accepted
// is still classified and delivered, then the workers exit. See
// docs/serving.md for the knobs and wire API, and docs/performance.md
// for the ring scheduler's slot lifecycle and park/unpark semantics.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ir"
	"repro/internal/parallel"
)

var (
	// ErrOverloaded sheds a request because the bounded slot ring is
	// full. Callers should back off (HTTP maps this to 429).
	ErrOverloaded = errors.New("serve: deployment overloaded, request shed")
	// ErrClosed rejects requests after Close began draining.
	ErrClosed = errors.New("serve: deployment closed")
)

// Options bounds a deployment runtime. Zero values select defaults.
type Options struct {
	// Shards is the number of inference lanes, each owning a slot ring
	// and a prepared quantized predictor. Default: the shared parallel
	// pool's worker count (GOMAXPROCS).
	Shards int
	// BatchSize is the micro-batch target: a harvest sweep that collects
	// at least this many requests counts as a full flush in Stats.
	// Default 64. (The ring harvests continuously, so this is a stats
	// threshold, not a dispatch trigger.)
	BatchSize int
	// MaxDelay bounds how long a harvester may hold a partial batch
	// waiting for more arrivals. Whether it holds at all is policy:
	// the default policy is greedy (harvest as soon as a slot is
	// published — no request ever waits on a batching deadline), the
	// historical ring-scheduler behavior. Deadline batching engages
	// only when the bound was set explicitly through the canonical
	// ServingConfig (MaxDelaySet, positive MaxDelay) or when
	// AdaptiveFlush decides a burst is worth holding for. Default
	// 500µs; zero-without-presence inherits the default, negative is
	// always greedy.
	MaxDelay time.Duration
	// MaxDelaySet marks MaxDelay as explicitly configured, making an
	// explicit zero (greedy) distinguishable from "use the default" —
	// the flat int spellings conflate the two, which made greedy
	// unrepresentable on rollout inheritance. Set automatically by
	// ServingConfig.Options when max_delay_ns is present.
	MaxDelaySet bool
	// AdaptiveFlush enables the per-shard TAGE-flavored inter-arrival
	// predictor (predict.go): the harvester holds a partial batch only
	// when the predicted arrival gaps say the batch will fill within
	// the MaxDelay bound. Quiet traffic keeps greedy latency; bursts
	// get full batches. Classification output is bit-identical either
	// way. Default off.
	AdaptiveFlush bool
	// QueueDepth caps requests accepted but not yet harvested by a
	// shard. Classify sheds with ErrOverloaded beyond it. Default 1024.
	// The per-shard ring size is QueueDepth/Shards rounded up to a
	// power of two.
	QueueDepth int

	// RetainRetired caps how many retired revisions an Endpoint keeps
	// warm (live runtime, instant rollback). Older retired revisions
	// have their runtimes closed — their serving counters leave the
	// endpoint's merged stats — and are lazily re-created from the
	// revision's model if a rollback walks back that far. Default 2;
	// negative keeps every retired revision warm (the pre-cap behavior).
	// Meaningful only for endpoints; single-revision runtimes ignore it.
	RetainRetired int

	// testHook, when set by white-box tests, runs before each request is
	// classified — it lets tests hold shards busy deterministically.
	testHook func()
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = parallel.Workers()
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.MaxDelay == 0 && !o.MaxDelaySet {
		o.MaxDelay = 500 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.RetainRetired == 0 {
		o.RetainRetired = 2
	}
	return o
}

// request is one in-flight classification. Requests are pooled: the
// feature buffer, the 1-slot wake channel, and the struct itself are all
// reused, which is what keeps the steady-state classify path at zero
// allocations. Delivery is a done flag (spin/park, see ring.go), not a
// channel send, so the busy path stays channel-free.
type request struct {
	x     []float64
	class int
	err   error

	done   atomic.Uint32 // result published
	waiter atomic.Uint32 // producer parked; Swap(1→0) claims the wake
	wake   chan struct{} // 1-slot producer unpark token

	sampled bool      // latency timestamps recorded for this request
	start   time.Time // set only when sampled
}

// Runtime is a live deployment serving one compiled model. All exported
// methods are safe for concurrent use.
type Runtime struct {
	opts  Options
	model *ir.Model

	// holdFixed selects the fixed-deadline flush policy: harvesters
	// hold partial batches up to MaxDelay (predict.go). Set only for
	// explicitly configured bounds (Options.MaxDelaySet) without
	// AdaptiveFlush.
	holdFixed bool

	rings []*shard
	rr    atomic.Uint64 // round-robin shard cursor

	reqPool sync.Pool

	stats stats

	closed    atomic.Bool
	closeOnce sync.Once
	stop      chan struct{} // closed after drain; workers exit
	workers   sync.WaitGroup
}

// New validates the model and starts the runtime's shard rings and
// fallback workers.
func New(model *ir.Model, opts Options) (*Runtime, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	o := opts.withDefaults()
	capacity := ringCapacity(o.QueueDepth, o.Shards)
	rt := &Runtime{
		opts:  o,
		model: model,
		rings: make([]*shard, o.Shards),
		stop:  make(chan struct{}),
	}
	adaptive := o.AdaptiveFlush && o.MaxDelay > 0
	for i := range rt.rings {
		// newShard validates the model via ir.NewPredictor, so a broken
		// model fails at Deploy time, not on the first live request.
		sh, err := newShard(model, capacity)
		if err != nil {
			return nil, err
		}
		if adaptive {
			sh.gaps = new(gapPredictor)
		}
		rt.rings[i] = sh
	}
	// Deadline batching only for explicitly configured positive bounds
	// (ServingConfig presence); legacy flat MaxDelay spellings keep the
	// greedy ring-scheduler behavior they were written against.
	rt.holdFixed = o.MaxDelaySet && o.MaxDelay > 0 && !adaptive
	rt.reqPool.New = func() any {
		return &request{wake: make(chan struct{}, 1), x: make([]float64, 0, model.Inputs)}
	}
	rt.stats.init(model.Outputs)
	rt.workers.Add(o.Shards)
	for _, sh := range rt.rings {
		go rt.worker(sh)
	}
	return rt, nil
}

// ringCapacity splits QueueDepth across shards, rounding each ring up to
// a power of two so slot indexing is a mask.
func ringCapacity(depth, shards int) uint64 {
	per := (depth + shards - 1) / shards
	c := uint64(1)
	for c < uint64(per) {
		c <<= 1
	}
	return c
}

// Options returns the effective (defaulted) runtime bounds.
func (rt *Runtime) Options() Options { return rt.opts }

// Model returns the deployed model.
func (rt *Runtime) Model() *ir.Model { return rt.model }

// pick selects the next shard round-robin.
func (rt *Runtime) pick() *shard {
	if len(rt.rings) == 1 {
		return rt.rings[0]
	}
	return rt.rings[rt.rr.Add(1)%uint64(len(rt.rings))]
}

// Classify submits one feature vector and blocks until its class is
// computed (micro-batched with concurrent submissions). It sheds with
// ErrOverloaded when the slot ring is full and fails with ErrClosed once
// draining began. The input slice is copied; the caller may reuse it
// immediately.
func (rt *Runtime) Classify(x []float64) (int, error) {
	r := rt.reqPool.Get().(*request)
	r.x = append(r.x[:0], x...)
	sh := rt.pick()
	if err := rt.enqueue(sh, r); err != nil {
		if errors.Is(err, ErrOverloaded) {
			rt.stats.dropped.Add(1)
		}
		r.x = r.x[:0]
		rt.reqPool.Put(r)
		return 0, err
	}
	rt.await(sh, r)
	class, err := r.class, r.err
	rt.reqPool.Put(r)
	return class, err
}

// ClassifyBatch submits every vector of xs and waits for all results.
// classes[i] is -1 for requests that were shed (counted in dropped) or
// failed inference; err carries the first inference error, if any.
// Accepted requests always complete, even when later ones shed. When a
// ring fills with this call's own in-flight traffic, the enqueue loop
// helps harvest instead of shedding, so a batch larger than the ring
// pipelines through it; sheds happen only under competing load.
func (rt *Runtime) ClassifyBatch(xs [][]float64) (classes []int, dropped int, err error) {
	classes = make([]int, len(xs))
	pending := make([]*request, len(xs))
	shards := make([]*shard, len(xs))
	head := 0 // first of our requests that may still be in flight
	for i, x := range xs {
		r := rt.reqPool.Get().(*request)
		r.x = append(r.x[:0], x...)
		for {
			sh := rt.pick()
			eerr := rt.enqueue(sh, r)
			if eerr == nil {
				pending[i], shards[i] = r, sh
				rt.unpark(sh) // let the worker harvest while we keep enqueueing
				break
			}
			if errors.Is(eerr, ErrOverloaded) {
				for head < i && (pending[head] == nil || pending[head].done.Load() == 1) {
					head++
				}
				if head < i {
					// Our own traffic holds ring credits; help drain it
					// and retry instead of shedding our own pipeline.
					rt.harvest(shards[head])
					runtime.Gosched()
					continue
				}
				rt.stats.dropped.Add(1)
			}
			classes[i] = -1
			dropped++
			if errors.Is(eerr, ErrClosed) && err == nil {
				err = eerr
			}
			r.x = r.x[:0]
			rt.reqPool.Put(r)
			break
		}
	}
	for i, r := range pending {
		if r == nil {
			continue
		}
		rt.await(shards[i], r)
		if r.err != nil {
			classes[i] = -1
			if err == nil {
				err = r.err
			}
		} else {
			classes[i] = r.class
		}
		rt.reqPool.Put(r)
	}
	return classes, dropped, err
}

// Stats snapshots the deployment's metrics.
func (rt *Runtime) Stats() Stats { return rt.stats.snapshot() }

// Close stops intake and drains: every accepted request is classified
// and delivered, then the workers exit. Blocks until the drain
// completes. Idempotent; concurrent Classify calls either complete or
// fail with ErrClosed.
func (rt *Runtime) Close() error {
	rt.closeOnce.Do(func() {
		rt.closed.Store(true)
		// Drain: credits quiesce once every admitted request has been
		// harvested (and any producer between credit and publish has
		// finished), completed catches accepted once every harvested
		// request is classified. Progress needs no help from here — each
		// in-flight request has a live producer spinning or a worker
		// covering it.
		for {
			var inflight int64
			for _, sh := range rt.rings {
				inflight += sh.credits.Load()
			}
			if inflight == 0 && rt.stats.completed.Load() >= rt.stats.accepted.Load() {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		close(rt.stop)
		rt.workers.Wait()
	})
	return nil
}
