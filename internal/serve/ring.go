package serve

// The ring scheduler: the serving hot loop rebuilt in the hardware idiom.
//
// Each shard owns a fixed-size ring of preallocated request slots plus an
// atomic ready-bitmap scoreboard. The old intake/dispatch/done channel
// hops are gone:
//
//   - producers claim a slot with an atomic fetch-add ticket (a per-slot
//     sequence number gates reuse, Vyukov-style), write the request
//     pointer, and publish by setting the slot's bit in the bitmap;
//   - a harvester drains the bitmap with an atomic Swap(0) per word and a
//     bits.TrailingZeros64 sweep — one sweep is one micro-batch;
//   - admission is a per-shard credit counter: when the ring's credits
//     are exhausted the producer sheds with ErrOverloaded at the door,
//     before touching a ticket.
//
// The busy path never touches a channel or a mutex. Parking is
// futex-style and only for the idle path: a shard's worker goroutine
// publishes a parked flag and blocks on a 1-slot wake channel; the first
// producer to observe the flag claims it with a Swap and posts exactly
// one token. A waiting producer uses the same protocol per-request (a
// waiter flag + 1-slot channel on the pooled request).
//
// The fast path is caller-harvesting: a producer that finds the shard
// idle acquires the harvest lock itself and classifies its own request
// (and any neighbors that were published meanwhile) inline on its own
// goroutine — zero scheduler handoffs, which is what buys the single-
// digit-µs p99. Under concurrency the same sweep naturally forms
// micro-batches. The worker goroutine is the fallback harvester: it
// covers pipelined ClassifyBatch enqueues and producers that gave up
// spinning and parked.

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/ir"
)

// latSampleEvery samples the latency timestamp pair on every Nth ticket
// per shard (must be a power of two). Ticket 0 is always sampled, so the
// first request of a deployment lands in the histogram and quantiles are
// nonzero as soon as traffic flows. Counters (accepted/completed/
// per-class) still see every request — only the two time.Now() calls and
// the histogram update are sampled.
const latSampleEvery = 8

// awaitSpinRounds bounds how long a producer re-tries the harvest lock
// (yielding between attempts) before it arms its waiter flag and parks.
const awaitSpinRounds = 128

// slot is one ring entry. seq is the Vyukov sequence gate: a producer
// holding ticket t may write the slot when seq==t; the harvester frees it
// for ticket t+capacity by storing t+capacity after detaching the
// request. Padded so neighboring slots don't share a cache line.
type slot struct {
	seq atomic.Uint64
	req *request
	_   [48]byte
}

// shard is one inference lane: a slot ring, its ready-bitmap, the
// admission credits, a prepared predictor, and the park/wake plumbing for
// its fallback worker. The predictor is guarded by the busy flag — only
// the harvester that owns busy may touch it.
type shard struct {
	tickets atomic.Uint64 // fetch-add slot claim
	credits atomic.Int64  // in-flight admission bound (≤ cap)
	busy    atomic.Uint32 // harvest lock: 1 while a harvester owns pred
	parked  atomic.Uint32 // worker is parked; Swap(1→0) claims the wake
	wake    chan struct{} // 1-slot worker unpark token

	cap   uint64
	mask  uint64
	ready []atomic.Uint64 // the bitmap scoreboard, 64 slots per word
	slots []slot

	pred *ir.Predictor

	// Adaptive-flush state (predict.go). Producers feed the shared
	// arrival history with relaxed atomics (lastNS, gapHist); the gaps
	// predictor itself, like pred, is guarded by the busy flag. nil
	// unless Options.AdaptiveFlush resolved on. flushDeadline is set by
	// a hold that expired (busy-guarded) and consumed by the next sweep
	// for DeadlineFlushes accounting.
	gaps          *gapPredictor
	lastNS        atomic.Int64  // previous arrival, UnixNano
	gapHist       atomic.Uint64 // packed 4-bit gap buckets, newest lowest
	flushDeadline bool
}

func newShard(model *ir.Model, capacity uint64) (*shard, error) {
	pred, err := ir.NewPredictor(model)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		cap:   capacity,
		mask:  capacity - 1,
		ready: make([]atomic.Uint64, (capacity+63)/64),
		slots: make([]slot, capacity),
		wake:  make(chan struct{}, 1),
		pred:  pred,
	}
	for i := range sh.slots {
		sh.slots[i].seq.Store(uint64(i))
	}
	return sh, nil
}

// hasReady reports whether any slot bit is published.
func (sh *shard) hasReady() bool {
	for i := range sh.ready {
		if sh.ready[i].Load() != 0 {
			return true
		}
	}
	return false
}

// enqueue admits r into sh's ring: credit, ticket, slot write, bitmap
// publish. It does not block on a full ring — it sheds (the caller
// decides whether to count the drop or retry). The rare seq spin waits
// for a harvester to detach the slot's previous occupant (possible only
// when the ring is nearly full).
func (rt *Runtime) enqueue(sh *shard, r *request) error {
	if sh.credits.Add(1) > int64(sh.cap) {
		sh.credits.Add(-1)
		return ErrOverloaded
	}
	// Closed is checked after the credit so Close's drain poll cannot
	// miss an in-flight producer: if this load sees the flag unset, the
	// credit above is already visible to the poll.
	if rt.closed.Load() {
		sh.credits.Add(-1)
		return ErrClosed
	}
	if sh.gaps != nil {
		// Feed the arrival predictor: one relaxed Swap for the gap, one
		// load/store pair to shift the bucket into the shared history.
		// Concurrent producers may drop a nibble — the predictor is a
		// timing heuristic, so lossy history is acceptable.
		now := time.Now().UnixNano()
		if prev := sh.lastNS.Swap(now); prev != 0 {
			h := sh.gapHist.Load()
			sh.gapHist.Store(h<<4 | uint64(gapBucket(now-prev)))
		}
	}
	t := sh.tickets.Add(1) - 1
	i := t & sh.mask
	s := &sh.slots[i]
	for s.seq.Load() != t {
		runtime.Gosched()
	}
	r.done.Store(0)
	if r.sampled = t&(latSampleEvery-1) == 0; r.sampled {
		r.start = time.Now()
	}
	s.req = r
	rt.stats.accepted.Add(1)
	sh.ready[i>>6].Or(1 << (i & 63))
	return nil
}

// sweep is one micro-batch: the harvester (which must own sh.busy) swaps
// each bitmap word to zero and classifies every published slot in
// trailing-zeros order. Slots are freed the moment the request pointer is
// detached — before the classify — so the ring never stays clogged behind
// a slow inference. Returns the number of requests harvested.
func (rt *Runtime) sweep(sh *shard) int {
	n := 0
	for w := range sh.ready {
		// A plain load filters empty words so the scan costs a cache hit
		// per word, not an atomic RMW — with the default ring size most
		// words are empty on any given sweep.
		if sh.ready[w].Load() == 0 {
			continue
		}
		word := sh.ready[w].Swap(0)
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			s := &sh.slots[i]
			r := s.req
			s.req = nil
			s.seq.Store(s.seq.Load() + sh.cap) // free the slot for ticket t+cap
			sh.credits.Add(-1)
			if rt.opts.testHook != nil {
				rt.opts.testHook()
			}
			r.class, r.err = sh.pred.Classify(r.x)
			if r.sampled {
				rt.stats.observe(r.class, r.err, time.Since(r.start))
			} else {
				rt.stats.observeFast(r.class, r.err)
			}
			r.done.Store(1)
			if r.waiter.Swap(0) == 1 {
				r.wake <- struct{}{}
			}
			n++
		}
	}
	if n > 0 {
		deadline := sh.flushDeadline
		sh.flushDeadline = false
		rt.stats.flush(n, deadline, n >= rt.opts.BatchSize)
	}
	return n
}

// harvest acquires the harvest lock if free and sweeps until the bitmap
// stays empty. Returns false if another harvester owns the shard.
func (rt *Runtime) harvest(sh *shard) bool {
	if !sh.busy.CompareAndSwap(0, 1) {
		return false
	}
	if sh.gaps != nil {
		rt.adaptiveHold(sh)
	} else if rt.holdFixed {
		rt.fixedHold(sh)
	}
	for rt.sweep(sh) > 0 {
	}
	sh.busy.Store(0)
	return true
}

// await blocks until r's result is delivered. Fast path: become the
// shard's harvester and classify the request inline. If another
// harvester owns the shard, spin briefly (it is probably classifying our
// request right now), then arm the waiter flag, make sure the fallback
// worker is awake (our bit may still be unclaimed in the bitmap), and
// park on the request's 1-slot channel.
func (rt *Runtime) await(sh *shard, r *request) {
	for round := 0; ; round++ {
		if r.done.Load() == 1 {
			return
		}
		if rt.harvest(sh) && r.done.Load() == 1 {
			return
		}
		if round < awaitSpinRounds {
			runtime.Gosched()
			continue
		}
		r.waiter.Store(1)
		if r.done.Load() == 1 {
			if r.waiter.Swap(0) == 0 {
				// The harvester claimed the flag and is posting the
				// token; drain it so the pooled channel stays empty.
				<-r.wake
			}
			return
		}
		rt.unpark(sh)
		<-r.wake
		return
	}
}

// unpark wakes sh's worker if it is parked. The Swap makes the claim
// exclusive, so exactly one token is ever in flight.
func (rt *Runtime) unpark(sh *shard) {
	if sh.parked.Swap(0) == 1 {
		sh.wake <- struct{}{}
	}
}

// worker is a shard's fallback harvester: it harvests whatever the
// producers' inline path didn't, and parks futex-style while the bitmap
// stays empty. rt.stop closes only after Close's drain completed, so
// exit never abandons published work.
func (rt *Runtime) worker(sh *shard) {
	defer rt.workers.Done()
	for {
		rt.harvest(sh)
		if sh.hasReady() {
			// Bits are published but another harvester owns the shard;
			// stay runnable until the ring is visibly drained.
			runtime.Gosched()
			continue
		}
		select {
		case <-rt.stop:
			return
		default:
		}
		sh.parked.Store(1)
		if sh.hasReady() {
			// Lost the race with a publisher: reclaim the flag, or drain
			// the token the publisher is posting.
			if sh.parked.Swap(0) == 0 {
				<-sh.wake
			}
			continue
		}
		select {
		case <-sh.wake:
		case <-rt.stop:
			return
		}
	}
}
